package mcsafe

// The benchmark harness regenerating the paper's evaluation (Figure 9)
// and the ablations its Section 5.2.3/6 discussion motivates. One
// testing.B benchmark per Figure 9 column runs the full five-phase
// checker on that program; the reported custom metrics break the time
// into the paper's three phases. cmd/mcbench prints the same data as a
// side-by-side table, and EXPERIMENTS.md records a reference run.

import (
	"testing"

	"mcsafe/internal/annotate"
	"mcsafe/internal/cfg"
	"mcsafe/internal/core"
	"mcsafe/internal/induction"
	"mcsafe/internal/policy"
	"mcsafe/internal/progs"
	"mcsafe/internal/propagate"
	"mcsafe/internal/solver"
	"mcsafe/internal/vcgen"
)

// benchProgram checks one Figure 9 program repeatedly and reports
// per-phase times as custom metrics (ns per phase).
func benchProgram(b *testing.B, name string, opts core.Options) {
	bench := progs.Get(name)
	if bench == nil {
		b.Fatalf("unknown program %q", name)
	}
	prog, spec, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}
	var ts, al, gl int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Check(prog, spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Safe != bench.WantSafe {
			b.Fatalf("%s: verdict %v, want %v", name, res.Safe, bench.WantSafe)
		}
		ts += res.Times.Typestate.Nanoseconds()
		al += res.Times.AnnotLocal.Nanoseconds()
		gl += res.Times.Global.Nanoseconds()
	}
	b.ReportMetric(float64(ts)/float64(b.N), "ns/typestate")
	b.ReportMetric(float64(al)/float64(b.N), "ns/annot+local")
	b.ReportMetric(float64(gl)/float64(b.N), "ns/global")
}

// BenchmarkFig9 regenerates the Figure 9 timing rows, one sub-benchmark
// per evaluation program, in the paper's column order.
func BenchmarkFig9(b *testing.B) {
	for _, bench := range progs.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			benchProgram(b, bench.Name, core.Options{})
		})
	}
}

// BenchmarkAblationNoGeneralization switches off the generalization
// enhancement of the induction-iteration method (Section 5.2.1). The
// paper's own example (Section 5.2.2) does not converge without it; the
// checker then rejects Sum, so this ablation measures the cost of the
// fruitless search on the programs that need generalization and the
// unchanged cost on those that do not.
func BenchmarkAblationNoGeneralization(b *testing.B) {
	for _, name := range []string{"Sum", "BubbleSort", "Btree"} {
		name := name
		b.Run(name, func(b *testing.B) {
			bench := progs.Get(name)
			prog, spec, err := bench.Build()
			if err != nil {
				b.Fatal(err)
			}
			opts := core.Options{Induction: induction.Options{DisableGeneralization: true}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Check(prog, spec, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNoDNF switches off the DNF-disjunct candidate
// enhancement (Section 5.2.1's third strategy).
func BenchmarkAblationNoDNF(b *testing.B) {
	for _, name := range []string{"Sum", "BubbleSort", "HeapSort"} {
		name := name
		b.Run(name, func(b *testing.B) {
			bench := progs.Get(name)
			prog, spec, err := bench.Build()
			if err != nil {
				b.Fatal(err)
			}
			opts := core.Options{Induction: induction.Options{DisableDNF: true}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Check(prog, spec, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMaxIter varies the induction-iteration bound. The
// paper observes three iterations suffice in practice; this measures the
// cost/benefit of 1, 2, 3 on the loop-heaviest safe program.
func BenchmarkAblationMaxIter(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		n := n
		b.Run(map[int]string{1: "1", 2: "2", 3: "3"}[n], func(b *testing.B) {
			bench := progs.Get("BubbleSort")
			prog, spec, err := bench.Build()
			if err != nil {
				b.Fatal(err)
			}
			opts := core.Options{Induction: induction.Options{MaxIter: n}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Check(prog, spec, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPhases isolates each phase of the checker on a loop-heavy
// program, mirroring the paper's observation that checking time splits
// between typestate propagation and global verification, and compares
// the sequential global-verification path against the worker pool.
// BubbleSort keeps single iterations fast enough to get stable numbers;
// BenchmarkFig9 covers the larger programs end to end.
func BenchmarkPhases(b *testing.B) {
	bench := progs.Get("BubbleSort")
	prog, spec, err := bench.Build()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("prepare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := policy.Prepare(spec); err != nil {
				b.Fatal(err)
			}
			if _, err := cfg.Build(prog, cfg.Options{TrustedFuncs: spec.TrustedNames()}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The later phases consume (but do not mutate) the earlier phases'
	// outputs, so those are built once outside the timed loops.
	ini, err := policy.Prepare(spec)
	if err != nil {
		b.Fatal(err)
	}
	g, err := cfg.Build(prog, cfg.Options{TrustedFuncs: spec.TrustedNames()})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("typestate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			propagate.Run(g, ini)
		}
	})

	prop := propagate.Run(g, ini)
	b.Run("annot+local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			annotate.Run(prop)
		}
	})

	ann := annotate.Run(prop)
	globalBench := func(par int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Fresh prover and engine per iteration: global
				// verification is measured cold, not from warm caches.
				var prover *solver.Prover
				if par == 1 {
					prover = solver.New()
				} else {
					prover = solver.NewShared(solver.NewShardedCache())
				}
				eng := vcgen.New(prop, prover, vcgen.Options{Parallelism: par})
				eng.Prove(ann.Conds)
			}
		}
	}
	b.Run("global/sequential", globalBench(1))
	b.Run("global/parallel", globalBench(0))

	fullBench := func(par int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Check(prog, spec, core.Options{Parallelism: par})
				if err != nil {
					b.Fatal(err)
				}
				if res.Safe != bench.WantSafe {
					b.Fatalf("verdict %v, want %v", res.Safe, bench.WantSafe)
				}
			}
		}
	}
	b.Run("full/sequential", fullBench(1))
	b.Run("full/parallel", fullBench(0))
}
