// Package mcsafe is the public API of the machine-code safety checker: a
// reproduction of "Safety Checking of Machine Code" (Xu, Miller, Reps;
// PLDI 2000). It statically determines whether untrusted machine code is
// safe to load into a trusted host, given typestate annotations and
// linear constraints on the initial inputs and a host-specified access
// policy.
//
// The checking pipeline is ISA-portable: instruction semantics enter the
// analysis as RTL effects through an architecture front-end (see
// internal/isa), and the checker ships front-ends for SPARC ("sparc",
// the paper's subject architecture) and RISC-V RV32I ("rv32i"). The
// typical flow:
//
//	spec, err := mcsafe.ParseSpecArch(specText, "sparc")
//	prog, err := mcsafe.AssembleArch("sparc", asmText, spec, "entry")
//	checker := mcsafe.New()                       // configure once, reuse
//	res, err := checker.Check(ctx, prog, spec)
//	if res.Safe { ... } else { for _, v := range res.Violations { ... } }
//
// ParseSpec, Assemble, and FromWords are the SPARC-defaulting shorthands.
// Programs may also be supplied as raw machine words plus a loader
// symbol table via FromWords/FromWordsArch — the checker itself consumes
// only the decoded binary. Programs and specs are content-addressed
// (Program.Fingerprint, Spec.Hash), results have a stable versioned wire
// encoding (Result.Wire), and cmd/mcsafed serves the whole pipeline over
// HTTP with a persistent verdict store keyed by those addresses.
//
// The package-level Check, CheckWithOptions, and CheckAll functions are
// deprecated shims over the Checker API, kept for source compatibility.
package mcsafe

import (
	"context"
	"fmt"

	"mcsafe/internal/core"
	"mcsafe/internal/isa"
	_ "mcsafe/internal/isa/archs" // link the SPARC and RV32I front-ends
	"mcsafe/internal/policy"
)

// DefaultArch is the architecture the un-suffixed entry points assume:
// the paper's subject architecture.
const DefaultArch = "sparc"

// Arches lists the linked architecture names, sorted ("rv32i", "sparc").
func Arches() []string { return isa.Names() }

// Spec is a parsed host specification: the host-typestate specification
// (data and control aspects), the invocation specification, and the
// safety policy (Section 2 of the paper). A Spec is parsed for one
// architecture — the invocation clause names that ISA's registers — and
// checks only programs of the same architecture.
type Spec struct {
	spec *policy.Spec
}

// ParseSpec parses the policy/specification language for the default
// (SPARC) architecture. See the README for the grammar and
// internal/progs for thirteen worked examples.
func ParseSpec(src string) (*Spec, error) {
	return ParseSpecArch(src, DefaultArch)
}

// ParseSpecArch parses the policy/specification language against the
// named architecture's register set.
func ParseSpecArch(src, arch string) (*Spec, error) {
	a, err := isa.Get(arch)
	if err != nil {
		return nil, err
	}
	s, err := policy.Parse(src, a)
	if err != nil {
		return nil, err
	}
	return &Spec{spec: s}, nil
}

// Arch returns the architecture name the spec was parsed for.
func (s *Spec) Arch() string { return s.spec.Arch.Name() }

// Program is untrusted machine code: machine words plus the side tables
// a loader supplies (symbols and data-symbol addresses), decoded by one
// architecture front-end.
type Program struct {
	prog *isa.Program
}

// Assemble builds a Program from assembly text for the default (SPARC)
// architecture. The spec supplies data-symbol addresses for address
// formation ("set sym,%reg"); it may be nil. The entry label may be
// empty (execution starts at the first instruction).
func Assemble(src string, spec *Spec, entry string) (*Program, error) {
	return AssembleArch(DefaultArch, src, spec, entry)
}

// AssembleArch builds a Program from assembly text for the named
// architecture ("sparc", "rv32i").
func AssembleArch(arch, src string, spec *Spec, entry string) (*Program, error) {
	a, err := isa.Get(arch)
	if err != nil {
		return nil, err
	}
	var dataSyms map[string]uint32
	var externs map[string]bool
	if spec != nil {
		dataSyms = spec.spec.DataSyms()
		externs = spec.spec.TrustedNames()
	}
	p, err := a.Assemble(src, isa.AsmOptions{DataSyms: dataSyms, Entry: entry, Externs: externs})
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// FromWords builds a Program from raw machine words for the default
// (SPARC) architecture: a base address plus optional loader tables —
// symbols maps labels to instruction indexes, dataSyms maps data-symbol
// names to virtual addresses.
func FromWords(words []uint32, base uint32, symbols map[string]int, dataSyms map[string]uint32) (*Program, error) {
	return FromWordsArch(DefaultArch, words, base, symbols, dataSyms)
}

// FromWordsArch builds a Program from raw machine words decoded by the
// named architecture front-end.
func FromWordsArch(arch string, words []uint32, base uint32, symbols map[string]int, dataSyms map[string]uint32) (*Program, error) {
	a, err := isa.Get(arch)
	if err != nil {
		return nil, err
	}
	p, err := a.FromWords(words, base, symbols, dataSyms)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// Arch returns the program's architecture name.
func (p *Program) Arch() string { return p.prog.Arch.Name() }

// Words returns the program's machine words.
func (p *Program) Words() []uint32 { return p.prog.Words }

// Disassemble renders the decoded program.
func (p *Program) Disassemble() string { return p.prog.Disassemble() }

// Violation is one place where a safety condition is violated or cannot
// be proved.
type Violation = core.Violation

// Stats are the program characteristics and analysis-effort counters
// (the rows of the paper's Figure 9).
type Stats = core.Stats

// PhaseTimes are the per-phase analysis times (Figure 9's timing rows).
type PhaseTimes = core.PhaseTimes

// Result is the outcome of checking a program.
type Result struct {
	// Safe reports whether every safety condition was established.
	Safe bool
	// Violations lists the conditions that failed, with instruction
	// indexes and source lines when available.
	Violations []Violation
	Stats      Stats
	Times      PhaseTimes

	arch  string
	inner *core.Result
}

// Arch returns the architecture name of the checked program ("" on a
// result lifted from a wire record that predates the arch field).
func (r *Result) Arch() string { return r.arch }

// Options tunes the checker.
type Options struct {
	// MaxInductionIterations bounds the induction-iteration chains used
	// to synthesize loop invariants (the paper finds 3 sufficient).
	MaxInductionIterations int
	// DisableGeneralization and DisableDNF turn off the corresponding
	// induction-iteration enhancements (Section 5.2.1) — exposed for
	// the ablation benchmarks.
	DisableGeneralization bool
	DisableDNF            bool
	// Parallelism is the worker count for global verification
	// (Phase 5): 0 means GOMAXPROCS, 1 forces the exact sequential
	// legacy path. The verdict, violations, and their ordering are
	// identical at every setting.
	Parallelism int
	// Budget is the check's resource envelope (wall-clock deadline,
	// solver step budget, per-condition timeout). The zero Budget
	// disables governance; exhaustion degrades affected conditions to
	// conservative CodeResource violations, never acceptances.
	Budget Budget
}

// Check runs the five-phase safety-checking analysis.
//
// Deprecated: build a Checker instead — New().Check(ctx, prog, spec) —
// which adds context cancellation, functional options, and reuse across
// programs. This shim is kept for source compatibility and delegates
// unchanged.
func Check(prog *Program, spec *Spec) (*Result, error) {
	return New().Check(context.Background(), prog, spec)
}

// CheckWithOptions runs the analysis with explicit tuning.
//
// Deprecated: build a Checker with functional options instead, e.g.
// New(WithParallelism(4), WithBudget(b)).Check(ctx, prog, spec). This
// shim is kept for source compatibility and delegates unchanged.
func CheckWithOptions(prog *Program, spec *Spec, opts Options) (*Result, error) {
	c := New()
	c.opts = opts
	return c.Check(context.Background(), prog, spec)
}

// DumpTypestate renders the typestate-propagation results per
// instruction, in the style of the paper's Figure 6.
func (r *Result) DumpTypestate() string {
	if r.inner == nil {
		return ""
	}
	out := ""
	g := r.inner.G
	for _, node := range g.Nodes {
		if node.Replica {
			continue
		}
		in := r.inner.Prop.In[node.ID]
		if in.Top {
			continue
		}
		out += fmt.Sprintf("%4d: %-28s | %s\n", node.Index, node.Insn.String(), in.String())
	}
	return out
}

// Conditions renders the global safety conditions and their verdicts.
func (r *Result) Conditions() string {
	if r.inner == nil {
		return ""
	}
	out := ""
	for _, cr := range r.inner.Conds {
		verdict := "proved"
		if !cr.Proved {
			verdict = "VIOLATION"
		}
		idx := r.inner.G.Nodes[cr.Cond.Node].Index
		out += fmt.Sprintf("insn %4d: %-24s %s: %v\n", idx, cr.Cond.Desc, verdict, cr.Cond.F)
	}
	return out
}
