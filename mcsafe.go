// Package mcsafe is the public API of the machine-code safety checker: a
// reproduction of "Safety Checking of Machine Code" (Xu, Miller, Reps;
// PLDI 2000). It statically determines whether untrusted SPARC machine
// code is safe to load into a trusted host, given typestate annotations
// and linear constraints on the initial inputs and a host-specified
// access policy.
//
// The typical flow:
//
//	spec, err := mcsafe.ParseSpec(specText)
//	prog, err := mcsafe.Assemble(asmText, spec, "entry")
//	checker := mcsafe.New()                       // configure once, reuse
//	res, err := checker.Check(ctx, prog, spec)
//	if res.Safe { ... } else { for _, v := range res.Violations { ... } }
//
// Programs may also be supplied as raw machine words plus a loader
// symbol table via FromWords — the checker itself consumes only the
// decoded binary. Programs and specs are content-addressed
// (Program.Fingerprint, Spec.Hash), results have a stable versioned wire
// encoding (Result.Wire), and cmd/mcsafed serves the whole pipeline over
// HTTP with a persistent verdict store keyed by those addresses.
//
// The package-level Check, CheckWithOptions, and CheckAll functions are
// deprecated shims over the Checker API, kept for source compatibility.
package mcsafe

import (
	"context"
	"fmt"

	"mcsafe/internal/core"
	"mcsafe/internal/policy"
	"mcsafe/internal/sparc"
)

// Spec is a parsed host specification: the host-typestate specification
// (data and control aspects), the invocation specification, and the
// safety policy (Section 2 of the paper).
type Spec struct {
	spec *policy.Spec
}

// ParseSpec parses the policy/specification language. See the README for
// the grammar and internal/progs for thirteen worked examples.
func ParseSpec(src string) (*Spec, error) {
	s, err := policy.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Spec{spec: s}, nil
}

// Program is untrusted machine code: SPARC machine words plus the side
// tables a loader supplies (symbols and data-symbol addresses).
type Program struct {
	prog *sparc.Program
}

// Assemble builds a Program from SPARC assembly text. The spec supplies
// data-symbol addresses for "set sym,%reg" address formation; it may be
// nil. The entry label may be empty (execution starts at the first
// instruction).
func Assemble(src string, spec *Spec, entry string) (*Program, error) {
	var dataSyms map[string]uint32
	var externs map[string]bool
	if spec != nil {
		dataSyms = spec.spec.DataSyms()
		externs = spec.spec.TrustedNames()
	}
	p, err := sparc.Assemble(src, sparc.AsmOptions{DataSyms: dataSyms, Entry: entry, Externs: externs})
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// FromWords builds a Program from raw machine words, a base address, and
// optional loader tables: symbols maps labels to instruction indexes,
// dataSyms maps data-symbol names to virtual addresses.
func FromWords(words []uint32, base uint32, symbols map[string]int, dataSyms map[string]uint32) (*Program, error) {
	p, err := sparc.FromWords(words, base, symbols, dataSyms)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// Words returns the program's machine words.
func (p *Program) Words() []uint32 { return p.prog.Words }

// Disassemble renders the decoded program.
func (p *Program) Disassemble() string { return p.prog.Disassemble() }

// Violation is one place where a safety condition is violated or cannot
// be proved.
type Violation = core.Violation

// Stats are the program characteristics and analysis-effort counters
// (the rows of the paper's Figure 9).
type Stats = core.Stats

// PhaseTimes are the per-phase analysis times (Figure 9's timing rows).
type PhaseTimes = core.PhaseTimes

// Result is the outcome of checking a program.
type Result struct {
	// Safe reports whether every safety condition was established.
	Safe bool
	// Violations lists the conditions that failed, with instruction
	// indexes and source lines when available.
	Violations []Violation
	Stats      Stats
	Times      PhaseTimes

	inner *core.Result
}

// Options tunes the checker.
type Options struct {
	// MaxInductionIterations bounds the induction-iteration chains used
	// to synthesize loop invariants (the paper finds 3 sufficient).
	MaxInductionIterations int
	// DisableGeneralization and DisableDNF turn off the corresponding
	// induction-iteration enhancements (Section 5.2.1) — exposed for
	// the ablation benchmarks.
	DisableGeneralization bool
	DisableDNF            bool
	// Parallelism is the worker count for global verification
	// (Phase 5): 0 means GOMAXPROCS, 1 forces the exact sequential
	// legacy path. The verdict, violations, and their ordering are
	// identical at every setting.
	Parallelism int
	// Budget is the check's resource envelope (wall-clock deadline,
	// solver step budget, per-condition timeout). The zero Budget
	// disables governance; exhaustion degrades affected conditions to
	// conservative CodeResource violations, never acceptances.
	Budget Budget
}

// Check runs the five-phase safety-checking analysis.
//
// Deprecated: build a Checker instead — New().Check(ctx, prog, spec) —
// which adds context cancellation, functional options, and reuse across
// programs. This shim is kept for source compatibility and delegates
// unchanged.
func Check(prog *Program, spec *Spec) (*Result, error) {
	return New().Check(context.Background(), prog, spec)
}

// CheckWithOptions runs the analysis with explicit tuning.
//
// Deprecated: build a Checker with functional options instead, e.g.
// New(WithParallelism(4), WithBudget(b)).Check(ctx, prog, spec). This
// shim is kept for source compatibility and delegates unchanged.
func CheckWithOptions(prog *Program, spec *Spec, opts Options) (*Result, error) {
	c := New()
	c.opts = opts
	return c.Check(context.Background(), prog, spec)
}

// DumpTypestate renders the typestate-propagation results per
// instruction, in the style of the paper's Figure 6.
func (r *Result) DumpTypestate() string {
	if r.inner == nil {
		return ""
	}
	out := ""
	g := r.inner.G
	for _, node := range g.Nodes {
		if node.Replica {
			continue
		}
		in := r.inner.Prop.In[node.ID]
		if in.Top {
			continue
		}
		out += fmt.Sprintf("%4d: %-28s | %s\n", node.Index, node.Insn.String(), in.String())
	}
	return out
}

// Conditions renders the global safety conditions and their verdicts.
func (r *Result) Conditions() string {
	if r.inner == nil {
		return ""
	}
	out := ""
	for _, cr := range r.inner.Conds {
		verdict := "proved"
		if !cr.Proved {
			verdict = "VIOLATION"
		}
		idx := r.inner.G.Nodes[cr.Cond.Node].Index
		out += fmt.Sprintf("insn %4d: %-24s %s: %v\n", idx, cr.Cond.Desc, verdict, cr.Cond.F)
	}
	return out
}
