package mcsafe

import (
	"context"
	"fmt"

	"mcsafe/internal/core"
	"mcsafe/internal/obs"
)

// Trace is the checker's observability sink: hierarchical spans (check →
// phase → condition chunk → prover query) and named counters, rendered
// as a JSON event stream (WriteJSON) or a Prometheus-style text snapshot
// (WriteText). Pass one to a Checker with WithObserver. A single Trace
// may observe many checks, including concurrent ones.
type Trace = obs.Trace

// NewTrace returns an empty observer whose clock starts now.
func NewTrace() *Trace { return obs.New() }

// PhaseError is the error CheckContext-style entry points return when a
// check is interrupted: it names the phase that was interrupted and
// unwraps to the cause — ctx.Err() on cancellation, or an
// *InternalError when a contained fault rejected the program.
type PhaseError = core.PhaseError

// InternalError is a panic contained at a checking boundary (a driver
// phase, a proving-pool worker, or a batch item), converted into a
// structured error that rejects the one program it hit. It carries the
// phase, a fingerprint of the program, and the condition being proved.
type InternalError = core.InternalError

// Budget is the resource envelope of one check: a wall-clock deadline,
// a solver step budget, and a per-condition proof timeout. The zero
// Budget disables governance with verdicts bit-identical to an
// ungoverned run. Exhaustion is fail-closed: affected conditions are
// reported as unproven violations carrying CodeResource, never
// accepted. Pass one with WithBudget.
type Budget = core.Budget

// Violation codes: the stable machine-readable classification carried in
// Violation.Code. Tools should match on these, never on description
// text.
const (
	CodeOOB     = "oob"     // array/pointer access outside its object's bounds
	CodeAlign   = "align"   // misaligned address
	CodeUninit  = "uninit"  // use of an uninitialized or unusable value
	CodeNullPtr = "nullptr" // possible null-pointer dereference
	CodeStack   = "stack"   // stack-manipulation safety (frame size/alignment)
	CodePolicy  = "policy"  // access the host policy does not grant
	CodePrecond = "precond" // unmet trusted-call argument state or precondition
	// CodeAlias marks an address that could not be proved alias-stable on
	// an architecture whose memory subsystem may translate arithmetically
	// equal but differently computed addresses inconsistently (hardware
	// aliasing). Emitted only for such architectures (RV32I here); SPARC
	// checks never carry it.
	CodeAlias = "alias"
	// CodeResource marks a condition left unproven because the check's
	// resource envelope (Budget) was exhausted — a conservative
	// rejection, never an acceptance.
	CodeResource = "resource"
)

// Checker is the configured, reusable entry point of the analysis. Zero
// or more functional options fix its tuning once; Check may then be
// called any number of times, from any number of goroutines.
//
//	tr := mcsafe.NewTrace()
//	c := mcsafe.New(mcsafe.WithParallelism(4), mcsafe.WithObserver(tr))
//	res, err := c.Check(ctx, prog, spec)
type Checker struct {
	opts Options
	obs  *obs.Trace
}

// CheckerOption is one functional configuration option for New.
type CheckerOption func(*Checker)

// WithParallelism sets the worker count for global verification
// (Phase 5): 0 means GOMAXPROCS, 1 forces the exact sequential legacy
// path. The verdict, violations, and their ordering are identical at
// every setting.
func WithParallelism(n int) CheckerOption {
	return func(c *Checker) { c.opts.Parallelism = n }
}

// WithObserver directs the checker's spans and counters into t. A nil t
// restores the default no-op observer.
func WithObserver(t *Trace) CheckerOption {
	return func(c *Checker) { c.obs = t }
}

// WithBudget sets the checker's resource envelope. Conditions whose
// proofs the envelope cuts short are reported as unproven violations
// with CodeResource (fail closed); a zero Budget disables governance.
func WithBudget(b Budget) CheckerOption {
	return func(c *Checker) { c.opts.Budget = b }
}

// WithMaxInductionIterations bounds the induction-iteration chains used
// to synthesize loop invariants (the paper finds 3 sufficient).
func WithMaxInductionIterations(k int) CheckerOption {
	return func(c *Checker) { c.opts.MaxInductionIterations = k }
}

// WithoutGeneralization disables the Fourier-Motzkin generalization
// enhancement of induction iteration (Section 5.2.1) — for ablations.
func WithoutGeneralization() CheckerOption {
	return func(c *Checker) { c.opts.DisableGeneralization = true }
}

// WithoutDNF disables the DNF-disjunct enhancement of induction
// iteration (Section 5.2.1) — for ablations.
func WithoutDNF() CheckerOption {
	return func(c *Checker) { c.opts.DisableDNF = true }
}

// New builds a Checker from functional options.
func New(options ...CheckerOption) *Checker {
	c := &Checker{}
	for _, o := range options {
		o(c)
	}
	return c
}

// Check runs the five-phase safety-checking analysis on one program
// against one host specification. The context is honored between phases
// and between Phase 5 condition chunks; on cancellation the error is a
// *PhaseError naming the interrupted phase and wrapping ctx.Err().
func (c *Checker) Check(ctx context.Context, prog *Program, spec *Spec) (*Result, error) {
	if prog == nil || spec == nil {
		return nil, fmt.Errorf("mcsafe: nil program or spec")
	}
	if pa, sa := prog.Arch(), spec.Arch(); pa != sa {
		return nil, fmt.Errorf("mcsafe: program architecture %q does not match spec architecture %q", pa, sa)
	}
	co := coreOptions(c.opts)
	co.Obs = c.obs
	res, err := core.CheckContext(ctx, prog.prog, spec.spec, co)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// CheckAll checks many program+policy pairs concurrently with a bounded
// worker pool (parallelism 0 means GOMAXPROCS), under the context. Each
// item is checked with this Checker's configuration unless its
// BatchItem.Opts override it (a zero Opts inherits the Checker's).
// Outcomes are indexed like items.
func (c *Checker) CheckAll(ctx context.Context, items []BatchItem, parallelism int) []BatchResult {
	inner := make([]core.CheckItem, len(items))
	for i, it := range items {
		var ci core.CheckItem
		if it.Prog != nil {
			ci.Prog = it.Prog.prog
		}
		if it.Spec != nil {
			ci.Spec = it.Spec.spec
		}
		opts := it.Opts
		if opts == (Options{}) {
			opts = c.opts
		}
		ci.Opts = coreOptions(opts)
		ci.Opts.Obs = c.obs
		inner[i] = ci
	}
	outcomes := core.CheckAllContext(ctx, inner, parallelism)
	out := make([]BatchResult, len(items))
	for i, oc := range outcomes {
		if oc.Err != nil {
			out[i] = BatchResult{Err: oc.Err}
			continue
		}
		out[i] = BatchResult{Result: wrapResult(oc.Result)}
	}
	return out
}

// wrapResult lifts an internal check result into the public Result.
func wrapResult(res *core.Result) *Result {
	return &Result{
		Safe:       res.Safe,
		Violations: res.Violations,
		Stats:      res.Stats,
		Times:      res.Times,
		arch:       res.G.Prog.Arch.Name(),
		inner:      res,
	}
}

// Explain renders the verdict path of one of the result's violations:
// its classification, the proof strategies the verifier tried with the
// formulas they posed and the weakest preconditions they reduced to,
// and — when the check was observed — the failed condition's span
// timing.
func (r *Result) Explain(v Violation) string {
	if r.inner == nil {
		return v.String() + "\n"
	}
	return r.inner.Explain(v)
}

// Trace returns the observer the check recorded into (nil when the
// check ran without one).
func (r *Result) Trace() *Trace {
	if r.inner == nil {
		return nil
	}
	return r.inner.Trace
}
