package mcsafe

// Robustness contracts as seen through the public API: an exhausted
// resource envelope degrades fail-closed to "resource"-coded violations
// (never an acceptance, never a merits verdict), a generous envelope is
// bit-identical to an ungoverned run, contained panics surface as
// structured *PhaseError/*InternalError chains, and neither the pool,
// the batch API, nor a cancelled check leaks goroutines.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mcsafe/internal/core"
	"mcsafe/internal/faults"
	"mcsafe/internal/leakcheck"
	"mcsafe/internal/progs"
)

// fig1Check assembles the Figure 1 program and runs it through a
// configured public Checker.
func fig1Check(t *testing.T, options ...CheckerOption) (*Result, error) {
	t.Helper()
	spec, err := ParseSpec(fig1Spec)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(fig1Asm, spec, "")
	if err != nil {
		t.Fatal(err)
	}
	return New(options...).Check(context.Background(), prog, spec)
}

// TestBudgetExhaustionFailsClosed: with a one-step solver budget, the
// Figure 1 program (safe on the merits) must be rejected with every
// global condition charged the stable "resource" code — and the check
// must return promptly, with the governance counters recording why.
func TestBudgetExhaustionFailsClosed(t *testing.T) {
	tr := NewTrace()
	start := time.Now()
	res, err := fig1Check(t, WithParallelism(1), WithObserver(tr),
		WithBudget(Budget{SolverSteps: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("budget-exhausted check took %v; exhaustion must not stall", elapsed)
	}
	if res.Safe {
		t.Fatal("budget exhaustion must never accept a program")
	}
	if len(res.Violations) == 0 {
		t.Fatal("unsafe result with no violations")
	}
	for _, v := range res.Violations {
		if v.Code != CodeResource {
			t.Errorf("violation %v: code %q, want %q", v, v.Code, CodeResource)
		}
	}
	if got := tr.Counter("budget_exhausted"); got < 1 {
		t.Errorf("budget_exhausted counter = %d, want >= 1", got)
	}
	if got := tr.Counter("resource_conds"); got != int64(len(res.Violations)) {
		t.Errorf("resource_conds counter = %d, want %d", got, len(res.Violations))
	}
}

// TestDeadlineExhaustionFailsClosed: an already-expired deadline must
// likewise degrade to resource-coded violations, not an acceptance or
// an error, and must charge the deadline counter.
func TestDeadlineExhaustionFailsClosed(t *testing.T) {
	tr := NewTrace()
	res, err := fig1Check(t, WithParallelism(1), WithObserver(tr),
		WithBudget(Budget{Deadline: time.Nanosecond}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe {
		t.Fatal("deadline exhaustion must never accept a program")
	}
	for _, v := range res.Violations {
		if v.Code != CodeResource {
			t.Errorf("violation %v: code %q, want %q", v, v.Code, CodeResource)
		}
	}
	if got := tr.Counter("deadline_hits"); got < 1 {
		t.Errorf("deadline_hits counter = %d, want >= 1", got)
	}
}

// TestBudgetExplainGolden locks the Explain rendering of a
// budget-exhausted violation: the resource-limited line with its
// re-run advice must be present and keep its golden shape. Regenerate
// with MCSAFE_REGEN=1.
func TestBudgetExplainGolden(t *testing.T) {
	res, err := fig1Check(t, WithParallelism(1), WithBudget(Budget{SolverSteps: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe || len(res.Violations) == 0 {
		t.Fatal("expected resource-coded violations")
	}
	var got bytes.Buffer
	got.WriteString(res.Explain(res.Violations[0]))
	if !strings.Contains(got.String(), "resource-limited:") {
		t.Fatalf("Explain output missing the resource-limited line:\n%s", got.String())
	}

	golden := filepath.Join("testdata", "budget_explain.golden")
	if os.Getenv("MCSAFE_REGEN") != "" {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with MCSAFE_REGEN=1)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("Explain diverged from %s (regenerate with MCSAFE_REGEN=1 if intended):\ngot:\n%swant:\n%s",
			golden, got.String(), want)
	}
}

// TestGenerousBudgetBitIdentical: a budget far above any program's needs
// must leave verdicts, violations, stats, and counters bit-identical to
// the ungoverned run — governance is observable only when it bites.
func TestGenerousBudgetBitIdentical(t *testing.T) {
	generous := Budget{Deadline: time.Hour, SolverSteps: 1 << 40, CondTimeout: time.Hour}
	for _, b := range progs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if slowPrograms[b.Name] {
				if testing.Short() {
					t.Skip("slow program: skipped with -short")
				}
				if raceEnabled {
					t.Skip("slow program: skipped under the race detector")
				}
			}
			prog, spec, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			run := func(budget Budget) (*core.Result, *Trace) {
				tr := NewTrace()
				res, err := core.Check(prog, spec, core.Options{
					Parallelism: 1, Obs: tr, Budget: budget,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res, tr
			}
			bare, bareTr := run(Budget{})
			gov, govTr := run(generous)
			if bare.Safe != gov.Safe {
				t.Errorf("Safe diverged: ungoverned %v, governed %v", bare.Safe, gov.Safe)
			}
			if !reflect.DeepEqual(bare.Violations, gov.Violations) {
				t.Errorf("violations diverged:\n ungoverned: %+v\n governed:   %+v",
					bare.Violations, gov.Violations)
			}
			if bare.Stats != gov.Stats {
				t.Errorf("stats diverged:\n ungoverned: %+v\n governed:   %+v", bare.Stats, gov.Stats)
			}
			if c1, c2 := bareTr.Counters(), govTr.Counters(); !reflect.DeepEqual(c1, c2) {
				t.Errorf("counters diverged:\n ungoverned: %v\n governed:   %v", c1, c2)
			}
		})
	}
}

// TestInternalErrorPropagation: a panic contained at a checking boundary
// must reach the public API as a *PhaseError wrapping an *InternalError
// that names the phase, fingerprints the program, and records the panic.
func TestInternalErrorPropagation(t *testing.T) {
	cases := []struct {
		point     faults.Point
		wantPhase string
		wantCond  bool // the error should name the condition being proved
	}{
		{faults.Lift, "prepare", false},
		{faults.SolverStep, "global", true},
	}
	for _, tc := range cases {
		t.Run(string(tc.point), func(t *testing.T) {
			restore := faults.Activate(faults.NewPlan(faults.Fault{Point: tc.point, Kind: faults.Panic}))
			defer restore()
			res, err := fig1Check(t, WithParallelism(2))
			if err == nil {
				t.Fatalf("contained panic returned a result: %+v", res)
			}
			var pe *PhaseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is not a *PhaseError: %T %v", err, err)
			}
			if pe.Phase != tc.wantPhase {
				t.Errorf("phase %q, want %q", pe.Phase, tc.wantPhase)
			}
			var ie *InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("error does not wrap an *InternalError: %v", err)
			}
			if !strings.Contains(ie.Panic, "injected panic") {
				t.Errorf("panic value not recorded: %q", ie.Panic)
			}
			if ie.ProgramHash == 0 {
				t.Error("InternalError without a program fingerprint")
			}
			if tc.wantCond && ie.Cond < 0 {
				t.Errorf("InternalError.Cond = %d, want the condition being proved", ie.Cond)
			}
		})
	}
}

// TestNoGoroutineLeaks: the proving pool, the batch API, a cancelled
// check, and a budget-exhausted check must all join every goroutine
// they start.
func TestNoGoroutineLeaks(t *testing.T) {
	defer leakcheck.Check(t)()
	spec, err := ParseSpec(fig1Spec)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(fig1Asm, spec, "")
	if err != nil {
		t.Fatal(err)
	}

	// Parallel pool.
	if _, err := New(WithParallelism(8)).Check(context.Background(), prog, spec); err != nil {
		t.Fatal(err)
	}

	// Batch API.
	items := []BatchItem{{Prog: prog, Spec: spec}, {Prog: prog, Spec: spec}, {Prog: prog, Spec: spec}}
	for _, out := range New().CheckAll(context.Background(), items, 2) {
		if out.Err != nil {
			t.Fatal(out.Err)
		}
	}

	// Cancelled check (cancellation races the check; either outcome is
	// fine, goroutines must still join).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	New(WithParallelism(4)).Check(ctx, prog, spec)

	// Budget-exhausted parallel check.
	if _, err := New(WithParallelism(4), WithBudget(Budget{SolverSteps: 1})).
		Check(context.Background(), prog, spec); err != nil {
		t.Fatal(err)
	}
}
