package mcsafe

import (
	"context"
	"sort"
	"strings"
	"testing"
)

// The RV32I end-to-end programs: the array-summation policy of Figure 1
// restated over the RV32I calling convention (arguments in %a0/%a1).
const rvSumSpec = `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %a0 = arr
invoke %a1 = n
allow V int ro
allow V int[n] rfo
`

// rvSumSafe sums arr[0..n) with word loads at word stride: every
// access is in bounds, aligned, and alias-stable.
const rvSumSafe = `
sum:
  mv a2, a0
  li a0, 0
  li a3, 0
loop:
  bge a3, a1, done
  slli a4, a3, 2
  add a4, a2, a4
  lw a5, 0(a4)
  add a0, a0, a5
  addi a3, a3, 1
  j loop
done:
  ret
`

// rvSumOOB runs the same loop one element too far (exit on n < i, so
// arr[n] is read).
const rvSumOOB = `
sum:
  mv a2, a0
  li a0, 0
  li a3, 0
loop:
  blt a1, a3, done
  slli a4, a3, 2
  add a4, a2, a4
  lw a5, 0(a4)
  add a0, a0, a5
  addi a3, a3, 1
  j loop
done:
  ret
`

// rvByteSpec and rvByteSum: summing a byte array with byte loads. Every
// access is in bounds and (trivially) aligned, but the addresses walk
// the array at byte stride — exactly the shape hardware aliasing makes
// unsafe, so the only failing condition class is "alias".
const rvByteSpec = `
region V
loc e  byte   state init region V summary
val buf byte[n] state {e} region V
constraint n >= 1
invoke %a0 = buf
invoke %a1 = n
allow V byte ro
allow V byte[n] rfo
`

const rvByteSum = `
bsum:
  mv a2, a0
  li a0, 0
  li a3, 0
loop:
  bge a3, a1, done
  add a4, a2, a3
  lbu a5, 0(a4)
  add a0, a0, a5
  addi a3, a3, 1
  j loop
done:
  ret
`

func checkArch(t *testing.T, arch, src, spec, entry string) *Result {
	t.Helper()
	s, err := ParseSpecArch(spec, arch)
	if err != nil {
		t.Fatal(err)
	}
	p, err := AssembleArch(arch, src, s, entry)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New().Check(context.Background(), p, s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// codeSet is the sorted set of violation codes in a result.
func codeSet(res *Result) []string {
	seen := map[string]bool{}
	for _, v := range res.Violations {
		seen[v.Code] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// TestRV32ISumSafe: the word-stride summation proves safe end to end —
// including the alias-stability conditions the rv32i front-end turns
// on, which must be emitted (visible in the conditions dump) and
// discharged.
func TestRV32ISumSafe(t *testing.T) {
	res := checkArch(t, "rv32i", rvSumSafe, rvSumSpec, "sum")
	if !res.Safe {
		t.Fatalf("safe RV32I summation rejected: %v", res.Violations)
	}
	if res.Arch() != "rv32i" {
		t.Errorf("result arch %q, want rv32i", res.Arch())
	}
	if !strings.Contains(res.Conditions(), "alias-stable") {
		t.Error("no alias-stability conditions were emitted for an aliasing architecture")
	}
}

// TestRV32ISumOOB: the off-by-one variant is rejected with the oob
// class; its alias conditions still discharge (the overrunning address
// is word-aligned, just out of bounds), so "alias" must not appear.
func TestRV32ISumOOB(t *testing.T) {
	res := checkArch(t, "rv32i", rvSumOOB, rvSumSpec, "sum")
	if res.Safe {
		t.Fatal("out-of-bounds RV32I summation accepted")
	}
	codes := codeSet(res)
	if got := strings.Join(codes, ","); got != CodeOOB {
		t.Errorf("violation codes %v, want exactly [%s]", codes, CodeOOB)
	}
}

// TestRV32IAliasUnstable: byte-stride addressing is in bounds and
// aligned but not alias-stable — the violation class specific to
// hardware-aliasing architectures, and only that class.
func TestRV32IAliasUnstable(t *testing.T) {
	res := checkArch(t, "rv32i", rvByteSum, rvByteSpec, "bsum")
	if res.Safe {
		t.Fatal("alias-unstable RV32I program accepted")
	}
	codes := codeSet(res)
	if got := strings.Join(codes, ","); got != CodeAlias {
		t.Errorf("violation codes %v, want exactly [%s]", codes, CodeAlias)
	}
}

// The SPARC statements of the same two summation programs, for the
// cross-ISA lockstep comparison below.
const spSumSpec = `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`

const spSumSafe = `
sum:
  mov %o0,%o2
  clr %o0
  clr %g3
loop:
  cmp %g3,%o1
  bge done
  nop
  sll %g3,2,%g2
  ld [%o2+%g2],%g2
  add %o0,%g2,%o0
  inc %g3
  ba loop
  nop
done:
  retl
  nop
`

const spSumOOB = `
sum:
  mov %o0,%o2
  clr %o0
  clr %g3
loop:
  cmp %g3,%o1
  bg done
  nop
  sll %g3,2,%g2
  ld [%o2+%g2],%g2
  add %o0,%g2,%o0
  inc %g3
  ba loop
  nop
done:
  retl
  nop
`

// TestCrossISALockstep: the same program checked through both
// front-ends reaches the same verdict and charges the same violation
// classes — the portability claim of the architecture seam, stated as
// a test. (SPARC's exit test is "g > n" where RV32I's is "n < i": the
// identical loop logic under each ISA's branch repertoire.)
func TestCrossISALockstep(t *testing.T) {
	cases := []struct {
		name         string
		spSrc, rvSrc string
		wantSafe     bool
	}{
		{"sum-safe", spSumSafe, rvSumSafe, true},
		{"sum-oob", spSumOOB, rvSumOOB, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := checkArch(t, "sparc", tc.spSrc, spSumSpec, "sum")
			rv := checkArch(t, "rv32i", tc.rvSrc, rvSumSpec, "sum")
			if sp.Safe != tc.wantSafe || rv.Safe != tc.wantSafe {
				t.Fatalf("verdicts diverge: sparc=%v rv32i=%v want %v\nsparc: %v\nrv32i: %v",
					sp.Safe, rv.Safe, tc.wantSafe, sp.Violations, rv.Violations)
			}
			spCodes, rvCodes := codeSet(sp), codeSet(rv)
			if strings.Join(spCodes, ",") != strings.Join(rvCodes, ",") {
				t.Errorf("violation classes diverge: sparc=%v rv32i=%v", spCodes, rvCodes)
			}
		})
	}
}

// TestArchMismatchRejected: a program checks only against a spec parsed
// for its own architecture.
func TestArchMismatchRejected(t *testing.T) {
	rvSpec, err := ParseSpecArch(rvSumSpec, "rv32i")
	if err != nil {
		t.Fatal(err)
	}
	spSpec, err := ParseSpecArch(spSumSpec, "sparc")
	if err != nil {
		t.Fatal(err)
	}
	p, err := AssembleArch("rv32i", rvSumSafe, rvSpec, "sum")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().Check(context.Background(), p, spSpec); err == nil {
		t.Fatal("rv32i program accepted against a sparc spec")
	}
}

// TestFingerprintArchDomainSeparation: identical machine words
// submitted under different ISAs decode to different programs and must
// hash apart — the regression guard for the v3 fingerprint encoding,
// which leads with the architecture name. 0x40000033 is decodable by
// both front-ends (SPARC: call; RV32I: sub x0, x0, x0).
func TestFingerprintArchDomainSeparation(t *testing.T) {
	words := []uint32{0x40000033, 0x40000033}
	sp, err := FromWordsArch("sparc", words, 0x10000, map[string]int{"entry": 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := FromWordsArch("rv32i", words, 0x10000, map[string]int{"entry": 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Fingerprint() == rv.Fingerprint() {
		t.Fatalf("cross-ISA fingerprint collision: %s", sp.Fingerprint())
	}
}

// TestArches: both front-ends are linked and discoverable.
func TestArches(t *testing.T) {
	got := strings.Join(Arches(), ",")
	if got != "rv32i,sparc" {
		t.Errorf("Arches() = %q, want rv32i,sparc", got)
	}
}
