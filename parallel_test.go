package mcsafe

// Determinism of the Phase 5 worker pool: at every Parallelism setting
// the checker must report byte-identical verdicts — the same Safe flag,
// the same violation list in the same order, and the same per-condition
// proved/not-proved verdicts. The pool guarantees this by partitioning
// the conditions independently of the worker count, proving each chunk
// with a fresh engine, and sharing only boolean verdict caches keyed by
// complete canonical formulas (see internal/vcgen/pool.go).

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"mcsafe/internal/core"
	"mcsafe/internal/progs"
)

// slowPrograms are the Figure 9 programs whose single check takes
// seconds; they get one repetition (several for the rest) and are
// skipped under -short and under the race detector.
var slowPrograms = map[string]bool{
	"MD5":            true,
	"Stack-smashing": true,
	"HeapSort":       true,
	"HeapSort2":      true,
}

// verdict is the observable outcome a host cares about; everything in
// it must be independent of the Parallelism setting.
type verdict struct {
	Safe         bool
	Violations   []core.Violation
	CondsProved  []bool
	GlobalConds  int
	Instructions int
}

func verdictOf(res *core.Result) verdict {
	v := verdict{
		Safe:         res.Safe,
		Violations:   res.Violations,
		GlobalConds:  res.Stats.GlobalConds,
		Instructions: res.Stats.Instructions,
	}
	for _, cr := range res.Conds {
		v.CondsProved = append(v.CondsProved, cr.Proved)
	}
	return v
}

// TestParallelDeterminism checks every Figure 9 program at Parallelism
// 1 (the exact legacy path), 4, and GOMAXPROCS, and requires identical
// verdicts. The fast programs run several repetitions per setting so a
// scheduling-dependent divergence would have more chances to surface.
func TestParallelDeterminism(t *testing.T) {
	for _, b := range progs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if slowPrograms[b.Name] {
				if testing.Short() {
					t.Skip("slow program: skipped with -short")
				}
				if raceEnabled {
					t.Skip("slow program: skipped under the race detector")
				}
			}
			prog, spec, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			reps := 3
			if slowPrograms[b.Name] {
				reps = 1
			}
			settings := []int{1, 4, runtime.GOMAXPROCS(0)}
			var want verdict
			for rep := 0; rep < reps; rep++ {
				for _, par := range settings {
					res, err := core.Check(prog, spec, core.Options{Parallelism: par})
					if err != nil {
						t.Fatalf("parallelism %d: %v", par, err)
					}
					got := verdictOf(res)
					if got.Safe != b.WantSafe {
						t.Fatalf("parallelism %d: Safe = %v, want %v", par, got.Safe, b.WantSafe)
					}
					if rep == 0 && par == settings[0] {
						want = got
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("parallelism %d (rep %d): verdict diverged\n got: %s\nwant: %s",
							par, rep, describe(got), describe(want))
					}
				}
			}
		})
	}
}

func describe(v verdict) string {
	return fmt.Sprintf("safe=%v violations=%v proved=%v conds=%d insns=%d",
		v.Safe, v.Violations, v.CondsProved, v.GlobalConds, v.Instructions)
}

// TestCheckAllBatch exercises the batch API: the outcomes must match
// item-by-item checks, errors must stay positional, and nil items must
// produce errors rather than panics.
func TestCheckAllBatch(t *testing.T) {
	b := progs.Get("Sum")
	prog, spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	items := []core.CheckItem{
		{Prog: prog, Spec: spec},
		{Prog: nil, Spec: spec},
		{Prog: prog, Spec: spec, Opts: core.Options{Parallelism: 1}},
	}
	for _, par := range []int{0, 1, 2, 8} {
		out := core.CheckAll(items, par)
		if len(out) != len(items) {
			t.Fatalf("parallelism %d: %d outcomes for %d items", par, len(out), len(items))
		}
		for _, i := range []int{0, 2} {
			if out[i].Err != nil {
				t.Fatalf("parallelism %d item %d: %v", par, i, out[i].Err)
			}
			if !out[i].Result.Safe {
				t.Fatalf("parallelism %d item %d: Sum reported unsafe", par, i)
			}
		}
		if out[1].Err == nil {
			t.Fatalf("parallelism %d: nil program produced no error", par)
		}
	}
	if out := core.CheckAll(nil, 4); len(out) != 0 {
		t.Fatalf("empty batch returned %d outcomes", len(out))
	}
}

// TestCheckAllPublic drives Checker.CheckAll with assembled programs,
// matching what cmd/mcsafe's batch mode does, and keeps the deprecated
// package-level CheckAll shim covered.
func TestCheckAllPublic(t *testing.T) {
	spec, err := ParseSpec(`
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(`
1:  mov %o0,%o2
2:  clr %o0
3:  cmp %o0,%o1
4:  bge 12
5:  clr %g3
6:  sll %g3,2,%g2
7:  ld [%o2+%g2],%g2
8:  inc %g3
9:  cmp %g3,%o1
10: bl 6
11: add %o0,%g2,%o0
12: retl
13: nop
`, spec, "")
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{Prog: prog, Spec: spec},
		{Prog: prog, Spec: spec},
		{Prog: nil, Spec: spec},
	}
	out := New().CheckAll(context.Background(), items, 2)
	if len(out) != 3 {
		t.Fatalf("%d outcomes for 3 items", len(out))
	}
	// The deprecated shim must agree with the Checker path.
	if shim := CheckAll(items[:1], 1); len(shim) != 1 || shim[0].Err != nil || !shim[0].Result.Safe {
		t.Fatalf("deprecated CheckAll shim disagrees: %+v", shim)
	}
	for _, i := range []int{0, 1} {
		if out[i].Err != nil {
			t.Fatalf("item %d: %v", i, out[i].Err)
		}
		if !out[i].Result.Safe {
			t.Fatalf("item %d: expected safe", i)
		}
	}
	if out[2].Err == nil {
		t.Fatal("nil program produced no error")
	}
}
