package vstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func key(i int) Key {
	return Key{
		Program: fmt.Sprintf("prog-%04d", i),
		Policy:  "policy-a",
		Checker: "mcsafe-test",
	}
}

func verdict(i, size int) []byte {
	pad := bytes.Repeat([]byte("x"), size)
	return []byte(fmt.Sprintf(`{"schema":1,"safe":true,"n":%d,"pad":%q}`, i, pad))
}

// get is the test shorthand for lookups that must not hit I/O errors.
func get(t *testing.T, s *Store, k Key) ([]byte, bool) {
	t.Helper()
	v, ok, err := s.Get(k)
	if err != nil {
		t.Fatalf("Get(%v): unexpected I/O error: %v", k, err)
	}
	return v, ok
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := verdict(1, 10)
	if err := s.Put(key(1), want); err != nil {
		t.Fatal(err)
	}
	got, ok := get(t, s, key(1))
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = (%q, %v), want (%q, true)", got, ok, want)
	}
	if _, ok := get(t, s, key(2)); ok {
		t.Fatal("Get of unstored key hit")
	}
	// A different checker version never sees the verdict.
	other := key(1)
	other.Checker = "mcsafe-other"
	if _, ok := get(t, s, other); ok {
		t.Fatal("verdict leaked across checker versions")
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Misses != 2 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInvalidKeysAndVerdicts(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(Key{}, verdict(0, 1)); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Put(key(0), nil); err == nil {
		t.Error("empty verdict accepted")
	}
	if err := s.Put(key(0), []byte("not json")); err == nil {
		t.Error("non-JSON verdict accepted")
	}
	if _, ok := get(t, s, Key{}); ok {
		t.Error("empty key hit")
	}
	if s.Stats().Rejects == 0 {
		t.Error("rejects not counted")
	}
}

// TestRestartPersistence is the core serving contract: verdicts written
// before a restart are served after it, bit-identically, from the disk
// layer (first hit) and then from memory.
func TestRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), verdict(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := get(t, s, key(0)); ok {
		t.Fatal("closed store served a verdict")
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("reopened store has %d records, want %d", s2.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok := get(t, s2, key(i))
		if !ok {
			t.Fatalf("key %d lost across restart", i)
		}
		if !bytes.Equal(got, verdict(i, 100)) {
			t.Fatalf("key %d verdict changed across restart", i)
		}
	}
	st := s2.Stats()
	if st.DiskHits != n || st.MemHits != 0 {
		t.Errorf("first pass after restart: disk=%d mem=%d, want %d/0", st.DiskHits, st.MemHits, n)
	}
	if got, ok := get(t, s2, key(3)); !ok || !bytes.Equal(got, verdict(3, 100)) {
		t.Fatal("promoted record wrong")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Errorf("second read was not a memory hit: %+v", st)
	}
}

// TestEvictionProperty drives random puts and gets against a reference
// LRU model and asserts after every operation that (a) the disk layer
// never exceeds its byte budget, and (b) exactly the model's surviving
// keys are retrievable after a reopen (memory layer emptied). A single
// shard keeps the global-LRU reference model exact; the sharded
// variants are covered by TestShardedBudgets.
func TestEvictionProperty(t *testing.T) {
	const budget = 4096
	rng := rand.New(rand.NewSource(1))
	dir := t.TempDir()
	opts := Options{DiskBytes: budget, MemBytes: 512, Shards: 1, NoSync: true}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Reference model: ordered list of (id, size), front = MRU.
	type modelEntry struct {
		i    int
		size int64
	}
	var model []modelEntry // [0] = most recent
	touch := func(i int, size int64) {
		for j, e := range model {
			if e.i == i {
				model = append(model[:j], model[j+1:]...)
				break
			}
		}
		model = append([]modelEntry{{i, size}}, model...)
		var total int64
		for _, e := range model {
			total += e.size
		}
		for total > budget {
			total -= model[len(model)-1].size
			model = model[:len(model)-1]
		}
	}
	// recordSize asks the disk for the just-written record's size (the
	// envelope adds overhead the model must account for exactly).
	recordSize := func(i int) int64 {
		info, err := os.Stat(s.recordPath(key(i).id()))
		if err != nil {
			t.Fatalf("record for key %d missing right after Put: %v", i, err)
		}
		return info.Size()
	}

	for op := 0; op < 400; op++ {
		i := rng.Intn(40)
		if rng.Intn(3) == 0 {
			// A get refreshes recency in both store and model (only
			// when the model still holds the key — a store hit on a
			// model-evicted key would itself be a failure below).
			_, ok := get(t, s, key(i))
			inModel := false
			for _, e := range model {
				if e.i == i {
					inModel = true
					touch(i, e.size)
					break
				}
			}
			if ok != inModel {
				t.Fatalf("op %d: Get(%d) hit=%v, model=%v", op, i, ok, inModel)
			}
			continue
		}
		size := 20 + rng.Intn(200)
		if err := s.Put(key(i), verdict(i, size)); err != nil {
			t.Fatalf("op %d: Put: %v", op, err)
		}
		touch(i, recordSize(i))

		st := s.Stats()
		if st.DiskBytes > budget {
			t.Fatalf("op %d: disk layer at %d bytes exceeds budget %d", op, st.DiskBytes, budget)
		}
		if st.MemBytes > 512 {
			t.Fatalf("op %d: memory layer at %d bytes exceeds budget 512", op, st.MemBytes)
		}
	}

	if s.Stats().DiskEvictions == 0 {
		t.Fatal("property run never evicted; budget too large for the workload")
	}

	// Survivors must be exactly the model's, even after a restart.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	inModel := map[int]bool{}
	for _, e := range model {
		inModel[e.i] = true
	}
	for i := 0; i < 40; i++ {
		_, ok := get(t, s2, key(i))
		if ok != inModel[i] {
			t.Errorf("after restart: key %d present=%v, model says %v", i, ok, inModel[i])
		}
	}
}

// TestShardedBudgets: with N shards the total footprint stays within
// the overall budgets while every shard enforces its own slice, and a
// reopen with a different shard count still serves every surviving
// record (the layout is stripe-count-independent).
func TestShardedBudgets(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{DiskBytes: 1 << 20, MemBytes: 1 << 16, Shards: 8, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 8 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	const n = 64
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), verdict(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.DiskBytes > 1<<20 || st.MemBytes > 1<<16 {
		t.Fatalf("budgets exceeded: %+v", st)
	}
	if st.Shards != 8 {
		t.Fatalf("Stats.Shards = %d", st.Shards)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a different stripe count: every record still serves.
	s2, err := Open(dir, Options{Shards: 3, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < n; i++ {
		got, ok := get(t, s2, key(i))
		if !ok || !bytes.Equal(got, verdict(i, 100)) {
			t.Fatalf("key %d lost or changed across shard-count change", i)
		}
	}
}

// TestConcurrentAccess hammers overlapping keys from many goroutines;
// run under -race this is the store's data-race test. Any hit must
// return the exact bytes some Put stored for that key.
func TestConcurrentAccess(t *testing.T) {
	s, err := Open(t.TempDir(), Options{DiskBytes: 1 << 20, MemBytes: 1 << 14, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const (
		workers = 8
		keys    = 16
		rounds  = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				i := rng.Intn(keys)
				if rng.Intn(2) == 0 {
					if err := s.Put(key(i), verdict(i, 50)); err != nil {
						errs <- err
						return
					}
				} else if got, ok, err := s.Get(key(i)); err != nil {
					errs <- err
					return
				} else if ok && !bytes.Equal(got, verdict(i, 50)) {
					errs <- fmt.Errorf("key %d: wrong bytes", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCorruptionTolerance: a truncated or overwritten record is a miss
// (never a wrong verdict), is quarantined as evidence, and the slot is
// re-fillable.
func TestCorruptionTolerance(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), verdict(1, 10)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt the record on disk.
	var recPath string
	filepath.Walk(filepath.Join(dir, "records"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			recPath = path
		}
		return nil
	})
	if recPath == "" {
		t.Fatal("no record file written")
	}
	if err := os.WriteFile(recPath, []byte(`{"schema":1,"garbage`), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := get(t, s2, key(1)); ok {
		t.Fatal("corrupt record served")
	}
	if st := s2.Stats(); st.Corrupt != 1 || st.Quarantined != 1 {
		t.Errorf("corruption not counted: %+v", st)
	}
	if _, err := os.Stat(recPath); !os.IsNotExist(err) {
		t.Error("corrupt record left in the records tree")
	}
	// The evidence survives in quarantine/.
	qfiles, err := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if err != nil || len(qfiles) != 1 {
		t.Errorf("quarantine holds %d files (err=%v), want 1", len(qfiles), err)
	}
	if err := s2.Put(key(1), verdict(1, 10)); err != nil {
		t.Fatal(err)
	}
	if got, ok := get(t, s2, key(1)); !ok || !bytes.Equal(got, verdict(1, 10)) {
		t.Fatal("slot not re-fillable after corruption")
	}
}

// TestLiveCorruptionQuarantined: corruption that appears while the
// store is open (bit rot under a live index entry) is caught by the
// read-path verification, quarantined, and reported as a miss.
func TestLiveCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MemBytes: -1}) // no memory layer: force disk reads
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(key(1), verdict(1, 10)); err != nil {
		t.Fatal(err)
	}
	recPath := s.recordPath(key(1).id())
	if err := os.WriteFile(recPath, []byte(`torn!`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := get(t, s, key(1)); ok {
		t.Fatal("live-corrupted record served")
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Quarantined != 1 {
		t.Errorf("live corruption not counted: %+v", st)
	}
}

// TestKeyMismatchIsMiss: a record answering for a different key (as
// after a hypothetical file-name collision) is never served.
func TestKeyMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(1), verdict(1, 10)); err != nil {
		t.Fatal(err)
	}
	// Graft key(1)'s record file onto key(2)'s id.
	src := s.recordPath(key(1).id())
	dst := s.recordPath(key(2).id())
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := get(t, s2, key(2)); ok {
		t.Fatal("record served for a key it does not answer for")
	}
	if got, ok := get(t, s2, key(1)); !ok || !bytes.Equal(got, verdict(1, 10)) {
		t.Fatal("legitimate record lost")
	}
}

func TestOversizeRejected(t *testing.T) {
	s, err := Open(t.TempDir(), Options{DiskBytes: 256, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(key(1), verdict(1, 1024)); err != nil {
		t.Fatalf("oversize put errored: %v", err)
	}
	if _, ok := get(t, s, key(1)); ok {
		t.Fatal("oversize verdict stored")
	}
	if st := s.Stats(); st.Rejects != 1 || st.DiskEntries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestLRUOrderSurvivesRestart: access order, not write order, decides
// eviction after a reopen (mtimes persist the order).
func TestLRUOrderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(key(i), verdict(i, 40)); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes even on coarse filesystem clocks.
		now := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(s.recordPath(key(i).id()), now, now)
	}
	// Touch key 0 so it becomes the most recent on disk.
	now := time.Now()
	os.Chtimes(s.recordPath(key(0).id()), now, now)
	s.Close()

	rec, err := os.Stat(filepath.Join(dir, "records", key(0).id()[:2], key(0).id()+".json"))
	if err != nil {
		t.Fatal(err)
	}
	// Budget for roughly two records: the reopen must evict the oldest.
	s2, err := Open(dir, Options{DiskBytes: 2*rec.Size() + 10, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := get(t, s2, key(0)); !ok {
		t.Error("most recently used record evicted on reopen")
	}
	if _, ok := get(t, s2, key(1)); ok {
		t.Error("least recently used record survived a shrunk budget")
	}
}

// TestProbe: a healthy store probes clean; a store whose directory is
// unwritable reports the failure.
func TestProbe(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Probe(); err != nil {
		t.Fatalf("healthy store probe failed: %v", err)
	}
	if os.Getuid() == 0 {
		t.Log("running as root: skipping the unwritable-directory half")
		return
	}
	if err := os.Chmod(filepath.Join(dir, "tmp"), 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(filepath.Join(dir, "tmp"), 0o755)
	if err := s.Probe(); err == nil {
		t.Fatal("probe of unwritable store succeeded")
	}
}
