// Package vstore is the checker's persistent verdict store: a two-layer
// cache mapping content-addressed keys — (program fingerprint, policy
// hash, checker version) — to wire-encoded Results. The in-memory layer
// is a bytes-bounded LRU serving repeat submissions in microseconds;
// under it sits a disk-backed layer whose records survive restarts, are
// written atomically (write to a temp file, then rename), and are
// evicted least-recently-used when the store exceeds its size budget.
//
// The store holds opaque verdict bytes: it returns on a hit exactly the
// bytes that were Put, which is what lets a warm submission's Result be
// bit-identical to the cold check that populated it. Callers must not
// modify returned slices.
package vstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Key addresses one verdict: the program's content address, the
// policy's content address, and the checker version that produced the
// verdict (all three rendered as strings; see mcsafe.Hash and
// mcsafe.CheckerVersion). A verdict is valid for exactly this triple —
// a different program, policy, or checker release never observes it.
type Key struct {
	Program string
	Policy  string
	Checker string
}

// Valid reports whether every component is set.
func (k Key) Valid() bool { return k.Program != "" && k.Policy != "" && k.Checker != "" }

// id derives the record's file name: a SHA-256 over the triple with
// unambiguous separators, hex-encoded. Hashing (rather than joining)
// keeps arbitrary key strings path-safe.
func (k Key) id() string {
	h := sha256.New()
	for _, part := range []string{"mcsafe/vstore/v1", k.Program, k.Policy, k.Checker} {
		fmt.Fprintf(h, "%d:%s,", len(part), part)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Options tunes a store. The zero value gets sensible defaults.
type Options struct {
	// MemBytes bounds the in-memory layer's verdict bytes
	// (default 64 MiB; negative disables the layer).
	MemBytes int64
	// DiskBytes bounds the disk layer's record bytes (default 1 GiB).
	// A Put that would exceed it evicts least-recently-used records
	// first; a single record larger than the whole budget is rejected
	// (counted in Stats.Rejects, not an error).
	DiskBytes int64
}

const (
	defaultMemBytes  = 64 << 20
	defaultDiskBytes = 1 << 30
	// recordSchema versions the on-disk envelope.
	recordSchema = 1
)

// record is the on-disk envelope: the key it answers for (verified on
// read — a hash collision or a corrupted file can turn into a miss, but
// never into a wrong verdict) and the opaque verdict bytes.
type record struct {
	Schema      int             `json:"schema"`
	Program     string          `json:"program"`
	Policy      string          `json:"policy"`
	Checker     string          `json:"checker"`
	CreatedUnix int64           `json:"created_unix"`
	Verdict     json.RawMessage `json:"verdict"`
}

// Stats is a point-in-time snapshot of the store's counters and gauges.
type Stats struct {
	MemHits       int64 `json:"mem_hits"`
	DiskHits      int64 `json:"disk_hits"`
	Misses        int64 `json:"misses"`
	Puts          int64 `json:"puts"`
	MemEvictions  int64 `json:"mem_evictions"`
	DiskEvictions int64 `json:"disk_evictions"`
	// Rejects counts Puts dropped because the record alone exceeds the
	// disk budget or the key/verdict was invalid.
	Rejects int64 `json:"rejects"`
	// Corrupt counts disk records that failed to decode or answered for
	// a different key; they are removed and the lookup misses.
	Corrupt int64 `json:"corrupt"`

	MemBytes    int64 `json:"mem_bytes"`
	DiskBytes   int64 `json:"disk_bytes"`
	MemEntries  int   `json:"mem_entries"`
	DiskEntries int   `json:"disk_entries"`
}

// Store is a two-layer verdict store. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	memHits, diskHits, misses, puts atomic.Int64
	memEvics, diskEvics             atomic.Int64
	rejects, corrupt                atomic.Int64

	mu        sync.Mutex
	closed    bool
	mem       map[string]*list.Element // id -> *memEntry element
	memList   *list.List               // front = most recently used
	memBytes  int64
	disk      map[string]*list.Element // id -> *diskEntry element
	diskList  *list.List               // front = most recently used
	diskBytes int64
}

type memEntry struct {
	id      string
	verdict []byte
}

type diskEntry struct {
	id   string
	size int64
}

// Open opens (creating as needed) a verdict store rooted at dir. The
// disk index is rebuilt from the record files, ordered by their
// modification times, so the LRU eviction order survives restarts.
// Leftover temp files from an interrupted Put are removed.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MemBytes == 0 {
		opts.MemBytes = defaultMemBytes
	}
	if opts.DiskBytes == 0 {
		opts.DiskBytes = defaultDiskBytes
	}
	if err := os.MkdirAll(filepath.Join(dir, "records"), 0o755); err != nil {
		return nil, fmt.Errorf("vstore: %v", err)
	}
	tmpDir := filepath.Join(dir, "tmp")
	if err := os.RemoveAll(tmpDir); err != nil {
		return nil, fmt.Errorf("vstore: %v", err)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return nil, fmt.Errorf("vstore: %v", err)
	}
	s := &Store{
		dir: dir, opts: opts,
		mem: make(map[string]*list.Element), memList: list.New(),
		disk: make(map[string]*list.Element), diskList: list.New(),
	}
	type found struct {
		id    string
		size  int64
		mtime time.Time
	}
	var entries []found
	root := filepath.Join(dir, "records")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil // raced with an eviction; skip
		}
		id := d.Name()[:len(d.Name())-len(".json")]
		entries = append(entries, found{id: id, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("vstore: scanning %s: %v", root, err)
	}
	// Oldest first, so PushFront leaves the most recently used at the
	// front — the same order a live store maintains.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].id < entries[j].id
	})
	for _, e := range entries {
		s.disk[e.id] = s.diskList.PushFront(&diskEntry{id: e.id, size: e.size})
		s.diskBytes += e.size
	}
	// The reopened store may exceed a (newly lowered) budget.
	s.evictDiskLocked()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Get returns the verdict bytes stored for k, consulting the in-memory
// layer first and falling back to disk (promoting the record into
// memory on a disk hit). The returned slice must not be modified.
//
// The disk read runs outside the store mutex, so a cold lookup never
// blocks concurrent in-memory hits; the entry is revalidated under the
// lock before the record is promoted.
func (s *Store) Get(k Key) ([]byte, bool) {
	if !k.Valid() {
		s.misses.Add(1)
		return nil, false
	}
	id := k.id()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	if el, ok := s.mem[id]; ok {
		s.memList.MoveToFront(el)
		if del, ok := s.disk[id]; ok {
			s.diskList.MoveToFront(del)
		}
		verdict := el.Value.(*memEntry).verdict
		s.mu.Unlock()
		s.memHits.Add(1)
		return verdict, true
	}
	if _, ok := s.disk[id]; !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	s.mu.Unlock()

	path := s.recordPath(id)
	data, err := os.ReadFile(path)
	var rec record
	bad := err != nil || json.Unmarshal(data, &rec) != nil ||
		rec.Program != k.Program || rec.Policy != k.Policy || rec.Checker != k.Checker ||
		len(rec.Verdict) == 0

	s.mu.Lock()
	el, present := s.disk[id]
	if present && bad {
		// Unreadable, corrupt, or answering for a different key:
		// fail safe to a miss and drop the record. (If the entry is
		// gone, a concurrent Get already dropped it — or a concurrent
		// eviction removed the file mid-read, which is not corruption.)
		s.removeDiskLocked(el)
		s.mu.Unlock()
		os.Remove(path)
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	if bad || s.closed {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	verdict := []byte(rec.Verdict)
	if present {
		// Still indexed: refresh recency and promote into memory. (If
		// evicted while we read, serve the verdict — it answered for
		// exactly this key — without resurrecting the entry.)
		s.diskList.MoveToFront(el)
		s.insertMemLocked(id, verdict)
	}
	s.mu.Unlock()
	if present {
		now := time.Now()
		os.Chtimes(path, now, now) // best effort: persist the LRU order
	}
	s.diskHits.Add(1)
	return verdict, true
}

// Put stores verdict under k in both layers. The bytes are stored
// verbatim: a later Get returns exactly them. Storing is idempotent —
// re-putting an existing key refreshes its recency and contents.
func (s *Store) Put(k Key, verdict []byte) error {
	if !k.Valid() || len(verdict) == 0 {
		s.rejects.Add(1)
		return fmt.Errorf("vstore: invalid key or empty verdict")
	}
	if !json.Valid(verdict) {
		s.rejects.Add(1)
		return fmt.Errorf("vstore: verdict is not valid JSON")
	}
	id := k.id()
	rec := record{
		Schema: recordSchema, Program: k.Program, Policy: k.Policy,
		Checker: k.Checker, CreatedUnix: time.Now().Unix(),
		Verdict: json.RawMessage(verdict),
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("vstore: %v", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("vstore: store is closed")
	}
	if int64(len(data)) > s.opts.DiskBytes {
		s.rejects.Add(1)
		return nil // silently uncacheable: larger than the whole budget
	}
	// Atomic write-then-rename: a crash mid-write leaves only a temp
	// file (cleared on the next Open), never a torn record.
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return fmt.Errorf("vstore: %v", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("vstore: %v", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("vstore: %v", err)
	}
	path := s.recordPath(id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("vstore: %v", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("vstore: %v", err)
	}
	if el, ok := s.disk[id]; ok {
		s.diskBytes += int64(len(data)) - el.Value.(*diskEntry).size
		el.Value.(*diskEntry).size = int64(len(data))
		s.diskList.MoveToFront(el)
	} else {
		s.disk[id] = s.diskList.PushFront(&diskEntry{id: id, size: int64(len(data))})
		s.diskBytes += int64(len(data))
	}
	s.insertMemLocked(id, verdict)
	s.evictDiskLocked()
	s.puts.Add(1)
	return nil
}

// Len returns the number of records in the disk layer.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.disk)
}

// Stats snapshots the store's counters and gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		MemBytes: s.memBytes, DiskBytes: s.diskBytes,
		MemEntries: len(s.mem), DiskEntries: len(s.disk),
	}
	s.mu.Unlock()
	st.MemHits = s.memHits.Load()
	st.DiskHits = s.diskHits.Load()
	st.Misses = s.misses.Load()
	st.Puts = s.puts.Load()
	st.MemEvictions = s.memEvics.Load()
	st.DiskEvictions = s.diskEvics.Load()
	st.Rejects = s.rejects.Load()
	st.Corrupt = s.corrupt.Load()
	return st
}

// Close marks the store closed: subsequent Gets miss and Puts fail. All
// writes are synchronous, so there is nothing to flush.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.mem = make(map[string]*list.Element)
	s.memList = list.New()
	s.memBytes = 0
	return nil
}

func (s *Store) recordPath(id string) string {
	return filepath.Join(s.dir, "records", id[:2], id+".json")
}

// insertMemLocked inserts (or refreshes) a verdict in the memory layer
// and evicts from the back until the layer fits its budget.
func (s *Store) insertMemLocked(id string, verdict []byte) {
	if s.opts.MemBytes < 0 || int64(len(verdict)) > s.opts.MemBytes {
		return
	}
	if el, ok := s.mem[id]; ok {
		s.memBytes += int64(len(verdict)) - int64(len(el.Value.(*memEntry).verdict))
		el.Value.(*memEntry).verdict = verdict
		s.memList.MoveToFront(el)
	} else {
		s.mem[id] = s.memList.PushFront(&memEntry{id: id, verdict: verdict})
		s.memBytes += int64(len(verdict))
	}
	for s.memBytes > s.opts.MemBytes {
		back := s.memList.Back()
		if back == nil {
			break
		}
		e := back.Value.(*memEntry)
		s.memList.Remove(back)
		delete(s.mem, e.id)
		s.memBytes -= int64(len(e.verdict))
		s.memEvics.Add(1)
	}
}

// evictDiskLocked drops least-recently-used records until the disk
// layer fits its budget.
func (s *Store) evictDiskLocked() {
	for s.diskBytes > s.opts.DiskBytes {
		back := s.diskList.Back()
		if back == nil {
			break
		}
		e := back.Value.(*diskEntry)
		s.removeDiskLocked(back)
		os.Remove(s.recordPath(e.id))
		s.diskEvics.Add(1)
	}
}

// removeDiskLocked unlinks a disk index entry (not the file).
func (s *Store) removeDiskLocked(el *list.Element) {
	e := el.Value.(*diskEntry)
	s.diskList.Remove(el)
	delete(s.disk, e.id)
	s.diskBytes -= e.size
}
