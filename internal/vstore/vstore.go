// Package vstore is the checker's persistent verdict store: a two-layer
// cache mapping content-addressed keys — (program fingerprint, policy
// hash, checker version) — to wire-encoded Results. The in-memory layer
// is a bytes-bounded LRU serving repeat submissions in microseconds;
// under it sits a disk-backed layer whose records survive restarts and
// crashes and are evicted least-recently-used when the store exceeds
// its size budget.
//
// The store is sharded: records fan out across 256 prefix directories
// (the first fingerprint byte), grouped into N lock stripes, each with
// its own mutex, LRU lists, and byte budgets — concurrent Puts to
// different shards never contend, and the slow part of a commit (the
// temp-file write and fsync) runs outside every lock. The layout does
// not depend on the stripe count, so a store can be reopened with any
// Shards setting.
//
// Commits are crash-safe: a record counts as committed only after the
// temp file is written and fsynced, renamed into place, and the parent
// directory fsynced (Options.NoSync trades that for speed in tests). A
// crash at any earlier point leaves a temp file (cleared on the next
// Open) or a torn record; Open's recovery scan re-verifies every
// record's embedded key and moves anything corrupt or torn into
// quarantine/ — evidence preserved, never served — before rebuilding
// the LRU state from modification times.
//
// All filesystem access goes through internal/vfs, so the faults
// harness can fail any read, write, sync, or rename deterministically.
//
// The store holds opaque verdict bytes: it returns on a hit exactly the
// bytes that were Put, which is what lets a warm submission's Result be
// bit-identical to the cold check that populated it. Callers must not
// modify returned slices.
package vstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mcsafe/internal/vfs"
)

// Key addresses one verdict: the program's content address, the
// policy's content address, and the checker version that produced the
// verdict (all three rendered as strings; see mcsafe.Hash and
// mcsafe.CheckerVersion). A verdict is valid for exactly this triple —
// a different program, policy, or checker release never observes it.
type Key struct {
	Program string
	Policy  string
	Checker string
}

// Valid reports whether every component is set.
func (k Key) Valid() bool { return k.Program != "" && k.Policy != "" && k.Checker != "" }

// id derives the record's file name: a SHA-256 over the triple with
// unambiguous separators, hex-encoded. Hashing (rather than joining)
// keeps arbitrary key strings path-safe.
func (k Key) id() string {
	h := sha256.New()
	for _, part := range []string{"mcsafe/vstore/v1", k.Program, k.Policy, k.Checker} {
		fmt.Fprintf(h, "%d:%s,", len(part), part)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Options tunes a store. The zero value gets sensible defaults.
type Options struct {
	// MemBytes bounds the in-memory layer's verdict bytes
	// (default 64 MiB; negative disables the layer). The budget is
	// split evenly across shards.
	MemBytes int64
	// DiskBytes bounds the disk layer's record bytes (default 1 GiB),
	// split evenly across shards. A Put that would exceed a shard's
	// budget evicts that shard's least-recently-used records first; a
	// single record larger than the shard budget is rejected (counted
	// in Stats.Rejects, not an error).
	DiskBytes int64
	// Shards is the lock-stripe count (default 8). Concurrent Puts and
	// Gets in different shards never contend. The on-disk layout is
	// shard-count-independent, so any value reopens any store.
	Shards int
	// NoSync skips every fsync (record file and parent directory) —
	// the fast mode for tests. Production stores leave it false: a
	// commit is not acknowledged until it is on stable storage.
	NoSync bool
	// FS overrides the filesystem (tests). Nil uses the real disk
	// behind the fault-injection seam.
	FS vfs.FS
}

const (
	defaultMemBytes  = 64 << 20
	defaultDiskBytes = 1 << 30
	defaultShards    = 8
	// recordSchema versions the on-disk envelope.
	recordSchema = 1
)

// record is the on-disk envelope: the key it answers for (verified on
// read and on the recovery scan — a hash collision, a torn write, or a
// corrupted file can turn into a miss, but never into a wrong verdict)
// and the opaque verdict bytes.
type record struct {
	Schema      int             `json:"schema"`
	Program     string          `json:"program"`
	Policy      string          `json:"policy"`
	Checker     string          `json:"checker"`
	CreatedUnix int64           `json:"created_unix"`
	Verdict     json.RawMessage `json:"verdict"`
}

// Stats is a point-in-time snapshot of the store's counters and gauges.
type Stats struct {
	MemHits       int64 `json:"mem_hits"`
	DiskHits      int64 `json:"disk_hits"`
	Misses        int64 `json:"misses"`
	Puts          int64 `json:"puts"`
	MemEvictions  int64 `json:"mem_evictions"`
	DiskEvictions int64 `json:"disk_evictions"`
	// Rejects counts Puts dropped because the record alone exceeds a
	// shard's disk budget or the key/verdict was invalid.
	Rejects int64 `json:"rejects"`
	// Corrupt counts disk records that failed verification — torn,
	// garbled, or answering for a different key. Each is moved to
	// quarantine/ (evidence, not deleted) and the lookup misses.
	Corrupt int64 `json:"corrupt"`
	// Quarantined counts records successfully moved into quarantine/.
	Quarantined int64 `json:"quarantined"`
	// ReadErrors counts record reads that failed at the I/O layer
	// (distinct from corruption: the bytes never arrived). The lookup
	// reports the error; the record stays indexed — the disk may heal.
	ReadErrors int64 `json:"read_errors"`
	// PutErrors counts Puts that failed at the I/O layer (write, sync,
	// or rename).
	PutErrors int64 `json:"put_errors"`

	MemBytes    int64 `json:"mem_bytes"`
	DiskBytes   int64 `json:"disk_bytes"`
	MemEntries  int   `json:"mem_entries"`
	DiskEntries int   `json:"disk_entries"`
	Shards      int   `json:"shards"`
}

// Store is a sharded two-layer verdict store. All methods are safe for
// concurrent use.
type Store struct {
	dir    string
	opts   Options
	fsys   vfs.FS
	closed atomic.Bool

	memHits, diskHits, misses, puts atomic.Int64
	memEvics, diskEvics             atomic.Int64
	rejects, corrupt                atomic.Int64
	quarantined, readErrs, putErrs  atomic.Int64
	quarantineSeq                   atomic.Int64

	shards []*shard
}

// shard is one lock stripe: a slice of the memory and disk layers with
// its own LRU state and budgets.
type shard struct {
	mu        sync.Mutex
	mem       map[string]*list.Element // id -> *memEntry element
	memList   *list.List               // front = most recently used
	memBytes  int64
	disk      map[string]*list.Element // id -> *diskEntry element
	diskList  *list.List               // front = most recently used
	diskBytes int64
	// Per-shard budgets (the store budgets split evenly).
	memBudget, diskBudget int64
}

type memEntry struct {
	id      string
	verdict []byte
}

type diskEntry struct {
	id   string
	size int64
}

// Open opens (creating as needed) a verdict store rooted at dir and
// runs the recovery scan: every record is read back, its embedded key
// verified against its file name, and anything torn or corrupt is moved
// into quarantine/ (Stats.Quarantined) instead of being served or
// silently deleted. The disk index is rebuilt from the surviving
// records, ordered by modification time, so the LRU eviction order
// survives restarts. Leftover temp files from an interrupted Put are
// removed.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MemBytes == 0 {
		opts.MemBytes = defaultMemBytes
	}
	if opts.DiskBytes == 0 {
		opts.DiskBytes = defaultDiskBytes
	}
	if opts.Shards <= 0 {
		opts.Shards = defaultShards
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.WithFaults(vfs.Disk{})
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "records"), 0o755); err != nil {
		return nil, fmt.Errorf("vstore: %w", err)
	}
	tmpDir := filepath.Join(dir, "tmp")
	if err := os.RemoveAll(tmpDir); err != nil {
		return nil, fmt.Errorf("vstore: %w", err)
	}
	if err := fsys.MkdirAll(tmpDir, 0o755); err != nil {
		return nil, fmt.Errorf("vstore: %w", err)
	}
	s := &Store{dir: dir, opts: opts, fsys: fsys}
	memBudget, diskBudget := opts.MemBytes, opts.DiskBytes
	if memBudget > 0 {
		memBudget /= int64(opts.Shards)
	}
	diskBudget /= int64(opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		s.shards = append(s.shards, &shard{
			mem: make(map[string]*list.Element), memList: list.New(),
			disk: make(map[string]*list.Element), diskList: list.New(),
			memBudget: memBudget, diskBudget: diskBudget,
		})
	}

	type found struct {
		id    string
		size  int64
		mtime time.Time
	}
	var entries []found
	root := filepath.Join(dir, "records")
	err := fsys.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		id := d.Name()[:len(d.Name())-len(".json")]
		// Recovery scan: only records whose bytes verify are indexed.
		data, rerr := fsys.ReadFile(path)
		if rerr != nil {
			// The bytes never arrived; leave the file for a later scan
			// rather than condemning a possibly fine record.
			s.readErrs.Add(1)
			return nil
		}
		if _, ok := s.verify(id, data); !ok {
			s.quarantine(path)
			return nil
		}
		info, ierr := d.Info()
		if ierr != nil {
			return nil // raced with an eviction; skip
		}
		entries = append(entries, found{id: id, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("vstore: scanning %s: %v", root, err)
	}
	// Oldest first, so PushFront leaves the most recently used at the
	// front — the same order a live store maintains.
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].id < entries[j].id
	})
	for _, e := range entries {
		sh := s.shardOf(e.id)
		sh.disk[e.id] = sh.diskList.PushFront(&diskEntry{id: e.id, size: e.size})
		sh.diskBytes += e.size
	}
	// The reopened store may exceed a (newly lowered) budget.
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.evictDiskLocked(sh)
		sh.mu.Unlock()
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Shards returns the lock-stripe count.
func (s *Store) Shards() int { return len(s.shards) }

// shardOf maps a record id (hex) to its lock stripe via the first
// fingerprint byte — the same byte that names the prefix directory, so
// a stripe owns a fixed set of directories.
func (s *Store) shardOf(id string) *shard {
	var b int
	if len(id) >= 2 {
		if v, err := hex.DecodeString(id[:2]); err == nil {
			b = int(v[0])
		}
	}
	return s.shards[b%len(s.shards)]
}

// verify decodes a record and checks it answers for the id it is filed
// under: schema, non-empty key re-deriving the id, valid verdict JSON.
// Anything else — torn writes included — fails verification.
func (s *Store) verify(id string, data []byte) (record, bool) {
	var rec record
	if json.Unmarshal(data, &rec) != nil || rec.Schema != recordSchema || len(rec.Verdict) == 0 {
		return record{}, false
	}
	k := Key{Program: rec.Program, Policy: rec.Policy, Checker: rec.Checker}
	if !k.Valid() || k.id() != id || !json.Valid(rec.Verdict) {
		return record{}, false
	}
	return rec, true
}

// quarantine moves a failed record into quarantine/ — evidence for the
// operator, guaranteed never to be served — and counts it. Removal is
// the fallback if even the move fails.
func (s *Store) quarantine(path string) {
	s.corrupt.Add(1)
	qdir := filepath.Join(s.dir, "quarantine")
	if err := s.fsys.MkdirAll(qdir, 0o755); err == nil {
		dst := filepath.Join(qdir, fmt.Sprintf("%d-%s", s.quarantineSeq.Add(1), filepath.Base(path)))
		if err := os.Rename(path, dst); err == nil {
			s.quarantined.Add(1)
			return
		}
	}
	os.Remove(path)
}

// Get returns the verdict bytes stored for k, consulting the in-memory
// layer first and falling back to disk (promoting the record into
// memory on a disk hit). The returned slice must not be modified.
//
// The bool reports a hit. A non-nil error means the store's disk is
// failing (a read I/O error) — the lookup is a miss, but the caller
// (the server's breaker) should treat it as store trouble, not as a
// cold key. Corrupt records are quarantined and reported as plain
// misses: they are handled, not a health signal by themselves.
//
// The disk read runs outside the shard mutex, so a cold lookup never
// blocks concurrent in-memory hits; the entry is revalidated under the
// lock before the record is promoted.
func (s *Store) Get(k Key) ([]byte, bool, error) {
	if !k.Valid() || s.closed.Load() {
		s.misses.Add(1)
		return nil, false, nil
	}
	id := k.id()
	sh := s.shardOf(id)
	sh.mu.Lock()
	if el, ok := sh.mem[id]; ok {
		sh.memList.MoveToFront(el)
		if del, ok := sh.disk[id]; ok {
			sh.diskList.MoveToFront(del)
		}
		verdict := el.Value.(*memEntry).verdict
		sh.mu.Unlock()
		s.memHits.Add(1)
		return verdict, true, nil
	}
	if _, ok := sh.disk[id]; !ok {
		sh.mu.Unlock()
		s.misses.Add(1)
		return nil, false, nil
	}
	sh.mu.Unlock()

	path := s.recordPath(id)
	data, err := s.fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		// The disk failed to deliver the bytes. Keep the index entry —
		// the record may be fine once the disk recovers — and surface
		// the error so the caller can count store failures.
		s.readErrs.Add(1)
		s.misses.Add(1)
		return nil, false, fmt.Errorf("vstore: reading record: %w", err)
	}
	var rec record
	var ok bool
	if err == nil {
		rec, ok = s.verify(id, data)
		ok = ok && rec.Program == k.Program && rec.Policy == k.Policy && rec.Checker == k.Checker
	}

	sh.mu.Lock()
	el, present := sh.disk[id]
	if present && !ok {
		// Torn, corrupt, or answering for a different key: fail safe to
		// a miss and quarantine the evidence. (If the entry is gone, a
		// concurrent Get already handled it — or a concurrent eviction
		// removed the file mid-read, which is not corruption.)
		s.removeDiskLocked(sh, el)
		sh.mu.Unlock()
		if err == nil {
			s.quarantine(path)
		}
		s.misses.Add(1)
		return nil, false, nil
	}
	if !ok || s.closed.Load() {
		sh.mu.Unlock()
		s.misses.Add(1)
		return nil, false, nil
	}
	verdict := []byte(rec.Verdict)
	if present {
		// Still indexed: refresh recency and promote into memory. (If
		// evicted while we read, serve the verdict — it answered for
		// exactly this key — without resurrecting the entry.)
		sh.diskList.MoveToFront(el)
		s.insertMemLocked(sh, id, verdict)
	}
	sh.mu.Unlock()
	if present {
		now := time.Now()
		s.fsys.Chtimes(path, now, now) // best effort: persist the LRU order
	}
	s.diskHits.Add(1)
	return verdict, true, nil
}

// Put stores verdict under k in both layers. The bytes are stored
// verbatim: a later Get returns exactly them. Storing is idempotent —
// re-putting an existing key refreshes its recency and contents.
//
// A nil return means the record is committed: written, fsynced,
// renamed into place, and the parent directory fsynced (unless
// Options.NoSync). On any I/O failure the store cleans up — no torn
// record is ever left indexed — and returns the error.
func (s *Store) Put(k Key, verdict []byte) error {
	if !k.Valid() || len(verdict) == 0 {
		s.rejects.Add(1)
		return fmt.Errorf("vstore: invalid key or empty verdict")
	}
	if !json.Valid(verdict) {
		s.rejects.Add(1)
		return fmt.Errorf("vstore: verdict is not valid JSON")
	}
	if s.closed.Load() {
		return fmt.Errorf("vstore: store is closed")
	}
	id := k.id()
	sh := s.shardOf(id)
	rec := record{
		Schema: recordSchema, Program: k.Program, Policy: k.Policy,
		Checker: k.Checker, CreatedUnix: time.Now().Unix(),
		Verdict: json.RawMessage(verdict),
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("vstore: %w", err)
	}
	if int64(len(data)) > sh.diskBudget {
		s.rejects.Add(1)
		return nil // silently uncacheable: larger than its shard's whole budget
	}

	// The slow half — temp write and fsync — runs outside every lock,
	// so concurrent Puts only serialize on the (fast) rename+index step
	// of their own shard.
	tmp, err := s.fsys.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		s.putErrs.Add(1)
		return fmt.Errorf("vstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.putErrs.Add(1)
		return fmt.Errorf("vstore: %w", err)
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			s.putErrs.Add(1)
			return fmt.Errorf("vstore: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.putErrs.Add(1)
		return fmt.Errorf("vstore: %w", err)
	}
	path := s.recordPath(id)
	if err := s.fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		os.Remove(tmp.Name())
		s.putErrs.Add(1)
		return fmt.Errorf("vstore: %w", err)
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.closed.Load() {
		os.Remove(tmp.Name())
		return fmt.Errorf("vstore: store is closed")
	}
	if err := s.fsys.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		s.putErrs.Add(1)
		return fmt.Errorf("vstore: %w", err)
	}
	if !s.opts.NoSync {
		if err := s.fsys.SyncDir(filepath.Dir(path)); err != nil {
			// The rename may not survive a crash: un-commit. The old
			// record (if any) was replaced by the rename, so its index
			// entry must go too — a miss is safe, a maybe-lost record
			// serving as committed is not.
			os.Remove(path)
			if el, ok := sh.disk[id]; ok {
				s.removeDiskLocked(sh, el)
			}
			if el, ok := sh.mem[id]; ok {
				s.removeMemLocked(sh, el)
			}
			s.putErrs.Add(1)
			return fmt.Errorf("vstore: %w", err)
		}
	}
	if el, ok := sh.disk[id]; ok {
		sh.diskBytes += int64(len(data)) - el.Value.(*diskEntry).size
		el.Value.(*diskEntry).size = int64(len(data))
		sh.diskList.MoveToFront(el)
	} else {
		sh.disk[id] = sh.diskList.PushFront(&diskEntry{id: id, size: int64(len(data))})
		sh.diskBytes += int64(len(data))
	}
	s.insertMemLocked(sh, id, verdict)
	s.evictDiskLocked(sh)
	s.puts.Add(1)
	return nil
}

// Probe verifies the store can still commit: it runs the full
// temp-write/sync sequence (and removes the probe file). A non-nil
// error means Puts will fail — the health check's "degraded" signal.
func (s *Store) Probe() error {
	if s.closed.Load() {
		return fmt.Errorf("vstore: store is closed")
	}
	tmp, err := s.fsys.CreateTemp(filepath.Join(s.dir, "tmp"), "probe-*")
	if err != nil {
		return fmt.Errorf("vstore: probe: %w", err)
	}
	name := tmp.Name()
	defer os.Remove(name)
	if _, err := tmp.Write([]byte(`{"probe":true}`)); err != nil {
		tmp.Close()
		return fmt.Errorf("vstore: probe: %w", err)
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("vstore: probe: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("vstore: probe: %w", err)
	}
	return nil
}

// Len returns the number of records in the disk layer.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.disk)
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the store's counters and gauges.
func (s *Store) Stats() Stats {
	st := Stats{Shards: len(s.shards)}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.MemBytes += sh.memBytes
		st.DiskBytes += sh.diskBytes
		st.MemEntries += len(sh.mem)
		st.DiskEntries += len(sh.disk)
		sh.mu.Unlock()
	}
	st.MemHits = s.memHits.Load()
	st.DiskHits = s.diskHits.Load()
	st.Misses = s.misses.Load()
	st.Puts = s.puts.Load()
	st.MemEvictions = s.memEvics.Load()
	st.DiskEvictions = s.diskEvics.Load()
	st.Rejects = s.rejects.Load()
	st.Corrupt = s.corrupt.Load()
	st.Quarantined = s.quarantined.Load()
	st.ReadErrors = s.readErrs.Load()
	st.PutErrors = s.putErrs.Load()
	return st
}

// Close marks the store closed: subsequent Gets miss and Puts fail. All
// writes are synchronous, so there is nothing to flush.
func (s *Store) Close() error {
	s.closed.Store(true)
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.mem = make(map[string]*list.Element)
		sh.memList = list.New()
		sh.memBytes = 0
		sh.mu.Unlock()
	}
	return nil
}

func (s *Store) recordPath(id string) string {
	return filepath.Join(s.dir, "records", id[:2], id+".json")
}

// insertMemLocked inserts (or refreshes) a verdict in the shard's
// memory layer and evicts from the back until the layer fits its
// budget. Caller holds sh.mu.
func (s *Store) insertMemLocked(sh *shard, id string, verdict []byte) {
	if s.opts.MemBytes < 0 || int64(len(verdict)) > sh.memBudget {
		return
	}
	if el, ok := sh.mem[id]; ok {
		sh.memBytes += int64(len(verdict)) - int64(len(el.Value.(*memEntry).verdict))
		el.Value.(*memEntry).verdict = verdict
		sh.memList.MoveToFront(el)
	} else {
		sh.mem[id] = sh.memList.PushFront(&memEntry{id: id, verdict: verdict})
		sh.memBytes += int64(len(verdict))
	}
	for sh.memBytes > sh.memBudget {
		back := sh.memList.Back()
		if back == nil {
			break
		}
		s.removeMemLocked(sh, back)
		s.memEvics.Add(1)
	}
}

// removeMemLocked unlinks one memory-layer entry. Caller holds sh.mu.
func (s *Store) removeMemLocked(sh *shard, el *list.Element) {
	e := el.Value.(*memEntry)
	sh.memList.Remove(el)
	delete(sh.mem, e.id)
	sh.memBytes -= int64(len(e.verdict))
}

// evictDiskLocked drops the shard's least-recently-used records until
// its disk layer fits its budget. Caller holds sh.mu.
func (s *Store) evictDiskLocked(sh *shard) {
	for sh.diskBytes > sh.diskBudget {
		back := sh.diskList.Back()
		if back == nil {
			break
		}
		e := back.Value.(*diskEntry)
		s.removeDiskLocked(sh, back)
		os.Remove(s.recordPath(e.id))
		s.diskEvics.Add(1)
	}
}

// removeDiskLocked unlinks a disk index entry (not the file). Caller
// holds sh.mu.
func (s *Store) removeDiskLocked(sh *shard, el *list.Element) {
	e := el.Value.(*diskEntry)
	sh.diskList.Remove(el)
	delete(sh.disk, e.id)
	sh.diskBytes -= e.size
}
