package vstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"mcsafe/internal/faults"
	"mcsafe/internal/progs"
)

// chaosKey derives a deterministic key for a program name.
func chaosKey(name string) Key {
	return Key{Program: "prog-" + name, Policy: "policy-chaos", Checker: "chk-1"}
}

// chaosVerdict derives a deterministic, distinct verdict per program.
func chaosVerdict(name string) []byte {
	return []byte(fmt.Sprintf(`{"schema":1,"safe":true,"program":%q}`, name))
}

// encodedRecord builds the exact on-disk bytes Put would commit for
// (k, verdict), so torn-record tests can cut real record bytes at
// arbitrary boundaries.
func encodedRecord(t *testing.T, k Key, verdict []byte) []byte {
	t.Helper()
	data, err := json.Marshal(record{
		Schema: recordSchema, Program: k.Program, Policy: k.Policy,
		Checker: k.Checker, CreatedUnix: time.Now().Unix(),
		Verdict: json.RawMessage(verdict),
	})
	if err != nil {
		t.Fatalf("marshal record: %v", err)
	}
	return data
}

// TestTornRecordSweep cuts a real record at every byte boundary, plants
// the prefix where a committed record would live, and proves the
// recovery scan never serves it: every torn prefix is quarantined (the
// evidence file preserved), the lookup is a clean miss, and only the
// full-length record is served — bit-identical.
func TestTornRecordSweep(t *testing.T) {
	k := chaosKey("torn")
	verdict := chaosVerdict("torn")
	full := encodedRecord(t, k, verdict)
	id := k.id()

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "records", id[:2], id+".json")
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		got, ok, gerr := s.Get(k)
		if gerr != nil {
			t.Fatalf("cut %d: Get error: %v", cut, gerr)
		}
		st := s.Stats()
		if cut == len(full) {
			if !ok || !bytes.Equal(got, verdict) {
				t.Fatalf("full record: hit=%v verdict=%q, want bit-identical %q", ok, got, verdict)
			}
			if st.Corrupt != 0 {
				t.Fatalf("full record flagged corrupt: %+v", st)
			}
		} else {
			if ok {
				t.Fatalf("cut %d: torn record served (%q) — must be a clean miss", cut, got)
			}
			if st.Corrupt != 1 || st.Quarantined != 1 {
				t.Fatalf("cut %d: corrupt=%d quarantined=%d, want 1/1", cut, st.Corrupt, st.Quarantined)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("cut %d: torn record still at %s", cut, path)
			}
			qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
			if err != nil || len(qents) != 1 {
				t.Fatalf("cut %d: quarantine holds %d entries (err=%v), want the torn evidence", cut, len(qents), err)
			}
		}
		s.Close()
	}
}

// TestTornWriteNeverIndexed drives torn writes through the vfs seam at
// every boundary of the record: Put must fail, leave nothing indexed
// and nothing in records/, and succeed cleanly once the fault clears.
func TestTornWriteNeverIndexed(t *testing.T) {
	k := chaosKey("torn-live")
	verdict := chaosVerdict("torn-live")
	recLen := len(encodedRecord(t, k, verdict))

	for _, torn := range []int{0, 1, recLen / 2, recLen - 1} {
		dir := t.TempDir()
		s, err := Open(dir, Options{}) // full durability: sync points live
		if err != nil {
			t.Fatal(err)
		}
		restore := faults.Activate(faults.NewPlan(faults.Fault{
			Point: faults.StoreWrite, Kind: faults.Err, Torn: torn,
		}))
		err = s.Put(k, verdict)
		restore()
		if !errors.Is(err, faults.ErrIO) {
			t.Fatalf("torn %d: Put err = %v, want injected ErrIO", torn, err)
		}
		if _, ok, _ := s.Get(k); ok {
			t.Fatalf("torn %d: failed Put left the key serving", torn)
		}
		if st := s.Stats(); st.PutErrors != 1 || st.DiskEntries != 0 {
			t.Fatalf("torn %d: stats %+v, want 1 put error, empty store", torn, st)
		}
		ents, _ := os.ReadDir(filepath.Join(dir, "records"))
		if len(ents) != 0 {
			t.Fatalf("torn %d: %d entries left under records/ after failed Put", torn, len(ents))
		}
		// The disk heals: the same Put commits and round-trips.
		if err := s.Put(k, verdict); err != nil {
			t.Fatalf("torn %d: healed Put: %v", torn, err)
		}
		if got, ok, _ := s.Get(k); !ok || !bytes.Equal(got, verdict) {
			t.Fatalf("torn %d: healed Get = (%q, %v)", torn, got, ok)
		}
		s.Close()
	}
}

// TestENOSPCSurfaced pins that an injected disk-full reaches the caller
// as syscall.ENOSPC through the store's error wrapping.
func TestENOSPCSurfaced(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	restore := faults.Activate(faults.NewPlan(faults.Fault{
		Point: faults.StoreWrite, Kind: faults.Err, Err: faults.ErrNoSpace, Repeat: true,
	}))
	defer restore()
	err = s.Put(chaosKey("enospc"), chaosVerdict("enospc"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put err = %v, want wrapped ENOSPC", err)
	}
}

// TestStoreFaultSeedSweep is the deterministic chaos sweep over the
// store's injection points: each seed derives one (point, kind, after)
// fault, a store runs a Put/Get workload under it, and the invariant
// holds regardless of where the fault landed — a Put that returned nil
// is served bit-identical (now and after a clean reopen), a Put that
// errored is a clean miss or bit-identical, and a verdict that is
// neither is garbage, which must never happen.
func TestStoreFaultSeedSweep(t *testing.T) {
	names := []string{"s0", "s1", "s2", "s3", "s4"}
	for seed := int64(0); seed < 48; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			// MemBytes<0 disables the memory layer, so every Get is a
			// disk read and the store-read point actually fires.
			s, err := Open(dir, Options{MemBytes: -1, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			plan, f := faults.PlanFromSeedOver(seed, faults.StorePoints, nil)
			restore := faults.Activate(plan)
			committed := make(map[string]bool)
			for _, n := range names {
				if chaosPut(s, chaosKey(n), chaosVerdict(n)) == nil {
					committed[n] = true
				}
			}
			for _, n := range names {
				got, ok, _ := chaosGet(s, chaosKey(n))
				if ok && !bytes.Equal(got, chaosVerdict(n)) {
					t.Fatalf("fault %+v: live Get(%s) returned garbage %q", f, n, got)
				}
				if committed[n] && !ok {
					// A read fault may hide a committed record while
					// armed; it must be an error-reported miss, never a
					// wrong verdict. Nothing further to assert here.
					continue
				}
			}
			restore()
			s.Close()

			// The fault is gone: a clean reopen must serve every
			// committed verdict bit-identical and miss the rest cleanly.
			s2, err := Open(dir, Options{Shards: 2, NoSync: true})
			if err != nil {
				t.Fatalf("fault %+v: reopen: %v", f, err)
			}
			defer s2.Close()
			for _, n := range names {
				got, ok, gerr := s2.Get(chaosKey(n))
				if gerr != nil {
					t.Fatalf("fault %+v: reopened Get(%s): %v", f, n, gerr)
				}
				switch {
				case committed[n] && (!ok || !bytes.Equal(got, chaosVerdict(n))):
					t.Fatalf("fault %+v: committed %s lost or mangled after reopen (hit=%v, %q)", f, n, ok, got)
				case !committed[n] && ok && !bytes.Equal(got, chaosVerdict(n)):
					t.Fatalf("fault %+v: failed Put of %s surfaced garbage %q", f, n, got)
				}
			}
		})
	}
}

// chaosPut runs s.Put absorbing an injected panic (the sweep may arm
// Panic at a store point); the panic counts as a failed Put.
func chaosPut(s *Store, k Key, verdict []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ip, ok := r.(faults.InjectedPanic); ok {
				err = fmt.Errorf("injected panic: %v", ip)
				return
			}
			panic(r)
		}
	}()
	return s.Put(k, verdict)
}

// chaosGet runs s.Get absorbing an injected panic as a miss.
func chaosGet(s *Store, k Key) (data []byte, ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ip, pok := r.(faults.InjectedPanic); pok {
				data, ok, err = nil, false, fmt.Errorf("injected panic: %v", ip)
				return
			}
			panic(r)
		}
	}()
	return s.Get(k)
}

// Crash-recovery sweep: a child process is SIGKILLed (os.Exit mid-Put,
// via a Cancel fault whose hook exits) at each injection point in the
// commit sequence, and the parent reopens the directory to check the
// durability contract — every previously committed verdict is served
// bit-identical, the interrupted Put is a clean miss or bit-identical,
// never garbage.

const (
	killEnvDir   = "MCSAFE_VSTORE_KILL_DIR"
	killEnvPoint = "MCSAFE_VSTORE_KILL_POINT"
	killEnvAfter = "MCSAFE_VSTORE_KILL_AFTER"
	killEnvMode  = "MCSAFE_VSTORE_KILL_MODE"
	killExitCode = 137
)

// overwriteVerdict is the second verdict an overwrite-mode kill writes
// over program 0's committed record.
func overwriteVerdict(name string) []byte {
	return []byte(fmt.Sprintf(`{"schema":1,"safe":false,"program":%q,"v":2}`, name))
}

// TestKillHelper is the re-exec'd child: inert in a normal test run, it
// activates only under the kill env vars. It commits all 13 paper
// programs durably, arms a process-exit fault at the requested point,
// and dies mid-Put of the victim.
func TestKillHelper(t *testing.T) {
	dir := os.Getenv(killEnvDir)
	if dir == "" {
		t.Skip("kill-helper child only")
	}
	s, err := Open(dir, Options{Shards: 4})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child open:", err)
		os.Exit(3)
	}
	var names []string
	for _, b := range progs.All() {
		names = append(names, b.Name)
	}
	for _, n := range names {
		if err := s.Put(chaosKey(n), chaosVerdict(n)); err != nil {
			fmt.Fprintln(os.Stderr, "child put:", err)
			os.Exit(3)
		}
	}
	victim, verdict := chaosKey("victim"), chaosVerdict("victim")
	if os.Getenv(killEnvMode) == "overwrite" {
		victim, verdict = chaosKey(names[0]), overwriteVerdict(names[0])
	}
	var after int64
	fmt.Sscan(os.Getenv(killEnvAfter), &after)
	faults.Activate(faults.NewPlan(faults.Fault{
		Point:  faults.Point(os.Getenv(killEnvPoint)),
		Kind:   faults.Cancel,
		After:  after,
		Cancel: func() { os.Exit(killExitCode) },
	}))
	s.Put(victim, verdict)
	// The fault did not fire: signal the parent's sweep is wrong.
	os.Exit(4)
}

// TestKillDuringPutRecovery sweeps the kill over every injection point
// the commit sequence crosses — the temp write, the temp-file fsync,
// the rename, and the directory fsync after it — in both fresh-key and
// overwrite modes, 13 committed programs each run.
func TestKillDuringPutRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 8 child processes with durable I/O")
	}
	cases := []struct {
		point faults.Point
		after int64 // which hit of the point dies
	}{
		{faults.StoreWrite, 1},  // before any byte of the victim exists
		{faults.StoreSync, 1},   // written, not yet on stable storage
		{faults.StoreRename, 1}, // synced, never renamed into place
		{faults.StoreSync, 2},   // renamed; killed during the dir fsync
	}
	var names []string
	for _, b := range progs.All() {
		names = append(names, b.Name)
	}
	if len(names) != 13 {
		t.Fatalf("expected the 13 paper programs, got %d", len(names))
	}
	for _, mode := range []string{"fresh", "overwrite"} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/%s-hit%d", mode, tc.point, tc.after), func(t *testing.T) {
				dir := t.TempDir()
				cmd := exec.Command(os.Args[0], "-test.run=^TestKillHelper$", "-test.count=1")
				cmd.Env = append(os.Environ(),
					killEnvDir+"="+dir,
					killEnvPoint+"="+string(tc.point),
					fmt.Sprintf("%s=%d", killEnvAfter, tc.after),
					killEnvMode+"="+mode,
				)
				out, err := cmd.CombinedOutput()
				var ee *exec.ExitError
				if !errors.As(err, &ee) || ee.ExitCode() != killExitCode {
					t.Fatalf("child exit = %v (want %d), output:\n%s", err, killExitCode, out)
				}

				// Restart: reopen with a different stripe count, full
				// verification scan included.
				s, err := Open(dir, Options{Shards: 2, NoSync: true})
				if err != nil {
					t.Fatalf("reopen after kill: %v", err)
				}
				defer s.Close()
				survivors := names
				if mode == "overwrite" {
					survivors = names[1:]
				}
				for _, n := range survivors {
					got, ok, gerr := s.Get(chaosKey(n))
					if gerr != nil || !ok || !bytes.Equal(got, chaosVerdict(n)) {
						t.Fatalf("committed %s after kill: hit=%v err=%v verdict=%q, want bit-identical", n, ok, gerr, got)
					}
				}
				switch mode {
				case "fresh":
					got, ok, gerr := s.Get(chaosKey("victim"))
					if gerr != nil {
						t.Fatalf("victim Get: %v", gerr)
					}
					if ok && !bytes.Equal(got, chaosVerdict("victim")) {
						t.Fatalf("victim is garbage %q — must be a clean miss or bit-identical", got)
					}
				case "overwrite":
					got, ok, gerr := s.Get(chaosKey(names[0]))
					if gerr != nil || !ok {
						t.Fatalf("overwritten %s vanished entirely (hit=%v err=%v): one committed version must survive", names[0], ok, gerr)
					}
					if !bytes.Equal(got, chaosVerdict(names[0])) && !bytes.Equal(got, overwriteVerdict(names[0])) {
						t.Fatalf("overwritten %s is garbage %q — must be the old or the new verdict", names[0], got)
					}
				}
				// No torn record may survive the scan, and no stray temp
				// files either.
				if st := s.Stats(); st.Corrupt != 0 {
					t.Fatalf("recovery scan found %d corrupt records after a rename-last kill", st.Corrupt)
				}
				tmps, _ := os.ReadDir(filepath.Join(dir, "tmp"))
				if len(tmps) != 0 {
					t.Fatalf("%d temp files survived reopen", len(tmps))
				}
			})
		}
	}
}
