package isa

import (
	"fmt"

	"mcsafe/internal/expr"
	"mcsafe/internal/rtl"
)

// RegModel describes an architecture's integer register file and owns
// the naming of register variables in formulas and typestate locations.
// Naming is verdict-critical: every formula, violation description, and
// typestate key renders through it, so the scheme is frozen — the bare
// canonical name ("%o0", "%a0") for unwindowed registers or window
// depth 0, and "w<depth>.<name>" for windowed registers at depth > 0.
type RegModel struct {
	names    []string
	parse    map[string]rtl.Reg
	windowed bool
	winStart rtl.Reg
	maxDepth int
	// varTab caches the depth-qualified variable per (depth, register):
	// these names appear in millions of interned formula terms, so they
	// are materialized once.
	varTab [][]expr.Var
}

// NewRegModel builds a register model. names lists the canonical name
// of every register in number order (index = register number); aliases
// maps accepted alternate spellings to canonical names ("%o6" → "%sp").
// A windowed file names winStart as the first windowed register and
// maxDepth as the deepest cached window depth.
func NewRegModel(names []string, aliases map[string]string, windowed bool, winStart rtl.Reg, maxDepth int) *RegModel {
	m := &RegModel{
		names:    names,
		parse:    make(map[string]rtl.Reg, len(names)+len(aliases)),
		windowed: windowed,
		winStart: winStart,
		maxDepth: maxDepth,
	}
	for i, n := range names {
		m.parse[n] = rtl.Reg(i)
	}
	for alias, canon := range aliases {
		r, ok := m.parse[canon]
		if !ok {
			panic(fmt.Sprintf("isa: alias %q names unknown register %q", alias, canon))
		}
		m.parse[alias] = r
	}
	depths := 1
	if windowed {
		depths = maxDepth + 1
	}
	m.varTab = make([][]expr.Var, depths)
	for d := range m.varTab {
		m.varTab[d] = make([]expr.Var, len(names))
		for r := range m.varTab[d] {
			if d == 0 || rtl.Reg(r) < winStart {
				m.varTab[d][r] = expr.Var(names[r])
			} else {
				m.varTab[d][r] = expr.Var(fmt.Sprintf("w%d.%s", d, names[r]))
			}
		}
	}
	return m
}

// N is the number of registers.
func (m *RegModel) N() int { return len(m.names) }

// Name is the canonical name of register r.
func (m *RegModel) Name(r rtl.Reg) string { return m.names[r] }

// Parse resolves a register name (canonical or alias).
func (m *RegModel) Parse(name string) (rtl.Reg, bool) {
	r, ok := m.parse[name]
	return r, ok
}

// Windowed reports whether register r is part of the register window
// (renamed by save/restore); unwindowed registers — and every register
// of an unwindowed architecture — keep one name at every depth.
func (m *RegModel) Windowed(r rtl.Reg) bool {
	return m.windowed && r >= m.winStart
}

// Var is the formula variable for register r at window depth.
func (m *RegModel) Var(r rtl.Reg, depth int) expr.Var {
	if !m.windowed || depth == 0 || r < m.winStart {
		return m.varTab[0][r]
	}
	if depth <= m.maxDepth {
		return m.varTab[depth][r]
	}
	return expr.Var(fmt.Sprintf("w%d.%s", depth, m.names[r]))
}

// Loc is the typestate-location key for register r at window depth —
// the string form of Var.
func (m *RegModel) Loc(r rtl.Reg, depth int) string {
	return string(m.Var(r, depth))
}
