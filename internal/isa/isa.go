// Package isa is the architecture seam of the checker: the Arch
// interface an instruction-set front-end implements (decode, lift to
// RTL, register-file description, calling/stack convention, pipeline
// traits), the ISA-neutral Program container every later phase
// consumes, and the registry front-ends self-register into.
//
// The safety-checking pipeline (typestate propagation → annotation →
// local checking → global VC proving) is ISA-independent: it sees only
// RTL effects, the RegModel's variable naming, and the Convention's
// distinguished registers. Everything SPARC- or RISC-V-specific lives
// behind this interface, in internal/sparc and internal/riscv.
package isa

import (
	"fmt"
	"sort"
	"sync"

	"mcsafe/internal/rtl"
)

// Traits are the pipeline-shape flags of an architecture: the facts the
// control-flow and condition-generation layers must branch on because
// they change the *structure* of the analysis, not just instruction
// semantics (which RTL already carries).
type Traits struct {
	// DelaySlots reports delayed control transfer: the instruction after
	// a branch/call executes before the transfer takes effect, so the
	// CFG builder must wire delay-slot nodes (and replicate annulled
	// slots onto the taken edge).
	DelaySlots bool
	// RegisterWindows reports SPARC-style windowed register files:
	// save/restore shift the register window, and register variables are
	// depth-qualified.
	RegisterWindows bool
	// HardwareAliasing reports that the memory subsystem may translate
	// arithmetically distinct addresses inconsistently (arXiv:1305.6431):
	// address computations must additionally be proved alias-stable, and
	// the annotator emits the "alias" condition class.
	HardwareAliasing bool
}

// WindowLayout describes a windowed register file (Traits.RegisterWindows);
// the zero value means "no windows".
type WindowLayout struct {
	// Out, Local, In are the first registers of the respective banks;
	// Size is the bank width (8 on SPARC). A save makes the caller's
	// outs the callee's ins.
	Out, Local, In rtl.Reg
	Size           int
	// MaxDepth bounds the static window depth the analysis models.
	MaxDepth int
}

// Convention names the distinguished registers and stack discipline of
// an architecture's calling convention — everything the ISA-neutral
// phases need to reason about frames, calls, and trusted-function
// summaries.
type Convention struct {
	// SP and FP are the stack and frame pointers.
	SP, FP rtl.Reg
	// Link receives the return address at a call.
	Link rtl.Reg
	// RetReg carries a function result back to the caller.
	RetReg rtl.Reg
	// ArgRegs are the register-argument slots of a call, in argument
	// order (the trusted-function argument annotations index into this).
	ArgRegs []rtl.Reg
	// CallClobbered are the registers a trusted (summarized) call may
	// clobber, in the canonical order the verifier havocs them — the
	// order is part of the verdict fingerprint (fresh-variable naming)
	// and must stay stable.
	CallClobbered []rtl.Reg
	// InitRegs are the registers the host initializes before transferring
	// control (beyond explicit invocation bindings), e.g. stack and
	// return-address registers.
	InitRegs []rtl.Reg
	// MinFrame is the smallest legal stack frame in bytes; StackAlign is
	// the required frame-size alignment.
	MinFrame   int32
	StackAlign int32
	// Window is the register-window layout (zero unless the Traits
	// report RegisterWindows).
	Window WindowLayout
}

// AsmOptions configures assembly of a source program.
type AsmOptions struct {
	// Base virtual address for the first instruction (the front-end's
	// default if 0).
	Base uint32
	// DataSyms assigns virtual addresses to data symbols referenced by
	// address-formation idioms ("set sym,%rd", "la rd,sym").
	DataSyms map[string]uint32
	// Entry names the entry label; defaults to the first instruction.
	Entry string
	// Externs names call targets defined outside the program (trusted
	// host functions); each is assigned a slot past the last
	// instruction, as a linker would resolve an external symbol.
	Externs map[string]bool
}

// Arch is one instruction-set front-end. Implementations live in
// internal/sparc and internal/riscv and register themselves; every
// other package reaches them only through this interface.
type Arch interface {
	// Name is the stable lowercase architecture name ("sparc", "rv32i")
	// used in fingerprints, wire envelopes, and -arch flags.
	Name() string
	// Regs describes the register file and its variable naming.
	Regs() *RegModel
	// Traits are the pipeline-shape flags.
	Traits() Traits
	// Conv is the calling/stack convention.
	Conv() *Convention
	// Assemble builds a Program from assembly source.
	Assemble(src string, opts AsmOptions) (*Program, error)
	// FromWords builds a Program from raw machine words plus optional
	// loader tables — the binary-first entry point.
	FromWords(words []uint32, base uint32, symbols map[string]int, dataSyms map[string]uint32) (*Program, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Arch{}
)

// Register installs an architecture front-end under its Name. Front-ends
// call it from init(); a duplicate name is a programming error.
func Register(a Arch) {
	regMu.Lock()
	defer regMu.Unlock()
	name := a.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("isa: duplicate architecture %q", name))
	}
	registry[name] = a
}

// Get returns the architecture registered under name.
func Get(name string) (Arch, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if a, ok := registry[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("isa: unknown architecture %q (have %v)", name, namesLocked())
}

// Names lists the registered architectures, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
