// Program fingerprinting: the stable content address a verdict store and
// a checking service key repeat submissions by. The fingerprint covers
// every Program field the checker's verdict (or its rendered Result,
// including source-line attributions) can depend on — the architecture,
// the machine words, the base address, the entry point, the loader
// symbol tables, and the source map — so two programs with equal
// fingerprints are indistinguishable to the checker.

package isa

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// fingerprintMagic versions the canonical encoding itself: any change to
// the byte layout below must change this string, or old store records
// would be served for differently-encoded programs. v3 leads with the
// architecture name; v2's encoding covered only the words and tables, so
// identical word sequences submitted under different ISAs — which decode
// to entirely different programs — shared one fingerprint and could
// share a cached verdict. v2 length-prefixes symbol names; v1's
// NUL-terminated names let adversarial names containing NUL bytes shift
// bytes between adjacent fields.
const fingerprintMagic = "mcsafe/program/v3\n"

// Fingerprint computes the program's stable content address: a SHA-256
// digest over a canonical encoding of the checker-visible input. The
// value is stable across processes, platforms, and checker releases (it
// depends only on the program), collision-resistant against adversarial
// submissions, and therefore safe to use as a cache key for verdicts
// together with the policy hash and checker version.
func Fingerprint(p *Program) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(fingerprintMagic))
	var buf [8]byte
	putU32 := func(v uint32) {
		binary.BigEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	// Names are length-prefixed, never terminated: loaders accept
	// arbitrary byte strings as symbol names, so a terminator byte could
	// also appear inside a name and make two symbol tables encode
	// identically.
	putName := func(name string) {
		putU32(uint32(len(name)))
		h.Write([]byte(name))
	}
	if p == nil {
		return [sha256.Size]byte(h.Sum(nil))
	}
	// The architecture determines how every following word decodes: it
	// leads the encoding so no word sequence can collide across ISAs.
	putName(p.Arch.Name())
	putU32(p.Base)
	putU32(uint32(p.Entry))
	putU32(uint32(len(p.Words)))
	for _, w := range p.Words {
		putU32(w)
	}
	syms := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		syms = append(syms, name)
	}
	sort.Strings(syms)
	putU32(uint32(len(syms)))
	for _, name := range syms {
		putName(name)
		putU32(uint32(p.Symbols[name]))
	}
	dsyms := make([]string, 0, len(p.DataSyms))
	for name := range p.DataSyms {
		dsyms = append(dsyms, name)
	}
	sort.Strings(dsyms)
	putU32(uint32(len(dsyms)))
	for _, name := range dsyms {
		putName(name)
		putU32(p.DataSyms[name])
	}
	// The source map feeds Violation.Line, which the wire Result carries.
	putU32(uint32(len(p.SrcLines)))
	for _, line := range p.SrcLines {
		putU32(uint32(line))
	}
	return [sha256.Size]byte(h.Sum(nil))
}
