// Package archs links every architecture front-end into the binary:
// blank-importing it runs their init-time isa.Register calls. The public
// mcsafe package imports it, so every program built on the checker can
// resolve architectures by name; a build that wants exactly one ISA can
// instead import that front-end directly.
package archs

import (
	_ "mcsafe/internal/riscv"
	_ "mcsafe/internal/sparc"
)
