package isa

import (
	"fmt"
	"strings"

	"mcsafe/internal/rtl"
)

// Insn is one decoded instruction as the ISA-neutral pipeline sees it:
// its semantics as RTL effects (the single source of instruction
// meaning), its disassembly text, and the one structural fact RTL does
// not carry — whether the front-end classifies it as a procedure
// return.
type Insn struct {
	// RTL is the instruction's canonical effect sequence, produced by
	// the front-end's lifter. Nil marks an undecodable word.
	RTL []rtl.Effect
	// Text is the instruction's disassembly (branch displacements in
	// relative ".%+d" form; Program.Disassemble resolves them).
	Text string
	// Ret marks the architecture's return idiom (SPARC: a jmpl through
	// the return-address register; RV32I: jalr x0, 0(ra)).
	Ret bool
}

// String renders the instruction's disassembly.
func (i Insn) String() string { return i.Text }

// Branch returns the instruction's branch effect, if any.
func (i Insn) Branch() (rtl.Branch, bool) {
	for _, eff := range i.RTL {
		if b, ok := eff.(rtl.Branch); ok {
			return b, true
		}
	}
	return rtl.Branch{}, false
}

// Call returns the instruction's call effect, if any.
func (i Insn) Call() (rtl.Call, bool) {
	for _, eff := range i.RTL {
		if c, ok := eff.(rtl.Call); ok {
			return c, true
		}
	}
	return rtl.Call{}, false
}

// Jump returns the instruction's indirect-jump effect, if any.
func (i Insn) Jump() (rtl.Jump, bool) {
	for _, eff := range i.RTL {
		if j, ok := eff.(rtl.Jump); ok {
			return j, true
		}
	}
	return rtl.Jump{}, false
}

// WindowDelta is +1 for a window-save instruction, -1 for a
// window-restore, 0 otherwise.
func (i Insn) WindowDelta() int {
	for _, eff := range i.RTL {
		switch eff.(type) {
		case rtl.SaveWindow:
			return 1
		case rtl.RestoreWindow:
			return -1
		}
	}
	return 0
}

// Program is an assembled (or externally supplied) machine-code program
// in ISA-neutral form: the raw words, the front-end's decoded+lifted
// view, and the side tables a loader would provide.
type Program struct {
	// Arch is the front-end that produced the program.
	Arch Arch
	// Words are the machine words, the checker's real input.
	Words []uint32
	// Insns is the decoded view of Words.
	Insns []Insn
	// Base is the virtual address of Words[0].
	Base uint32
	// Symbols maps every label to its instruction index.
	Symbols map[string]int
	// Procs lists labels that are procedure entry points (call targets
	// plus the program entry), sorted by instruction index.
	Procs []string
	// Entry is the instruction index where execution begins.
	Entry int
	// DataSyms maps data-symbol names to their virtual addresses, as a
	// loader's relocation/symbol table would.
	DataSyms map[string]uint32
	// SrcLines maps instruction index to source line (0 when unknown).
	SrcLines []int
}

// AddrOf returns the virtual address of instruction idx.
func (p *Program) AddrOf(idx int) uint32 { return p.Base + uint32(idx)*4 }

// IndexOf returns the instruction index of a virtual address.
func (p *Program) IndexOf(addr uint32) (int, bool) {
	if addr < p.Base || (addr-p.Base)%4 != 0 {
		return 0, false
	}
	idx := int((addr - p.Base) / 4)
	if idx >= len(p.Insns) {
		return 0, false
	}
	return idx, true
}

// ProcEntry returns the instruction index of a procedure label.
func (p *Program) ProcEntry(name string) (int, bool) {
	idx, ok := p.Symbols[name]
	return idx, ok
}

// LabelAt returns a label naming instruction idx, preferring the
// lexically least; it returns "" if the instruction is unlabeled.
func (p *Program) LabelAt(idx int) string {
	best := ""
	for name, at := range p.Symbols {
		if at != idx {
			continue
		}
		if best == "" || name < best {
			best = name
		}
	}
	return best
}

// Disassemble renders the program, one instruction per line, with
// resolved branch targets shown as absolute indices.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for idx, insn := range p.Insns {
		if lbl := p.LabelAt(idx); lbl != "" {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		text := insn.Text
		if br, ok := insn.Branch(); ok {
			text = strings.Replace(text, fmt.Sprintf(".%+d", br.Disp),
				fmt.Sprintf("@%d", idx+int(br.Disp)), 1)
		} else if c, ok := insn.Call(); ok {
			text = strings.Replace(text, fmt.Sprintf(".%+d", c.Disp),
				fmt.Sprintf("@%d", idx+int(c.Disp)), 1)
		}
		fmt.Fprintf(&b, "%4d: %08x  %s\n", idx, p.Words[idx], text)
	}
	return b.String()
}
