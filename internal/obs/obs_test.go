package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// checkBalanced walks an event stream with a stack and fails on any
// unmatched begin/end, improper nesting, or an end for an unopened
// span.
func checkBalanced(t *testing.T, events []Event) {
	t.Helper()
	var stack []SpanID
	open := map[SpanID]bool{}
	for i, e := range events {
		switch e.Ev {
		case "b":
			if e.Parent != 0 && !open[e.Parent] {
				// A span's parent may have been opened by another
				// goroutine; it must at least already exist in the
				// stream and still be open.
				t.Fatalf("event %d: span %d begins under closed/unknown parent %d", i, e.Span, e.Parent)
			}
			stack = append(stack, e.Span)
			open[e.Span] = true
		case "e":
			if !open[e.Span] {
				t.Fatalf("event %d: end of unopened span %d", i, e.Span)
			}
			open[e.Span] = false
			// Per-goroutine nesting means the ended span need not be
			// the global stack top, but it must still be on the stack.
			found := false
			for j := len(stack) - 1; j >= 0; j-- {
				if stack[j] == e.Span {
					stack = append(stack[:j], stack[j+1:]...)
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("event %d: end of span %d not on stack", i, e.Span)
			}
		default:
			t.Fatalf("event %d: unknown ev %q", i, e.Ev)
		}
	}
	if len(stack) != 0 {
		t.Fatalf("%d spans never ended: %v", len(stack), stack)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	w := tr.Worker(0)
	if w != nil {
		t.Fatal("nil trace produced a non-nil worker")
	}
	w.Begin("k", "n")
	w.Add("c", 1)
	w.End()
	w.Flush()
	if got := tr.Events(); got != nil {
		t.Fatalf("nil trace has events: %v", got)
	}
	if tr.Counter("c") != 0 {
		t.Fatal("nil trace has counters")
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteText: err=%v out=%q", err, buf.String())
	}
	w2 := w.Fork()
	if w2 != nil {
		t.Fatal("nil worker forked a non-nil worker")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := New()
	w := tr.Worker(0)
	root := w.Begin("check", "check")
	w.Begin("phase", "typestate")
	w.End()
	w.Begin("phase", "global")
	w.Begin("cond", "array upper bound")
	w.Begin("query", "valid")
	w.End("verdict", "true")
	w.End()
	w.End()
	w.End()
	w.Add("x", 3)
	w.Add("x", 4)
	w.Flush()

	events := tr.Events()
	checkBalanced(t, events)
	if len(events) != 10 {
		t.Fatalf("got %d events, want 10", len(events))
	}
	if tr.Counter("x") != 7 {
		t.Fatalf("counter x = %d, want 7", tr.Counter("x"))
	}
	sp, ok := tr.SpanByID(root)
	if !ok || sp.Kind != "check" {
		t.Fatalf("SpanByID(root) = %+v, %v", sp, ok)
	}
	for _, s := range tr.Spans() {
		if s.End < s.Start {
			t.Fatalf("span %d ends before it starts", s.ID)
		}
	}
	// The query span's end attrs survive into the event stream.
	found := false
	for _, e := range events {
		if e.Ev == "e" && e.Attrs["verdict"] == "true" {
			found = true
		}
	}
	if !found {
		t.Fatal("query verdict attribute lost")
	}
}

// TestConcurrentWorkersBalanced exercises the pool shape: one parent
// span, many forked workers recording concurrently, merged stream
// still balanced.
func TestConcurrentWorkersBalanced(t *testing.T) {
	tr := New()
	root := tr.Worker(0)
	root.Begin("check", "check")
	root.Begin("phase", "global")

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		fw := root.Fork()
		go func(w *Worker) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w.Begin("chunk", "chunk")
				w.Begin("query", "valid")
				w.Add("queries", 1)
				w.End()
				w.End()
			}
			w.Flush()
		}(fw)
	}
	wg.Wait()
	root.End()
	root.End()
	root.Flush()

	checkBalanced(t, tr.Events())
	if got := tr.Counter("queries"); got != 8*50 {
		t.Fatalf("queries = %d, want %d", got, 8*50)
	}
}

func TestJSONSnapshotShape(t *testing.T) {
	tr := New()
	w := tr.Worker(0)
	w.Begin("check", "check")
	w.End()
	w.Add("solver_valid_queries", 5)
	w.Flush()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("WriteJSON output does not round-trip: %v", err)
	}
	if len(snap.Events) != 2 || snap.Counters["solver_valid_queries"] != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestTextSnapshot(t *testing.T) {
	tr := New()
	w := tr.Worker(0)
	w.Begin("phase", "global")
	w.End()
	w.Add("b_counter", 2)
	w.Add("a_counter", 1)
	w.Flush()

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia, ib := strings.Index(out, "mcsafe_a_counter 1"), strings.Index(out, "mcsafe_b_counter 2")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("counters missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, `mcsafe_spans_total{kind="phase"} 1`) {
		t.Fatalf("span aggregate missing:\n%s", out)
	}
}

// TestSpanLimitBoundsRetention: a span limit caps the retained spans (a
// long-running daemon's memory) while counters and the WriteText span
// aggregates keep counting every span ever merged.
func TestSpanLimitBoundsRetention(t *testing.T) {
	tr := New()
	tr.SetSpanLimit(10)
	const total = 100
	for i := 0; i < total; i++ {
		w := tr.Worker(0)
		w.Begin("request", "/v1/check")
		w.Add("server_requests", 1)
		w.End()
		w.Flush()
	}
	if got := len(tr.Spans()); got != 10 {
		t.Fatalf("retained %d spans, want 10", got)
	}
	if got := tr.Counter("server_requests"); got != total {
		t.Fatalf("server_requests = %d, want %d", got, total)
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `mcsafe_spans_total{kind="request"} 100`
	if !strings.Contains(out, want) {
		t.Fatalf("span aggregate does not cover dropped spans:\nwant %s\n%s", want, out)
	}
	// The retained tail is the most recent spans: IDs are monotone, so
	// the smallest retained ID must be from the last 10 merges.
	spans := tr.Spans()
	if spans[0].ID <= SpanID(total-10) {
		t.Fatalf("oldest retained span ID %d; dropped spans were not the oldest", spans[0].ID)
	}
	// Lowering the limit after the fact prunes immediately.
	tr.SetSpanLimit(3)
	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("retained %d spans after re-limit, want 3", got)
	}
	// And clearing it restores unlimited growth.
	tr.SetSpanLimit(0)
	w := tr.Worker(0)
	for i := 0; i < 20; i++ {
		w.Begin("request", "/v1/check")
		w.End()
	}
	w.Flush()
	if got := len(tr.Spans()); got != 23 {
		t.Fatalf("retained %d spans with limit cleared, want 23", got)
	}
}

func TestTruncateFormula(t *testing.T) {
	if got := TruncateFormula("short"); got != "short" {
		t.Fatal(got)
	}
	long := strings.Repeat("x", 500)
	if got := TruncateFormula(long); len(got) >= 500 {
		t.Fatalf("not truncated: %d bytes", len(got))
	}
}
