// Package obs is the checker's observability layer: hierarchical spans
// with monotonic timings (check → phase → condition chunk → prover
// query) and named counters, collected into a Trace and rendered by
// pluggable sinks — a JSON event stream and a Prometheus-style text
// snapshot.
//
// The layer is built for two regimes:
//
//   - Disabled (the default): every entry point is a method on a
//     possibly-nil receiver that returns immediately, so an
//     uninstrumented check pays one nil compare per call site and
//     allocates nothing. The bench regression gate holds this to the
//     existing threshold.
//   - Enabled: recording is race-free at any parallelism. Each
//     goroutine records through its own Worker (single-owner buffers,
//     the same sharding discipline as the Phase 5 prover pool) and
//     merges into the Trace under one mutex when it finishes. Span IDs
//     and event sequence numbers come from shared atomic counters, so
//     the merged event stream has a total order consistent with every
//     per-goroutine order and with the happens-before edges between
//     them — which is what keeps the stream balanced. At
//     Parallelism 1 recording is single-threaded and therefore fully
//     deterministic (IDs, order, and counter values).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one Trace; 0 means "no span".
type SpanID int64

// Span is one completed interval of work. Times are monotonic
// nanosecond offsets from the trace's start.
type Span struct {
	ID     SpanID            `json:"id"`
	Parent SpanID            `json:"parent,omitempty"`
	Kind   string            `json:"kind"`
	Name   string            `json:"name"`
	Start  int64             `json:"start_ns"`
	End    int64             `json:"end_ns"`
	Attrs  map[string]string `json:"attrs,omitempty"`

	startSeq, endSeq int64
}

// Dur returns the span's duration.
func (s Span) Dur() time.Duration { return time.Duration(s.End - s.Start) }

// Event is one entry of the rendered event stream: a span begin
// ("b", carrying kind/name/parent) or a span end ("e", carrying the
// span's attributes). Seq totally orders the stream; at Parallelism 1
// it is deterministic across runs.
type Event struct {
	Seq    int64             `json:"seq"`
	Ev     string            `json:"ev"` // "b" or "e"
	Span   SpanID            `json:"span"`
	Parent SpanID            `json:"parent,omitempty"`
	Kind   string            `json:"kind,omitempty"`
	Name   string            `json:"name,omitempty"`
	T      int64             `json:"t_ns"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Trace collects the spans and counters of one or more checks. A nil
// *Trace is the no-op observer: every method is safe to call and does
// nothing. A non-nil Trace may be shared by concurrent checks (each
// check records through its own Workers).
type Trace struct {
	start time.Time
	ids   atomic.Int64 // span IDs
	seq   atomic.Int64 // event sequence numbers

	mu       sync.Mutex
	spans    []Span
	maxSpans int // > 0: retain only the most recent maxSpans spans
	dropped  int64
	aggs     map[string]*spanAgg // per-kind totals over ALL merged spans
	counters map[string]int64
}

// spanAgg accumulates one kind's span totals; unlike the spans slice it
// is never pruned, so WriteText stays monotone under a span limit.
type spanAgg struct {
	count int64
	ns    int64
}

// New returns an empty trace whose clock starts now.
func New() *Trace {
	return &Trace{
		start:    time.Now(),
		aggs:     make(map[string]*spanAgg),
		counters: make(map[string]int64),
	}
}

// SetSpanLimit bounds span retention: after each merge only the n most
// recently merged spans are kept (n <= 0 restores unlimited retention,
// the default). Counters and the per-kind aggregates WriteText renders
// keep counting every span ever merged, so a long-running daemon can
// cap its memory without losing metrics; only the replayable event
// stream (Events/Snapshot/WriteJSON) is truncated to the retained tail,
// which may reference parents that have been dropped.
func (t *Trace) SetSpanLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.maxSpans = n
	t.pruneLocked()
	t.mu.Unlock()
}

// pruneLocked drops the oldest retained spans down to the limit.
func (t *Trace) pruneLocked() {
	if t.maxSpans <= 0 || len(t.spans) <= t.maxSpans {
		return
	}
	excess := len(t.spans) - t.maxSpans
	t.dropped += int64(excess)
	// Copy rather than re-slice so the dropped prefix is freed.
	t.spans = append(t.spans[:0], t.spans[excess:]...)
}

func (t *Trace) now() int64 { return int64(time.Since(t.start)) }

// Worker returns a single-goroutine recorder whose root spans are
// children of parent (0 for top-level). Returns nil — the no-op
// recorder — when t is nil.
func (t *Trace) Worker(parent SpanID) *Worker {
	if t == nil {
		return nil
	}
	return &Worker{t: t, parent: parent, counters: make(map[string]int64)}
}

// merge absorbs a worker's finished spans and counters.
func (t *Trace) merge(spans []Span, counters map[string]int64) {
	t.mu.Lock()
	for _, s := range spans {
		a := t.aggs[s.Kind]
		if a == nil {
			a = &spanAgg{}
			t.aggs[s.Kind] = a
		}
		a.count++
		a.ns += s.End - s.Start
	}
	t.spans = append(t.spans, spans...)
	t.pruneLocked()
	for k, v := range counters {
		t.counters[k] += v
	}
	t.mu.Unlock()
}

// Counters returns a copy of the merged counters.
func (t *Trace) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// Counter returns one merged counter (0 when absent).
func (t *Trace) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters[name]
}

// Spans returns a copy of the completed spans, sorted by ID.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SpanByID returns the completed span with the given ID.
func (t *Trace) SpanByID(id SpanID) (Span, bool) {
	if t == nil || id == 0 {
		return Span{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		if s.ID == id {
			return s, true
		}
	}
	return Span{}, false
}

// Events renders the completed spans as a begin/end event stream,
// totally ordered by sequence number. Because sequence numbers are
// drawn at record time from one atomic counter, the order is
// consistent with each recording goroutine's program order and with
// the fork/join edges between goroutines, so the stream is balanced:
// every "b" has a matching later "e", and nesting is proper.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	out := make([]Event, 0, 2*len(spans))
	for _, s := range spans {
		out = append(out, Event{
			Seq: s.startSeq, Ev: "b", Span: s.ID, Parent: s.Parent,
			Kind: s.Kind, Name: s.Name, T: s.Start,
		})
		out = append(out, Event{Seq: s.endSeq, Ev: "e", Span: s.ID, T: s.End, Attrs: s.Attrs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Snapshot is the JSON shape of a trace: the event stream plus the
// merged counters. The schema is stable: fields are only ever added.
type Snapshot struct {
	Events   []Event          `json:"events"`
	Counters map[string]int64 `json:"counters"`
}

// Snapshot materializes the trace for JSON rendering.
func (t *Trace) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{Counters: map[string]int64{}}
	}
	return Snapshot{Events: t.Events(), Counters: t.Counters()}
}

// WriteJSON writes the trace snapshot — the JSON event-stream sink.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Snapshot())
}

// WriteText writes a Prometheus/expvar-style text snapshot: one line
// per counter plus per-kind span aggregates, in sorted order.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	counters := t.Counters()
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "mcsafe_%s %d\n", k, counters[k]); err != nil {
			return err
		}
	}
	// The aggregates are maintained at merge time — over every span ever
	// merged, not just the retained ones — so this snapshot is O(kinds)
	// and stays monotone under SetSpanLimit.
	byKind := map[string]spanAgg{}
	t.mu.Lock()
	for k, a := range t.aggs {
		byKind[k] = *a
	}
	t.mu.Unlock()
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "mcsafe_spans_total{kind=%q} %d\n", k, byKind[k].count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "mcsafe_span_ns_total{kind=%q} %d\n", k, byKind[k].ns); err != nil {
			return err
		}
	}
	return nil
}

// Worker is a single-goroutine recorder. All methods are nil-safe: a
// nil *Worker is the no-op recorder the uninstrumented path uses, and
// costs one pointer compare per call. A Worker must not be shared
// across goroutines; fork one per goroutine with Fork and call Flush
// when the goroutine's work is done (with every span ended).
type Worker struct {
	t        *Trace
	parent   SpanID
	stack    []Span
	done     []Span
	counters map[string]int64
}

// Trace returns the backing trace (nil for the no-op worker).
func (w *Worker) Trace() *Trace {
	if w == nil {
		return nil
	}
	return w.t
}

// Current returns the innermost open span (or the worker's base
// parent when none is open).
func (w *Worker) Current() SpanID {
	if w == nil {
		return 0
	}
	if n := len(w.stack); n > 0 {
		return w.stack[n-1].ID
	}
	return w.parent
}

// Fork returns a new worker for another goroutine, rooted at this
// worker's current span.
func (w *Worker) Fork() *Worker {
	if w == nil {
		return nil
	}
	return w.t.Worker(w.Current())
}

// Begin opens a span nested under the current one.
func (w *Worker) Begin(kind, name string) SpanID {
	if w == nil {
		return 0
	}
	id := SpanID(w.t.ids.Add(1))
	w.stack = append(w.stack, Span{
		ID: id, Parent: w.Current(), Kind: kind, Name: name,
		Start: w.t.now(), startSeq: w.t.seq.Add(1),
	})
	return id
}

// End closes the innermost open span. kv are alternating attribute
// key/value pairs attached to the span's end event.
func (w *Worker) End(kv ...string) {
	if w == nil {
		return
	}
	n := len(w.stack) - 1
	if n < 0 {
		return
	}
	sp := w.stack[n]
	w.stack = w.stack[:n]
	sp.End = w.t.now()
	sp.endSeq = w.t.seq.Add(1)
	if len(kv) > 1 {
		sp.Attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			sp.Attrs[kv[i]] = kv[i+1]
		}
	}
	w.done = append(w.done, sp)
}

// EndAll closes every open span, innermost first, attaching the given
// attributes to each end event. It is the panic-recovery balancer: a
// proof attempt that panics mid-span would otherwise leave the event
// stream unbalanced, so containment sites call EndAll before Flush.
func (w *Worker) EndAll(kv ...string) {
	if w == nil {
		return
	}
	for len(w.stack) > 0 {
		w.End(kv...)
	}
}

// Add bumps a named counter in the worker's private tally.
func (w *Worker) Add(name string, n int64) {
	if w == nil || n == 0 {
		return
	}
	w.counters[name] += n
}

// Flush merges the worker's finished spans and counters into the
// trace. Open spans are not flushed; end them first. The worker stays
// usable after a flush.
func (w *Worker) Flush() {
	if w == nil {
		return
	}
	if len(w.done) == 0 && len(w.counters) == 0 {
		return
	}
	w.t.merge(w.done, w.counters)
	w.done = nil
	for k := range w.counters {
		delete(w.counters, k)
	}
}

// TruncateFormula bounds attribute payloads: span attributes carry
// formula texts, which the DNF-heavy programs can grow without bound.
func TruncateFormula(s string) string {
	const max = 200
	if len(s) <= max {
		return s
	}
	return s[:max] + "…"
}
