package difftest

import (
	"math/rand"
	"testing"

	"mcsafe/internal/gen"
)

// FuzzGen drives the program generator itself: any (seed, size, kind)
// triple must yield a fixture that generates deterministically,
// assembles, checks in agreement with its constructed ground truth,
// and — when checker-approved — survives concrete execution. This is
// the full generated-program oracle (CheckGenFixture) under fuzzed
// configurations instead of a fixed sweep.
func FuzzGen(f *testing.F) {
	f.Add(int64(0), 16, byte(0))
	f.Add(int64(1), 64, byte(1))
	f.Add(int64(7), 120, byte(2))
	f.Add(int64(42), 200, byte(3))
	f.Add(int64(99), 64, byte(4))
	f.Add(int64(123), 80, byte(5))
	f.Fuzz(func(t *testing.T, seed int64, size int, kindSel byte) {
		// Bound the checking cost per input, not the generator's domain:
		// the generator must handle any size, but fuzz throughput wants
		// small programs.
		size %= 256
		if size < 0 {
			size = -size
		}
		cfg := gen.Config{
			Seed: seed,
			Size: size,
			Kind: gen.Kinds[int(kindSel)%len(gen.Kinds)],
		}
		r := rand.New(rand.NewSource(seed))
		if _, err := CheckGenFixture(cfg, 1, 100000, r); err != nil {
			t.Fatal(err)
		}
	})
}
