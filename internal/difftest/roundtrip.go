package difftest

import (
	"fmt"
	"math/rand"

	"mcsafe/internal/sparc"
)

// encodableOps lists every op the encoder accepts, grouped by format.
var (
	fmt3ArithOps = []sparc.Op{
		sparc.OpAdd, sparc.OpAddcc, sparc.OpSub, sparc.OpSubcc,
		sparc.OpAnd, sparc.OpAndcc, sparc.OpAndn,
		sparc.OpOr, sparc.OpOrcc, sparc.OpOrn,
		sparc.OpXor, sparc.OpXorcc, sparc.OpXnor,
		sparc.OpSll, sparc.OpSrl, sparc.OpSra,
		sparc.OpUMul, sparc.OpSMul, sparc.OpUDiv, sparc.OpSDiv,
		sparc.OpJmpl, sparc.OpSave, sparc.OpRestore,
	}
	fmt3MemOps = []sparc.Op{
		sparc.OpLd, sparc.OpLdub, sparc.OpLduh, sparc.OpLdsb, sparc.OpLdsh,
		sparc.OpLdd, sparc.OpSt, sparc.OpStb, sparc.OpSth, sparc.OpStd,
	}
)

// GenInsn draws one canonical random instruction: only the fields the
// instruction's format carries are populated, exactly as Decode produces
// them, so decode(encode(i)) == i must hold field for field.
func GenInsn(r *rand.Rand) sparc.Insn {
	switch r.Intn(10) {
	case 0: // call
		return sparc.Insn{Op: sparc.OpCall, Disp: int32(r.Intn(1<<30)) - 1<<29}
	case 1: // branch
		return sparc.Insn{
			Op:    sparc.OpBranch,
			Cond:  sparc.Cond(r.Intn(16)),
			Annul: r.Intn(2) == 1,
			Disp:  int32(r.Intn(1<<22)) - 1<<21,
		}
	case 2: // sethi
		return sparc.Insn{
			Op:   sparc.OpSethi,
			Rd:   sparc.Reg(r.Intn(32)),
			Imm:  true,
			SImm: int32(uint32(r.Intn(1<<22)) << 10),
		}
	default: // format 3
		var op sparc.Op
		if r.Intn(3) == 0 {
			op = fmt3MemOps[r.Intn(len(fmt3MemOps))]
		} else {
			op = fmt3ArithOps[r.Intn(len(fmt3ArithOps))]
		}
		i := sparc.Insn{
			Op:  op,
			Rd:  sparc.Reg(r.Intn(32)),
			Rs1: sparc.Reg(r.Intn(32)),
		}
		if r.Intn(2) == 0 {
			i.Imm = true
			i.SImm = int32(r.Intn(8192)) - 4096
		} else {
			i.Rs2 = sparc.Reg(r.Intn(32))
		}
		return i
	}
}

// CheckInsnRoundTrip asserts decode(encode(i)) == i for a canonical
// instruction.
func CheckInsnRoundTrip(i sparc.Insn) error {
	w, err := sparc.Encode(i)
	if err != nil {
		return fmt.Errorf("encode(%v): %v", i, err)
	}
	back, err := sparc.Decode(w)
	if err != nil {
		return fmt.Errorf("decode(encode(%v)) = decode(0x%08x): %v", i, w, err)
	}
	if back != i {
		return fmt.Errorf("round trip: %v -> 0x%08x -> %v", i, w, back)
	}
	return nil
}

// ignoredBitsZero reports whether w uses no don't-care encoding bits.
// The only such bits in the supported subset are the asi field (bits
// 5..12) of a register-register format-3 instruction, which Decode
// discards. Words with those bits set decode fine but cannot re-encode
// bit-identically.
func ignoredBitsZero(w uint32) bool {
	op := w >> 30
	if (op == 2 || op == 3) && w&(1<<13) == 0 {
		return w&0x1fe0 == 0
	}
	return true
}

// CheckWordRoundTrip asserts the decoder laws on one arbitrary word:
// decoding must not panic (the caller wraps in a fuzz target), a
// decoded instruction must re-encode without error, re-encoding must be
// bit-identical when the word has no don't-care bits, and
// decode/encode/decode must be a fixed point in all cases.
func CheckWordRoundTrip(w uint32) error {
	i, err := sparc.Decode(w)
	if err != nil {
		// Undecodable words are fine; the checker rejects the binary.
		return nil
	}
	w2, err := sparc.Encode(i)
	if err != nil {
		return fmt.Errorf("decode(0x%08x) = %v does not re-encode: %v", w, i, err)
	}
	if ignoredBitsZero(w) && w2 != w {
		return fmt.Errorf("word round trip: 0x%08x -> %v -> 0x%08x", w, i, w2)
	}
	i2, err := sparc.Decode(w2)
	if err != nil {
		return fmt.Errorf("re-decode(0x%08x): %v", w2, err)
	}
	if i2 != i {
		return fmt.Errorf("decode not idempotent: 0x%08x -> %v, 0x%08x -> %v", w, i, w2, i2)
	}
	return nil
}

// CheckProgramRoundTrip asserts the decoder laws on every word of an
// assembled program, and that the program's decoded view matches a fresh
// decode of its words.
func CheckProgramRoundTrip(p *sparc.Program) error {
	insns, err := sparc.DecodeAll(p.Words)
	if err != nil {
		return fmt.Errorf("DecodeAll: %v", err)
	}
	for idx, w := range p.Words {
		if err := CheckWordRoundTrip(w); err != nil {
			return fmt.Errorf("word %d: %v", idx, err)
		}
		got := insns[idx]
		want := p.Insns[idx]
		want.Line = 0 // fresh decode carries no source map
		if got != want {
			return fmt.Errorf("word %d: program insn %v != decoded %v", idx, want, got)
		}
		w2, err := sparc.Encode(got)
		if err != nil {
			return fmt.Errorf("word %d: re-encode: %v", idx, err)
		}
		if w2 != w {
			return fmt.Errorf("word %d: 0x%08x re-encodes to 0x%08x", idx, w, w2)
		}
	}
	return nil
}
