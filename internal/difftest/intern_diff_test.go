package difftest

import (
	"math/rand"
	"testing"

	"mcsafe/internal/expr"
	"mcsafe/internal/obs"
	"mcsafe/internal/rtl"
	"mcsafe/internal/solver"
)

// corpusFormulas draws a mixed corpus from all three generators — the
// same formula shapes the checker's proof obligations take.
func corpusFormulas(r *rand.Rand, n int) []expr.Formula {
	var fs []expr.Formula
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			s := GenSystem(r)
			fs = append(fs, expr.ClauseFormula(s.Clause))
		case 1:
			hyp, goal, _, _ := GenImplication(r)
			fs = append(fs, expr.Implies(hyp, goal))
		default:
			f, _, _ := GenQuantified(r)
			fs = append(fs, f)
		}
	}
	return fs
}

// TestDiffInternPreservesStrings checks on the random-program corpus
// that interning is invisible to stringification: the interned render of
// every generated proof obligation is byte-identical to f.String(), on
// the miss and on the hit.
func TestDiffInternPreservesStrings(t *testing.T) {
	in := expr.NewInterner()
	for round := 0; round < 2; round++ {
		rr := rand.New(rand.NewSource(31)) // same corpus both rounds
		for i, f := range corpusFormulas(rr, 600) {
			if got, want := in.StringOf(f), f.String(); got != want {
				t.Fatalf("round %d formula %d: interned %q != plain %q", round, i, got, want)
			}
		}
	}
	if in.Hits() == 0 {
		t.Fatal("second round never hit the intern table")
	}
}

// TestDiffInternedProverMatchesUninterned runs the interned, observed
// prover configuration (what the parallel checker pool wires up) against
// a plain prover over the corpus and requires identical verdicts on
// every query.
func TestDiffInternedProverMatchesUninterned(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	fs := corpusFormulas(r, 400)

	var valid, invalid int
	for i, f := range fs {
		plain := solver.New()
		fancy := solver.New()
		fancy.Intern = expr.NewInterner()
		fancy.Obs = obs.New().Worker(0)

		want := plain.Valid(f)
		got := fancy.Valid(f)
		if got != want {
			t.Fatalf("formula %d: interned prover=%v plain prover=%v\n%s", i, got, want, f)
		}
		if want {
			valid++
		} else {
			invalid++
		}
	}
	t.Logf("%d valid, %d not proved", valid, invalid)
	if valid == 0 || invalid == 0 {
		t.Fatal("corpus degenerated: need both verdicts represented")
	}
}

// TestDiffFoldBinMatchesEvalBin pins the abstract int64 constant folding
// to the concrete 32-bit ALU: wherever both are defined, the folded
// value truncates to exactly the machine result.
func TestDiffFoldBinMatchesEvalBin(t *testing.T) {
	ops := []rtl.BinOp{
		rtl.Add, rtl.Sub, rtl.And, rtl.AndNot, rtl.Or, rtl.OrNot,
		rtl.Xor, rtl.XorNot, rtl.ShL, rtl.ShRL, rtl.ShRA,
		rtl.MulU, rtl.MulS, rtl.DivU, rtl.DivS,
	}
	interesting := []uint32{0, 1, 2, 31, 32, 0x7fffffff, 0x80000000, 0xffffffff}
	r := rand.New(rand.NewSource(33))
	var checked int
	for trial := 0; trial < 5000; trial++ {
		var a, b uint32
		if trial < len(interesting)*len(interesting) {
			a = interesting[trial%len(interesting)]
			b = interesting[trial/len(interesting)]
		} else {
			a, b = r.Uint32(), r.Uint32()
		}
		for _, op := range ops {
			folded, ok := rtl.FoldBin(op, int64(a), int64(b))
			if !ok {
				continue // division and orn are outside the folded fragment
			}
			evaled, err := rtl.EvalBin(op, a, b)
			if err != nil {
				t.Fatalf("%v(%#x,%#x): FoldBin defined but EvalBin errs: %v", op, a, b, err)
			}
			if uint32(folded) != evaled {
				t.Fatalf("%v(%#x,%#x): FoldBin=%#x EvalBin=%#x", op, a, b, uint32(folded), evaled)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no op/input pair was checked")
	}
}
