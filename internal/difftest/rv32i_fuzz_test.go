package difftest

import (
	"testing"

	"mcsafe/internal/riscv"
)

// FuzzLiftRV32I exercises the RV32I front-end laws on arbitrary 32-bit
// words: Decode must never panic; any word it accepts must re-encode
// bit-identically, re-decode to the same instruction, and lift to a
// non-empty RTL effect sequence (the single-source-of-semantics
// contract the ISA-neutral pipeline relies on).
func FuzzLiftRV32I(f *testing.F) {
	f.Add(uint32(0x00000013)) // nop (addi x0, x0, 0)
	f.Add(uint32(0x00008067)) // ret (jalr x0, 0(ra))
	f.Add(uint32(0x00150513)) // addi a0, a0, 1
	f.Add(uint32(0x00052583)) // lw a1, 0(a0)
	f.Add(uint32(0x00b52023)) // sw a1, 0(a0)
	f.Add(uint32(0x00b55463)) // bge a0, a1, .+8
	f.Add(uint32(0x00251513)) // slli a0, a0, 2
	f.Add(uint32(0x008000ef)) // jal ra, .+8
	f.Add(uint32(0x00012537)) // lui a0, 0x12
	f.Add(uint32(0x40b50533)) // sub a0, a0, a1
	f.Add(uint32(0x0000000f)) // fence
	f.Add(uint32(0x00000073)) // ecall
	f.Add(uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, w uint32) {
		i, err := riscv.Decode(w)
		if err != nil {
			return // undecodable words are fine; the checker rejects the binary
		}
		w2, err := riscv.Encode(i)
		if err != nil {
			t.Fatalf("decode(0x%08x) = %v does not re-encode: %v", w, i, err)
		}
		// fence's predecessor/successor ordering bits are don't-care to
		// the single-threaded model; every other encoding is exact.
		if w2 != w && i.Op != riscv.OpFence {
			t.Fatalf("word round trip: 0x%08x -> %v -> 0x%08x", w, i, w2)
		}
		i2, err := riscv.Decode(w2)
		if err != nil {
			t.Fatalf("re-decode(0x%08x): %v", w2, err)
		}
		if i2 != i {
			t.Fatalf("decode not idempotent: 0x%08x -> %v, 0x%08x -> %v", w, i, w2, i2)
		}
		if len(riscv.Lift(i)) == 0 {
			t.Fatalf("decodable word 0x%08x (%v) does not lift", w, i)
		}
	})
}
