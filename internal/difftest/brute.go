package difftest

import "mcsafe/internal/expr"

// BoxDomain returns the quantifier evaluation domain [-dom, dom] used by
// expr.Formula.Eval for quantified formulas.
func BoxDomain(dom int64) []int64 {
	d := make([]int64, 0, 2*dom+1)
	for v := -dom; v <= dom; v++ {
		d = append(d, v)
	}
	return d
}

// forEachEnv enumerates every assignment of vars over [-dom, dom],
// calling fn with a reused map; it stops early (returning true) when fn
// returns true.
func forEachEnv(vars []expr.Var, dom int64, fn func(env map[expr.Var]int64) bool) bool {
	env := make(map[expr.Var]int64, len(vars))
	var walk func(i int) bool
	walk = func(i int) bool {
		if i == len(vars) {
			return fn(env)
		}
		for v := -dom; v <= dom; v++ {
			env[vars[i]] = v
			if walk(i + 1) {
				return true
			}
		}
		return false
	}
	return walk(0)
}

// cloneEnv copies an assignment (the enumerator reuses its map).
func cloneEnv(env map[expr.Var]int64) map[expr.Var]int64 {
	out := make(map[expr.Var]int64, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// SatWitness searches the box for an assignment satisfying f. Quantified
// subformulas are evaluated over the box domain.
func SatWitness(f expr.Formula, vars []expr.Var, dom int64) (map[expr.Var]int64, bool) {
	domain := BoxDomain(dom)
	var witness map[expr.Var]int64
	found := forEachEnv(vars, dom, func(env map[expr.Var]int64) bool {
		if f.Eval(env, domain) {
			witness = cloneEnv(env)
			return true
		}
		return false
	})
	return witness, found
}

// Counterexample searches the box for an assignment falsifying f.
func Counterexample(f expr.Formula, vars []expr.Var, dom int64) (map[expr.Var]int64, bool) {
	cex, found := SatWitness(expr.Not{F: f}, vars, dom)
	return cex, found
}
