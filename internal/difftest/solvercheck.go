package difftest

import (
	"fmt"

	"mcsafe/internal/expr"
	"mcsafe/internal/solver"
)

// CheckSystem cross-checks the prover's verdicts on one box-bounded
// system against exhaustive enumeration. The prover may answer "not
// proved" anywhere (incompleteness is allowed); an error is returned
// only when a definite verdict is contradicted by an enumerated witness,
// which is a prover soundness bug.
func CheckSystem(p *solver.Prover, s SolverSystem) error {
	f := expr.ClauseFormula(s.Clause)
	// Unsat direction: the box bounds are part of f, so integer
	// satisfiability equals box satisfiability and enumeration decides it.
	witness, sat := SatWitness(f, s.Vars, s.Dom)
	if p.Unsat(f) && sat {
		return fmt.Errorf("prover claims unsat but %v satisfies it: %s", witness, f)
	}
	// Valid direction: validity is over all of ℤ, so it is checked on the
	// unbounded core (the bounded clause contains box atoms no sound
	// prover can call valid). Enumeration cannot confirm validity, but any
	// enumerated counterexample is an integer point, so it soundly refutes
	// a validity claim; searching slightly beyond the box also catches a
	// prover that wrongly calls the box-bounded clause itself valid.
	core := expr.ClauseFormula(s.Core)
	if p.Valid(core) {
		if cex, found := Counterexample(core, s.Vars, s.Dom+2); found {
			return fmt.Errorf("prover claims valid but %v falsifies it: %s", cex, core)
		}
		if p.Unsat(core) {
			return fmt.Errorf("prover claims a formula both valid and unsat: %s", core)
		}
	}
	if p.Valid(f) {
		if cex, found := Counterexample(f, s.Vars, s.Dom+2); found {
			return fmt.Errorf("prover claims the bounded clause valid but %v falsifies it: %s", cex, f)
		}
	}
	return nil
}

// CheckImplication cross-checks Valid(hyp -> goal). Because hyp carries
// the box bounds, any integer counterexample to the implication lies
// inside the box, so enumeration is a complete refuter: a "valid"
// verdict with a box counterexample is a soundness bug. The returned
// proved flag (when err == nil) feeds completeness statistics.
func CheckImplication(p *solver.Prover, hyp, goal expr.Formula, vars []expr.Var, dom int64) (proved bool, err error) {
	f := expr.Implies(hyp, goal)
	proved = p.Valid(f)
	if proved {
		if cex, found := Counterexample(f, vars, dom); found {
			return proved, fmt.Errorf("prover claims valid but %v falsifies it: %s", cex, f)
		}
	}
	return proved, nil
}

// CheckQuantified cross-checks a universally-quantified formula and its
// PruneQuant rewrite. The corpus contains only universals in positive
// position, so evaluating quantifiers over the box under-approximates
// truth: a box counterexample refutes validity over the integers.
// PruneQuant documents that its result implies its input, hence a
// "valid" verdict on the pruned formula with a counterexample to the
// original is a pruning soundness bug.
func CheckQuantified(p *solver.Prover, f expr.Formula, vars []expr.Var, dom int64) (validOrig, validPruned bool, err error) {
	g := p.PruneQuant(f)
	validOrig, validPruned = p.Valid(f), p.Valid(g)
	if validOrig {
		if cex, found := Counterexample(f, vars, dom); found {
			return validOrig, validPruned, fmt.Errorf("prover claims valid but %v falsifies it: %s", cex, f)
		}
	}
	if validPruned {
		if cex, found := Counterexample(f, vars, dom); found {
			return validOrig, validPruned,
				fmt.Errorf("pruned formula proved but %v falsifies the original\noriginal: %s\npruned:   %s", cex, f, g)
		}
	}
	return validOrig, validPruned, nil
}
