package difftest

import (
	"fmt"
	"math/rand"

	"mcsafe/internal/core"
	"mcsafe/internal/gen"
	"mcsafe/internal/sparc"
)

// The generated-program arm of the soundness oracle: where the mutant
// sweep perturbs the 13 hand-ported programs one word at a time, this
// arm draws whole programs from internal/gen — with constructed ground
// truth — and holds the checker to both sides of it. A safe fixture the
// checker rejects is a completeness regression; a planted fixture it
// approves is a soundness hole; and every checker-approved fixture must
// run trap-free in random concrete worlds, closing the loop against the
// interpreter exactly as the mutant arm does.

// GenOracleConfig parameterizes one generated-program sweep.
type GenOracleConfig struct {
	Seed     int64
	Programs int // fixtures to generate (kinds cycle, sizes vary)
	MaxSize  int // upper bound of the size band (≥ gen.MinSize)
	Worlds   int // concrete environments per checker-safe fixture
	MaxSteps int // interpreter step budget per run
}

// DefaultGenOracleConfig sizes the sweep for an interactive run.
func DefaultGenOracleConfig() GenOracleConfig {
	return GenOracleConfig{Seed: 1, Programs: 60, MaxSize: 300, Worlds: 2, MaxSteps: 200000}
}

// GenOracleStats summarizes one sweep.
type GenOracleStats struct {
	Programs     int
	Instructions int
	Safe         int // checker-safe fixtures (all executed)
	Unsafe       int
	Executions   int
}

// CheckGenFixture generates the fixture for cfg and holds the checker
// to its constructed ground truth; checker-safe fixtures are then
// executed in `worlds` concrete environments drawn from r, where any
// trap is a soundness counterexample. It also re-generates the fixture
// and fails on any byte difference, guarding the determinism contract
// everything downstream (shards, manifests, replay) rests on. The
// returned executions count is the number of concrete runs performed.
func CheckGenFixture(cfg gen.Config, worlds, maxSteps int, r *rand.Rand) (int, error) {
	f := gen.Generate(cfg)
	if again := gen.Generate(cfg); *again != *f {
		return 0, fmt.Errorf("%s: generation is not deterministic", f.Name)
	}
	prog, spec, err := f.BuildNative()
	if err != nil {
		return 0, err
	}
	res, err := core.Check(sparc.ToISA(prog), spec, core.Options{})
	if err != nil {
		return 0, fmt.Errorf("%s: check: %w", f.Name, err)
	}
	if f.WantSafe && !res.Safe {
		return 0, fmt.Errorf("%s: constructed safe, checker reports %v", f.Name, res.Violations[0])
	}
	if !f.WantSafe {
		for _, v := range res.Violations {
			if v.Code == f.WantCode {
				return 0, nil // planted violation found; never execute
			}
		}
		if res.Safe {
			return 0, fmt.Errorf("%s: planted %s in %s, checker reports safe", f.Name, f.WantCode, f.PlantUnit)
		}
		return 0, fmt.Errorf("%s: planted %s in %s, checker reports %v", f.Name, f.WantCode, f.PlantUnit, res.Violations)
	}
	// Checker-approved: the static verdict must survive concrete
	// execution in any world the specification admits.
	execs := 0
	for w := 0; w < worlds; w++ {
		world, err := BuildWorld(spec, r)
		if err != nil {
			return execs, fmt.Errorf("%s: world %d: %w", f.Name, w, err)
		}
		execs++
		if trap, _ := world.Exec(prog, maxSteps); trap != nil {
			return execs, fmt.Errorf("%s: SOUNDNESS: checker-approved fixture trapped in world %d: %s [%s]",
				f.Name, w, trap, TrapCode(trap.Kind))
		}
	}
	return execs, nil
}

// RunGenOracle sweeps cfg.Programs generated fixtures, cycling kinds
// and walking the size band deterministically from cfg.Seed.
func RunGenOracle(cfg GenOracleConfig) (GenOracleStats, error) {
	var stats GenOracleStats
	if cfg.MaxSize < gen.MinSize {
		cfg.MaxSize = gen.MinSize
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	band := cfg.MaxSize - gen.MinSize + 1
	for i := 0; i < cfg.Programs; i++ {
		gc := gen.Config{
			Seed: cfg.Seed + int64(i),
			Size: gen.MinSize + (i*37)%band,
			Kind: gen.Kinds[i%len(gen.Kinds)],
		}
		f := gen.Generate(gc)
		stats.Programs++
		stats.Instructions += f.Insns
		if f.WantSafe {
			stats.Safe++
		} else {
			stats.Unsafe++
		}
		execs, err := CheckGenFixture(gc, cfg.Worlds, cfg.MaxSteps, r)
		stats.Executions += execs
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}
