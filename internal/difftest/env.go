package difftest

import (
	"fmt"
	"math/rand"
	"sort"

	"mcsafe/internal/expr"
	"mcsafe/internal/policy"
	"mcsafe/internal/rtl"
	"mcsafe/internal/sparc"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// A Region is one contiguous span of concretely-allocated host memory
// with the access rights the policy grants the untrusted code on it.
type Region struct {
	Name   string
	Lo, Hi uint32 // [Lo, Hi)
	// Uniform access rights (arrays, scalars, the stack).
	Read, Write bool
	// Fields, when non-empty, carve the region into struct members with
	// per-field rights; an access must fall inside a single field.
	Fields []FieldPerm
}

// FieldPerm is the byte range and rights of one struct member.
type FieldPerm struct {
	Name        string
	Off, Size   int
	Read, Write bool
}

// Trap is one dynamic safety violation observed by the interpreter: the
// concrete counterpart of the checker's default safety conditions.
type Trap struct {
	Kind  string // "oob", "misalign", or "perm"
	Addr  uint32
	Size  int
	Write bool
	PC    int
}

func (t *Trap) String() string {
	acc := "read"
	if t.Write {
		acc = "write"
	}
	return fmt.Sprintf("%s trap: %d-byte %s at 0x%x (insn %d)", t.Kind, t.Size, acc, t.Addr, t.PC)
}

// World is one concrete host environment drawn from a policy
// specification: a memory image, the invocation-register values, and the
// access-rights map the trap classifier consults. It is the dynamic
// analogue of Phase 1's initial annotations.
type World struct {
	Regions []Region
	Regs    map[sparc.Reg]uint32
	Syms    map[string]int64

	mem  map[uint32]byte
	spec *policy.Spec
	rng  *rand.Rand
}

const (
	// dataBase is where entity allocations start: far from address 0 (so
	// null-pointer offsets fault), from the code (DefaultBase), and from
	// the stack.
	dataBase = 0x00200000
	// regionGap separates allocations so small out-of-bounds offsets
	// land in unmapped space instead of a neighbouring region.
	regionGap = 64
	// stackTop is the initial %sp; the stack region extends stackSize
	// below it and a small caller-frame area above it.
	stackTop   = 0x7f000000
	stackSize  = 0x10000
	stackAbove = 0x400
)

// BuildWorld draws one concrete environment for a program checked
// against spec. It fails only when the specification's symbol
// constraints cannot be satisfied by a small random search.
func BuildWorld(spec *policy.Spec, r *rand.Rand) (*World, error) {
	w := &World{
		Regs: make(map[sparc.Reg]uint32),
		Syms: make(map[string]int64),
		mem:  make(map[uint32]byte),
		spec: spec,
		rng:  r,
	}
	if err := w.chooseSymbols(); err != nil {
		return nil, err
	}

	// The stack: the invocation hands the untrusted code a valid %sp.
	w.Regions = append(w.Regions, Region{
		Name: "stack", Lo: stackTop - stackSize, Hi: stackTop + stackAbove,
		Read: true, Write: true,
	})
	w.Regs[sparc.SP] = stackTop

	valAddr, err := w.allocateEntities()
	if err != nil {
		return nil, err
	}

	// Invocation: registers carry entity addresses and symbol values.
	for reg, name := range spec.Invoke {
		if v, ok := valAddr[name]; ok {
			w.Regs[sparc.Reg(reg)] = v
		} else if v, ok := w.Syms[name]; ok {
			w.Regs[sparc.Reg(reg)] = uint32(v)
		} else {
			return nil, fmt.Errorf("invoke %s = %s: unknown entity or symbol", sparc.Reg(reg), name)
		}
	}
	return w, nil
}

// chooseSymbols draws values for the specification's symbolic integers
// until every constraint whose free variables are all symbols holds.
func (w *World) chooseSymbols() error {
	var names []string
	for s := range w.spec.Symbols {
		names = append(names, s)
	}
	// Sorted, so the rng draw order (and thus every generated world) is
	// independent of map iteration order.
	sort.Strings(names)
	// Gather the constraints decidable from symbols alone; constraints
	// over entity contents (e.g. val(tmr.count) >= 0) are honoured by
	// construction: all generated contents are small non-negative ints.
	symSet := make(map[expr.Var]bool, len(names))
	for _, s := range names {
		symSet[expr.Var(s)] = true
	}
	var cons []expr.Formula
	for _, c := range w.spec.Constraints {
		free := map[expr.Var]bool{}
		c.FreeVars(free)
		all := true
		for v := range free {
			if !symSet[v] {
				all = false
			}
		}
		if all {
			cons = append(cons, c)
		}
	}
	for attempt := 0; attempt < 4096; attempt++ {
		env := make(map[expr.Var]int64, len(names))
		for _, s := range names {
			v := int64(w.rng.Intn(9)) // 0..8: small arrays, fast runs
			env[expr.Var(s)] = v
		}
		ok := true
		for _, c := range cons {
			if !c.Eval(env, nil) {
				ok = false
				break
			}
		}
		if ok {
			for _, s := range names {
				w.Syms[s] = env[expr.Var(s)]
			}
			return nil
		}
	}
	return fmt.Errorf("no symbol assignment satisfies the constraints")
}

// typePerm unions the rights every type-category rule grants t in region.
func (w *World) typePerm(region string, t *types.Type) typestate.Perm {
	return w.spec.PermsFor(region, t)
}

// fieldPerm unions field-category rules for struct.field with the
// type-category rules for the field's type.
func (w *World) fieldPerm(region, structName, field string, ft *types.Type) typestate.Perm {
	var p typestate.Perm
	for _, rule := range w.spec.Rules {
		if rule.Region == region && rule.CatStruct == structName && rule.CatField == field {
			p |= rule.Perm
		}
	}
	return p | w.typePerm(region, ft)
}

// allocateEntities lays out every entity the invocation can reach and
// returns the concrete value of each "val" entity.
func (w *World) allocateEntities() (map[string]uint32, error) {
	cursor := uint32(dataBase)
	alloc := func(size int, align uint32) uint32 {
		if align == 0 {
			align = 8
		}
		cursor = (cursor + align - 1) &^ (align - 1)
		base := cursor
		cursor += uint32(size) + regionGap
		return base
	}

	// locInstances[loc] holds the base addresses of the concrete
	// instances standing for an abstract (possibly summary) location.
	locInstances := make(map[string][]uint32)
	valAddr := make(map[string]uint32)
	// arrayElem marks locs materialized as the elements of an array
	// region in the first pass; the second pass must not re-allocate them
	// as standalone scalars.
	arrayElem := make(map[string]bool)

	// First pass: allocate instances for every abstract location that
	// is the referent of some pointer- or array-typed val.
	for _, e := range w.spec.Entities {
		if !e.IsVal || e.State.Kind != typestate.StatePointsTo {
			continue
		}
		for _, ref := range e.State.Set {
			locEnt := w.spec.Entity(ref.Loc)
			if locEnt == nil || len(locInstances[ref.Loc]) > 0 {
				continue
			}
			count := 1
			if locEnt.Summary {
				count = 2 + w.rng.Intn(3)
			}
			elem := w.instanceType(e, locEnt)
			if elem == nil {
				continue
			}
			if e.Type != nil && (e.Type.Kind == types.ArrayBase || e.Type.Kind == types.ArrayIn) {
				// The val is the array pointer; the loc is the element
				// summary. One region holds the whole array.
				n := w.boundValue(e.Type.N)
				base := alloc(int(n)*elem.Size(), uint32(elem.Align()))
				w.Regions = append(w.Regions, Region{
					Name: e.Name, Lo: base, Hi: base + uint32(int64(elem.Size())*n),
					Read:  w.arrayPerm(e, elem).Has(typestate.PermR),
					Write: w.arrayPerm(e, elem).Has(typestate.PermW),
				})
				for i := int64(0); i < n; i++ {
					w.initScalar(base+uint32(i*int64(elem.Size())), elem, locEnt.State)
				}
				locInstances[ref.Loc] = []uint32{base}
				arrayElem[ref.Loc] = true
				valAddr[e.Name] = base
				continue
			}
			// Pointer to scalar or struct: allocate count instances.
			var bases []uint32
			for i := 0; i < count; i++ {
				bases = append(bases, alloc(elem.Size(), uint32(elem.Align())))
			}
			locInstances[ref.Loc] = bases
		}
	}

	// Second pass: fill struct instances (now that every referent loc
	// has addresses, pointer fields can be wired) and build their
	// per-field permission tables.
	for _, e := range w.spec.Entities {
		if e.IsVal {
			continue
		}
		bases := locInstances[e.Name]
		if len(bases) == 0 || e.Type == nil || arrayElem[e.Name] {
			continue
		}
		if e.Type.Kind == types.Struct {
			for i, base := range bases {
				w.fillStruct(e, base, i, locInstances)
			}
		} else if e.Type.Kind == types.Ground {
			// Scalar instances reached through a non-array pointer val.
			for _, base := range bases {
				w.initScalar(base, e.Type, e.State)
				p := w.typePerm(e.Region, e.Type)
				w.Regions = append(w.Regions, Region{
					Name: e.Name, Lo: base, Hi: base + uint32(e.Type.Size()),
					Read: p.Has(typestate.PermR), Write: p.Has(typestate.PermW),
				})
			}
		}
	}

	// Third pass: resolve pointer vals to one of their referents.
	for _, e := range w.spec.Entities {
		if !e.IsVal || e.State.Kind != typestate.StatePointsTo {
			continue
		}
		if _, done := valAddr[e.Name]; done {
			continue
		}
		var candidates []uint32
		for _, ref := range e.State.Set {
			for _, base := range locInstances[ref.Loc] {
				candidates = append(candidates, base+uint32(ref.Off))
			}
		}
		switch {
		case e.State.MayNull && (len(candidates) == 0 || w.rng.Intn(4) == 0):
			valAddr[e.Name] = 0
		case len(candidates) > 0:
			valAddr[e.Name] = candidates[w.rng.Intn(len(candidates))]
		default:
			return nil, fmt.Errorf("val %s: no concrete referent for %v", e.Name, e.State)
		}
	}
	return valAddr, nil
}

// instanceType resolves the element type concrete instances of locEnt
// should have, preferring the loc's own declared type and falling back
// to the val's pointee/element type.
func (w *World) instanceType(val *policy.Entity, locEnt *policy.Entity) *types.Type {
	if locEnt.Type != nil {
		return locEnt.Type
	}
	if val.Type == nil {
		return nil
	}
	switch val.Type.Kind {
	case types.Ptr, types.ArrayBase, types.ArrayIn:
		return val.Type.Elem
	}
	return nil
}

// arrayPerm unions the rights on the array type and its element type.
func (w *World) arrayPerm(val *policy.Entity, elem *types.Type) typestate.Perm {
	return w.typePerm(val.Region, val.Type) | w.typePerm(val.Region, elem)
}

// boundValue resolves an array bound against the chosen symbol values.
func (w *World) boundValue(b types.Bound) int64 {
	if b.IsConst() {
		return b.Const
	}
	return w.Syms[b.Name]
}

// initScalar writes a fresh scalar value: small and non-negative so that
// content constraints of the form val(...) >= 0 hold by construction;
// uninitialized locations are zero-filled (the oracle does not flag
// uninitialized reads — see package comment).
func (w *World) initScalar(addr uint32, t *types.Type, st typestate.State) {
	v := uint32(w.rng.Intn(17))
	if st.Kind == typestate.StateUninit {
		v = 0
	}
	for i := t.Size() - 1; i >= 0; i-- {
		w.mem[addr+uint32(i)] = byte(v)
		v >>= 8
	}
}

// fillStruct initializes instance idx of a struct location: scalar
// members get fresh values, pointer members are wired to a later
// instance of a referent location (or null) so that every generated heap
// is acyclic, and the per-field rights table is recorded.
func (w *World) fillStruct(e *policy.Entity, base uint32, idx int, locInstances map[string][]uint32) {
	region := Region{Name: fmt.Sprintf("%s#%d", e.Name, idx), Lo: base, Hi: base + uint32(e.Type.Size())}
	for _, m := range e.Type.Members {
		p := w.fieldPerm(e.Region, e.Type.Name, m.Label, m.Type)
		region.Fields = append(region.Fields, FieldPerm{
			Name: m.Label, Off: m.Offset, Size: m.Type.Size(),
			Read: p.Has(typestate.PermR), Write: p.Has(typestate.PermW),
		})
		st, ok := e.FieldStates[m.Label]
		if !ok {
			st = e.State
		}
		if m.Type.Kind == types.Ptr && st.Kind == typestate.StatePointsTo {
			w.writeWord(base+uint32(m.Offset), w.pickReferent(e.Name, idx, st, locInstances))
			continue
		}
		w.initScalar(base+uint32(m.Offset), m.Type, st)
	}
	w.Regions = append(w.Regions, region)
}

// pickReferent chooses a concrete target for a pointer field of instance
// idx. Self-referential fields only point forward (to higher-index
// instances) or to null, so lists and trees always terminate.
func (w *World) pickReferent(owner string, idx int, st typestate.State, locInstances map[string][]uint32) uint32 {
	var candidates []uint32
	for _, ref := range st.Set {
		for i, base := range locInstances[ref.Loc] {
			if ref.Loc == owner && i <= idx {
				continue
			}
			candidates = append(candidates, base+uint32(ref.Off))
		}
	}
	if st.MayNull && (len(candidates) == 0 || w.rng.Intn(3) == 0) {
		return 0
	}
	if len(candidates) == 0 {
		return 0
	}
	return candidates[w.rng.Intn(len(candidates))]
}

// writeWord stores a big-endian 32-bit word into the world image.
func (w *World) writeWord(addr, v uint32) {
	w.mem[addr] = byte(v >> 24)
	w.mem[addr+1] = byte(v >> 16)
	w.mem[addr+2] = byte(v >> 8)
	w.mem[addr+3] = byte(v)
}

// Classify maps one memory access to a trap, or nil when the access is
// legal under the world's rights map. It under-approximates traps: an
// access is flagged only when it is misaligned, outside every allocated
// region, or denied by the policy's access rights, so a flagged access
// on a checker-approved program is always a genuine counterexample.
func (w *World) Classify(addr uint32, size int, write bool) *Trap {
	if size > 1 && addr%uint32(size) != 0 {
		return &Trap{Kind: "misalign", Addr: addr, Size: size, Write: write}
	}
	end := uint64(addr) + uint64(size)
	for ri := range w.Regions {
		r := &w.Regions[ri]
		if uint64(addr) < uint64(r.Lo) || end > uint64(r.Hi) {
			continue
		}
		if len(r.Fields) == 0 {
			if write && !r.Write || !write && !r.Read {
				return &Trap{Kind: "perm", Addr: addr, Size: size, Write: write}
			}
			return nil
		}
		off := int(addr - r.Lo)
		for _, f := range r.Fields {
			if off >= f.Off && off+size <= f.Off+f.Size {
				if write && !f.Write || !write && !f.Read {
					return &Trap{Kind: "perm", Addr: addr, Size: size, Write: write}
				}
				return nil
			}
		}
		return &Trap{Kind: "perm", Addr: addr, Size: size, Write: write}
	}
	return &Trap{Kind: "oob", Addr: addr, Size: size, Write: write}
}

// Exec runs prog in this world. It returns the first trap observed, or
// nil with a reason string when the run was trap-free ("exit") or
// inconclusive ("steps", or an interpreter fault outside the oracle's
// trap set, e.g. division by zero on a mutant).
func (w *World) Exec(prog *sparc.Program, maxSteps int) (*Trap, string) {
	m := sparc.NewMachine(prog)
	for addr, b := range w.mem {
		m.Mem[addr] = b
	}
	for reg, v := range w.Regs {
		m.SetReg(reg, v)
	}
	var trap *Trap
	m.OnMem = func(addr uint32, size int, write bool) {
		if trap == nil {
			if t := w.Classify(addr, size, write); t != nil {
				t.PC = m.PC()
				trap = t
			}
		}
	}
	m.HostCall = func(name string, mm *sparc.Machine) { w.hostCall(name, mm) }
	for n := 0; n < maxSteps; n++ {
		if err := m.Step(); err != nil {
			if trap != nil {
				return trap, ""
			}
			if err == sparc.ErrExit {
				return nil, "exit"
			}
			return nil, err.Error()
		}
		if trap != nil {
			return trap, ""
		}
	}
	return nil, "steps"
}

// hostCall simulates a trusted host function: it picks a return value
// satisfying the function's postcondition. Any concrete behaviour
// consistent with the spec is a legal host, so the specific choice only
// affects coverage, not soundness.
func (w *World) hostCall(name string, m *sparc.Machine) {
	tf := w.spec.Trusted[name]
	if tf == nil || tf.Ret == nil {
		return // void (or unknown) host function: registers untouched
	}
	o0 := sparc.Arch.Regs().Var(rtl.Reg(sparc.O0), 0)
	for attempt := 0; attempt < 64; attempt++ {
		v := int64(w.rng.Intn(17))
		if tf.Post == nil || tf.Post.Eval(map[expr.Var]int64{o0: v}, nil) {
			m.SetReg(sparc.O0, uint32(v))
			return
		}
	}
	m.SetReg(sparc.O0, 1) // safe default for >=/!= style postconditions
}
