// Package difftest is the differential-and-fuzz correctness harness of
// the safety checker. It confronts the three executable subsystems the
// checker is built from with one another:
//
//   - the binary encoder/decoder (internal/sparc): decode must be total
//     (never panic on an arbitrary 32-bit word) and must round-trip with
//     encode on every canonical instruction and on every word of the
//     thirteen evaluation programs;
//
//   - the linear-constraint prover (internal/solver): on randomly
//     generated systems whose variables are explicitly box-bounded,
//     integer satisfiability is decidable by exhaustive enumeration, so
//     every "certainly unsat" or "certainly valid" verdict the prover
//     emits can be checked against a brute-force evaluator. The prover
//     is allowed to be incomplete (answering "not proved"), but a
//     verdict contradicted by an enumerated witness is a soundness bug;
//
//   - the checker against the concrete interpreter (the soundness
//     oracle): the evaluation programs are mutated instruction by
//     instruction, every mutant the checker still calls SAFE is executed
//     on randomly generated host environments derived from its policy
//     specification, and any run that traps (out-of-bounds access,
//     misalignment, access-permission violation) is a counterexample to
//     the paper's central soundness claim.
//
// All generators are driven by seeded PRNGs so every reported failure
// replays from its seed. The same checks back three native Go fuzz
// targets (FuzzDecode, FuzzAsmRoundTrip, FuzzSolver) and the local
// campaign driver cmd/mcfuzz.
package difftest
