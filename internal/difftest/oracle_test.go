package difftest

import (
	"math/rand"
	"testing"

	"mcsafe/internal/policy"
	"mcsafe/internal/progs"
	"mcsafe/internal/sparc"
)

// TestDiffOracleDetects proves the dynamic classifier is not vacuously
// permissive: three hand-written violations of the Sum policy — an
// out-of-bounds read, a store to a read-only region, and a misaligned
// word load — must each produce the expected trap kind. Without this
// test, a classifier that never fires would pass every soundness sweep.
func TestDiffOracleDetects(t *testing.T) {
	spec, err := policy.Parse(progs.Sum().Spec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		src  string
		kind string
	}{
		{"oob-read", `
  sll %o1,2,%g2
  ld [%o0+%g2],%g1   ! arr[n]: one past the end
  retl
  nop
`, "oob"},
		{"readonly-write", `
  st %g0,[%o0]       ! policy grants V int ro only
  retl
  nop
`, "perm"},
		{"misaligned-load", `
  ld [%o0+2],%g1     ! word load at alignment 2
  retl
  nop
`, "misalign"},
	}
	for _, tc := range cases {
		prog, err := sparc.Assemble(tc.src, sparc.AsmOptions{
			DataSyms: spec.DataSyms(),
			Externs:  spec.TrustedNames(),
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rng := rand.New(rand.NewSource(5))
		world, err := BuildWorld(spec, rng)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		trap, reason := world.Exec(prog, 1000)
		if trap == nil {
			t.Errorf("%s: no trap (run ended: %s)", tc.name, reason)
			continue
		}
		if trap.Kind != tc.kind {
			t.Errorf("%s: trap kind %q, want %q (%s)", tc.name, trap.Kind, tc.kind, trap)
		}
	}
}
