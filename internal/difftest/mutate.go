package difftest

import (
	"fmt"
	"math/rand"

	"mcsafe/internal/sparc"
)

// A Mutant is one single-word perturbation of a program.
type Mutant struct {
	Index int    // instruction index of the mutated word
	Word  uint32 // replacement word
	Desc  string // human-readable description of the tweak
}

// Apply returns a copy of p with the mutant's instruction replaced. The
// symbol table, procedure map, and entry point are shared: a single-word
// mutant leaves program structure intact, which is exactly what both the
// checker and the interpreter's external-call resolution assume.
func (m Mutant) Apply(p *sparc.Program) (*sparc.Program, error) {
	insn, err := sparc.Decode(m.Word)
	if err != nil {
		return nil, err
	}
	q := *p
	q.Words = append([]uint32(nil), p.Words...)
	q.Insns = append([]sparc.Insn(nil), p.Insns...)
	insn.Line = p.Insns[m.Index].Line
	q.Words[m.Index] = m.Word
	q.Insns[m.Index] = insn
	return &q, nil
}

// flipBits are the fixed bit positions flipped in every instruction
// word: immediate low bits (offset/alignment), register fields, the
// i-bit, the op3 low bit, a cond bit, and the annul bit.
var flipBits = []uint{0, 1, 2, 5, 13, 14, 19, 25, 29}

// Mutants derives up to max single-instruction mutants of p,
// deterministically from r. Two families are generated: raw bit flips,
// and field-level tweaks (immediate nudges, opcode swaps within a
// format, branch-displacement and condition changes, register bumps)
// applied to the decoded instruction and re-encoded. Mutants that no
// longer decode are dropped here — an undecodable word never reaches
// the checker or the interpreter, both of which consume decoded
// programs.
func Mutants(p *sparc.Program, r *rand.Rand, max int) []Mutant {
	var out []Mutant
	seen := make(map[[2]uint32]bool)
	add := func(idx int, w uint32, desc string) {
		if w == p.Words[idx] || seen[[2]uint32{uint32(idx), w}] {
			return
		}
		if _, err := sparc.Decode(w); err != nil {
			return
		}
		seen[[2]uint32{uint32(idx), w}] = true
		out = append(out, Mutant{Index: idx, Word: w, Desc: desc})
	}
	addInsn := func(idx int, i sparc.Insn, desc string) {
		if w, err := sparc.Encode(i); err == nil {
			add(idx, w, desc)
		}
	}

	for idx, word := range p.Words {
		for _, b := range flipBits {
			add(idx, word^(1<<b), fmt.Sprintf("flip bit %d", b))
		}
		d, err := sparc.Decode(word)
		if err != nil {
			continue
		}
		switch {
		case d.Op == sparc.OpCall:
			for _, dd := range []int32{-1, 1, 2} {
				m := d
				m.Disp += dd
				addInsn(idx, m, fmt.Sprintf("call disp %+d", dd))
			}
		case d.Op == sparc.OpBranch:
			for _, dd := range []int32{-1, 1, 2} {
				m := d
				m.Disp += dd
				addInsn(idx, m, fmt.Sprintf("branch disp %+d", dd))
			}
			inv := d
			inv.Cond = d.Cond ^ 8 // SPARC: cond^8 is the logical inverse
			addInsn(idx, inv, "invert cond")
			always := d
			always.Cond = sparc.CondA
			addInsn(idx, always, "cond -> always")
			ann := d
			ann.Annul = !d.Annul
			addInsn(idx, ann, "toggle annul")
		case d.Op == sparc.OpSethi:
			m := d
			m.SImm ^= 1 << 10
			addInsn(idx, m, "sethi imm bit 10")
		case d.IsLoad() || d.IsStore():
			if d.Imm {
				for _, dd := range []int32{-4, -1, 1, 4} {
					m := d
					m.SImm += dd
					addInsn(idx, m, fmt.Sprintf("mem offset %+d", dd))
				}
			}
			for _, op := range memSwaps(d.Op) {
				m := d
				m.Op = op
				addInsn(idx, m, fmt.Sprintf("op %d -> %d", d.Op, op))
			}
			m := d
			m.Rs1 = (d.Rs1 + 1) % 32
			addInsn(idx, m, "bump rs1")
		default: // format-3 arithmetic
			if d.Imm {
				for _, dd := range []int32{-4, -1, 1, 4} {
					m := d
					m.SImm += dd
					addInsn(idx, m, fmt.Sprintf("imm %+d", dd))
				}
				z := d
				z.SImm = 0
				addInsn(idx, z, "imm -> 0")
			}
			for _, op := range arithSwaps(d.Op) {
				m := d
				m.Op = op
				addInsn(idx, m, fmt.Sprintf("op %d -> %d", d.Op, op))
			}
			m := d
			m.Rd = (d.Rd + 1) % 32
			addInsn(idx, m, "bump rd")
		}
	}

	// Deterministic subsample: shuffle, truncate.
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// memSwaps returns same-direction memory ops of a different size, the
// mutations most likely to break alignment or bounds reasoning.
func memSwaps(op sparc.Op) []sparc.Op {
	switch op {
	case sparc.OpLd:
		return []sparc.Op{sparc.OpLdub, sparc.OpLduh}
	case sparc.OpLdub, sparc.OpLdsb:
		return []sparc.Op{sparc.OpLd, sparc.OpLduh}
	case sparc.OpLduh, sparc.OpLdsh:
		return []sparc.Op{sparc.OpLd, sparc.OpLdub}
	case sparc.OpSt:
		return []sparc.Op{sparc.OpStb, sparc.OpSth}
	case sparc.OpStb:
		return []sparc.Op{sparc.OpSt, sparc.OpSth}
	case sparc.OpSth:
		return []sparc.Op{sparc.OpSt, sparc.OpStb}
	}
	return nil
}

// arithSwaps returns plausible same-format opcode substitutions.
func arithSwaps(op sparc.Op) []sparc.Op {
	switch op {
	case sparc.OpAdd:
		return []sparc.Op{sparc.OpSub}
	case sparc.OpSub:
		return []sparc.Op{sparc.OpAdd}
	case sparc.OpAddcc:
		return []sparc.Op{sparc.OpSubcc}
	case sparc.OpSubcc:
		return []sparc.Op{sparc.OpAddcc}
	case sparc.OpSll:
		return []sparc.Op{sparc.OpSrl, sparc.OpSra}
	case sparc.OpSrl:
		return []sparc.Op{sparc.OpSll, sparc.OpSra}
	case sparc.OpSra:
		return []sparc.Op{sparc.OpSll, sparc.OpSrl}
	case sparc.OpAnd:
		return []sparc.Op{sparc.OpOr, sparc.OpXor}
	case sparc.OpOr:
		return []sparc.Op{sparc.OpAnd}
	case sparc.OpXor:
		return []sparc.Op{sparc.OpAnd, sparc.OpOr}
	}
	return nil
}
