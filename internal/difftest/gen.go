package difftest

import (
	"math/rand"

	"mcsafe/internal/expr"
)

// SolverSystem is one generated differential test case for the prover: a
// quantifier-free conjunction of linear atoms over a few variables, each
// variable explicitly bounded to the box [-Dom, Dom]. Because the box
// bounds are part of the system, satisfiability over the integers equals
// satisfiability over the box, which the brute-force evaluator decides
// exactly.
type SolverSystem struct {
	Vars []expr.Var
	Dom  int64
	// Core is the generated conjunction without the box bounds.
	Core expr.Clause
	// Clause is Core plus the bounds -Dom <= v <= Dom for every
	// variable; this is what both the prover and the evaluator see.
	Clause expr.Clause
}

// sysVars is the variable pool for generated systems.
var sysVars = []expr.Var{"x", "y", "z"}

// defaultDom is the box half-width. Small enough that a three-variable
// system enumerates in ~2k evaluations, large enough to exercise
// dark-shadow gaps (which need coefficients > 1 and room between bounds).
const defaultDom = 6

// moduli are the divisibility constants the checker emits (alignment is
// always a power of two; 3 exercises the general residue path).
var moduli = []int64{2, 3, 4, 8}

// genAtom produces one random atom over the first nvars pool variables.
// Coefficients are small so that dark-shadow and gcd corner cases are
// reachable within the box.
func genAtom(r *rand.Rand, nvars int) expr.Atom {
	e := expr.Constant(int64(r.Intn(17) - 8))
	for i := 0; i < nvars; i++ {
		if r.Intn(2) == 0 {
			continue
		}
		e = e.Add(expr.Term(int64(r.Intn(9)-4), sysVars[i]))
	}
	switch r.Intn(6) {
	case 0:
		return expr.Atom{Kind: expr.EQ, E: e}
	case 1:
		return expr.Atom{Kind: expr.DIV, M: moduli[r.Intn(len(moduli))], E: e}
	default:
		return expr.Atom{Kind: expr.GE, E: e}
	}
}

// boxBounds returns the clause -dom <= v <= dom for each variable.
func boxBounds(vars []expr.Var, dom int64) expr.Clause {
	var c expr.Clause
	for _, v := range vars {
		// v + dom >= 0 and dom - v >= 0.
		c = append(c,
			expr.Atom{Kind: expr.GE, E: expr.V(v).AddConst(dom)},
			expr.Atom{Kind: expr.GE, E: expr.V(v).Scale(-1).AddConst(dom)},
		)
	}
	return c
}

// GenSystem draws one random box-bounded system.
func GenSystem(r *rand.Rand) SolverSystem {
	nvars := 1 + r.Intn(len(sysVars))
	natoms := 1 + r.Intn(5)
	s := SolverSystem{Vars: sysVars[:nvars], Dom: defaultDom}
	for i := 0; i < natoms; i++ {
		s.Core = append(s.Core, genAtom(r, nvars))
	}
	s.Clause = append(append(expr.Clause{}, s.Core...), boxBounds(s.Vars, s.Dom)...)
	return s
}

// GenImplication draws a random implication hyp -> goal between two
// box-bounded systems over the same variables, the shape of every proof
// obligation the verification-condition generator emits.
func GenImplication(r *rand.Rand) (hyp, goal expr.Formula, vars []expr.Var, dom int64) {
	nvars := 1 + r.Intn(len(sysVars))
	vars, dom = sysVars[:nvars], defaultDom
	var h expr.Clause
	h = append(h, boxBounds(vars, dom)...)
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		h = append(h, genAtom(r, nvars))
	}
	var g expr.Clause
	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		g = append(g, genAtom(r, nvars))
	}
	return expr.ClauseFormula(h), expr.ClauseFormula(g), vars, dom
}

// GenQuantified draws a random formula in which every quantifier is a
// universal in positive position over a box-bounded implication — the
// shape PruneQuant rewrites during wlp generation. Because there are no
// existentials in positive position (and none at all), falsity of the
// formula under box-restricted quantifier evaluation implies falsity
// over the integers, so a brute-force counterexample refutes any
// validity claim soundly.
func GenQuantified(r *rand.Rand) (f expr.Formula, vars []expr.Var, dom int64) {
	nvars := 1 + r.Intn(len(sysVars))
	vars, dom = sysVars[:nvars], defaultDom
	qv := vars[r.Intn(nvars)]

	var hyp expr.Clause
	hyp = append(hyp, boxBounds(vars, dom)...)
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		hyp = append(hyp, genAtom(r, nvars))
	}
	var goal expr.Clause
	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		goal = append(goal, genAtom(r, nvars))
	}
	body := expr.Implies(expr.ClauseFormula(hyp), expr.ClauseFormula(goal))
	f = expr.Forall{V: qv, F: body}
	if nvars > 1 && r.Intn(2) == 0 {
		// A second nesting level, like the havoc of a two-register loop.
		f = expr.Forall{V: vars[(int(qv[0])+1)%nvars], F: f}
	}
	return f, vars, dom
}

// SystemFromBytes derives a bounded system deterministically from fuzz
// input. The byte string is consumed as a little instruction stream; any
// input yields a valid (possibly empty) system, so the fuzzer explores
// the full space without a rejection loop.
func SystemFromBytes(data []byte) SolverSystem {
	nvars := 1
	if len(data) > 0 {
		nvars = 1 + int(data[0])%len(sysVars)
		data = data[1:]
	}
	s := SolverSystem{Vars: sysVars[:nvars], Dom: defaultDom}
	// Each atom consumes 2 + nvars bytes: kind, constant, coefficients.
	for len(data) >= 2+nvars && len(s.Core) < 6 {
		kind, cst := data[0], data[1]
		e := expr.Constant(int64(int8(cst)) % 9)
		for i := 0; i < nvars; i++ {
			e = e.Add(expr.Term(int64(int8(data[2+i]))%5, sysVars[i]))
		}
		var a expr.Atom
		switch kind % 6 {
		case 0:
			a = expr.Atom{Kind: expr.EQ, E: e}
		case 1:
			a = expr.Atom{Kind: expr.DIV, M: moduli[int(kind/6)%len(moduli)], E: e}
		default:
			a = expr.Atom{Kind: expr.GE, E: e}
		}
		s.Core = append(s.Core, a)
		data = data[2+nvars:]
	}
	s.Clause = append(append(expr.Clause{}, s.Core...), boxBounds(s.Vars, s.Dom)...)
	return s
}
