package difftest

import (
	"math/rand"
	"testing"

	"mcsafe/internal/expr"
	"mcsafe/internal/solver"
)

// TestDiffSolverSystems cross-checks the prover against exhaustive
// enumeration on randomly generated box-bounded systems. Any definite
// verdict (valid / unsat) contradicted by an enumerated witness is a
// soundness bug. The tally assertions make sure the corpus actually
// exercises both definite verdicts, so a prover regression that answers
// "unknown" everywhere cannot silently pass.
func TestDiffSolverSystems(t *testing.T) {
	const n = 1500
	r := rand.New(rand.NewSource(42))
	p := solver.New()
	var unsat, valid int
	for i := 0; i < n; i++ {
		s := GenSystem(r)
		if err := CheckSystem(p, s); err != nil {
			t.Fatalf("system %d (seed 42): %v", i, err)
		}
		if p.Unsat(expr.ClauseFormula(s.Clause)) {
			unsat++
		}
		if p.Valid(expr.ClauseFormula(s.Core)) {
			valid++
		}
	}
	t.Logf("%d systems: %d proved unsat, %d proved valid", n, unsat, valid)
	if unsat == 0 {
		t.Errorf("corpus never produced a proved-unsat system; generator or prover degenerated")
	}
	if valid == 0 {
		t.Errorf("corpus never produced a proved-valid system; generator or prover degenerated")
	}
}

// TestDiffSolverImplications cross-checks implication proofs, the exact
// shape of the verification conditions Phase 5 discharges. The hypothesis
// carries the box bounds, so enumeration is a complete refuter of any
// "valid" claim.
func TestDiffSolverImplications(t *testing.T) {
	const n = 800
	r := rand.New(rand.NewSource(43))
	p := solver.New()
	var proved int
	for i := 0; i < n; i++ {
		hyp, goal, vars, dom := GenImplication(r)
		ok, err := CheckImplication(p, hyp, goal, vars, dom)
		if err != nil {
			t.Fatalf("implication %d (seed 43): %v", i, err)
		}
		if ok {
			proved++
		}
	}
	t.Logf("%d implications: %d proved", n, proved)
	if proved == 0 {
		t.Errorf("no implication was ever proved; generator or prover degenerated")
	}
}

// TestDiffSolverQuantified cross-checks universally quantified formulas
// and their PruneQuant rewrites (the havoc shapes of loop invariants).
// A validity claim on either the original or the pruned formula that a
// box counterexample refutes is a soundness bug — for the pruned
// formula because PruneQuant guarantees result-implies-input.
func TestDiffSolverQuantified(t *testing.T) {
	const n = 400
	r := rand.New(rand.NewSource(44))
	p := solver.New()
	var provedOrig, provedPruned int
	for i := 0; i < n; i++ {
		f, vars, dom := GenQuantified(r)
		vo, vp, err := CheckQuantified(p, f, vars, dom)
		if err != nil {
			t.Fatalf("quantified %d (seed 44): %v", i, err)
		}
		if vo {
			provedOrig++
		}
		if vp {
			provedPruned++
		}
	}
	t.Logf("%d quantified formulas: %d proved directly, %d proved after pruning", n, provedOrig, provedPruned)
	if provedPruned == 0 {
		t.Errorf("pruning never enabled a proof; PruneQuant or generator degenerated")
	}
}

// TestDiffSolverKnownSystems pins a few hand-picked systems whose
// verdicts are known: the dark-shadow gap (2x = 2y+1 style parity
// splits), tight divisibility, and an infeasible chain of inequalities.
func TestDiffSolverKnownSystems(t *testing.T) {
	p := solver.New()
	x, y := expr.Var("x"), expr.Var("y")
	ge := func(e expr.LinExpr) expr.Atom { return expr.Atom{Kind: expr.GE, E: e} }
	eq := func(e expr.LinExpr) expr.Atom { return expr.Atom{Kind: expr.EQ, E: e} }
	div := func(m int64, e expr.LinExpr) expr.Atom { return expr.Atom{Kind: expr.DIV, M: m, E: e} }

	cases := []struct {
		name string
		core expr.Clause
	}{
		{"parity-gap", expr.Clause{eq(expr.Term(2, x).Sub(expr.Term(2, y)).AddConst(-1))}},
		{"div-chain", expr.Clause{div(2, expr.V(x)), div(3, expr.V(x)), ge(expr.V(x).AddConst(-1))}},
		{"ineq-box", expr.Clause{ge(expr.V(x).AddConst(-5)), ge(expr.V(x).Scale(-1).AddConst(5))}},
		{"infeasible", expr.Clause{ge(expr.V(x).AddConst(-4)), ge(expr.V(x).Scale(-1).AddConst(-5))}},
		{"coupled", expr.Clause{ge(expr.Term(3, x).Sub(expr.V(y))), ge(expr.V(y).Sub(expr.Term(2, x)).AddConst(-1))}},
	}
	for _, tc := range cases {
		s := SolverSystem{Vars: []expr.Var{x, y}, Dom: defaultDom, Core: tc.core}
		s.Clause = append(append(expr.Clause{}, s.Core...), boxBounds(s.Vars, s.Dom)...)
		if err := CheckSystem(p, s); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}
