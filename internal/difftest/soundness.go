package difftest

import (
	"fmt"
	"math/rand"
	"time"

	"mcsafe/internal/core"
	"mcsafe/internal/progs"
	"mcsafe/internal/sparc"
)

// OracleConfig parameterizes one soundness-oracle sweep.
type OracleConfig struct {
	Seed     int64
	Programs []string // benchmark names; nil selects FastPrograms
	Mutants  int      // mutants per program (after dedup/subsample)
	Worlds   int      // concrete environments per checker-safe program
	MaxSteps int      // interpreter step budget per run
	// InputTimeout is the per-mutant watchdog (0 = none). Each static
	// check runs under a Budget deadline of this length, so a
	// pathological mutant degrades gracefully to a resource-coded
	// rejection; a hard backstop of twice this length catches a checker
	// that ignores its deadline entirely and charges OracleStats.Hangs.
	InputTimeout time.Duration
}

// FastPrograms are the benchmarks that check in well under 100ms each,
// the default sweep for the ordinary test tier. The remaining programs
// (Btree, HeapSort, MD5, ...) take seconds to minutes per mutant and run
// in the nightly full sweep (MCSAFE_DIFF=full).
var FastPrograms = []string{
	"Sum", "PagingPolicy", "StartTimer", "Hash", "StopTimer", "jPVM", "BubbleSort",
}

// DefaultOracleConfig returns the configuration the TestDiffSoundness
// tier uses.
func DefaultOracleConfig() OracleConfig {
	return OracleConfig{Seed: 1, Mutants: 40, Worlds: 3, MaxSteps: 200000}
}

// A Finding is one soundness counterexample: a mutant the checker
// approved that trapped under the concrete-execution oracle.
type Finding struct {
	Program string
	Mutant  Mutant
	World   int
	Trap    *Trap
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: insn %d <- 0x%08x (%s), world %d: %s [%s]",
		f.Program, f.Mutant.Index, f.Mutant.Word, f.Mutant.Desc, f.World,
		f.Trap, TrapCode(f.Trap.Kind))
}

// OracleStats summarizes one sweep.
type OracleStats struct {
	Programs      int
	Mutants       int
	Rejected      int // checker said unsafe (or failed) on the mutant
	Approved      int // checker said safe; executed in concrete worlds
	Executions    int
	Inconclusive  int // runs ending in a non-trap interpreter fault
	CheckerPanics int // core.Check panicked on a decodable mutant
	Hangs         int // checks that blew past the hard watchdog backstop
	BaselineRuns  int // executions of the unmutated WantSafe programs
	// RejectedByCode tallies rejections by the stable violation code
	// (annotate.Code* values) of the violations the checker reported, so
	// a sweep shows WHY mutants were rejected, not just how many.
	// Rejections without violations (build/check errors, panics) are
	// charged to "error".
	RejectedByCode map[string]int
}

// TrapCode maps an oracle trap kind to the checker's stable violation
// code vocabulary, letting soundness reports compare the dynamic trap
// against the static verdict class on equal terms.
func TrapCode(kind string) string {
	switch kind {
	case "oob":
		return "oob"
	case "misalign":
		return "align"
	case "perm":
		return "policy"
	default:
		return kind
	}
}

// checkSafe runs the static checker on a mutant, converting panics and
// errors into rejection. A panic is additionally counted: the checker
// should reject malformed programs gracefully, and the count lets the
// test surface robustness regressions without failing soundness. When
// the checker rejects, codes carries the stable violation codes it
// charged ("error" for rejections without a violation list).
func checkSafe(run func() (*core.Result, error)) (safe bool, panicked bool, codes []string) {
	defer func() {
		if r := recover(); r != nil {
			safe, panicked, codes = false, true, []string{"error"}
		}
	}()
	res, err := run()
	if err != nil || res == nil {
		return false, false, []string{"error"}
	}
	if res.Safe {
		return true, false, nil
	}
	seen := map[string]bool{}
	for _, v := range res.Violations {
		code := v.Code
		if code == "" {
			code = "error"
		}
		if !seen[code] {
			seen[code] = true
			codes = append(codes, code)
		}
	}
	if len(codes) == 0 {
		codes = []string{"error"}
	}
	return false, false, codes
}

// checkSafeTimed is checkSafe under the per-input watchdog. The Budget
// deadline inside run is the graceful, in-band bound; the backstop here
// (twice the timeout) exists only for a checker that ignores its
// deadline — a genuine hang. A hung check is charged as a rejection and
// its goroutine is abandoned (it cannot be killed), which the hang
// count surfaces.
func checkSafeTimed(timeout time.Duration, run func() (*core.Result, error)) (safe, panicked, hung bool, codes []string) {
	if timeout <= 0 {
		safe, panicked, codes = checkSafe(run)
		return safe, panicked, false, codes
	}
	type outcome struct {
		safe, panicked bool
		codes          []string
	}
	ch := make(chan outcome, 1)
	go func() {
		s, p, c := checkSafe(run)
		ch <- outcome{s, p, c}
	}()
	select {
	case o := <-ch:
		return o.safe, o.panicked, false, o.codes
	case <-time.After(2 * timeout):
		return false, false, true, []string{"error"}
	}
}

// RunSoundness executes one sweep: for every selected benchmark it
// first replays the unmutated program in Worlds concrete environments
// (the checker-approved originals must never trap — this validates the
// oracle itself), then derives Mutants single-word mutants, checks each,
// and concretely executes every checker-approved mutant. Any trap on an
// approved program is returned as a Finding.
func RunSoundness(cfg OracleConfig) ([]Finding, OracleStats, error) {
	names := cfg.Programs
	if names == nil {
		names = FastPrograms
	}
	var findings []Finding
	var stats OracleStats
	stats.RejectedByCode = map[string]int{}

	for _, name := range names {
		b := progs.Get(name)
		if b == nil {
			return nil, stats, fmt.Errorf("unknown benchmark %q", name)
		}
		prog, spec, err := b.BuildNative()
		if err != nil {
			return nil, stats, err
		}
		stats.Programs++
		rng := rand.New(rand.NewSource(cfg.Seed + int64(len(name))*1000003 + int64(len(prog.Words))))

		// Oracle self-check: the original of a WantSafe program must be
		// trap-free in every world the spec admits.
		if b.WantSafe {
			for wi := 0; wi < cfg.Worlds; wi++ {
				world, err := BuildWorld(spec, rng)
				if err != nil {
					return nil, stats, fmt.Errorf("%s: building world: %v", name, err)
				}
				stats.BaselineRuns++
				if trap, _ := world.Exec(prog, cfg.MaxSteps); trap != nil {
					return nil, stats, fmt.Errorf("%s: UNMUTATED program trapped (oracle or checker bug): %s", name, trap)
				}
			}
		}

		for _, m := range Mutants(prog, rng, cfg.Mutants) {
			stats.Mutants++
			mp, err := m.Apply(prog)
			if err != nil {
				continue
			}
			safe, panicked, hung, codes := checkSafeTimed(cfg.InputTimeout, func() (*core.Result, error) {
				return core.Check(sparc.ToISA(mp), spec, core.Options{
					Budget: core.Budget{Deadline: cfg.InputTimeout},
				})
			})
			if panicked {
				stats.CheckerPanics++
			}
			if hung {
				stats.Hangs++
			}
			if !safe {
				stats.Rejected++
				for _, code := range codes {
					stats.RejectedByCode[code]++
				}
				continue
			}
			stats.Approved++
			// The checker calls the mutant safe: execution in any
			// spec-conforming world must not trap.
			for wi := 0; wi < cfg.Worlds; wi++ {
				world, err := BuildWorld(spec, rng)
				if err != nil {
					return nil, stats, fmt.Errorf("%s: building world: %v", name, err)
				}
				stats.Executions++
				trap, reason := world.Exec(mp, cfg.MaxSteps)
				if trap != nil {
					findings = append(findings, Finding{Program: name, Mutant: m, World: wi, Trap: trap})
					break
				}
				if reason != "exit" && reason != "steps" {
					stats.Inconclusive++
				}
			}
		}
	}
	return findings, stats, nil
}
