package difftest

import (
	"math/rand"
	"os"
	"testing"

	"mcsafe/internal/progs"
)

// TestDiffInterpBaseline builds concrete worlds for every benchmark's
// policy and executes the unmutated program in them. Checker-approved
// programs (WantSafe) must never trap: a trap here means either the
// checker or the oracle's trap classifier is wrong. The two known-unsafe
// programs are executed too — their behaviour is logged, not asserted,
// since whether the latent violation fires depends on the drawn world.
func TestDiffInterpBaseline(t *testing.T) {
	for _, b := range progs.All() {
		prog, spec, err := b.BuildNative()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		rng := rand.New(rand.NewSource(99))
		for wi := 0; wi < 4; wi++ {
			world, err := BuildWorld(spec, rng)
			if err != nil {
				t.Fatalf("%s: building world %d: %v", b.Name, wi, err)
			}
			trap, reason := world.Exec(prog, 500000)
			switch {
			case trap != nil && b.WantSafe:
				t.Errorf("%s: checker-approved program trapped in world %d: %s", b.Name, wi, trap)
			case trap != nil:
				t.Logf("%s (known unsafe): oracle observed %s in world %d", b.Name, trap, wi)
			case reason != "exit" && reason != "steps":
				t.Logf("%s: world %d inconclusive: %s", b.Name, wi, reason)
			}
		}
	}
}

// TestDiffSoundness is the end-to-end oracle: mutate the evaluation
// programs one word at a time, statically check every mutant, and
// concretely execute the ones the checker approves. A mutant that the
// checker calls safe but that traps under the conservative dynamic
// classifier is a checker soundness bug. The ordinary tier sweeps the
// fast-checking programs; MCSAFE_DIFF=full extends the sweep to all
// thirteen (minutes of checker time — the nightly CI tier).
func TestDiffSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("soundness sweep runs the full checker per mutant")
	}
	cfg := DefaultOracleConfig()
	if os.Getenv("MCSAFE_DIFF") == "full" {
		for _, b := range progs.All() {
			cfg.Programs = append(cfg.Programs, b.Name)
		}
		cfg.Mutants = 60
	}
	findings, stats, err := RunSoundness(cfg)
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	t.Logf("%d programs, %d mutants: %d rejected, %d approved, %d executions, %d inconclusive, %d checker panics",
		stats.Programs, stats.Mutants, stats.Rejected, stats.Approved,
		stats.Executions, stats.Inconclusive, stats.CheckerPanics)
	t.Logf("rejections by code: %v", stats.RejectedByCode)
	byCode := 0
	for _, n := range stats.RejectedByCode {
		byCode += n
	}
	if byCode < stats.Rejected {
		t.Errorf("rejection code tally %d < rejections %d: some rejection carried no code", byCode, stats.Rejected)
	}
	for _, f := range findings {
		t.Errorf("soundness violation: %s", f)
	}
	if stats.Mutants == 0 || stats.Rejected == 0 {
		t.Errorf("degenerate sweep: %d mutants, %d rejected", stats.Mutants, stats.Rejected)
	}
	if stats.CheckerPanics > 0 {
		t.Errorf("checker panicked on %d decodable mutants; it must reject malformed programs gracefully", stats.CheckerPanics)
	}
}
