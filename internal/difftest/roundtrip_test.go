package difftest

import (
	"math/rand"
	"testing"

	"mcsafe/internal/progs"
)

// TestDiffInsnRoundTrip: decode(encode(i)) == i for random canonical
// instructions across every format and addressing mode.
func TestDiffInsnRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		insn := GenInsn(r)
		if err := CheckInsnRoundTrip(insn); err != nil {
			t.Fatalf("insn %d (seed 7): %v", i, err)
		}
	}
}

// TestDiffWordRoundTrip: the decoder laws on arbitrary 32-bit words —
// no panics, re-encodable, bit-identical modulo don't-care bits,
// decode∘encode idempotent. Random words plus a structured sweep of the
// discriminating fields.
func TestDiffWordRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		w := r.Uint32()
		if err := CheckWordRoundTrip(w); err != nil {
			t.Fatalf("word %d (seed 8): %v", i, err)
		}
	}
	// Structured corners: every op/op2/op3 discriminator value with a
	// few operand patterns.
	for op := uint32(0); op < 4; op++ {
		for op3 := uint32(0); op3 < 64; op3++ {
			for _, rest := range []uint32{0, 0x00002000, 0x00001fff, 0x3fffffff, 0x0000201f} {
				w := op<<30 | op3<<19 | rest&0x3807ffff
				if err := CheckWordRoundTrip(w); err != nil {
					t.Fatalf("structured word 0x%08x: %v", w, err)
				}
			}
		}
	}
}

// TestDiffProgramRoundTrip: every word of all thirteen evaluation
// programs round-trips and the assembled instruction view agrees with a
// fresh decode of the emitted words.
func TestDiffProgramRoundTrip(t *testing.T) {
	for _, b := range progs.All() {
		prog, _, err := b.BuildNative()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if err := CheckProgramRoundTrip(prog); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}
