package difftest

import (
	"testing"

	"mcsafe/internal/progs"
	"mcsafe/internal/solver"
	"mcsafe/internal/sparc"
)

// FuzzDecode exercises the decoder laws on arbitrary 32-bit words:
// Decode must never panic, and any word it accepts must re-encode
// (bit-identically when the word has no don't-care bits) and re-decode
// to the same instruction.
func FuzzDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0x01000000)) // nop (sethi 0, %g0)
	f.Add(uint32(0x40000000)) // call
	f.Add(uint32(0x80102000)) // mov 0, %g0
	f.Add(uint32(0xc0062004)) // ld [%i0+4], ...
	f.Add(uint32(0x10800002)) // ba
	f.Add(uint32(0x81c3e008)) // retl
	f.Add(uint32(0x9de3bfa0)) // save %sp, -96, %sp
	f.Add(uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, w uint32) {
		if err := CheckWordRoundTrip(w); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzAsmRoundTrip feeds arbitrary text to the assembler: parsing must
// never panic, and any program it accepts must satisfy the word-level
// round-trip laws on every emitted instruction.
func FuzzAsmRoundTrip(f *testing.F) {
	f.Add("start:\n  retl\n  nop\n")
	f.Add("  add %o0, %o1, %o2\n  ld [%o0+4], %o1\n")
	f.Add("loop: subcc %o1, 1, %o1\n  bne loop\n  nop\n")
	f.Add("  sethi %hi(0x12345000), %o0\n  or %o0, %lo(0x12345678), %o0\n")
	f.Add("  set 42, %g1\n  cmp %g1, 0\n  be done\n  nop\ndone: retl\n  nop\n")
	f.Add("  st %o0, [%sp+64]\n  stb %o1, [%sp+68]\n")
	for _, b := range progs.All() {
		f.Add(b.Source)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := sparc.Assemble(src, sparc.AsmOptions{})
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if err := CheckProgramRoundTrip(prog); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzSolver derives a box-bounded linear system from the fuzz input and
// cross-checks the prover's verdicts against exhaustive enumeration.
func FuzzSolver(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 2, 5, 3})             // one GE atom over x
	f.Add([]byte{1, 0, 0, 2, 1, 1, 3, 4}) // EQ + DIV atoms over x,y
	f.Add([]byte{2, 6, 8, 4, 3, 1, 12, 7, 250, 3, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := SystemFromBytes(data)
		p := solver.New()
		if err := CheckSystem(p, s); err != nil {
			t.Fatal(err)
		}
	})
}
