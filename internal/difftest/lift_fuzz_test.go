package difftest

import (
	"testing"

	"mcsafe/internal/rtl"
	"mcsafe/internal/sparc"
)

// refCondFalse evaluates a branch condition against all-clear condition
// codes (the state of a fresh machine), mirroring the SPARC manual's
// predicate table.
func refCondFalse(c sparc.Cond) bool {
	switch c {
	case sparc.CondA, sparc.CondNE, sparc.CondGE, sparc.CondG,
		sparc.CondCC, sparc.CondGU, sparc.CondPOS, sparc.CondVC:
		return true
	}
	return false
}

// refALU is an independent statement of the SPARC arithmetic semantics
// (kept deliberately separate from rtl.EvalBin so the fuzzer compares
// two formulations, not one formulation with itself).
func refALU(op sparc.Op, a, b uint32) (uint32, bool) {
	switch op {
	case sparc.OpAdd, sparc.OpAddcc:
		return a + b, true
	case sparc.OpSub, sparc.OpSubcc:
		return a - b, true
	case sparc.OpAnd, sparc.OpAndcc:
		return a & b, true
	case sparc.OpAndn:
		return a &^ b, true
	case sparc.OpOr, sparc.OpOrcc:
		return a | b, true
	case sparc.OpOrn:
		return a | ^b, true
	case sparc.OpXor, sparc.OpXorcc:
		return a ^ b, true
	case sparc.OpXnor:
		return ^(a ^ b), true
	case sparc.OpSll:
		return a << (b & 31), true
	case sparc.OpSrl:
		return a >> (b & 31), true
	case sparc.OpSra:
		return uint32(int32(a) >> (b & 31)), true
	case sparc.OpUMul, sparc.OpSMul:
		return a * b, true
	case sparc.OpUDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case sparc.OpSDiv:
		if b == 0 {
			return 0, false
		}
		return uint32(int32(a) / int32(b)), true
	}
	return 0, false
}

// FuzzLift decodes an arbitrary word, lifts it, and cross-checks one
// step of RTL execution against an independent reference semantics. It
// is the single-sourcing guard at the fuzz tier: every decodable word
// must have a lifting, and the lifting must execute like the manual
// says the instruction behaves.
func FuzzLift(f *testing.F) {
	f.Add(uint32(0x9de3bfa0), uint64(1)) // save %sp, -96, %sp
	f.Add(uint32(0x81c3e008), uint64(2)) // retl
	f.Add(uint32(0x01000000), uint64(3)) // nop
	f.Add(uint32(0x80102000), uint64(4)) // mov 0, %g0
	f.Fuzz(func(t *testing.T, w uint32, seed uint64) {
		i, err := sparc.Decode(w)
		if err != nil {
			return
		}
		effs := sparc.Lift(i)
		if len(effs) == 0 {
			t.Fatalf("word 0x%08x decodes to %+v but has no lifting", w, i)
		}

		nop := uint32(0x01000000)
		prog, err := sparc.FromWords([]uint32{w, nop, nop, nop}, 0, nil, nil)
		if err != nil {
			return
		}
		m := sparc.NewMachine(prog)

		// Deterministic register/memory state from the seed.
		s := seed
		next := func() uint32 {
			s = s*6364136223846793005 + 1442695040888963407
			return uint32(s >> 32)
		}
		var pre [32]uint32
		for r := sparc.Reg(1); r < 32; r++ {
			m.SetReg(r, next())
			pre[r] = m.Reg(r)
		}
		mem := map[uint32]byte{}
		a := pre[i.Rs1]
		b := uint32(i.SImm)
		if !i.Imm {
			b = pre[i.Rs2]
		}
		addr := a + b
		for k := uint32(0); k < 8; k++ {
			v := byte(next())
			m.Mem[addr+k] = v
			mem[addr+k] = v
		}

		stepErr := m.Step()

		switch {
		case i.Op == sparc.OpSethi:
			if stepErr != nil {
				t.Fatalf("sethi: unexpected error %v", stepErr)
			}
			if i.Rd != sparc.G0 && m.Reg(i.Rd) != uint32(i.SImm) {
				t.Fatalf("sethi: rd = %#x, want %#x", m.Reg(i.Rd), uint32(i.SImm))
			}

		case i.Op == sparc.OpBranch:
			if stepErr != nil {
				t.Fatalf("branch: unexpected error %v", stepErr)
			}
			taken := refCondFalse(i.Cond)
			wantPC := 1 // delay slot executes next
			switch {
			case taken && i.Cond == sparc.CondA && i.Annul:
				wantPC = int(i.Disp) // ba,a: the slot is annulled
			case !taken && i.Annul:
				wantPC = 2 // annulled untaken branch skips the slot
			}
			if m.PC() != wantPC {
				t.Fatalf("branch %v annul=%v: pc = %d, want %d", i.Cond, i.Annul, m.PC(), wantPC)
			}

		case i.Op == sparc.OpCall:
			if stepErr != nil {
				t.Fatalf("call: unexpected error %v", stepErr)
			}
			if m.Reg(sparc.O7) != prog.AddrOf(0) {
				t.Fatalf("call: %%o7 = %#x, want %#x", m.Reg(sparc.O7), prog.AddrOf(0))
			}

		case i.Op == sparc.OpJmpl:
			ret := a + b
			_, mapped := prog.IndexOf(ret)
			wantErr := !mapped && ret != 8 && ret != 0
			if (stepErr != nil) != wantErr {
				t.Fatalf("jmpl to %#x: err = %v, want error %v", ret, stepErr, wantErr)
			}

		case i.Op == sparc.OpSave, i.Op == sparc.OpRestore:
			if stepErr != nil {
				t.Fatalf("%v: unexpected error %v", i.Op, stepErr)
			}
			if i.Rd != sparc.G0 && m.Reg(i.Rd) != a+b {
				t.Fatalf("%v: rd = %#x, want %#x", i.Op, m.Reg(i.Rd), a+b)
			}

		case i.Op == sparc.OpLdd, i.Op == sparc.OpStd:
			if stepErr == nil {
				t.Fatalf("%v: doubleword access must fault", i.Op)
			}

		case i.IsLoad():
			if stepErr != nil {
				t.Fatalf("load: unexpected error %v", stepErr)
			}
			size := i.MemSize()
			var raw uint32
			for k := 0; k < size; k++ {
				raw = raw<<8 | uint32(mem[addr+uint32(k)])
			}
			signed := i.Op == sparc.OpLdsb || i.Op == sparc.OpLdsh
			want := rtl.Extend(raw, size, signed)
			if i.Rd != sparc.G0 && m.Reg(i.Rd) != want {
				t.Fatalf("%v [%#x]: rd = %#x, want %#x", i.Op, addr, m.Reg(i.Rd), want)
			}

		case i.IsStore():
			if stepErr != nil {
				t.Fatalf("store: unexpected error %v", stepErr)
			}
			size := i.MemSize()
			v := pre[i.Rd]
			for k := 0; k < size; k++ {
				want := byte(v >> uint(8*(size-1-k)))
				if got := m.Mem[addr+uint32(k)]; got != want {
					t.Fatalf("%v [%#x]+%d: mem = %#x, want %#x", i.Op, addr, k, got, want)
				}
			}

		default: // ALU
			want, ok := refALU(i.Op, a, b)
			if !ok {
				if stepErr == nil {
					t.Fatalf("%v with b=%#x: expected fault, got none", i.Op, b)
				}
				return
			}
			if stepErr != nil {
				t.Fatalf("%v: unexpected error %v", i.Op, stepErr)
			}
			if i.Rd != sparc.G0 && m.Reg(i.Rd) != want {
				t.Fatalf("%v: rd = %#x, want %#x", i.Op, m.Reg(i.Rd), want)
			}
			if i.SetsCC() {
				wantN := want&0x80000000 != 0
				wantZ := want == 0
				if m.N != wantN || m.Z != wantZ {
					t.Fatalf("%v: N,Z = %v,%v, want %v,%v", i.Op, m.N, m.Z, wantN, wantZ)
				}
			}
		}
	})
}
