package cfg

import (
	"testing"

	"mcsafe/internal/isa"
	"mcsafe/internal/sparc"
)

const fig1Source = `
1:  mov %o0,%o2
2:  clr %o0
3:  cmp %o0,%o1
4:  bge 12
5:  clr %g3
6:  sll %g3,2,%g2
7:  ld [%o2+%g2],%g2
8:  inc %g3
9:  cmp %g3,%o1
10: bl 6
11: add %o0,%g2,%o0
12: retl
13: nop
`

func buildFig1(t *testing.T) *Graph {
	t.Helper()
	p, err := sparc.Arch.Assemble(fig1Source, isa.AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFig1GraphShape(t *testing.T) {
	g := buildFig1(t)
	// 13 primary nodes + 2 replicas (delay slots of bge and bl).
	if len(g.Nodes) != 15 {
		t.Fatalf("node count = %d, want 15", len(g.Nodes))
	}
	reps := 0
	for _, n := range g.Nodes {
		if n.Replica {
			reps++
			// Replicas replicate instructions 4 (clr %g3) and 10 (add).
			if n.Index != 4 && n.Index != 10 {
				t.Errorf("unexpected replica of instruction %d", n.Index)
			}
		}
	}
	if reps != 2 {
		t.Fatalf("replica count = %d, want 2", reps)
	}
	if len(g.Procs) != 1 {
		t.Fatalf("proc count = %d", len(g.Procs))
	}
}

func TestFig1BranchEdges(t *testing.T) {
	g := buildFig1(t)
	// Node 3 is the bge: one taken edge to a replica, one fall edge.
	bge := g.Nodes[3]
	if _, ok := bge.Insn.Branch(); !ok {
		t.Fatalf("node 3 is %v", bge.Insn)
	}
	var taken, fall int
	for _, e := range bge.Succs {
		switch e.Kind {
		case EdgeTaken:
			taken++
			rep := g.Nodes[e.To]
			if !rep.Replica || rep.Index != 4 {
				t.Errorf("taken successor should be replica of 4, got %+v", rep)
			}
			// The replica's successor is the branch target (index 11).
			if len(rep.Succs) != 1 || g.Nodes[rep.Succs[0].To].Index != 11 {
				t.Errorf("replica successor wrong: %+v", rep.Succs)
			}
		case EdgeFall:
			fall++
			if g.Nodes[e.To].Index != 4 || g.Nodes[e.To].Replica {
				t.Errorf("fall successor should be primary slot 4")
			}
		}
	}
	if taken != 1 || fall != 1 {
		t.Fatalf("bge edges: taken=%d fall=%d", taken, fall)
	}
}

func TestFig1Loop(t *testing.T) {
	g := buildFig1(t)
	p := g.Procs[0]
	if len(p.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(p.Loops))
	}
	l := p.Loops[0]
	if g.Nodes[l.Header].Index != 5 {
		t.Errorf("loop header is instruction %d, want 5 (the sll)", g.Nodes[l.Header].Index)
	}
	// Loop body: sll(5), ld(6), inc(7), cmp(8), bl(9), replica of add(10).
	wantIdx := map[int]bool{5: true, 6: true, 7: true, 8: true, 9: true, 10: true}
	for id := range l.Body {
		if !wantIdx[g.Nodes[id].Index] {
			t.Errorf("unexpected loop member: instruction %d", g.Nodes[id].Index)
		}
	}
	if total, inner := g.LoopCounts(); total != 1 || inner != 0 {
		t.Errorf("LoopCounts = %d, %d", total, inner)
	}
}

func TestFig1Counts(t *testing.T) {
	g := buildFig1(t)
	if n := g.BranchCount(); n != 2 {
		t.Errorf("BranchCount = %d, want 2", n)
	}
	if total, trusted := g.CallCounts(); total != 0 || trusted != 0 {
		t.Errorf("CallCounts = %d, %d", total, trusted)
	}
}

func TestFig1Dominators(t *testing.T) {
	g := buildFig1(t)
	// The loop header (node for instruction 5) is dominated by the
	// entry chain; its idom should be the primary clr %g3 node (4).
	var header int
	for _, l := range g.Procs[0].Loops {
		header = l.Header
	}
	idom := g.Idom(header)
	if idom < 0 {
		t.Fatal("loop header should have an idom")
	}
	// Walking idoms from header must reach the entry.
	steps := 0
	for x := header; x != g.Entry; x = g.Idom(x) {
		if steps++; steps > 100 {
			t.Fatal("idom chain does not reach entry")
		}
		if g.Idom(x) < 0 && x != g.Entry {
			t.Fatalf("idom chain broken at %d", x)
		}
	}
}

const twoProcSource = `
main:
	save %sp,-96,%sp
	call helper
	mov %i0,%o0
	ret
	restore
helper:
	retl
	add %o0,1,%o0
`

func TestTwoProcGraph(t *testing.T) {
	p, err := sparc.Arch.Assemble(twoProcSource, isa.AsmOptions{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Procs) != 2 {
		t.Fatalf("procs = %d", len(g.Procs))
	}
	if len(g.Sites) != 1 {
		t.Fatalf("sites = %d", len(g.Sites))
	}
	site := g.Sites[0]
	if site.Callee != 1 {
		t.Errorf("callee = %d", site.Callee)
	}
	if site.Return < 0 || g.Nodes[site.Return].Index != 3 {
		t.Errorf("return point = %+v", site)
	}
	// Call edge from the delay node to helper's entry.
	found := false
	for _, e := range g.Nodes[site.DelayNode].Succs {
		if e.Kind == EdgeCall && g.Nodes[e.To].Index == 5 {
			found = true
		}
	}
	if !found {
		t.Error("missing call edge")
	}
	// Return edge from helper's return node (delay slot of retl).
	foundRet := false
	for _, e := range g.Nodes[site.Return].Preds {
		if e.Kind == EdgeReturn {
			foundRet = true
		}
	}
	if !foundRet {
		t.Error("missing return edge")
	}
	// Window depths: main body at depth 1 after save, helper at depth 1.
	if g.Nodes[site.DelayNode].Depth != 1 {
		t.Errorf("delay depth = %d, want 1", g.Nodes[site.DelayNode].Depth)
	}
	helperEntry := g.Procs[1].Entry
	if g.Nodes[helperEntry].Depth != 1 {
		t.Errorf("helper depth = %d, want 1", g.Nodes[helperEntry].Depth)
	}
	if g.Nodes[g.Entry].Depth != 0 {
		t.Errorf("entry depth = %d, want 0", g.Nodes[g.Entry].Depth)
	}
	if total, trusted := g.CallCounts(); total != 1 || trusted != 0 {
		t.Errorf("CallCounts = %d, %d", total, trusted)
	}
}

func TestRecursionRejected(t *testing.T) {
	src := `
main:
	call main
	nop
	retl
	nop
`
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p, Options{}); err == nil {
		t.Fatal("recursive program should be rejected")
	}
}

func TestMutualRecursionRejected(t *testing.T) {
	src := `
a:
	call b
	nop
	retl
	nop
b:
	call a
	nop
	retl
	nop
`
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{Entry: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p, Options{}); err == nil {
		t.Fatal("mutually recursive program should be rejected")
	}
}

func TestTrustedCall(t *testing.T) {
	src := `
main:
	call gettime
	nop
	retl
	nop
gettime:
	retl
	nop
`
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	// gettime is a proc entry in the program, so it resolves as an
	// internal call even when listed as trusted... remove it from the
	// program instead: simulate by assembling only main and pointing
	// the call out of range is not representable, so here we just check
	// internal resolution works.
	g, err := Build(p, Options{TrustedFuncs: map[string]bool{"gettime": true}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Sites[0].Callee != 1 {
		t.Errorf("call should resolve internally, got %+v", g.Sites[0])
	}
}

func TestNestedLoops(t *testing.T) {
	src := `
outer:
	clr %o0
L1:
	clr %o1
L2:
	inc %o1
	cmp %o1,%o3
	bl L2
	nop
	inc %o0
	cmp %o0,%o2
	bl L1
	nop
	retl
	nop
`
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{Entry: "outer"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total, inner := g.LoopCounts()
	if total != 2 || inner != 1 {
		t.Fatalf("LoopCounts = %d, %d; want 2, 1", total, inner)
	}
	// The inner loop's parent must be the outer loop.
	var innerLoop *Loop
	for _, l := range g.Procs[0].Loops {
		if l.Parent != nil {
			innerLoop = l
		}
	}
	if innerLoop == nil || innerLoop.DepthIn() != 2 {
		t.Fatalf("inner loop nesting wrong: %+v", innerLoop)
	}
	if len(innerLoop.Body) >= len(innerLoop.Parent.Body) {
		t.Error("inner loop should be smaller than its parent")
	}
}

func TestAnnulledBranchEdges(t *testing.T) {
	src := `
	cmp %o0,%o1
	be,a target
	add %o0,1,%o0
	sub %o0,1,%o0
target:
	retl
	nop
`
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	be := g.Nodes[1]
	for _, e := range be.Succs {
		switch e.Kind {
		case EdgeTaken:
			if !g.Nodes[e.To].Replica {
				t.Error("annulled taken path should run the replica")
			}
		case EdgeFall:
			// Annulled fall-through skips the delay slot (index 2).
			if g.Nodes[e.To].Index != 3 {
				t.Errorf("annulled fall-through should skip slot, got index %d",
					g.Nodes[e.To].Index)
			}
		}
	}
}

func TestBranchIntoDelaySlotRejected(t *testing.T) {
	src := `
	cmp %o0,%o1
	be lab
lab:	add %o0,1,%o0
	retl
	nop
`
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p, Options{}); err == nil {
		t.Fatal("branch into a delay slot should be rejected")
	}
}

func TestCTIInDelaySlotRejected(t *testing.T) {
	src := "ba x\nba y\nx: retl\nnop\ny: retl\nnop"
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p, Options{}); err == nil {
		t.Fatal("CTI in delay slot should be rejected")
	}
}

func TestUnconditionalBranchShape(t *testing.T) {
	src := `
	ba done
	add %o0,1,%o0
	sub %o0,1,%o0
done:
	retl
	nop
`
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ba := g.Nodes[0]
	if len(ba.Succs) != 1 || ba.Succs[0].Kind != EdgeTaken {
		t.Fatalf("ba edges: %+v", ba.Succs)
	}
	rep := g.Nodes[ba.Succs[0].To]
	if !rep.Replica || rep.Index != 1 {
		t.Fatalf("ba successor: %+v", rep)
	}
	// The sub at index 2 is unreachable, with no predecessors.
	if len(g.Nodes[2].Preds) != 0 {
		t.Error("skipped instruction should be unreachable")
	}
}

func TestIntraViews(t *testing.T) {
	p, err := sparc.Arch.Assemble(twoProcSource, isa.AsmOptions{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	site := g.Sites[0]
	// Intraprocedural successors of the call delay node summarize to
	// the return point.
	succs := g.IntraSuccs(site.DelayNode)
	if len(succs) != 1 || succs[0].Kind != EdgeSummary || succs[0].To != site.Return {
		t.Fatalf("IntraSuccs = %+v", succs)
	}
	preds := g.IntraPreds(site.Return)
	if len(preds) != 1 || preds[0].Kind != EdgeSummary || preds[0].To != site.DelayNode {
		t.Fatalf("IntraPreds = %+v", preds)
	}
	// Callee entry has no intraprocedural predecessors.
	if got := g.IntraPreds(g.Procs[1].Entry); len(got) != 0 {
		t.Fatalf("callee entry preds = %+v", got)
	}
}

func TestWindowDepthMismatchRejected(t *testing.T) {
	// Two paths reach the same instruction at different window depths.
	src := `
	cmp %o0,%g0
	be skip
	nop
	save %sp,-96,%sp
skip:
	retl
	nop
`
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p, Options{}); err == nil {
		t.Fatal("inconsistent window depth should be rejected")
	}
}

func TestRestoreUnderflowRejected(t *testing.T) {
	src := "restore\nretl\nnop"
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p, Options{}); err == nil {
		t.Fatal("window underflow should be rejected")
	}
}

func TestSiteByReturn(t *testing.T) {
	p, err := sparc.Arch.Assemble(twoProcSource, isa.AsmOptions{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.SiteByReturn(g.Sites[0].Return); got != g.Sites[0] {
		t.Error("SiteByReturn wrong")
	}
	if got := g.SiteByReturn(g.Entry); got != nil {
		t.Error("SiteByReturn on non-return should be nil")
	}
}
