package cfg

import (
	"reflect"
	"testing"

	"mcsafe/internal/isa"
	"mcsafe/internal/sparc"
)

// buildAsm assembles a source snippet and builds its graph.
func buildAsm(t *testing.T, src string) *Graph {
	t.Helper()
	p, err := sparc.Arch.Assemble(src, isa.AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// primaryOf returns the primary node for instruction index idx.
func primaryOf(t *testing.T, g *Graph, idx int) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if !n.Replica && n.Index == idx {
			return n
		}
	}
	t.Fatalf("no primary node for instruction %d", idx)
	return nil
}

func replicas(g *Graph) []*Node {
	var reps []*Node
	for _, n := range g.Nodes {
		if n.Replica {
			reps = append(reps, n)
		}
	}
	return reps
}

// TestBranchAlwaysAnnulled: ba,a annuls its delay slot unconditionally,
// so the graph must jump straight to the target — no replica, and the
// slot's primary node is unreachable.
func TestBranchAlwaysAnnulled(t *testing.T) {
	g := buildAsm(t, `
	ba,a done
	mov 1,%g1
done:
	retl
	nop
`)
	if reps := replicas(g); len(reps) != 0 {
		t.Fatalf("ba,a must not replicate its delay slot; got %d replicas", len(reps))
	}
	br := primaryOf(t, g, 0)
	if len(br.Succs) != 1 || br.Succs[0].Kind != EdgeTaken {
		t.Fatalf("ba,a successors = %+v, want one taken edge", br.Succs)
	}
	if tgt := g.Nodes[br.Succs[0].To]; tgt.Index != 2 {
		t.Fatalf("ba,a taken edge goes to instruction %d, want 2", tgt.Index)
	}
	slot := primaryOf(t, g, 1)
	if len(slot.Preds) != 0 || len(slot.Succs) != 0 {
		t.Fatalf("annulled slot must be disconnected; preds=%+v succs=%+v",
			slot.Preds, slot.Succs)
	}
}

// TestBranchNeverNotAnnulled: bn without the annul bit is a two-word
// nop — the slot executes, then control falls through past it.
func TestBranchNeverNotAnnulled(t *testing.T) {
	g := buildAsm(t, `
	bn skip
	mov 1,%g1
	retl
	nop
skip:
	retl
	nop
`)
	if reps := replicas(g); len(reps) != 0 {
		t.Fatalf("bn must not replicate its delay slot; got %d replicas", len(reps))
	}
	br := primaryOf(t, g, 0)
	if len(br.Succs) != 1 || br.Succs[0].Kind != EdgeFall {
		t.Fatalf("bn successors = %+v, want one fall edge", br.Succs)
	}
	slot := g.Nodes[br.Succs[0].To]
	if slot.Index != 1 {
		t.Fatalf("bn fall edge goes to instruction %d, want the slot (1)", slot.Index)
	}
	if len(slot.Succs) != 1 || g.Nodes[slot.Succs[0].To].Index != 2 {
		t.Fatalf("slot successors = %+v, want fall to instruction 2", slot.Succs)
	}
}

// TestBranchNeverAnnulled: bn,a never takes the branch and the annul
// bit suppresses the slot, so control skips directly to slot+1. The
// slot node must not be on any path.
func TestBranchNeverAnnulled(t *testing.T) {
	g := buildAsm(t, `
	bn,a skip
	mov 1,%g1
	retl
	nop
skip:
	retl
	nop
`)
	if reps := replicas(g); len(reps) != 0 {
		t.Fatalf("bn,a must not replicate its delay slot; got %d replicas", len(reps))
	}
	br := primaryOf(t, g, 0)
	if len(br.Succs) != 1 || br.Succs[0].Kind != EdgeFall {
		t.Fatalf("bn,a successors = %+v, want one fall edge", br.Succs)
	}
	if next := g.Nodes[br.Succs[0].To]; next.Index != 2 {
		t.Fatalf("bn,a fall edge goes to instruction %d, want 2 (slot skipped)", next.Index)
	}
	slot := primaryOf(t, g, 1)
	if len(slot.Preds) != 0 || len(slot.Succs) != 0 {
		t.Fatalf("annulled slot must be disconnected; preds=%+v succs=%+v",
			slot.Preds, slot.Succs)
	}
}

// TestConditionalAnnulled: b<cond>,a executes the slot only on the
// taken path. The taken leg goes through a replica of the slot; the
// fall-through leg bypasses the slot's primary node entirely.
func TestConditionalAnnulled(t *testing.T) {
	g := buildAsm(t, `
	cmp %g1,%g2
	be,a done
	mov 1,%g1
	retl
	nop
done:
	retl
	nop
`)
	reps := replicas(g)
	if len(reps) != 1 || reps[0].Index != 2 {
		t.Fatalf("want exactly one replica of the slot (instruction 2), got %+v", reps)
	}
	rep := reps[0]
	br := primaryOf(t, g, 1)
	var taken, fall int
	for _, e := range br.Succs {
		switch e.Kind {
		case EdgeTaken:
			taken++
			if e.To != rep.ID {
				t.Errorf("taken edge goes to node %d, want the replica %d", e.To, rep.ID)
			}
		case EdgeFall:
			fall++
			if next := g.Nodes[e.To]; next.Index != 3 {
				t.Errorf("fall edge goes to instruction %d, want 3 (slot skipped)", next.Index)
			}
		default:
			t.Errorf("unexpected edge kind %v", e.Kind)
		}
	}
	if taken != 1 || fall != 1 {
		t.Fatalf("branch successors = %+v, want one taken + one fall", br.Succs)
	}
	if len(rep.Succs) != 1 || g.Nodes[rep.Succs[0].To].Index != 5 {
		t.Fatalf("replica successors = %+v, want the branch target (5)", rep.Succs)
	}
	// The slot's primary node is only reachable when the branch falls
	// through — which for an annulled slot means never.
	slot := primaryOf(t, g, 2)
	if len(slot.Preds) != 0 {
		t.Fatalf("annulled slot primary has preds %+v, want none", slot.Preds)
	}
}

// TestConditionalNotAnnulled: without the annul bit the slot executes
// on both legs — as a replica on the taken path and as its primary
// node on the fall-through path.
func TestConditionalNotAnnulled(t *testing.T) {
	g := buildAsm(t, `
	cmp %g1,%g2
	be done
	mov 1,%g1
	retl
	nop
done:
	retl
	nop
`)
	reps := replicas(g)
	if len(reps) != 1 || reps[0].Index != 2 {
		t.Fatalf("want exactly one replica of the slot (instruction 2), got %+v", reps)
	}
	rep := reps[0]
	br := primaryOf(t, g, 1)
	slot := primaryOf(t, g, 2)
	var taken, fall int
	for _, e := range br.Succs {
		switch e.Kind {
		case EdgeTaken:
			taken++
			if e.To != rep.ID {
				t.Errorf("taken edge goes to node %d, want the replica %d", e.To, rep.ID)
			}
		case EdgeFall:
			fall++
			if e.To != slot.ID {
				t.Errorf("fall edge goes to node %d, want the slot primary %d", e.To, slot.ID)
			}
		}
	}
	if taken != 1 || fall != 1 {
		t.Fatalf("branch successors = %+v, want one taken + one fall", br.Succs)
	}
	if len(slot.Succs) != 1 || g.Nodes[slot.Succs[0].To].Index != 3 {
		t.Fatalf("slot successors = %+v, want fall to instruction 3", slot.Succs)
	}
	// Replica and primary carry the same lifted semantics: the RTL
	// slice is shared, not re-lifted, so the two nodes can never
	// disagree about what the slot instruction does.
	if !reflect.DeepEqual(rep.RTL, slot.RTL) {
		t.Errorf("replica RTL %v differs from primary RTL %v", rep.RTL, slot.RTL)
	}
	if rep.BranchOwner != br.ID || slot.BranchOwner != br.ID {
		t.Errorf("BranchOwner: replica=%d slot=%d, want both %d",
			rep.BranchOwner, slot.BranchOwner, br.ID)
	}
}
