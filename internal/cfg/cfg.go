// Package cfg builds control-flow graphs from decoded machine code in
// ISA-neutral form. Nodes represent instructions; on architectures with
// delayed branches (the DelaySlots trait), the delay-slot instruction is
// replicated on the taken path, exactly as in Section 5.2.2 of the paper
// ("the instructions at lines 5 and 11 are replicated to model the
// semantics of delayed branches"). On architectures without delay slots
// the wiring degenerates to plain two-way edges. The package also
// computes dominators, back edges, natural loops with nesting,
// reducibility, the call graph (rejecting recursion, per Section 5.2.1),
// and static register-window depths.
package cfg

import (
	"fmt"
	"sort"

	"mcsafe/internal/faults"
	"mcsafe/internal/isa"
	"mcsafe/internal/rtl"
)

// EdgeKind labels a control-flow edge.
type EdgeKind int

const (
	// EdgeFall is ordinary fall-through (or the not-taken leg of a
	// conditional branch).
	EdgeFall EdgeKind = iota
	// EdgeTaken is the taken leg of a conditional branch.
	EdgeTaken
	// EdgeCall enters a callee from a call site's delay slot.
	EdgeCall
	// EdgeReturn leaves a callee's return node for a return point.
	EdgeReturn
	// EdgeSummary is the intraprocedural summary of a call: delay slot
	// directly to the return point.
	EdgeSummary
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeFall:
		return "fall"
	case EdgeTaken:
		return "taken"
	case EdgeCall:
		return "call"
	case EdgeReturn:
		return "return"
	case EdgeSummary:
		return "summary"
	}
	return "?"
}

// Edge is a directed control-flow edge.
type Edge struct {
	To   int
	Kind EdgeKind
	// Site is the call-site ID for EdgeCall/EdgeReturn/EdgeSummary.
	Site int
}

// Node is one executed instruction occurrence. Delay slots of taken
// branches are replicas of the underlying instruction.
type Node struct {
	ID    int
	Insn  isa.Insn
	Index int // original instruction index in the program
	// RTL is the instruction's lifted effect sequence (shared between a
	// primary node and its delay-slot replicas). All analyses consume
	// the semantics through this field, never from Insn directly.
	RTL []rtl.Effect
	// Replica marks a delay-slot copy placed on a taken path.
	Replica bool
	// Proc is the procedure this node belongs to.
	Proc int
	// Depth is the static register-window depth (entry procedure = 0).
	Depth int
	// BranchOwner, for delay-slot nodes, is the node ID of the control
	// transfer instruction whose slot this is (-1 otherwise).
	BranchOwner int

	Succs []Edge
	Preds []Edge
}

// CallSite records one call instruction and its plumbing.
type CallSite struct {
	ID       int
	CallNode int // the call instruction node
	// DelayNode is the node executed last before entering the callee: the
	// delay-slot node on delay-slot architectures, the call node itself
	// otherwise.
	DelayNode int
	Return    int // node that receives control after the callee returns (-1 if none)
	Callee    int // procedure index, -1 for calls to trusted/external targets
	// TrustedName is the symbol name for calls that leave the program
	// (resolved against the policy's trusted functions).
	TrustedName string
}

// Proc is one procedure: a contiguous span of instructions.
type Proc struct {
	Index int
	Name  string
	Entry int // node ID of the entry
	// Lo, Hi bound the original instruction indexes [Lo, Hi).
	Lo, Hi int
	// Nodes lists node IDs belonging to this procedure.
	Nodes []int
	// Returns lists node IDs of return nodes (the delay-slot node of a
	// ret on delay-slot architectures, the return instruction itself
	// otherwise).
	Returns []int
	// Loops are the natural loops of the procedure, outermost first.
	Loops []*Loop
	// RPO is a reverse postorder of the procedure's intraprocedural
	// view (call edges summarized), for forward dataflow and backward
	// walks.
	RPO []int
}

// Loop is a natural loop.
type Loop struct {
	Header  int
	Latches []int
	// Body is the set of node IDs in the loop (including Header).
	Body map[int]bool
	// Parent is the immediately enclosing loop, nil for top level.
	Parent *Loop
	// Children are immediately nested loops.
	Children []*Loop
	// Exits are edges leaving the loop (from node in body to node
	// outside).
	Exits []Edge
}

// Depth returns the nesting depth of the loop (1 = outermost).
func (l *Loop) DepthIn() int {
	d := 1
	for p := l.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Contains reports whether the loop body contains node id.
func (l *Loop) Contains(id int) bool { return l.Body[id] }

// Graph is the interprocedural control-flow graph of a program.
type Graph struct {
	Prog  *isa.Program
	Nodes []*Node
	Procs []*Proc
	Sites []*CallSite
	// Entry is the node ID where execution starts.
	Entry int
	// EntryProc is the procedure containing Entry.
	EntryProc int
	// idom maps node ID to immediate dominator node ID within its
	// procedure's intraprocedural view (-1 for proc entries).
	idom []int
	// loopOf maps node ID to its innermost enclosing loop (nil if none).
	loopOf []*Loop
}

// Options configures graph construction.
type Options struct {
	// TrustedFuncs names call targets that are trusted host functions;
	// calls to them do not enter a callee in the graph.
	TrustedFuncs map[string]bool
}

// Build constructs the interprocedural CFG for a program and runs all
// structural analyses (dominators, loops, reducibility, call graph,
// window depths).
func Build(prog *isa.Program, opts Options) (*Graph, error) {
	g, err := construct(prog, opts)
	if err != nil {
		return nil, err
	}
	if err := g.checkRecursion(); err != nil {
		return nil, err
	}
	if err := g.computeDepths(); err != nil {
		return nil, err
	}
	if err := g.analyzeProcs(); err != nil {
		return nil, err
	}
	return g, nil
}

// construct wires nodes and edges without running the analyses.
func construct(prog *isa.Program, opts Options) (*Graph, error) {
	g := &Graph{Prog: prog}
	n := len(prog.Insns)
	if n == 0 {
		return nil, fmt.Errorf("cfg: empty program")
	}
	delaySlots := prog.Arch.Traits().DelaySlots

	// Procedure spans: contiguous from each proc entry to the next.
	type span struct {
		name   string
		lo, hi int
	}
	var spans []span
	entries := make([]int, 0, len(prog.Procs))
	for _, name := range prog.Procs {
		idx := prog.Symbols[name]
		if idx < n {
			entries = append(entries, idx)
		}
	}
	sort.Ints(entries)
	if len(entries) == 0 || entries[0] != 0 {
		// Ensure instruction 0 belongs to some procedure.
		if _, covered := containsInt(entries, prog.Entry); !covered {
			entries = append([]int{prog.Entry}, entries...)
		}
	}
	seen := map[int]bool{}
	uniq := entries[:0]
	for _, e := range entries {
		if !seen[e] {
			seen[e] = true
			uniq = append(uniq, e)
		}
	}
	entries = uniq
	nameAt := map[int]string{}
	for _, name := range prog.Procs {
		nameAt[prog.Symbols[name]] = name
	}
	for i, lo := range entries {
		hi := n
		if i+1 < len(entries) {
			hi = entries[i+1]
		}
		name := nameAt[lo]
		if name == "" {
			name = fmt.Sprintf("proc_%d", lo)
		}
		spans = append(spans, span{name: name, lo: lo, hi: hi})
	}
	procOfIndex := make([]int, n)
	for i := range procOfIndex {
		procOfIndex[i] = -1
	}
	for pi, s := range spans {
		g.Procs = append(g.Procs, &Proc{Index: pi, Name: s.name, Lo: s.lo, Hi: s.hi})
		for idx := s.lo; idx < s.hi; idx++ {
			procOfIndex[idx] = pi
		}
	}

	// The front-end lifts each instruction once; primaries and replicas
	// share the canonical effect sequence.
	for idx := 0; idx < n; idx++ {
		if prog.Insns[idx].RTL == nil {
			return nil, fmt.Errorf("cfg: instruction %d has no RTL lifting (%s)", idx, prog.Insns[idx].Text)
		}
	}

	// One primary node per instruction.
	primary := make([]int, n)
	for idx := 0; idx < n; idx++ {
		node := &Node{
			ID:          len(g.Nodes),
			Insn:        prog.Insns[idx],
			Index:       idx,
			RTL:         prog.Insns[idx].RTL,
			Proc:        procOfIndex[idx],
			BranchOwner: -1,
		}
		primary[idx] = node.ID
		g.Nodes = append(g.Nodes, node)
	}

	addReplica := func(idx int, owner int) int {
		node := &Node{
			ID:          len(g.Nodes),
			Insn:        prog.Insns[idx],
			Index:       idx,
			RTL:         prog.Insns[idx].RTL,
			Replica:     true,
			Proc:        procOfIndex[idx],
			BranchOwner: owner,
		}
		g.Nodes = append(g.Nodes, node)
		return node.ID
	}

	addEdge := func(from, to int, kind EdgeKind, site int) {
		g.Nodes[from].Succs = append(g.Nodes[from].Succs, Edge{To: to, Kind: kind, Site: site})
		g.Nodes[to].Preds = append(g.Nodes[to].Preds, Edge{To: from, Kind: kind, Site: site})
	}

	trusted := opts.TrustedFuncs
	procEntryIdx := map[int]int{} // instruction index -> proc index
	for pi, s := range spans {
		procEntryIdx[s.lo] = pi
	}

	// A control-transfer instruction carries a Branch, Call, or Jump
	// effect. On delay-slot architectures the following instruction is
	// its delay slot, which may be neither a branch target nor itself a
	// control transfer; collect them for validation.
	isCTI := func(i isa.Insn) bool {
		_, b := i.Branch()
		_, c := i.Call()
		_, j := i.Jump()
		return b || c || j
	}
	delaySlot := make([]bool, n)
	branchTarget := make([]bool, n)
	for idx, insn := range prog.Insns {
		faults.Fire(faults.Lift)
		if delaySlots && isCTI(insn) {
			if idx+1 >= n {
				return nil, fmt.Errorf("cfg: control transfer at %d has no delay slot", idx)
			}
			if isCTI(prog.Insns[idx+1]) {
				return nil, fmt.Errorf("cfg: control transfer in delay slot at %d", idx+1)
			}
			delaySlot[idx+1] = true
		}
		if br, ok := insn.Branch(); ok {
			tgt := idx + int(br.Disp)
			if tgt < 0 || tgt >= n {
				return nil, fmt.Errorf("cfg: branch at %d targets %d, out of range", idx, tgt)
			}
			branchTarget[tgt] = true
		}
	}
	for idx := 0; idx < n; idx++ {
		if delaySlot[idx] && branchTarget[idx] {
			return nil, fmt.Errorf("cfg: instruction %d is both a delay slot and a branch target", idx)
		}
	}

	// Wire edges.
	for idx := 0; idx < n; idx++ {
		insn := prog.Insns[idx]
		id := primary[idx]
		br, isBr := insn.Branch()
		call, isCall := insn.Call()
		_, isJump := insn.Jump()
		switch {
		case isBr:
			tgt := idx + int(br.Disp)
			if !delaySlots {
				// No delay slot: a conditional branch is a plain two-way
				// split; an unconditional one a goto.
				switch br.Cond {
				case rtl.CondAlways:
					addEdge(id, primary[tgt], EdgeTaken, -1)
				case rtl.CondNever:
					if idx+1 < n {
						addEdge(id, primary[idx+1], EdgeFall, -1)
					}
				default:
					addEdge(id, primary[tgt], EdgeTaken, -1)
					if idx+1 < n {
						addEdge(id, primary[idx+1], EdgeFall, -1)
					}
				}
				break
			}
			slot := idx + 1
			g.Nodes[primary[slot]].BranchOwner = id
			if br.Cond == rtl.CondAlways {
				if br.Annul {
					// ba,a: delay slot never executes.
					addEdge(id, primary[tgt], EdgeTaken, -1)
				} else {
					rep := addReplica(slot, id)
					addEdge(id, rep, EdgeTaken, -1)
					addEdge(rep, primary[tgt], EdgeFall, -1)
				}
			} else if br.Cond == rtl.CondNever {
				if br.Annul {
					// bn,a: never taken with the annul bit set, so the
					// delay slot never executes (matching the
					// interpreter's untaken-annulled semantics).
					if slot+1 < n {
						addEdge(id, primary[slot+1], EdgeFall, -1)
					}
				} else {
					// bn: never taken; acts like a nop pair.
					addEdge(id, primary[slot], EdgeFall, -1)
					if slot+1 < n {
						addEdge(primary[slot], primary[slot+1], EdgeFall, -1)
					}
				}
			} else {
				// Conditional: taken path via replica, fall-through
				// via the primary slot node (skipped if annulled).
				rep := addReplica(slot, id)
				addEdge(id, rep, EdgeTaken, -1)
				addEdge(rep, primary[tgt], EdgeFall, -1)
				if br.Annul {
					if slot+1 < n {
						addEdge(id, primary[slot+1], EdgeFall, -1)
					}
				} else {
					addEdge(id, primary[slot], EdgeFall, -1)
					if slot+1 < n {
						addEdge(primary[slot], primary[slot+1], EdgeFall, -1)
					}
				}
			}

		case isCall:
			tgt := idx + int(call.Disp)
			site := &CallSite{ID: len(g.Sites), CallNode: id, DelayNode: id, Callee: -1}
			retIdx := idx + 1
			if delaySlots {
				slot := idx + 1
				g.Nodes[primary[slot]].BranchOwner = id
				site.DelayNode = primary[slot]
				retIdx = idx + 2
			}
			if tgt >= 0 && tgt < n {
				if pi, ok := procEntryIdx[tgt]; ok {
					site.Callee = pi
				} else {
					return nil, fmt.Errorf("cfg: call at %d targets %d, not a procedure entry", idx, tgt)
				}
			}
			if site.Callee == -1 {
				// Call leaving the program: resolve by label name.
				name := prog.LabelAt(tgt)
				if name == "" || (trusted != nil && !trusted[name]) {
					return nil, fmt.Errorf("cfg: call at %d targets unknown/untrusted %q", idx, name)
				}
				site.TrustedName = name
			}
			if retIdx < n {
				site.Return = primary[retIdx]
			} else {
				site.Return = -1
			}
			g.Sites = append(g.Sites, site)
			if delaySlots {
				addEdge(id, site.DelayNode, EdgeFall, -1)
			}
			if site.Callee >= 0 {
				addEdge(site.DelayNode, primary[spans[site.Callee].lo], EdgeCall, site.ID)
				// Return edges are added after return nodes are known.
			} else if site.Return >= 0 {
				// Trusted call: summary edge to the return point.
				addEdge(site.DelayNode, site.Return, EdgeSummary, site.ID)
			}

		case isJump:
			if !insn.Ret {
				return nil, fmt.Errorf("cfg: indirect jump at %d is not supported (only returns)", idx)
			}
			retNode := id
			if delaySlots {
				slot := idx + 1
				g.Nodes[primary[slot]].BranchOwner = id
				addEdge(id, primary[slot], EdgeFall, -1)
				// The delay-slot node is the procedure's return node.
				retNode = primary[slot]
			}
			// Return edges added below.
			g.Procs[procOfIndex[idx]].Returns = append(g.Procs[procOfIndex[idx]].Returns, retNode)

		default:
			// Ordinary instruction: plain fall-through. Delay-slot
			// nodes are skipped; their edges were added by the owning
			// control-transfer instruction.
			if !delaySlot[idx] && idx+1 < n {
				addEdge(id, primary[idx+1], EdgeFall, -1)
			}
		}
	}

	// Return edges: from each callee's return nodes to each site's
	// return point.
	for _, site := range g.Sites {
		if site.Callee < 0 || site.Return < 0 {
			continue
		}
		for _, ret := range g.Procs[site.Callee].Returns {
			addEdge(ret, site.Return, EdgeReturn, site.ID)
		}
	}

	g.Entry = primary[prog.Entry]
	g.EntryProc = procOfIndex[prog.Entry]

	// Assign nodes to procedures.
	for _, node := range g.Nodes {
		if node.Proc >= 0 {
			g.Procs[node.Proc].Nodes = append(g.Procs[node.Proc].Nodes, node.ID)
		}
	}
	for _, p := range g.Procs {
		p.Entry = primary[p.Lo]
	}

	return g, nil
}

func containsInt(xs []int, v int) (int, bool) {
	for i, x := range xs {
		if x == v {
			return i, true
		}
	}
	return 0, false
}

// checkRecursion rejects recursive call graphs (Section 5.2.1: "our
// present system detects and rejects recursive programs").
func (g *Graph) checkRecursion() error {
	adj := make(map[int][]int)
	for _, site := range g.Sites {
		if site.Callee < 0 {
			continue
		}
		caller := g.Nodes[site.CallNode].Proc
		adj[caller] = append(adj[caller], site.Callee)
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(g.Procs))
	var visit func(p int) error
	visit = func(p int) error {
		color[p] = gray
		for _, q := range adj[p] {
			switch color[q] {
			case gray:
				return fmt.Errorf("cfg: recursive call involving procedure %q", g.Procs[q].Name)
			case white:
				if err := visit(q); err != nil {
					return err
				}
			}
		}
		color[p] = black
		return nil
	}
	for p := range g.Procs {
		if color[p] == white {
			if err := visit(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// computeDepths assigns a static register-window depth to every node
// reachable from the entry and rejects inconsistent window usage. On
// architectures without register windows every node stays at depth 0.
func (g *Graph) computeDepths() error {
	depth := make([]int, len(g.Nodes))
	for i := range depth {
		depth[i] = -1 << 30 // unassigned
	}
	const unassigned = -1 << 30
	depth[g.Entry] = 0
	work := []int{g.Entry}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		d := depth[id]
		out := d + g.Nodes[id].Insn.WindowDelta()
		if out < 0 {
			return fmt.Errorf("cfg: restore at node %d underflows the register window", id)
		}
		for _, e := range g.Nodes[id].Succs {
			want := out
			if depth[e.To] == unassigned {
				depth[e.To] = want
				work = append(work, e.To)
			} else if depth[e.To] != want {
				return fmt.Errorf("cfg: inconsistent register-window depth at node %d (%d vs %d)",
					e.To, depth[e.To], want)
			}
		}
	}
	for _, node := range g.Nodes {
		if depth[node.ID] == unassigned {
			depth[node.ID] = 0 // unreachable; harmless default
		}
		node.Depth = depth[node.ID]
	}
	return nil
}
