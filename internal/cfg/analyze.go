package cfg

import (
	"fmt"
	"sort"

	"mcsafe/internal/rtl"
)

// IntraSuccs returns the successors of a node in the intraprocedural view:
// EdgeCall and EdgeReturn edges are replaced by the call site's summary
// (delay slot -> return point), so each procedure is a self-contained
// graph. The paper partitions each procedure's control-flow graph into
// cyclic and acyclic regions on this view (Section 5.2).
func (g *Graph) IntraSuccs(id int) []Edge {
	node := g.Nodes[id]
	var out []Edge
	for _, e := range node.Succs {
		switch e.Kind {
		case EdgeCall:
			site := g.Sites[e.Site]
			if site.Return >= 0 {
				out = append(out, Edge{To: site.Return, Kind: EdgeSummary, Site: e.Site})
			}
		case EdgeReturn:
			// Skipped: the callee's exit belongs to the callee's view.
		default:
			out = append(out, e)
		}
	}
	return out
}

// IntraPreds is the predecessor mirror of IntraSuccs.
func (g *Graph) IntraPreds(id int) []Edge {
	node := g.Nodes[id]
	var out []Edge
	for _, e := range node.Preds {
		switch e.Kind {
		case EdgeReturn:
			site := g.Sites[e.Site]
			out = append(out, Edge{To: site.DelayNode, Kind: EdgeSummary, Site: e.Site})
		case EdgeCall:
			// Skipped: a procedure entry's intraprocedural view has no
			// predecessors.
		case EdgeSummary:
			out = append(out, e)
		default:
			out = append(out, e)
		}
	}
	return out
}

// analyzeProcs computes, per procedure: reverse postorder, dominators,
// natural loops (with nesting), and checks reducibility.
func (g *Graph) analyzeProcs() error {
	g.idom = make([]int, len(g.Nodes))
	g.loopOf = make([]*Loop, len(g.Nodes))
	for i := range g.idom {
		g.idom[i] = -1
	}
	for _, p := range g.Procs {
		if err := g.analyzeProc(p); err != nil {
			return err
		}
	}
	return nil
}

func (g *Graph) analyzeProc(p *Proc) error {
	// DFS from the entry over the intraprocedural view.
	post := []int{}
	state := map[int]int{} // 0 unvisited, 1 on stack, 2 done
	retreat := map[[2]int]bool{}

	type frame struct {
		id   int
		succ []Edge
		i    int
	}
	stack := []frame{{id: p.Entry, succ: g.IntraSuccs(p.Entry)}}
	state[p.Entry] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.i < len(f.succ) {
			e := f.succ[f.i]
			f.i++
			switch state[e.To] {
			case 0:
				state[e.To] = 1
				stack = append(stack, frame{id: e.To, succ: g.IntraSuccs(e.To)})
			case 1:
				retreat[[2]int{f.id, e.To}] = true
			}
			continue
		}
		state[f.id] = 2
		post = append(post, f.id)
		stack = stack[:len(stack)-1]
	}

	// Reverse postorder.
	rpo := make([]int, len(post))
	for i, id := range post {
		rpo[len(post)-1-i] = id
	}
	p.RPO = rpo
	rpoIndex := map[int]int{}
	for i, id := range rpo {
		rpoIndex[id] = i
	}

	// Iterative dominators (Cooper-Harvey-Kennedy).
	idom := map[int]int{p.Entry: p.Entry}
	changed := true
	for changed {
		changed = false
		for _, id := range rpo {
			if id == p.Entry {
				continue
			}
			newIdom := -1
			for _, e := range g.IntraPreds(id) {
				pr := e.To
				if _, ok := idom[pr]; !ok {
					continue
				}
				if newIdom == -1 {
					newIdom = pr
				} else {
					newIdom = g.intersect(idom, rpoIndex, pr, newIdom)
				}
			}
			if newIdom == -1 {
				continue
			}
			if old, ok := idom[id]; !ok || old != newIdom {
				idom[id] = newIdom
				changed = true
			}
		}
	}
	for id, d := range idom {
		if id == p.Entry {
			g.idom[id] = -1
		} else {
			g.idom[id] = d
		}
	}

	dominates := func(a, b int) bool {
		// Does a dominate b?
		for x := b; ; {
			if x == a {
				return true
			}
			d, ok := idom[x]
			if !ok || d == x {
				return a == x
			}
			x = d
		}
	}

	// Reducibility: every retreating edge must be a back edge (target
	// dominates source).
	for e := range retreat {
		if !dominates(e[1], e[0]) {
			return fmt.Errorf("cfg: procedure %q is irreducible (retreating edge %d->%d)",
				p.Name, e[0], e[1])
		}
	}

	// Natural loops from back edges; merge loops sharing a header.
	loopsByHeader := map[int]*Loop{}
	for e := range retreat {
		latch, header := e[0], e[1]
		loop := loopsByHeader[header]
		if loop == nil {
			loop = &Loop{Header: header, Body: map[int]bool{header: true}}
			loopsByHeader[header] = loop
		}
		loop.Latches = append(loop.Latches, latch)
		// Nodes that reach the latch without passing the header.
		work := []int{latch}
		for len(work) > 0 {
			id := work[len(work)-1]
			work = work[:len(work)-1]
			if loop.Body[id] {
				continue
			}
			loop.Body[id] = true
			for _, pe := range g.IntraPreds(id) {
				if !loop.Body[pe.To] {
					work = append(work, pe.To)
				}
			}
		}
	}

	var loops []*Loop
	for _, l := range loopsByHeader {
		sort.Ints(l.Latches)
		loops = append(loops, l)
	}
	// Sort by body size descending so parents come before children.
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Body) != len(loops[j].Body) {
			return len(loops[i].Body) > len(loops[j].Body)
		}
		return loops[i].Header < loops[j].Header
	})
	for i, l := range loops {
		// Parent: smallest enclosing earlier loop.
		for j := i - 1; j >= 0; j-- {
			if loops[j].Body[l.Header] && loops[j] != l {
				if l.Parent == nil || len(loops[j].Body) < len(l.Parent.Body) {
					l.Parent = loops[j]
				}
			}
		}
		if l.Parent != nil {
			l.Parent.Children = append(l.Parent.Children, l)
		}
	}
	// Exits.
	for _, l := range loops {
		for id := range l.Body {
			for _, e := range g.IntraSuccs(id) {
				if !l.Body[e.To] {
					l.Exits = append(l.Exits, Edge{To: e.To, Kind: e.Kind, Site: e.Site})
				}
			}
		}
	}
	p.Loops = loops

	// Innermost loop per node.
	for _, l := range loops {
		for id := range l.Body {
			cur := g.loopOf[id]
			if cur == nil || len(l.Body) < len(cur.Body) {
				g.loopOf[id] = l
			}
		}
	}
	return nil
}

func (g *Graph) intersect(idom map[int]int, rpoIndex map[int]int, a, b int) int {
	for a != b {
		for rpoIndex[a] > rpoIndex[b] {
			a = idom[a]
		}
		for rpoIndex[b] > rpoIndex[a] {
			b = idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of a node (-1 for procedure
// entries).
func (g *Graph) Idom(id int) int { return g.idom[id] }

// InnermostLoop returns the innermost natural loop containing the node,
// or nil.
func (g *Graph) InnermostLoop(id int) *Loop { return g.loopOf[id] }

// LoopCounts returns (total, inner) loop counts over the whole program,
// matching the "Loops (Inner loops)" row of Figure 9 where the
// parenthesized number counts loops nested inside another loop.
func (g *Graph) LoopCounts() (total, inner int) {
	for _, p := range g.Procs {
		for _, l := range p.Loops {
			total++
			if l.Parent != nil {
				inner++
			}
		}
	}
	return
}

// BranchCount counts conditional branch instructions (Figure 9's
// "Branches" row counts branch instructions in the original code).
func (g *Graph) BranchCount() int {
	n := 0
	for _, node := range g.Nodes {
		if node.Replica {
			continue
		}
		if br, ok := node.Insn.Branch(); ok && br.Cond != rtl.CondAlways {
			n++
		}
	}
	return n
}

// CallCounts returns (total, trusted) call-site counts.
func (g *Graph) CallCounts() (total, trusted int) {
	for _, site := range g.Sites {
		total++
		if site.Callee < 0 {
			trusted++
		}
	}
	return
}

// ProcOf returns the procedure a node belongs to.
func (g *Graph) ProcOf(id int) *Proc { return g.Procs[g.Nodes[id].Proc] }

// SiteByReturn finds the call site whose return point is the given node.
func (g *Graph) SiteByReturn(id int) *CallSite {
	for _, s := range g.Sites {
		if s.Return == id {
			return s
		}
	}
	return nil
}
