// Package progs contains the thirteen evaluation programs of Figure 9 of
// "Safety Checking of Machine Code", rewritten in SPARC V8 assembly in
// the style gcc -O (2.7.x) emits, together with their host-typestate
// specifications, safety policies, and invocation specifications. Each
// program records the paper's Figure 9 row so the benchmark harness can
// print paper-vs-measured tables (see EXPERIMENTS.md).
package progs

import (
	"fmt"
	"sort"
	"sync"

	"mcsafe/internal/core"
	"mcsafe/internal/isa"
	"mcsafe/internal/policy"
	"mcsafe/internal/sparc"
)

// PaperRow is one column of Figure 9: the program characteristics and
// the checking times (in seconds, on a 440 MHz Sun Ultra 10).
type PaperRow struct {
	Instructions int
	Branches     int
	Loops        int
	InnerLoops   int
	Calls        int
	TrustedCalls int
	GlobalConds  int

	TypestateSec  float64
	AnnotLocalSec float64
	GlobalSec     float64
	TotalSec      float64
}

// Benchmark is one evaluation program.
type Benchmark struct {
	Name  string
	Descr string
	// Source is SPARC assembly; Spec the policy text; Entry the entry
	// label.
	Source string
	Spec   string
	Entry  string
	// WantSafe is the expected verdict; WantViolations lists substrings
	// that must appear among the violations when unsafe. WantCodes lists
	// stable violation codes (annotate.Code*) that must be charged — the
	// machine-readable counterpart tools should prefer.
	WantSafe       bool
	WantViolations []string
	WantCodes      []string
	Paper          PaperRow
}

// Build assembles the program and parses its specification.
func (b *Benchmark) Build() (*isa.Program, *policy.Spec, error) {
	spec, err := policy.Parse(b.Spec, sparc.Arch)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %v", b.Name, err)
	}
	prog, err := sparc.Arch.Assemble(b.Source, isa.AsmOptions{
		DataSyms: spec.DataSyms(),
		Entry:    b.Entry,
		Externs:  spec.TrustedNames(),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %v", b.Name, err)
	}
	return prog, spec, nil
}

// BuildNative assembles the program into its native SPARC container —
// for the differential-test oracle, which drives the SPARC machine model
// directly (sparc.ToISA lifts the result for the neutral pipeline).
func (b *Benchmark) BuildNative() (*sparc.Program, *policy.Spec, error) {
	spec, err := policy.Parse(b.Spec, sparc.Arch)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %v", b.Name, err)
	}
	prog, err := sparc.Assemble(b.Source, sparc.AsmOptions{
		DataSyms: spec.DataSyms(),
		Entry:    b.Entry,
		Externs:  spec.TrustedNames(),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %v", b.Name, err)
	}
	return prog, spec, nil
}

// Check runs the five-phase checker on the benchmark.
func (b *Benchmark) Check(opts core.Options) (*core.Result, error) {
	prog, spec, err := b.Build()
	if err != nil {
		return nil, err
	}
	return core.Check(prog, spec, opts)
}

// All returns the thirteen Figure 9 programs in the paper's column
// order — the order of the paper's table, kept for the benchmark
// harness's paper-vs-measured rows. Enumeration that must be stable
// across runs and shards (listings, shard assignment, reports) should
// use Names or Sorted instead.
func All() []*Benchmark {
	return []*Benchmark{
		Sum(), PagingPolicy(), StartTimer(), Hash(), BubbleSort(),
		StopTimer(), Btree(), Btree2(), HeapSort2(), HeapSort(),
		JPVM(), StackSmashing(), MD5(),
	}
}

// registry is the name index over All(), built once. Registration is
// validated on first use: a duplicated benchmark name panics instead of
// silently shadowing an entry.
var registry struct {
	once   sync.Once
	byName map[string]*Benchmark
	names  []string
}

func ensureRegistry() {
	registry.once.Do(func() {
		registry.byName = make(map[string]*Benchmark)
		for _, b := range All() {
			if _, dup := registry.byName[b.Name]; dup {
				panic("progs: duplicate benchmark name " + b.Name)
			}
			registry.byName[b.Name] = b
			registry.names = append(registry.names, b.Name)
		}
		sort.Strings(registry.names)
	})
}

// Names returns the benchmark names in sorted order: the stable
// iteration order for listings, shard assignment, and reports.
func Names() []string {
	ensureRegistry()
	return append([]string(nil), registry.names...)
}

// Sorted returns the benchmarks in sorted-name order.
func Sorted() []*Benchmark {
	ensureRegistry()
	out := make([]*Benchmark, 0, len(registry.names))
	for _, name := range registry.names {
		out = append(out, registry.byName[name])
	}
	return out
}

// Get returns a benchmark by name, or nil.
func Get(name string) *Benchmark {
	ensureRegistry()
	return registry.byName[name]
}
