package progs

import (
	"strings"
	"testing"

	"mcsafe/internal/core"
)

// TestAllBenchmarks checks every Figure 9 program end to end: the safe
// programs must verify cleanly, and the two buggy programs must produce
// the violations the paper reports.
func TestAllBenchmarks(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, err := b.Check(core.Options{})
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			if b.WantSafe {
				for _, v := range res.Violations {
					t.Errorf("%s: unexpected violation: %v", b.Name, v)
				}
				if !res.Safe {
					t.Fatalf("%s should be safe", b.Name)
				}
				return
			}
			if res.Safe {
				t.Fatalf("%s should be rejected", b.Name)
			}
			for _, want := range b.WantViolations {
				found := false
				for _, v := range res.Violations {
					if strings.Contains(v.Desc, want) {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: no violation matching %q in %+v", b.Name, want, res.Violations)
				}
			}
			for _, want := range b.WantCodes {
				found := false
				for _, v := range res.Violations {
					if v.Code == want {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: no violation with code %q in %+v", b.Name, want, res.Violations)
				}
			}
			for _, v := range res.Violations {
				if v.Code == "" {
					t.Errorf("%s: violation without a code: %+v", b.Name, v)
				}
			}
		})
	}
}

// TestCharacteristicsShape sanity-checks each program's structure against
// the paper's Figure 9 row: loop and call counts must match exactly;
// instruction and branch counts must be in the same ballpark (EXPERIMENTS
// records exact numbers).
func TestCharacteristicsShape(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			res, err := b.Check(core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if abs(st.Loops-b.Paper.Loops) > 2 || abs(st.InnerLoops-b.Paper.InnerLoops) > 2 {
				t.Errorf("loops = %d(%d), paper %d(%d)",
					st.Loops, st.InnerLoops, b.Paper.Loops, b.Paper.InnerLoops)
			}
			if abs(st.Calls-b.Paper.Calls) > 2 {
				t.Errorf("calls = %d, paper %d", st.Calls, b.Paper.Calls)
			}
			lo, hi := b.Paper.Instructions/2, b.Paper.Instructions*2
			if st.Instructions < lo || st.Instructions > hi {
				t.Errorf("instructions = %d, paper %d (outside 2x band)",
					st.Instructions, b.Paper.Instructions)
			}
		})
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
