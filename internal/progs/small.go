package progs

// Sum is the running example of Figures 1-3, 6, and 8: summing the
// elements of an integer array. Verifying the array bounds inside the
// loop requires synthesizing the invariant %g3 < n ∧ %o1 = n
// (Section 5.2.2).
func Sum() *Benchmark {
	return &Benchmark{
		Name:  "Sum",
		Descr: "array summation (the paper's running example, Figure 1)",
		Entry: "",
		Source: `
1:  mov %o0,%o2      ! move %o0 into %o2
2:  clr %o0          ! set %o0 to zero
3:  cmp %o0,%o1      ! compare %o0 and %o1
4:  bge 12           ! branch to 12 if %o0 >= %o1
5:  clr %g3          ! set %g3 to zero
6:  sll %g3,2,%g2    ! %g2 = 4 x %g3
7:  ld [%o2+%g2],%g2 ! load from address %o2+%g2
8:  inc %g3          ! %g3 = %g3 + 1
9:  cmp %g3,%o1      ! compare %g3 and %o1
10: bl 6             ! branch to 6 if %g3 < %o1
11: add %o0,%g2,%o0  ! %o0 = %o0 + %g2
12: retl
13: nop
`,
		Spec: `
# Figure 1 host typestate, safety policy, and invocation specification.
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 13, Branches: 2, Loops: 1, InnerLoops: 0,
			Calls: 0, GlobalConds: 4,
			TypestateSec: 0.01, AnnotLocalSec: 0.001, GlobalSec: 0.05, TotalSec: 0.06,
		},
	}
}

// PagingPolicy is the kernel extension implementing a page-replacement
// policy (Section 6): it scans the host's list of page frames for an
// unreferenced victim. The checker finds the safety violation the paper
// reports — the extension dereferences a pointer that could be null.
func PagingPolicy() *Benchmark {
	return &Benchmark{
		Name:  "PagingPolicy",
		Descr: "kernel page-replacement policy extension (null-deref bug)",
		Entry: "policy",
		Source: `
policy:
	mov %o0,%o3        ! head of the frame list
	clr %o4            ! pass counter
outer:
	mov %o3,%o1        ! cur = head
scan:
	ld [%o1+4],%o2     ! cur->refbit   (cur could be null: BUG)
	cmp %o2,%g0
	be found           ! refbit clear: victim found
	nop
	ld [%o1+8],%o1     ! cur = cur->next
	cmp %o1,%g0
	bne scan
	nop
	inc %o4            ! end of list: start another pass
	cmp %o4,2
	bl outer
	nop
	mov -1,%o0         ! no victim
	retl
	nop
found:
	ld [%o1+0],%o0     ! victim page-frame number
	retl
	nop
`,
		Spec: `
struct frame { pfn int ; refbit int ; next ptr<frame> }
region H
loc fr frame region H summary fields(pfn=init, refbit=init, next={fr,null})
val head ptr<frame> state {fr,null} region H
invoke %o0 = head
allow H frame.pfn ro
allow H frame.refbit ro
allow H frame.next rfo
allow H ptr<frame> rfo
`,
		WantSafe:       false,
		WantViolations: []string{"null"},
		WantCodes:      []string{"nullptr"},
		Paper: PaperRow{
			Instructions: 20, Branches: 5, Loops: 2, InnerLoops: 1,
			Calls: 0, GlobalConds: 9,
			TypestateSec: 0.06, AnnotLocalSec: 0.003, GlobalSec: 0.41, TotalSec: 0.47,
		},
	}
}

// StartTimer is the start-timer routine from Paradyn's
// performance-instrumentation suite (Section 6): it reads host timer
// state, fetches the current time through a trusted host function, and
// updates the timer fields.
func StartTimer() *Benchmark {
	return &Benchmark{
		Name:  "StartTimer",
		Descr: "Paradyn performance-instrumentation start-timer",
		Entry: "starttimer",
		Source: `
starttimer:
	save %sp,-96,%sp   ! non-leaf: calls gettime
	mov %i0,%g6        ! keep the timer pointer across the call
	ld [%g6+0],%g1     ! tmr->active
	cmp %g1,%g0
	bne bump           ! already running: just bump the nest count
	nop
	call gettime       ! current time (trusted host function)
	nop
	st %o0,[%g6+4]     ! tmr->start = now
	ld [%g6+16],%g4    ! tmr->events
	add %g4,1,%g4
	st %g4,[%g6+16]
bump:
	ld [%g6+0],%g2     ! tmr->active
	add %g2,1,%g2
	st %g2,[%g6+0]     ! tmr->active++
	ld [%g6+8],%g3     ! tmr->count
	add %g3,1,%g3
	st %g3,[%g6+8]     ! tmr->count++
	ret
	restore
`,
		Spec: `
struct timer { active int ; start int ; count int ; total int ; events int }
region H
loc tmr timer region H fields(active=init, start=init, count=init, total=init, events=init)
val tp ptr<timer> state {tmr} region H
invoke %o0 = tp
allow H timer.active rwo
allow H timer.start rwo
allow H timer.count rwo
allow H timer.total rwo
allow H timer.events rwo
allow H ptr<timer> rfo
trusted gettime args 0
  ret int init perm o
  post %o0 >= 0
end
`,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 22, Branches: 1, Loops: 0, InnerLoops: 0,
			Calls: 1, TrustedCalls: 1, GlobalConds: 13,
			TypestateSec: 0.02, AnnotLocalSec: 0.004, GlobalSec: 0.06, TotalSec: 0.08,
		},
	}
}

// StopTimer is the matching stop-timer routine: two trusted calls, a
// sanity branch for non-monotone clocks, and a host-data invariant
// (val(tmr.count) >= 0) used to discharge the log function's
// precondition.
func StopTimer() *Benchmark {
	return &Benchmark{
		Name:  "StopTimer",
		Descr: "Paradyn performance-instrumentation stop-timer",
		Entry: "stoptimer",
		Source: `
stoptimer:
	save %sp,-96,%sp   ! non-leaf: calls gettime and logevent
	mov %i0,%g6
	ld [%g6+0],%g1     ! tmr->active
	cmp %g1,%g0
	ble out            ! not running
	nop
	sub %g1,1,%g1
	st %g1,[%g6+0]     ! tmr->active--
	cmp %g1,%g0
	bne out            ! still nested
	nop
	call gettime
	nop
	ld [%g6+4],%g2     ! tmr->start
	sub %o0,%g2,%g3    ! delta = now - start
	cmp %g3,%g0
	bl skip            ! clock went backwards: drop the sample
	nop
	ld [%g6+12],%g4    ! tmr->total
	add %g4,%g3,%g4
	st %g4,[%g6+12]    ! tmr->total += delta
	ld [%g6+16],%g5    ! tmr->events
	add %g5,1,%g5
	st %g5,[%g6+16]
skip:
	ld [%g6+8],%o0     ! tmr->count (host invariant: >= 0)
	call logevent      ! trusted; pre %o0 >= 0
	nop
	ld [%g6+8],%g7
	add %g7,1,%g7
	st %g7,[%g6+8]     ! tmr->count++
out:
	ret
	restore
`,
		Spec: `
struct timer { active int ; start int ; count int ; total int ; events int }
region H
loc tmr timer region H fields(active=init, start=init, count=init, total=init, events=init)
val tp ptr<timer> state {tmr} region H
constraint val(tmr.count) >= 0
invoke %o0 = tp
allow H timer.active rwo
allow H timer.start rwo
allow H timer.count rwo
allow H timer.total rwo
allow H timer.events rwo
allow H ptr<timer> rfo
trusted gettime args 0
  ret int init perm o
  post %o0 >= 0
end
trusted logevent args 1
  arg 0 int init
  pre %o0 >= 0
end
`,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 36, Branches: 3, Loops: 0, InnerLoops: 0,
			Calls: 2, TrustedCalls: 2, GlobalConds: 17,
			TypestateSec: 0.04, AnnotLocalSec: 0.005, GlobalSec: 0.08, TotalSec: 0.13,
		},
	}
}

// Hash is a hash-table lookup: the slot index is range-clamped, then a
// chain of table indices is walked with explicit guards — the loop
// invariant 0 <= h < n comes from the guards on the loaded link values.
func Hash() *Benchmark {
	return &Benchmark{
		Name:  "Hash",
		Descr: "hash-table lookup over an index-linked table",
		Entry: "hash",
		Source: `
hash:
	! %o0 = key, %o1 = n (table size), %o2 = table base (int[n])
	save %sp,-96,%sp   ! non-leaf: calls host_record
	mov %i0,%g1
	cmp %g1,%g0
	bge pos
	nop
	clr %g1            ! clamp negative keys
pos:
	cmp %g1,%i1
	bl walk
	nop
	clr %g1            ! clamp out-of-range keys
walk:
	sll %g1,2,%g2
	ld [%i2+%g2],%g3   ! link = table[h]
	cmp %g3,%i0
	be found           ! this implementation stores the key itself
	nop
	cmp %g3,%g0
	ble miss           ! zero/negative link: end of chain
	nop
	cmp %g3,%i1
	bge miss           ! out-of-range link: corrupt table, stop
	nop
	ba walk
	mov %g3,%g1        ! follow the link
found:
	mov %g1,%i0        ! return the slot (before %g1 is clobbered)
	call host_record   ! trusted: report the hit slot
	mov %g1,%o0        ! slot index (>= 0 by the walk invariant)
	ret
	restore
miss:
	mov -1,%i0
	ret
	restore
`,
		Spec: `
region V
loc slot int state init region V summary
val table int[n] state {slot} region V
sym key
constraint n >= 1
invoke %o0 = key
invoke %o1 = n
invoke %o2 = table
allow V int ro
allow V int[n] rfo
trusted host_record args 1
  arg 0 int init
  pre %o0 >= 0
end
`,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 25, Branches: 4, Loops: 1, InnerLoops: 0,
			Calls: 1, TrustedCalls: 1, GlobalConds: 14,
			TypestateSec: 0.04, AnnotLocalSec: 0.004, GlobalSec: 0.35, TotalSec: 0.39,
		},
	}
}

// BubbleSort sorts the host array in place: nested loops whose inner
// bound depends on the outer induction variable, exercising nested
// invariant synthesis (j < i and i <= n-1).
func BubbleSort() *Benchmark {
	return &Benchmark{
		Name:  "BubbleSort",
		Descr: "in-place bubble sort of a host integer array",
		Entry: "bsort",
		Source: `
bsort:
	! %o0 = arr (int[n], writable), %o1 = n
	sub %o1,1,%g1      ! i = n-1
outer:
	cmp %g1,%g0
	ble done           ! while i > 0
	nop
	clr %g2            ! j = 0
inner:
	sll %g2,2,%g3      ! 4j
	ld [%o0+%g3],%g4   ! a = arr[j]
	add %g3,4,%g5      ! 4(j+1)
	ld [%o0+%g5],%o2   ! b = arr[j+1]
	cmp %g4,%o2
	ble noswap
	nop
	st %o2,[%o0+%g3]   ! arr[j] = b
	st %g4,[%o0+%g5]   ! arr[j+1] = a
noswap:
	inc %g2
	cmp %g2,%g1
	bl inner           ! while j < i
	nop
	ba outer
	sub %g1,1,%g1      ! i--
done:
	retl
	nop
`,
		Spec: `
region V
loc e int state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int rwo
allow V int[n] rfo
`,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 25, Branches: 5, Loops: 2, InnerLoops: 1,
			Calls: 0, GlobalConds: 19,
			TypestateSec: 0.03, AnnotLocalSec: 0.002, GlobalSec: 0.45, TotalSec: 0.48,
		},
	}
}
