package progs

import (
	"fmt"
	"strings"
)

// StackSmashing reproduces the stack-smashing example of Section 6
// (example 9.b of Smith's "Stack Smashing Vulnerabilities in the UNIX
// Operating System"): a parser with a fixed-size stack buffer that copies
// attacker-controlled input without a bounds check. The checker
// identifies all the array out-of-bounds violations — the unchecked
// stores into the local buffers — while proving the rest of the
// branch-heavy validation code safe.
func StackSmashing() *Benchmark {
	var b strings.Builder
	b.WriteString(`
smash:
	save %sp,-160,%sp
	mov %i0,%l0        ! src (int[m], read-only host data)
	mov %i1,%l1        ! m = number of words in src
	add %fp,-96,%l2    ! buf  (16 words)   <- target of the overflow
	add %fp,-128,%l3   ! buf2 (8 words)
	clr %l4            ! i = 0
	! ---- loop 1: classic gets()-style copy: bounded by the INPUT
	! length only, not by the buffer size: every store can smash the
	! frame. ----
copy:
	cmp %l4,%l1
	bge copydone       ! while i < m   (no check against 16!)
	nop
	sll %l4,2,%l5
	ld [%l0+%l5],%l6   ! src[i]
	st %l6,[%l2+%l5]   ! buf[i]        <- OUT OF BOUNDS when i >= 16
	ba copy
	add %l4,1,%l4
copydone:
	! ---- loop 2: clear buf2 (safe: bounded by 8) ----
	clr %l4
clear2:
	cmp %l4,8
	bge clear2done
	nop
	sll %l4,2,%l5
	st %g0,[%l3+%l5]
	ba clear2
	add %l4,1,%l4
clear2done:
	! ---- loop 3/4: nested scan of buf for a token (safe) ----
	clr %l4            ! window start
scanout:
	cmp %l4,12
	bge scandone       ! while start < 12
	nop
	clr %l6            ! k = 0
scanin:
	cmp %l6,4
	bge scaninend      ! while k < 4
	nop
	add %l4,%l6,%l7
	sll %l7,2,%l5
	ld [%l2+%l5],%o3   ! buf[start+k]  (start+k < 16: safe)
	cmp %o3,%g0
	be scaninend
	nop
	ba scanin
	add %l6,1,%l6
scaninend:
	ba scanout
	add %l4,1,%l4
scandone:
	! ---- loop 5: checksum over the source (safe) ----
	clr %l4
	clr %l7            ! sum
csum:
	cmp %l4,%l1
	bge csumdone
	nop
	sll %l4,2,%l5
	ld [%l0+%l5],%o3
	add %l7,%o3,%l7
	ba csum
	add %l4,1,%l4
csumdone:
	mov %l7,%o0
	call checksum      ! internal helper: fold the checksum
	mov %l1,%o1
	mov %o0,%l7
	! ---- loop 6: second unchecked copy into the small buffer ----
	clr %l4
copy2:
	cmp %l4,%l1
	bge copy2done      ! while i < m   (no check against 8!)
	nop
	sll %l4,2,%l5
	ld [%l0+%l5],%o3
	st %o3,[%l3+%l5]   ! buf2[i]       <- OUT OF BOUNDS when i >= 8
	ba copy2
	add %l4,1,%l4
copy2done:
	! ---- branch-heavy command dispatch on the first word (safe) ----
	ld [%l2+0],%o4     ! buf[0]
`)
	// Generate the validation chain: ~60 compare-and-dispatch cases, the
	// kind of code a hand-written protocol parser produces. Each case
	// adjusts the checksum; all cases are safe.
	for i := 1; i <= 60; i++ {
		fmt.Fprintf(&b, "\tcmp %%o4,%d\n\tbne case%d\n\tnop\n\tadd %%l7,%d,%%l7\n", i, i, i)
		fmt.Fprintf(&b, "case%d:\n", i)
	}
	b.WriteString(`
	! ---- loop 7: tally vowel-coded words in buf2 (safe) ----
	clr %l4
tally:
	cmp %l4,8
	bge tallydone
	nop
	sll %l4,2,%l5
	ld [%l3+%l5],%o3
	add %l7,%o3,%l7
	ba tally
	add %l4,1,%l4
tallydone:
	call syslog        ! trusted: report what we saw
	mov %l1,%o0
	mov %l7,%i0
	ret
	restore

checksum:                  ! checksum(sum, m): fold to a small value
	cmp %o0,%g0
	bge cksgood
	nop
	sub %g0,%o0,%o0    ! abs
cksgood:
	retl
	add %o0,%o1,%o0
`)
	return &Benchmark{
		Name:   "Stack-smashing",
		Descr:  "protocol parser overflowing its stack buffers (Smith 9.b)",
		Entry:  "smash",
		Source: b.String(),
		Spec: `
region V
loc w int state init region V summary
val src int[m] state {w} region V
sym m
constraint m >= 1
invoke %o0 = src
invoke %o1 = m
allow V int ro
allow V int[m] rfo
frame smash size 160
  slot fp-96 int[16] name buf state init
  slot fp-128 int[8] name buf2 state init
end
trusted syslog args 1
  arg 0 int init
end
`,
		WantSafe:       false,
		WantViolations: []string{"upper bound"},
		WantCodes:      []string{"oob"},
		Paper: PaperRow{
			Instructions: 309, Branches: 89, Loops: 7, InnerLoops: 1,
			Calls: 2, TrustedCalls: 1, GlobalConds: 162,
			TypestateSec: 1.42, AnnotLocalSec: 0.031, GlobalSec: 10.15, TotalSec: 11.60,
		},
	}
}
