package progs

import (
	"fmt"
	"strings"
)

// md5S are the per-round rotate amounts of RFC 1321.
var md5S = [4][4]int{
	{7, 12, 17, 22},
	{5, 9, 14, 20},
	{4, 11, 16, 23},
	{6, 10, 15, 21},
}

// md5K are the first sixteen sine-table constants (the generator cycles
// them; the checker only cares that they are large opaque constants).
var md5K = []uint32{
	0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee,
	0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
	0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
	0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
}

// md5X is the message-word schedule: index of the block word used in
// round r, step s.
func md5X(r, s int) int {
	switch r {
	case 0:
		return s
	case 1:
		return (1 + 5*s) % 16
	case 2:
		return (5 + 3*s) % 16
	}
	return (7 * s) % 16
}

// MD5 models MD5Update of RFC 1321 (Section 6's largest example): the
// driver slices the input into 16-word blocks, copies each into the
// context's block buffer, and runs the 64-step compression function —
// a procedure of several hundred straight-line instructions whose every
// memory access the checker must clear.
func MD5() *Benchmark {
	var b strings.Builder
	b.WriteString(`
md5update:
	save %sp,-96,%sp
	mov %i0,%l0        ! ctx (struct: a,b,c,d,count)
	mov %i1,%l1        ! block buffer base (int[16], read-write)
	mov %i2,%l2        ! input (int[m], read-only)
	mov %i3,%l3        ! m = input length in words
	! ---- preliminary sanity scan: blocks x words (nested, safe) ----
	clr %l4            ! pos = 0
vblock:
	add %l4,16,%l5
	cmp %l5,%l3
	bg vdone           ! while pos+16 <= m
	nop
	clr %l6            ! j = 0
vword:
	cmp %l6,16
	bge vwend          ! while j < 16
	nop
	add %l4,%l6,%l7
	sll %l7,2,%o5
	ld [%l2+%o5],%o4   ! input[pos+j]
	cmp %o4,%g0
	bne vnext
	nop
vnext:
	ba vword
	add %l6,1,%l6
vwend:
	ba vblock
	add %l4,16,%l4
vdone:
	! ---- main loop: fill one 16-word block (zero-padding once the
	! input is exhausted mid-block) and compress it ----
	clr %l4            ! pos = 0
mblock:
	cmp %l4,%l3
	bge mdone          ! while pos < m
	nop
	clr %l6            ! j = 0
mfill:
	cmp %l6,16
	bge mgo            ! block full
	nop
	clr %o4            ! v = 0 (padding)
	cmp %l4,%l3
	bge mpad           ! input exhausted: pad
	nop
	sll %l4,2,%o5
	ld [%l2+%o5],%o4   ! v = input[pos]
	add %l4,1,%l4
mpad:
	sll %l6,2,%o5
	st %o4,[%l1+%o5]   ! block[j] = v
	ba mfill
	add %l6,1,%l6
mgo:
	mov %l0,%o0
	call md5transform  ! compress the block
	mov %l1,%o1
	mov %l0,%o0
	call ctxcount      ! count += 16 words
	mov 16,%o1
	ba mblock
	nop
mdone:
	call host_note     ! trusted: input consumed
	mov %l4,%o0
	! ---- epilogue: length block (constant-index stores) + final
	! compression ----
	clr %l6
efin:
	cmp %l6,16
	bge edone          ! zero the block
	nop
	sll %l6,2,%o5
	st %g0,[%l1+%o5]
	ba efin
	add %l6,1,%l6
edone:
	mov %l0,%o0
	call md5transform  ! compress the length block
	mov %l1,%o1
	mov %l0,%o0
	call ctxcount
	mov 16,%o1
	call host_note     ! trusted: done
	mov %l3,%o0
	ret
	restore

ctxcount:                  ! ctx->count += delta
	ld [%o0+16],%o2
	add %o2,%o1,%o2
	st %o2,[%o0+16]
	retl
	nop

md5transform:              ! md5transform(ctx, block)
	save %sp,-96,%sp
	ld [%i0+0],%l0     ! a = ctx->a
	ld [%i0+4],%l1     ! b
	ld [%i0+8],%l2     ! c
	ld [%i0+12],%l3    ! d
`)
	// 64 steps; the (a,b,c,d) roles rotate each step.
	regs := []string{"%l0", "%l1", "%l2", "%l3"}
	for r := 0; r < 4; r++ {
		for s := 0; s < 16; s++ {
			step := r*16 + s
			a := regs[(64-step)%4]
			bb := regs[(65-step)%4]
			c := regs[(66-step)%4]
			d := regs[(67-step)%4]
			x := md5X(r, s)
			k := md5K[step%16]
			rot := md5S[r][s%4]
			fmt.Fprintf(&b, "\t! step %d: %s += F(%s,%s,%s) + X[%d] + K, rotate %d\n",
				step, a, bb, c, d, x, rot)
			fmt.Fprintf(&b, "\txor %s,%s,%%o2\n", c, d)
			fmt.Fprintf(&b, "\tand %%o2,%s,%%o2\n", bb)
			fmt.Fprintf(&b, "\txor %%o2,%s,%%o2\n", d)
			fmt.Fprintf(&b, "\tld [%%i1+%d],%%o3\n", 4*x)
			fmt.Fprintf(&b, "\tadd %s,%%o2,%s\n", a, a)
			fmt.Fprintf(&b, "\tadd %s,%%o3,%s\n", a, a)
			fmt.Fprintf(&b, "\tset 0x%x,%%o4\n", k)
			fmt.Fprintf(&b, "\tadd %s,%%o4,%s\n", a, a)
			fmt.Fprintf(&b, "\tsll %s,%d,%%o2\n", a, rot)
			fmt.Fprintf(&b, "\tsrl %s,%d,%%o3\n", a, 32-rot)
			fmt.Fprintf(&b, "\tor %%o2,%%o3,%s\n", a)
			fmt.Fprintf(&b, "\tadd %s,%s,%s\n", a, bb, a)
		}
	}
	b.WriteString(`
	ld [%i0+0],%o0     ! fold the new state back into the context
	add %o0,%l0,%o0
	st %o0,[%i0+0]
	ld [%i0+4],%o0
	add %o0,%l1,%o0
	st %o0,[%i0+4]
	ld [%i0+8],%o0
	add %o0,%l2,%o0
	st %o0,[%i0+8]
	ld [%i0+12],%o0
	add %o0,%l3,%o0
	st %o0,[%i0+12]
	ret
	restore
`)
	return &Benchmark{
		Name:   "MD5",
		Descr:  "MD5Update and the 64-step compression function (RFC 1321)",
		Entry:  "md5update",
		Source: b.String(),
		Spec: `
struct md5ctx { a int ; b int ; c int ; d int ; count int }
region H
loc ctx md5ctx region H fields(a=init, b=init, c=init, d=init, count=init)
val ctxp ptr<md5ctx> state {ctx} region H
loc blk int state init region H summary
val blkp int[16] state {blk} region H
loc w int state init region H summary
val input int[m] state {w} region H
sym m
constraint m >= 0
invoke %o0 = ctxp
invoke %o1 = blkp
invoke %o2 = input
invoke %o3 = m
allow H md5ctx.a rwo
allow H md5ctx.b rwo
allow H md5ctx.c rwo
allow H md5ctx.d rwo
allow H md5ctx.count rwo
allow H ptr<md5ctx> rfo
allow H int[16] rfo
allow H int[m] rfo
allow H int rwo
trusted host_note args 1
  arg 0 int init
end
`,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 883, Branches: 11, Loops: 5, InnerLoops: 2,
			Calls: 6, GlobalConds: 135,
			TypestateSec: 6.82, AnnotLocalSec: 0.087, GlobalSec: 7.04, TotalSec: 13.95,
		},
	}
}
