package progs

// Structural invariants checked across the whole Figure 9 corpus: the
// CFG analyses (RPO, dominators, loops, window depths) must satisfy
// their defining properties on every program, and every program must
// survive an assemble -> encode -> decode round trip bit-for-bit.

import (
	"testing"

	"mcsafe/internal/cfg"
	"mcsafe/internal/isa"
	"mcsafe/internal/sparc"
)

func buildGraph(t *testing.T, b *Benchmark) (*isa.Program, *cfg.Graph) {
	t.Helper()
	prog, spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog, cfg.Options{TrustedFuncs: spec.TrustedNames()})
	if err != nil {
		t.Fatal(err)
	}
	return prog, g
}

// TestCorpusRoundTrip: every benchmark's words decode back to the same
// instructions and re-encode to the same words.
func TestCorpusRoundTrip(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			prog, _, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range prog.Words {
				insn, err := sparc.Decode(w)
				if err != nil {
					t.Fatalf("word %d: %v", i, err)
				}
				w2, err := sparc.Encode(insn)
				if err != nil {
					t.Fatalf("re-encode %d: %v", i, err)
				}
				if w2 != w {
					t.Fatalf("word %d: %08x -> %08x", i, w, w2)
				}
			}
		})
	}
}

// TestCorpusRPOProperty: within each procedure's intraprocedural view,
// every non-back edge goes forward in RPO and every back edge targets a
// dominator.
func TestCorpusRPOProperty(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, g := buildGraph(t, b)
			for _, p := range g.Procs {
				pos := map[int]int{}
				for i, id := range p.RPO {
					pos[id] = i
				}
				for _, id := range p.RPO {
					for _, e := range g.IntraSuccs(id) {
						toPos, ok := pos[e.To]
						if !ok {
							continue // unreachable successor
						}
						if toPos > pos[id] {
							continue // forward edge
						}
						// Retreating edge: must be a back edge, i.e. its
						// target is a loop header whose body contains the
						// source.
						found := false
						for _, l := range p.Loops {
							if l.Header == e.To && l.Contains(id) {
								found = true
							}
						}
						if !found {
							t.Errorf("%s/%s: retreating edge %d->%d not a back edge",
								b.Name, p.Name, id, e.To)
						}
					}
				}
			}
		})
	}
}

// TestCorpusDominatorProperty: each node's idom is distinct from it and
// the idom chain reaches the procedure entry.
func TestCorpusDominatorProperty(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, g := buildGraph(t, b)
			for _, p := range g.Procs {
				for _, id := range p.RPO {
					if id == p.Entry {
						continue
					}
					steps := 0
					for x := id; x != p.Entry; x = g.Idom(x) {
						if g.Idom(x) == x || g.Idom(x) < 0 {
							t.Fatalf("%s/%s: idom chain of %d broken at %d",
								b.Name, p.Name, id, x)
						}
						if steps++; steps > len(g.Nodes) {
							t.Fatalf("%s/%s: idom chain of %d cyclic", b.Name, p.Name, id)
						}
					}
				}
			}
		})
	}
}

// TestCorpusLoopProperty: loop headers dominate their latches, and every
// latch is in the body.
func TestCorpusLoopProperty(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, g := buildGraph(t, b)
			for _, p := range g.Procs {
				for _, l := range p.Loops {
					for _, latch := range l.Latches {
						if !l.Contains(latch) {
							t.Errorf("%s/%s: latch %d outside its loop", b.Name, p.Name, latch)
						}
						dominated := false
						steps := 0
						for x := latch; steps <= len(g.Nodes); x = g.Idom(x) {
							if x == l.Header {
								dominated = true
								break
							}
							if g.Idom(x) < 0 {
								break
							}
							steps++
						}
						if !dominated {
							t.Errorf("%s/%s: header %d does not dominate latch %d",
								b.Name, p.Name, l.Header, latch)
						}
					}
					if l.Parent != nil && !l.Parent.Contains(l.Header) {
						t.Errorf("%s/%s: nested loop header outside parent", b.Name, p.Name)
					}
				}
			}
		})
	}
}

// TestCorpusWindowDepths: depths are consistent (save/restore balanced)
// and nonnegative everywhere.
func TestCorpusWindowDepths(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			_, g := buildGraph(t, b)
			for _, n := range g.Nodes {
				if n.Depth < 0 {
					t.Errorf("%s: node %d has negative window depth", b.Name, n.ID)
				}
			}
			// Return points resume at their call site's depth.
			for _, site := range g.Sites {
				if site.Return < 0 {
					continue
				}
				if g.Nodes[site.Return].Depth != g.Nodes[site.CallNode].Depth {
					t.Errorf("%s: call/return depth mismatch at site %d", b.Name, site.ID)
				}
			}
		})
	}
}

// TestCorpusDisassembles: the disassembler renders every program without
// panicking and mentions every label.
func TestCorpusDisassembles(t *testing.T) {
	for _, b := range All() {
		prog, _, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if len(prog.Disassemble()) == 0 {
			t.Errorf("%s: empty disassembly", b.Name)
		}
	}
}
