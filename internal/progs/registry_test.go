package progs

import (
	"sort"
	"testing"
)

// TestRegistryStable pins the corpus-registration contracts: Names is
// sorted and complete, Sorted aligns with it, Get resolves every
// benchmark, and All keeps the paper's column order for the Figure 9
// tables. Stable (sorted) iteration is what makes shard assignment and
// diff reports deterministic across runs.
func TestRegistryStable(t *testing.T) {
	all := All()
	names := Names()
	if len(names) != len(all) {
		t.Fatalf("Names has %d entries, All has %d", len(names), len(all))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	sorted := Sorted()
	for i, b := range sorted {
		if b.Name != names[i] {
			t.Fatalf("Sorted[%d] = %s, want %s", i, b.Name, names[i])
		}
		if Get(b.Name) != b {
			t.Fatalf("Get(%s) does not resolve to the registry entry", b.Name)
		}
	}
	if Get("no-such-benchmark") != nil {
		t.Fatal("Get on an unknown name must return nil")
	}
	if all[0].Name != "Sum" || all[len(all)-1].Name != "MD5" {
		t.Fatalf("All order changed: %s .. %s (must stay the paper's column order)",
			all[0].Name, all[len(all)-1].Name)
	}
	// Two calls agree element-wise (no hidden map iteration anywhere).
	again := Names()
	for i := range names {
		if names[i] != again[i] {
			t.Fatal("Names is not stable across calls")
		}
	}
}
