package progs

// Tests for the qualitative observations of Section 6 of the paper, and
// for the limitations Section 8 admits: those must reproduce too — a
// reproduction that silently *fixes* the paper's documented imprecision
// would not be checking the same analysis.

import (
	"strings"
	"testing"

	"mcsafe/internal/annotate"
	"mcsafe/internal/core"
	"mcsafe/internal/isa"
	"mcsafe/internal/policy"
	"mcsafe/internal/sparc"
)

// TestInterproceduralFasterThanInlined reproduces the Section 6
// observation: "verifying an interprocedural version of an untrusted
// program can take less time than verifying a manually inlined version
// because the manually inlined version replicates the callee functions
// and the global conditions in the callee functions."
func TestInterproceduralFasterThanInlined(t *testing.T) {
	inlined, err := HeapSort().Check(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	interproc, err := HeapSort2().Check(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !inlined.Safe || !interproc.Safe {
		t.Fatal("both heap sorts must verify")
	}
	// The inlined version has more global conditions (the replication
	// the paper describes)...
	if inlined.Stats.GlobalConds <= interproc.Stats.GlobalConds {
		t.Errorf("inlined conditions (%d) should exceed interprocedural (%d)",
			inlined.Stats.GlobalConds, interproc.Stats.GlobalConds)
	}
	// ... and takes longer to verify globally (generous 1.2x margin to
	// keep the test robust on noisy machines; the observed ratio is ~2x).
	if float64(inlined.Times.Global) < 1.2*float64(interproc.Times.Global) {
		t.Errorf("inlined global verification (%v) should exceed interprocedural (%v)",
			inlined.Times.Global, interproc.Times.Global)
	}
}

// TestWeakUpdateFalsePositive reproduces the jPVM imprecision of
// Section 6: "our analysis reported that some actual parameters to the
// host methods and functions are undefined in the jPVM example, when
// they were in fact defined" — a store into a summary location is a weak
// update, so the meet with the old (uninitialized) state cannot prove
// definedness.
func TestWeakUpdateFalsePositive(t *testing.T) {
	asm := `
main:
	mov 7,%o1
	st %o1,[%o0+0]     ! slot->arg = 7 (weak: slot is a summary)
	ld [%o0+0],%o0     ! read it back...
	call host_use      ! ... and pass it to the host
	nop
	retl
	nop
host_use:
`
	spec := `
struct slot { arg int }
region H
loc s slot region H summary fields(arg=uninit)
val sp ptr<slot> state {s} region H
invoke %o0 = sp
allow H slot.arg rwo
allow H ptr<slot> rfo
trusted host_use args 1
  arg 0 int init
end
`
	s, err := policy.Parse(spec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sparc.Arch.Assemble(asm, isa.AsmOptions{Entry: "main", Externs: s.TrustedNames()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Check(prog, s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe {
		t.Fatal("the weak-update imprecision should reproduce (a false positive)")
	}
	found := false
	for _, v := range res.Violations {
		if v.Code == annotate.CodeUninit || v.Code == annotate.CodePrecond {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an initializedness complaint (code %q or %q): %+v",
			annotate.CodeUninit, annotate.CodePrecond, res.Violations)
	}

	// The same program against a NON-summary slot verifies: the store
	// is a strong update.
	strongSpec := strings.Replace(spec, "region H summary fields", "region H fields", 1)
	s2, err := policy.Parse(strongSpec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := sparc.Arch.Assemble(asm, isa.AsmOptions{Entry: "main", Externs: s2.TrustedNames()})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.Check(prog2, s2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Safe {
		t.Fatalf("strong update should verify: %+v", res2.Violations)
	}
}

// TestSingleUsageFlowSensitivity demonstrates the Section 4.2.1 point:
// "typestate checking allows an instruction such as add %o0,%g2,%o0 to
// be resolved as a pointer indirection at one occurrence of the
// instruction, but as an array-index calculation at a different
// occurrence" — the same opcode pattern resolves per occurrence.
func TestSingleUsageFlowSensitivity(t *testing.T) {
	asm := `
main:
	add %o0,%o1,%o2    ! occurrence 1: array-index calculation
	add %o1,%o1,%o3    ! occurrence 2: scalar addition
	ld [%o2],%o4       ! use the computed element pointer
	retl
	nop
`
	spec := `
region V
loc e int state init region V summary
val arr int[n] state {e} region V
sym idx
constraint n >= 2
constraint idx = 4
invoke %o0 = arr
invoke %o1 = idx
allow V int ro
allow V int[n] rfo
allow V int(n] rfo
`
	s, err := policy.Parse(spec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sparc.Arch.Assemble(asm, isa.AsmOptions{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Check(prog, s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Occurrence 1 resolves as an array-index calculation; occurrence 2
	// as a scalar op — inspect the recorded kinds.
	kinds := map[int]string{}
	for _, n := range res.G.Nodes {
		if n.Replica {
			continue
		}
		kinds[n.Index] = res.Prop.Kind[n.ID].String()
	}
	if kinds[0] != "array-index" {
		t.Errorf("occurrence 1 resolved as %q, want array-index", kinds[0])
	}
	if kinds[1] != "scalar-op" {
		t.Errorf("occurrence 2 resolved as %q, want scalar-op", kinds[1])
	}
	if !res.Safe {
		t.Errorf("the element access at idx=4 < 4n (n>=2) should verify: %+v", res.Violations)
	}
}

// TestXorTrickRejected reproduces the Section 8 limitation: "our
// analysis is not able to deal with certain unconventional usages of
// operations, such as swapping two non-integer values by means of
// exclusive or operations." The xor-swap of two pointers loses their
// typestate and the subsequent dereference is rejected.
func TestXorTrickRejected(t *testing.T) {
	asm := `
main:
	xor %o0,%o1,%o0    ! xor-swap the two pointers
	xor %o0,%o1,%o1
	xor %o0,%o1,%o0
	ld [%o0+0],%o2     ! dereference after the swap
	retl
	nop
`
	spec := `
struct cell { v int }
region H
loc a cell region H fields(v=init)
loc b cell region H fields(v=init)
val pa ptr<cell> state {a} region H
val pb ptr<cell> state {b} region H
invoke %o0 = pa
invoke %o1 = pb
allow H cell.v ro
allow H ptr<cell> rfo
`
	s, err := policy.Parse(spec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sparc.Arch.Assemble(asm, isa.AsmOptions{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Check(prog, s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe {
		t.Fatal("the xor-swap trick must be rejected (Section 8)")
	}
}

// TestRecursionRejected: Section 5.2.1 — "our present system detects and
// rejects recursive programs".
func TestRecursionRejectedEndToEnd(t *testing.T) {
	asm := `
main:
	call main
	nop
	retl
	nop
`
	s, _ := policy.Parse("sym x\ninvoke %o0 = x", sparc.Arch)
	prog, err := sparc.Arch.Assemble(asm, isa.AsmOptions{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Check(prog, s, core.Options{}); err == nil {
		t.Fatal("recursion must be rejected")
	}
}

// TestSentinelSearchUnprovable reproduces the paper's Section 8 example
// of induction-iteration incompleteness: a sequential search that relies
// on a sentinel stored at the end of the array ("the use of a sentinel
// at the end of the array to speed up a sequential search", citing
// Suzuki-Ishihata). The loop has no index guard — termination and bounds
// depend on data — so the checker must reject it even though a run with
// a proper sentinel would stay in bounds.
func TestSentinelSearchUnprovable(t *testing.T) {
	asm := `
search:
	clr %g1
loop:
	sll %g1,2,%g2
	ld [%o0+%g2],%g3   ! bounds depend on the sentinel VALUE
	cmp %g3,%o1
	bne loop
	inc %g1
	retl
	mov %g1,%o0
`
	spec := `
region V
loc e int state init region V summary
val arr int[n] state {e} region V
sym key
constraint n >= 1
invoke %o0 = arr
invoke %o1 = key
allow V int ro
allow V int[n] rfo
`
	s, err := policy.Parse(spec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sparc.Arch.Assemble(asm, isa.AsmOptions{Entry: "search"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Check(prog, s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Safe {
		t.Fatal("sentinel search must be rejected (Section 8 limitation)")
	}
	found := false
	for _, v := range res.Violations {
		if v.Code == annotate.CodeOOB && strings.Contains(v.Desc, "upper bound") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an upper-bound %q violation: %+v", annotate.CodeOOB, res.Violations)
	}
}
