package progs

// heapSpec is shared by both HeapSort variants.
const heapSpec = `
region V
loc e int state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int rwo
allow V int[n] rfo
`

// HeapSort is the manually inlined heap sort of Section 6: a build phase
// and an extraction phase, each containing an inlined sift-down loop —
// four loops, two of them inner, exactly as Figure 9 reports. The sift
// bounds (child = 2j+1 < limit <= n) exercise invariant synthesis with
// linear but non-unit-step induction variables.
func HeapSort() *Benchmark {
	return &Benchmark{
		Name:  "HeapSort",
		Descr: "heap sort, sift-down manually inlined twice",
		Entry: "hsort",
		Source: `
hsort:
	cmp %o1,1
	ble hdone          ! n <= 1: already sorted
	nop
	sub %o1,1,%g1      ! i = n-1
build:
	cmp %g1,%g0
	bl exinit          ! while i >= 0
	nop
	mov %g1,%g2        ! j = i
	mov %o1,%g4        ! limit = n
sift1:
	sll %g2,1,%g3
	add %g3,1,%g3      ! child = 2j+1
	cmp %g3,%g4
	bge sift1done      ! child >= limit
	nop
	add %g3,1,%g5      ! right = child+1
	cmp %g5,%g4
	bge nosib1         ! no right sibling
	nop
	sll %g3,2,%o2
	ld [%o0+%o2],%o3   ! a[child]
	sll %g5,2,%o2
	ld [%o0+%o2],%o4   ! a[right]
	cmp %o4,%o3
	ble nosib1
	nop
	mov %g5,%g3        ! child = right
nosib1:
	sll %g2,2,%o2
	ld [%o0+%o2],%o3   ! a[j]
	sll %g3,2,%o5
	ld [%o0+%o5],%o4   ! a[child]
	cmp %o3,%o4
	bge sift1done      ! heap property holds
	nop
	st %o4,[%o0+%o2]   ! swap a[j], a[child]
	st %o3,[%o0+%o5]
	ba sift1
	mov %g3,%g2        ! j = child
sift1done:
	ba build
	sub %g1,1,%g1      ! i--
exinit:
	sub %o1,1,%g1      ! end = n-1
extract:
	cmp %g1,1
	bl hdone           ! while end >= 1
	nop
	ld [%o0+0],%o3     ! swap a[0], a[end]
	sll %g1,2,%o2
	ld [%o0+%o2],%o4
	st %o4,[%o0+0]
	st %o3,[%o0+%o2]
	clr %g2            ! j = 0
	mov %g1,%g4        ! limit = end
sift2:
	sll %g2,1,%g3
	add %g3,1,%g3      ! child = 2j+1
	cmp %g3,%g4
	bge sift2done
	nop
	add %g3,1,%g5
	cmp %g5,%g4
	bge nosib2
	nop
	sll %g3,2,%o2
	ld [%o0+%o2],%o3
	sll %g5,2,%o2
	ld [%o0+%o2],%o4
	cmp %o4,%o3
	ble nosib2
	nop
	mov %g5,%g3
nosib2:
	sll %g2,2,%o2
	ld [%o0+%o2],%o3
	sll %g3,2,%o5
	ld [%o0+%o5],%o4
	cmp %o3,%o4
	bge sift2done
	nop
	st %o4,[%o0+%o2]
	st %o3,[%o0+%o5]
	ba sift2
	mov %g3,%g2
sift2done:
	ba extract
	sub %g1,1,%g1      ! end--
hdone:
	retl
	nop
`,
		Spec:     heapSpec,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 95, Branches: 16, Loops: 4, InnerLoops: 2,
			Calls: 0, GlobalConds: 84,
			TypestateSec: 0.08, AnnotLocalSec: 0.010, GlobalSec: 3.58, TotalSec: 3.67,
		},
	}
}

// HeapSort2 is the interprocedural version: sift-down and swap are
// separate procedures with their own register windows, and the safety
// conditions inside them are discharged at each call site. The paper
// observes this version checks FASTER than the inlined one because the
// callee's conditions are verified once rather than once per inlined
// copy.
func HeapSort2() *Benchmark {
	return &Benchmark{
		Name:  "HeapSort2",
		Descr: "heap sort with sift-down and swap as procedures",
		Entry: "hsort2",
		Source: `
hsort2:
	save %sp,-96,%sp   ! non-leaf: needs its own window and return slot
	cmp %i1,1
	ble hdone2
	nop
	mov %i0,%g6        ! arr (preserved across internal calls)
	mov %i1,%g7        ! n
	sub %g7,1,%g1      ! i = n-1
build2:
	cmp %g1,%g0
	bl exinit2         ! while i >= 0
	nop
	mov %g6,%o0
	mov %g1,%o1
	call sift          ! sift(arr, i, n)
	mov %g7,%o2
	ba build2
	sub %g1,1,%g1      ! i--
exinit2:
	sub %g7,1,%g1      ! end = n-1
extract2:
	cmp %g1,1
	bl hdone2          ! while end >= 1
	nop
	mov %g6,%o0
	clr %o1
	call swap          ! swap(arr, 0, end)
	mov %g1,%o2
	mov %g6,%o0
	clr %o1
	call sift          ! sift(arr, 0, end)
	mov %g1,%o2
	ba extract2
	sub %g1,1,%g1      ! end--
hdone2:
	ret
	restore

sift:                      ! sift(arr=%o0, j=%o1, limit=%o2)
	save %sp,-96,%sp
sloop:
	sll %i1,1,%l0
	add %l0,1,%l0      ! child = 2j+1
	cmp %l0,%i2
	bge sdone          ! child >= limit
	nop
	add %l0,1,%l1      ! right
	cmp %l1,%i2
	bge snosib
	nop
	sll %l0,2,%l2
	ld [%i0+%l2],%l3   ! a[child]
	sll %l1,2,%l2
	ld [%i0+%l2],%l4   ! a[right]
	cmp %l4,%l3
	ble snosib
	nop
	mov %l1,%l0        ! child = right
snosib:
	sll %i1,2,%l2
	ld [%i0+%l2],%l3   ! a[j]
	sll %l0,2,%l5
	ld [%i0+%l5],%l4   ! a[child]
	cmp %l3,%l4
	bge sdone
	nop
	st %l4,[%i0+%l2]
	st %l3,[%i0+%l5]
	ba sloop
	mov %l0,%i1        ! j = child
sdone:
	ret
	restore

swap:                      ! swap(arr=%o0, i=%o1, j=%o2)
	sll %o1,2,%o3
	ld [%o0+%o3],%o4   ! a[i]
	sll %o2,2,%o5
	ld [%o0+%o5],%g3   ! a[j]
	st %g3,[%o0+%o3]
	st %o4,[%o0+%o5]
	retl
	nop
`,
		Spec:     heapSpec,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 71, Branches: 9, Loops: 4, InnerLoops: 2,
			Calls: 3, GlobalConds: 56,
			TypestateSec: 0.12, AnnotLocalSec: 0.010, GlobalSec: 2.05, TotalSec: 2.18,
		},
	}
}
