package progs

// JPVM models Java_jPVM_addhosts of Section 6: a JNI native method that
// marshals a Java array of host names into PVM calls. Every interaction
// with the JVM and with PVM goes through a trusted host function with a
// declared safety pre/postcondition; the checker verifies all 21 call
// sites obey them (Section 6: "we verify that calls into JNI methods and
// PVM library functions are safe").
func JPVM() *Benchmark {
	return &Benchmark{
		Name:  "jPVM",
		Descr: "JNI native method marshalling into PVM (21 trusted calls)",
		Entry: "jpvm_addhosts",
		Source: `
jpvm_addhosts:
	save %sp,-112,%sp
	mov %i0,%l0        ! env
	mov %i1,%l1        ! hosts (object-array handle)
	mov %i2,%l2        ! infos (int-array handle)
	mov %l0,%o0
	call jni_monitorenter           ! 1
	mov %l1,%o1
	mov %l0,%o0
	call jni_getarraylength         ! 2: len = length(hosts), >= 0
	mov %l1,%o1
	mov %o0,%l3        ! len
	mov %l0,%o0
	call jni_getarraylength         ! 3: ilen = length(infos), >= 0
	mov %l2,%o1
	mov %o0,%l4        ! ilen
	cmp %l3,%g0
	ble jfinish        ! no hosts
	nop
	cmp %l4,%l3
	bl jfinish         ! infos too short for the results
	nop
	clr %l5            ! i = 0
jmarshal:
	mov %l0,%o0
	mov %l1,%o1
	call jni_getobjectarrayelement  ! 4: pre 0 <= index
	mov %l5,%o2
	cmp %o0,%g0
	be jskip           ! null element: skip it
	nop
	mov %o0,%l6        ! jstring handle
	mov %l0,%o0
	call jni_getstringutfchars      ! 5: pre string != 0
	mov %l6,%o1
	mov %o0,%l7        ! char buffer handle
	mov %l7,%o0
	call host_namecheck             ! 6: validate the name
	nop
	cmp %o0,%g0
	bl jrelease        ! invalid name
	nop
	mov %l7,%o0
	call pvm_stage_host             ! 7: queue for pvm_addhosts
	mov %l5,%o1
jrelease:
	mov %l0,%o0
	mov %l6,%o1
	call jni_releasestringutfchars  ! 8
	mov %l7,%o2
jskip:
	inc %l5
	cmp %l5,%l3
	bl jmarshal
	nop
	call pvm_addhosts               ! 9: submit the staged hosts
	mov %l3,%o0
	cmp %o0,%g0
	bl jerror
	nop
	clr %l5            ! i = 0
jresults:
	call pvm_host_status            ! 10: pre 0 <= index
	mov %l5,%o0
	mov %o0,%l6        ! status
	mov %l0,%o0
	mov %l2,%o1
	mov %l5,%o2
	call jni_setintarrayelement     ! 11: pre 0 <= index
	mov %l6,%o3
	inc %l5
	cmp %l5,%l3
	bl jresults
	nop
	clr %l5            ! i = 0
jcleanup:
	call pvm_unstage_host           ! 12: pre 0 <= index
	mov %l5,%o0
	inc %l5
	cmp %l5,%l3
	bl jcleanup
	nop
	call pvm_config                 ! 13
	nop
	call host_log                   ! 14
	mov %l3,%o0
jfinish:
	mov %l0,%o0
	call jni_monitorexit            ! 15
	mov %l1,%o1
	call host_log                   ! 16
	clr %o0
	mov %l3,%i0
	ret
	restore
jerror:
	mov %l0,%o0
	call jni_throwexception         ! 17
	nop
	mov %l0,%o0
	call jni_monitorexit            ! 18
	mov %l1,%o1
	call host_log                   ! 19
	clr %o0
	call pvm_perror                 ! 20
	nop
	call host_stats                 ! 21
	nop
	mov -1,%i0
	ret
	restore
`,
		Spec: `
region H
sym envh
sym hostsh
sym infosh
constraint envh >= 1 and hostsh >= 1 and infosh >= 1
invoke %o0 = envh
invoke %o1 = hostsh
invoke %o2 = infosh
trusted jni_monitorenter args 2
end
trusted jni_monitorexit args 2
end
trusted jni_getarraylength args 2
  ret int init perm o
  post %o0 >= 0
end
trusted jni_getobjectarrayelement args 3
  arg 2 int init
  ret int init perm o
  pre %o2 >= 0
end
trusted jni_getstringutfchars args 2
  arg 1 int init
  ret int init perm o
  pre %o1 != 0
  post %o0 >= 1
end
trusted jni_releasestringutfchars args 3
end
trusted jni_setintarrayelement args 4
  arg 2 int init
  arg 3 int init
  pre %o2 >= 0
end
trusted jni_throwexception args 1
end
trusted host_namecheck args 1
  arg 0 int init
  pre %o0 >= 1
  ret int init perm o
end
trusted host_log args 1
  arg 0 int init
end
trusted host_stats args 0
end
trusted pvm_stage_host args 2
  arg 0 int init
  arg 1 int init
  pre %o0 >= 1 and %o1 >= 0
end
trusted pvm_unstage_host args 1
  arg 0 int init
  pre %o0 >= 0
end
trusted pvm_addhosts args 1
  arg 0 int init
  ret int init perm o
  pre %o0 >= 1
end
trusted pvm_host_status args 1
  arg 0 int init
  ret int init perm o
  pre %o0 >= 0
end
trusted pvm_config args 0
end
trusted pvm_perror args 0
end
`,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 157, Branches: 12, Loops: 3, InnerLoops: 0,
			Calls: 21, TrustedCalls: 21, GlobalConds: 57,
			TypestateSec: 1.04, AnnotLocalSec: 0.032, GlobalSec: 4.18, TotalSec: 5.25,
		},
	}
}
