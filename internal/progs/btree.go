package progs

// btreeSpec is shared by both Btree variants: a binary search tree whose
// nodes carry an overflow chain — cur->child descends a level, cur->next
// walks the chain within a level. The policy permits reading key/val,
// and following next/child.
const btreeSpec = `
struct node { key int ; val int ; next ptr<node> ; child ptr<node> }
region H
loc t node region H summary fields(key=init, val=init, next={t,null}, child={t,null})
val root ptr<node> state {t,null} region H
sym key
invoke %o0 = root
invoke %o1 = key
allow H node.key ro
allow H node.val ro
allow H node.next rfo
allow H node.child rfo
allow H ptr<node> rfo
`

// Btree is the Btree-traversal example of Section 6: an outer descent
// loop and an inner chain walk, every dereference guarded by a null test
// that the verifier must carry through the loop invariants.
func Btree() *Benchmark {
	return &Benchmark{
		Name:  "Btree",
		Descr: "Btree traversal (inline key comparison)",
		Entry: "btree",
		Source: `
btree:
	mov %o0,%g1        ! cur = root
outer:
	cmp %g1,%g0
	be miss            ! cur == null
	nop
	ld [%g1+0],%g2     ! cur->key
	cmp %g2,%o1
	be found
	nop
	bg descend         ! cur->key > key: go down a level
	nop
chain:                     ! cur->key < key: walk the overflow chain
	ld [%g1+8],%g3     ! next = cur->next
	cmp %g3,%g0
	be miss            ! end of chain
	nop
	ld [%g3+0],%g4     ! next->key
	cmp %g4,%o1
	bl chainstep       ! still smaller: keep walking
	nop
	ba outer           ! next->key >= key: re-examine from next
	mov %g3,%g1
chainstep:
	ba chain
	mov %g3,%g1
descend:
	ld [%g1+12],%g1    ! cur = cur->child
	ba outer
	nop
found:
	ld [%g1+4],%o0     ! cur->val
	retl
	nop
miss:
	mov -1,%o0
	retl
	nop
`,
		Spec:     btreeSpec,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 41, Branches: 11, Loops: 2, InnerLoops: 1,
			Calls: 0, GlobalConds: 41,
			TypestateSec: 0.08, AnnotLocalSec: 0.007, GlobalSec: 0.50, TotalSec: 0.59,
		},
	}
}

// Btree2 is the second Btree variant of Section 6, which compares keys
// via a function call; field loads also go through tiny accessor
// procedures, giving four call sites whose safety preconditions are
// discharged interprocedurally at each caller.
func Btree2() *Benchmark {
	return &Benchmark{
		Name:  "Btree2",
		Descr: "Btree traversal (key comparison via function call)",
		Entry: "btree2",
		Source: `
btree2:
	save %sp,-96,%sp   ! non-leaf: calls the accessors
	mov %i0,%g1        ! cur = root
	mov %i1,%g4        ! key
outer:
	cmp %g1,%g0
	be miss
	nop
	mov %g1,%o0
	call cmpkey        ! cmpkey(cur, key): cur->key - key
	mov %g4,%o1
	cmp %o0,%g0
	be found
	nop
	bg descend
	nop
chain:
	mov %g1,%o0
	call getnext       ! next = cur->next
	nop
	cmp %o0,%g0
	be miss
	nop
	mov %o0,%g3
	mov %g3,%o0
	call cmpkey        ! cmpkey(next, key)
	mov %g4,%o1
	cmp %o0,%g0
	bl chainstep
	nop
	ba outer
	mov %g3,%g1
chainstep:
	ba chain
	mov %g3,%g1
descend:
	mov %g1,%o0
	call getchild      ! cur = cur->child
	nop
	ba outer
	mov %o0,%g1
found:
	ld [%g1+4],%i0     ! cur->val
	ret
	restore
miss:
	mov -1,%i0
	ret
	restore

cmpkey:                    ! %o0 = node (non-null), %o1 = key
	ld [%o0+0],%o0     ! node->key
	retl
	sub %o0,%o1,%o0
getnext:                   ! %o0 = node (non-null)
	ld [%o0+8],%o0
	retl
	nop
getchild:                  ! %o0 = node (non-null)
	ld [%o0+12],%o0
	retl
	nop
`,
		Spec:     btreeSpec,
		WantSafe: true,
		Paper: PaperRow{
			Instructions: 51, Branches: 11, Loops: 2, InnerLoops: 1,
			Calls: 4, GlobalConds: 42,
			TypestateSec: 0.11, AnnotLocalSec: 0.009, GlobalSec: 0.41, TotalSec: 0.53,
		},
	}
}
