package progs

// Dynamic differential validation: the programs the checker proves safe
// are executed concretely on random specification-conforming inputs, and
// every memory access is watched. A verified program must terminate
// without touching anything outside its declared regions — the dynamic
// counterpart of the static verdict. The sorts additionally check
// functional correctness (the interpreter and assembler agree on what
// the code does).

import (
	"math/rand"
	"sort"
	"testing"

	"mcsafe/internal/sparc"
)

// watch confines all memory accesses to the given [lo, hi) windows.
type window struct {
	lo, hi uint32
	write  bool // writes permitted?
}

func watcher(t *testing.T, name string, wins []window) func(uint32, int, bool) {
	return func(addr uint32, size int, write bool) {
		for _, w := range wins {
			if addr >= w.lo && addr+uint32(size) <= w.hi {
				if write && !w.write {
					t.Fatalf("%s: write to read-only window at 0x%x", name, addr)
				}
				return
			}
		}
		t.Fatalf("%s: access at 0x%x (size %d, write=%v) outside every declared window",
			name, addr, size, write)
	}
}

func assemble(t *testing.T, b *Benchmark) *sparc.Program {
	t.Helper()
	prog, _, err := b.BuildNative()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const (
	arrBase = 0x40000
	auxBase = 0x48000
	inBase  = 0x50000
)

func TestDynamicSum(t *testing.T) {
	prog := assemble(t, Sum())
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 50; i++ {
		n := 1 + r.Intn(12)
		m := sparc.NewMachine(prog)
		var want int32
		for j := 0; j < n; j++ {
			v := int32(r.Intn(100) - 50)
			want += v
			m.Store32(arrBase+uint32(4*j), uint32(v))
		}
		m.OnMem = watcher(t, "Sum", []window{{arrBase, arrBase + uint32(4*n), false}})
		m.SetReg(sparc.O0, arrBase)
		m.SetReg(sparc.O0+1, uint32(n))
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
		if got := int32(m.Reg(sparc.O0)); got != want {
			t.Fatalf("sum = %d, want %d", got, want)
		}
	}
}

func runSort(t *testing.T, b *Benchmark, seed int64) {
	prog := assemble(t, b)
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < 30; i++ {
		n := 1 + r.Intn(16)
		m := sparc.NewMachine(prog)
		in := make([]int, n)
		for j := 0; j < n; j++ {
			in[j] = r.Intn(200) - 100
			m.Store32(arrBase+uint32(4*j), uint32(int32(in[j])))
		}
		m.OnMem = watcher(t, b.Name, []window{{arrBase, arrBase + uint32(4*n), true}})
		m.SetReg(sparc.O0, arrBase)
		m.SetReg(sparc.O0+1, uint32(n))
		if err := m.Run(2000000); err != nil {
			t.Fatalf("%s n=%d: %v", b.Name, n, err)
		}
		got := make([]int, n)
		for j := 0; j < n; j++ {
			got[j] = int(int32(m.Load32(arrBase + uint32(4*j))))
		}
		want := append([]int(nil), in...)
		sort.Ints(want)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: input %v, got %v, want %v", b.Name, in, got, want)
			}
		}
	}
}

// TestDynamicBubbleSort: the verified bubble sort really sorts, within
// bounds.
func TestDynamicBubbleSort(t *testing.T) { runSort(t, BubbleSort(), 22) }

// TestDynamicHeapSort: the inlined heap sort really sorts.
func TestDynamicHeapSort(t *testing.T) { runSort(t, HeapSort(), 23) }

// TestDynamicHeapSort2: the interprocedural heap sort (register windows,
// calls) really sorts.
func TestDynamicHeapSort2(t *testing.T) { runSort(t, HeapSort2(), 24) }

// TestDynamicBtree: walk a concrete tree laid out per the node struct
// {key, val, next, child} and confirm lookups stay within the nodes.
func TestDynamicBtree(t *testing.T) {
	prog := assemble(t, Btree())
	// Three nodes: root(key=10) -> next(key=20); root.child(key=5).
	node := func(i int) uint32 { return auxBase + uint32(16*i) }
	m := sparc.NewMachine(prog)
	lay := func(i int, key, val int32, next, child uint32) {
		m.Store32(node(i)+0, uint32(key))
		m.Store32(node(i)+4, uint32(val))
		m.Store32(node(i)+8, next)
		m.Store32(node(i)+12, child)
	}
	lay(0, 10, 100, node(1), node(2))
	lay(1, 20, 200, 0, 0)
	lay(2, 5, 50, 0, 0)
	m.OnMem = watcher(t, "Btree", []window{{auxBase, auxBase + 48, false}})
	m.SetReg(sparc.O0, node(0))
	m.SetReg(sparc.O0+1, 20) // search for key 20: along the next chain
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := int32(m.Reg(sparc.O0)); got != 200 {
		t.Fatalf("lookup(20) = %d, want 200", got)
	}

	// A missing key returns -1 and still stays in bounds.
	m2 := sparc.NewMachine(prog)
	lay2 := func(mm *sparc.Machine, i int, key, val int32, next, child uint32) {
		mm.Store32(node(i)+0, uint32(key))
		mm.Store32(node(i)+4, uint32(val))
		mm.Store32(node(i)+8, next)
		mm.Store32(node(i)+12, child)
	}
	lay2(m2, 0, 10, 100, node(1), node(2))
	lay2(m2, 1, 20, 200, 0, 0)
	lay2(m2, 2, 5, 50, 0, 0)
	m2.OnMem = watcher(t, "Btree", []window{{auxBase, auxBase + 48, false}})
	m2.SetReg(sparc.O0, node(0))
	m2.SetReg(sparc.O0+1, 7)
	if err := m2.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := int32(m2.Reg(sparc.O0)); got != -1 {
		t.Fatalf("lookup(7) = %d, want -1", got)
	}
}

// TestDynamicStackSmashOverflows demonstrates the flagged violation is
// real: running the unsafe copy with a long input touches memory outside
// the 16-word buffer (the saved frame area), exactly what the checker
// predicted.
func TestDynamicStackSmashOverflows(t *testing.T) {
	prog := assemble(t, StackSmashing())
	m := sparc.NewMachine(prog)
	const n = 24 // longer than the 16-word buffer
	for j := 0; j < n; j++ {
		m.Store32(inBase+uint32(4*j), uint32(j+1))
	}
	const stackTop = 0x7ff00000
	m.SetReg(sparc.SP, stackTop)
	m.SetReg(sparc.O0, inBase)
	m.SetReg(sparc.O0+1, n)

	// buf lives at [fp-96, fp-32) after the save; watch for stores
	// beyond it. fp = caller's sp.
	smashed := false
	m.OnMem = func(addr uint32, size int, write bool) {
		if write && addr >= stackTop-32 {
			smashed = true // past the end of buf: frame smashed
		}
	}
	// The run may fault after the smash (it corrupts nothing the
	// interpreter needs here, but be permissive).
	_ = m.Run(2000000)
	if !smashed {
		t.Fatal("the unchecked copy should have written past the buffer")
	}
}

// TestDynamicMD5 runs the full MD5Update driver (including the 800+
// instruction transform) on random input and confines its accesses to
// the declared regions: the context struct, the block buffer, and the
// read-only input.
func TestDynamicMD5(t *testing.T) {
	prog := assemble(t, MD5())
	r := rand.New(rand.NewSource(25))
	for i := 0; i < 5; i++ {
		mwords := r.Intn(40)
		m := sparc.NewMachine(prog)
		const ctx = auxBase
		const blk = auxBase + 0x100
		for j := 0; j < 5; j++ {
			m.Store32(ctx+uint32(4*j), uint32(j)) // a,b,c,d,count
		}
		for j := 0; j < mwords; j++ {
			m.Store32(inBase+uint32(4*j), r.Uint32())
		}
		m.OnMem = watcher(t, "MD5", []window{
			{ctx, ctx + 20, true},
			{blk, blk + 64, true},
			{inBase, inBase + uint32(4*mwords), false},
		})
		m.SetReg(sparc.SP, 0x7ff00000)
		m.SetReg(sparc.O0, ctx)
		m.SetReg(sparc.O0+1, blk)
		m.SetReg(sparc.O0+2, inBase)
		m.SetReg(sparc.O0+3, uint32(mwords))
		if err := m.Run(5000000); err != nil {
			t.Fatalf("m=%d: %v", mwords, err)
		}
		// count advanced by a multiple of 16 covering the input.
		count := int(int32(m.Load32(ctx + 16)))
		if count < mwords || count%16 != 4 && count%16 != 0 {
			// count started at 4 (seeded above) and advances by 16s.
		}
		if count < mwords {
			t.Fatalf("m=%d: count=%d did not cover the input", mwords, count)
		}
	}
}
