// Package leakcheck is a dependency-free goroutine-leak assertion for
// tests: snapshot the goroutine count before the work under test, and
// verify the count returns to (at most) the baseline afterwards,
// allowing a grace period for normal teardown. The proving pool, the
// batch checker, and cancelled checks must all join every goroutine
// they start; a leak here compounds under serving traffic.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long Verify waits for stragglers mid-teardown before
// declaring a leak. Goroutines that are shutting down (a pool worker
// between wg.Done and exit) need a few scheduler quanta to disappear.
const grace = 5 * time.Second

// Check snapshots the current goroutine count and returns a func that
// asserts the count has returned to the baseline. Use as:
//
//	defer leakcheck.Check(t)()
//
// Tests using Check must not run in parallel with goroutine-spawning
// tests in the same process (do not call t.Parallel()).
func Check(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		if err := verify(before); err != nil {
			t.Error(err)
		}
	}
}

// verify polls until the goroutine count drops to at most baseline, or
// the grace period expires.
func verify(baseline int) error {
	deadline := time.Now().Add(grace)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= baseline {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return fmt.Errorf("leakcheck: %d goroutines leaked (%d before, %d after %v):\n%s",
		now-baseline, baseline, now, grace, summarize(string(buf[:n])))
}

// summarize keeps the dump readable: one header line per goroutine.
func summarize(dump string) string {
	var b strings.Builder
	for _, block := range strings.Split(dump, "\n\n") {
		if i := strings.IndexByte(block, '\n'); i > 0 {
			b.WriteString(block[:i])
			if j := strings.IndexByte(block[i+1:], '\n'); j > 0 {
				b.WriteString(" @ " + strings.TrimSpace(block[i+1:i+1+j]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
