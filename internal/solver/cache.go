package solver

import (
	"sync"
	"sync/atomic"

	"mcsafe/internal/faults"
)

// cacheShards is the stripe count of a ShardedCache. A power of two so
// the shard index is a mask of the key hash; 64 stripes keep contention
// negligible for the worker-pool sizes the checker uses (GOMAXPROCS).
const cacheShards = 64

// ShardedCache is a concurrency-safe canonical-formula result cache: a
// striped (sharded-mutex) map from a formula's canonical string to the
// prover's verdict for it. One ShardedCache may back any number of
// Provers running on concurrent goroutines, so parallel verification
// workers reuse each other's results instead of re-eliminating the same
// formulas.
//
// Sharing is sound and deterministic because Prover.valid is a pure
// function of the canonical formula (and the limits): every prover
// would store the same verdict for a given key, so a hit can never flip
// an answer — in particular it can never turn "not proved" into
// "proved".
type ShardedCache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]bool
}

// NewShardedCache returns an empty cache ready for concurrent use.
func NewShardedCache() *ShardedCache {
	c := &ShardedCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]bool)
	}
	return c
}

// shardOf picks the stripe for a key (FNV-1a over the key bytes).
func (c *ShardedCache) shardOf(key string) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&(cacheShards-1)]
}

// Get returns the cached verdict for key and whether one is present.
func (c *ShardedCache) Get(key string) (verdict, ok bool) {
	faults.Fire(faults.CacheLookup)
	s := c.shardOf(key)
	s.mu.RLock()
	verdict, ok = s.m[key]
	s.mu.RUnlock()
	return verdict, ok
}

// Put records the verdict for key.
func (c *ShardedCache) Put(key string, verdict bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	s.m[key] = verdict
	s.mu.Unlock()
}

// Len reports the number of cached formulas.
func (c *ShardedCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// AtomicStats accumulates Stats from provers running on concurrent
// goroutines. Workers Add their prover's Stats as they finish; the
// coordinator reads the merged totals with Snapshot.
type AtomicStats struct {
	validQueries atomic.Int64
	cacheHits    atomic.Int64
	eliminations atomic.Int64
	dnfBlowups   atomic.Int64
}

// Add merges one prover's counters into the totals.
func (a *AtomicStats) Add(s Stats) {
	a.validQueries.Add(int64(s.ValidQueries))
	a.cacheHits.Add(int64(s.CacheHits))
	a.eliminations.Add(int64(s.Eliminations))
	a.dnfBlowups.Add(int64(s.DNFBlowups))
}

// Snapshot returns the merged totals.
func (a *AtomicStats) Snapshot() Stats {
	return Stats{
		ValidQueries: int(a.validQueries.Load()),
		CacheHits:    int(a.cacheHits.Load()),
		Eliminations: int(a.eliminations.Load()),
		DNFBlowups:   int(a.dnfBlowups.Load()),
	}
}
