package solver

import (
	"sync"
	"sync/atomic"

	"mcsafe/internal/expr"
	"mcsafe/internal/faults"
)

// cacheShards is the stripe count of a ShardedCache. A power of two so
// the shard index is a mask of the key fingerprint; 64 stripes keep
// contention negligible for the worker-pool sizes the checker uses
// (GOMAXPROCS).
const cacheShards = 64

// ShardedCache is a concurrency-safe formula-verdict cache: a striped
// (sharded-mutex) map from a formula's structural fingerprint to the
// prover's verdict for it. One ShardedCache may back any number of
// Provers running on concurrent goroutines, so parallel verification
// workers reuse each other's results instead of re-eliminating the
// same formulas.
//
// Keys are 128-bit fingerprints (expr.FP) instead of the canonical
// strings of earlier versions, so a probe costs one hash walk and no
// allocation. Because a stale or colliding entry must never flip a
// verdict, each entry also records the formula (and the caller's salt
// word) it was stored under, and Get verifies structural equality
// before reporting a hit: a fingerprint collision degrades to a cache
// miss, never to a wrong answer.
//
// Sharing is sound and deterministic because Prover.valid is a pure
// function of the formula (and the limits): every prover would store
// the same verdict for a given key, so a hit can never flip an answer
// — in particular it can never turn "not proved" into "proved".
type ShardedCache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[expr.FP]cacheEntry
}

// cacheEntry carries the verdict plus what it was computed for: the
// formula and an integer salt (callers use it for non-formula key
// context such as a CFG node). Both are checked on lookup.
type cacheEntry struct {
	f       expr.Formula
	salt    uint64
	verdict bool
}

// NewShardedCache returns an empty cache ready for concurrent use.
func NewShardedCache() *ShardedCache {
	c := &ShardedCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[expr.FP]cacheEntry)
	}
	return c
}

func (c *ShardedCache) shardOf(key expr.FP) *cacheShard {
	return &c.shards[key.Lo&(cacheShards-1)]
}

// Get returns the cached verdict for (key, salt, f) and whether one is
// present. A fingerprint hit whose recorded salt or formula does not
// match is reported as a miss.
func (c *ShardedCache) Get(key expr.FP, salt uint64, f expr.Formula) (verdict, ok bool) {
	faults.Fire(faults.CacheLookup)
	s := c.shardOf(key)
	s.mu.RLock()
	e, present := s.m[key]
	s.mu.RUnlock()
	if !present || e.salt != salt || !expr.Equal(e.f, f) {
		return false, false
	}
	return e.verdict, true
}

// Put records the verdict for (key, salt, f).
func (c *ShardedCache) Put(key expr.FP, salt uint64, f expr.Formula, verdict bool) {
	s := c.shardOf(key)
	s.mu.Lock()
	s.m[key] = cacheEntry{f: f, salt: salt, verdict: verdict}
	s.mu.Unlock()
}

// Len reports the number of cached formulas.
func (c *ShardedCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// AtomicStats accumulates Stats from provers running on concurrent
// goroutines. Workers Add their prover's Stats as they finish; the
// coordinator reads the merged totals with Snapshot.
type AtomicStats struct {
	validQueries     atomic.Int64
	cacheHits        atomic.Int64
	eliminations     atomic.Int64
	dnfBlowups       atomic.Int64
	fmPrefixReuses   atomic.Int64
	earlyUnsatPrunes atomic.Int64
}

// Add merges one prover's counters into the totals.
func (a *AtomicStats) Add(s Stats) {
	a.validQueries.Add(int64(s.ValidQueries))
	a.cacheHits.Add(int64(s.CacheHits))
	a.eliminations.Add(int64(s.Eliminations))
	a.dnfBlowups.Add(int64(s.DNFBlowups))
	a.fmPrefixReuses.Add(int64(s.FMPrefixReuses))
	a.earlyUnsatPrunes.Add(int64(s.EarlyUnsatPrunes))
}

// Snapshot returns the merged totals.
func (a *AtomicStats) Snapshot() Stats {
	return Stats{
		ValidQueries:     int(a.validQueries.Load()),
		CacheHits:        int(a.cacheHits.Load()),
		Eliminations:     int(a.eliminations.Load()),
		DNFBlowups:       int(a.dnfBlowups.Load()),
		FMPrefixReuses:   int(a.fmPrefixReuses.Load()),
		EarlyUnsatPrunes: int(a.earlyUnsatPrunes.Load()),
	}
}
