package solver

import (
	"sync"
	"testing"

	"mcsafe/internal/expr"
)

// geConst returns the formula i >= 0 for a test-distinct constant i —
// a family of structurally distinct formulas for exercising the cache.
func geConst(i int) expr.Formula { return expr.Ge(expr.Constant(int64(i))) }

// TestShardedCacheBasics checks the single-goroutine contract: absent
// keys miss, stored verdicts (both true and false) come back verbatim,
// overwrites win, salt and formula mismatches miss, and Len counts
// across shards.
func TestShardedCacheBasics(t *testing.T) {
	c := NewShardedCache()
	yes, no := geConst(1), geConst(2)
	yesKey, noKey := expr.Fingerprint(yes), expr.Fingerprint(no)
	if _, ok := c.Get(yesKey, 0, yes); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put(yesKey, 0, yes, true)
	c.Put(noKey, 0, no, false)
	if v, ok := c.Get(yesKey, 0, yes); !ok || !v {
		t.Fatalf("Get(yes) = %v, %v", v, ok)
	}
	if v, ok := c.Get(noKey, 0, no); !ok || v {
		t.Fatalf("Get(no) = %v, %v", v, ok)
	}
	// A fingerprint hit with the wrong salt or the wrong formula is a
	// miss, not an answer: the verified-hit contract that makes hash
	// collisions harmless.
	if _, ok := c.Get(yesKey, 1, yes); ok {
		t.Fatal("hit despite salt mismatch")
	}
	if _, ok := c.Get(yesKey, 0, no); ok {
		t.Fatal("hit despite formula mismatch")
	}
	c.Put(yesKey, 0, yes, false)
	if v, _ := c.Get(yesKey, 0, yes); v {
		t.Fatal("overwrite did not win")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// TestShardedCacheConcurrent hammers one cache from parallel goroutines
// with overlapping key sets, so the same shard sees concurrent readers
// and writers. Run under -race this is the data-race check for the
// striped locking; the final sweep checks no verdict was corrupted (the
// verdict of key i is deterministic, so late writers agree with early
// ones).
func TestShardedCacheConcurrent(t *testing.T) {
	t.Parallel()
	c := NewShardedCache()
	const keys = 512
	verdictOf := func(i int) bool { return i%3 == 0 }
	fs := make([]expr.Formula, keys)
	fps := make([]expr.FP, keys)
	for i := range fs {
		fs[i] = geConst(i)
		fps[i] = expr.Fingerprint(fs[i])
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i := 0; i < keys; i++ {
					if v, ok := c.Get(fps[i], 0, fs[i]); ok && v != verdictOf(i) {
						t.Errorf("key %d: read %v, want %v", i, v, verdictOf(i))
						return
					}
					c.Put(fps[i], 0, fs[i], verdictOf(i))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != keys {
		t.Fatalf("Len = %d, want %d", c.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		if v, ok := c.Get(fps[i], 0, fs[i]); !ok || v != verdictOf(i) {
			t.Fatalf("key %d: final verdict %v, %v", i, v, ok)
		}
	}
}

// TestSharedProverConcurrent runs several provers over one shared cache
// from parallel goroutines, all asking the same mix of valid and
// invalid formulas, and checks every prover sees the correct verdicts
// — a cache hit must return exactly what a fresh computation would.
func TestSharedProverConcurrent(t *testing.T) {
	t.Parallel()
	x := expr.V(expr.Var("x"))
	y := expr.V(expr.Var("y"))
	queries := []struct {
		f    expr.Formula
		want bool
	}{
		{expr.GeExpr(x, x), true},
		{expr.Implies(expr.GtExpr(x, y), expr.GeExpr(x, y)), true},
		{expr.Implies(expr.GeExpr(x, y), expr.GtExpr(x, y)), false},
		{expr.Ge(x), false},
		{expr.Ge(expr.Constant(0)), true},
		{expr.Ge(expr.Constant(-1)), false},
	}

	shared := NewShardedCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := NewShared(shared)
			for rep := 0; rep < 20; rep++ {
				for _, q := range queries {
					if got := p.Valid(q.f); got != q.want {
						t.Errorf("Valid(%s) = %v, want %v", q.f, got, q.want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	distinct := map[expr.FP]bool{}
	for _, q := range queries {
		distinct[expr.Fingerprint(q.f)] = true
	}
	if shared.Len() != len(distinct) {
		t.Fatalf("cache holds %d formulas, want %d", shared.Len(), len(distinct))
	}
}

// TestSharedCacheNeverFlipsVerdict is the soundness regression for
// cache sharing: a verdict stored by one prover must be returned
// unchanged by every other prover — in particular a "not proved" (false)
// verdict must never come back as "proved" (true). The test seeds the
// shared cache with deliberately wrong verdicts to observe that hits
// are returned verbatim rather than recomputed or negated.
func TestSharedCacheNeverFlipsVerdict(t *testing.T) {
	x := expr.V(expr.Var("x"))
	tautology := expr.GeExpr(x, x) // provable, so a hit saying false is visible
	invalid := expr.Ge(x)          // not provable, so a hit saying true is visible

	shared := NewShardedCache()
	shared.Put(expr.Fingerprint(tautology), 0, tautology, false)
	shared.Put(expr.Fingerprint(invalid), 0, invalid, true)

	p := NewShared(shared)
	if p.Valid(tautology) {
		t.Fatal("prover recomputed past a cached verdict (hit not honored)")
	}
	if !p.Valid(invalid) {
		t.Fatal("prover recomputed past a cached verdict (hit not honored)")
	}
	if p.Stats.CacheHits != 2 {
		t.Fatalf("CacheHits = %d, want 2", p.Stats.CacheHits)
	}

	// The real-world direction: with an honestly populated cache, a
	// second prover answers every query identically to the first.
	shared = NewShardedCache()
	first := NewShared(shared)
	second := NewShared(shared)
	for _, f := range []expr.Formula{tautology, invalid} {
		if first.Valid(f) != second.Valid(f) {
			t.Fatalf("provers disagree on %s", f)
		}
	}
	if second.Stats.CacheHits != 2 {
		t.Fatalf("second prover CacheHits = %d, want 2", second.Stats.CacheHits)
	}
}

// TestAtomicStatsMerge checks that concurrent Add calls from many
// goroutines lose nothing and Snapshot returns the exact totals.
func TestAtomicStatsMerge(t *testing.T) {
	var a AtomicStats
	const workers, reps = 16, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				a.Add(Stats{ValidQueries: 3, CacheHits: 2, Eliminations: 1,
					FMPrefixReuses: 5, EarlyUnsatPrunes: 4})
			}
		}()
	}
	wg.Wait()
	got := a.Snapshot()
	want := Stats{
		ValidQueries:     3 * workers * reps,
		CacheHits:        2 * workers * reps,
		Eliminations:     1 * workers * reps,
		FMPrefixReuses:   5 * workers * reps,
		EarlyUnsatPrunes: 4 * workers * reps,
	}
	if got != want {
		t.Fatalf("Snapshot = %+v, want %+v", got, want)
	}
}
