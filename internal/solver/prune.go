package solver

import "mcsafe/internal/expr"

// PruneQuant simplifies quantified formulas produced by havoc
// substitutions during wlp generation:
//
//   - ∀ distributes over ∧ (and ∃ over ∨), keeping each quantifier only
//     where its variable occurs;
//   - ∀v.(A → B) with v ∉ B becomes (∃v.A) → B, and the hypothesis ∃v.A
//     is then eliminated by (over-approximating) quantifier elimination.
//
// An over-approximated hypothesis strengthens the overall formula, so
// the result always implies the input: sound wherever the formula is
// something to be proved or used as an inductive-chain member.
func (p *Prover) PruneQuant(f expr.Formula) expr.Formula {
	// Quantifier-free formulas (the common case once wlp substitution
	// has not introduced a havoc quantifier) have nothing to prune; the
	// recursive rebuild below would be the identity, so skip it with one
	// read-only walk.
	if expr.QuantFree(f) {
		return f
	}
	switch g := f.(type) {
	case expr.And:
		fs := make([]expr.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = p.PruneQuant(sub)
		}
		return expr.Conj(fs...)
	case expr.Or:
		fs := make([]expr.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = p.PruneQuant(sub)
		}
		return expr.Disj(fs...)
	case expr.Impl:
		return expr.Implies(p.pruneHyp(g.A), p.PruneQuant(g.B))
	case expr.Not:
		return expr.Negate(p.pruneHyp(g.F))
	case expr.Forall:
		body := p.PruneQuant(g.F)
		free := map[expr.Var]bool{}
		body.FreeVars(free)
		if !free[g.V] {
			return body
		}
		switch b := body.(type) {
		case expr.And:
			// ∀v.(f1 ∧ f2) = (∀v.f1) ∧ (∀v.f2).
			fs := make([]expr.Formula, len(b.Fs))
			for i, sub := range b.Fs {
				fs[i] = p.PruneQuant(expr.Forall{V: g.V, F: sub})
			}
			return expr.Conj(fs...)
		case expr.Impl:
			bf := map[expr.Var]bool{}
			b.B.FreeVars(bf)
			if !bf[g.V] {
				// ∀v.(A → B) = (∃v.A) → B when v ∉ B.
				hyp := p.pruneHyp(expr.Exists{V: g.V, F: b.A})
				return expr.Implies(hyp, b.B)
			}
		}
		return expr.Forall{V: g.V, F: body}
	case expr.Exists:
		body := p.PruneQuant(g.F)
		free := map[expr.Var]bool{}
		body.FreeVars(free)
		if !free[g.V] {
			return body
		}
		return expr.Exists{V: g.V, F: body}
	}
	return f
}

// pruneHyp simplifies a formula in hypothesis (negative) position, where
// over-approximation (weakening the hypothesis is wrong; weakening here
// means making the hypothesis EASIER to satisfy, which strengthens the
// whole implication) is the sound direction. Existentials are eliminated
// by real-shadow QE.
func (p *Prover) pruneHyp(f expr.Formula) expr.Formula {
	switch g := f.(type) {
	case expr.Exists:
		body := p.pruneHyp(g.F)
		free := map[expr.Var]bool{}
		body.FreeVars(free)
		if !free[g.V] {
			return body
		}
		if q, ok := p.qe(expr.NNF(expr.Exists{V: g.V, F: body}), true); ok {
			return expr.Simplify(q)
		}
		return expr.Exists{V: g.V, F: body}
	case expr.And:
		fs := make([]expr.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = p.pruneHyp(sub)
		}
		return expr.Conj(fs...)
	case expr.Or:
		fs := make([]expr.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = p.pruneHyp(sub)
		}
		return expr.Disj(fs...)
	}
	// Deeper positions flip polarity again; keep them as-is (sound).
	return f
}
