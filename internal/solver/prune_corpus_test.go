// Corpus-driven coverage for PruneQuant: the differential generator's
// quantified formulas cross-checked against brute-force enumeration,
// plus pinned cases with known verdicts. Lives in package solver_test so
// it can reuse the internal/difftest generators (difftest imports
// solver, so an in-package test would be an import cycle).
package solver_test

import (
	"math/rand"
	"testing"

	"mcsafe/internal/difftest"
	"mcsafe/internal/expr"
	"mcsafe/internal/solver"
)

// TestPruneQuantCorpusVerdicts runs the differential corpus: for every
// generated ∀-positive formula, a validity claim on the pruned formula
// contradicted by a brute-force counterexample to the original is a
// pruning soundness bug (PruneQuant guarantees result implies input).
// The proved tallies additionally pin that pruning never *loses* proofs
// on this corpus: every directly-provable formula stays provable.
func TestPruneQuantCorpusVerdicts(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	p := solver.New()
	var both, onlyOrig, onlyPruned int
	for i := 0; i < 300; i++ {
		f, vars, dom := difftest.GenQuantified(r)
		vo, vp, err := difftest.CheckQuantified(p, f, vars, dom)
		if err != nil {
			t.Fatalf("formula %d (seed 123): %v", i, err)
		}
		switch {
		case vo && vp:
			both++
		case vo:
			onlyOrig++
		case vp:
			onlyPruned++
		}
	}
	t.Logf("300 formulas: %d proved both ways, %d only directly, %d only after pruning", both, onlyOrig, onlyPruned)
	if both == 0 {
		t.Error("corpus degenerated: nothing proved both directly and after pruning")
	}
	if onlyOrig > 0 {
		t.Errorf("pruning lost %d proofs on the corpus (provable directly, unprovable pruned)", onlyOrig)
	}
}

// TestPruneQuantVerdictTable pins PruneQuant + Valid on formulas with
// known ground truth.
func TestPruneQuantVerdictTable(t *testing.T) {
	v, x := expr.Var("v"), expr.Var("x")
	ge := func(e expr.LinExpr) expr.Formula { return expr.Ge(e) }

	cases := []struct {
		name string
		f    expr.Formula
		// wantValid is the ground-truth verdict over the integers; the
		// prover may answer false on a valid formula (incomplete) but
		// must never answer true on an invalid one. provable marks the
		// valid cases this prover is expected to discharge.
		wantValid bool
		provable  bool
	}{
		{
			// ∀v. (0 <= v ≤ 5 ∧ x ≥ 0) → x+v ≥ 0 — valid, in reach.
			name: "bounded-guard-valid",
			f: expr.Forall{V: v, F: expr.Implies(
				expr.Conj(ge(expr.V(v)), ge(expr.V(v).Scale(-1).AddConst(5)), ge(expr.V(x))),
				ge(expr.V(x).Add(expr.V(v))))},
			wantValid: true, provable: true,
		},
		{
			// ∀v. v ≥ 0 → x-v ≥ 0 — invalid (v grows past any x).
			name: "unbounded-guard-invalid",
			f: expr.Forall{V: v, F: expr.Implies(
				ge(expr.V(v)),
				ge(expr.V(x).Sub(expr.V(v))))},
			wantValid: false,
		},
		{
			// ∀v. v = 3 → x+v ≥ 3 — invalid (x may be negative).
			name: "free-var-invalid",
			f: expr.Forall{V: v, F: expr.Implies(
				expr.Eq(expr.V(v).AddConst(-3)),
				ge(expr.V(x).Add(expr.V(v)).AddConst(-3)))},
			wantValid: false,
		},
		{
			// ∀v. (v ≥ x+1 ∧ v ≤ x-1) → y ≥ 100 — vacuously valid:
			// the guard is unsatisfiable, which pruning must expose.
			name: "vacuous-guard-valid",
			f: expr.Forall{V: v, F: expr.Implies(
				expr.Conj(ge(expr.V(v).Sub(expr.V(x)).AddConst(-1)),
					ge(expr.V(x).Sub(expr.V(v)).AddConst(-1))),
				ge(expr.V("y").AddConst(-100)))},
			wantValid: true, provable: true,
		},
		{
			// ∀v. 2v = 1 → y ≥ 100 — vacuously valid over ℤ (2v = 1
			// has no integer solution), but NOT provable: pruning
			// over-approximates the hypothesis with the real shadow,
			// where ∃v. 2v = 1 holds, so the formula strengthens to
			// y ≥ 100 and the parity vacuity is lost. This pins the
			// designed incompleteness; if divisibility reasoning is
			// ever added to pruneHyp, flip provable to true.
			name: "parity-vacuous-valid",
			f: expr.Forall{V: v, F: expr.Implies(
				expr.Eq(expr.V(v).Scale(2).AddConst(-1)),
				ge(expr.V("y").AddConst(-100)))},
			wantValid: true, provable: false,
		},
	}

	p := solver.New()
	dom := difftest.BoxDomain(8)
	for _, tc := range cases {
		g := p.PruneQuant(tc.f)
		for name, h := range map[string]expr.Formula{"original": tc.f, "pruned": g} {
			got := p.Valid(h)
			if got && !tc.wantValid {
				t.Errorf("%s: prover claims the %s formula valid; ground truth is invalid\n  %v", tc.name, name, h)
			}
			if !got && tc.wantValid && tc.provable {
				t.Errorf("%s: prover failed to prove the %s formula\n  %v", tc.name, name, h)
			}
		}
		// Pruned must imply original pointwise on a sample box.
		for _, ex := range []map[expr.Var]int64{
			{"x": 0, "y": 0}, {"x": -2, "y": 5}, {"x": 3, "y": -1}, {"x": -8, "y": 101},
		} {
			if g.Eval(ex, dom) && !tc.f.Eval(ex, dom) {
				t.Errorf("%s: pruned formula weaker than original at %v", tc.name, ex)
			}
		}
	}
}
