package solver

import (
	"math/rand"
	"testing"

	"mcsafe/internal/expr"
)

func v(name string) expr.LinExpr { return expr.V(expr.Var(name)) }

func TestValidBasics(t *testing.T) {
	p := New()
	cases := []struct {
		f    expr.Formula
		want bool
		name string
	}{
		{expr.T(), true, "true"},
		{expr.F(), false, "false"},
		{expr.Ge(expr.Constant(0)), true, "0>=0"},
		{expr.Ge(expr.Constant(-1)), false, "-1>=0"},
		{expr.Implies(expr.Ge(v("x")), expr.Ge(v("x"))), true, "x>=0 -> x>=0"},
		{expr.GeExpr(v("x"), v("x")), true, "x>=x"},
		{expr.Implies(expr.GtExpr(v("x"), v("y")), expr.GeExpr(v("x"), v("y"))), true, "x>y -> x>=y"},
		{expr.Implies(expr.GeExpr(v("x"), v("y")), expr.GtExpr(v("x"), v("y"))), false, "x>=y -> x>y"},
		{expr.Ge(v("x")), false, "x>=0 not valid"},
		// Transitivity.
		{expr.Implies(expr.Conj(expr.GeExpr(v("x"), v("y")), expr.GeExpr(v("y"), v("z"))),
			expr.GeExpr(v("x"), v("z"))), true, "transitivity"},
		// Integer reasoning: 2x = 1 has no integer solution.
		{expr.Negate(expr.Eq(v("x").Scale(2).AddConst(-1))), true, "2x=1 unsat"},
		// x < y -> x + 1 <= y over integers.
		{expr.Implies(expr.LtExpr(v("x"), v("y")), expr.LeExpr(v("x").AddConst(1), v("y"))), true, "integral gap"},
	}
	for _, c := range cases {
		if got := p.Valid(c.f); got != c.want {
			t.Errorf("%s: Valid(%v) = %v, want %v", c.name, c.f, got, c.want)
		}
	}
}

func TestValidPaperLoopInvariant(t *testing.T) {
	// The Section 5.2.2 derivation: invariant %g3 < n ∧ %o1 = n implies
	// the bound %g3 < n, and W(0)∧W(1) implies W(2) where W(1) = W(2) =
	// (%o1 = n) after generalization... here we check the key steps.
	p := New()
	g3, n, o1 := v("%g3"), v("n"), v("%o1")

	// Step: W(0) ∧ W(1) -> W(2) with W(0) = g3 < n, W(1) = W(2) = (o1 <= n).
	w0 := expr.LtExpr(g3, n)
	w1 := expr.LeExpr(o1, n)
	if !p.Valid(expr.Implies(expr.Conj(w0, w1), w1)) {
		t.Error("L(1) -> W(2) should be valid")
	}

	// Entry check: initial constraints n >= 1 ∧ n = %o1 ∧ %g3 = 0 imply
	// W(0) = %g3 < n and W(1) = %o1 <= n.
	init := expr.Conj(
		expr.GeExpr(n, expr.Constant(1)),
		expr.EqExpr(n, o1),
		expr.EqExpr(g3, expr.Constant(0)),
	)
	if !p.Valid(expr.Implies(init, w0)) {
		t.Error("init -> W(0) should be valid")
	}
	if !p.Valid(expr.Implies(init, w1)) {
		t.Error("init -> W(1) should be valid")
	}

	// Final goal: invariant implies the array bound 0 <= 4*g3 < 4n.
	inv := expr.Conj(expr.LtExpr(g3, n), expr.EqExpr(o1, n), expr.GeExpr(g3, expr.Constant(0)))
	bound := expr.Conj(
		expr.GeExpr(g3.Scale(4), expr.Constant(0)),
		expr.LtExpr(g3.Scale(4), n.Scale(4)),
	)
	if !p.Valid(expr.Implies(inv, bound)) {
		t.Error("invariant -> array bound should be valid")
	}
}

func TestAlignmentReasoning(t *testing.T) {
	p := New()
	base, i := v("base"), v("i")

	// 4 | base -> 4 | base + 4i.
	f := expr.Implies(expr.Divides(4, base), expr.Divides(4, base.Add(i.Scale(4))))
	if !p.Valid(f) {
		t.Error("4|base -> 4|(base+4i) should be valid")
	}

	// 4 | base does NOT imply 4 | base + i.
	g := expr.Implies(expr.Divides(4, base), expr.Divides(4, base.Add(i)))
	if p.Valid(g) {
		t.Error("4|base -> 4|(base+i) should NOT be valid")
	}

	// 4 | 4i unconditionally.
	if !p.Valid(expr.Divides(4, i.Scale(4))) {
		t.Error("4 | 4i should be valid")
	}

	// 2 | base ∧ 4 | base+2 -> ¬(4 | base).
	h := expr.Implies(
		expr.Conj(expr.Divides(2, base), expr.Divides(4, base.AddConst(2))),
		expr.Negate(expr.Divides(4, base)))
	if !p.Valid(h) {
		t.Error("congruence interplay should be provable")
	}

	// Mixed: 8 | base -> 4 | base (modulus refinement).
	if !p.Valid(expr.Implies(expr.Divides(8, base), expr.Divides(4, base))) {
		t.Error("8|base -> 4|base should be valid")
	}
}

func TestUnsat(t *testing.T) {
	p := New()
	x := v("x")
	cases := []struct {
		f    expr.Formula
		want bool
		name string
	}{
		{expr.Conj(expr.Ge(x.AddConst(-1)), expr.Ge(x.Scale(-1))), true, "x>=1 ∧ x<=0"},
		{expr.Conj(expr.Ge(x), expr.Ge(x.Scale(-1))), false, "x>=0 ∧ x<=0 sat (x=0)"},
		{expr.Conj(expr.Divides(4, x), expr.Divides(4, x.AddConst(-2))), true, "4|x ∧ 4|x-2"},
		{expr.Eq(x.Scale(2).AddConst(-1)), true, "2x=1"},
		{expr.Eq(x.Scale(2).AddConst(-4)), false, "2x=4 sat"},
	}
	for _, c := range cases {
		if got := p.Unsat(c.f); got != c.want {
			t.Errorf("%s: Unsat = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestQuantifiers(t *testing.T) {
	p := New()
	x, y := expr.Var("x"), expr.Var("y")

	// ∃x. x = y is valid.
	f := expr.Exists{V: x, F: expr.EqExpr(expr.V(x), expr.V(y))}
	if !p.Valid(f) {
		t.Error("∃x. x=y should be valid")
	}
	// ∀x. x >= 0 is not valid.
	g := expr.Forall{V: x, F: expr.Ge(expr.V(x))}
	if p.Valid(g) {
		t.Error("∀x. x>=0 should not be valid")
	}
	// ∀x. (x >= y -> x + 1 >= y) is valid.
	h := expr.Forall{V: x, F: expr.Implies(
		expr.GeExpr(expr.V(x), expr.V(y)),
		expr.GeExpr(expr.V(x).AddConst(1), expr.V(y)))}
	if !p.Valid(h) {
		t.Error("∀x. x>=y -> x+1>=y should be valid")
	}
	// ∃x. (x >= y ∧ x <= y) — pick x = y.
	k := expr.Exists{V: x, F: expr.Conj(
		expr.GeExpr(expr.V(x), expr.V(y)),
		expr.LeExpr(expr.V(x), expr.V(y)))}
	if !p.Valid(k) {
		t.Error("∃x. y<=x<=y should be valid")
	}
}

func TestEliminate(t *testing.T) {
	p := New()
	g3, o1, n := expr.Var("%g3"), expr.Var("%o1"), expr.Var("n")

	// The paper's generalization example: from
	// %g3+1 < %o1 ∧ %g3+1 >= n, eliminating %g3 yields %o1 > n.
	f := expr.Conj(
		expr.LtExpr(expr.V(g3).AddConst(1), expr.V(o1)),
		expr.GeExpr(expr.V(g3).AddConst(1), expr.V(n)),
	)
	g, err := p.Eliminate(f, []expr.Var{g3})
	if err != nil {
		t.Fatal(err)
	}
	// g should be equivalent to %o1 > n, i.e. %o1 - n - 1 >= 0.
	want := expr.GtExpr(expr.V(o1), expr.V(n))
	if !p.Valid(expr.Conj(expr.Implies(g, want), expr.Implies(want, g))) {
		t.Errorf("Eliminate = %v, want equivalent of %v", g, want)
	}
}

func TestGeneralizePaperExample(t *testing.T) {
	// Section 5.2.2: W(1) = (%g3+1 < %o1 -> %g3+1 < n). Negating gives
	// %g3+1 < %o1 ∧ %g3+1 >= n; eliminating %g3 gives %o1 > n; negating
	// gives %o1 <= n. So Generalize(W(1), {%g3}) should be %o1 <= n.
	p := New()
	g3, o1, n := expr.Var("%g3"), expr.Var("%o1"), expr.Var("n")
	w1 := expr.Implies(
		expr.LtExpr(expr.V(g3).AddConst(1), expr.V(o1)),
		expr.LtExpr(expr.V(g3).AddConst(1), expr.V(n)))
	g, err := p.Generalize(w1, []expr.Var{g3})
	if err != nil {
		t.Fatal(err)
	}
	want := expr.LeExpr(expr.V(o1), expr.V(n))
	if !p.Valid(expr.Conj(expr.Implies(g, want), expr.Implies(want, g))) {
		t.Errorf("Generalize = %v, want equivalent of %v", g, want)
	}
}

func TestProverCache(t *testing.T) {
	p := New()
	f := expr.GeExpr(v("x"), v("x"))
	p.Valid(f)
	before := p.Stats.CacheHits
	p.Valid(f)
	if p.Stats.CacheHits != before+1 {
		t.Error("second identical query should hit the cache")
	}
}

// --- Property tests: the prover never claims validity of a falsifiable
// formula, and never claims unsatisfiability of a satisfiable one. ---

func randAtomS(r *rand.Rand) expr.Formula {
	e := expr.Term(int64(r.Intn(5)-2), "x").
		Add(expr.Term(int64(r.Intn(5)-2), "y")).
		Add(expr.Term(int64(r.Intn(3)-1), "z")).
		AddConst(int64(r.Intn(9) - 4))
	switch r.Intn(4) {
	case 0, 1:
		return expr.Ge(e)
	case 2:
		return expr.Eq(e)
	default:
		return expr.Divides([]int64{2, 4}[r.Intn(2)], e)
	}
}

func randFormulaS(r *rand.Rand, depth int) expr.Formula {
	if depth == 0 {
		return randAtomS(r)
	}
	switch r.Intn(6) {
	case 0:
		return expr.Conj(randFormulaS(r, depth-1), randFormulaS(r, depth-1))
	case 1:
		return expr.Disj(randFormulaS(r, depth-1), randFormulaS(r, depth-1))
	case 2:
		return expr.Negate(randFormulaS(r, depth-1))
	case 3:
		return expr.Implies(randFormulaS(r, depth-1), randFormulaS(r, depth-1))
	default:
		return randAtomS(r)
	}
}

func TestValidSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	p := New()
	valids := 0
	for i := 0; i < 1500; i++ {
		f := randFormulaS(r, 2)
		if !p.Valid(f) {
			continue
		}
		valids++
		for j := 0; j < 200; j++ {
			env := map[expr.Var]int64{
				"x": int64(r.Intn(31) - 15),
				"y": int64(r.Intn(31) - 15),
				"z": int64(r.Intn(31) - 15),
			}
			if !f.Eval(env, nil) {
				t.Fatalf("Valid claimed but falsified:\n f=%v\n env=%v", f, env)
			}
		}
	}
	if valids == 0 {
		t.Error("property test never exercised a valid formula; generator too weak")
	}
}

func TestUnsatSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	p := New()
	unsats := 0
	for i := 0; i < 1500; i++ {
		f := randFormulaS(r, 2)
		if !p.Unsat(f) {
			continue
		}
		unsats++
		for j := 0; j < 200; j++ {
			env := map[expr.Var]int64{
				"x": int64(r.Intn(31) - 15),
				"y": int64(r.Intn(31) - 15),
				"z": int64(r.Intn(31) - 15),
			}
			if f.Eval(env, nil) {
				t.Fatalf("Unsat claimed but satisfied:\n f=%v\n env=%v", f, env)
			}
		}
	}
	if unsats == 0 {
		t.Error("property test never exercised an unsat formula; generator too weak")
	}
}

func TestEliminateIsOverApproximation(t *testing.T) {
	// Every model of f (projected) must satisfy Eliminate(f, vars).
	r := rand.New(rand.NewSource(321))
	p := New()
	for i := 0; i < 800; i++ {
		f := expr.Conj(randAtomS(r), randAtomS(r), randAtomS(r))
		g, err := p.Eliminate(f, []expr.Var{"x"})
		if err != nil {
			continue
		}
		for j := 0; j < 100; j++ {
			env := map[expr.Var]int64{
				"x": int64(r.Intn(21) - 10),
				"y": int64(r.Intn(21) - 10),
				"z": int64(r.Intn(21) - 10),
			}
			if f.Eval(env, nil) && !g.Eval(env, nil) {
				t.Fatalf("Eliminate not an over-approximation:\n f=%v\n g=%v\n env=%v", f, g, env)
			}
		}
	}
}
