package solver

import (
	"context"
	"sync/atomic"
	"time"

	"mcsafe/internal/faults"
)

// Stop reasons a prover can report. StopBudget, StopDeadline, and
// StopCondTimeout are resource stops: the query was abandoned
// conservatively and the condition should be charged the "resource"
// violation code. StopCancelled is a caller cancellation and surfaces
// as a *PhaseError instead.
const (
	StopBudget      = "solver step budget exhausted"
	StopDeadline    = "check deadline exceeded"
	StopCondTimeout = "per-condition timeout exceeded"
	StopCancelled   = "cancelled"
)

// Ctl is the check-wide resource governor shared by every prover of
// one check (the sequential prover, or all of a pool's worker provers).
// It carries the caller's context, the check's wall-clock deadline, and
// the shared solver step budget. All fields are either immutable after
// construction or atomic, so any number of provers on concurrent
// goroutines may consult one Ctl.
//
// A nil *Ctl disables governance entirely: the prover's hot loops then
// skip every check, and verdicts are bit-identical to an ungoverned
// run.
type Ctl struct {
	ctx      context.Context
	deadline time.Time // zero means no deadline
	hasSteps bool
	steps    atomic.Int64 // remaining step budget (valid when hasSteps)

	stop atomic.Int32 // 0 running, 1 budget exhausted, 2 deadline passed

	budgetHits   atomic.Int64
	deadlineHits atomic.Int64
	condTimeouts atomic.Int64
}

const (
	stopNone int32 = iota
	stopBudget
	stopDeadline
)

// NewCtl builds a governor. deadline is the absolute wall-clock bound
// (zero for none); steps the total solver step budget (0 for
// unlimited). ctx may be nil for context.Background().
func NewCtl(ctx context.Context, deadline time.Time, steps int64) *Ctl {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Ctl{ctx: ctx, deadline: deadline, hasSteps: steps > 0}
	c.steps.Store(steps)
	return c
}

// Ctx returns the context the governor watches.
func (c *Ctl) Ctx() context.Context {
	if c == nil {
		return context.Background()
	}
	return c.ctx
}

// spend consumes n steps from the shared budget, reporting whether the
// budget is now exhausted.
func (c *Ctl) spend(n int64) bool {
	if !c.hasSteps {
		return false
	}
	if c.steps.Add(-n) < 0 {
		if c.stop.CompareAndSwap(stopNone, stopBudget) {
			c.budgetHits.Add(1)
		}
		return true
	}
	return false
}

// checkDeadline latches the deadline stop when the wall clock has
// passed it.
func (c *Ctl) checkDeadline(now time.Time) bool {
	if c.deadline.IsZero() || now.Before(c.deadline) {
		return false
	}
	if c.stop.CompareAndSwap(stopNone, stopDeadline) {
		c.deadlineHits.Add(1)
	}
	return true
}

// ResourceStop reports why the check's resource envelope is exhausted
// ("" while it is not): the shared step budget ran out or the check
// deadline passed. It consults the wall clock, so callers outside the
// solver's tick loop (the engine's per-condition short-circuit) observe
// a passed deadline promptly.
func (c *Ctl) ResourceStop() string {
	if c == nil {
		return ""
	}
	switch c.stop.Load() {
	case stopBudget:
		return StopBudget
	case stopDeadline:
		return StopDeadline
	}
	if !c.deadline.IsZero() && c.checkDeadline(time.Now()) {
		return StopDeadline
	}
	return ""
}

// BudgetHits, DeadlineHits, and CondTimeouts are the governor's
// counters, emitted by the core as budget_exhausted, deadline_hits,
// and cond_timeouts.
func (c *Ctl) BudgetHits() int64 {
	if c == nil {
		return 0
	}
	return c.budgetHits.Load()
}

func (c *Ctl) DeadlineHits() int64 {
	if c == nil {
		return 0
	}
	return c.deadlineHits.Load()
}

func (c *Ctl) CondTimeouts() int64 {
	if c == nil {
		return 0
	}
	return c.condTimeouts.Load()
}

// StepsRemaining reports the unspent step budget (0 when unlimited).
func (c *Ctl) StepsRemaining() int64 {
	if c == nil || !c.hasSteps {
		return 0
	}
	if n := c.steps.Load(); n > 0 {
		return n
	}
	return 0
}

// slowCheckMask throttles the expensive per-tick checks (ctx.Err and
// time.Now) to every 64th tick; the step budget is charged on every
// tick.
const slowCheckMask = 63

// tick is the prover's per-unit-of-work governance hook, called from
// every hot loop (eliminations, residue-enumeration leaves, quantifier
// elimination nodes, clause folding). It reports whether the prover
// must abandon the current query: the trip reason is latched in p.trip
// and the query's answer degrades to the conservative "not proved".
//
// With no governor and no per-condition deadline armed, tick costs one
// atomic load (the fault-injection check) and two nil compares, and
// never trips — the ungoverned path is bit-identical.
func (p *Prover) tick() bool {
	faults.Fire(faults.SolverStep)
	if p.trip != "" {
		return true
	}
	c := p.Ctl
	if c == nil && p.condDeadline.IsZero() {
		return false
	}
	p.ticks++
	if c != nil && c.hasSteps && c.spend(1) {
		p.trip = StopBudget
		return true
	}
	if p.ticks&slowCheckMask != 0 {
		return false
	}
	if c != nil {
		switch c.stop.Load() {
		case stopBudget:
			p.trip = StopBudget
			return true
		case stopDeadline:
			p.trip = StopDeadline
			return true
		}
		if c.ctx.Err() != nil {
			p.trip = StopCancelled
			return true
		}
		if !c.deadline.IsZero() && c.checkDeadline(time.Now()) {
			p.trip = StopDeadline
			return true
		}
	}
	if !p.condDeadline.IsZero() && !time.Now().Before(p.condDeadline) {
		p.trip = StopCondTimeout
		if c != nil {
			c.condTimeouts.Add(1)
		}
		return true
	}
	return false
}

// BeginCond opens a new per-condition proof scope: deadline is the
// condition's wall-clock bound (zero for none). A previous condition's
// timeout trip is cleared — the timeout isolates one pathological
// condition without poisoning the rest — while check-wide trips
// (budget, deadline, cancellation) persist.
func (p *Prover) BeginCond(deadline time.Time) {
	p.condDeadline = deadline
	if p.trip == StopCondTimeout {
		p.trip = ""
	}
}

// ResourceStop reports why this prover has stopped doing real proof
// work for resource reasons ("" when it has not): its own trip, or the
// shared governor's. Cancellation is excluded — it is reported through
// the context, not the verdict.
func (p *Prover) ResourceStop() string {
	switch p.trip {
	case StopBudget, StopDeadline, StopCondTimeout:
		return p.trip
	}
	return p.Ctl.ResourceStop()
}

// Cancelled reports whether the prover tripped on caller cancellation.
func (p *Prover) Cancelled() bool { return p.trip == StopCancelled }

// Stopped reports whether the prover should stop doing proof work for
// any reason — its own trip (resource or cancellation) or the shared
// governor's exhausted envelope. Engines consult it to short-circuit
// work between queries; it is always false when ungoverned.
func (p *Prover) Stopped() bool {
	return p.trip != "" || p.Ctl.ResourceStop() != ""
}
