package solver

import (
	"math/rand"
	"testing"

	"mcsafe/internal/expr"
)

// TestPruneQuantVacuousGuard: ∀v.(guard(v) -> P) with P independent of v
// and a satisfiable guard collapses to P.
func TestPruneQuantVacuousGuard(t *testing.T) {
	p := New()
	v := expr.Var("v")
	P := expr.GeExpr(expr.V("x"), expr.Constant(0))
	f := expr.Forall{V: v, F: expr.Implies(
		expr.LtExpr(expr.V(v), expr.V("y")), P)}
	got := p.PruneQuant(f)
	if got.String() != P.String() {
		t.Errorf("PruneQuant = %v, want %v", got, P)
	}
}

// TestPruneQuantDistributesOverAnd: ∀v.(A(v) ∧ B) keeps the quantifier
// only on the conjunct that mentions v.
func TestPruneQuantDistributesOverAnd(t *testing.T) {
	p := New()
	v := expr.Var("v")
	a := expr.GeExpr(expr.V(v), expr.Constant(0))
	b := expr.GeExpr(expr.V("x"), expr.Constant(1))
	f := expr.Forall{V: v, F: expr.Conj(a, b)}
	got := p.PruneQuant(f)
	// The x-conjunct must appear unquantified.
	free := map[expr.Var]bool{}
	got.FreeVars(free)
	if !free["x"] {
		t.Fatalf("PruneQuant lost the free conjunct: %v", got)
	}
	// And the result is still conjoined with a ∀ over the v-part.
	if _, isAnd := got.(expr.And); !isAnd {
		t.Errorf("expected a conjunction, got %T: %v", got, got)
	}
}

// TestPruneQuantStrengthensOnly: the pruned formula always implies...
// rather, the pruned formula must IMPLY the original is not guaranteed;
// the guarantee is the other way: pruned => original (sound
// strengthening). Verify by random evaluation.
func TestPruneQuantSoundDirection(t *testing.T) {
	p := New()
	r := rand.New(rand.NewSource(77))
	dom := []int64{-3, -2, -1, 0, 1, 2, 3}
	for i := 0; i < 500; i++ {
		// Build ∀v.(atom(v,x) -> atom2(x,y)) shapes randomly.
		v := expr.Var("v")
		guard := expr.Ge(expr.Term(int64(r.Intn(3)-1), v).
			Add(expr.Term(int64(r.Intn(3)-1), "x")).AddConst(int64(r.Intn(5) - 2)))
		body := expr.Ge(expr.Term(int64(r.Intn(3)-1), "x").
			Add(expr.Term(int64(r.Intn(3)-1), "y")).AddConst(int64(r.Intn(5) - 2)))
		f := expr.Forall{V: v, F: expr.Implies(guard, body)}
		g := p.PruneQuant(f)
		for j := 0; j < 50; j++ {
			env := map[expr.Var]int64{
				"x": int64(r.Intn(7) - 3),
				"y": int64(r.Intn(7) - 3),
			}
			if g.Eval(env, dom) && !f.Eval(env, dom) {
				t.Fatalf("PruneQuant weakened the formula:\n f=%v\n g=%v\n env=%v", f, g, env)
			}
		}
	}
}

// TestGeneralizeClausesSharpens: per-clause generalization yields the
// sharp single-atom facts that the whole-formula generalization washes
// out.
func TestGeneralizeClausesSharpens(t *testing.T) {
	p := New()
	g2 := expr.V("%g2")
	g4 := expr.V("%g4")
	// W = (2g2+1 < g4 -> g2 >= 0): ¬W = {2g2+1 < g4, g2 <= -1}.
	w := expr.Implies(expr.LtExpr(g2.Scale(2).AddConst(1), g4), expr.Ge(g2))
	// Eliminating g4 projects the clause onto g2 <= -1; its negation is
	// the sharp fact g2 >= 0.
	got := p.GeneralizeClauses(w, []expr.Var{"%g4"})
	found := false
	for _, f := range got {
		if p.Valid(expr.Implies(f, expr.Ge(g2))) && p.Valid(expr.Implies(expr.Ge(g2), f)) {
			found = true
		}
	}
	if !found {
		t.Errorf("GeneralizeClauses = %v, want a candidate equivalent to g2 >= 0", got)
	}
}

// TestGeneralizeClausesAreStrengthenings: every candidate implies the
// original formula (they are strengthening candidates).
func TestGeneralizeClausesAreStrengthenings(t *testing.T) {
	p := New()
	r := rand.New(rand.NewSource(88))
	for i := 0; i < 300; i++ {
		a := expr.Ge(expr.Term(int64(r.Intn(3)-1), "x").
			Add(expr.Term(int64(r.Intn(3)-1), "y")).AddConst(int64(r.Intn(5) - 2)))
		b := expr.Ge(expr.Term(int64(r.Intn(3)-1), "x").
			Add(expr.Term(int64(r.Intn(3)-1), "z")).AddConst(int64(r.Intn(5) - 2)))
		w := expr.Implies(a, b)
		for _, cand := range p.GeneralizeClauses(w, []expr.Var{"x"}) {
			for j := 0; j < 40; j++ {
				env := map[expr.Var]int64{
					"x": int64(r.Intn(9) - 4),
					"y": int64(r.Intn(9) - 4),
					"z": int64(r.Intn(9) - 4),
				}
				if cand.Eval(env, nil) && !w.Eval(env, nil) {
					t.Fatalf("candidate %v does not imply %v at %v", cand, w, env)
				}
			}
		}
	}
}

// TestGeneralizeClausesQuantified: quantified inputs go through QE first.
func TestGeneralizeClausesQuantified(t *testing.T) {
	p := New()
	v := expr.Var("v")
	w := expr.Forall{V: v, F: expr.Implies(
		expr.NeExpr(expr.V(v), expr.Constant(0)),
		expr.GeExpr(expr.V("x"), expr.Constant(0)))}
	got := p.GeneralizeClauses(w, nil)
	if len(got) == 0 {
		t.Fatal("quantified input should still generalize")
	}
}
