// Package solver implements the safety checker's theorem prover for
// Presburger-style formulas: linear equalities and inequalities over
// integer variables plus divisibility (alignment) constraints, combined
// with the usual connectives and quantifiers.
//
// The paper uses the Omega Library; this is a from-scratch replacement
// built around integer Fourier-Motzkin elimination with the Omega test's
// real/dark shadows. The prover is sound and three-valued at heart: it
// answers "valid" only when certain, and treats everything it cannot
// decide as "not proved", which makes the overall safety checker reject
// rather than accept in the presence of incompleteness.
package solver

import (
	"fmt"
	"sort"
	"time"

	"mcsafe/internal/expr"
	"mcsafe/internal/obs"
)

// Limits bound the work the prover will do before giving a conservative
// answer.
type Limits struct {
	MaxFMConstraints int // constraint-count cap during elimination
	MaxResidueCombos int // residue enumeration cap for congruences
	MaxDNFClauses    int
}

// DefaultLimits are generous enough for all formulas the checker
// generates for the paper's 13 evaluation programs.
var DefaultLimits = Limits{
	MaxFMConstraints: 4096,
	MaxResidueCombos: 1 << 16,
	MaxDNFClauses:    expr.MaxDNFClauses,
}

// Stats counts prover activity, reported by the benchmark harness and
// the observability layer.
type Stats struct {
	ValidQueries int
	CacheHits    int
	Eliminations int
	// DNFBlowups counts disjunctive-normal-form conversions abandoned
	// at the clause cap — each one is a formula the prover had to
	// answer conservatively.
	DNFBlowups int
}

// Prover decides validity of formulas. A Prover caches results by
// canonical formula string (the caching enhancement of Section 5.2.3).
// A Prover itself is not safe for concurrent use — its Stats and scratch
// state have a single owner — but many provers on concurrent goroutines
// may share one ShardedCache (see NewShared), because a verdict is a
// pure function of the canonical formula.
type Prover struct {
	Lim   Limits
	Stats Stats
	// Obs, when non-nil, records one span per solved (cache-missing)
	// validity query. Like the prover itself it is single-owner: the
	// worker must belong to the goroutine driving this prover.
	Obs *obs.Worker
	// Ctl, when non-nil, governs the prover's resource use: the hot
	// loops consult it (see tick) so a single pathological query is
	// interruptible mid-proof by cancellation, deadline, or step
	// budget. Many provers of one check share one Ctl.
	Ctl    *Ctl
	cache  map[string]bool // private cache; nil when shared is set
	shared *ShardedCache   // concurrency-safe cache shared across provers

	// condDeadline bounds the current condition's proof (zero = none);
	// see BeginCond. trip latches why the prover stopped ("" while
	// running); ticks counts governance checks since construction.
	condDeadline time.Time
	trip         string
	ticks        int64
}

// New returns a prover with default limits and a private (single-owner)
// result cache.
func New() *Prover {
	return &Prover{Lim: DefaultLimits, cache: make(map[string]bool)}
}

// NewShared returns a prover with default limits backed by a
// concurrency-safe formula cache that may be shared with other provers
// running on other goroutines.
func NewShared(c *ShardedCache) *Prover {
	return &Prover{Lim: DefaultLimits, shared: c}
}

// SharedCache returns the cache this prover shares with others, or nil
// when the prover uses a private cache.
func (p *Prover) SharedCache() *ShardedCache { return p.shared }

// Valid reports whether f is valid (true under every integer assignment
// of its free variables). A false answer means "not proved": the formula
// may be valid but outside the decidable fragment the prover handles
// exactly.
func (p *Prover) Valid(f expr.Formula) bool {
	p.Stats.ValidQueries++
	key := f.String()
	if p.shared != nil {
		if r, ok := p.shared.Get(key); ok {
			p.Stats.CacheHits++
			return r
		}
		r := p.solve(f, key)
		// A verdict reached under a resource trip is budget-dependent,
		// not a fact about the formula: never cache it.
		if p.trip == "" {
			p.shared.Put(key, r)
		}
		return r
	}
	if r, ok := p.cache[key]; ok {
		p.Stats.CacheHits++
		return r
	}
	r := p.solve(f, key)
	if p.trip == "" {
		p.cache[key] = r
	}
	return r
}

// solve runs the decision procedure on a cache miss, wrapped in a
// "query" span when an observer is attached. Cache hits get no span:
// they cost no prover effort, and are tallied by the cache-hit counter
// instead.
func (p *Prover) solve(f expr.Formula, key string) bool {
	if p.Obs == nil {
		return p.valid(f)
	}
	p.Obs.Begin("query", "solver.Valid")
	r := p.valid(f)
	p.Obs.End("formula", obs.TruncateFormula(key), "valid", fmt.Sprint(r))
	return r
}

// Implied reports whether hyp -> goal is valid.
func (p *Prover) Implied(hyp, goal expr.Formula) bool {
	return p.Valid(expr.Implies(hyp, goal))
}

func (p *Prover) valid(f expr.Formula) bool {
	if p.tick() {
		return false // interrupted: conservatively "not proved"
	}
	// f valid  iff  ¬f unsatisfiable.
	neg, exact := p.qe(expr.NNF(expr.Negate(f)), true)
	if !exact {
		return false
	}
	clauses, err := expr.DNF(neg)
	if err != nil {
		p.Stats.DNFBlowups++
		return false
	}
	for _, c := range clauses {
		if !p.clauseUnsat(c) {
			return false
		}
	}
	return true
}

// Unsat reports whether f is certainly unsatisfiable.
func (p *Prover) Unsat(f expr.Formula) bool {
	return p.Valid(expr.Negate(f))
}

// qe eliminates quantifiers from an NNF formula. overApprox selects the
// approximation direction: when true the result may be weaker than f (an
// over-approximation, safe when f is being refuted); when false it may be
// stronger (an under-approximation, safe when f is being proved). The
// second result is false when no approximation in the requested direction
// could be produced.
func (p *Prover) qe(f expr.Formula, overApprox bool) (expr.Formula, bool) {
	switch g := f.(type) {
	case expr.TrueF, expr.FalseF, expr.AtomF:
		return f, true
	case expr.And:
		fs := make([]expr.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			r, ok := p.qe(sub, overApprox)
			if !ok {
				return nil, false
			}
			fs[i] = r
		}
		return expr.Conj(fs...), true
	case expr.Or:
		fs := make([]expr.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			r, ok := p.qe(sub, overApprox)
			if !ok {
				return nil, false
			}
			fs[i] = r
		}
		return expr.Disj(fs...), true
	case expr.Not:
		r, ok := p.qe(expr.NNF(g), overApprox)
		return r, ok
	case expr.Exists:
		body, ok := p.qe(g.F, overApprox)
		if !ok {
			return nil, false
		}
		clauses, err := expr.DNF(body)
		if err != nil {
			p.Stats.DNFBlowups++
			return nil, false
		}
		var out []expr.Formula
		for _, c := range clauses {
			elim, ok2 := p.eliminateFromClause(c, g.V, overApprox)
			if !ok2 {
				return nil, false
			}
			out = append(out, expr.ClauseFormula(elim))
		}
		return expr.Simplify(expr.Disj(out...)), true
	case expr.Forall:
		// ∀v.φ == ¬∃v.¬φ ; to approximate ∀ in one direction we need
		// ∃v.¬φ approximated in the opposite direction.
		inner, ok := p.qe(expr.NNF(expr.Negate(g.F)), !overApprox)
		if !ok {
			return nil, false
		}
		clauses, err := expr.DNF(inner)
		if err != nil {
			p.Stats.DNFBlowups++
			return nil, false
		}
		var out []expr.Formula
		for _, c := range clauses {
			elim, ok2 := p.eliminateFromClause(c, g.V, !overApprox)
			if !ok2 {
				return nil, false
			}
			out = append(out, expr.ClauseFormula(elim))
		}
		r, ok2 := p.qe(expr.NNF(expr.Negate(expr.Disj(out...))), overApprox)
		if !ok2 {
			return nil, false
		}
		return expr.Simplify(r), true
	}
	return f, true
}

// eliminateFromClause removes variable v from a conjunction of atoms,
// producing an approximation of the projection of the clause onto the
// remaining variables. When overApprox is true it computes the real
// shadow (a superset of the true projection, possibly dropping
// divisibility constraints on v); when false the dark shadow (a subset).
// The second result is false when no approximation in the requested
// direction could be produced.
func (p *Prover) eliminateFromClause(c expr.Clause, v expr.Var, overApprox bool) (expr.Clause, bool) {
	if p.tick() {
		// Interrupted: report that no approximation could be produced.
		// Every caller degrades conservatively (the query stays
		// unproved); callers that ignore the flag receive an empty
		// clause, a sound over-approximation.
		return nil, false
	}
	p.Stats.Eliminations++

	// First use an equality with a ±1 coefficient on v to substitute.
	for i, a := range c {
		if a.Kind != expr.EQ {
			continue
		}
		coef := a.E.CoefOf(v)
		if coef == 1 || coef == -1 {
			// v = (-E + coef*v) / coef  i.e. v = (coef*v - E*... )
			// From coef*v + rest = 0: v = -rest/coef.
			rest := a.E.Sub(expr.Term(coef, v))
			repl := rest.Scale(-coef) // -rest when coef=1, rest when coef=-1
			out := make(expr.Clause, 0, len(c)-1)
			for j, b := range c {
				if j == i {
					continue
				}
				out = append(out, expr.Atom{Kind: b.Kind, M: b.M, E: b.E.Subst(v, repl)})
			}
			return out, true
		}
	}

	// Classify atoms mentioning v into lower bounds (cL*v + eL >= 0 with
	// cL > 0, i.e. v >= -eL/cL) and upper bounds (-cU*v + eU >= 0 with
	// cU > 0, i.e. v <= eU/cU). Equalities split into one of each.
	type bound struct {
		c int64 // positive multiplier of v
		e expr.LinExpr
	}
	var lowers, uppers []bound
	var rest expr.Clause
	addGE := func(a expr.LinExpr) {
		coef := a.CoefOf(v)
		e := a.Sub(expr.Term(coef, v))
		if coef > 0 {
			lowers = append(lowers, bound{c: coef, e: e})
		} else {
			uppers = append(uppers, bound{c: -coef, e: e})
		}
	}
	for _, a := range c {
		coef := a.E.CoefOf(v)
		if coef == 0 {
			rest = append(rest, a)
			continue
		}
		switch a.Kind {
		case expr.EQ:
			addGE(a.E)
			addGE(a.E.Scale(-1))
		case expr.GE:
			addGE(a.E)
		case expr.DIV:
			// Dropping a divisibility constraint weakens the clause,
			// which only an over-approximation may do.
			if !overApprox {
				return rest, false
			}
		}
	}
	if len(lowers)*len(uppers) > p.Lim.MaxFMConstraints {
		if overApprox {
			// Drop all constraints on v: weaker, but allowed.
			return rest, true
		}
		return rest, false
	}
	for _, lo := range lowers {
		for _, up := range uppers {
			// v >= -lo.e/lo.c and v <= up.e/up.c combine to the real
			// shadow lo.c*up.e + up.c*lo.e >= 0.
			comb := up.e.Scale(lo.c).Add(lo.e.Scale(up.c))
			if !overApprox && (lo.c > 1 || up.c > 1) {
				// Dark shadow: subtract (cL-1)(cU-1).
				comb = comb.AddConst(-(lo.c - 1) * (up.c - 1))
			}
			rest = append(rest, expr.Atom{Kind: expr.GE, E: comb})
		}
	}
	return rest, true
}

// clauseUnsat reports whether a conjunction of atoms is certainly
// unsatisfiable over the integers.
func (p *Prover) clauseUnsat(c expr.Clause) bool {
	// Normalize and constant-fold.
	work := make(expr.Clause, 0, len(c))
	for _, a := range c {
		f := expr.Simplify(expr.AtomF{A: a})
		switch g := f.(type) {
		case expr.FalseF:
			return true
		case expr.TrueF:
		case expr.AtomF:
			work = append(work, g.A)
		}
	}

	// Substitute equalities with unit coefficients; detect gcd failures.
	changed := true
	for changed {
		if p.tick() {
			return false // interrupted: not certainly unsat
		}
		changed = false
		for i, a := range work {
			if a.Kind != expr.EQ {
				continue
			}
			if cst, ok := a.E.IsConst(); ok {
				if cst != 0 {
					return true
				}
				work = append(work[:i], work[i+1:]...)
				changed = true
				break
			}
			g := int64(0)
			for _, co := range a.E.Coef {
				g = gcd64(g, co)
			}
			if g > 1 && a.E.Const%g != 0 {
				return true // no integer solution
			}
			var unit expr.Var
			var unitC int64
			for _, v := range a.E.Vars() {
				if co := a.E.CoefOf(v); co == 1 || co == -1 {
					unit, unitC = v, co
					break
				}
			}
			if unitC == 0 {
				continue
			}
			rest := a.E.Sub(expr.Term(unitC, unit))
			repl := rest.Scale(-unitC)
			next := make(expr.Clause, 0, len(work)-1)
			for j, b := range work {
				if j == i {
					continue
				}
				nb := expr.Atom{Kind: b.Kind, M: b.M, E: b.E.Subst(unit, repl)}
				f := expr.Simplify(expr.AtomF{A: nb})
				switch g2 := f.(type) {
				case expr.FalseF:
					return true
				case expr.TrueF:
				case expr.AtomF:
					next = append(next, g2.A)
				}
			}
			work = next
			changed = true
			break
		}
	}

	// Split remaining (non-unit) equalities into inequality pairs.
	var ineqs, divs expr.Clause
	for _, a := range work {
		switch a.Kind {
		case expr.EQ:
			ineqs = append(ineqs, expr.Atom{Kind: expr.GE, E: a.E})
			ineqs = append(ineqs, expr.Atom{Kind: expr.GE, E: a.E.Scale(-1)})
		case expr.GE:
			ineqs = append(ineqs, a)
		case expr.DIV:
			divs = append(divs, a)
		}
	}

	if p.congruencesUnsat(divs) {
		return true
	}
	return p.ineqsUnsat(ineqs)
}

// congruencesUnsat decides a system of divisibility constraints by
// residue enumeration after reducing coefficients modulo each modulus.
// It is exact when the search space fits the limits; otherwise it answers
// false (not certainly unsat).
func (p *Prover) congruencesUnsat(divs expr.Clause) bool {
	if len(divs) == 0 {
		return false
	}
	lcm := int64(1)
	varSet := make(map[expr.Var]bool)
	for _, a := range divs {
		m := a.M
		if m < 0 {
			m = -m
		}
		if m == 0 {
			continue
		}
		lcm = lcm / gcd64(lcm, m) * m
		for v := range a.E.Coef {
			varSet[v] = true
		}
		if lcm > 64 {
			return false
		}
	}
	vars := make([]expr.Var, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	total := int64(1)
	for range vars {
		total *= lcm
		if total > int64(p.Lim.MaxResidueCombos) {
			return false
		}
	}
	env := make(map[expr.Var]int64, len(vars))
	tripped := false
	var try func(i int) bool
	try = func(i int) bool {
		if p.tick() {
			// Interrupted mid-enumeration: pretend a satisfying residue
			// was found so the search unwinds immediately; tripped then
			// forces the conservative "not certainly unsat" answer.
			tripped = true
			return true
		}
		if i == len(vars) {
			for _, a := range divs {
				m := a.M
				if m < 0 {
					m = -m
				}
				if m == 0 {
					continue
				}
				if a.E.Eval(env)%m != 0 {
					return false
				}
			}
			return true
		}
		for r := int64(0); r < lcm; r++ {
			env[vars[i]] = r
			if try(i + 1) {
				return true
			}
		}
		return false
	}
	sat := try(0)
	if tripped {
		return false
	}
	return !sat
}

// ineqsUnsat runs Fourier-Motzkin elimination over the rationals (real
// shadow); if the final constant constraints are contradictory the system
// has no rational — hence no integer — solution.
func (p *Prover) ineqsUnsat(ineqs expr.Clause) bool {
	work := ineqs
	for {
		if p.tick() {
			return false // interrupted: not certainly unsat
		}
		// Collect variables; pick the one with the fewest pairings.
		varCount := make(map[expr.Var][2]int)
		for _, a := range work {
			for v, co := range a.E.Coef {
				cnt := varCount[v]
				if co > 0 {
					cnt[0]++
				} else {
					cnt[1]++
				}
				varCount[v] = cnt
			}
		}
		if len(varCount) == 0 {
			break
		}
		var bestV expr.Var
		bestCost := int(^uint(0) >> 1)
		vs := make([]expr.Var, 0, len(varCount))
		for v := range varCount {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for _, v := range vs {
			c := varCount[v]
			cost := c[0] * c[1]
			if cost < bestCost {
				bestCost, bestV = cost, v
			}
		}
		next, _ := p.eliminateFromClause(work, bestV, true)
		if len(next) > p.Lim.MaxFMConstraints {
			return false
		}
		// Constant-fold.
		folded := make(expr.Clause, 0, len(next))
		for _, a := range next {
			f := expr.Simplify(expr.AtomF{A: a})
			switch g := f.(type) {
			case expr.FalseF:
				return true
			case expr.TrueF:
			case expr.AtomF:
				folded = append(folded, g.A)
			}
		}
		work = folded
	}
	for _, a := range work {
		if cst, ok := a.E.IsConst(); ok {
			switch a.Kind {
			case expr.GE:
				if cst < 0 {
					return true
				}
			case expr.EQ:
				if cst != 0 {
					return true
				}
			}
		}
	}
	return false
}

// Eliminate projects away the given variables from a formula using
// real-shadow Fourier-Motzkin elimination per DNF clause. Quantifiers
// are first removed by over-approximating quantifier elimination, so the
// result is an over-approximation of ∃vars.f. This is the "elimination"
// step of the generalization heuristic of Section 5.2.1.
func (p *Prover) Eliminate(f expr.Formula, vars []expr.Var) (expr.Formula, error) {
	qf, ok := p.qe(expr.NNF(f), true)
	if !ok {
		return nil, fmt.Errorf("solver: cannot eliminate quantifiers")
	}
	clauses, err := expr.DNF(qf)
	if err != nil {
		p.Stats.DNFBlowups++
		return nil, err
	}
	var out []expr.Formula
	for _, c := range clauses {
		cur := c
		for _, v := range vars {
			cur, _ = p.eliminateFromClause(cur, v, true)
		}
		out = append(out, expr.ClauseFormula(cur))
	}
	return expr.Simplify(expr.Disj(out...)), nil
}

// Generalize computes the generalization of f: ¬(Eliminate(¬f, vars))
// (Section 5.2.1). The result is a strengthening candidate; callers must
// re-verify anything built from it.
func (p *Prover) Generalize(f expr.Formula, vars []expr.Var) (expr.Formula, error) {
	elim, err := p.Eliminate(expr.NNF(expr.Negate(f)), vars)
	if err != nil {
		return nil, err
	}
	return expr.Simplify(expr.NNF(expr.Negate(elim))), nil
}

// GeneralizeClauses computes one generalization per DNF clause of ¬f:
// ¬(eliminate(vars, clause)). When ¬f splits into several cases, a case
// whose projection is trivial (true) would otherwise wash out the useful
// generalizations of the other cases; per-clause results are the
// "several resulting generalizations" of Section 5.2.1, each tried in
// turn.
func (p *Prover) GeneralizeClauses(f expr.Formula, vars []expr.Var) []expr.Formula {
	qf, ok := p.qe(expr.NNF(expr.Negate(f)), true)
	if !ok {
		return nil
	}
	clauses, err := expr.DNF(qf)
	if err != nil {
		p.Stats.DNFBlowups++
		return nil
	}
	if len(clauses) > 64 {
		return nil
	}
	var out []expr.Formula
	for _, c := range clauses {
		cur := c
		for _, v := range vars {
			cur, _ = p.eliminateFromClause(cur, v, true)
		}
		g := expr.Simplify(expr.NNF(expr.Negate(expr.ClauseFormula(cur))))
		switch g.(type) {
		case expr.TrueF, expr.FalseF:
			continue
		}
		out = append(out, g)
		// The negation of a multi-atom projection is a disjunction, in
		// which the weakest disjunct dominates; the negation of each
		// individual atom is a stronger, often sharper candidate (e.g.
		// "limit <= n" rather than "limit <= n ∨ limit <= n+1").
		if len(cur) > 1 {
			for _, a := range cur {
				na := expr.Simplify(expr.NNF(expr.Negate(expr.AtomF{A: a})))
				switch na.(type) {
				case expr.TrueF, expr.FalseF:
					continue
				}
				out = append(out, na)
			}
		}
	}
	return out
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
