// Package solver implements the safety checker's theorem prover for
// Presburger-style formulas: linear equalities and inequalities over
// integer variables plus divisibility (alignment) constraints, combined
// with the usual connectives and quantifiers.
//
// The paper uses the Omega Library; this is a from-scratch replacement
// built around integer Fourier-Motzkin elimination with the Omega test's
// real/dark shadows. The prover is sound and three-valued at heart: it
// answers "valid" only when certain, and treats everything it cannot
// decide as "not proved", which makes the overall safety checker reject
// rather than accept in the presence of incompleteness.
package solver

import (
	"fmt"
	"sort"
	"time"

	"mcsafe/internal/expr"
	"mcsafe/internal/obs"
)

// Limits bound the work the prover will do before giving a conservative
// answer.
type Limits struct {
	MaxFMConstraints int // constraint-count cap during elimination
	MaxResidueCombos int // residue enumeration cap for congruences
	MaxDNFClauses    int
}

// DefaultLimits are generous enough for all formulas the checker
// generates for the paper's 13 evaluation programs.
var DefaultLimits = Limits{
	MaxFMConstraints: 4096,
	MaxResidueCombos: 1 << 16,
	MaxDNFClauses:    expr.MaxDNFClauses,
}

// Stats counts prover activity, reported by the benchmark harness and
// the observability layer.
type Stats struct {
	ValidQueries int
	CacheHits    int
	Eliminations int
	// DNFBlowups counts disjunctive-normal-form conversions abandoned
	// at the clause cap — each one is a formula the prover had to
	// answer conservatively.
	DNFBlowups int
	// FMPrefixReuses counts DNF clauses whose Fourier-Motzkin
	// elimination was answered from the clause memo instead of being
	// redone: conditions generated from a shared WLP prefix expand to
	// many identical clauses, and each reuse replays the memoized
	// run's elimination count into Eliminations (so that counter still
	// reflects recomputation) while skipping the work.
	FMPrefixReuses int
	// EarlyUnsatPrunes counts formulas or clauses discharged by the
	// cheap contradiction scan (directly contradictory bounds on one
	// linear part) before any DNF expansion or elimination ran.
	EarlyUnsatPrunes int
}

// Prover decides validity of formulas. A Prover caches results by
// structural fingerprint (the caching enhancement of Section 5.2.3,
// keyed by expr.FP instead of rebuilding the canonical string per
// probe; hits verify structural equality so a hash collision degrades
// to a miss). A Prover itself is not safe for concurrent use — its
// Stats and scratch state have a single owner — but many provers on
// concurrent goroutines may share one ShardedCache (see NewShared),
// because a verdict is a pure function of the formula.
type Prover struct {
	Lim   Limits
	Stats Stats
	// Obs, when non-nil, records one span per solved (cache-missing)
	// validity query. Like the prover itself it is single-owner: the
	// worker must belong to the goroutine driving this prover.
	Obs *obs.Worker
	// Intern, when non-nil, memoizes formula stringification for the
	// observer span attributes (the only remaining consumer of formula
	// strings on the solver path). Nil is fine: strings are then built
	// directly.
	Intern *expr.Interner
	// Ctl, when non-nil, governs the prover's resource use: the hot
	// loops consult it (see tick) so a single pathological query is
	// interruptible mid-proof by cancellation, deadline, or step
	// budget. Many provers of one check share one Ctl.
	Ctl    *Ctl
	cache  map[expr.FP]privEntry // private cache; nil when shared is set
	shared *ShardedCache         // concurrency-safe cache shared across provers

	// clauseMemo memoizes clauseUnsat by clause fingerprint, always
	// private (per-goroutine) state. Entries record the elimination
	// count of the memoized run so a hit replays it into Stats; see
	// clauseUnsatMemo.
	clauseMemo map[expr.FP]clauseMemoEntry

	// condDeadline bounds the current condition's proof (zero = none);
	// see BeginCond. trip latches why the prover stopped ("" while
	// running); ticks counts governance checks since construction.
	condDeadline time.Time
	trip         string
	ticks        int64
}

// privEntry is one private-cache slot: the verdict plus the formula it
// was computed for, verified on lookup so fingerprint collisions can
// only cost a recomputation, never an answer.
type privEntry struct {
	f       expr.Formula
	verdict bool
}

// clauseMemoEntry is one clause-memo slot; see clauseUnsatMemo.
type clauseMemoEntry struct {
	c     expr.Clause
	elims int
	unsat bool
}

// New returns a prover with default limits and a private (single-owner)
// result cache.
func New() *Prover {
	return &Prover{Lim: DefaultLimits, cache: make(map[expr.FP]privEntry)}
}

// NewShared returns a prover with default limits backed by a
// concurrency-safe formula cache that may be shared with other provers
// running on other goroutines.
func NewShared(c *ShardedCache) *Prover {
	return &Prover{Lim: DefaultLimits, shared: c}
}

// SharedCache returns the cache this prover shares with others, or nil
// when the prover uses a private cache.
func (p *Prover) SharedCache() *ShardedCache { return p.shared }

// Valid reports whether f is valid (true under every integer assignment
// of its free variables). A false answer means "not proved": the formula
// may be valid but outside the decidable fragment the prover handles
// exactly.
func (p *Prover) Valid(f expr.Formula) bool {
	p.Stats.ValidQueries++
	key := expr.Fingerprint(f)
	if p.shared != nil {
		if r, ok := p.shared.Get(key, 0, f); ok {
			p.Stats.CacheHits++
			return r
		}
		r := p.solve(f)
		// A verdict reached under a resource trip is budget-dependent,
		// not a fact about the formula: never cache it.
		if p.trip == "" {
			p.shared.Put(key, 0, f, r)
		}
		return r
	}
	if e, ok := p.cache[key]; ok && expr.Equal(e.f, f) {
		p.Stats.CacheHits++
		return e.verdict
	}
	r := p.solve(f)
	if p.trip == "" {
		p.cache[key] = privEntry{f: f, verdict: r}
	}
	return r
}

// solve runs the decision procedure on a cache miss, wrapped in a
// "query" span when an observer is attached. Cache hits get no span:
// they cost no prover effort, and are tallied by the cache-hit counter
// instead. The formula is stringified (through the intern table) only
// on this instrumented path — the no-op observer pays nothing.
func (p *Prover) solve(f expr.Formula) bool {
	if p.Obs == nil {
		return p.valid(f)
	}
	p.Obs.Begin("query", "solver.Valid")
	r := p.valid(f)
	p.Obs.End("formula", obs.TruncateFormula(p.Intern.StringOf(f)), "valid", fmt.Sprint(r))
	return r
}

// Implied reports whether hyp -> goal is valid.
func (p *Prover) Implied(hyp, goal expr.Formula) bool {
	return p.Valid(expr.Implies(hyp, goal))
}

func (p *Prover) valid(f expr.Formula) bool {
	if p.tick() {
		return false // interrupted: conservatively "not proved"
	}
	// f valid  iff  ¬f unsatisfiable.
	neg, exact := p.qe(expr.NNF(expr.Negate(f)), true)
	if !exact {
		return false
	}
	// Stream the DNF clauses of ¬f out of the formula tree instead of
	// materializing the cross product: the walker prunes any branch
	// whose partial clause is already contradictory, so a contradiction
	// shared by a subtree's clauses is paid for once instead of once
	// per clause — and the (often exponential) slice churn of building
	// clauses that exist only to be refuted never happens at all.
	//
	// Two passes over the same precompiled tree. The first only counts
	// branches against the visit budget, so a query that blows up
	// halfway costs cheap branch visits, never a discarded
	// Fourier-Motzkin run. The second re-walks and eliminates each
	// surviving clause in place — no clause is ever materialized; the
	// first satisfiable one aborts the search exactly where the
	// materializing expansion would have stopped scanning its list.
	root := compileDNF(expr.NNF(neg))
	w := dnfWalker{p: p}
	ok := w.walk(root, nil)
	if w.tripped {
		return false // interrupted: conservatively "not proved"
	}
	if w.blowup || !ok {
		p.Stats.DNFBlowups++
		return false
	}
	e := dnfWalker{p: p, eliminate: true}
	ok = e.walk(root, nil)
	if e.tripped {
		return false
	}
	return ok
}

// dnfWalker enumerates the DNF clauses of a quantifier-free NNF
// formula by depth-first search, in exactly the order expr.DNF would
// materialize them. prefix is the partial clause on the current path;
// bounds tracks the strongest lower bound per linear variable part
// (the incremental form of atomsUnsatFast), with an undo log so
// backtracking restores it in O(changes). A contradiction raised while
// pushing an atom prunes the entire subtree under it.
type dnfWalker struct {
	p      *Prover
	prefix expr.Clause
	fps    []expr.FP // fps[i]: incremental clause FP over prefix[:i+1]
	bounds map[expr.FP]fastBound
	undo   []boundUndo
	// visits counts completed branches — surviving leaves plus pruned
	// subtrees. Capped at MaxDNFClauses so the walk never does more
	// branch-work than the materializing expansion would have: a prune
	// retires at least one of the old expansion's clauses, so any query
	// that fit the cap before still fits, while a query that blew up
	// before gets its grace budget spent on (cheap) prunes and may now
	// resolve if its contradictions sit near the root.
	visits int
	// freeConts recycles continuation frames: the DFS allocates and
	// releases them in LIFO order, so a freelist caps allocations at
	// the maximum conjunction-nesting depth instead of one per branch.
	freeConts *conjCont
	// eliminate selects the second pass: leaves run clause elimination
	// in place (aborting the walk at the first satisfiable clause)
	// instead of being counted, and the budget/prune counters are left
	// alone — the first pass already charged them.
	eliminate bool
	blowup    bool // visit count exceeded MaxDNFClauses, or non-QF input
	tripped   bool // resource governor interrupted the walk
}

// fastBound records varPart(e) >= lower, derived from the atom e >= 0.
type fastBound struct {
	e     expr.LinExpr
	lower int64
}

// boundUndo is one undo-log record: the previous slot content for fp.
type boundUndo struct {
	fp      expr.FP
	prev    fastBound
	existed bool
}

// wKind discriminates the walker's precompiled nodes.
type wKind byte

const (
	wTrue wKind = iota
	wFalse
	wAtom
	wAnd
	wOr
	wBad // quantified or negated subformula: not quantifier-free
)

// wBound is one precompiled bound record to push for an atom: the
// expression e of "e >= 0" plus both variable-part fingerprints,
// computed once per query instead of once per branch revisit.
type wBound struct {
	e     expr.LinExpr
	posFP expr.FP // VarPartFP(e, false)
	negFP expr.FP // VarPartFP(e, true)
}

// wNode is one precompiled NNF node. Atom nodes carry everything the
// incremental contradiction scan needs — constant verdicts, bound
// records, the negated expression of an equality — so the DFS, which
// revisits a node once per surrounding disjunction branch, does no
// fingerprinting or expression arithmetic of its own.
type wNode struct {
	kind   wKind
	atom   expr.Atom
	atomFP expr.FP  // expr.AtomFP(atom), for incremental clause keys
	cstBad bool     // constant atom, and it is contradictory
	bounds []wBound // bound records (1 for GE, 2 for EQ, none otherwise)
	kids   []wNode
}

// compileDNF precompiles a quantifier-free NNF formula for the walker,
// visiting each node exactly once.
func compileDNF(f expr.Formula) *wNode {
	n := &wNode{}
	compileInto(f, n)
	return n
}

func compileInto(f expr.Formula, n *wNode) {
	switch g := f.(type) {
	case expr.TrueF:
		n.kind = wTrue
	case expr.FalseF:
		n.kind = wFalse
	case expr.AtomF:
		n.kind = wAtom
		n.atom = g.A
		n.atomFP = expr.AtomFP(g.A)
		if cst, ok := g.A.E.IsConst(); ok {
			switch g.A.Kind {
			case expr.GE:
				n.cstBad = cst < 0
			case expr.EQ:
				n.cstBad = cst != 0
			case expr.DIV:
				m := g.A.M
				if m < 0 {
					m = -m
				}
				if m == 0 {
					n.cstBad = cst != 0
				} else {
					n.cstBad = cst%m != 0
				}
			}
			return
		}
		mk := func(e expr.LinExpr) wBound {
			return wBound{e: e, posFP: expr.VarPartFP(e, false), negFP: expr.VarPartFP(e, true)}
		}
		switch g.A.Kind {
		case expr.GE:
			n.bounds = []wBound{mk(g.A.E)}
		case expr.EQ:
			n.bounds = []wBound{mk(g.A.E), mk(g.A.E.Scale(-1))}
		}
	case expr.And:
		n.kind = wAnd
		n.kids = compileKids(g.Fs)
	case expr.Or:
		n.kind = wOr
		n.kids = compileKids(g.Fs)
	default:
		n.kind = wBad
	}
}

func compileKids(fs []expr.Formula) []wNode {
	kids := make([]wNode, len(fs))
	for i, sub := range fs {
		compileInto(sub, &kids[i])
	}
	return kids
}

// conjCont is the continuation of a conjunction: the remaining
// conjuncts to expand once the current subformula's clauses complete.
type conjCont struct {
	fs   []wNode
	next *conjCont
}

// walk reports whether every completed clause of f⋀k is unsatisfiable.
// Pruned branches count as unsatisfiable (every clause below them
// contains the contradictory prefix); a false return short-circuits
// the whole search, as does a blowup or a governance trip.
func (w *dnfWalker) walk(n *wNode, k *conjCont) bool {
	switch n.kind {
	case wTrue:
		return w.resume(k)
	case wFalse:
		return true // contributes no clauses
	case wAtom:
		pm, um := len(w.prefix), len(w.undo)
		var r bool
		if w.push(n) {
			if !w.eliminate {
				w.p.Stats.EarlyUnsatPrunes++
			}
			r = w.spend()
		} else {
			r = w.resume(k)
		}
		w.popTo(pm, um)
		return r
	case wAnd:
		return w.seq(n.kids, k)
	case wOr:
		for i := range n.kids {
			if !w.walk(&n.kids[i], k) {
				return false
			}
		}
		return true
	}
	// Quantified or negated subformula (qe should have removed these).
	// Treated like expr.DNF's error: conservative.
	w.blowup = true
	return false
}

func (w *dnfWalker) seq(fs []wNode, k *conjCont) bool {
	if len(fs) == 0 {
		return w.resume(k)
	}
	if len(fs) == 1 {
		return w.walk(&fs[0], k)
	}
	c := w.freeConts
	if c == nil {
		c = &conjCont{}
	} else {
		w.freeConts = c.next
	}
	c.fs, c.next = fs[1:], k
	r := w.walk(&fs[0], c)
	// c is dead once the subtree walk returns; recycle it.
	c.fs, c.next = nil, w.freeConts
	w.freeConts = c
	return r
}

func (w *dnfWalker) resume(k *conjCont) bool {
	if k == nil {
		return w.leaf()
	}
	return w.seq(k.fs, k.next)
}

// spend charges one completed branch against the visit budget and
// reports whether the walk may continue. The eliminate pass retraces
// branches the first pass already paid for, so it only honors the
// resource governor.
func (w *dnfWalker) spend() bool {
	if w.p.tick() {
		w.tripped = true
		return false
	}
	if w.eliminate {
		return true
	}
	w.visits++
	if w.visits > w.p.Lim.MaxDNFClauses {
		w.blowup = true
		return false
	}
	return true
}

// leaf handles one completed surviving clause. The budget pass just
// counts it; the eliminate pass runs the clause memo / Fourier-Motzkin
// on the live prefix — no copy, the memo key comes from the
// incremental fingerprint chain in O(1) — and a satisfiable clause
// (returning false) aborts the walk: ¬f is satisfiable, f unproved.
func (w *dnfWalker) leaf() bool {
	if !w.spend() {
		return false
	}
	if !w.eliminate {
		return true
	}
	seed := expr.ClauseFPSeed()
	if n := len(w.fps); n > 0 {
		seed = w.fps[n-1]
	}
	return w.p.clauseUnsatMemo(seed.ClauseFPDone(len(w.prefix)), w.prefix)
}

// push appends n's atom to the clause prefix and reports whether it
// contradicts the prefix by inspection — the incremental equivalent of
// running atomsUnsatFast over the completed clause.
func (w *dnfWalker) push(n *wNode) bool {
	seed := expr.ClauseFPSeed()
	if l := len(w.fps); l > 0 {
		seed = w.fps[l-1]
	}
	w.fps = append(w.fps, seed.MixFP(n.atomFP))
	w.prefix = append(w.prefix, n.atom)
	if n.cstBad {
		return true
	}
	for i := range n.bounds {
		if w.addGE(&n.bounds[i]) {
			return true
		}
	}
	return false
}

// addGE records g.e >= 0, i.e. varPart(e) >= -e.Const, and reports a
// contradiction against the strongest recorded bound on the negated
// variable part: -P >= l means P <= -l, contradicting P >= -c when
// l > c. Every fingerprint match is verified against the actual
// coefficients, so a hash collision can only miss a pruning
// opportunity, never manufacture a contradiction.
func (w *dnfWalker) addGE(g *wBound) bool {
	if b, ok := w.bounds[g.negFP]; ok && expr.SameVarPart(b.e, g.e, true) && b.lower > g.e.Const {
		return true
	}
	b, ok := w.bounds[g.posFP]
	if !ok || (expr.SameVarPart(b.e, g.e, false) && -g.e.Const > b.lower) {
		if w.bounds == nil {
			w.bounds = make(map[expr.FP]fastBound)
		}
		w.undo = append(w.undo, boundUndo{fp: g.posFP, prev: b, existed: ok})
		w.bounds[g.posFP] = fastBound{e: g.e, lower: -g.e.Const}
	}
	return false
}

// popTo backtracks the prefix and the bounds map to a saved mark.
func (w *dnfWalker) popTo(prefixLen, undoLen int) {
	w.prefix = w.prefix[:prefixLen]
	w.fps = w.fps[:prefixLen]
	for i := len(w.undo) - 1; i >= undoLen; i-- {
		u := w.undo[i]
		if u.existed {
			w.bounds[u.fp] = u.prev
		} else {
			delete(w.bounds, u.fp)
		}
	}
	w.undo = w.undo[:undoLen]
}

// clauseUnsatMemo answers clauseUnsat through the per-prover clause
// memo. Conditions generated from one WLP prefix share their leading
// conjuncts, so their negations expand to largely identical DNF
// clauses; the memo turns every repeat into a fingerprint probe. A hit
// replays the memoized run's elimination count into Stats so the
// effort counters are bit-identical to recomputing, and verdicts
// reached under a resource trip are never memoized (they are
// budget-dependent, not facts about the clause).
func (p *Prover) clauseUnsatMemo(key expr.FP, c expr.Clause) bool {
	if m, ok := p.clauseMemo[key]; ok && clauseEqual(m.c, c) {
		p.Stats.FMPrefixReuses++
		p.Stats.Eliminations += m.elims
		return m.unsat
	}
	before := p.Stats.Eliminations
	r := p.clauseUnsat(c)
	if p.trip == "" {
		if p.clauseMemo == nil {
			p.clauseMemo = make(map[expr.FP]clauseMemoEntry)
		}
		// c aliases the walker's live prefix; snapshot it before it is
		// backtracked out from under the memo.
		stored := make(expr.Clause, len(c))
		copy(stored, c)
		p.clauseMemo[key] = clauseMemoEntry{c: stored, unsat: r, elims: p.Stats.Eliminations - before}
	}
	return r
}

// clauseEqual is order-sensitive structural equality of clauses — the
// exact relation expr.ClauseFP approximates.
func clauseEqual(a, b expr.Clause) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].M != b[i].M || !a[i].E.Equal(b[i].E) {
			return false
		}
	}
	return true
}

// atomsUnsatFast reports whether the conjunction of atoms is certainly
// unsatisfiable by inspection: a constant-false atom, or a pair of
// inequalities bounding the same linear part into an empty interval
// (e + c >= 0 ∧ -e + d >= 0 with -c > d). It is the one-shot reference
// form of the dnfWalker's incremental scan — the walker prunes exactly
// the clauses this function rejects — kept as the oracle for the
// equivalence tests. It is sound: every fingerprint match is verified
// against the actual coefficients, so a hash collision cannot
// manufacture a contradiction.
func atomsUnsatFast(atoms expr.Clause) bool {
	type bound struct {
		e     expr.LinExpr // varPart(e) >= lower was derived from this
		lower int64
	}
	var bounds map[expr.FP]bound
	// addGE records e >= 0, i.e. varPart(e) >= -e.Const, and reports a
	// contradiction against the strongest recorded bound on the negated
	// variable part: -P >= l means P <= -l, contradicting P >= -c when
	// l > c.
	addGE := func(e expr.LinExpr) bool {
		if b, ok := bounds[expr.VarPartFP(e, true)]; ok && expr.SameVarPart(b.e, e, true) && b.lower > e.Const {
			return true
		}
		fp := expr.VarPartFP(e, false)
		if b, ok := bounds[fp]; !ok || (expr.SameVarPart(b.e, e, false) && -e.Const > b.lower) {
			bounds[fp] = bound{e: e, lower: -e.Const}
		}
		return false
	}
	for _, a := range atoms {
		if cst, ok := a.E.IsConst(); ok {
			switch a.Kind {
			case expr.GE:
				if cst < 0 {
					return true
				}
			case expr.EQ:
				if cst != 0 {
					return true
				}
			case expr.DIV:
				m := a.M
				if m < 0 {
					m = -m
				}
				if m == 0 && cst != 0 {
					return true
				}
				if m != 0 && cst%m != 0 {
					return true
				}
			}
			continue
		}
		if bounds == nil {
			bounds = make(map[expr.FP]bound, 2*len(atoms))
		}
		switch a.Kind {
		case expr.GE:
			if addGE(a.E) {
				return true
			}
		case expr.EQ:
			if addGE(a.E) || addGE(a.E.Scale(-1)) {
				return true
			}
		}
	}
	return false
}

// Unsat reports whether f is certainly unsatisfiable.
func (p *Prover) Unsat(f expr.Formula) bool {
	return p.Valid(expr.Negate(f))
}

// qe eliminates quantifiers from an NNF formula. overApprox selects the
// approximation direction: when true the result may be weaker than f (an
// over-approximation, safe when f is being refuted); when false it may be
// stronger (an under-approximation, safe when f is being proved). The
// second result is false when no approximation in the requested direction
// could be produced.
func (p *Prover) qe(f expr.Formula, overApprox bool) (expr.Formula, bool) {
	// Most formulas the checker proves are already quantifier-free; for
	// those the recursive rebuild below is semantically the identity
	// (NNF already flattened through the same smart constructors), so
	// skip it with one read-only walk instead of reallocating the tree.
	if expr.QuantFree(f) {
		return f, true
	}
	switch g := f.(type) {
	case expr.TrueF, expr.FalseF, expr.AtomF:
		return f, true
	case expr.And:
		fs := make([]expr.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			r, ok := p.qe(sub, overApprox)
			if !ok {
				return nil, false
			}
			fs[i] = r
		}
		return expr.Conj(fs...), true
	case expr.Or:
		fs := make([]expr.Formula, len(g.Fs))
		for i, sub := range g.Fs {
			r, ok := p.qe(sub, overApprox)
			if !ok {
				return nil, false
			}
			fs[i] = r
		}
		return expr.Disj(fs...), true
	case expr.Not:
		r, ok := p.qe(expr.NNF(g), overApprox)
		return r, ok
	case expr.Exists:
		body, ok := p.qe(g.F, overApprox)
		if !ok {
			return nil, false
		}
		clauses, err := expr.DNF(body)
		if err != nil {
			p.Stats.DNFBlowups++
			return nil, false
		}
		var out []expr.Formula
		for _, c := range clauses {
			elim, ok2 := p.eliminateFromClause(c, g.V, overApprox)
			if !ok2 {
				return nil, false
			}
			out = append(out, expr.ClauseFormula(elim))
		}
		return expr.Simplify(expr.Disj(out...)), true
	case expr.Forall:
		// ∀v.φ == ¬∃v.¬φ ; to approximate ∀ in one direction we need
		// ∃v.¬φ approximated in the opposite direction.
		inner, ok := p.qe(expr.NNF(expr.Negate(g.F)), !overApprox)
		if !ok {
			return nil, false
		}
		clauses, err := expr.DNF(inner)
		if err != nil {
			p.Stats.DNFBlowups++
			return nil, false
		}
		var out []expr.Formula
		for _, c := range clauses {
			elim, ok2 := p.eliminateFromClause(c, g.V, !overApprox)
			if !ok2 {
				return nil, false
			}
			out = append(out, expr.ClauseFormula(elim))
		}
		r, ok2 := p.qe(expr.NNF(expr.Negate(expr.Disj(out...))), overApprox)
		if !ok2 {
			return nil, false
		}
		return expr.Simplify(r), true
	}
	return f, true
}

// eliminateFromClause removes variable v from a conjunction of atoms,
// producing an approximation of the projection of the clause onto the
// remaining variables. When overApprox is true it computes the real
// shadow (a superset of the true projection, possibly dropping
// divisibility constraints on v); when false the dark shadow (a subset).
// The second result is false when no approximation in the requested
// direction could be produced.
func (p *Prover) eliminateFromClause(c expr.Clause, v expr.Var, overApprox bool) (expr.Clause, bool) {
	if p.tick() {
		// Interrupted: report that no approximation could be produced.
		// Every caller degrades conservatively (the query stays
		// unproved); callers that ignore the flag receive an empty
		// clause, a sound over-approximation.
		return nil, false
	}
	p.Stats.Eliminations++

	// First use an equality with a ±1 coefficient on v to substitute.
	for i, a := range c {
		if a.Kind != expr.EQ {
			continue
		}
		coef := a.E.CoefOf(v)
		if coef == 1 || coef == -1 {
			// v = (-E + coef*v) / coef  i.e. v = (coef*v - E*... )
			// From coef*v + rest = 0: v = -rest/coef.
			rest := a.E.Sub(expr.Term(coef, v))
			repl := rest.Scale(-coef) // -rest when coef=1, rest when coef=-1
			out := make(expr.Clause, 0, len(c)-1)
			for j, b := range c {
				if j == i {
					continue
				}
				out = append(out, expr.Atom{Kind: b.Kind, M: b.M, E: b.E.Subst(v, repl)})
			}
			return out, true
		}
	}

	// Classify atoms mentioning v into lower bounds (cL*v + eL >= 0 with
	// cL > 0, i.e. v >= -eL/cL) and upper bounds (-cU*v + eU >= 0 with
	// cU > 0, i.e. v <= eU/cU). Equalities split into one of each.
	type bound struct {
		c int64 // positive multiplier of v
		e expr.LinExpr
	}
	var lowers, uppers []bound
	var rest expr.Clause
	addGE := func(a expr.LinExpr) {
		coef := a.CoefOf(v)
		e := a.Sub(expr.Term(coef, v))
		if coef > 0 {
			lowers = append(lowers, bound{c: coef, e: e})
		} else {
			uppers = append(uppers, bound{c: -coef, e: e})
		}
	}
	for _, a := range c {
		coef := a.E.CoefOf(v)
		if coef == 0 {
			rest = append(rest, a)
			continue
		}
		switch a.Kind {
		case expr.EQ:
			addGE(a.E)
			addGE(a.E.Scale(-1))
		case expr.GE:
			addGE(a.E)
		case expr.DIV:
			// Dropping a divisibility constraint weakens the clause,
			// which only an over-approximation may do.
			if !overApprox {
				return rest, false
			}
		}
	}
	if len(lowers)*len(uppers) > p.Lim.MaxFMConstraints {
		if overApprox {
			// Drop all constraints on v: weaker, but allowed.
			return rest, true
		}
		return rest, false
	}
	for _, lo := range lowers {
		for _, up := range uppers {
			// v >= -lo.e/lo.c and v <= up.e/up.c combine to the real
			// shadow lo.c*up.e + up.c*lo.e >= 0.
			comb := up.e.Scale(lo.c).Add(lo.e.Scale(up.c))
			if !overApprox && (lo.c > 1 || up.c > 1) {
				// Dark shadow: subtract (cL-1)(cU-1).
				comb = comb.AddConst(-(lo.c - 1) * (up.c - 1))
			}
			rest = append(rest, expr.Atom{Kind: expr.GE, E: comb})
		}
	}
	return rest, true
}

// clauseUnsat reports whether a conjunction of atoms is certainly
// unsatisfiable over the integers.
func (p *Prover) clauseUnsat(c expr.Clause) bool {
	// Normalize and constant-fold.
	work := make(expr.Clause, 0, len(c))
	for _, a := range c {
		f := expr.Simplify(expr.AtomF{A: a})
		switch g := f.(type) {
		case expr.FalseF:
			return true
		case expr.TrueF:
		case expr.AtomF:
			work = append(work, g.A)
		}
	}

	// Substitute equalities with unit coefficients; detect gcd failures.
	changed := true
	for changed {
		if p.tick() {
			return false // interrupted: not certainly unsat
		}
		changed = false
		for i, a := range work {
			if a.Kind != expr.EQ {
				continue
			}
			if cst, ok := a.E.IsConst(); ok {
				if cst != 0 {
					return true
				}
				work = append(work[:i], work[i+1:]...)
				changed = true
				break
			}
			g := int64(0)
			for _, t := range a.E.Terms() {
				g = gcd64(g, t.C)
			}
			if g > 1 && a.E.Const%g != 0 {
				return true // no integer solution
			}
			var unit expr.Var
			var unitC int64
			for _, t := range a.E.Terms() {
				if t.C == 1 || t.C == -1 {
					unit, unitC = t.V, t.C
					break
				}
			}
			if unitC == 0 {
				continue
			}
			rest := a.E.Sub(expr.Term(unitC, unit))
			repl := rest.Scale(-unitC)
			next := make(expr.Clause, 0, len(work)-1)
			for j, b := range work {
				if j == i {
					continue
				}
				nb := expr.Atom{Kind: b.Kind, M: b.M, E: b.E.Subst(unit, repl)}
				f := expr.Simplify(expr.AtomF{A: nb})
				switch g2 := f.(type) {
				case expr.FalseF:
					return true
				case expr.TrueF:
				case expr.AtomF:
					next = append(next, g2.A)
				}
			}
			work = next
			changed = true
			break
		}
	}

	// Split remaining (non-unit) equalities into inequality pairs.
	var ineqs, divs expr.Clause
	for _, a := range work {
		switch a.Kind {
		case expr.EQ:
			ineqs = append(ineqs, expr.Atom{Kind: expr.GE, E: a.E})
			ineqs = append(ineqs, expr.Atom{Kind: expr.GE, E: a.E.Scale(-1)})
		case expr.GE:
			ineqs = append(ineqs, a)
		case expr.DIV:
			divs = append(divs, a)
		}
	}

	if p.congruencesUnsat(divs) {
		return true
	}
	return p.ineqsUnsat(ineqs)
}

// congruencesUnsat decides a system of divisibility constraints by
// residue enumeration after reducing coefficients modulo each modulus.
// It is exact when the search space fits the limits; otherwise it answers
// false (not certainly unsat).
func (p *Prover) congruencesUnsat(divs expr.Clause) bool {
	if len(divs) == 0 {
		return false
	}
	lcm := int64(1)
	varSet := make(map[expr.Var]bool)
	for _, a := range divs {
		m := a.M
		if m < 0 {
			m = -m
		}
		if m == 0 {
			continue
		}
		lcm = lcm / gcd64(lcm, m) * m
		for _, t := range a.E.Terms() {
			varSet[t.V] = true
		}
		if lcm > 64 {
			return false
		}
	}
	vars := make([]expr.Var, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	total := int64(1)
	for range vars {
		total *= lcm
		if total > int64(p.Lim.MaxResidueCombos) {
			return false
		}
	}
	env := make(map[expr.Var]int64, len(vars))
	tripped := false
	var try func(i int) bool
	try = func(i int) bool {
		if p.tick() {
			// Interrupted mid-enumeration: pretend a satisfying residue
			// was found so the search unwinds immediately; tripped then
			// forces the conservative "not certainly unsat" answer.
			tripped = true
			return true
		}
		if i == len(vars) {
			for _, a := range divs {
				m := a.M
				if m < 0 {
					m = -m
				}
				if m == 0 {
					continue
				}
				if a.E.Eval(env)%m != 0 {
					return false
				}
			}
			return true
		}
		for r := int64(0); r < lcm; r++ {
			env[vars[i]] = r
			if try(i + 1) {
				return true
			}
		}
		return false
	}
	sat := try(0)
	if tripped {
		return false
	}
	return !sat
}

// ineqsUnsat runs Fourier-Motzkin elimination over the rationals (real
// shadow); if the final constant constraints are contradictory the system
// has no rational — hence no integer — solution.
func (p *Prover) ineqsUnsat(ineqs expr.Clause) bool {
	work := ineqs
	for {
		if p.tick() {
			return false // interrupted: not certainly unsat
		}
		// Collect variables; pick the one with the fewest pairings.
		varCount := make(map[expr.Var][2]int)
		for _, a := range work {
			for _, t := range a.E.Terms() {
				cnt := varCount[t.V]
				if t.C > 0 {
					cnt[0]++
				} else {
					cnt[1]++
				}
				varCount[t.V] = cnt
			}
		}
		if len(varCount) == 0 {
			break
		}
		var bestV expr.Var
		bestCost := int(^uint(0) >> 1)
		vs := make([]expr.Var, 0, len(varCount))
		for v := range varCount {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for _, v := range vs {
			c := varCount[v]
			cost := c[0] * c[1]
			if cost < bestCost {
				bestCost, bestV = cost, v
			}
		}
		next, _ := p.eliminateFromClause(work, bestV, true)
		if len(next) > p.Lim.MaxFMConstraints {
			return false
		}
		// Constant-fold.
		folded := make(expr.Clause, 0, len(next))
		for _, a := range next {
			f := expr.Simplify(expr.AtomF{A: a})
			switch g := f.(type) {
			case expr.FalseF:
				return true
			case expr.TrueF:
			case expr.AtomF:
				folded = append(folded, g.A)
			}
		}
		work = folded
	}
	for _, a := range work {
		if cst, ok := a.E.IsConst(); ok {
			switch a.Kind {
			case expr.GE:
				if cst < 0 {
					return true
				}
			case expr.EQ:
				if cst != 0 {
					return true
				}
			}
		}
	}
	return false
}

// Eliminate projects away the given variables from a formula using
// real-shadow Fourier-Motzkin elimination per DNF clause. Quantifiers
// are first removed by over-approximating quantifier elimination, so the
// result is an over-approximation of ∃vars.f. This is the "elimination"
// step of the generalization heuristic of Section 5.2.1.
func (p *Prover) Eliminate(f expr.Formula, vars []expr.Var) (expr.Formula, error) {
	qf, ok := p.qe(expr.NNF(f), true)
	if !ok {
		return nil, fmt.Errorf("solver: cannot eliminate quantifiers")
	}
	clauses, err := expr.DNF(qf)
	if err != nil {
		p.Stats.DNFBlowups++
		return nil, err
	}
	var out []expr.Formula
	for _, c := range clauses {
		cur := c
		for _, v := range vars {
			cur, _ = p.eliminateFromClause(cur, v, true)
		}
		out = append(out, expr.ClauseFormula(cur))
	}
	return expr.Simplify(expr.Disj(out...)), nil
}

// Generalize computes the generalization of f: ¬(Eliminate(¬f, vars))
// (Section 5.2.1). The result is a strengthening candidate; callers must
// re-verify anything built from it.
func (p *Prover) Generalize(f expr.Formula, vars []expr.Var) (expr.Formula, error) {
	elim, err := p.Eliminate(expr.NNF(expr.Negate(f)), vars)
	if err != nil {
		return nil, err
	}
	return expr.Simplify(expr.NNF(expr.Negate(elim))), nil
}

// GeneralizeClauses computes one generalization per DNF clause of ¬f:
// ¬(eliminate(vars, clause)). When ¬f splits into several cases, a case
// whose projection is trivial (true) would otherwise wash out the useful
// generalizations of the other cases; per-clause results are the
// "several resulting generalizations" of Section 5.2.1, each tried in
// turn.
func (p *Prover) GeneralizeClauses(f expr.Formula, vars []expr.Var) []expr.Formula {
	qf, ok := p.qe(expr.NNF(expr.Negate(f)), true)
	if !ok {
		return nil
	}
	// Only expansions of at most 64 clauses are usable below, so cap
	// the conversion there instead of materializing a huge expansion
	// just to measure it. The over-cap bail-out is a search-policy cut,
	// not a prover blowup, and is not counted in DNFBlowups.
	clauses, err := expr.DNFUpTo(qf, 64)
	if err != nil {
		return nil
	}
	var out []expr.Formula
	for _, c := range clauses {
		cur := c
		for _, v := range vars {
			cur, _ = p.eliminateFromClause(cur, v, true)
		}
		g := expr.Simplify(expr.NNF(expr.Negate(expr.ClauseFormula(cur))))
		switch g.(type) {
		case expr.TrueF, expr.FalseF:
			continue
		}
		out = append(out, g)
		// The negation of a multi-atom projection is a disjunction, in
		// which the weakest disjunct dominates; the negation of each
		// individual atom is a stronger, often sharper candidate (e.g.
		// "limit <= n" rather than "limit <= n ∨ limit <= n+1").
		if len(cur) > 1 {
			for _, a := range cur {
				na := expr.Simplify(expr.NNF(expr.Negate(expr.AtomF{A: a})))
				switch na.(type) {
				case expr.TrueF, expr.FalseF:
					continue
				}
				out = append(out, na)
			}
		}
	}
	return out
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
