package solver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mcsafe/internal/expr"
	"mcsafe/internal/faults"
)

// chainFormula builds a valid but elimination-heavy query: a
// transitivity chain x0 >= x1 >= ... >= xn implying x0 >= xn. Each link
// costs the prover a couple of governance ticks, so n calibrates how
// much budget the proof needs (~2n ticks).
func chainFormula(n int) expr.Formula {
	x := func(i int) expr.LinExpr { return expr.V(expr.Var(fmt.Sprintf("x%d", i))) }
	var hyp []expr.Formula
	for i := 0; i < n; i++ {
		hyp = append(hyp, expr.GeExpr(x(i), x(i+1)))
	}
	return expr.Implies(expr.Conj(hyp...), expr.GeExpr(x(0), x(n)))
}

// TestStepBudgetTripsConservatively: a query whose proof exceeds the
// step budget must degrade to the conservative "not proved", latch the
// budget stop, and never be cached.
func TestStepBudgetTripsConservatively(t *testing.T) {
	f := chainFormula(2000)

	// Sanity: an ungoverned prover proves the chain.
	if !New().Valid(f) {
		t.Fatal("ungoverned prover should prove the chain")
	}

	p := New()
	p.Ctl = NewCtl(nil, time.Time{}, 50)
	if p.Valid(f) {
		t.Fatal("budget-tripped query must answer false (conservative)")
	}
	if got := p.ResourceStop(); got != StopBudget {
		t.Fatalf("ResourceStop() = %q, want %q", got, StopBudget)
	}
	if hits := p.Ctl.BudgetHits(); hits != 1 {
		t.Errorf("BudgetHits() = %d, want 1", hits)
	}
	if len(p.cache) != 0 {
		t.Errorf("tripped verdict was cached: %d entries", len(p.cache))
	}
}

// TestGenerousBudgetBitIdentical: with a budget far above the proof's
// needs, verdicts and effort stats must be identical to the ungoverned
// prover on a mixed workload.
func TestGenerousBudgetBitIdentical(t *testing.T) {
	workload := []expr.Formula{
		chainFormula(100),
		expr.Ge(expr.Constant(-1)),
		expr.Implies(expr.Ge(expr.V("x")), expr.Ge(expr.V("x"))),
		expr.Negate(expr.Eq(expr.V("x").Scale(2).AddConst(-1))),
		chainFormula(40),
	}
	bare, governed := New(), New()
	governed.Ctl = NewCtl(context.Background(), time.Now().Add(time.Hour), 1<<40)
	for i, f := range workload {
		got, want := governed.Valid(f), bare.Valid(f)
		if got != want {
			t.Errorf("query %d: governed %v, ungoverned %v", i, got, want)
		}
	}
	if bare.Stats != governed.Stats {
		t.Errorf("stats diverged: ungoverned %+v, governed %+v", bare.Stats, governed.Stats)
	}
	if got := governed.ResourceStop(); got != "" {
		t.Errorf("generous budget tripped: %q", got)
	}
}

// TestCondTimeoutIsolated: a per-condition deadline abandons the slow
// condition's query, and BeginCond for the next condition clears the
// trip so later proofs proceed.
func TestCondTimeoutIsolated(t *testing.T) {
	// Each solver tick sleeps 1ms, so the 64-tick slow check fires
	// ~64ms in — far past the 10ms condition deadline.
	restore := faults.Activate(faults.NewPlan(faults.Fault{
		Point: faults.SolverStep, Kind: faults.Delay, Repeat: true, Sleep: time.Millisecond,
	}))
	p := New()
	p.Ctl = NewCtl(nil, time.Time{}, 0)
	p.BeginCond(time.Now().Add(10 * time.Millisecond))
	if p.Valid(chainFormula(2000)) {
		t.Fatal("timed-out query must answer false")
	}
	if got := p.ResourceStop(); got != StopCondTimeout {
		t.Fatalf("ResourceStop() = %q, want %q", got, StopCondTimeout)
	}
	if p.Ctl.CondTimeouts() != 1 {
		t.Errorf("CondTimeouts() = %d, want 1", p.Ctl.CondTimeouts())
	}
	restore()

	// The next condition starts a fresh scope: the trip clears and an
	// easy proof succeeds.
	p.BeginCond(time.Time{})
	if got := p.ResourceStop(); got != "" {
		t.Fatalf("trip survived BeginCond: %q", got)
	}
	if !p.Valid(expr.Ge(expr.Constant(0))) {
		t.Error("prover did not recover after a condition timeout")
	}
}

// TestCancelReturnsPromptly: cancelling the context mid-query must
// unwind the solver's hot loops within a couple of slow-check windows,
// even when every tick is artificially slowed — the stuck-query
// scenario.
func TestCancelReturnsPromptly(t *testing.T) {
	restore := faults.Activate(faults.NewPlan(faults.Fault{
		Point: faults.SolverStep, Kind: faults.Delay, Repeat: true, Sleep: time.Millisecond,
	}))
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	p := New()
	p.Ctl = NewCtl(ctx, time.Time{}, 0)
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()

	// Slowed 1ms/tick, the ~4000-tick chain would take ~4s un-cancelled.
	start := time.Now()
	ok := p.Valid(chainFormula(2000))
	elapsed := time.Since(start)
	if ok {
		t.Fatal("cancelled query must answer false")
	}
	if !p.Cancelled() {
		t.Fatalf("prover trip = %q, want cancellation", p.trip)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancelled query took %v; the cancel was not prompt", elapsed)
	}
}

// TestDeadlineTripsWithinEnvelope: a check deadline interrupts a slowed
// query mid-proof and latches the deadline stop.
func TestDeadlineTripsWithinEnvelope(t *testing.T) {
	restore := faults.Activate(faults.NewPlan(faults.Fault{
		Point: faults.SolverStep, Kind: faults.Delay, Repeat: true, Sleep: time.Millisecond,
	}))
	defer restore()

	p := New()
	p.Ctl = NewCtl(nil, time.Now().Add(15*time.Millisecond), 0)
	start := time.Now()
	if p.Valid(chainFormula(2000)) {
		t.Fatal("deadline-tripped query must answer false")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline overrun: query took %v", elapsed)
	}
	if got := p.ResourceStop(); got != StopDeadline {
		t.Fatalf("ResourceStop() = %q, want %q", got, StopDeadline)
	}
	if p.Ctl.DeadlineHits() != 1 {
		t.Errorf("DeadlineHits() = %d, want 1", p.Ctl.DeadlineHits())
	}
}
