package solver

import (
	"math/rand"
	"testing"

	"mcsafe/internal/expr"
)

func genLin(r *rand.Rand) expr.LinExpr {
	vars := []expr.Var{"x", "y", "z"}
	e := expr.Constant(int64(r.Intn(17) - 8))
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		e = e.Add(expr.Term(int64(r.Intn(7)-3), vars[r.Intn(len(vars))]))
	}
	return e
}

func genClause(r *rand.Rand) expr.Clause {
	c := make(expr.Clause, 0, 4)
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		e := genLin(r)
		switch r.Intn(4) {
		case 0:
			c = append(c, expr.Atom{Kind: expr.EQ, E: e})
		case 1:
			c = append(c, expr.Atom{Kind: expr.DIV, M: int64(2 + r.Intn(3)), E: e})
		default:
			c = append(c, expr.Atom{Kind: expr.GE, E: e})
		}
	}
	// Seed likely contradictions: duplicate an inequality negated with a
	// gap, so the fast scan has something to find.
	if r.Intn(2) == 0 {
		e := genLin(r)
		c = append(c,
			expr.Atom{Kind: expr.GE, E: e},
			expr.Atom{Kind: expr.GE, E: e.Scale(-1).AddConst(int64(-1 - r.Intn(3)))})
	}
	return c
}

// TestWalkerPruneMatchesOracle checks that the dnfWalker's incremental
// contradiction scan prunes exactly the clauses atomsUnsatFast (the
// one-shot reference oracle) rejects: walking a single-clause formula
// either prunes it (EarlyUnsatPrunes++) or completes it as a survivor,
// and which of the two happens must agree with the oracle.
func TestWalkerPruneMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	var pruned, kept int
	for i := 0; i < 3000; i++ {
		c := genClause(r)
		want := atomsUnsatFast(c)
		p := New()
		w := dnfWalker{p: p}
		ok := w.walk(compileDNF(expr.ClauseFormula(c)), nil)
		if !ok || w.blowup || w.tripped {
			t.Fatalf("clause %d: walk failed (ok=%v blowup=%v tripped=%v)", i, ok, w.blowup, w.tripped)
		}
		got := p.Stats.EarlyUnsatPrunes == 1
		if got != want {
			t.Fatalf("clause %d: walker pruned=%v, oracle unsat=%v, clause %v", i, got, want, c)
		}
		if w.visits != 1 {
			t.Fatalf("clause %d: visits=%d, want 1", i, w.visits)
		}
		if got {
			pruned++
		} else {
			kept++
		}
	}
	t.Logf("%d clauses pruned, %d kept", pruned, kept)
	if pruned == 0 || kept == 0 {
		t.Fatal("corpus degenerated: both pruned and surviving clauses must occur")
	}
}

func genQF(r *rand.Rand, depth int) expr.Formula {
	if depth <= 0 {
		e := genLin(r)
		if r.Intn(4) == 0 {
			return expr.Eq(e)
		}
		return expr.Ge(e)
	}
	switch r.Intn(5) {
	case 0:
		fs := make([]expr.Formula, 2)
		for i := range fs {
			fs[i] = genQF(r, depth-1)
		}
		return expr.Conj(fs...)
	case 1, 2:
		fs := make([]expr.Formula, 2)
		for i := range fs {
			fs[i] = genQF(r, depth-1)
		}
		return expr.Disj(fs...)
	case 3:
		return expr.Implies(genQF(r, depth-1), genQF(r, depth-1))
	default:
		return expr.Negate(genQF(r, depth-1))
	}
}

// TestTwoPassWalkerMatchesMaterializedDNF compares the streaming
// two-pass walker against the old materializing decision procedure —
// expand the full DNF of ¬f, then eliminate clause by clause — on a
// random quantifier-free corpus. Whenever the materialized expansion
// fits its cap, the verdicts must be identical.
func TestTwoPassWalkerMatchesMaterializedDNF(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	var proved int
	for i := 0; i < 800; i++ {
		f := genQF(r, 3)

		oracle := New()
		neg, exact := oracle.qe(expr.NNF(expr.Negate(f)), true)
		if !exact {
			continue
		}
		clauses, err := expr.DNF(expr.NNF(neg))
		if err != nil {
			continue // materialized path blows up: walker may do better
		}
		want := true
		for _, c := range clauses {
			if !oracle.clauseUnsat(c) {
				want = false
				break
			}
		}

		p := New()
		if got := p.valid(f); got != want {
			t.Fatalf("formula %d: walker=%v materialized=%v\n%s", i, got, want, f)
		}
		if want {
			proved++
		}
	}
	t.Logf("%d formulas proved by both paths", proved)
	if proved == 0 {
		t.Fatal("corpus never produced a proved formula")
	}
}

// TestClauseMemoReplayIdentity checks the memo's accounting contract: a
// hit returns the memoized verdict, bumps FMPrefixReuses, and replays
// exactly the elimination count of the original run, so the effort
// counters are bit-identical to recomputing.
func TestClauseMemoReplayIdentity(t *testing.T) {
	x, y := expr.V(expr.Var("x")), expr.V(expr.Var("y"))
	// Needs genuine elimination: coupled inequalities with no unit
	// equality shortcut.
	c := expr.Clause{
		{Kind: expr.GE, E: expr.Term(3, "x").Sub(y)},
		{Kind: expr.GE, E: y.Sub(expr.Term(2, "x")).AddConst(-1)},
		{Kind: expr.GE, E: x.AddConst(-1)},
		{Kind: expr.GE, E: x.Scale(-1).AddConst(4)},
	}
	key := expr.ClauseFP(c)
	p := New()

	first := p.clauseUnsatMemo(key, c)
	elims := p.Stats.Eliminations
	if elims == 0 {
		t.Fatal("test clause did not exercise elimination")
	}
	if p.Stats.FMPrefixReuses != 0 {
		t.Fatal("first run must not count as a reuse")
	}

	second := p.clauseUnsatMemo(key, c)
	if second != first {
		t.Fatalf("memo flipped verdict: first=%v second=%v", first, second)
	}
	if p.Stats.FMPrefixReuses != 1 {
		t.Fatalf("FMPrefixReuses=%d, want 1", p.Stats.FMPrefixReuses)
	}
	if p.Stats.Eliminations != 2*elims {
		t.Fatalf("Eliminations=%d after replay, want %d (2x first run)", p.Stats.Eliminations, 2*elims)
	}

	// A same-fingerprint probe with a different clause must be treated
	// as a miss (verified hit policy), not answered from the memo.
	other := expr.Clause{{Kind: expr.GE, E: x}}
	before := p.Stats.FMPrefixReuses
	p.clauseUnsatMemo(key, other)
	if p.Stats.FMPrefixReuses != before {
		t.Fatal("colliding key with different clause was answered from the memo")
	}
}
