package policy

import (
	"strings"
	"testing"

	"mcsafe/internal/expr"
	"mcsafe/internal/sparc"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// TestValConstraint: val(loc) names the value stored in an abstract
// location in initial constraints (host data invariants).
func TestValConstraint(t *testing.T) {
	src := `
struct timer { count int }
region H
loc tmr timer region H fields(count=init)
val tp ptr<timer> state {tmr} region H
constraint val(tmr.count) >= 0
invoke %o0 = tp
allow H timer.count rwo
allow H ptr<timer> rfo
`
	s, err := Parse(src, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	ini, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	got := ini.Constraints.String()
	if !strings.Contains(got, "val.tmr.count") {
		t.Errorf("constraints = %q, missing the val variable", got)
	}
	env := map[expr.Var]int64{"val.tmr.count": 3}
	if !ini.Constraints.Eval(env, nil) {
		t.Error("constraint should hold for count = 3")
	}
	env["val.tmr.count"] = -1
	if ini.Constraints.Eval(env, nil) {
		t.Error("constraint should fail for count = -1")
	}
}

// TestAbstractTypeEntity: abstract (opaque) host types get locations of
// the declared size and alignment; their values are copyable but not
// inspectable beyond the granted permissions.
func TestAbstractTypeEntity(t *testing.T) {
	src := `
abstract mutex size 8 align 8
region H
loc m mutex state init region H
val mp ptr<mutex> state {m} region H
invoke %o0 = mp
allow H mutex ro
allow H ptr<mutex> rfo
`
	s, err := Parse(src, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	ini, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	loc, ok := ini.World.Lookup("m")
	if !ok || loc.Size != 8 || loc.Align != 8 {
		t.Fatalf("mutex loc = %+v", loc)
	}
	ts := ini.Entry.Get("m")
	if ts.Type.Kind != types.Abstract {
		t.Errorf("mutex type = %v", ts.Type)
	}
}

// TestUnionTypeLookup: union members share offset 0 and both resolve.
func TestUnionDeclarationViaStruct(t *testing.T) {
	// The policy grammar has no union literal; unions enter through the
	// types package (used by LookUp). Check nested structs instead: a
	// struct containing a struct flattens to dotted field paths.
	src := `
struct inner { x int ; y int }
struct outer { hdr int ; in inner }
region H
loc o outer region H fields(hdr=init, in.x=init, in.y=uninit)
val op ptr<outer> state {o} region H
invoke %o0 = op
allow H outer.hdr ro
allow H outer.in.x ro
allow H outer.in.y rwo
`
	s, err := Parse(src, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	ini, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ini.World.Lookup("o.in.x"); !ok {
		t.Fatal("nested field location o.in.x missing")
	}
	y := ini.Entry.Get("o.in.y")
	if y.State.Kind != typestate.StateUninit {
		t.Errorf("o.in.y = %v, want uninit", y)
	}
	if !y.Access.Has(typestate.PermO) {
		t.Errorf("o.in.y perms = %v", y.Access)
	}
	x := ini.Entry.Get("o.in.x")
	if x.Access.Has(typestate.PermW) {
		t.Errorf("o.in.x should not be writable-valued: %v", x.Access)
	}
}

// TestGlobalArrayEntity: a global with an array type becomes a summary
// location whose address-of yields the array-base pointer type.
func TestGlobalArrayEntity(t *testing.T) {
	src := `
region H
global tab int[8] state init region H addr 0x20800
allow H int ro
allow H int[8] rfo
`
	s, err := Parse(src, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	ini, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	if ini.AddrToLoc[0x20800] != "tab" {
		t.Fatal("address binding missing")
	}
	lt := ini.LocTypes["tab"]
	if lt == nil || lt.Kind != types.ArrayBase || lt.N.Const != 8 {
		t.Fatalf("tab declared type = %v", lt)
	}
}

// TestPointsToWithOffsets: points-to sets may carry member offsets.
func TestPointsToWithOffsets(t *testing.T) {
	src := `
struct pair { a int ; b int }
region H
loc p pair region H fields(a=init, b=init)
val mid ptr<int> state {p+4} region H
invoke %o0 = mid
allow H pair.a ro
allow H pair.b ro
allow H ptr<int> rfo
`
	s, err := Parse(src, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	mid := s.Entity("mid")
	if len(mid.State.Set) != 1 || mid.State.Set[0].Off != 4 {
		t.Fatalf("mid state = %v", mid.State)
	}
}

// TestTrustedMultiplePrePost: repeated pre/post clauses conjoin.
func TestTrustedMultiplePrePost(t *testing.T) {
	src := `
trusted f args 2
  arg 0 int init
  arg 1 int init
  pre %o0 >= 0
  pre %o1 >= 1
  post %o0 >= 0
  post %o0 <= 100
end
`
	s, err := Parse(src, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	tf := s.Trusted["f"]
	env := map[expr.Var]int64{"%o0": 5, "%o1": 2}
	if !tf.Pre.Eval(env, nil) {
		t.Error("pre should hold")
	}
	env["%o1"] = 0
	if tf.Pre.Eval(env, nil) {
		t.Error("conjoined pre should fail for o1 = 0")
	}
	env = map[expr.Var]int64{"%o0": 100}
	if !tf.Post.Eval(env, nil) {
		t.Error("post should hold at 100")
	}
	env["%o0"] = 101
	if tf.Post.Eval(env, nil) {
		t.Error("conjoined post should fail at 101")
	}
}

// TestSpecComments: '#' comments anywhere; '!' is NOT a comment (formulas
// use !=).
func TestSpecComments(t *testing.T) {
	src := `
# leading comment
sym a   # trailing comment
constraint a != 0
invoke %o0 = a
`
	s, err := Parse(src, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Constraints) != 1 {
		t.Fatalf("constraints = %v", s.Constraints)
	}
	env := map[expr.Var]int64{"a": 0}
	if s.Constraints[0].Eval(env, nil) {
		t.Error("a != 0 should fail at 0")
	}
}
