package policy

import (
	"strings"
	"testing"

	"mcsafe/internal/expr"
	"mcsafe/internal/rtl"
	"mcsafe/internal/sparc"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// fig1Spec is the host typestate, safety policy, and invocation
// specification of Figure 1: arr is an integer array of size n (n >= 1),
// e summarizes its elements, V is the region holding both.
const fig1Spec = `
# Figure 1: summing the elements of an integer array.
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`

func parseFig1(t *testing.T) *Spec {
	t.Helper()
	s, err := Parse(fig1Spec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseFig1(t *testing.T) {
	s := parseFig1(t)
	if !s.Regions["V"] {
		t.Error("region V missing")
	}
	e := s.Entity("e")
	if e == nil || !e.Summary || e.Region != "V" || e.IsVal {
		t.Fatalf("e = %+v", e)
	}
	if e.State.Kind != typestate.StateInit {
		t.Errorf("e state = %v", e.State)
	}
	arr := s.Entity("arr")
	if arr == nil || !arr.IsVal {
		t.Fatalf("arr = %+v", arr)
	}
	if arr.Type.Kind != types.ArrayBase || arr.Type.N.Name != "n" {
		t.Errorf("arr type = %v", arr.Type)
	}
	if arr.State.Kind != typestate.StatePointsTo || len(arr.State.Set) != 1 || arr.State.Set[0].Loc != "e" {
		t.Errorf("arr state = %v", arr.State)
	}
	if !s.Symbols["n"] {
		t.Error("symbol n missing")
	}
	if got := s.Invoke[rtl.Reg(sparc.O0)]; got != "arr" {
		t.Errorf("invoke %%o0 = %q", got)
	}
	if len(s.Rules) != 2 {
		t.Fatalf("rules = %+v", s.Rules)
	}
}

// TestFig2InitialAnnotations reproduces Figure 2: the initial typestates
// and constraints produced by preparation.
func TestFig2InitialAnnotations(t *testing.T) {
	s := parseFig1(t)
	ini, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}

	// e: <int, initialized, ro> — location attrs r (no w), value perm o.
	eLoc, ok := ini.World.Lookup("e")
	if !ok {
		t.Fatal("no absloc for e")
	}
	if !eLoc.Readable || eLoc.Writable || !eLoc.Summary {
		t.Errorf("e absloc = %+v", eLoc)
	}
	eTS := ini.Entry.Get("e")
	if !eTS.Type.Equal(types.Int32Type) || eTS.State.Kind != typestate.StateInit {
		t.Errorf("e typestate = %v", eTS)
	}
	if !eTS.Access.Has(typestate.PermO) || eTS.Access.Has(typestate.PermF) {
		t.Errorf("e access = %v", eTS.Access)
	}

	// %o0: <int[n], {e}, rwfo> — f and o come from the int[n] rule.
	o0 := ini.Entry.Get("%o0")
	if o0.Type.Kind != types.ArrayBase {
		t.Errorf("%%o0 type = %v", o0.Type)
	}
	if o0.State.Kind != typestate.StatePointsTo || o0.State.MayNull {
		t.Errorf("%%o0 state = %v", o0.State)
	}
	if !o0.Access.Has(typestate.PermF|typestate.PermO) || o0.Access.Has(typestate.PermX) {
		t.Errorf("%%o0 access = %v", o0.Access)
	}

	// %o1: <int, initialized, rwo>.
	o1 := ini.Entry.Get("%o1")
	if !o1.Type.Equal(types.Int32Type) || o1.State.Kind != typestate.StateInit {
		t.Errorf("%%o1 = %v", o1)
	}

	// Constraints: n >= 1 and n = %o1.
	got := ini.Constraints.String()
	if !strings.Contains(got, "n - 1 >= 0") {
		t.Errorf("missing n >= 1 in %q", got)
	}
	// n = %o1 appears as %o1 - n = 0 or n - %o1 = 0.
	if !strings.Contains(got, "n = 0") && !strings.Contains(got, "%o1 = 0") {
		t.Errorf("missing n = %%o1 in %q", got)
	}

	// Unannotated registers start at <bottom, bottom, empty>.
	g3 := ini.Entry.Get("%g3")
	if g3.State.Kind != typestate.StateBottom {
		t.Errorf("%%g3 = %v", g3)
	}
}

// The Section 2 thread-list policy: read tid/lwpid, follow only next.
const threadSpec = `
struct thread { tid int ; lwpid int ; next ptr<thread> }
region H
loc t thread region H summary fields(tid=init, lwpid=init, next={t,null})
val tlist ptr<thread> state {t} region H
invoke %o0 = tlist
allow H thread.tid ro
allow H thread.lwpid ro
allow H thread.next rfo
allow H ptr<thread> rfo
`

func TestThreadListSpec(t *testing.T) {
	s, err := Parse(threadSpec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	th := s.Types["thread"]
	if th == nil || th.Size() != 12 {
		t.Fatalf("thread type = %v", th)
	}
	ini, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	// Field locations t.tid, t.lwpid, t.next exist with policy perms.
	tid, ok := ini.World.Lookup("t.tid")
	if !ok || !tid.Readable || tid.Writable {
		t.Fatalf("t.tid = %+v", tid)
	}
	next := ini.Entry.Get("t.next")
	if !next.Access.Has(typestate.PermF) {
		t.Errorf("t.next should be followable: %v", next)
	}
	if next.State.Kind != typestate.StatePointsTo || !next.State.MayNull {
		t.Errorf("t.next state = %v", next.State)
	}
	tidTS := ini.Entry.Get("t.tid")
	if tidTS.Access.Has(typestate.PermF) {
		t.Errorf("t.tid must not be followable: %v", tidTS)
	}
	// Aggregate location records the struct type for lookUp.
	if ini.LocTypes["t"] == nil || ini.LocTypes["t"].Kind != types.Struct {
		t.Error("aggregate type missing")
	}
	// Field alignment: t.next at offset 8 of a 4-aligned struct is
	// 4-aligned.
	nl, _ := ini.World.Lookup("t.next")
	if nl.Align != 4 {
		t.Errorf("t.next align = %d", nl.Align)
	}
}

func TestTrustedFunctionSpec(t *testing.T) {
	src := `
region H
trusted gettime args 1
  arg 0 int init
  ret int init perm o
  pre %o0 >= 0
  post %o0 >= 1
end
`
	s, err := Parse(src, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	tf := s.Trusted["gettime"]
	if tf == nil || tf.NArgs != 1 || len(tf.Args) != 1 {
		t.Fatalf("tf = %+v", tf)
	}
	if tf.Ret == nil || !tf.Ret.Type.Equal(types.Int32Type) {
		t.Fatalf("ret = %+v", tf.Ret)
	}
	if tf.Pre.String() == "true" || tf.Post.String() == "true" {
		t.Error("pre/post not parsed")
	}
	if names := s.TrustedNames(); !names["gettime"] {
		t.Error("TrustedNames missing gettime")
	}
}

func TestFrameSpec(t *testing.T) {
	src := `
frame md5 size 160
  slot fp-8 int name tmp
  slot fp-88 int[16] name block state init
end
`
	s, err := Parse(src, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	fr := s.Frames["md5"]
	if fr == nil || fr.Size != 160 || len(fr.Slots) != 2 {
		t.Fatalf("frame = %+v", fr)
	}
	if fr.Slots[1].Count != 16 || !fr.Slots[1].Type.Equal(types.Int32Type) {
		t.Fatalf("array slot = %+v", fr.Slots[1])
	}
	ini, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	blk, ok := ini.World.Lookup("block")
	if !ok || !blk.Summary || !blk.Writable {
		t.Fatalf("block = %+v", blk)
	}
	if ini.SlotCounts["block"] != 16 {
		t.Error("SlotCounts missing block")
	}
	if ini.FrameSlots["md5"]["fp"][-8] == nil {
		t.Error("FrameSlots index missing")
	}
}

func TestGlobalEntity(t *testing.T) {
	src := `
region H
global counter int state init region H addr 0x20400
allow H int rwo
`
	s, err := Parse(src, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	ini, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	if ini.AddrToLoc[0x20400] != "counter" {
		t.Error("AddrToLoc missing")
	}
	c, _ := ini.World.Lookup("counter")
	if !c.Readable || !c.Writable {
		t.Errorf("counter = %+v", c)
	}
	if ds := s.DataSyms(); ds["counter"] != 0x20400 {
		t.Error("DataSyms missing")
	}
}

func TestFormulaParsing(t *testing.T) {
	p := &parseState{spec: NewSpec(sparc.Arch)}
	cases := []struct {
		src  string
		env  map[expr.Var]int64
		want bool
	}{
		{"n >= 1", map[expr.Var]int64{"n": 1}, true},
		{"n >= 1", map[expr.Var]int64{"n": 0}, false},
		{"n = %o1", map[expr.Var]int64{"n": 5, "%o1": 5}, true},
		{"n != %o1", map[expr.Var]int64{"n": 5, "%o1": 5}, false},
		{"2*n - 1 < m and m <= 10", map[expr.Var]int64{"n": 3, "m": 6}, true},
		{"2*n - 1 < m and m <= 10", map[expr.Var]int64{"n": 4, "m": 6}, false},
		{"n < 0 or n > 10", map[expr.Var]int64{"n": 11}, true},
		{"x mod 4 = 0", map[expr.Var]int64{"x": 8}, true},
		{"x mod 4 = 0", map[expr.Var]int64{"x": 6}, false},
		{"-n + 3 >= 0", map[expr.Var]int64{"n": 3}, true},
	}
	for _, c := range cases {
		f, err := p.parseFormula(c.src)
		if err != nil {
			t.Errorf("parse %q: %v", c.src, err)
			continue
		}
		if got := f.Eval(c.env, nil); got != c.want {
			t.Errorf("%q under %v = %v, want %v", c.src, c.env, got, c.want)
		}
	}
	for _, bad := range []string{"n >=", "n ? 3", "a and b or c", "n mod 3 = 1"} {
		if _, err := p.parseFormula(bad); err == nil {
			t.Errorf("parseFormula(%q) should fail", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"loc x int region Q",                    // undeclared region
		"bogus stuff",                           // unknown decl
		"loc x nosuchtype",                      // unknown type
		"region V\nloc x int\nloc x int",        // duplicate entity
		"invoke %o0 = missing",                  // undeclared invoke target
		"sym n\ninvoke %o0 = n\ninvoke %o0 = n", // double binding
		"trusted f args 1\n  arg 0 int init",    // missing end
		"struct s { }",                          // empty struct
		"abstract a size x align 4",             // bad size
		"allow V int ro",                        // undeclared region in allow
		"region V\nallow V int rz",              // bad perms
		"global g int addr nope",                // bad addr
		"region V\nglobal g int region V",       // global missing addr
	}
	for _, src := range cases {
		if _, err := Parse(src, sparc.Arch); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestTypeParsing(t *testing.T) {
	p := &parseState{spec: NewSpec(sparc.Arch)}
	p.spec.Types["thread"] = types.LayoutStruct("thread",
		[]string{"tid"}, []*types.Type{types.Int32Type})

	cases := map[string]func(*types.Type) bool{
		"int":         func(t *types.Type) bool { return t.Equal(types.Int32Type) },
		"uint8":       func(t *types.Type) bool { return t.Equal(types.UInt8Type) },
		"ptr<int>":    func(t *types.Type) bool { return t.Kind == types.Ptr },
		"int[n]":      func(t *types.Type) bool { return t.Kind == types.ArrayBase && t.N.Name == "n" },
		"int[8]":      func(t *types.Type) bool { return t.Kind == types.ArrayBase && t.N.Const == 8 },
		"int(n]":      func(t *types.Type) bool { return t.Kind == types.ArrayIn },
		"thread":      func(t *types.Type) bool { return t.Kind == types.Struct },
		"ptr<thread>": func(t *types.Type) bool { return t.Kind == types.Ptr && t.Elem.Kind == types.Struct },
	}
	for src, check := range cases {
		got, err := p.parseType(src)
		if err != nil {
			t.Errorf("parseType(%q): %v", src, err)
			continue
		}
		if !check(got) {
			t.Errorf("parseType(%q) = %v", src, got)
		}
	}
}

func TestRegVarNaming(t *testing.T) {
	rm := sparc.Arch.Regs()
	if rm.Var(rtl.Reg(sparc.O0), 0) != "%o0" {
		t.Error("depth-0 naming should be bare")
	}
	if rm.Var(rtl.Reg(sparc.O0), 1) != "w1.%o0" {
		t.Error("deep naming should carry the window")
	}
	// Globals are depth-independent.
	if rm.Var(rtl.Reg(3), 2) != "%g3" {
		t.Error("globals should not be window-qualified")
	}
	if ValVar("e") != "val.e" {
		t.Error("ValVar naming")
	}
}

func TestPermsFor(t *testing.T) {
	s := parseFig1(t)
	intPerm := s.permsFor("V", types.Int32Type)
	if !intPerm.Has(typestate.PermR|typestate.PermO) || intPerm.Has(typestate.PermF) {
		t.Errorf("permsFor(V, int) = %v", intPerm)
	}
	arrT := s.Entity("arr").Type
	arrPerm := s.permsFor("V", arrT)
	if !arrPerm.Has(typestate.PermR | typestate.PermF | typestate.PermO) {
		t.Errorf("permsFor(V, int[n]) = %v", arrPerm)
	}
	if p := s.permsFor("V", types.UInt8Type); p != 0 {
		t.Errorf("unmatched type should have no perms, got %v", p)
	}
}
