package policy

import (
	"fmt"
	"sort"

	"mcsafe/internal/expr"
	"mcsafe/internal/rtl"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// Initial is the output of Phase 1 (preparation): the host-typestate
// specification, safety policy, and invocation specification translated
// into initial annotations — an abstract-location world, the abstract
// store at the program entry, and the initial linear constraints
// (Figure 2 of the paper).
type Initial struct {
	Spec  *Spec
	World *typestate.World
	// Entry is the abstract store at the entry of the untrusted code.
	Entry typestate.Store
	// Constraints is the conjunction of the initial linear constraints.
	Constraints expr.Formula
	// AddrToLoc maps the virtual address of a global entity to its
	// abstract location, mirroring a loader's symbol table.
	AddrToLoc map[uint32]string
	// LocTypes records the declared type of each abstract memory
	// location (used by lookUp during typestate propagation).
	LocTypes map[string]*types.Type
	// FrameSlots indexes frame annotations: proc -> base("fp"/"sp") ->
	// offset -> slot.
	FrameSlots map[string]map[string]map[int]*FrameSlot
	// SlotCounts records element counts for local-array summary
	// locations (location name -> count).
	SlotCounts map[string]int
}

// Prepare runs Phase 1.
func Prepare(spec *Spec) (*Initial, error) {
	ini := &Initial{
		Spec:       spec,
		World:      typestate.NewWorld(),
		Entry:      typestate.NewStore(),
		AddrToLoc:  make(map[uint32]string),
		LocTypes:   make(map[string]*types.Type),
		FrameSlots: make(map[string]map[string]map[int]*FrameSlot),
		SlotCounts: make(map[string]int),
	}

	rm := spec.Arch.Regs()
	conv := spec.Arch.Conv()

	// Registers of the entry window.
	for r := 0; r < rm.N(); r++ {
		ini.World.AddReg(rm.Loc(rtl.Reg(r), 0))
	}
	// Ghost condition-code pair.
	ini.World.AddReg(string(ICCA))
	ini.World.AddReg(string(ICCB))

	// Memory-location entities.
	for _, ent := range spec.Entities {
		if ent.IsVal {
			continue
		}
		if err := ini.addEntityLocs(ent); err != nil {
			return nil, err
		}
		if ent.Addr != 0 {
			ini.AddrToLoc[ent.Addr] = ent.Name
		}
	}

	// Frame annotations.
	for _, fr := range spec.Frames {
		byBase := map[string]map[int]*FrameSlot{"fp": {}, "sp": {}}
		ini.FrameSlots[fr.Proc] = byBase
		for i := range fr.Slots {
			slot := &fr.Slots[i]
			byBase[slot.Base][slot.Off] = slot
			al := slot.Type.Align()
			loc := &typestate.AbsLoc{
				Name: slot.Name, Size: slot.Type.Size(), Align: al,
				Readable: true, Writable: true, Summary: slot.Count > 0,
			}
			if err := ini.World.Add(loc); err != nil {
				return nil, fmt.Errorf("policy: frame %s: %v", fr.Proc, err)
			}
			ini.LocTypes[slot.Name] = slot.Type
			if slot.Count > 0 {
				ini.SlotCounts[slot.Name] = slot.Count
			}
			ini.Entry.SetInPlace(slot.Name, typestate.Typestate{
				Type: slot.Type, State: slot.State, Access: typestate.PermO,
			})
		}
	}

	// Invocation bindings, in register order so the constraint
	// conjunction (and everything rendered from it downstream) is
	// deterministic across runs.
	invokeRegs := make([]rtl.Reg, 0, len(spec.Invoke))
	for reg := range spec.Invoke {
		invokeRegs = append(invokeRegs, reg)
	}
	sort.Slice(invokeRegs, func(i, j int) bool { return invokeRegs[i] < invokeRegs[j] })
	boundRegs := map[rtl.Reg]bool{}
	var constraints []expr.Formula
	constraints = append(constraints, spec.Constraints...)
	for _, reg := range invokeRegs {
		name := spec.Invoke[reg]
		boundRegs[reg] = true
		locName := rm.Loc(reg, 0)
		if ent := spec.Entity(name); ent != nil {
			perm := typestate.PermO
			if ent.Region != "" {
				perm = spec.permsFor(ent.Region, ent.Type).ValuePerms()
			}
			ini.Entry.SetInPlace(locName, typestate.Typestate{
				Type: ent.Type, State: ent.State, Access: perm,
			})
			continue
		}
		// Symbolic integer: the register's value equals the symbol.
		ini.Entry.SetInPlace(locName, typestate.Typestate{
			Type: types.Int32Type, State: typestate.InitState, Access: typestate.PermO,
		})
		constraints = append(constraints,
			expr.EqExpr(expr.V(rm.Var(reg, 0)), expr.V(expr.Var(name))))
	}

	// Implicit machine state: the zero register reads as zero; the stack,
	// frame, and link registers are valid initialized words.
	if !boundRegs[rtl.ZeroReg] {
		ini.Entry.SetInPlace(rm.Loc(rtl.ZeroReg, 0), typestate.Typestate{
			Type: types.Int32Type, State: typestate.InitState, Access: typestate.PermO,
		})
	}
	for _, r := range conv.InitRegs {
		if !boundRegs[r] {
			ini.Entry.SetInPlace(rm.Loc(r, 0), typestate.Typestate{
				Type: types.UInt32Type, State: typestate.InitState, Access: typestate.PermO,
			})
		}
	}

	ini.Constraints = expr.Simplify(expr.Conj(constraints...))
	return ini, nil
}

// addEntityLocs creates the abstract location(s) for a memory entity,
// expanding struct entities into field-granular locations.
func (ini *Initial) addEntityLocs(ent *Entity) error {
	spec := ini.Spec
	t := ent.Type
	align := ent.Align
	if align == 0 {
		align = t.Align()
	}
	locPerm := spec.permsFor(ent.Region, t)
	switch t.Kind {
	case types.Struct:
		// The aggregate itself, for lookUp resolution.
		ini.LocTypes[ent.Name] = t
		agg := &typestate.AbsLoc{
			Name: ent.Name, Size: t.Size(), Align: align,
			Readable: true, Writable: true, Summary: ent.Summary,
			Region: ent.Region,
		}
		if err := ini.World.Add(agg); err != nil {
			return err
		}
		// Enumerate scalar fields.
		var walk func(st *types.Type, prefix string, off int) error
		walk = func(st *types.Type, prefix string, off int) error {
			for _, m := range st.Members {
				path := m.Label
				if prefix != "" {
					path = prefix + "." + m.Label
				}
				if m.Type.Kind == types.Struct || m.Type.Kind == types.Union {
					if err := walk(m.Type, path, off+m.Offset); err != nil {
						return err
					}
					continue
				}
				name := ent.Name + "." + path
				perm, found := spec.permsForField(ent.Region, t.Name, path)
				if !found {
					perm = spec.permsFor(ent.Region, m.Type)
				}
				loc := &typestate.AbsLoc{
					Name: name, Size: m.Type.Size(), Align: gcdAlign(align, off+m.Offset, m.Type.Align()),
					Readable: perm.Has(typestate.PermR),
					Writable: perm.Has(typestate.PermW),
					Summary:  ent.Summary,
					Region:   ent.Region,
				}
				if err := ini.World.Add(loc); err != nil {
					return err
				}
				ini.LocTypes[name] = m.Type
				state := ent.State
				if fs, ok := ent.FieldStates[path]; ok {
					state = fs
				} else if state.Kind == typestate.StatePointsTo {
					// A struct-level points-to state makes no sense
					// per-field; default to uninit.
					state = typestate.UninitState
				}
				ini.Entry.SetInPlace(name, typestate.Typestate{
					Type: m.Type, State: state, Access: perm.ValuePerms(),
				})
			}
			return nil
		}
		return walk(t, "", 0)

	default:
		loc := &typestate.AbsLoc{
			Name: ent.Name, Size: t.Size(), Align: align,
			Readable: locPerm.Has(typestate.PermR),
			Writable: locPerm.Has(typestate.PermW),
			Summary:  ent.Summary,
			Region:   ent.Region,
		}
		if err := ini.World.Add(loc); err != nil {
			return err
		}
		ini.LocTypes[ent.Name] = t
		ini.Entry.SetInPlace(ent.Name, typestate.Typestate{
			Type: t, State: ent.State, Access: locPerm.ValuePerms(),
		})
		return nil
	}
}

// gcdAlign computes the guaranteed alignment of a field at the given
// offset within an aggregate of the given alignment.
func gcdAlign(aggAlign, offset, natural int) int {
	if aggAlign <= 0 {
		return natural
	}
	a := aggAlign
	for offset%a != 0 {
		a /= 2
		if a <= 1 {
			return 1
		}
	}
	if natural < a {
		return natural
	}
	return a
}
