package policy

import (
	"fmt"
	"strconv"
	"strings"

	"mcsafe/internal/expr"
	"mcsafe/internal/isa"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// Parse reads a policy/specification file. The grammar is line-oriented;
// '#' and '!' start comments. See the package tests and the specs under
// internal/progs for worked examples. Supported declarations:
//
//	struct <name> { <field> <type> ; ... }
//	abstract <name> size <n> align <n>
//	region <name>
//	sym <name>
//	loc <name> <type> [state <state>] [region <R>] [summary] [align <n>] [fields(<f>=<state>,...)]
//	global <name> <type> addr <hex> [state <state>] [region <R>] ...
//	val <name> <type> [state <state>] [region <R>]
//	constraint <formula>
//	invoke %reg = <entity-or-symbol>
//	allow <region> <category> <perms>
//	trusted <name> args <n> ... end
//	frame <proc> size <n> ... end
type parseState struct {
	spec *Spec
	line int
}

func (p *parseState) errf(format string, args ...interface{}) error {
	return fmt.Errorf("policy: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// Parse parses a specification for one architecture: register tokens in
// invoke bindings and constraints ("%o0", "%a0") resolve through the
// architecture's register model.
func Parse(src string, arch isa.Arch) (*Spec, error) {
	p := &parseState{spec: NewSpec(arch)}
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		p.line = i + 1
		text := stripComment(lines[i])
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		var err error
		switch fields[0] {
		case "struct":
			err = p.parseStruct(text)
		case "abstract":
			err = p.parseAbstract(fields)
		case "region":
			if len(fields) != 2 {
				err = p.errf("region expects a name")
			} else {
				p.spec.Regions[fields[1]] = true
			}
		case "sym":
			if len(fields) != 2 {
				err = p.errf("sym expects a name")
			} else {
				p.spec.Symbols[fields[1]] = true
			}
		case "loc", "val", "global":
			err = p.parseEntity(fields)
		case "constraint":
			var f expr.Formula
			f, err = p.parseFormula(strings.TrimSpace(strings.TrimPrefix(text, "constraint")))
			if err == nil {
				p.spec.Constraints = append(p.spec.Constraints, f)
			}
		case "invoke":
			err = p.parseInvoke(fields)
		case "allow":
			err = p.parseAllow(fields)
		case "trusted":
			i, err = p.parseTrusted(lines, i)
			if err == nil {
				continue
			}
		case "frame":
			i, err = p.parseFrame(lines, i)
			if err == nil {
				continue
			}
		default:
			err = p.errf("unknown declaration %q", fields[0])
		}
		if err != nil {
			return nil, err
		}
	}
	return p.spec, nil
}

// stripComment removes '#' comments. ('!' is not a comment leader here —
// unlike in the assembly syntax — because formulas contain "!=".)
func stripComment(s string) string {
	if idx := strings.IndexByte(s, '#'); idx >= 0 {
		s = s[:idx]
	}
	return strings.TrimSpace(s)
}

// --- types ---

// parseType parses a type expression: a ground-type name, a declared
// struct/abstract name, ptr<T>, T[n] (array base), or T(n] (pointer into
// an array).
func (p *parseState) parseType(s string) (*types.Type, error) {
	s = strings.TrimSpace(s)
	// Array suffixes.
	if strings.HasSuffix(s, "]") {
		if open := strings.LastIndex(s, "["); open > 0 {
			elem, err := p.parseType(s[:open])
			if err != nil {
				return nil, err
			}
			b, err := p.parseBound(s[open+1 : len(s)-1])
			if err != nil {
				return nil, err
			}
			return types.NewArrayBase(elem, b), nil
		}
		if open := strings.LastIndex(s, "("); open > 0 {
			elem, err := p.parseType(s[:open])
			if err != nil {
				return nil, err
			}
			b, err := p.parseBound(s[open+1 : len(s)-1])
			if err != nil {
				return nil, err
			}
			return types.NewArrayIn(elem, b), nil
		}
	}
	if strings.HasPrefix(s, "ptr<") && strings.HasSuffix(s, ">") {
		elem, err := p.parseType(s[4 : len(s)-1])
		if err != nil {
			return nil, err
		}
		return types.NewPtr(elem), nil
	}
	if t, ok := types.GroundByName(s); ok {
		return t, nil
	}
	if t, ok := p.spec.Types[s]; ok {
		return t, nil
	}
	return nil, p.errf("unknown type %q", s)
}

func (p *parseState) parseBound(s string) (types.Bound, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.ParseInt(s, 0, 64); err == nil {
		return types.ConstBound(n), nil
	}
	if s == "" {
		return types.Bound{}, p.errf("empty array bound")
	}
	p.spec.Symbols[s] = true
	return types.SymBound(s), nil
}

// parseStruct parses: struct name { f1 type1 ; f2 type2 ; ... }
func (p *parseState) parseStruct(text string) error {
	open := strings.Index(text, "{")
	close := strings.LastIndex(text, "}")
	if open < 0 || close < open {
		return p.errf("struct expects a { ... } body on one line")
	}
	head := strings.Fields(text[:open])
	if len(head) != 2 {
		return p.errf("struct expects a name")
	}
	name := head[1]
	if _, dup := p.spec.Types[name]; dup {
		return p.errf("duplicate type %q", name)
	}
	// Pre-register a placeholder so members may refer to the struct
	// itself (linked structures); it is completed in place below, and
	// struct equality is nominal, so early references stay valid.
	placeholder := types.NewStruct(name, nil, 0, 4)
	p.spec.Types[name] = placeholder
	var labels []string
	var memberTypes []*types.Type
	for _, part := range strings.Split(text[open+1:close], ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fs := strings.Fields(part)
		if len(fs) < 2 {
			return p.errf("struct member %q needs a name and a type", part)
		}
		t, err := p.parseType(strings.Join(fs[1:], " "))
		if err != nil {
			return err
		}
		labels = append(labels, fs[0])
		memberTypes = append(memberTypes, t)
	}
	if len(labels) == 0 {
		delete(p.spec.Types, name)
		return p.errf("struct %q has no members", name)
	}
	*placeholder = *types.LayoutStruct(name, labels, memberTypes)
	return nil
}

func (p *parseState) parseAbstract(fields []string) error {
	// abstract name size N align N
	if len(fields) != 6 || fields[2] != "size" || fields[4] != "align" {
		return p.errf("abstract expects: abstract <name> size <n> align <n>")
	}
	size, err1 := strconv.Atoi(fields[3])
	align, err2 := strconv.Atoi(fields[5])
	if err1 != nil || err2 != nil {
		return p.errf("bad size/align")
	}
	if _, dup := p.spec.Types[fields[1]]; dup {
		return p.errf("duplicate type %q", fields[1])
	}
	p.spec.Types[fields[1]] = types.NewAbstract(fields[1], size, align)
	return nil
}

// --- states ---

// parseStateExpr parses: init | uninit | {a, b+4, null} (a points-to set).
func (p *parseState) parseStateExpr(s string) (typestate.State, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "init":
		return typestate.InitState, nil
	case "uninit":
		return typestate.UninitState, nil
	}
	if strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}") {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		mayNull := false
		var refs []typestate.Ref
		if inner != "" {
			for _, part := range strings.Split(inner, ",") {
				part = strings.TrimSpace(part)
				if part == "null" {
					mayNull = true
					continue
				}
				off := 0
				if plus := strings.Index(part, "+"); plus > 0 {
					o, err := strconv.Atoi(strings.TrimSpace(part[plus+1:]))
					if err != nil {
						return typestate.State{}, p.errf("bad points-to offset in %q", part)
					}
					off = o
					part = strings.TrimSpace(part[:plus])
				}
				refs = append(refs, typestate.Ref{Loc: part, Off: off})
			}
		}
		return typestate.PointsTo(mayNull, refs...), nil
	}
	return typestate.State{}, p.errf("unknown state %q", s)
}

// --- entities ---

func (p *parseState) parseEntity(fields []string) error {
	kind := fields[0]
	if len(fields) < 3 {
		return p.errf("%s expects a name and a type", kind)
	}
	ent := &Entity{Name: fields[1], IsVal: kind == "val", State: typestate.UninitState}
	if p.spec.Entity(ent.Name) != nil {
		return p.errf("duplicate entity %q", ent.Name)
	}
	t, err := p.parseType(fields[2])
	if err != nil {
		return err
	}
	ent.Type = t
	i := 3
	for i < len(fields) {
		switch fields[i] {
		case "state":
			if i+1 >= len(fields) {
				return p.errf("state expects a value")
			}
			// A points-to set may contain spaces; rejoin to the next
			// closing brace.
			val := fields[i+1]
			for !balanced(val) && i+2 < len(fields) {
				i++
				val += " " + fields[i+1]
			}
			st, err := p.parseStateExpr(val)
			if err != nil {
				return err
			}
			ent.State = st
			i += 2
		case "region":
			if i+1 >= len(fields) {
				return p.errf("region expects a name")
			}
			if !p.spec.Regions[fields[i+1]] {
				return p.errf("undeclared region %q", fields[i+1])
			}
			ent.Region = fields[i+1]
			i += 2
		case "summary":
			ent.Summary = true
			i++
		case "align":
			if i+1 >= len(fields) {
				return p.errf("align expects a value")
			}
			a, err := strconv.Atoi(fields[i+1])
			if err != nil {
				return p.errf("bad align %q", fields[i+1])
			}
			ent.Align = a
			i += 2
		case "addr":
			if i+1 >= len(fields) {
				return p.errf("addr expects a value")
			}
			a, err := strconv.ParseUint(fields[i+1], 0, 32)
			if err != nil {
				return p.errf("bad addr %q", fields[i+1])
			}
			ent.Addr = uint32(a)
			i += 2
		default:
			if strings.HasPrefix(fields[i], "fields(") {
				// fields(f=state,g=state) — rejoin to closing paren.
				val := fields[i]
				for !strings.HasSuffix(val, ")") && i+1 < len(fields) {
					i++
					val += " " + fields[i]
				}
				if err := p.parseFieldStates(ent, val); err != nil {
					return err
				}
				i++
				continue
			}
			return p.errf("unknown %s attribute %q", kind, fields[i])
		}
	}
	if kind == "global" && ent.Addr == 0 {
		return p.errf("global %q needs an addr", ent.Name)
	}
	p.spec.Entities = append(p.spec.Entities, ent)
	return nil
}

func balanced(s string) bool {
	return strings.Count(s, "{") == strings.Count(s, "}")
}

func (p *parseState) parseFieldStates(ent *Entity, s string) error {
	inner := strings.TrimSuffix(strings.TrimPrefix(s, "fields("), ")")
	ent.FieldStates = make(map[string]typestate.State)
	for _, part := range splitTop(inner, ',') {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.Index(part, "=")
		if eq < 0 {
			return p.errf("bad field state %q", part)
		}
		st, err := p.parseStateExpr(part[eq+1:])
		if err != nil {
			return err
		}
		ent.FieldStates[strings.TrimSpace(part[:eq])] = st
	}
	return nil
}

// splitTop splits on sep at brace depth zero.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{', '(':
			depth++
		case '}', ')':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// --- invoke / allow ---

func (p *parseState) parseInvoke(fields []string) error {
	// invoke %reg = name
	if len(fields) != 4 || fields[2] != "=" {
		return p.errf("invoke expects: invoke %%reg = <name>")
	}
	r, ok := p.spec.Arch.Regs().Parse(fields[1])
	if !ok {
		return p.errf("unknown register %q", fields[1])
	}
	name := fields[3]
	if p.spec.Entity(name) == nil && !p.spec.Symbols[name] {
		return p.errf("invoke of undeclared %q", name)
	}
	if _, dup := p.spec.Invoke[r]; dup {
		return p.errf("register %s bound twice", p.spec.Arch.Regs().Name(r))
	}
	p.spec.Invoke[r] = name
	return nil
}

func (p *parseState) parseAllow(fields []string) error {
	// allow <region> <category> <perms>
	if len(fields) != 4 {
		return p.errf("allow expects: allow <region> <category> <perms>")
	}
	if !p.spec.Regions[fields[1]] {
		return p.errf("undeclared region %q", fields[1])
	}
	perm, err := typestate.ParsePerm(fields[3])
	if err != nil {
		return p.errf("%v", err)
	}
	rule := AllowRule{Region: fields[1], Perm: perm}
	cat := fields[2]
	if dot := strings.Index(cat, "."); dot > 0 {
		structName := cat[:dot]
		if t, ok := p.spec.Types[structName]; ok && t.Kind == types.Struct {
			rule.CatStruct = structName
			rule.CatField = cat[dot+1:]
			p.spec.Rules = append(p.spec.Rules, rule)
			return nil
		}
	}
	t, err := p.parseType(cat)
	if err != nil {
		return err
	}
	rule.CatType = t
	p.spec.Rules = append(p.spec.Rules, rule)
	return nil
}

// --- trusted functions ---

func (p *parseState) parseTrusted(lines []string, start int) (int, error) {
	p.line = start + 1
	fields := strings.Fields(stripComment(lines[start]))
	// trusted <name> args <n>
	if len(fields) != 4 || fields[2] != "args" {
		return start, p.errf("trusted expects: trusted <name> args <n>")
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 || n > 6 {
		return start, p.errf("bad arg count %q", fields[3])
	}
	tf := &TrustedFunc{Name: fields[1], NArgs: n, Pre: expr.T(), Post: expr.T()}
	if _, dup := p.spec.Trusted[tf.Name]; dup {
		return start, p.errf("duplicate trusted function %q", tf.Name)
	}
	i := start + 1
	for ; i < len(lines); i++ {
		p.line = i + 1
		text := stripComment(lines[i])
		if text == "" {
			continue
		}
		if text == "end" {
			p.spec.Trusted[tf.Name] = tf
			return i, nil
		}
		fs := strings.Fields(text)
		switch fs[0] {
		case "arg":
			// arg <idx> <type> <state> [perm <p>]
			if len(fs) < 4 {
				return i, p.errf("arg expects: arg <idx> <type> <state>")
			}
			idx, err := strconv.Atoi(fs[1])
			if err != nil || idx < 0 || idx >= n {
				return i, p.errf("bad arg index %q", fs[1])
			}
			t, err := p.parseType(fs[2])
			if err != nil {
				return i, err
			}
			stStr := fs[3]
			rest := fs[4:]
			for !balanced(stStr) && len(rest) > 0 {
				stStr += " " + rest[0]
				rest = rest[1:]
			}
			st, err := p.parseStateExpr(stStr)
			if err != nil {
				return i, err
			}
			a := ArgSpec{Index: idx, Type: t, State: st, Perm: typestate.PermO}
			if len(rest) >= 2 && rest[0] == "perm" {
				pm, err := typestate.ParsePerm(rest[1])
				if err != nil {
					return i, p.errf("%v", err)
				}
				a.Perm = pm
			}
			tf.Args = append(tf.Args, a)
		case "ret":
			// ret <type> <state> [perm <p>]
			if len(fs) < 3 {
				return i, p.errf("ret expects: ret <type> <state>")
			}
			t, err := p.parseType(fs[1])
			if err != nil {
				return i, err
			}
			stStr := fs[2]
			rest := fs[3:]
			for !balanced(stStr) && len(rest) > 0 {
				stStr += " " + rest[0]
				rest = rest[1:]
			}
			st, err := p.parseStateExpr(stStr)
			if err != nil {
				return i, err
			}
			ts := &typestate.Typestate{Type: t, State: st, Access: typestate.PermO}
			if len(rest) >= 2 && rest[0] == "perm" {
				pm, err := typestate.ParsePerm(rest[1])
				if err != nil {
					return i, p.errf("%v", err)
				}
				ts.Access = pm.ValuePerms()
			}
			tf.Ret = ts
		case "pre":
			f, err := p.parseFormula(strings.TrimSpace(strings.TrimPrefix(text, "pre")))
			if err != nil {
				return i, err
			}
			tf.Pre = expr.Conj(tf.Pre, f)
		case "post":
			f, err := p.parseFormula(strings.TrimSpace(strings.TrimPrefix(text, "post")))
			if err != nil {
				return i, err
			}
			tf.Post = expr.Conj(tf.Post, f)
		default:
			return i, p.errf("unknown trusted clause %q", fs[0])
		}
	}
	return i, p.errf("trusted %q missing end", tf.Name)
}

// --- frames ---

func (p *parseState) parseFrame(lines []string, start int) (int, error) {
	p.line = start + 1
	fields := strings.Fields(stripComment(lines[start]))
	// frame <proc> size <n>
	if len(fields) != 4 || fields[2] != "size" {
		return start, p.errf("frame expects: frame <proc> size <n>")
	}
	size, err := strconv.Atoi(fields[3])
	if err != nil {
		return start, p.errf("bad frame size %q", fields[3])
	}
	fr := &Frame{Proc: fields[1], Size: size}
	if _, dup := p.spec.Frames[fr.Proc]; dup {
		return start, p.errf("duplicate frame for %q", fr.Proc)
	}
	i := start + 1
	for ; i < len(lines); i++ {
		p.line = i + 1
		text := stripComment(lines[i])
		if text == "" {
			continue
		}
		if text == "end" {
			p.spec.Frames[fr.Proc] = fr
			return i, nil
		}
		fs := strings.Fields(text)
		if fs[0] != "slot" || len(fs) < 3 {
			return i, p.errf("frame clause must be: slot <fp-8|sp+64> <type> ...")
		}
		slot := FrameSlot{State: typestate.UninitState}
		loc := fs[1]
		switch {
		case strings.HasPrefix(loc, "fp"):
			slot.Base = "fp"
			loc = loc[2:]
		case strings.HasPrefix(loc, "sp"):
			slot.Base = "sp"
			loc = loc[2:]
		default:
			return i, p.errf("slot base must be fp or sp, got %q", fs[1])
		}
		off, err := strconv.Atoi(loc)
		if err != nil {
			return i, p.errf("bad slot offset %q", fs[1])
		}
		slot.Off = off
		t, err := p.parseType(fs[2])
		if err != nil {
			return i, err
		}
		// Array slots: elem[count] with a constant bound.
		if t.Kind == types.ArrayBase && t.N.IsConst() {
			slot.Type = t.Elem
			slot.Count = int(t.N.Const)
		} else {
			slot.Type = t
		}
		j := 3
		for j < len(fs) {
			switch fs[j] {
			case "name":
				if j+1 >= len(fs) {
					return i, p.errf("name expects a value")
				}
				slot.Name = fs[j+1]
				j += 2
			case "state":
				if j+1 >= len(fs) {
					return i, p.errf("state expects a value")
				}
				val := fs[j+1]
				for !balanced(val) && j+2 < len(fs) {
					j++
					val += " " + fs[j+1]
				}
				st, err := p.parseStateExpr(val)
				if err != nil {
					return i, err
				}
				slot.State = st
				j += 2
			default:
				return i, p.errf("unknown slot attribute %q", fs[j])
			}
		}
		if slot.Name == "" {
			slot.Name = fmt.Sprintf("%s.%s%+d", fr.Proc, slot.Base, slot.Off)
		}
		fr.Slots = append(fr.Slots, slot)
	}
	return i, p.errf("frame %q missing end", fr.Proc)
}

// --- formulas ---

// parseFormula parses a conjunction/disjunction of linear comparisons:
//
//	term (+|-) term ... (=|!=|<|<=|>|>=) rhs [and|or ...]
//	<lhs> mod <k> = 0   (alignment)
//
// Identifiers are symbols or %registers (entry-window values).
func (p *parseState) parseFormula(s string) (expr.Formula, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "true" {
		return expr.T(), nil
	}
	// Split on top-level " and " / " or " (no precedence mixing allowed).
	if strings.Contains(s, " or ") && strings.Contains(s, " and ") {
		return nil, p.errf("mixing and/or without parentheses is not supported")
	}
	if parts := strings.Split(s, " or "); len(parts) > 1 {
		var fs []expr.Formula
		for _, part := range parts {
			f, err := p.parseFormula(part)
			if err != nil {
				return nil, err
			}
			fs = append(fs, f)
		}
		return expr.Disj(fs...), nil
	}
	if parts := strings.Split(s, " and "); len(parts) > 1 {
		var fs []expr.Formula
		for _, part := range parts {
			f, err := p.parseFormula(part)
			if err != nil {
				return nil, err
			}
			fs = append(fs, f)
		}
		return expr.Conj(fs...), nil
	}
	return p.parseComparison(s)
}

func (p *parseState) parseComparison(s string) (expr.Formula, error) {
	// Alignment form: <expr> mod <k> = 0
	if idx := strings.Index(s, " mod "); idx > 0 {
		lhs, err := p.parseLin(s[:idx])
		if err != nil {
			return nil, err
		}
		rest := strings.TrimSpace(s[idx+5:])
		fs := strings.Fields(rest)
		if len(fs) != 3 || fs[1] != "=" || fs[2] != "0" {
			return nil, p.errf("mod constraints must be: <e> mod <k> = 0")
		}
		k, err := strconv.ParseInt(fs[0], 0, 64)
		if err != nil {
			return nil, p.errf("bad modulus %q", fs[0])
		}
		return expr.Divides(k, lhs), nil
	}
	for _, op := range []string{"<=", ">=", "!=", "<", ">", "="} {
		if idx := strings.Index(s, op); idx > 0 {
			lhs, err := p.parseLin(s[:idx])
			if err != nil {
				return nil, err
			}
			rhs, err := p.parseLin(s[idx+len(op):])
			if err != nil {
				return nil, err
			}
			switch op {
			case "<=":
				return expr.LeExpr(lhs, rhs), nil
			case ">=":
				return expr.GeExpr(lhs, rhs), nil
			case "<":
				return expr.LtExpr(lhs, rhs), nil
			case ">":
				return expr.GtExpr(lhs, rhs), nil
			case "=":
				return expr.EqExpr(lhs, rhs), nil
			case "!=":
				return expr.NeExpr(lhs, rhs), nil
			}
		}
	}
	return nil, p.errf("cannot parse comparison %q", s)
}

// parseLin parses a linear expression: [k*]ident or k, joined by + / -.
func (p *parseState) parseLin(s string) (expr.LinExpr, error) {
	s = strings.TrimSpace(s)
	out := expr.LinExpr{}
	sign := int64(1)
	i := 0
	expectTerm := true
	for i < len(s) {
		switch {
		case s[i] == ' ':
			i++
		case s[i] == '+' && !expectTerm:
			sign = 1
			expectTerm = true
			i++
		case s[i] == '-':
			if expectTerm {
				sign = -sign
			} else {
				sign = -1
			}
			expectTerm = true
			i++
		default:
			if !expectTerm {
				return out, p.errf("unexpected %q in expression %q", s[i:], s)
			}
			j := i
			for j < len(s) && s[j] != ' ' && s[j] != '+' && s[j] != '-' {
				j++
			}
			tok := s[i:j]
			term, err := p.parseTerm(tok, sign)
			if err != nil {
				return out, err
			}
			out = out.Add(term)
			sign = 1
			expectTerm = false
			i = j
		}
	}
	if expectTerm {
		return out, p.errf("trailing operator in %q", s)
	}
	return out, nil
}

func (p *parseState) parseTerm(tok string, sign int64) (expr.LinExpr, error) {
	coef := sign
	if star := strings.Index(tok, "*"); star > 0 {
		k, err := strconv.ParseInt(tok[:star], 0, 64)
		if err != nil {
			return expr.LinExpr{}, p.errf("bad coefficient in %q", tok)
		}
		coef *= k
		tok = tok[star+1:]
	}
	if n, err := strconv.ParseInt(tok, 0, 64); err == nil {
		return expr.Constant(coef * n), nil
	}
	if strings.HasPrefix(tok, "%") {
		r, ok := p.spec.Arch.Regs().Parse(tok)
		if !ok {
			return expr.LinExpr{}, p.errf("unknown register %q", tok)
		}
		return expr.Term(coef, p.spec.Arch.Regs().Var(r, 0)), nil
	}
	// val(loc): the value stored in an abstract location (host data
	// invariants, e.g. "val(tmr.count) >= 0").
	if strings.HasPrefix(tok, "val(") && strings.HasSuffix(tok, ")") {
		return expr.Term(coef, ValVar(tok[4:len(tok)-1])), nil
	}
	// Symbol; declare on first use.
	p.spec.Symbols[tok] = true
	return expr.Term(coef, expr.Var(tok)), nil
}
