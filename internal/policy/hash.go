// Policy hashing: the stable content address of a parsed specification.
// The hash is computed over a canonical *rendering* of the parsed
// structure rather than the policy source text, so formatting and
// comments do not perturb it, while any change that could alter a
// verdict — a type, an entity state, a constraint, a rule, a trusted
// function's pre/postcondition, a frame annotation — does.

package policy

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"

	"mcsafe/internal/expr"
	"mcsafe/internal/rtl"
	"mcsafe/internal/types"
)

// hashMagic versions the canonical rendering: any change to the layout
// written below must change this string so stale store records keyed by
// the old rendering are never served.
const hashMagic = "mcsafe/policy/v1\n"

// Hash computes the specification's stable content address: a SHA-256
// digest over a canonical rendering of everything the host supplies.
// Specs that parse to the same structure hash identically regardless of
// source formatting; the value is stable across processes and checker
// releases and is the policy component of a verdict-store key.
func (s *Spec) Hash() [sha256.Size]byte {
	h := sha256.New()
	io.WriteString(h, hashMagic)
	if s == nil {
		return [sha256.Size]byte(h.Sum(nil))
	}
	for _, name := range sortedKeys(s.Types) {
		fmt.Fprintf(h, "type %s = %s\n", name, typeStr(s.Types[name]))
	}
	for _, name := range sortedKeys(s.Regions) {
		fmt.Fprintf(h, "region %s\n", name)
	}
	// Entities keep declaration order: preparation builds the abstract
	// world by walking them in order.
	for _, e := range s.Entities {
		fmt.Fprintf(h, "entity %s type=%s state=%s region=%s summary=%v align=%d val=%v addr=%d\n",
			e.Name, typeStr(e.Type), e.State.String(), e.Region, e.Summary, e.Align, e.IsVal, e.Addr)
		for _, path := range sortedKeys(e.FieldStates) {
			fmt.Fprintf(h, "  field %s state=%s\n", path, e.FieldStates[path].String())
		}
	}
	for _, name := range sortedKeys(s.Symbols) {
		fmt.Fprintf(h, "symbol %s\n", name)
	}
	for _, c := range s.Constraints {
		fmt.Fprintf(h, "constraint %s\n", formulaStr(c))
	}
	regs := make([]int, 0, len(s.Invoke))
	for r := range s.Invoke {
		regs = append(regs, int(r))
	}
	sort.Ints(regs)
	// Register names come from the architecture's register model. The
	// architecture itself is deliberately NOT part of the policy hash:
	// the rendering below is byte-identical to the historical SPARC one,
	// and cross-ISA verdicts can never collide because the program
	// fingerprint carries the architecture name.
	for _, r := range regs {
		fmt.Fprintf(h, "invoke %s = %s\n", s.Arch.Regs().Name(rtl.Reg(r)), s.Invoke[rtl.Reg(r)])
	}
	for _, r := range s.Rules {
		cat := typeStr(r.CatType)
		if r.CatType == nil {
			cat = r.CatStruct + "." + r.CatField
		}
		fmt.Fprintf(h, "allow %s : %s : %s\n", r.Region, cat, r.Perm.String())
	}
	for _, name := range sortedKeys(s.Trusted) {
		f := s.Trusted[name]
		fmt.Fprintf(h, "trusted %s nargs=%d\n", f.Name, f.NArgs)
		for _, a := range f.Args {
			fmt.Fprintf(h, "  arg %d type=%s state=%s perm=%s\n",
				a.Index, typeStr(a.Type), a.State.String(), a.Perm.String())
		}
		if f.Ret != nil {
			fmt.Fprintf(h, "  ret %s\n", f.Ret.String())
		}
		fmt.Fprintf(h, "  pre %s\n  post %s\n", formulaStr(f.Pre), formulaStr(f.Post))
	}
	for _, name := range sortedKeys(s.Frames) {
		fr := s.Frames[name]
		fmt.Fprintf(h, "frame %s size=%d\n", fr.Proc, fr.Size)
		for _, sl := range fr.Slots {
			fmt.Fprintf(h, "  slot %s%+d %s type=%s count=%d state=%s\n",
				sl.Base, sl.Off, sl.Name, typeStr(sl.Type), sl.Count, sl.State.String())
		}
	}
	return [sha256.Size]byte(h.Sum(nil))
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func typeStr(t *types.Type) string {
	if t == nil {
		return "<nil>"
	}
	return t.String()
}

func formulaStr(f expr.Formula) string {
	if f == nil {
		return "<nil>"
	}
	return f.String()
}
