// Package policy implements the host-side inputs of the safety checker
// (Section 2): the host-typestate specification (data and control
// aspects), the invocation specification, the access policy
// [Region : Category : Access], trusted-function pre/postconditions, and
// stack-frame annotations for procedures with local arrays (Section 6).
// It also implements Phase 1 (preparation), which translates these into
// the initial annotations: an abstract-location world, an entry abstract
// store, and initial linear constraints.
package policy

import (
	"mcsafe/internal/expr"
	"mcsafe/internal/isa"
	"mcsafe/internal/rtl"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// Entity is a named host datum: either an abstract memory location
// ("loc", "global") or a named value ("val") such as an array-base
// pointer passed to the untrusted code.
type Entity struct {
	Name  string
	Type  *types.Type
	State typestate.State
	// FieldStates overrides the state of individual struct fields
	// (path -> state).
	FieldStates map[string]typestate.State
	Region      string
	Summary     bool
	Align       int // 0: natural alignment of the type
	// IsVal marks pure values (no abstract location is created).
	IsVal bool
	// Addr is the virtual address for "global" entities (0 if none).
	Addr uint32
}

// AllowRule is one [Region : Category : Access] triple. The category is
// either a type (e.g. "int", "int[n]") or an aggregate field path
// (e.g. "thread.next").
type AllowRule struct {
	Region string
	// CatType is non-nil for type categories.
	CatType *types.Type
	// CatStruct/CatField name a struct-field category.
	CatStruct, CatField string
	Perm                typestate.Perm
}

// ArgSpec is the required typestate of one argument of a trusted
// function (the safety precondition's local part).
type ArgSpec struct {
	Index int
	Type  *types.Type
	State typestate.State
	// Perm is the minimum access required on the value.
	Perm typestate.Perm
}

// TrustedFunc is the control aspect of the host-typestate specification:
// a host function the untrusted code may call, with safety pre- and
// postconditions (Section 2).
type TrustedFunc struct {
	Name string
	// NArgs is the number of register arguments (%o0..%o5).
	NArgs int
	Args  []ArgSpec
	// Ret is the typestate of the return value in %o0 (nil for void).
	Ret *typestate.Typestate
	// Pre is a linear-constraint precondition over the argument
	// registers; it becomes a global safety condition at each call site.
	Pre expr.Formula
	// Post is a linear-constraint postcondition over the return
	// register; callers may assume it after the call.
	Post expr.Formula
}

// FrameSlot annotates one stack slot of a procedure's frame, relative to
// %fp (negative offsets) or %sp.
type FrameSlot struct {
	Base string // "fp" or "sp"
	Off  int
	Name string
	Type *types.Type
	// ElemType/Count describe local arrays: Type is the element type
	// and Count the element count; a summary location is created.
	Count int // 0 for scalar slots
	State typestate.State
}

// Frame annotates the stack frame of one procedure (needed when the
// untrusted code uses local arrays, which the analysis cannot infer on
// its own — a limitation the paper reports in Section 6).
type Frame struct {
	Proc  string
	Size  int
	Slots []FrameSlot
}

// Spec is a parsed policy file: everything the host supplies. A spec is
// parsed for one architecture (register names in invoke bindings and
// constraints resolve through its register model); Arch records it.
type Spec struct {
	Arch        isa.Arch
	Types       map[string]*types.Type
	Regions     map[string]bool
	Entities    []*Entity
	Symbols     map[string]bool // symbolic integers (array bounds etc.)
	Constraints []expr.Formula
	// Invoke maps an entry register to the entity or symbol passed in it.
	Invoke  map[rtl.Reg]string
	Rules   []AllowRule
	Trusted map[string]*TrustedFunc
	Frames  map[string]*Frame
}

// NewSpec returns an empty specification for one architecture.
func NewSpec(arch isa.Arch) *Spec {
	return &Spec{
		Arch:    arch,
		Types:   make(map[string]*types.Type),
		Regions: make(map[string]bool),
		Symbols: make(map[string]bool),
		Invoke:  make(map[rtl.Reg]string),
		Trusted: make(map[string]*TrustedFunc),
		Frames:  make(map[string]*Frame),
	}
}

// Entity returns the declared entity with the given name.
func (s *Spec) Entity(name string) *Entity {
	for _, e := range s.Entities {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// DataSyms returns the address bindings of global entities, for the
// assembler/loader symbol table.
func (s *Spec) DataSyms() map[string]uint32 {
	out := make(map[string]uint32)
	for _, e := range s.Entities {
		if e.Addr != 0 {
			out[e.Name] = e.Addr
		}
	}
	return out
}

// TrustedNames returns the set of trusted function names.
func (s *Spec) TrustedNames() map[string]bool {
	out := make(map[string]bool, len(s.Trusted))
	for name := range s.Trusted {
		out[name] = true
	}
	return out
}

// PermsFor computes the access permissions granted by the policy rules to
// a value of the given type in the given region.
func (s *Spec) PermsFor(region string, t *types.Type) typestate.Perm {
	return s.permsFor(region, t)
}

// permsFor computes the access permissions granted by the policy rules to
// a value of the given type in the given region, and separately the
// location attributes (r, w).
func (s *Spec) permsFor(region string, t *types.Type) typestate.Perm {
	var p typestate.Perm
	for _, r := range s.Rules {
		if r.Region != region || r.CatType == nil {
			continue
		}
		if r.CatType.Equal(t) {
			p |= r.Perm
		}
	}
	return p
}

// permsForField computes permissions for a struct field category.
func (s *Spec) permsForField(region, structName, fieldPath string) (typestate.Perm, bool) {
	var p typestate.Perm
	found := false
	for _, r := range s.Rules {
		if r.Region != region || r.CatStruct == "" {
			continue
		}
		if r.CatStruct == structName && r.CatField == fieldPath {
			p |= r.Perm
			found = true
		}
	}
	return p, found
}

// Register variable and location naming lives on the architecture's
// register model (isa.RegModel.Var / isa.RegModel.Loc): depth 0 uses the
// bare register name so that formulas read exactly like the paper's
// ("%g3 < n"); windowed registers at depth > 0 are "w<depth>.<name>".

// ValVar names the expr variable carrying the value stored in an
// abstract location.
func ValVar(loc string) expr.Var { return expr.Var("val." + loc) }

// Ghost condition-code variables: a cc-setting instruction records its
// two comparands here; a conditional branch edge constrains them.
const (
	ICCA expr.Var = "icc.A"
	ICCB expr.Var = "icc.B"
)
