// Package annotate implements Phase 3 of the safety-checking analysis
// (Section 4.3): it traverses the untrusted code and attaches to each
// instruction occurrence its local safety preconditions (checked here,
// against typestate information alone, together with Phase 4) and its
// global safety preconditions (linear-constraint formulas handed to the
// verification phase), plus assertions — facts derived from the results
// of typestate propagation that serve as hypotheses for the prover.
package annotate

import (
	"fmt"

	"mcsafe/internal/cfg"
	"mcsafe/internal/expr"
	"mcsafe/internal/isa"
	"mcsafe/internal/localcheck"
	"mcsafe/internal/propagate"
	"mcsafe/internal/rtl"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// Violation codes: the stable machine-readable classification of every
// safety violation the checker reports. Tools match on these — never on
// description text, which is free to change.
const (
	CodeOOB     = "oob"     // array/pointer access outside its object's bounds
	CodeAlign   = "align"   // misaligned address
	CodeUninit  = "uninit"  // use of an uninitialized or unusable value
	CodeNullPtr = "nullptr" // possible null-pointer dereference
	CodeStack   = "stack"   // stack-manipulation safety (frame size/alignment)
	CodePolicy  = "policy"  // access the host policy does not grant
	CodePrecond = "precond" // unmet trusted-call argument state or precondition
	// CodeAlias marks an address that is not provably alias-stable: on
	// hardware whose address translation may map arithmetically distinct
	// addresses inconsistently (arXiv:1305.6431), safety requires every
	// memory address to be computed in a canonical base+offset form whose
	// base is a declared object address. Only emitted on architectures
	// with the HardwareAliasing trait.
	CodeAlias = "alias"
	// CodeResource marks a condition left unproven because the check's
	// resource envelope (deadline, solver step budget, or per-condition
	// timeout) was exhausted — a conservative rejection, never an
	// acceptance.
	CodeResource = "resource"
)

// GlobalCond is one global safety precondition: a formula that must hold
// whenever control reaches the node.
type GlobalCond struct {
	ID   int
	Node int
	// Code is the stable violation code charged when the condition
	// cannot be proved (one of the Code* constants).
	Code string
	Desc string
	// F is the safety predicate.
	F expr.Formula
	// Facts are assertions derived from typestate propagation, valid at
	// the node; the verifier proves Facts -> F.
	Facts expr.Formula
	// AfterNode places the condition after the node executes (used for
	// trusted-call preconditions, which must hold once the delay slot
	// has run).
	AfterNode bool
}

// Violation is a failed local safety precondition or a structural
// problem found during annotation.
type Violation struct {
	Node int
	// Code is the stable violation code (one of the Code* constants).
	Code string
	Desc string
}

// Annotations is the output of Phases 3 and 4.
type Annotations struct {
	Res   *propagate.Result
	Conds []*GlobalCond
	// LocalViolations are local safety preconditions that do not hold.
	LocalViolations []Violation
	// LocalChecks counts local predicates evaluated (for reporting).
	LocalChecks int
}

type annotator struct {
	res  *propagate.Result
	out  *Annotations
	rm   *isa.RegModel
	conv *isa.Convention
	// aliasing is the HardwareAliasing trait of the program's
	// architecture: when set, every memory access additionally carries an
	// alias-stability condition.
	aliasing bool
}

// Run performs annotation and local verification.
func Run(res *propagate.Result) *Annotations {
	arch := res.G.Prog.Arch
	a := &annotator{
		res: res, out: &Annotations{Res: res},
		rm:       arch.Regs(),
		conv:     arch.Conv(),
		aliasing: arch.Traits().HardwareAliasing,
	}
	for _, node := range res.G.Nodes {
		if res.In[node.ID].Top {
			continue // unreachable
		}
		a.visit(node)
	}
	// Propagation-time issues are violations too.
	for _, issue := range res.Issues {
		a.out.LocalViolations = append(a.out.LocalViolations,
			Violation{Node: issue.Node, Code: issue.Code, Desc: issue.Msg})
	}
	return a.out
}

func (a *annotator) fail(node *cfg.Node, code, format string, args ...interface{}) {
	a.out.LocalViolations = append(a.out.LocalViolations, Violation{
		Node: node.ID, Code: code, Desc: fmt.Sprintf(format, args...),
	})
}

func (a *annotator) check(node *cfg.Node, code string, ok bool, format string, args ...interface{}) {
	a.out.LocalChecks++
	if !ok {
		a.fail(node, code, format, args...)
	}
}

func (a *annotator) cond(node *cfg.Node, code, desc string, f expr.Formula, facts expr.Formula, after bool) {
	if _, isTrue := expr.Simplify(f).(expr.TrueF); isTrue {
		return
	}
	gc := &GlobalCond{
		ID: len(a.out.Conds), Node: node.ID, Code: code, Desc: desc,
		F: f, Facts: facts, AfterNode: after,
	}
	a.out.Conds = append(a.out.Conds, gc)
}

func (a *annotator) regTS(node *cfg.Node, reg rtl.Reg, in typestate.Store) typestate.Typestate {
	if reg == rtl.ZeroReg {
		return typestate.Typestate{
			Type: types.Int32Type, State: typestate.InitState,
			Access: typestate.PermO, Known: true,
		}
	}
	return in.Get(a.rm.Loc(reg, node.Depth))
}

// operands pulls the node's assignment source apart: the operand
// structure of an occurrence is read off its lifted RTL, never the
// architecture's instruction encoding.
func operands(node *cfg.Node) (bin rtl.Bin, hasBin bool) {
	for _, eff := range node.RTL {
		if x, ok := eff.(rtl.Assign); ok {
			if b, isBin := x.Src.(rtl.Bin); isBin {
				return b, true
			}
		}
	}
	return rtl.Bin{}, false
}

// regOf unwraps a register read (ZeroReg, false for anything else).
func regOf(e rtl.Expr) (rtl.Reg, bool) {
	x, ok := e.(rtl.RegX)
	if !ok {
		return rtl.ZeroReg, false
	}
	return x.R, true
}

func (a *annotator) visit(node *cfg.Node) {
	res := a.res
	in := res.In[node.ID]
	bin, hasBin := operands(node)

	switch res.Kind[node.ID] {
	case propagate.KindScalarOp, propagate.KindCompare:
		a.checkOperands(node, bin, hasBin, in)

	case propagate.KindCopy:
		// mov/set: the source value is examined and copied, which
		// requires the o permission (Section 2).
		if hasBin && bin.Op == rtl.Or {
			if r, ok := regOf(bin.B); ok && r != rtl.ZeroReg {
				ts := a.regTS(node, r, in)
				a.check(node, CodeUninit, localcheck.Operable(ts),
					"use of unusable value in %s (%v)", a.rm.Name(r), ts)
			}
		}

	case propagate.KindArrayIndex:
		a.checkOperands(node, bin, hasBin, in)
		if !hasBin {
			return
		}
		// Table 2, row 2: null ∉ S(rs) and inbounds(sizeof(t), 0, n, Opnd).
		base, _ := regOf(bin.A)
		idx, _ := regOf(bin.B)
		baseTS := a.regTS(node, base, in)
		if baseTS.Type == nil || !baseTS.Type.IsPointer() {
			baseTS = a.regTS(node, idx, in)
			base, idx = idx, base
		}
		if baseTS.Type.Kind == 0 {
			return
		}
		baseVar := a.rm.Var(base, node.Depth)
		facts := a.pointerFacts(baseVar, baseTS)
		var idxE expr.LinExpr
		if c, isImm := bin.B.(rtl.Const); isImm {
			idxE = expr.Constant(c.V)
		} else {
			idxE = expr.V(a.rm.Var(idx, node.Depth))
		}
		if baseTS.Type.Elem == nil {
			return
		}
		size := int64(baseTS.Type.Elem.Size())
		bound := boundExpr(baseTS.Type.N, size)
		if baseTS.Type.Kind == types.ArrayIn {
			// Pointer arithmetic on an interior pointer cannot be
			// bounds-checked against the (single) summary location; the
			// paper's analysis has the same limitation (Section 8).
			a.cond(node, CodeOOB, "interior-pointer arithmetic", expr.F(), facts, false)
			return
		}
		if baseTS.State.MayNull {
			a.cond(node, CodeNullPtr, "null-pointer check", expr.NeExpr(expr.V(baseVar), expr.Constant(0)), facts, false)
		}
		if bin.Op == rtl.Sub {
			idxE = idxE.Scale(-1)
		}
		a.cond(node, CodeOOB, "array lower bound", expr.GeExpr(idxE, expr.Constant(0)), facts, false)
		a.cond(node, CodeOOB, "array upper bound", expr.LtExpr(idxE, bound), facts, false)
		a.cond(node, CodeAlign, "address alignment",
			expr.Divides(size, idxE), facts, false)

	case propagate.KindPtrOffset:
		if !hasBin {
			return
		}
		rs1, ok := regOf(bin.A)
		if !ok {
			return
		}
		ts := a.regTS(node, rs1, in)
		if rs1 != a.conv.FP && rs1 != a.conv.SP {
			a.check(node, CodeUninit, localcheck.Operable(ts),
				"pointer-offset on unusable value in %s (%v)", a.rm.Name(rs1), ts)
		}

	case propagate.KindLoad, propagate.KindStore:
		a.visitMem(node, in)

	case propagate.KindCall:
		a.visitCall(node)

	case propagate.KindSave:
		// Stack-manipulation safety: a save must allocate at least the
		// architecture's minimum frame (on SPARC the 64-byte register-save
		// area plus space for the hidden parameter and outgoing arguments)
		// and keep the stack aligned to the convention's stack alignment.
		var imm int64
		isImm := false
		if hasBin {
			if c, ok := bin.B.(rtl.Const); ok {
				imm, isImm = c.V, true
			}
		}
		if !isImm {
			a.fail(node, CodeStack, "save with register-sized frame is not checkable")
			return
		}
		a.check(node, CodeStack, imm <= -int64(a.conv.MinFrame), "save allocates too small a frame (%d)", imm)
		a.check(node, CodeStack, imm%int64(a.conv.StackAlign) == 0, "save misaligns the stack (%d)", imm)
		if fr, ok := a.res.Ini.Spec.Frames[res.G.Procs[node.Proc].Name]; ok {
			a.check(node, CodeStack, int(-imm) >= fr.Size,
				"save allocates %d bytes, frame annotation requires %d", -imm, fr.Size)
		}
	}
}

func (a *annotator) checkOperands(node *cfg.Node, bin rtl.Bin, hasBin bool, in typestate.Store) {
	if !hasBin {
		return
	}
	if r, ok := regOf(bin.A); ok && r != rtl.ZeroReg {
		ts := a.regTS(node, r, in)
		a.check(node, CodeUninit, localcheck.Operable(ts),
			"use of uninitialized or unusable value in %s (%v)", a.rm.Name(r), ts)
	}
	if r, ok := regOf(bin.B); ok && r != rtl.ZeroReg {
		ts := a.regTS(node, r, in)
		a.check(node, CodeUninit, localcheck.Operable(ts),
			"use of uninitialized or unusable value in %s (%v)", a.rm.Name(r), ts)
	}
}

// pointerFacts derives assertions about a pointer register from its
// typestate: non-nullness and alignment of the address it holds.
func (a *annotator) pointerFacts(baseVar expr.Var, ts typestate.Typestate) expr.Formula {
	var facts []expr.Formula
	if ts.State.Kind != typestate.StatePointsTo {
		return expr.T()
	}
	if !ts.State.MayNull {
		facts = append(facts, expr.GeExpr(expr.V(baseVar), expr.Constant(1)))
	}
	// Alignment: every possible referent (loc, off) implies
	// align(loc) | (base - off). The fact must hold for whichever
	// referent the pointer has, so use the gcd over referents, and only
	// when the offsets agree modulo it.
	al := 0
	off := -1
	consistent := true
	for _, ref := range ts.State.Set {
		loc, ok := a.res.Ini.World.Lookup(ref.Loc)
		if !ok || loc.Align <= 1 {
			consistent = false
			break
		}
		al = gcd(al, loc.Align)
		if off == -1 {
			off = ref.Off
		}
	}
	if consistent && al > 1 && off >= 0 {
		for _, ref := range ts.State.Set {
			if ref.Off%al != off%al {
				consistent = false
			}
		}
		if consistent && len(ts.State.Set) > 0 {
			facts = append(facts,
				expr.Divides(int64(al), expr.V(baseVar).AddConst(int64(-off))))
		}
	}
	return expr.Conj(facts...)
}

func gcd(a, b int) int {
	if a == 0 {
		return b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// boundExpr returns size * n as a linear expression: a constant when the
// array bound is constant, or size * <symbol> when symbolic.
func boundExpr(b types.Bound, size int64) expr.LinExpr {
	if b.IsConst() {
		return expr.Constant(size * b.Const)
	}
	return expr.Term(size, expr.Var(b.Name))
}
