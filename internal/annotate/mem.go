package annotate

import (
	"mcsafe/internal/cfg"
	"mcsafe/internal/expr"
	"mcsafe/internal/localcheck"
	"mcsafe/internal/policy"
	"mcsafe/internal/propagate"
	"mcsafe/internal/rtl"
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// visitMem attaches the load/store safety predicates of Table 2 (and the
// load analogue): followability and operability of the base pointer,
// readability/writability and initializedness of the targets,
// assignability of stored values, plus the global null, bounds, and
// alignment conditions illustrated in Figure 3.
func (a *annotator) visitMem(node *cfg.Node, in typestate.Store) {
	res := a.res
	acc := res.Mem[node.ID]
	if acc == nil {
		return
	}
	isStore := res.Kind[node.ID] == propagate.KindStore

	// The access shape comes from the node's lifted memory effect.
	var base, rd rtl.Reg
	var size int
	for _, eff := range node.RTL {
		switch x := eff.(type) {
		case rtl.Load:
			rd, size = x.Dst, x.Size
			if b, ok := x.Addr.(rtl.Bin); ok {
				base, _ = regOf(b.A)
			}
		case rtl.Store:
			size = x.Size
			if src, ok := x.Src.(rtl.RegX); ok {
				rd = src.R
			}
			if b, ok := x.Addr.(rtl.Bin); ok {
				base, _ = regOf(b.A)
			}
		}
	}

	a.check(node, CodePolicy, len(acc.Targets) > 0, "memory access resolves to no abstract location")
	if len(acc.Targets) == 0 {
		return
	}

	// Local predicates on the base pointer (frame accesses go through
	// the annotated stack, which needs no pointer in a register).
	var facts expr.Formula = expr.T()
	if !acc.Frame {
		baseTS := a.regTS(node, base, in)
		a.check(node, CodeUninit, localcheck.Followable(baseTS),
			"base %s is not followable (%v)", a.rm.Name(base), baseTS)
		a.check(node, CodeUninit, localcheck.Operable(baseTS),
			"base %s is not operable (%v)", a.rm.Name(base), baseTS)
		facts = a.pointerFacts(expr.Var(acc.BaseVar), baseTS)
	}
	if acc.IndexReg != "" {
		idxTS := in.Get(acc.IndexReg)
		a.check(node, CodeUninit, localcheck.Operable(idxTS),
			"index %s is not usable (%v)", acc.IndexReg, idxTS)
	}

	for _, t := range acc.Targets {
		if isStore {
			val := a.regTS(node, rd, in)
			lt := res.Ini.LocTypes[t.Loc]
			if lt != nil && (lt.Kind == types.ArrayBase || lt.Kind == types.ArrayIn) {
				lt = lt.Elem
			}
			a.check(node, CodeUninit, localcheck.Operable(val),
				"storing unusable value from %s (%v)", a.rm.Name(rd), val)
			a.check(node, CodePolicy, localcheck.Assignable(res.Ini.World, val, t.Loc, lt),
				"value in %s (%v) is not assignable to %s", a.rm.Name(rd), val, t.Loc)
		} else {
			a.check(node, CodePolicy, localcheck.Readable(res.Ini.World, t.Loc),
				"location %s is not readable", t.Loc)
			a.check(node, CodeUninit, localcheck.Initialized(in.Get(t.Loc)),
				"read of possibly-uninitialized location %s", t.Loc)
		}
	}

	// Global predicates.
	if acc.Frame {
		// Frame offsets are static: bounds, alignment, and alias
		// stability are decidable here; treat them as local checks.
		a.aliasCheckFrame(node, int64(acc.IndexImm))
		if acc.Array {
			size := int64(acc.ElemType.Size())
			off := int64(acc.IndexImm)
			a.check(node, CodeOOB, off >= 0 && off < size*acc.Bound.Const,
				"stack array access at offset %d is out of bounds [0,%d)", off, size*acc.Bound.Const)
			a.check(node, CodeAlign, off%size == 0,
				"stack array access at offset %d is misaligned", off)
		}
		return
	}

	baseV := expr.V(expr.Var(acc.BaseVar))
	mayNull := acc.MayNull
	// Figure 3 condition 1: the base pointer is non-null. When the
	// points-to set excludes null the fact base >= 1 discharges it.
	a.cond(node, CodeNullPtr, "null-pointer check", expr.NeExpr(baseV, expr.Constant(0)), facts, false)
	_ = mayNull
	a.aliasCond(node, acc, baseV, facts)

	if acc.Array {
		if acc.BaseInterior && acc.IndexReg == "" && acc.IndexImm == 0 {
			// Dereference of a checked interior pointer at offset 0:
			// bounds were established at the index calculation.
			return
		}
		size := int64(acc.ElemType.Size())
		var idxE expr.LinExpr
		if acc.IndexReg != "" {
			idxE = expr.V(expr.Var(acc.IndexReg))
		} else {
			idxE = expr.Constant(int64(acc.IndexImm))
		}
		if acc.BaseInterior {
			// Nonzero offset from an interior pointer: not checkable
			// against a single summary location (Section 8).
			a.cond(node, CodeOOB, "interior-pointer offset", expr.F(), facts, false)
			return
		}
		// Figure 3 conditions: %g2 >= 0, %g2 < 4n, and the address
		// alignment (%o2 + %g2) mod 4 = 0 (which, with the base-
		// alignment fact, also enforces %g2 mod 4 = 0).
		a.cond(node, CodeOOB, "array lower bound", expr.GeExpr(idxE, expr.Constant(0)), facts, false)
		a.cond(node, CodeOOB, "array upper bound", expr.LtExpr(idxE, boundExpr(acc.Bound, size)), facts, false)
		if size > 1 {
			a.cond(node, CodeAlign, "address alignment",
				expr.Divides(size, baseV.Add(idxE)), facts, false)
		}
		return
	}

	// Field access at a constant offset: alignment of base + offset.
	align := int64(size)
	if align > 1 {
		a.cond(node, CodeAlign, "address alignment",
			expr.Divides(align, baseV.AddConst(int64(acc.IndexImm))), facts, false)
	}
}

// visitCall attaches trusted-call conditions: the argument typestates and
// the precondition of the host function's specification (Section 2's
// control aspect). Internal calls need no conditions — the callee's own
// instructions are checked.
func (a *annotator) visitCall(node *cfg.Node) {
	res := a.res
	site := siteByCallNode(res.G, node.ID)
	if site == nil || site.TrustedName == "" {
		return
	}
	tf := res.Ini.Spec.Trusted[site.TrustedName]
	if tf == nil {
		a.fail(node, CodePrecond, "call to undeclared trusted function %q", site.TrustedName)
		return
	}
	// Arguments are in the convention's argument registers once the
	// delay slot (if any) has executed.
	argStore := res.Out[site.DelayNode]
	depth := res.G.Nodes[site.DelayNode].Depth
	for _, as := range tf.Args {
		if as.Index >= len(a.conv.ArgRegs) {
			a.fail(node, CodePrecond, "argument %d of %s exceeds the register-argument convention", as.Index, tf.Name)
			continue
		}
		reg := a.conv.ArgRegs[as.Index]
		ts := argStore.Get(a.rm.Loc(reg, depth))
		a.check(node, CodePrecond, argTypeOK(ts, as),
			"argument %d of %s: have %v, requires %v/%v", as.Index, tf.Name, ts, as.Type, as.State)
		a.check(node, CodePrecond, ts.Access.Has(as.Perm.ValuePerms()),
			"argument %d of %s lacks access %v", as.Index, tf.Name, as.Perm.ValuePerms())
	}
	// The precondition becomes a global safety condition after the
	// delay slot.
	pre := a.renameRegs(tf.Pre, depth)
	if _, isTrue := pre.(expr.TrueF); !isTrue {
		a.condAt(site.DelayNode, CodePrecond, "precondition of "+tf.Name, pre, expr.T(), true)
	}
}

func (a *annotator) condAt(nodeID int, code, desc string, f, facts expr.Formula, after bool) {
	gc := &GlobalCond{
		ID: len(a.out.Conds), Node: nodeID, Code: code, Desc: desc,
		F: f, Facts: facts, AfterNode: after,
	}
	a.out.Conds = append(a.out.Conds, gc)
}

func siteByCallNode(g *cfg.Graph, id int) *cfg.CallSite {
	for _, s := range g.Sites {
		if s.CallNode == id {
			return s
		}
	}
	return nil
}

// argTypeOK checks an actual argument typestate against the declared
// requirement.
func argTypeOK(ts typestate.Typestate, as policy.ArgSpec) bool {
	if types.Meet(ts.Type, as.Type).Kind == types.Bottom {
		return false
	}
	switch as.State.Kind {
	case typestate.StateInit:
		return ts.State.Initialized()
	case typestate.StatePointsTo:
		if ts.State.Kind != typestate.StatePointsTo {
			return false
		}
		if !as.State.MayNull && ts.State.MayNull {
			return false
		}
		return true
	}
	return true
}

// renameRegs rewrites entry-window register variables in a policy
// formula to the given window depth.
func (a *annotator) renameRegs(f expr.Formula, depth int) expr.Formula {
	if depth == 0 {
		return f
	}
	sub := map[expr.Var]expr.LinExpr{}
	for _, v := range expr.FreeVarsOf(f) {
		if len(v) >= 2 && v[0] == '%' {
			if r, ok := a.rm.Parse(string(v)); ok && a.rm.Windowed(r) {
				sub[v] = expr.V(a.rm.Var(r, depth))
			}
		}
	}
	return expr.SubstAll(f, sub)
}
