// Hardware-aliasing safety conditions (the "alias" class). On processors
// whose memory subsystem may translate arithmetically equal but
// differently computed addresses to different cells (arXiv:1305.6431),
// value-equality of addresses is not enough for safety: every access must
// use an address the hardware is guaranteed to translate consistently.
// The checker's criterion is alias stability: the address must be
// provably congruent to the referenced object's base modulo the machine
// word, so the low bits the translation hardware is free to disagree on
// below word granularity never carry information. Word-sized, word-
// aligned accesses discharge the condition through the same linear
// divisibility reasoning that proves alignment; sub-word accesses at
// unconstrained offsets do not, and are reported with code "alias".
//
// The conditions are emitted only on architectures with the
// HardwareAliasing trait, so delay-slot architectures such as SPARC are
// untouched by construction.

package annotate

import (
	"mcsafe/internal/cfg"
	"mcsafe/internal/expr"
	"mcsafe/internal/propagate"
)

// aliasWord is the translation granularity below which aliasing hardware
// may disagree: the 32-bit machine word.
const aliasWord = 4

// aliasCond attaches the alias-stability condition for one resolved
// memory access: aliasWord | (base + index). The pointer-alignment facts
// derived from the typestate make the condition provable exactly when
// the object base is word-aligned and the offset is a provable multiple
// of the word size.
func (a *annotator) aliasCond(node *cfg.Node, acc *propagate.MemAccess, baseV expr.LinExpr, facts expr.Formula) {
	if !a.aliasing {
		return
	}
	var addrE expr.LinExpr
	if acc.IndexReg != "" {
		addrE = baseV.Add(expr.V(expr.Var(acc.IndexReg)))
	} else {
		addrE = baseV.AddConst(int64(acc.IndexImm))
	}
	a.cond(node, CodeAlias, "alias-stable address",
		expr.Divides(aliasWord, addrE), facts, false)
}

// aliasCheckFrame is the static counterpart for frame-relative accesses:
// the stack pointer is word-aligned by the stack convention, so the slot
// offset decides stability locally.
func (a *annotator) aliasCheckFrame(node *cfg.Node, off int64) {
	if !a.aliasing {
		return
	}
	a.check(node, CodeAlias, off%aliasWord == 0,
		"stack access at offset %d is not alias-stable", off)
}
