package annotate

import (
	"strings"
	"testing"

	"mcsafe/internal/cfg"
	"mcsafe/internal/expr"
	"mcsafe/internal/isa"
	"mcsafe/internal/policy"
	"mcsafe/internal/propagate"
	"mcsafe/internal/sparc"
)

const fig1Source = `
1:  mov %o0,%o2
2:  clr %o0
3:  cmp %o0,%o1
4:  bge 12
5:  clr %g3
6:  sll %g3,2,%g2
7:  ld [%o2+%g2],%g2
8:  inc %g3
9:  cmp %g3,%o1
10: bl 6
11: add %o0,%g2,%o0
12: retl
13: nop
`

const fig1Spec = `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`

func runAnnotate(t *testing.T, asm, spec, entry string) *Annotations {
	t.Helper()
	s, err := policy.Parse(spec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	ini, err := policy.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sparc.Arch.Assemble(asm, isa.AsmOptions{DataSyms: s.DataSyms(), Entry: entry})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog, cfg.Options{TrustedFuncs: s.TrustedNames()})
	if err != nil {
		t.Fatal(err)
	}
	return Run(propagate.Run(g, ini))
}

func nodeByIndex(a *Annotations, idx int) *cfg.Node {
	for _, n := range a.Res.G.Nodes {
		if n.Index == idx && !n.Replica {
			return n
		}
	}
	return nil
}

// TestFig3SafetyPreconditionsLine7 reproduces Figure 3: the assertions,
// local safety preconditions, and global safety preconditions attached to
// the array load at line 7 of the running example.
func TestFig3SafetyPreconditionsLine7(t *testing.T) {
	a := runAnnotate(t, fig1Source, fig1Spec, "")

	// Local safety preconditions all hold (Phase 4).
	if len(a.LocalViolations) != 0 {
		t.Fatalf("local violations: %+v", a.LocalViolations)
	}
	if a.LocalChecks == 0 {
		t.Fatal("no local checks recorded")
	}

	// Figure 9 reports 4 global safety conditions for Sum.
	if len(a.Conds) != 4 {
		for _, c := range a.Conds {
			t.Logf("cond: %s @%d: %v", c.Desc, c.Node, c.F)
		}
		t.Fatalf("global conditions = %d, want 4", len(a.Conds))
	}

	ld := nodeByIndex(a, 6)
	descs := map[string]*GlobalCond{}
	for _, c := range a.Conds {
		if c.Node != ld.ID {
			t.Errorf("condition %q attached to node %d, not the ld", c.Desc, c.Node)
		}
		descs[c.Desc] = c
	}

	// %o2 != NULL.
	null := descs["null-pointer check"]
	if null == nil {
		t.Fatal("missing null-pointer check")
	}
	if got := null.F.String(); !strings.Contains(got, "%o2") {
		t.Errorf("null check = %q", got)
	}
	// Facts include %o2 >= 1 (arr is non-null) and 4 | %o2 (alignment
	// assertion "%o2 mod 4 = 0" of Figure 3).
	facts := null.Facts.String()
	if !strings.Contains(facts, "%o2 - 1 >= 0") {
		t.Errorf("missing non-null fact in %q", facts)
	}
	if !strings.Contains(facts, "4 | (%o2)") {
		t.Errorf("missing alignment fact in %q", facts)
	}

	// %g2 >= 0 and %g2 < 4n.
	lower := descs["array lower bound"]
	if lower == nil || !strings.Contains(lower.F.String(), "%g2 >= 0") {
		t.Fatalf("lower bound = %v", lower)
	}
	upper := descs["array upper bound"]
	if upper == nil {
		t.Fatal("missing upper bound")
	}
	up := upper.F.String()
	if !strings.Contains(up, "%g2") || !strings.Contains(up, "4*n") {
		t.Errorf("upper bound = %q", up)
	}

	// (%o2 + %g2) mod 4 = 0.
	align := descs["address alignment"]
	if align == nil {
		t.Fatal("missing alignment condition")
	}
	al := align.F.String()
	if !strings.Contains(al, "4 | ") || !strings.Contains(al, "%g2") || !strings.Contains(al, "%o2") {
		t.Errorf("alignment = %q", al)
	}
}

func TestWriteToReadOnlyArrayRejected(t *testing.T) {
	// The policy grants e only "ro": storing into the array must fail
	// the assignable local check (w missing on the location).
	asm := `
	st %o1,[%o0]
	retl
	nop
`
	a := runAnnotate(t, asm, fig1Spec, "")
	found := false
	for _, v := range a.LocalViolations {
		if strings.Contains(v.Desc, "assignable") {
			found = true
		}
	}
	if !found {
		t.Fatalf("store to read-only array not rejected: %+v", a.LocalViolations)
	}
}

func TestUseOfUninitializedValue(t *testing.T) {
	asm := `
	add %o5,1,%o4
	retl
	nop
`
	a := runAnnotate(t, asm, fig1Spec, "")
	found := false
	for _, v := range a.LocalViolations {
		if strings.Contains(v.Desc, "uninitialized") {
			found = true
		}
	}
	if !found {
		t.Fatalf("use of uninitialized %%o5 not rejected: %+v", a.LocalViolations)
	}
}

func TestNotFollowableRejected(t *testing.T) {
	// Dereferencing an integer: followable fails.
	asm := `
	ld [%o1],%o2
	retl
	nop
`
	a := runAnnotate(t, asm, fig1Spec, "")
	found := false
	for _, v := range a.LocalViolations {
		if strings.Contains(v.Desc, "followable") || strings.Contains(v.Desc, "abstract location") {
			found = true
		}
	}
	if !found {
		t.Fatalf("deref of integer not rejected: %+v", a.LocalViolations)
	}
}

func TestReadUninitializedLocation(t *testing.T) {
	asm := `
	ld [%o0],%o1
	retl
	nop
`
	spec := `
region H
struct cell { v int }
loc c cell region H fields(v=uninit)
val cp ptr<cell> state {c} region H
invoke %o0 = cp
allow H cell.v ro
allow H ptr<cell> rfo
`
	a := runAnnotate(t, asm, spec, "")
	found := false
	for _, v := range a.LocalViolations {
		if strings.Contains(v.Desc, "uninitialized location") {
			found = true
		}
	}
	if !found {
		t.Fatalf("read of uninitialized location not rejected: %+v", a.LocalViolations)
	}
}

func TestNullableFieldAccessGetsNullCond(t *testing.T) {
	asm := `
	ld [%o0+0],%o1
	retl
	nop
`
	spec := `
struct thread { tid int ; lwpid int ; next ptr<thread> }
region H
loc t thread region H summary fields(tid=init, lwpid=init, next={t,null})
val tp ptr<thread> state {t,null} region H
invoke %o0 = tp
allow H thread.tid ro
allow H thread.next rfo
allow H ptr<thread> rfo
`
	a := runAnnotate(t, asm, spec, "")
	var null *GlobalCond
	for _, c := range a.Conds {
		if c.Desc == "null-pointer check" {
			null = c
		}
	}
	if null == nil {
		t.Fatal("missing null condition for nullable pointer")
	}
	// The facts must NOT claim non-nullness.
	if strings.Contains(null.Facts.String(), "%o0 - 1 >= 0") {
		t.Errorf("facts wrongly assert non-null: %v", null.Facts)
	}
}

func TestSaveChecks(t *testing.T) {
	ok := runAnnotate(t, "f:\n\tsave %sp,-96,%sp\n\tret\n\trestore", "sym x\ninvoke %o0 = x", "f")
	if len(ok.LocalViolations) != 0 {
		t.Fatalf("valid save rejected: %+v", ok.LocalViolations)
	}
	small := runAnnotate(t, "f:\n\tsave %sp,-32,%sp\n\tret\n\trestore", "sym x\ninvoke %o0 = x", "f")
	if len(small.LocalViolations) == 0 {
		t.Fatal("undersized save not rejected")
	}
	misaligned := runAnnotate(t, "f:\n\tsave %sp,-100,%sp\n\tret\n\trestore", "sym x\ninvoke %o0 = x", "f")
	if len(misaligned.LocalViolations) == 0 {
		t.Fatal("misaligned save not rejected")
	}
}

func TestTrustedCallAnnotations(t *testing.T) {
	asm := `
main:
	call host_read
	mov 4,%o0
	retl
	nop
host_read:
`
	spec := `
trusted host_read args 1
  arg 0 int init
  ret int init perm o
  pre %o0 >= 0
end
`
	a := runAnnotate(t, asm, spec, "main")
	if len(a.LocalViolations) != 0 {
		t.Fatalf("local violations: %+v", a.LocalViolations)
	}
	var pre *GlobalCond
	for _, c := range a.Conds {
		if strings.Contains(c.Desc, "precondition") {
			pre = c
		}
	}
	if pre == nil {
		t.Fatal("missing precondition condition")
	}
	if !pre.AfterNode {
		t.Error("precondition should apply after the delay slot")
	}
	if !strings.Contains(pre.F.String(), "%o0") {
		t.Errorf("pre = %v", pre.F)
	}
}

func TestTrustedCallBadArgRejected(t *testing.T) {
	asm := `
main:
	call host_read
	nop
	retl
	nop
host_read:
`
	spec := `
trusted host_read args 1
  arg 0 int init
end
`
	// %o0 is never initialized before the call.
	a := runAnnotate(t, asm, spec, "main")
	found := false
	for _, v := range a.LocalViolations {
		if strings.Contains(v.Desc, "argument 0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("uninitialized argument not rejected: %+v", a.LocalViolations)
	}
}

func TestFrameArrayStaticBounds(t *testing.T) {
	good := `
f:
	save %sp,-112,%sp
	st %g0,[%fp-24]
	ret
	restore
`
	bad := `
f:
	save %sp,-112,%sp
	st %g0,[%fp-2]
	ret
	restore
`
	spec := `
frame f size 112
  slot fp-24 int[4] name buf state init
  slot fp-8 int name tmp
end
`
	a := runAnnotate(t, good, spec, "f")
	if len(a.LocalViolations) != 0 {
		t.Fatalf("good frame store rejected: %+v", a.LocalViolations)
	}
	b := runAnnotate(t, bad, spec, "f")
	if len(b.LocalViolations) == 0 {
		t.Fatal("store outside any slot not rejected")
	}
}

func TestRenameRegs(t *testing.T) {
	a := &annotator{rm: sparc.Arch.Regs()}
	f := expr.GeExpr(expr.V("%o0"), expr.Constant(0))
	g := a.renameRegs(f, 2)
	if !strings.Contains(g.String(), "w2.%o0") {
		t.Errorf("renameRegs = %v", g)
	}
	if a.renameRegs(f, 0).String() != f.String() {
		t.Error("depth 0 should be identity")
	}
}
