package rtl

import "mcsafe/internal/expr"

// Linearize maps an operand expression into the Presburger fragment
// when it is linear: additions, subtractions, scaling by a constant,
// and the identity cases of the bitwise operations. regVar supplies
// the LinExpr for a register read (including the ZeroReg convention);
// the second result is false when the expression is not linear.
func Linearize(e Expr, regVar func(Reg) expr.LinExpr) (expr.LinExpr, bool) {
	switch x := e.(type) {
	case Const:
		return expr.Constant(x.V), true
	case RegX:
		return regVar(x.R), true
	case PC:
		return expr.LinExpr{}, false
	case Bin:
		a, aok := Linearize(x.A, regVar)
		b, bok := Linearize(x.B, regVar)
		if !aok || !bok {
			return expr.LinExpr{}, false
		}
		aConst, aIsConst := a.IsConst()
		bConst, bIsConst := b.IsConst()
		switch x.Op {
		case Add:
			return a.Add(b), true
		case Sub:
			return a.Sub(b), true
		case Or, Xor:
			// Identity cases only: x|0 = x^0 = x.
			if aIsConst && aConst == 0 {
				return b, true
			}
			if bIsConst && bConst == 0 {
				return a, true
			}
			if aIsConst && bIsConst {
				if x.Op == Or {
					return expr.Constant(aConst | bConst), true
				}
				return expr.Constant(aConst ^ bConst), true
			}
		case And:
			if (aIsConst && aConst == 0) || (bIsConst && bConst == 0) {
				return expr.Constant(0), true
			}
			if aIsConst && bIsConst {
				return expr.Constant(aConst & bConst), true
			}
		case ShL:
			if bIsConst && bConst >= 0 && bConst < 31 {
				return a.Scale(1 << uint(bConst)), true
			}
		case MulS, MulU:
			if bIsConst {
				return a.Scale(bConst), true
			}
			if aIsConst {
				return b.Scale(aConst), true
			}
		}
		return expr.LinExpr{}, false
	}
	return expr.LinExpr{}, false
}
