// Package rtl defines a small architecture-neutral register-transfer IR.
// Every machine instruction is lifted (by an architecture frontend such
// as internal/sparc's lifter) into one canonical sequence of guarded
// effects over registers, memory, condition codes, and control. The
// three downstream consumers — typestate propagation, WLP-based
// verification-condition generation, and the concrete oracle
// interpreter — share this single semantic definition, so an opcode's
// meaning is written exactly once.
//
// Semantics of an effect sequence (a parallel register transfer):
//
//   - Every operand expression is evaluated in the instruction's
//     PRE-state, in the instruction's entry register window.
//   - Window effects (SaveWindow/RestoreWindow) shift the window first;
//     an Assign with Win = +1 (or -1) then writes into the newly
//     entered window. Win = 0 writes the entry window.
//   - Register 0 (ZeroReg) is hardwired: reads yield 0 and writes are
//     discarded. The lifter emits reads/writes of register 0 faithfully
//     so consumers see the instruction's true operand structure.
package rtl

import "fmt"

// Reg is a machine register number. The interpretation (windowing,
// banks) belongs to the architecture frontend; rtl only fixes the
// zero-register convention below.
type Reg int

// ZeroReg is hardwired to zero: reads yield 0, writes are discarded.
const ZeroReg Reg = 0

// BinOp enumerates the two-operand ALU operations.
type BinOp int

const (
	Add BinOp = iota
	Sub
	And
	AndNot // a &^ b
	Or
	OrNot // a | ^b
	Xor
	XorNot // ^(a ^ b)
	ShL    // logical shift left (count masked to 5 bits)
	ShRL   // logical shift right
	ShRA   // arithmetic shift right
	MulU
	MulS
	DivU // traps on zero divisor
	DivS
)

func (op BinOp) String() string {
	names := [...]string{"add", "sub", "and", "andn", "or", "orn", "xor",
		"xnor", "shl", "shrl", "shra", "mulu", "muls", "divu", "divs"}
	if int(op) < len(names) {
		return names[op]
	}
	return fmt.Sprintf("op?%d", int(op))
}

// Expr is an operand expression. The lifter produces shallow trees:
// constants, register reads, the instruction address, and one binary
// operation over those.
type Expr interface {
	isExpr()
	String() string
}

// Const is a constant operand (sign-extended immediates; the value is
// kept as int64 so abstract consumers can fold without overflow, while
// concrete evaluation truncates to 32 bits).
type Const struct{ V int64 }

// RegX reads a register in the instruction's entry window.
type RegX struct{ R Reg }

// PC is the machine address of the current instruction (used by call
// and jump-and-link effects to materialize the return address).
type PC struct{}

// Bin applies a BinOp to two sub-expressions.
type Bin struct {
	Op   BinOp
	A, B Expr
}

func (Const) isExpr() {}
func (RegX) isExpr()  {}
func (PC) isExpr()    {}
func (Bin) isExpr()   {}

func (c Const) String() string { return fmt.Sprintf("%d", c.V) }
func (r RegX) String() string  { return fmt.Sprintf("r%d", int(r.R)) }
func (PC) String() string      { return "pc" }
func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Op, b.A, b.B)
}

// Cond is a branch condition over the integer condition codes. Signed
// and unsigned comparisons are distinguished so consumers can choose
// how much information each carries.
type Cond int

const (
	CondNever Cond = iota
	CondAlways
	CondEq
	CondNe
	CondLt // signed
	CondLe
	CondGt
	CondGe
	CondLtU // unsigned (carry set)
	CondLeU
	CondGtU
	CondGeU
	CondNeg
	CondPos
	CondOverflow
	CondNoOverflow
)

func (c Cond) String() string {
	names := [...]string{"never", "always", "eq", "ne", "lt", "le", "gt",
		"ge", "ltu", "leu", "gtu", "geu", "neg", "pos", "vs", "vc"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("cond?%d", int(c))
}

// Effect is one component of an instruction's register transfer.
type Effect interface {
	isEffect()
	String() string
}

// Assign writes Src (evaluated in the pre-state) to register Dst. Win
// selects the window relative to the instruction's entry window: +1
// after a SaveWindow in the same sequence, -1 after a RestoreWindow,
// 0 otherwise.
type Assign struct {
	Dst Reg
	Win int
	Src Expr
}

// Load reads Size bytes at Addr into Dst, zero- or sign-extending
// sub-word values.
type Load struct {
	Dst    Reg
	Addr   Expr
	Size   int
	Signed bool
}

// Store writes the low Size bytes of Src to Addr.
type Store struct {
	Src  Expr
	Addr Expr
	Size int
}

// SetCC records that the condition codes were set by computing
// (A op B); Op determines the overflow/carry rules (Add and Sub have
// arithmetic flags, the logical operations clear V and C).
type SetCC struct {
	Op   BinOp
	A, B Expr
}

// SaveWindow opens a new register window (the architecture's in/out
// overlap is the executor's concern; statically, Assigns with Win=+1
// target the new window).
type SaveWindow struct{}

// RestoreWindow returns to the previous register window.
type RestoreWindow struct{}

// Branch is a conditional pc-relative control transfer with a delay
// slot; Annul is the architecture's delay-slot annul bit.
type Branch struct {
	Cond  Cond
	Disp  int32 // word displacement from this instruction
	Annul bool
}

// Call is a pc-relative call (the return-address write is a separate
// Assign of PC in the same sequence).
type Call struct{ Disp int32 }

// Jump is an indirect control transfer to a computed address (returns;
// the link write, if any, is a separate Assign of PC).
type Jump struct{ Target Expr }

// Unsupported marks an instruction the machine model does not support.
// Executors fault; static analyses charge Code/Msg as a violation and
// forget everything about Dst (ZeroReg when no register is clobbered).
// Store marks the unmodelled instruction as one that may write memory
// (e.g. an unsupported store form), so mod-set computation stays sound.
type Unsupported struct {
	Code  string
	Msg   string
	Dst   Reg
	Store bool
}

func (Assign) isEffect()        {}
func (Load) isEffect()          {}
func (Store) isEffect()         {}
func (SetCC) isEffect()         {}
func (SaveWindow) isEffect()    {}
func (RestoreWindow) isEffect() {}
func (Branch) isEffect()        {}
func (Call) isEffect()          {}
func (Jump) isEffect()          {}
func (Unsupported) isEffect()   {}

func (a Assign) String() string {
	if a.Win != 0 {
		return fmt.Sprintf("r%d@%+d := %s", int(a.Dst), a.Win, a.Src)
	}
	return fmt.Sprintf("r%d := %s", int(a.Dst), a.Src)
}
func (l Load) String() string {
	sign := "u"
	if l.Signed {
		sign = "s"
	}
	return fmt.Sprintf("r%d := mem%d%s[%s]", int(l.Dst), l.Size, sign, l.Addr)
}
func (s Store) String() string {
	return fmt.Sprintf("mem%d[%s] := %s", s.Size, s.Addr, s.Src)
}
func (s SetCC) String() string {
	return fmt.Sprintf("cc := %s(%s, %s)", s.Op, s.A, s.B)
}
func (SaveWindow) String() string    { return "save-window" }
func (RestoreWindow) String() string { return "restore-window" }
func (b Branch) String() string {
	annul := ""
	if b.Annul {
		annul = ",a"
	}
	return fmt.Sprintf("branch%s %s .%+d", annul, b.Cond, b.Disp)
}
func (c Call) String() string { return fmt.Sprintf("call .%+d", c.Disp) }
func (j Jump) String() string { return fmt.Sprintf("jump %s", j.Target) }
func (u Unsupported) String() string {
	return fmt.Sprintf("unsupported(%s): %s", u.Code, u.Msg)
}
