package rtl

import "errors"

// ErrDivideByZero is returned by EvalBin for a zero divisor.
var ErrDivideByZero = errors.New("division by zero")

// EvalBin computes one ALU operation on 32-bit values. This is the
// single concrete definition of the operator semantics; the abstract
// consumers fold constants through FoldBin, which agrees bit for bit.
func EvalBin(op BinOp, a, b uint32) (uint32, error) {
	switch op {
	case Add:
		return a + b, nil
	case Sub:
		return a - b, nil
	case And:
		return a & b, nil
	case AndNot:
		return a &^ b, nil
	case Or:
		return a | b, nil
	case OrNot:
		return a | ^b, nil
	case Xor:
		return a ^ b, nil
	case XorNot:
		return ^(a ^ b), nil
	case ShL:
		return a << (b & 31), nil
	case ShRL:
		return a >> (b & 31), nil
	case ShRA:
		return uint32(int32(a) >> (b & 31)), nil
	case MulU, MulS:
		return a * b, nil
	case DivU:
		if b == 0 {
			return 0, ErrDivideByZero
		}
		return a / b, nil
	case DivS:
		if b == 0 {
			return 0, ErrDivideByZero
		}
		return uint32(int32(a) / int32(b)), nil
	}
	return 0, errors.New("rtl: unknown binary op")
}

// FoldBin is the abstract (int64) constant folding used by typestate
// propagation. The second result is false for operations whose result
// the Presburger fragment cannot track exactly (division).
func FoldBin(op BinOp, a, b int64) (int64, bool) {
	switch op {
	case Add:
		return a + b, true
	case Sub:
		return a - b, true
	case And:
		return a & b, true
	case AndNot:
		return a &^ b, true
	case Or:
		return a | b, true
	case Xor:
		return a ^ b, true
	case XorNot:
		return ^(a ^ b), true
	case ShL:
		return a << uint(b&31), true
	case ShRL:
		return int64(uint32(a) >> uint(b&31)), true
	case ShRA:
		return int64(int32(a) >> uint(b&31)), true
	case MulU, MulS:
		return a * b, true
	}
	return 0, false
}

// EvalCC computes the condition codes set by (A op B): the SPARC-style
// N/Z/V/C quadruple. Add and Sub use the arithmetic overflow and carry
// rules; the logical operations clear V and C.
func EvalCC(op BinOp, a, b uint32) (n, z, v, c bool, err error) {
	res, err := EvalBin(op, a, b)
	if err != nil {
		return false, false, false, false, err
	}
	n = res&0x80000000 != 0
	z = res == 0
	switch op {
	case Add:
		v = (a&0x80000000 == b&0x80000000) && (res&0x80000000 != a&0x80000000)
		c = uint64(a)+uint64(b) > 0xffffffff
	case Sub:
		v = (a&0x80000000 != b&0x80000000) && (res&0x80000000 == b&0x80000000)
		c = uint64(a) < uint64(b)
	}
	return n, z, v, c, nil
}

// EvalCond decides a branch condition against the condition codes.
func EvalCond(cond Cond, n, z, v, c bool) bool {
	switch cond {
	case CondAlways:
		return true
	case CondNever:
		return false
	case CondEq:
		return z
	case CondNe:
		return !z
	case CondLt:
		return n != v
	case CondGe:
		return n == v
	case CondLe:
		return z || n != v
	case CondGt:
		return !z && n == v
	case CondLtU:
		return c
	case CondGeU:
		return !c
	case CondLeU:
		return c || z
	case CondGtU:
		return !c && !z
	case CondNeg:
		return n
	case CondPos:
		return !n
	case CondOverflow:
		return v
	case CondNoOverflow:
		return !v
	}
	return false
}

// Extend truncates a loaded raw value to Size bytes and zero- or
// sign-extends it to 32 bits.
func Extend(raw uint32, size int, signed bool) uint32 {
	switch size {
	case 1:
		if signed {
			return uint32(int32(int8(raw)))
		}
		return raw & 0xff
	case 2:
		if signed {
			return uint32(int32(int16(raw)))
		}
		return raw & 0xffff
	}
	return raw
}

// EvalExpr evaluates an operand expression in a concrete pre-state:
// reg supplies register values (the executor implements the ZeroReg
// convention), pc the address of the current instruction.
func EvalExpr(e Expr, reg func(Reg) uint32, pc uint32) (uint32, error) {
	switch x := e.(type) {
	case Const:
		return uint32(x.V), nil
	case RegX:
		if x.R == ZeroReg {
			return 0, nil
		}
		return reg(x.R), nil
	case PC:
		return pc, nil
	case Bin:
		a, err := EvalExpr(x.A, reg, pc)
		if err != nil {
			return 0, err
		}
		b, err := EvalExpr(x.B, reg, pc)
		if err != nil {
			return 0, err
		}
		return EvalBin(x.Op, a, b)
	}
	return 0, errors.New("rtl: unknown expression")
}
