// The isa.Arch adapter for the RV32I front-end. RV32I exercises the
// architecture seam from the opposite corner of the design space to
// SPARC: no delay slots, no register windows, fused compare-and-branch
// instead of condition codes — and a memory subsystem the hardware-
// aliasing literature (arXiv:1305.6431) says may translate
// arithmetically distinct addresses inconsistently, which turns on the
// "alias" safety-condition class.

package riscv

import (
	"fmt"

	"mcsafe/internal/isa"
	"mcsafe/internal/rtl"
)

type archImpl struct{}

// Arch is the RV32I front-end as an isa.Arch.
var Arch isa.Arch = archImpl{}

func init() { isa.Register(Arch) }

var regModel = func() *isa.RegModel {
	names := make([]string, 32)
	aliases := map[string]string{"%fp": "%s0"}
	for r := 0; r < 32; r++ {
		names[r] = Reg(r).String()
		aliases[fmt.Sprintf("%%x%d", r)] = names[r]
	}
	return isa.NewRegModel(names, aliases, false, 0, 0)
}()

var convention = &isa.Convention{
	SP:      rtl.Reg(SP),
	FP:      rtl.Reg(S0),
	Link:    rtl.Reg(RA),
	RetReg:  rtl.Reg(A0),
	ArgRegs: []rtl.Reg{10, 11, 12, 13, 14, 15, 16, 17}, // %a0..%a7
	// A trusted call may clobber the argument, temporary, and link
	// registers; the order is the canonical havoc order and is frozen.
	CallClobbered: []rtl.Reg{10, 11, 12, 13, 14, 15, 16, 17, 5, 6, 7, 28, 29, 30, 31, 1},
	InitRegs:      []rtl.Reg{rtl.Reg(SP), rtl.Reg(S0), rtl.Reg(RA)},
	MinFrame:      16,
	StackAlign:    16,
}

func (archImpl) Name() string          { return "rv32i" }
func (archImpl) Regs() *isa.RegModel   { return regModel }
func (archImpl) Conv() *isa.Convention { return convention }
func (archImpl) Traits() isa.Traits {
	return isa.Traits{HardwareAliasing: true}
}

func (archImpl) Assemble(src string, opts isa.AsmOptions) (*isa.Program, error) {
	p, err := Assemble(src, AsmOptions{
		Base: opts.Base, DataSyms: opts.DataSyms, Entry: opts.Entry, Externs: opts.Externs,
	})
	if err != nil {
		return nil, err
	}
	return toISA(p), nil
}

func (archImpl) FromWords(words []uint32, base uint32, symbols map[string]int, dataSyms map[string]uint32) (*isa.Program, error) {
	p, err := FromWords(words, base, symbols, dataSyms)
	if err != nil {
		return nil, err
	}
	return toISA(p), nil
}

// toISA lifts an assembled RV32I program into the ISA-neutral container.
func toISA(p *Program) *isa.Program {
	insns := make([]isa.Insn, len(p.Insns))
	for i, insn := range p.Insns {
		insns[i] = isa.Insn{
			RTL:  Lift(insn),
			Text: insn.String(),
			Ret:  insn.IsReturn(),
		}
	}
	return &isa.Program{
		Arch:     Arch,
		Words:    p.Words,
		Insns:    insns,
		Base:     p.Base,
		Symbols:  p.Symbols,
		Procs:    p.Procs,
		Entry:    p.Entry,
		DataSyms: p.DataSyms,
		SrcLines: p.SrcLines,
	}
}
