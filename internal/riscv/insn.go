package riscv

import "fmt"

// Op enumerates the RV32I base instructions the decoder produces.
type Op int

const (
	OpInvalid Op = iota
	OpLui
	OpAuipc
	OpJal
	OpJalr
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpLb
	OpLh
	OpLw
	OpLbu
	OpLhu
	OpSb
	OpSh
	OpSw
	OpAddi
	OpSlti
	OpSltiu
	OpXori
	OpOri
	OpAndi
	OpSlli
	OpSrli
	OpSrai
	OpAdd
	OpSub
	OpSll
	OpSlt
	OpSltu
	OpXor
	OpSrl
	OpSra
	OpOr
	OpAnd
	OpFence
	OpEcall
	OpEbreak
	opMax // one past the last opcode, for exhaustiveness tests
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpLui:     "lui", OpAuipc: "auipc", OpJal: "jal", OpJalr: "jalr",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpLb: "lb", OpLh: "lh", OpLw: "lw", OpLbu: "lbu", OpLhu: "lhu",
	OpSb: "sb", OpSh: "sh", OpSw: "sw",
	OpAddi: "addi", OpSlti: "slti", OpSltiu: "sltiu", OpXori: "xori",
	OpOri: "ori", OpAndi: "andi", OpSlli: "slli", OpSrli: "srli",
	OpSrai: "srai",
	OpAdd:  "add", OpSub: "sub", OpSll: "sll", OpSlt: "slt",
	OpSltu: "sltu", OpXor: "xor", OpSrl: "srl", OpSra: "sra",
	OpOr: "or", OpAnd: "and",
	OpFence: "fence", OpEcall: "ecall", OpEbreak: "ebreak",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op?%d", int(op))
}

// Insn is one decoded RV32I instruction.
type Insn struct {
	Op       Op
	Rd       Reg
	Rs1, Rs2 Reg
	// Imm is the sign-extended immediate: the I-/S-type 12-bit value,
	// or the already-shifted U-type upper immediate.
	Imm int32
	// Disp is a branch/jal displacement in instructions (the byte
	// offset divided by 4).
	Disp int32
	// Target is an assembler-internal unresolved label.
	Target string
	// Line is the source line the assembler read this instruction from.
	Line int
}

// IsLoad reports whether the instruction reads memory.
func (i Insn) IsLoad() bool {
	switch i.Op {
	case OpLb, OpLh, OpLw, OpLbu, OpLhu:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes memory.
func (i Insn) IsStore() bool {
	switch i.Op {
	case OpSb, OpSh, OpSw:
		return true
	}
	return false
}

// MemSize returns the byte width of a load or store (0 otherwise).
func (i Insn) MemSize() int {
	switch i.Op {
	case OpLb, OpLbu, OpSb:
		return 1
	case OpLh, OpLhu, OpSh:
		return 2
	case OpLw, OpSw:
		return 4
	}
	return 0
}

// IsBranch reports a conditional branch.
func (i Insn) IsBranch() bool {
	switch i.Op {
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return true
	}
	return false
}

// IsReturn reports the standard return idiom jalr x0, 0(ra).
func (i Insn) IsReturn() bool {
	return i.Op == OpJalr && i.Rd == Zero && i.Rs1 == RA && i.Imm == 0
}

// String renders the instruction in standard assembly syntax, branch
// and jump displacements in relative ".%+d" form (instruction units).
func (i Insn) String() string {
	switch {
	case i.Op == OpLui || i.Op == OpAuipc:
		return fmt.Sprintf("%s %s, 0x%x", i.Op, i.Rd, uint32(i.Imm)>>12)
	case i.Op == OpJal:
		if i.Rd == Zero {
			return fmt.Sprintf("j .%+d", i.Disp)
		}
		return fmt.Sprintf("jal %s, .%+d", i.Rd, i.Disp)
	case i.Op == OpJalr:
		if i.IsReturn() {
			return "ret"
		}
		return fmt.Sprintf("jalr %s, %d(%s)", i.Rd, i.Imm, i.Rs1)
	case i.IsBranch():
		return fmt.Sprintf("%s %s, %s, .%+d", i.Op, i.Rs1, i.Rs2, i.Disp)
	case i.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
	case i.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case i.Op == OpFence:
		return "fence"
	case i.Op == OpEcall || i.Op == OpEbreak:
		return i.Op.String()
	case isImmALU(i.Op):
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

func isImmALU(op Op) bool {
	switch op {
	case OpAddi, OpSlti, OpSltiu, OpXori, OpOri, OpAndi, OpSlli, OpSrli, OpSrai:
		return true
	}
	return false
}

// Decode decodes one RV32I machine word. Words outside the checked
// subset's encodable space (bad opcodes, bad funct fields, misaligned
// control displacements) are errors, exactly as an undecodable SPARC
// word is: the checker rejects what it cannot read.
func Decode(w uint32) (Insn, error) {
	opcode := w & 0x7f
	rd := Reg((w >> 7) & 0x1f)
	funct3 := (w >> 12) & 7
	rs1 := Reg((w >> 15) & 0x1f)
	rs2 := Reg((w >> 20) & 0x1f)
	funct7 := w >> 25

	immI := int32(w) >> 20
	immS := (int32(w)>>25)<<5 | int32((w>>7)&0x1f)
	immB := (int32(w)>>31)<<12 | int32((w>>7)&1)<<11 |
		int32((w>>25)&0x3f)<<5 | int32((w>>8)&0xf)<<1
	immU := int32(w & 0xfffff000)
	immJ := (int32(w)>>31)<<20 | int32((w>>12)&0xff)<<12 |
		int32((w>>20)&1)<<11 | int32((w>>21)&0x3ff)<<1

	bad := func(what string) (Insn, error) {
		return Insn{}, fmt.Errorf("riscv: cannot decode %s word 0x%08x", what, w)
	}

	switch opcode {
	case 0x37:
		return Insn{Op: OpLui, Rd: rd, Imm: immU}, nil
	case 0x17:
		return Insn{Op: OpAuipc, Rd: rd, Imm: immU}, nil
	case 0x6f:
		if immJ%4 != 0 {
			return bad("misaligned jal")
		}
		return Insn{Op: OpJal, Rd: rd, Disp: immJ / 4}, nil
	case 0x67:
		if funct3 != 0 {
			return bad("jalr")
		}
		return Insn{Op: OpJalr, Rd: rd, Rs1: rs1, Imm: immI}, nil
	case 0x63:
		var op Op
		switch funct3 {
		case 0:
			op = OpBeq
		case 1:
			op = OpBne
		case 4:
			op = OpBlt
		case 5:
			op = OpBge
		case 6:
			op = OpBltu
		case 7:
			op = OpBgeu
		default:
			return bad("branch")
		}
		if immB%4 != 0 {
			return bad("misaligned branch")
		}
		return Insn{Op: op, Rs1: rs1, Rs2: rs2, Disp: immB / 4}, nil
	case 0x03:
		var op Op
		switch funct3 {
		case 0:
			op = OpLb
		case 1:
			op = OpLh
		case 2:
			op = OpLw
		case 4:
			op = OpLbu
		case 5:
			op = OpLhu
		default:
			return bad("load")
		}
		return Insn{Op: op, Rd: rd, Rs1: rs1, Imm: immI}, nil
	case 0x23:
		var op Op
		switch funct3 {
		case 0:
			op = OpSb
		case 1:
			op = OpSh
		case 2:
			op = OpSw
		default:
			return bad("store")
		}
		return Insn{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS}, nil
	case 0x13:
		var op Op
		switch funct3 {
		case 0:
			op = OpAddi
		case 2:
			op = OpSlti
		case 3:
			op = OpSltiu
		case 4:
			op = OpXori
		case 6:
			op = OpOri
		case 7:
			op = OpAndi
		case 1:
			if funct7 != 0 {
				return bad("slli")
			}
			return Insn{Op: OpSlli, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		case 5:
			switch funct7 {
			case 0x00:
				return Insn{Op: OpSrli, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			case 0x20:
				return Insn{Op: OpSrai, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			}
			return bad("shift")
		}
		return Insn{Op: op, Rd: rd, Rs1: rs1, Imm: immI}, nil
	case 0x33:
		type rkey struct {
			f3, f7 uint32
		}
		op, ok := map[rkey]Op{
			{0, 0x00}: OpAdd, {0, 0x20}: OpSub,
			{1, 0x00}: OpSll, {2, 0x00}: OpSlt, {3, 0x00}: OpSltu,
			{4, 0x00}: OpXor, {5, 0x00}: OpSrl, {5, 0x20}: OpSra,
			{6, 0x00}: OpOr, {7, 0x00}: OpAnd,
		}[rkey{funct3, funct7}]
		if !ok {
			return bad("register ALU")
		}
		return Insn{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	case 0x0f:
		if funct3 != 0 {
			return bad("fence")
		}
		return Insn{Op: OpFence}, nil
	case 0x73:
		switch w {
		case 0x00000073:
			return Insn{Op: OpEcall}, nil
		case 0x00100073:
			return Insn{Op: OpEbreak}, nil
		}
		return bad("system")
	}
	return bad("")
}

// DecodeAll decodes a word sequence, reporting the index of the first
// undecodable word.
func DecodeAll(words []uint32) ([]Insn, error) {
	insns := make([]Insn, len(words))
	for idx, w := range words {
		insn, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("word %d: %v", idx, err)
		}
		insns[idx] = insn
	}
	return insns, nil
}

// Encode encodes one instruction to its machine word — the inverse of
// Decode over the decoder's image (enforced by the round-trip test).
func Encode(i Insn) (uint32, error) {
	r := func(reg Reg) uint32 { return uint32(reg) & 0x1f }
	immI := func(op Op, v int32) (uint32, error) {
		if v < -2048 || v > 2047 {
			return 0, fmt.Errorf("riscv: %s immediate %d out of 12-bit range", op, v)
		}
		return uint32(v) & 0xfff, nil
	}
	switch i.Op {
	case OpLui, OpAuipc:
		if i.Imm&0xfff != 0 {
			return 0, fmt.Errorf("riscv: %s immediate 0x%x has nonzero low bits", i.Op, uint32(i.Imm))
		}
		opc := uint32(0x37)
		if i.Op == OpAuipc {
			opc = 0x17
		}
		return uint32(i.Imm) | r(i.Rd)<<7 | opc, nil
	case OpJal:
		off := i.Disp * 4
		if off < -(1<<20) || off >= 1<<20 {
			return 0, fmt.Errorf("riscv: jal displacement %d out of range", i.Disp)
		}
		u := uint32(off)
		w := (u>>20&1)<<31 | (u>>1&0x3ff)<<21 | (u>>11&1)<<20 | (u>>12&0xff)<<12
		return w | r(i.Rd)<<7 | 0x6f, nil
	case OpJalr:
		imm, err := immI(i.Op, i.Imm)
		if err != nil {
			return 0, err
		}
		return imm<<20 | r(i.Rs1)<<15 | r(i.Rd)<<7 | 0x67, nil
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		f3 := map[Op]uint32{OpBeq: 0, OpBne: 1, OpBlt: 4, OpBge: 5, OpBltu: 6, OpBgeu: 7}[i.Op]
		off := i.Disp * 4
		if off < -(1<<12) || off >= 1<<12 {
			return 0, fmt.Errorf("riscv: branch displacement %d out of range", i.Disp)
		}
		u := uint32(off)
		w := (u>>12&1)<<31 | (u>>5&0x3f)<<25 | (u>>1&0xf)<<8 | (u>>11&1)<<7
		return w | r(i.Rs2)<<20 | r(i.Rs1)<<15 | f3<<12 | 0x63, nil
	case OpLb, OpLh, OpLw, OpLbu, OpLhu:
		f3 := map[Op]uint32{OpLb: 0, OpLh: 1, OpLw: 2, OpLbu: 4, OpLhu: 5}[i.Op]
		imm, err := immI(i.Op, i.Imm)
		if err != nil {
			return 0, err
		}
		return imm<<20 | r(i.Rs1)<<15 | f3<<12 | r(i.Rd)<<7 | 0x03, nil
	case OpSb, OpSh, OpSw:
		f3 := map[Op]uint32{OpSb: 0, OpSh: 1, OpSw: 2}[i.Op]
		imm, err := immI(i.Op, i.Imm)
		if err != nil {
			return 0, err
		}
		return (imm>>5)<<25 | r(i.Rs2)<<20 | r(i.Rs1)<<15 | f3<<12 | (imm&0x1f)<<7 | 0x23, nil
	case OpAddi, OpSlti, OpSltiu, OpXori, OpOri, OpAndi:
		f3 := map[Op]uint32{OpAddi: 0, OpSlti: 2, OpSltiu: 3, OpXori: 4, OpOri: 6, OpAndi: 7}[i.Op]
		imm, err := immI(i.Op, i.Imm)
		if err != nil {
			return 0, err
		}
		return imm<<20 | r(i.Rs1)<<15 | f3<<12 | r(i.Rd)<<7 | 0x13, nil
	case OpSlli, OpSrli, OpSrai:
		if i.Imm < 0 || i.Imm > 31 {
			return 0, fmt.Errorf("riscv: shift amount %d out of range", i.Imm)
		}
		f3, f7 := uint32(1), uint32(0)
		switch i.Op {
		case OpSrli:
			f3 = 5
		case OpSrai:
			f3, f7 = 5, 0x20
		}
		return f7<<25 | uint32(i.Imm)<<20 | r(i.Rs1)<<15 | f3<<12 | r(i.Rd)<<7 | 0x13, nil
	case OpAdd, OpSub, OpSll, OpSlt, OpSltu, OpXor, OpSrl, OpSra, OpOr, OpAnd:
		type enc struct{ f3, f7 uint32 }
		e := map[Op]enc{
			OpAdd: {0, 0}, OpSub: {0, 0x20}, OpSll: {1, 0}, OpSlt: {2, 0},
			OpSltu: {3, 0}, OpXor: {4, 0}, OpSrl: {5, 0}, OpSra: {5, 0x20},
			OpOr: {6, 0}, OpAnd: {7, 0},
		}[i.Op]
		return e.f7<<25 | r(i.Rs2)<<20 | r(i.Rs1)<<15 | e.f3<<12 | r(i.Rd)<<7 | 0x33, nil
	case OpFence:
		return 0x0000000f, nil
	case OpEcall:
		return 0x00000073, nil
	case OpEbreak:
		return 0x00100073, nil
	}
	return 0, fmt.Errorf("riscv: cannot encode op %v", i.Op)
}
