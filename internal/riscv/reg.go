package riscv

import "fmt"

// Reg is an RV32I integer register number (x0..x31). Names follow the
// standard ABI mnemonics, rendered with the checker's uniform "%"
// prefix so register variables are lexically recognizable across
// architectures ("%a0" for x10, as "%o0" names SPARC r8).
type Reg uint8

// ABI register numbers.
const (
	Zero Reg = 0 // hardwired zero
	RA   Reg = 1 // return address
	SP   Reg = 2 // stack pointer
	GP   Reg = 3 // global pointer
	TP   Reg = 4 // thread pointer
	T0   Reg = 5
	S0   Reg = 8 // saved/frame pointer
	S1   Reg = 9
	A0   Reg = 10 // first argument/result
	A7   Reg = 17
	S2   Reg = 18
	T3   Reg = 28
)

var regNames = [32]string{
	"%zero", "%ra", "%sp", "%gp", "%tp", "%t0", "%t1", "%t2",
	"%s0", "%s1", "%a0", "%a1", "%a2", "%a3", "%a4", "%a5",
	"%a6", "%a7", "%s2", "%s3", "%s4", "%s5", "%s6", "%s7",
	"%s8", "%s9", "%s10", "%s11", "%t3", "%t4", "%t5", "%t6",
}

// String renders the canonical ABI name.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("%%x%d", uint8(r))
}

// ParseReg accepts ABI names with or without the "%" prefix ("a0",
// "%a0"), the "fp" alias for s0, and raw "x<n>" numbers.
func ParseReg(name string) (Reg, error) {
	s := name
	if len(s) > 0 && s[0] == '%' {
		s = s[1:]
	}
	if s == "fp" {
		return S0, nil
	}
	for r, n := range regNames {
		if s == n[1:] {
			return Reg(r), nil
		}
	}
	if len(s) >= 2 && s[0] == 'x' {
		var n int
		if _, err := fmt.Sscanf(s[1:], "%d", &n); err == nil && n >= 0 && n < 32 {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("riscv: unknown register %q", name)
}
