package riscv

import (
	"math/rand"
	"testing"

	"mcsafe/internal/rtl"
)

// repInsn builds a representative instruction for an opcode, with fields
// populated the way the decoder would populate them.
func repInsn(op Op) Insn {
	switch op {
	case OpLui, OpAuipc:
		return Insn{Op: op, Rd: 1, Imm: 0x12000}
	case OpJal:
		return Insn{Op: op, Rd: 1, Disp: 2}
	case OpJalr:
		return Insn{Op: op, Rd: 1, Rs1: 2, Imm: 4}
	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return Insn{Op: op, Rs1: 1, Rs2: 2, Disp: 2}
	case OpLb, OpLh, OpLw, OpLbu, OpLhu:
		return Insn{Op: op, Rd: 1, Rs1: 2, Imm: 4}
	case OpSb, OpSh, OpSw:
		return Insn{Op: op, Rs1: 1, Rs2: 2, Imm: 4}
	case OpSlli, OpSrli, OpSrai:
		return Insn{Op: op, Rd: 1, Rs1: 2, Imm: 3}
	case OpFence, OpEcall, OpEbreak:
		return Insn{Op: op}
	}
	return Insn{Op: op, Rd: 1, Rs1: 2, Rs2: 3}
}

// TestLiftRV32IExhaustive: every opcode the decoder can produce has
// exactly one lifter rule — Lift returns a non-empty effect sequence
// for all of them, and nil only for OpInvalid. The same guard as the
// SPARC front-end's TestLiftExhaustive: a new opcode without a lifting
// rule fails here, not at analysis time.
func TestLiftRV32IExhaustive(t *testing.T) {
	for op := OpInvalid + 1; op < opMax; op++ {
		effs := Lift(repInsn(op))
		if len(effs) == 0 {
			t.Errorf("op %v: no lifter rule (Lift returned %v)", op, effs)
		}
	}
	if Lift(Insn{Op: OpInvalid}) != nil {
		t.Error("OpInvalid must not lift")
	}
}

// TestLiftDecodedWords: any word the decoder accepts must lift. Random
// words double as a probe that no decodable encoding falls through the
// lifter.
func TestLiftDecodedWords(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	decoded := 0
	for n := 0; n < 200000; n++ {
		w := rng.Uint32()
		i, err := Decode(w)
		if err != nil {
			continue
		}
		decoded++
		if len(Lift(i)) == 0 {
			t.Fatalf("decodable word 0x%08x (%v) does not lift", w, i)
		}
	}
	if decoded == 0 {
		t.Fatal("no random word decoded; the probe is vacuous")
	}
}

// TestLiftFusedBranch pins the fused compare-and-branch shape the
// ISA-neutral pipeline depends on: one instruction carrying SetCC
// followed by the Branch that reads it (RV32I has no condition codes,
// so the comparison cannot be a separate instruction as on SPARC).
func TestLiftFusedBranch(t *testing.T) {
	effs := Lift(Insn{Op: OpBlt, Rs1: 10, Rs2: 11, Disp: 3})
	if len(effs) != 2 {
		t.Fatalf("branch lifted to %d effects, want SetCC+Branch pair", len(effs))
	}
	cc, ok := effs[0].(rtl.SetCC)
	if !ok || cc.Op != rtl.Sub {
		t.Fatalf("first effect %v, want SetCC(Sub)", effs[0])
	}
	br, ok := effs[1].(rtl.Branch)
	if !ok || br.Cond != rtl.CondLt || br.Disp != 3 {
		t.Fatalf("second effect %v, want Branch(Lt, +3)", effs[1])
	}
}

// TestEncodeDecodeRoundTrip: Encode is the inverse of Decode over the
// representative instruction of every encodable opcode.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for op := OpInvalid + 1; op < opMax; op++ {
		i := repInsn(op)
		if op == OpLui || op == OpAuipc {
			i.Imm = 0x12000 // U-type immediates carry zero low bits
		}
		w, err := Encode(i)
		if err != nil {
			t.Errorf("op %v: encode: %v", op, err)
			continue
		}
		back, err := Decode(w)
		if err != nil {
			t.Errorf("op %v: decode(0x%08x): %v", op, w, err)
			continue
		}
		w2, err := Encode(back)
		if err != nil {
			t.Errorf("op %v: re-encode: %v", op, err)
			continue
		}
		if w2 != w {
			t.Errorf("op %v: 0x%08x -> %v -> 0x%08x", op, w, back, w2)
		}
	}
}

// TestReturnIdiom: jalr x0, 0(ra) is the return the CFG keys on, and
// nothing else is.
func TestReturnIdiom(t *testing.T) {
	if !(Insn{Op: OpJalr, Rd: Zero, Rs1: RA}).IsReturn() {
		t.Error("ret not recognized")
	}
	if (Insn{Op: OpJalr, Rd: RA, Rs1: RA}).IsReturn() {
		t.Error("jalr ra, 0(ra) is a call, not a return")
	}
	if (Insn{Op: OpJalr, Rd: Zero, Rs1: RA, Imm: 4}).IsReturn() {
		t.Error("nonzero offset is not the return idiom")
	}
}
