package riscv

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultBase is the virtual address assigned to the first instruction
// of an assembled program.
const DefaultBase uint32 = 0x10000

// Program is an assembled (or externally supplied) RV32I program; the
// fields mirror the SPARC front-end's container and are lifted into the
// ISA-neutral isa.Program by the Arch adapter.
type Program struct {
	Words    []uint32
	Insns    []Insn
	Base     uint32
	Symbols  map[string]int
	Procs    []string
	Entry    int
	DataSyms map[string]uint32
	SrcLines []int
}

// AsmOptions configures assembly.
type AsmOptions struct {
	Base     uint32
	DataSyms map[string]uint32
	Entry    string
	Externs  map[string]bool
}

// Assemble runs a two-pass assembler over RV32I assembly source in
// standard syntax ("addi a0, a0, 1", "lw a1, 0(a0)", "beq a0, zero,
// done"). Pseudo-instructions li/la/mv/j/call/ret/nop/beqz/bnez are
// expanded; labels are resolved to displacements; the result is encoded
// to machine words and re-decoded so Program.Insns is exactly what a
// checker sees when handed the binary.
func Assemble(src string, opts AsmOptions) (*Program, error) {
	base := opts.Base
	if base == 0 {
		base = DefaultBase
	}

	var insns []Insn
	labels := make(map[string]int)
	var pendingLabels []string

	for lineNo, text := range strings.Split(src, "\n") {
		lbls, parsed, err := parseLine(text, lineNo+1, opts.DataSyms)
		if err != nil {
			return nil, err
		}
		pendingLabels = append(pendingLabels, lbls...)
		if len(parsed) == 0 {
			continue
		}
		for _, l := range pendingLabels {
			if _, dup := labels[l]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, l)
			}
			labels[l] = len(insns)
		}
		pendingLabels = pendingLabels[:0]
		insns = append(insns, parsed...)
	}
	if len(pendingLabels) > 0 {
		for _, l := range pendingLabels {
			labels[l] = len(insns)
		}
	}
	if len(insns) == 0 {
		return nil, fmt.Errorf("riscv: empty program")
	}
	// External symbols resolve to slots past the last instruction, in
	// name order, exactly as the SPARC assembler places them — the
	// verdict store's content addresses depend on the determinism.
	externs := make([]string, 0, len(opts.Externs))
	for name := range opts.Externs {
		externs = append(externs, name)
	}
	sort.Strings(externs)
	for _, name := range externs {
		if _, defined := labels[name]; !defined {
			labels[name] = len(insns) + len(labels)
		}
	}

	// Pass 2: resolve targets, encode.
	words := make([]uint32, len(insns))
	srcLines := make([]int, len(insns))
	callTargets := make(map[string]bool)
	for idx := range insns {
		insn := insns[idx]
		srcLines[idx] = insn.Line
		if insn.Target != "" {
			tgt, ok := labels[insn.Target]
			if !ok {
				return nil, fmt.Errorf("line %d: undefined label %q", insn.Line, insn.Target)
			}
			insn.Disp = int32(tgt - idx)
			if insn.Op == OpJal && insn.Rd != Zero {
				callTargets[insn.Target] = true
			}
			insn.Target = ""
		}
		w, err := Encode(insn)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", insn.Line, err)
		}
		words[idx] = w
	}

	decoded, err := DecodeAll(words)
	if err != nil {
		return nil, fmt.Errorf("riscv: internal round-trip failure: %v", err)
	}
	for idx := range decoded {
		decoded[idx].Line = srcLines[idx]
	}

	entry := 0
	if opts.Entry != "" {
		e, ok := labels[opts.Entry]
		if !ok {
			return nil, fmt.Errorf("riscv: entry label %q not defined", opts.Entry)
		}
		entry = e
	}

	var procs []string
	for l := range callTargets {
		if labels[l] < len(insns) {
			procs = append(procs, l)
		}
	}
	for l, idx := range labels {
		if idx == entry && !callTargets[l] {
			procs = append(procs, l)
		}
	}
	sort.Slice(procs, func(i, j int) bool { return labels[procs[i]] < labels[procs[j]] })

	return &Program{
		Words:    words,
		Insns:    decoded,
		Base:     base,
		Symbols:  labels,
		Procs:    procs,
		Entry:    entry,
		DataSyms: opts.DataSyms,
		SrcLines: srcLines,
	}, nil
}

// FromWords builds a Program directly from machine words; symbols and
// dataSyms may be nil. Call targets (jal with a link register) identify
// procedure entries, as on SPARC.
func FromWords(words []uint32, base uint32, symbols map[string]int, dataSyms map[string]uint32) (*Program, error) {
	insns, err := DecodeAll(words)
	if err != nil {
		return nil, err
	}
	if base == 0 {
		base = DefaultBase
	}
	prog := &Program{
		Words:    append([]uint32(nil), words...),
		Insns:    insns,
		Base:     base,
		Symbols:  symbols,
		DataSyms: dataSyms,
		SrcLines: make([]int, len(insns)),
	}
	if prog.Symbols == nil {
		prog.Symbols = map[string]int{}
	}
	seen := map[int]bool{}
	for idx, insn := range insns {
		if insn.Op == OpJal && insn.Rd != Zero {
			tgt := idx + int(insn.Disp)
			if tgt >= 0 && tgt < len(insns) && !seen[tgt] {
				seen[tgt] = true
			}
		}
	}
	nameOf := make(map[int]string)
	for name, idx := range prog.Symbols {
		nameOf[idx] = name
	}
	var procIdx []int
	for idx := range seen {
		procIdx = append(procIdx, idx)
	}
	if !seen[prog.Entry] {
		procIdx = append(procIdx, prog.Entry)
	}
	sort.Ints(procIdx)
	for _, idx := range procIdx {
		name := nameOf[idx]
		if name == "" {
			name = fmt.Sprintf("proc_%d", idx)
			prog.Symbols[name] = idx
		}
		prog.Procs = append(prog.Procs, name)
	}
	return prog, nil
}

// parseLine parses one source line into leading labels and expanded
// instructions. Comments start with "#".
func parseLine(text string, line int, dataSyms map[string]uint32) ([]string, []Insn, error) {
	if i := strings.IndexByte(text, '#'); i >= 0 {
		text = text[:i]
	}
	text = strings.TrimSpace(text)
	var labels []string
	for {
		i := strings.IndexByte(text, ':')
		if i < 0 {
			break
		}
		lbl := strings.TrimSpace(text[:i])
		if lbl == "" || strings.ContainsAny(lbl, " \t,()") {
			return nil, nil, fmt.Errorf("line %d: bad label %q", line, lbl)
		}
		labels = append(labels, lbl)
		text = strings.TrimSpace(text[i+1:])
	}
	if text == "" {
		return labels, nil, nil
	}
	insns, err := parseInsn(text, line, dataSyms)
	return labels, insns, err
}

func parseInsn(text string, line int, dataSyms map[string]uint32) ([]Insn, error) {
	mnemonic, rest, _ := strings.Cut(text, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	var ops []string
	if rest = strings.TrimSpace(rest); rest != "" {
		ops = strings.Split(rest, ",")
		for i := range ops {
			ops[i] = strings.TrimSpace(ops[i])
		}
	}
	errf := func(format string, args ...any) ([]Insn, error) {
		return nil, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
	}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("line %d: %s wants %d operands, got %d", line, mnemonic, n, len(ops))
		}
		return nil
	}
	one := func(i Insn) ([]Insn, error) {
		i.Line = line
		return []Insn{i}, nil
	}

	switch mnemonic {
	case "nop":
		if err := need(0); err != nil {
			return nil, err
		}
		return one(Insn{Op: OpAddi})
	case "ret":
		if err := need(0); err != nil {
			return nil, err
		}
		return one(Insn{Op: OpJalr, Rd: Zero, Rs1: RA})
	case "ecall", "ebreak", "fence":
		if err := need(0); err != nil {
			return nil, err
		}
		op := map[string]Op{"ecall": OpEcall, "ebreak": OpEbreak, "fence": OpFence}[mnemonic]
		return one(Insn{Op: op})
	case "j", "call":
		if err := need(1); err != nil {
			return nil, err
		}
		rd := Zero
		if mnemonic == "call" {
			rd = RA
		}
		return one(Insn{Op: OpJal, Rd: rd, Target: ops[0]})
	case "jal":
		// jal label   (rd = ra)  |  jal rd, label
		switch len(ops) {
		case 1:
			return one(Insn{Op: OpJal, Rd: RA, Target: ops[0]})
		case 2:
			rd, err := ParseReg(ops[0])
			if err != nil {
				return errf("%v", err)
			}
			return one(Insn{Op: OpJal, Rd: rd, Target: ops[1]})
		}
		return errf("jal wants 1 or 2 operands")
	case "jalr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := ParseReg(ops[0])
		if err != nil {
			return errf("%v", err)
		}
		off, rs1, err := parseMem(ops[1])
		if err != nil {
			return errf("%v", err)
		}
		return one(Insn{Op: OpJalr, Rd: rd, Rs1: rs1, Imm: off})
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := ParseReg(ops[0])
		rs, err2 := ParseReg(ops[1])
		if err1 != nil || err2 != nil {
			return errf("bad mv operands")
		}
		return one(Insn{Op: OpAddi, Rd: rd, Rs1: rs})
	case "li", "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := ParseReg(ops[0])
		if err != nil {
			return errf("%v", err)
		}
		var v int64
		if mnemonic == "la" {
			addr, ok := dataSyms[ops[1]]
			if !ok {
				return errf("unknown data symbol %q", ops[1])
			}
			v = int64(int32(addr))
		} else {
			n, err := parseImm(ops[1])
			if err != nil {
				return errf("%v", err)
			}
			v = int64(n)
		}
		if v >= -2048 && v <= 2047 {
			return []Insn{{Op: OpAddi, Rd: rd, Imm: int32(v), Line: line}}, nil
		}
		hi := (uint32(v) + 0x800) & 0xfffff000
		lo := int32(uint32(v) - hi)
		out := []Insn{{Op: OpLui, Rd: rd, Imm: int32(hi), Line: line}}
		if lo != 0 {
			out = append(out, Insn{Op: OpAddi, Rd: rd, Rs1: rd, Imm: lo, Line: line})
		}
		return out, nil
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := ParseReg(ops[0])
		if err != nil {
			return errf("%v", err)
		}
		op := OpBeq
		if mnemonic == "bnez" {
			op = OpBne
		}
		return one(Insn{Op: op, Rs1: rs, Target: ops[1]})
	}

	if op, ok := branchOps[mnemonic]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err1 := ParseReg(ops[0])
		rs2, err2 := ParseReg(ops[1])
		if err1 != nil || err2 != nil {
			return errf("bad %s operands", mnemonic)
		}
		return one(Insn{Op: op, Rs1: rs1, Rs2: rs2, Target: ops[2]})
	}
	if op, ok := loadOps[mnemonic]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := ParseReg(ops[0])
		if err != nil {
			return errf("%v", err)
		}
		off, rs1, err := parseMem(ops[1])
		if err != nil {
			return errf("%v", err)
		}
		return one(Insn{Op: op, Rd: rd, Rs1: rs1, Imm: off})
	}
	if op, ok := storeOps[mnemonic]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := ParseReg(ops[0])
		if err != nil {
			return errf("%v", err)
		}
		off, rs1, err := parseMem(ops[1])
		if err != nil {
			return errf("%v", err)
		}
		return one(Insn{Op: op, Rs1: rs1, Rs2: rs2, Imm: off})
	}
	if op, ok := immALUOps[mnemonic]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err1 := ParseReg(ops[0])
		rs1, err2 := ParseReg(ops[1])
		imm, err3 := parseImm(ops[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return errf("bad %s operands", mnemonic)
		}
		return one(Insn{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
	}
	if op, ok := regALUOps[mnemonic]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err1 := ParseReg(ops[0])
		rs1, err2 := ParseReg(ops[1])
		rs2, err3 := ParseReg(ops[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return errf("bad %s operands", mnemonic)
		}
		return one(Insn{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
	}
	if mnemonic == "lui" || mnemonic == "auipc" {
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := ParseReg(ops[0])
		imm, err2 := parseImm(ops[1])
		if err1 != nil || err2 != nil {
			return errf("bad %s operands", mnemonic)
		}
		op := OpLui
		if mnemonic == "auipc" {
			op = OpAuipc
		}
		return one(Insn{Op: op, Rd: rd, Imm: imm << 12})
	}
	return errf("unknown mnemonic %q", mnemonic)
}

var branchOps = map[string]Op{
	"beq": OpBeq, "bne": OpBne, "blt": OpBlt, "bge": OpBge,
	"bltu": OpBltu, "bgeu": OpBgeu,
}
var loadOps = map[string]Op{
	"lb": OpLb, "lh": OpLh, "lw": OpLw, "lbu": OpLbu, "lhu": OpLhu,
}
var storeOps = map[string]Op{"sb": OpSb, "sh": OpSh, "sw": OpSw}
var immALUOps = map[string]Op{
	"addi": OpAddi, "slti": OpSlti, "sltiu": OpSltiu, "xori": OpXori,
	"ori": OpOri, "andi": OpAndi, "slli": OpSlli, "srli": OpSrli,
	"srai": OpSrai,
}
var regALUOps = map[string]Op{
	"add": OpAdd, "sub": OpSub, "sll": OpSll, "slt": OpSlt,
	"sltu": OpSltu, "xor": OpXor, "srl": OpSrl, "sra": OpSra,
	"or": OpOr, "and": OpAnd,
}

// parseMem parses an "off(reg)" memory operand; a bare "(reg)" means
// offset 0.
func parseMem(s string) (int32, Reg, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("riscv: bad memory operand %q", s)
	}
	off := int32(0)
	if offText := strings.TrimSpace(s[:open]); offText != "" {
		v, err := parseImm(offText)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	reg, err := ParseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return off, reg, nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("riscv: bad immediate %q", s)
	}
	if v < -(1<<31) || v >= 1<<32 {
		return 0, fmt.Errorf("riscv: immediate %q out of 32-bit range", s)
	}
	return int32(v), nil
}
