package riscv

import (
	"mcsafe/internal/rtl"
)

// Lift translates one decoded RV32I instruction into its canonical RTL
// effect sequence — the same single-source-of-semantics contract as the
// SPARC lifter: every opcode the decoder can produce has exactly one
// rule here (enforced by TestLiftRV32IExhaustive), and the ISA-neutral
// pipeline consumes only the result.
//
// RV32I has no condition codes, so conditional branches lift to a fused
// SetCC+Branch pair: the comparison and the transfer are one
// instruction, exactly as SPARC's subcc/bcc split them across two. It
// also has no register windows and no delay slots, which the front-end
// reports through its trait flags rather than through RTL.
func Lift(i Insn) []rtl.Effect {
	rd := rtl.Reg(i.Rd)
	rs1 := rtl.RegX{R: rtl.Reg(i.Rs1)}
	rs2 := rtl.RegX{R: rtl.Reg(i.Rs2)}
	imm := rtl.Const{V: int64(i.Imm)}
	switch i.Op {
	case OpLui:
		return []rtl.Effect{rtl.Assign{Dst: rd, Src: rtl.Const{V: int64(i.Imm)}}}

	case OpAuipc:
		// pc-relative address formation: the result depends on code
		// placement, which the checked subset does not model as data.
		return []rtl.Effect{rtl.Unsupported{Code: "policy",
			Msg: "pc-relative address formation not supported", Dst: rd}}

	case OpJal:
		if i.Rd == Zero {
			// j label: a plain goto.
			return []rtl.Effect{rtl.Branch{Cond: rtl.CondAlways, Disp: i.Disp}}
		}
		return []rtl.Effect{
			rtl.Assign{Dst: rd, Src: rtl.PC{}},
			rtl.Call{Disp: i.Disp},
		}

	case OpJalr:
		effs := []rtl.Effect{}
		if i.Rd != Zero {
			effs = append(effs, rtl.Assign{Dst: rd, Src: rtl.PC{}})
		}
		return append(effs, rtl.Jump{Target: rtl.Bin{Op: rtl.Add, A: rs1, B: imm}})

	case OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu:
		return []rtl.Effect{
			rtl.SetCC{Op: rtl.Sub, A: rs1, B: rs2},
			rtl.Branch{Cond: liftCond(i.Op), Disp: i.Disp},
		}

	case OpLb, OpLh, OpLw, OpLbu, OpLhu:
		signed := i.Op == OpLb || i.Op == OpLh
		return []rtl.Effect{rtl.Load{Dst: rd, Addr: liftAddr(i), Size: i.MemSize(), Signed: signed}}

	case OpSb, OpSh, OpSw:
		return []rtl.Effect{rtl.Store{Src: rs2, Addr: liftAddr(i), Size: i.MemSize()}}

	case OpSlti, OpSltiu, OpSlt, OpSltu:
		// set-less-than materializes a comparison as data; the linear
		// typestate domain has no shape for it.
		return []rtl.Effect{rtl.Unsupported{Code: "policy",
			Msg: "set-less-than not supported", Dst: rd}}

	case OpFence:
		// No data or control effect in the single-threaded model: the
		// canonical nop shape (zero-to-zero move).
		return []rtl.Effect{rtl.Assign{Dst: rtl.ZeroReg, Src: rtl.Const{V: 0}}}

	case OpEcall, OpEbreak:
		return []rtl.Effect{rtl.Unsupported{Code: "policy",
			Msg: "environment call not supported", Dst: rtl.ZeroReg}}
	}

	// addi rd, rs, 0 (the mv idiom) is a plain register copy, and lifts
	// to the canonical copy shape Or(zero, rs) — exactly as SPARC's
	// synthetic mov does. Lifting it as rs + 0 would degrade a copied
	// array base to an interior pointer in the typestate domain.
	if i.Op == OpAddi && i.Imm == 0 {
		return []rtl.Effect{rtl.Assign{Dst: rd,
			Src: rtl.Bin{Op: rtl.Or, A: rtl.RegX{R: rtl.ZeroReg}, B: rs1}}}
	}

	op, ok := liftALUOp(i.Op)
	if !ok {
		return nil
	}
	var b rtl.Expr = rs2
	if isImmALU(i.Op) {
		b = imm
	}
	return []rtl.Effect{rtl.Assign{Dst: rd, Src: rtl.Bin{Op: op, A: rs1, B: b}}}
}

// liftCond maps a fused compare-and-branch onto the condition the
// SetCC(Sub, rs1, rs2) pair makes true.
func liftCond(op Op) rtl.Cond {
	switch op {
	case OpBeq:
		return rtl.CondEq
	case OpBne:
		return rtl.CondNe
	case OpBlt:
		return rtl.CondLt
	case OpBge:
		return rtl.CondGe
	case OpBltu:
		return rtl.CondLtU
	case OpBgeu:
		return rtl.CondGeU
	}
	return rtl.CondNever
}

// liftAddr is the effective address of a load or store.
func liftAddr(i Insn) rtl.Expr {
	return rtl.Bin{Op: rtl.Add, A: rtl.RegX{R: rtl.Reg(i.Rs1)}, B: rtl.Const{V: int64(i.Imm)}}
}

// liftALUOp maps the arithmetic/logical/shift opcodes onto rtl.BinOp.
func liftALUOp(op Op) (rtl.BinOp, bool) {
	switch op {
	case OpAdd, OpAddi:
		return rtl.Add, true
	case OpSub:
		return rtl.Sub, true
	case OpAnd, OpAndi:
		return rtl.And, true
	case OpOr, OpOri:
		return rtl.Or, true
	case OpXor, OpXori:
		return rtl.Xor, true
	case OpSll, OpSlli:
		return rtl.ShL, true
	case OpSrl, OpSrli:
		return rtl.ShRL, true
	case OpSra, OpSrai:
		return rtl.ShRA, true
	}
	return 0, false
}
