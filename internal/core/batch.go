package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"mcsafe/internal/policy"
	"mcsafe/internal/sparc"
)

// CheckItem is one program+policy pair for batch checking.
type CheckItem struct {
	Prog *sparc.Program
	Spec *policy.Spec
	Opts Options
}

// CheckOutcome pairs a check's Result with its error; exactly one of the
// two is non-nil.
type CheckOutcome struct {
	Result *Result
	Err    error
}

// CheckAll checks many program+policy pairs concurrently with a bounded
// worker pool — the serving shape for many-user traffic, where whole
// checks rather than condition groups are the natural unit of
// parallelism. parallelism bounds the number of in-flight checks
// (0 means GOMAXPROCS). Outcomes are indexed like items.
//
// When the batch itself runs in parallel, items that leave
// Opts.Parallelism at the default 0 are checked with the sequential
// Phase 5 path: the batch is already saturating the cores, and one
// check per core beats every check contending for every core. An
// explicit per-item Parallelism is honored as given.
func CheckAll(items []CheckItem, parallelism int) []CheckOutcome {
	return CheckAllContext(context.Background(), items, parallelism)
}

// CheckAllContext is CheckAll with cancellation: each item's check runs
// under the context (CheckContext), and items not yet started when the
// context is cancelled complete immediately with a *PhaseError.
func CheckAllContext(ctx context.Context, items []CheckItem, parallelism int) []CheckOutcome {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(items) {
		parallelism = len(items)
	}
	out := make([]CheckOutcome, len(items))
	if len(items) == 0 {
		return out
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := items[i]
				opts := it.Opts
				if parallelism > 1 && opts.Parallelism == 0 {
					opts.Parallelism = 1
				}
				r, err := CheckContext(ctx, it.Prog, it.Spec, opts)
				out[i] = CheckOutcome{Result: r, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
