package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"mcsafe/internal/isa"
	"mcsafe/internal/policy"
)

// CheckItem is one program+policy pair for batch checking.
type CheckItem struct {
	Prog *isa.Program
	Spec *policy.Spec
	Opts Options
}

// CheckOutcome pairs a check's Result with its error; exactly one of the
// two is non-nil.
type CheckOutcome struct {
	Result *Result
	Err    error
}

// CheckAll checks many program+policy pairs concurrently with a bounded
// worker pool — the serving shape for many-user traffic, where whole
// checks rather than condition groups are the natural unit of
// parallelism. parallelism bounds the number of in-flight checks
// (0 means GOMAXPROCS). Outcomes are indexed like items.
//
// When the batch itself runs in parallel, items that leave
// Opts.Parallelism at the default 0 are checked with the sequential
// Phase 5 path: the batch is already saturating the cores, and one
// check per core beats every check contending for every core. An
// explicit per-item Parallelism is honored as given.
func CheckAll(items []CheckItem, parallelism int) []CheckOutcome {
	return CheckAllContext(context.Background(), items, parallelism)
}

// CheckAllContext is CheckAll with cancellation: each item's check runs
// under the context (CheckContext), and items not yet started when the
// context is cancelled complete immediately with a *PhaseError.
func CheckAllContext(ctx context.Context, items []CheckItem, parallelism int) []CheckOutcome {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(items) {
		parallelism = len(items)
	}
	out := make([]CheckOutcome, len(items))
	if len(items) == 0 {
		return out
	}

	// checkOne runs one item under its own panic boundary: CheckContext
	// already contains faults inside the phases, but a panic on the
	// driver's own seams (option plumbing, outcome assembly) must still
	// charge only this item, never kill the batch worker — a worker
	// goroutine dying would silently drop every item it had yet to pull.
	checkOne := func(ctx context.Context, it CheckItem, opts Options) (oc CheckOutcome) {
		defer func() {
			if r := recover(); r != nil {
				oc = CheckOutcome{Err: &PhaseError{Phase: "batch", Err: &InternalError{
					Phase: "batch", ProgramHash: ProgramHash(it.Prog), Cond: -1,
					Panic: fmt.Sprint(r), Stack: debug.Stack(),
				}}}
			}
		}()
		r, err := CheckContext(ctx, it.Prog, it.Spec, opts)
		return CheckOutcome{Result: r, Err: err}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := items[i]
				opts := it.Opts
				if parallelism > 1 && opts.Parallelism == 0 {
					opts.Parallelism = 1
				}
				out[i] = checkOne(ctx, it, opts)
			}
		}()
	}
	wg.Wait()
	return out
}
