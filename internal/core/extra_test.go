package core

import (
	"strings"
	"testing"
)

// TestStackUninitReadRejected: reading a stack slot before initializing
// it is a stack-manipulation/uninitialized-use violation.
func TestStackUninitReadRejected(t *testing.T) {
	asm := `
f:
	save %sp,-112,%sp
	ld [%fp-8],%l0     ! read before any store
	ret
	restore
`
	spec := `
frame f size 112
  slot fp-8 int name tmp
end
`
	res := check(t, asm, spec, "f")
	if res.Safe {
		t.Fatal("uninitialized stack read must be rejected")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Desc, "uninitialized") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an uninitialized-read violation: %+v", res.Violations)
	}
}

// TestStackWriteThenReadAccepted: the same slot is fine once written.
func TestStackWriteThenReadAccepted(t *testing.T) {
	asm := `
f:
	save %sp,-112,%sp
	st %g0,[%fp-8]
	ld [%fp-8],%l0
	ret
	restore
`
	spec := `
frame f size 112
  slot fp-8 int name tmp
end
`
	res := check(t, asm, spec, "f")
	if !res.Safe {
		t.Fatalf("write-then-read should verify: %+v", res.Violations)
	}
}

// TestUndersizedFrameRejected: the save must cover the annotated frame.
func TestUndersizedFrameRejected(t *testing.T) {
	asm := `
f:
	save %sp,-96,%sp   ! annotation requires 112
	st %g0,[%fp-8]
	ret
	restore
`
	spec := `
frame f size 112
  slot fp-8 int name tmp
end
`
	res := check(t, asm, spec, "f")
	if res.Safe {
		t.Fatal("undersized frame must be rejected")
	}
}

// TestGlobalCounterExtension: the classic performance-instrumentation
// extension — load a host counter via its loader address, increment,
// store back — verifies under a policy granting rw on the counter.
func TestGlobalCounterExtension(t *testing.T) {
	asm := `
bump:
	set counter,%o1
	ld [%o1],%o2
	add %o2,1,%o2
	st %o2,[%o1]
	retl
	nop
`
	spec := `
region H
global counter int state init region H addr 0x20400
allow H int rwo
allow H ptr<int> rfo
`
	res := check(t, asm, spec, "bump")
	if !res.Safe {
		t.Fatalf("counter bump should verify: %+v", res.Violations)
	}

	// The same code against a read-only counter is rejected.
	roSpec := strings.Replace(spec, "allow H int rwo", "allow H int ro", 1)
	res2 := check(t, asm, roSpec, "bump")
	if res2.Safe {
		t.Fatal("store to a read-only global must be rejected")
	}
}

// TestSandboxingPolicy: the paper's Section 2 sandboxing comparison — a
// policy granting access only to the untrusted region makes any host
// dereference fail, purely statically.
func TestSandboxingPolicy(t *testing.T) {
	asm := `
f:
	ld [%o0],%o1       ! dereference the host pointer
	retl
	nop
`
	// The host pointer arrives, but the policy grants it no f.
	spec := `
struct secret { v int }
region H
loc sec secret region H fields(v=init)
val sp ptr<secret> state {sec} region H
invoke %o0 = sp
allow H secret.v ro
`
	res := check(t, asm, spec, "f")
	if res.Safe {
		t.Fatal("following a non-followable pointer must be rejected")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Desc, "followable") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a followable violation: %+v", res.Violations)
	}
}

// TestArrayWriteUnderRWPolicy: writes verify with w, fail without.
func TestArrayWritePolicy(t *testing.T) {
	asm := `
f:
	st %o1,[%o0+0]
	retl
	nop
`
	rw := `
region V
loc e int state init region V summary
val arr int[n] state {e} region V
sym v
constraint n >= 1
invoke %o0 = arr
invoke %o1 = v
allow V int rwo
allow V int[n] rfo
`
	res := check(t, asm, rw, "f")
	if !res.Safe {
		t.Fatalf("write under rw policy should verify: %+v", res.Violations)
	}
	ro := strings.Replace(rw, "allow V int rwo", "allow V int ro", 1)
	res2 := check(t, asm, ro, "f")
	if res2.Safe {
		t.Fatal("write under ro policy must be rejected")
	}
}

// TestViolationReportQuality: violations carry instruction indexes and
// source lines usable for diagnostics.
func TestViolationReportQuality(t *testing.T) {
	asm := `
f:
	ld [%o0+4],%o1
	retl
	nop
`
	spec := `
region V
loc e int state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
allow V int ro
allow V int[n] rfo
`
	res := check(t, asm, spec, "f")
	if res.Safe {
		t.Fatal("element 1 with n >= 1 must be rejected")
	}
	v := res.Violations[0]
	if v.Index != 0 || v.Line != 3 {
		t.Errorf("violation location = insn %d line %d, want insn 0 line 3", v.Index, v.Line)
	}
	if !strings.Contains(v.String(), "line 3") {
		t.Errorf("violation string = %q", v.String())
	}
}
