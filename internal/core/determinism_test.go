package core

import (
	"strings"
	"testing"
)

// TestExplainDeterministic: repeated checks of the same program must
// produce byte-identical violation lists and Explain renderings. The
// analysis feeds maps into formulas in several places; any unsorted
// iteration shows up here as run-to-run drift in the rendered proofs.
func TestExplainDeterministic(t *testing.T) {
	asm := `
	mov %o0,%o2
	clr %g3
loop:
	sll %g3,2,%g2
	ld [%o2+%g2],%g1
	inc %g3
	cmp %g3,%o1
	ble loop          ! <= instead of <: reads element n
	nop
	retl
	nop
`
	render := func() string {
		res := check(t, asm, fig1Spec, "")
		if res.Safe {
			t.Fatal("off-by-one loop must be rejected")
		}
		var b strings.Builder
		for _, v := range res.Violations {
			b.WriteString(v.String())
			b.WriteString("\n")
			b.WriteString(res.Explain(v))
			b.WriteString("\n")
		}
		return b.String()
	}

	first := render()
	for run := 1; run < 4; run++ {
		if got := render(); got != first {
			t.Fatalf("run %d diverged from run 0:\n--- run 0 ---\n%s\n--- run %d ---\n%s",
				run, first, run, got)
		}
	}
}
