package core

import (
	"strings"
	"testing"

	"mcsafe/internal/isa"
	"mcsafe/internal/policy"
	"mcsafe/internal/sparc"
)

const fig1Source = `
1:  mov %o0,%o2
2:  clr %o0
3:  cmp %o0,%o1
4:  bge 12
5:  clr %g3
6:  sll %g3,2,%g2
7:  ld [%o2+%g2],%g2
8:  inc %g3
9:  cmp %g3,%o1
10: bl 6
11: add %o0,%g2,%o0
12: retl
13: nop
`

const fig1Spec = `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`

func check(t *testing.T, asm, spec, entry string) *Result {
	t.Helper()
	s, err := policy.Parse(spec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sparc.Arch.Assemble(asm, isa.AsmOptions{DataSyms: s.DataSyms(), Entry: entry})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(prog, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFig1EndToEnd: the checker proves the array-summation example of
// Figure 1 safe, synthesizing the Section 5.2.2 loop invariant on the
// way (%g3 < n ∧ %o1 = n).
func TestFig1EndToEnd(t *testing.T) {
	res := check(t, fig1Source, fig1Spec, "")
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if !res.Safe {
		t.Fatal("Figure 1 example should be safe")
	}
	// Figure 9, Sum column: 13 instructions, 2 branches, 1 loop (0
	// inner), 0 calls, 4 global safety conditions.
	st := res.Stats
	if st.Instructions != 13 || st.Branches != 2 || st.Loops != 1 ||
		st.InnerLoops != 0 || st.Calls != 0 || st.GlobalConds != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.InductionRuns == 0 {
		t.Error("the loop should have required induction iteration")
	}
}

// The bge guard at line 4 is what makes the loop body safe when n could
// be... actually n >= 1 always; weaken the constraint and the example
// must FAIL (upper bound unprovable without n >= 1? no — the loop guard
// %g3 < %o1 = n protects it). Drop the n = %o1 binding instead: then the
// bound n is unrelated to the loop limit and the check must fail.
func TestFig1UnboundSizeRejected(t *testing.T) {
	badSpec := `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
sym m
constraint n >= 1
invoke %o0 = arr
invoke %o1 = m
allow V int ro
allow V int[n] rfo
`
	res := check(t, fig1Source, badSpec, "")
	if res.Safe {
		t.Fatal("loop bounded by an unrelated size must be rejected")
	}
	found := false
	for _, v := range res.Violations {
		if v.Phase == "global" && strings.Contains(v.Desc, "upper bound") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an upper-bound violation, got %+v", res.Violations)
	}
}

// An out-of-bounds store version: writes one element past the end.
func TestOffByOneRejected(t *testing.T) {
	asm := `
	mov %o0,%o2
	clr %g3
loop:
	sll %g3,2,%g2
	ld [%o2+%g2],%g1
	inc %g3
	cmp %g3,%o1
	ble loop          ! <= instead of <: reads element n
	nop
	retl
	nop
`
	res := check(t, asm, fig1Spec, "")
	if res.Safe {
		t.Fatal("off-by-one loop must be rejected")
	}
}

func TestNullDerefCaughtWithoutTest(t *testing.T) {
	// Dereferencing a maybe-null host pointer without a null test is
	// the PagingPolicy bug of Section 6.
	asm := `
	ld [%o0+0],%o1
	retl
	nop
`
	spec := `
struct frame { pfn int ; next ptr<frame> }
region H
loc fr frame region H summary fields(pfn=init, next={fr,null})
val head ptr<frame> state {fr,null} region H
invoke %o0 = head
allow H frame.pfn ro
allow H frame.next rfo
allow H ptr<frame> rfo
`
	res := check(t, asm, spec, "")
	if res.Safe {
		t.Fatal("null dereference must be rejected")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Desc, "null") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected null violation: %+v", res.Violations)
	}
}

func TestNullDerefGuardedByTestAccepted(t *testing.T) {
	// The same dereference guarded by a null test is safe: the branch
	// condition flows into the verification condition.
	asm := `
	cmp %o0,%g0
	be done
	nop
	ld [%o0+0],%o1
done:
	retl
	nop
`
	spec := `
struct frame { pfn int ; next ptr<frame> }
region H
loc fr frame region H summary fields(pfn=init, next={fr,null})
val head ptr<frame> state {fr,null} region H
invoke %o0 = head
allow H frame.pfn ro
allow H frame.next rfo
allow H ptr<frame> rfo
`
	res := check(t, asm, spec, "")
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if !res.Safe {
		t.Fatal("null-guarded dereference should be safe")
	}
}

func TestConstantIndexInBounds(t *testing.T) {
	// A straight-line read of element 0 is provable from n >= 1 alone
	// (no loop, no induction).
	asm := `
	ld [%o0+0],%o1
	retl
	nop
`
	res := check(t, asm, fig1Spec, "")
	if !res.Safe {
		t.Fatalf("element 0 of an array with n >= 1 is safe: %+v", res.Violations)
	}
	if res.Stats.InductionRuns != 0 {
		t.Error("no loops: induction should not run")
	}
}

func TestConstantIndexOutOfBounds(t *testing.T) {
	// Element 1 needs n >= 2, which the spec does not give.
	asm := `
	ld [%o0+4],%o1
	retl
	nop
`
	res := check(t, asm, fig1Spec, "")
	if res.Safe {
		t.Fatal("element 1 with only n >= 1 must be rejected")
	}
}

func TestMisalignedConstantIndexRejected(t *testing.T) {
	asm := `
	ld [%o0+2],%o1
	retl
	nop
`
	res := check(t, asm, fig1Spec, "")
	if res.Safe {
		t.Fatal("misaligned array access must be rejected")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Desc, "alignment") || strings.Contains(v.Desc, "element") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected alignment violation: %+v", res.Violations)
	}
}

func TestDownCountingLoop(t *testing.T) {
	// i = n-1 .. 0: requires the invariant %g3 < n from entry and the
	// bl guard for the lower bound... here the guard is bge (exit when
	// %g3 < 0).
	asm := `
	mov %o0,%o2
	sub %o1,1,%g3
loop:
	sll %g3,2,%g2
	ld [%o2+%g2],%g1
	cmp %g3,%g0
	bg loop
	sub %g3,1,%g3
	retl
	nop
`
	res := check(t, asm, fig1Spec, "")
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if !res.Safe {
		t.Fatal("down-counting loop should be safe")
	}
}

func TestTimesPopulated(t *testing.T) {
	res := check(t, fig1Source, fig1Spec, "")
	if res.Times.Total <= 0 || res.Times.Typestate <= 0 {
		t.Errorf("times = %+v", res.Times)
	}
	if res.Stats.ProverQueries == 0 {
		t.Error("prover should have been consulted")
	}
}
