// Package core is the five-phase safety-checking driver (Section 3):
// preparation, typestate propagation, annotation, local verification, and
// global verification. It reports either that the untrusted machine code
// meets the safety conditions, or the places where they are violated,
// together with the per-phase timing and program statistics the paper's
// Figure 9 tabulates.
package core

import (
	"fmt"
	"sort"
	"time"

	"mcsafe/internal/annotate"
	"mcsafe/internal/cfg"
	"mcsafe/internal/induction"
	"mcsafe/internal/policy"
	"mcsafe/internal/propagate"
	"mcsafe/internal/solver"
	"mcsafe/internal/sparc"
	"mcsafe/internal/vcgen"
)

// PhaseTimes mirrors the timing rows of Figure 9.
type PhaseTimes struct {
	// Typestate is Phase 2 (typestate propagation).
	Typestate time.Duration
	// AnnotLocal is Phases 3 and 4 (annotation + local verification),
	// reported together as in Figure 9.
	AnnotLocal time.Duration
	// Global is Phase 5 (global verification).
	Global time.Duration
	// Total is the whole analysis, including Phase 1 (preparation).
	Total time.Duration
}

// Stats mirrors the characteristics rows of Figure 9.
type Stats struct {
	Instructions int
	Branches     int
	Loops        int
	InnerLoops   int
	Calls        int
	TrustedCalls int
	GlobalConds  int
	// Extra effort counters (not in the paper's table).
	PropagationSteps int
	ProverQueries    int
	InductionRuns    int
}

// Violation is one place where a safety condition is violated (or cannot
// be proved to hold, which the checker treats identically).
type Violation struct {
	// Node is the CFG node; Index the instruction index; Line the
	// source line when the program carries a source map.
	Node  int
	Index int
	Line  int
	// Phase is "local" or "global".
	Phase string
	Desc  string
}

func (v Violation) String() string {
	where := fmt.Sprintf("instruction %d", v.Index)
	if v.Line > 0 {
		where = fmt.Sprintf("line %d", v.Line)
	}
	return fmt.Sprintf("%s: %s safety violation: %s", where, v.Phase, v.Desc)
}

// Options configures a check.
type Options struct {
	// Induction configures the invariant synthesizer (ablations).
	Induction induction.Options
	// Parallelism is the worker count for Phase 5 (global
	// verification): 0 means GOMAXPROCS, 1 the exact sequential legacy
	// path. Verdicts, violation lists, and their ordering are identical
	// at every setting; only wall-clock time changes.
	Parallelism int
}

// Result is the outcome of checking one program against one policy.
type Result struct {
	// Safe is true when every safety condition was established.
	Safe       bool
	Violations []Violation
	Stats      Stats
	Times      PhaseTimes

	// Conds carries the per-condition verdicts of global verification.
	Conds []vcgen.CondResult
	// Prop and Ann expose the intermediate results for inspection
	// (dump tools, tests).
	Prop *propagate.Result
	Ann  *annotate.Annotations
	Ini  *policy.Initial
	G    *cfg.Graph
}

// Check runs the five-phase safety-checking analysis on a program
// against a host specification.
func Check(prog *sparc.Program, spec *policy.Spec, opts Options) (*Result, error) {
	if prog == nil || spec == nil {
		return nil, fmt.Errorf("core: nil program or spec")
	}
	t0 := time.Now()

	// Phase 1: preparation.
	ini, err := policy.Prepare(spec)
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build(prog, cfg.Options{TrustedFuncs: spec.TrustedNames()})
	if err != nil {
		return nil, err
	}

	res := &Result{Ini: ini, G: g}

	// Phase 2: typestate propagation.
	t1 := time.Now()
	prop := propagate.Run(g, ini)
	res.Prop = prop
	res.Times.Typestate = time.Since(t1)

	// Phases 3 and 4: annotation + local verification.
	t2 := time.Now()
	ann := annotate.Run(prop)
	res.Ann = ann
	res.Times.AnnotLocal = time.Since(t2)

	// Phase 5: global verification. The sequential legacy path keeps
	// the prover's private single-owner cache; any parallel setting
	// gets a striped cache the pool's worker provers share.
	t3 := time.Now()
	var prover *solver.Prover
	if opts.Parallelism == 1 {
		prover = solver.New()
	} else {
		prover = solver.NewShared(solver.NewShardedCache())
	}
	eng := vcgen.New(prop, prover, vcgen.Options{
		Induction:   opts.Induction,
		Parallelism: opts.Parallelism,
	})
	res.Conds = eng.Prove(ann.Conds)
	res.Times.Global = time.Since(t3)
	res.Times.Total = time.Since(t0)

	// Collect violations.
	for _, v := range ann.LocalViolations {
		res.Violations = append(res.Violations, Violation{
			Node: v.Node, Index: g.Nodes[v.Node].Index,
			Line: lineOf(prog, g, v.Node), Phase: "local", Desc: v.Desc,
		})
	}
	for _, cr := range res.Conds {
		if cr.Proved {
			continue
		}
		res.Violations = append(res.Violations, Violation{
			Node: cr.Cond.Node, Index: g.Nodes[cr.Cond.Node].Index,
			Line: lineOf(prog, g, cr.Cond.Node), Phase: "global",
			Desc: fmt.Sprintf("%s: %s", cr.Cond.Desc, cr.Detail),
		})
	}
	sort.Slice(res.Violations, func(i, j int) bool {
		if res.Violations[i].Index != res.Violations[j].Index {
			return res.Violations[i].Index < res.Violations[j].Index
		}
		return res.Violations[i].Desc < res.Violations[j].Desc
	})
	res.Safe = len(res.Violations) == 0

	// Statistics (Figure 9 characteristics).
	res.Stats.Instructions = len(prog.Insns)
	res.Stats.Branches = g.BranchCount()
	res.Stats.Loops, res.Stats.InnerLoops = g.LoopCounts()
	res.Stats.Calls, res.Stats.TrustedCalls = g.CallCounts()
	res.Stats.GlobalConds = len(ann.Conds)
	res.Stats.PropagationSteps = prop.Steps
	res.Stats.ProverQueries = prover.Stats.ValidQueries
	res.Stats.InductionRuns = eng.Stats.InductionRuns
	return res, nil
}

func lineOf(prog *sparc.Program, g *cfg.Graph, node int) int {
	idx := g.Nodes[node].Index
	if idx >= 0 && idx < len(prog.SrcLines) {
		return prog.SrcLines[idx]
	}
	return 0
}
