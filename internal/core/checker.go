// Package core is the five-phase safety-checking driver (Section 3):
// preparation, typestate propagation, annotation, local verification, and
// global verification. It reports either that the untrusted machine code
// meets the safety conditions, or the places where they are violated,
// together with the per-phase timing and program statistics the paper's
// Figure 9 tabulates.
package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"mcsafe/internal/annotate"
	"mcsafe/internal/cfg"
	"mcsafe/internal/expr"
	"mcsafe/internal/induction"
	"mcsafe/internal/isa"
	"mcsafe/internal/obs"
	"mcsafe/internal/policy"
	"mcsafe/internal/propagate"
	"mcsafe/internal/solver"
	"mcsafe/internal/vcgen"
)

// PhaseTimes mirrors the timing rows of Figure 9.
type PhaseTimes struct {
	// Typestate is Phase 2 (typestate propagation).
	Typestate time.Duration `json:"typestate_ns"`
	// AnnotLocal is Phases 3 and 4 (annotation + local verification),
	// reported together as in Figure 9.
	AnnotLocal time.Duration `json:"annot_local_ns"`
	// Global is Phase 5 (global verification).
	Global time.Duration `json:"global_ns"`
	// Total is the whole analysis, including Phase 1 (preparation).
	Total time.Duration `json:"total_ns"`
}

// Stats mirrors the characteristics rows of Figure 9.
type Stats struct {
	Instructions int `json:"instructions"`
	Branches     int `json:"branches"`
	Loops        int `json:"loops"`
	InnerLoops   int `json:"inner_loops"`
	Calls        int `json:"calls"`
	TrustedCalls int `json:"trusted_calls"`
	GlobalConds  int `json:"global_conds"`
	// Extra effort counters (not in the paper's table).
	PropagationSteps int `json:"propagation_steps"`
	ProverQueries    int `json:"prover_queries"`
	InductionRuns    int `json:"induction_runs"`
}

// Violation is one place where a safety condition is violated (or cannot
// be proved to hold, which the checker treats identically).
type Violation struct {
	// Node is the CFG node; Index the instruction index; Line the
	// source line when the program carries a source map.
	Node  int `json:"node"`
	Index int `json:"index"`
	Line  int `json:"line,omitempty"`
	// Phase is "local" or "global".
	Phase string `json:"phase"`
	// Code is the stable machine-readable classification (one of the
	// annotate.Code* constants: oob, align, uninit, nullptr, stack,
	// policy, precond). Tools should match on Code, never on Desc.
	Code string `json:"code"`
	Desc string `json:"desc"`
	// Cond indexes the failed condition in Result.Conds for global
	// violations; -1 for local ones.
	Cond int `json:"cond"`
	// Span is the failed condition's span in the observer's trace
	// (0 when the check ran unobserved or the violation is local).
	Span obs.SpanID `json:"span,omitempty"`
}

func (v Violation) String() string {
	where := fmt.Sprintf("instruction %d", v.Index)
	if v.Line > 0 {
		where = fmt.Sprintf("line %d", v.Line)
	}
	return fmt.Sprintf("%s: %s safety violation [%s]: %s", where, v.Phase, v.Code, v.Desc)
}

// Options configures a check.
type Options struct {
	// Induction configures the invariant synthesizer (ablations).
	Induction induction.Options
	// Parallelism is the worker count for Phase 5 (global
	// verification): 0 means GOMAXPROCS, 1 the exact sequential legacy
	// path. Verdicts, violation lists, and their ordering are identical
	// at every setting; only wall-clock time changes.
	Parallelism int
	// Budget is the check's resource envelope (deadline, solver step
	// budget, per-condition timeout). The zero Budget disables
	// governance; see the Budget type for the fail-closed semantics.
	Budget Budget
	// Obs, when non-nil, receives the check's spans and counters. A nil
	// observer costs one pointer compare per instrumentation point.
	Obs *obs.Trace
}

// PhaseError wraps a check-interrupting error — a context cancellation
// or a contained internal fault (*InternalError) — with the phase it
// interrupted.
type PhaseError struct {
	Phase string
	Err   error
}

func (e *PhaseError) Error() string {
	return fmt.Sprintf("mcsafe: check interrupted during %s phase: %v", e.Phase, e.Err)
}

func (e *PhaseError) Unwrap() error { return e.Err }

// Result is the outcome of checking one program against one policy.
type Result struct {
	// Safe is true when every safety condition was established.
	Safe       bool        `json:"safe"`
	Violations []Violation `json:"violations,omitempty"`
	Stats      Stats       `json:"stats"`
	Times      PhaseTimes  `json:"times"`

	// Conds carries the per-condition verdicts of global verification.
	Conds []vcgen.CondResult `json:"-"`
	// Trace is the observer the check recorded into (nil when
	// unobserved).
	Trace *obs.Trace `json:"-"`
	// Prop and Ann expose the intermediate results for inspection
	// (dump tools, tests).
	Prop *propagate.Result     `json:"-"`
	Ann  *annotate.Annotations `json:"-"`
	Ini  *policy.Initial       `json:"-"`
	G    *cfg.Graph            `json:"-"`
}

// Check runs the five-phase safety-checking analysis on a program
// against a host specification.
func Check(prog *isa.Program, spec *policy.Spec, opts Options) (*Result, error) {
	return CheckContext(context.Background(), prog, spec, opts)
}

// CheckContext is Check with cancellation: the context is consulted
// between phases and, inside Phase 5, between condition chunks. On
// cancellation it returns a *PhaseError naming the phase that was
// interrupted, wrapping ctx.Err().
func CheckContext(ctx context.Context, prog *isa.Program, spec *policy.Spec, opts Options) (res *Result, err error) {
	if prog == nil || spec == nil {
		return nil, fmt.Errorf("core: nil program or spec")
	}
	if pa, sa := prog.Arch.Name(), spec.Arch.Name(); pa != sa {
		return nil, fmt.Errorf("core: program architecture %q does not match spec architecture %q", pa, sa)
	}
	t0 := time.Now()
	w := opts.Obs.Worker(0)
	w.Begin("check", "program")
	// Panic containment: a fault anywhere in the five phases rejects
	// this one program with a structured error instead of killing the
	// process (and, through CheckAll, the rest of the batch). phase
	// tracks the driver's position for the report.
	phase := "prepare"
	defer func() {
		if r := recover(); r != nil {
			w.EndAll("aborted", phase)
			w.Flush()
			res, err = nil, &PhaseError{Phase: phase, Err: &InternalError{
				Phase: phase, ProgramHash: ProgramHash(prog), Cond: -1,
				Panic: fmt.Sprint(r), Stack: debug.Stack(),
			}}
		}
	}()
	// abort ends the open spans and flushes before an early error
	// return, keeping the event stream balanced.
	abort := func(phase string, err error) error {
		w.End("aborted", phase)
		w.Flush()
		if ctxErr := ctx.Err(); ctxErr != nil && err == ctxErr {
			return &PhaseError{Phase: phase, Err: err}
		}
		if _, ok := err.(*InternalError); ok {
			return &PhaseError{Phase: phase, Err: err}
		}
		return err
	}

	// Phase 1: preparation.
	w.Begin("phase", "prepare")
	ini, err := policy.Prepare(spec)
	if err != nil {
		w.End()
		return nil, abort("prepare", err)
	}
	g, err := cfg.Build(prog, cfg.Options{TrustedFuncs: spec.TrustedNames()})
	if err != nil {
		w.End()
		return nil, abort("prepare", err)
	}
	w.End()

	res = &Result{Ini: ini, G: g, Trace: opts.Obs}

	// Phase 2: typestate propagation.
	phase = "typestate"
	if err := ctx.Err(); err != nil {
		return nil, abort("typestate", err)
	}
	t1 := time.Now()
	w.Begin("phase", "typestate")
	prop := propagate.Run(g, ini)
	w.End("steps", fmt.Sprint(prop.Steps))
	res.Prop = prop
	res.Times.Typestate = time.Since(t1)

	// Phases 3 and 4: annotation + local verification.
	phase = "annotate"
	if err := ctx.Err(); err != nil {
		return nil, abort("annotate", err)
	}
	t2 := time.Now()
	w.Begin("phase", "annotate")
	ann := annotate.Run(prop)
	w.End("conds", fmt.Sprint(len(ann.Conds)))
	res.Ann = ann
	res.Times.AnnotLocal = time.Since(t2)

	// Phase 5: global verification. The sequential legacy path keeps
	// the prover's private single-owner cache; any parallel setting
	// gets a striped cache the pool's worker provers share.
	phase = "global"
	if err := ctx.Err(); err != nil {
		return nil, abort("global", err)
	}
	t3 := time.Now()
	w.Begin("phase", "global")
	var prover *solver.Prover
	if opts.Parallelism == 1 {
		prover = solver.New()
	} else {
		prover = solver.NewShared(solver.NewShardedCache())
	}
	prover.Obs = w
	// One intern table per check: every diagnostic stringification
	// (observer span attributes, Explain attempts) of a formula is
	// rendered once per unique term. The pool hands it to each worker.
	intern := expr.NewInterner()
	prover.Intern = intern
	// The resource governor: built only when a budget is set or the
	// context is cancellable, so an ungoverned check keeps a nil Ctl
	// and the solver's hot loops their zero-cost fast path.
	var ctl *solver.Ctl
	if opts.Budget.Enabled() || ctx.Done() != nil {
		var deadline time.Time
		if opts.Budget.Deadline > 0 {
			deadline = t0.Add(opts.Budget.Deadline)
		}
		ctl = solver.NewCtl(ctx, deadline, opts.Budget.SolverSteps)
	}
	prover.Ctl = ctl
	eng := vcgen.New(prop, prover, vcgen.Options{
		Induction:   opts.Induction,
		Parallelism: opts.Parallelism,
		CondTimeout: opts.Budget.CondTimeout,
	})
	eng.Obs = w
	conds, err := eng.ProveContext(ctx, ann.Conds)
	if err != nil {
		if pe, ok := err.(*vcgen.PanicError); ok {
			err = &InternalError{
				Phase: "global", ProgramHash: ProgramHash(prog),
				Cond: pe.Cond, Panic: fmt.Sprint(pe.Value), Stack: pe.Stack,
			}
		}
		w.End()
		return nil, abort("global", err)
	}
	res.Conds = conds
	w.End("conds", fmt.Sprint(len(conds)))
	res.Times.Global = time.Since(t3)
	res.Times.Total = time.Since(t0)

	// Collect violations.
	for _, v := range ann.LocalViolations {
		res.Violations = append(res.Violations, Violation{
			Node: v.Node, Index: g.Nodes[v.Node].Index,
			Line: lineOf(prog, g, v.Node), Phase: "local",
			Code: v.Code, Desc: v.Desc, Cond: -1,
		})
	}
	for i, cr := range res.Conds {
		if cr.Proved {
			continue
		}
		code := cr.Cond.Code
		if cr.Resource {
			// Unproven for lack of budget, not on the merits: charged
			// the stable "resource" code so callers can tell the two
			// rejections apart.
			code = annotate.CodeResource
		}
		res.Violations = append(res.Violations, Violation{
			Node: cr.Cond.Node, Index: g.Nodes[cr.Cond.Node].Index,
			Line: lineOf(prog, g, cr.Cond.Node), Phase: "global",
			Code: code,
			Desc: fmt.Sprintf("%s: %s", cr.Cond.Desc, cr.Detail),
			Cond: i, Span: cr.Span,
		})
	}
	sort.Slice(res.Violations, func(i, j int) bool {
		if res.Violations[i].Index != res.Violations[j].Index {
			return res.Violations[i].Index < res.Violations[j].Index
		}
		return res.Violations[i].Desc < res.Violations[j].Desc
	})
	res.Safe = len(res.Violations) == 0

	// Statistics (Figure 9 characteristics).
	res.Stats.Instructions = len(prog.Insns)
	res.Stats.Branches = g.BranchCount()
	res.Stats.Loops, res.Stats.InnerLoops = g.LoopCounts()
	res.Stats.Calls, res.Stats.TrustedCalls = g.CallCounts()
	res.Stats.GlobalConds = len(ann.Conds)
	res.Stats.PropagationSteps = prop.Steps
	res.Stats.ProverQueries = prover.Stats.ValidQueries
	res.Stats.InductionRuns = eng.Stats.InductionRuns

	// Counters: emitted once from the merged stats, so the totals are
	// race-free at any parallelism and exactly equal the Stats fields.
	typestateFacts := 0
	for _, s := range prop.In {
		typestateFacts += s.Len()
	}
	rtlEffects := 0
	for _, nd := range g.Nodes {
		if !nd.Replica {
			rtlEffects += len(nd.RTL)
		}
	}
	w.Add("solver_valid_queries", int64(prover.Stats.ValidQueries))
	w.Add("solver_cache_hits", int64(prover.Stats.CacheHits))
	w.Add("solver_eliminations", int64(prover.Stats.Eliminations))
	w.Add("solver_dnf_blowups", int64(prover.Stats.DNFBlowups))
	w.Add("fm_prefix_reuses", int64(prover.Stats.FMPrefixReuses))
	w.Add("early_unsat_prunes", int64(prover.Stats.EarlyUnsatPrunes))
	w.Add("interned_terms", intern.Terms())
	w.Add("intern_hits", intern.Hits())
	w.Add("vcgen_conditions", int64(eng.Stats.Conditions))
	w.Add("vcgen_proved", int64(eng.Stats.Proved))
	w.Add("vcgen_query_cache_hits", int64(eng.Stats.CacheHits))
	w.Add("induction_runs", int64(eng.Stats.InductionRuns))
	w.Add("induction_iterations", int64(eng.Stats.InductionIters))
	w.Add("induction_candidates", int64(eng.Stats.InductionCands))
	w.Add("propagate_steps", int64(prop.Steps))
	w.Add("typestate_facts", int64(typestateFacts))
	w.Add("rtl_effects", int64(rtlEffects))
	w.Add("annotate_local_checks", int64(ann.LocalChecks))
	w.Add("annotate_global_conds", int64(len(ann.Conds)))
	// Resource-governance counters: all zero (and therefore absent, by
	// Worker.Add's contract) on an ungoverned or unexhausted check, so
	// existing golden traces are unchanged.
	w.Add("budget_exhausted", ctl.BudgetHits())
	w.Add("deadline_hits", ctl.DeadlineHits())
	w.Add("cond_timeouts", ctl.CondTimeouts())
	resourceConds := 0
	for _, cr := range res.Conds {
		if cr.Resource {
			resourceConds++
		}
	}
	w.Add("resource_conds", int64(resourceConds))
	w.End("safe", fmt.Sprint(res.Safe))
	w.Flush()
	return res, nil
}

// Explain renders the verdict path of one violation: where it is, how it
// was classified, and — for global violations — every proof strategy the
// verifier tried, with the formula posed and the weakest precondition it
// reduced to. The span timing is included when the check was observed.
func (r *Result) Explain(v Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", v.String())
	if v.Cond < 0 || v.Cond >= len(r.Conds) {
		b.WriteString("  decided locally from typestate information; no prover query involved\n")
		return b.String()
	}
	cr := r.Conds[v.Cond]
	fmt.Fprintf(&b, "  condition #%d (%s) at node %d\n", cr.Cond.ID, cr.Cond.Desc, cr.Cond.Node)
	fmt.Fprintf(&b, "  predicate: %s\n", cr.Cond.F)
	if fs := cr.Cond.Facts.String(); fs != "true" {
		fmt.Fprintf(&b, "  typestate facts: %s\n", fs)
	}
	if cr.Resource {
		fmt.Fprintf(&b, "  resource-limited: %s (re-run with a larger budget to decide on the merits)\n", cr.Detail)
	}
	for i, a := range cr.Attempts {
		verdict := "FAILED"
		if a.Proved {
			verdict = "proved"
		}
		fmt.Fprintf(&b, "  attempt %d (%s): %s\n", i+1, a.Kind, verdict)
		if a.Formula != "" {
			fmt.Fprintf(&b, "    formula: %s\n", obs.TruncateFormula(a.Formula))
		}
		if a.WLP != "" {
			fmt.Fprintf(&b, "    wlp at entry: %s\n", obs.TruncateFormula(a.WLP))
		}
	}
	if sp, ok := r.Trace.SpanByID(v.Span); ok {
		fmt.Fprintf(&b, "  proof time: %s (span %d)\n", sp.Dur(), sp.ID)
	}
	return b.String()
}

func lineOf(prog *isa.Program, g *cfg.Graph, node int) int {
	idx := g.Nodes[node].Index
	if idx >= 0 && idx < len(prog.SrcLines) {
		return prog.SrcLines[idx]
	}
	return 0
}
