// Resource governance and fault isolation for the checking driver: the
// Budget envelope threaded into the Phase 5 prover, and the structured
// error a contained panic is converted into. The design is fail-closed
// throughout — exhausting a budget degrades verdicts to conservative
// "resource" rejections, and an internal fault rejects the one program
// it hit instead of killing the process or the batch.

package core

import (
	"fmt"
	"time"

	"mcsafe/internal/isa"
)

// Budget is the resource envelope of one check. The zero Budget
// disables governance entirely: the solver's hot loops skip every
// check and verdicts are bit-identical to an ungoverned run.
//
// Exhaustion is never an acceptance: a condition whose proof the
// envelope cuts short is reported as an unproven violation with the
// stable "resource" code, so callers can distinguish "rejected on the
// merits" from "rejected for lack of budget" and re-run with a larger
// envelope.
type Budget struct {
	// Deadline bounds the whole check's wall clock (0 = none). The
	// prover consults it inside its elimination and enumeration loops,
	// so even a single pathological query is interrupted mid-proof.
	Deadline time.Duration
	// SolverSteps bounds the total solver work of the check (0 =
	// unlimited), counted in governance ticks: eliminations, residue
	// enumeration leaves, and clause-folding rounds. The budget is
	// shared across all of a parallel check's workers.
	SolverSteps int64
	// CondTimeout bounds each condition's proof wall clock (0 = none).
	// A condition that exceeds it is abandoned with a resource verdict;
	// the rest of the check continues, each condition under a fresh
	// timeout.
	CondTimeout time.Duration
}

// Enabled reports whether any bound is set.
func (b Budget) Enabled() bool { return b != (Budget{}) }

// InternalError is a panic contained at a checking boundary (a phase
// of the driver, a proving-pool worker, or a batch item), converted
// into a structured, reportable error. It always rejects: the program
// it names gets no Result, and in a batch only that item is charged.
type InternalError struct {
	// Phase is the driver phase that was running ("prepare",
	// "typestate", "annotate", "global").
	Phase string `json:"phase"`
	// ProgramHash fingerprints the program being checked (FNV-1a over
	// its machine words), so a crash report identifies the poisoned
	// input without embedding it.
	ProgramHash uint64 `json:"program_hash"`
	// Cond is the ID of the global condition being proved when the
	// panic fired, or -1 when it fired outside condition proving.
	Cond int `json:"cond"`
	// Panic is the rendered panic value.
	Panic string `json:"panic"`
	// Stack is the panicking goroutine's stack.
	Stack []byte `json:"-"`
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("mcsafe: internal error during %s phase (program %016x, cond %d): %s",
		e.Phase, e.ProgramHash, e.Cond, e.Panic)
}

// ProgramHash fingerprints a program: FNV-1a over its machine words.
func ProgramHash(prog *isa.Program) uint64 {
	if prog == nil {
		return 0
	}
	h := uint64(14695981039346656037)
	for _, w := range prog.Words {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(w >> shift))
			h *= 1099511628211
		}
	}
	return h
}
