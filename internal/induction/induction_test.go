package induction

import (
	"testing"

	"mcsafe/internal/expr"
	"mcsafe/internal/solver"
)

// TestSec522Trace replays the worked example of Section 5.2.2 through the
// synthesizer using hand-computed wlp hooks for the Figure 1 loop:
//
//	W(0) = %g3 < n
//	wlp(loop-body, W) = (%g3+1 < %o1 -> W[%g3 <- %g3+1])
//
// The raw W(1) is not invariant; generalization must produce %o1 <= n,
// after which W(0) ∧ W(1) => W(2) holds and the invariant is
// %g3 < n ∧ %o1 <= n.
func TestSec522Trace(t *testing.T) {
	p := solver.New()
	g3 := expr.Var("%g3")
	n := expr.V(expr.Var("n"))
	o1 := expr.V(expr.Var("%o1"))

	w0 := expr.LtExpr(expr.V(g3), n)
	body := func(w expr.Formula) expr.Formula {
		// One iteration: %g3' = %g3 + 1; the back edge is taken when
		// %g3' < %o1 (the bl at line 10); exits contribute true.
		wShift := w.Subst(g3, expr.V(g3).AddConst(1))
		return expr.Implies(expr.LtExpr(expr.V(g3).AddConst(1), o1), wShift)
	}

	entryChecks := 0
	hooks := Hooks{
		First: func(back expr.Formula) expr.Formula { return w0 },
		Next:  func(back expr.Formula) expr.Formula { return body(back) },
		OnEntry: func(w expr.Formula) bool {
			entryChecks++
			// On entry: %g3 = 0, %o1 = n, n >= 1.
			init := expr.Conj(
				expr.EqExpr(expr.V(g3), expr.Constant(0)),
				expr.EqExpr(o1, n),
				expr.GeExpr(n, expr.Constant(1)),
			)
			return p.Implied(init, w)
		},
		ModifiedVars: []expr.Var{g3},
	}
	res, ok := Synthesize(p, hooks, Options{})
	if !ok {
		t.Fatal("synthesis failed on the paper's own example")
	}
	if entryChecks == 0 {
		t.Error("Inv.0 was never consulted")
	}
	// The invariant must imply the bound %g3 < n.
	if !p.Implied(res.Invariant, w0) {
		t.Errorf("invariant %v does not imply %v", res.Invariant, w0)
	}
	// And it must be inductive: Inv ∧ one-iteration => Inv step for
	// W(last).
	last := res.Chain[len(res.Chain)-1]
	if !p.Implied(expr.Conj(res.Chain...), body(last)) {
		t.Error("returned chain is not inductive")
	}
	// The chain needed more than W(0) alone (the raw W(1) is not
	// invariant without generalization).
	if len(res.Chain) < 2 {
		t.Errorf("chain = %v, expected at least two members", res.Chain)
	}
}

// Without generalization the 5.2.2 example must fail within the
// three-iteration budget: this is the ablation the paper motivates.
func TestSec522NeedsGeneralization(t *testing.T) {
	p := solver.New()
	g3 := expr.Var("%g3")
	n := expr.V(expr.Var("n"))
	o1 := expr.V(expr.Var("%o1"))

	w0 := expr.LtExpr(expr.V(g3), n)
	body := func(w expr.Formula) expr.Formula {
		wShift := w.Subst(g3, expr.V(g3).AddConst(1))
		return expr.Implies(expr.LtExpr(expr.V(g3).AddConst(1), o1), wShift)
	}
	init := expr.Conj(
		expr.EqExpr(expr.V(g3), expr.Constant(0)),
		expr.EqExpr(o1, n),
		expr.GeExpr(n, expr.Constant(1)),
	)
	hooks := Hooks{
		First:        func(expr.Formula) expr.Formula { return w0 },
		Next:         body,
		OnEntry:      func(w expr.Formula) bool { return p.Implied(init, w) },
		ModifiedVars: []expr.Var{g3},
	}
	_, ok := Synthesize(p, hooks, Options{DisableGeneralization: true, DisableDNF: true, MaxIter: 3})
	if ok {
		t.Fatal("expected failure without generalization (implication chains do not converge)")
	}
}

func TestTrivialTrueInvariant(t *testing.T) {
	p := solver.New()
	hooks := Hooks{
		First: func(expr.Formula) expr.Formula { return expr.T() },
		Next:  func(b expr.Formula) expr.Formula { return b },
	}
	res, ok := Synthesize(p, hooks, Options{})
	if !ok {
		t.Fatal("true should synthesize trivially")
	}
	if _, isTrue := res.Invariant.(expr.TrueF); !isTrue {
		t.Errorf("invariant = %v", res.Invariant)
	}
}

func TestAlreadyInvariant(t *testing.T) {
	// W(0) = x >= 0 with a body that does not change x: W(1) = W(0),
	// one round suffices.
	p := solver.New()
	w0 := expr.GeExpr(expr.V("x"), expr.Constant(0))
	hooks := Hooks{
		First:   func(expr.Formula) expr.Formula { return w0 },
		Next:    func(b expr.Formula) expr.Formula { return b },
		OnEntry: func(w expr.Formula) bool { return true },
	}
	res, ok := Synthesize(p, hooks, Options{})
	if !ok {
		t.Fatal("self-invariant formula failed")
	}
	if len(res.Chain) != 1 {
		t.Errorf("chain = %v", res.Chain)
	}
}

func TestEntryFailureIsFatal(t *testing.T) {
	// Figure 7: if W(0) cannot be established on entry, FAILURE.
	p := solver.New()
	w0 := expr.GeExpr(expr.V("x"), expr.Constant(0))
	hooks := Hooks{
		First:   func(expr.Formula) expr.Formula { return w0 },
		Next:    func(b expr.Formula) expr.Formula { return b },
		OnEntry: func(w expr.Formula) bool { return false },
	}
	if _, ok := Synthesize(p, hooks, Options{}); ok {
		t.Fatal("unprovable entry must fail")
	}
}

func TestIterationBoundRespected(t *testing.T) {
	// A body that keeps weakening W so no finite chain converges: the
	// search must terminate (bounded by MaxIter/MaxCand).
	p := solver.New()
	i := 0
	hooks := Hooks{
		First: func(expr.Formula) expr.Formula {
			return expr.GeExpr(expr.V("x"), expr.Constant(0))
		},
		Next: func(b expr.Formula) expr.Formula {
			i++
			// Fresh unrelated obligation each round.
			return expr.GeExpr(expr.V(expr.Var("y")), expr.Constant(int64(i)))
		},
		OnEntry:      func(w expr.Formula) bool { return false },
		ModifiedVars: []expr.Var{"x"},
	}
	if _, ok := Synthesize(p, hooks, Options{MaxIter: 3}); ok {
		t.Fatal("non-converging chain must fail")
	}
}

func TestDNFDisjunctCandidate(t *testing.T) {
	// wlp produces (x >= 0 ∨ y >= 5); only the disjunct x >= 0 is
	// invariant and entry-provable. The DNF enhancement finds it.
	p := solver.New()
	x := expr.V(expr.Var("x"))
	y := expr.V(expr.Var("y"))
	w0 := expr.GeExpr(x, expr.Constant(0))
	step := 0
	hooks := Hooks{
		First: func(expr.Formula) expr.Formula { return w0 },
		Next: func(b expr.Formula) expr.Formula {
			step++
			if step == 1 {
				// Polluted candidate.
				return expr.Disj(expr.GeExpr(x, expr.Constant(0)), expr.GeExpr(y, expr.Constant(5)))
			}
			return b
		},
		OnEntry: func(w expr.Formula) bool {
			// Entry: x = 0, y unconstrained.
			return p.Implied(expr.EqExpr(x, expr.Constant(0)), w)
		},
		ModifiedVars: []expr.Var{"x"},
	}
	res, ok := Synthesize(p, hooks, Options{})
	if !ok {
		t.Fatal("DNF disjunct selection failed")
	}
	if !p.Implied(res.Invariant, w0) {
		t.Errorf("invariant %v too weak", res.Invariant)
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := solver.New()
	g3 := expr.Var("g")
	w0 := expr.LtExpr(expr.V(g3), expr.V(expr.Var("n")))
	hooks := Hooks{
		First: func(expr.Formula) expr.Formula { return w0 },
		Next: func(b expr.Formula) expr.Formula {
			return expr.Implies(expr.LtExpr(expr.V(g3).AddConst(1), expr.V(expr.Var("m"))),
				b.Subst(g3, expr.V(g3).AddConst(1)))
		},
		ModifiedVars: []expr.Var{g3},
	}
	res, ok := Synthesize(p, hooks, Options{})
	if !ok {
		t.Fatal("synthesis failed")
	}
	if res.Stats.Iterations == 0 || res.Stats.Candidates == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

// TestCollectAllDisjoins: in CollectAll mode the synthesizer keeps
// searching after a success and returns the disjunction of closing
// invariants — sound because each covers the loop's exit obligations
// (used when crossing loops without an entry check).
func TestCollectAllDisjoins(t *testing.T) {
	p := solver.New()
	x := expr.V(expr.Var("x"))
	// Body preserves any fact about x (x unmodified); W0 = x >= 0.
	hooks := Hooks{
		First: func(expr.Formula) expr.Formula { return expr.Ge(x) },
		Next:  func(b expr.Formula) expr.Formula { return b },
	}
	res, ok := Synthesize(p, hooks, Options{CollectAll: true})
	if !ok {
		t.Fatal("collect-all synthesis failed")
	}
	// The first closing chain is [W0] itself; the invariant must be
	// implied by x >= 0 (it may be a disjunction including weaker
	// variants).
	if !p.Implied(expr.Ge(x), res.Invariant) {
		t.Errorf("x >= 0 should imply the collected invariant %v", res.Invariant)
	}
	// The returned invariant still implies the exit obligations carried
	// by the chain: here the body is the identity, so the invariant
	// must be inductive.
	if !p.Implied(res.Invariant, res.Invariant) {
		t.Error("trivially inductive check failed")
	}
}
