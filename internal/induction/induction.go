// Package induction implements the induction-iteration method of Suzuki
// and Ishihata for synthesizing loop invariants (Section 5.2.1 and
// Figure 7 of the paper), extended with the paper's enhancements:
//
//   - trying the disjuncts of the DNF of wlp(loop-body, W(i-1)) as W(i)
//     when conditionals in the loop pollute the candidate;
//   - generalization ¬(elimination(¬f)) via Fourier-Motzkin elimination
//     of loop-modified variables;
//   - breadth-first exploration of ranked candidates rather than
//     depth-first iteration;
//   - a small iteration bound (the paper observes three iterations
//     suffice in practice).
//
// The package is decoupled from the verification engine through the
// Hooks interface: the engine supplies the wlp of the loop body as a
// function of the back-edge continuation formula.
package induction

import (
	"fmt"
	"os"
	"sort"

	"mcsafe/internal/expr"
	"mcsafe/internal/solver"
)

// debugTrace prints the search when MCSAFE_II_DEBUG is set (tests only).
var debugTrace = os.Getenv("MCSAFE_II_DEBUG") != ""

// Hooks supplies the loop-specific machinery.
type Hooks struct {
	// First computes W(0): the back-substitution of the target
	// condition to the loop entry, with the given formula as the
	// contribution of the back edges (Figure 7 line 2 uses true).
	First func(back expr.Formula) expr.Formula
	// Next computes wlp(loop-body, back): one full trip around the
	// loop establishing the given formula at the header again.
	Next func(back expr.Formula) expr.Formula
	// OnEntry is the Inv.0 test: whether the formula can be shown to
	// hold on entry to the loop. A nil hook defers the entry check to
	// the caller (the conjunction is then required at loop entry).
	OnEntry func(w expr.Formula) bool
	// ModifiedVars are the variables assigned inside the loop body;
	// generalization eliminates (subsets of) them.
	ModifiedVars []expr.Var
}

// Options bound the search.
type Options struct {
	MaxIter int // maximum chain length (default 3)
	MaxCand int // breadth-first queue bound (default 64)
	// CollectAll keeps searching after a success and returns the
	// DISJUNCTION of all closing invariants. Used when crossing a loop
	// without an entry check: each closing invariant covers the loop's
	// exit obligations, so their disjunction does too, and the weakest
	// combination maximizes provability upstream.
	CollectAll bool
	// DisableGeneralization and DisableDNF switch off the respective
	// enhancements (used by the ablation benchmarks).
	DisableGeneralization bool
	DisableDNF            bool
}

// Stats reports search effort.
type Stats struct {
	Iterations int // candidate chains examined
	Candidates int // candidate formulas generated
}

// Result of a synthesis run.
type Result struct {
	// Invariant is the conjunction L(j) = W(0) ∧ ... ∧ W(j); it is a
	// loop invariant (Inv.1 established) and, when Hooks.OnEntry was
	// provided, holds on entry.
	Invariant expr.Formula
	// Chain is the underlying W(i) sequence.
	Chain []expr.Formula
	Stats Stats
}

// Synthesize runs the extended induction-iteration algorithm. It returns
// the invariant and true on success.
func Synthesize(p *solver.Prover, h Hooks, opts Options) (*Result, bool) {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 3
	}
	if opts.MaxCand <= 0 {
		opts.MaxCand = 64
	}
	res := &Result{}

	w0 := expr.Simplify(h.First(expr.T()))
	if _, isTrue := w0.(expr.TrueF); isTrue {
		res.Invariant = w0
		res.Chain = []expr.Formula{w0}
		return res, true
	}
	// A valid W(0) holds at the header in every state: the condition is
	// established by the current iteration's own guards, and no
	// invariant is needed (e.g. a null test immediately dominating the
	// dereference).
	if p.Valid(w0) {
		res.Invariant = expr.T()
		res.Chain = []expr.Formula{w0}
		return res, true
	}
	if h.OnEntry != nil && !h.OnEntry(w0) {
		// Inv.0(-1) in Figure 7: if W(0) cannot be established on
		// entry, the condition is unprovable.
		return res, false
	}

	type chain struct {
		ws []expr.Formula
	}
	queue := []chain{{ws: []expr.Formula{w0}}}
	var collected []expr.Formula
	const maxCollected = 3

	for len(queue) > 0 {
		if p.Stopped() {
			// Resource envelope exhausted (or cancelled) mid-search:
			// abandon the synthesis conservatively.
			break
		}
		c := queue[0]
		queue = queue[1:]
		res.Stats.Iterations++

		conj := expr.Conj(c.ws...)
		// Inv.1(j): L(j) -> wlp(loop-body, L(j)) establishes that L(j)
		// is a loop invariant. (wlp is conjunctive, so one pass with
		// the whole conjunction as the back-edge formula covers every
		// chain member; this also licenses candidates that do not come
		// from the literal W-chain, such as generalizations.)
		wNext := expr.Simplify(h.Next(conj))
		if debugTrace {
			fmt.Printf("[ii] chain len=%d conj=%v\n", len(c.ws), conj)
		}
		if p.Valid(wNext) || p.Implied(conj, wNext) {
			if debugTrace {
				fmt.Printf("[ii] SUCCESS\n")
			}
			if !opts.CollectAll {
				res.Invariant = expr.Simplify(conj)
				res.Chain = c.ws
				return res, true
			}
			collected = append(collected, expr.Simplify(conj))
			if res.Chain == nil {
				res.Chain = c.ws
			}
			if len(collected) >= maxCollected {
				break
			}
			continue
		}
		if len(c.ws) >= opts.MaxIter {
			continue
		}

		// Generate ranked candidates for W(j+1): the raw wlp, its DNF
		// disjuncts, and generalizations.
		cands := candidates(p, wNext, h.ModifiedVars, h.OnEntry != nil, opts)
		res.Stats.Candidates += len(cands)
		var passing []expr.Formula
		for _, cand := range cands {
			if h.OnEntry != nil && !h.OnEntry(cand) {
				if debugTrace {
					fmt.Printf("[ii]   cand REJECTED(entry): %v\n", cand)
				}
				continue // Inv.0(i) fails for this candidate
			}
			if debugTrace {
				fmt.Printf("[ii]   cand ok: %v\n", cand)
			}
			passing = append(passing, cand)
		}
		// Greedy conjunction first: an invariant often combines facts
		// from several generalizations (e.g. the induction variable's
		// lower bound AND the loop limit's upper bound); the conjunction
		// of entry-established candidates is itself entry-established.
		// Only with an entry check: without one, conjoining unfiltered
		// candidates manufactures junk-strong "invariants".
		if h.OnEntry != nil && len(passing) > 1 {
			passing = append([]expr.Formula{expr.Simplify(expr.Conj(passing...))}, passing...)
		}
		for _, cand := range passing {
			next := append(append([]expr.Formula(nil), c.ws...), cand)
			queue = append(queue, chain{ws: next})
			if len(queue) >= opts.MaxCand {
				break
			}
		}
		if len(queue) >= opts.MaxCand {
			// Keep draining what we have, but add no more.
			continue
		}
	}
	if len(collected) > 0 {
		res.Invariant = expr.Simplify(expr.Disj(collected...))
		return res, true
	}
	return res, false
}

// candidates produces the ranked candidate list for the next W(i).
// broad widens the generalization variable sets; it is enabled only when
// an entry check (Inv.0) is available to prune over-strong junk.
func candidates(p *solver.Prover, wNext expr.Formula, modified []expr.Var, broad bool, opts Options) []expr.Formula {
	var out []expr.Formula
	// Candidates are deduplicated by structural fingerprint (verified
	// on match) instead of canonical string: candidate generation is a
	// hot loop and the strings were built only to be map keys.
	seen := map[expr.FP]expr.Formula{}
	dedup := func(f expr.Formula) bool {
		key := expr.Fingerprint(f)
		if prev, ok := seen[key]; ok {
			if expr.Equal(prev, f) {
				return false
			}
		} else {
			seen[key] = f
		}
		return true
	}
	add := func(f expr.Formula) {
		f = expr.Simplify(f)
		switch f.(type) {
		case expr.TrueF, expr.FalseF:
			return
		}
		if dedup(f) {
			out = append(out, f)
		}
	}
	var tier2 []expr.Formula
	add2 := func(f expr.Formula) {
		f = expr.Simplify(f)
		switch f.(type) {
		case expr.TrueF, expr.FalseF:
			return
		}
		if dedup(f) {
			tier2 = append(tier2, f)
		}
	}
	add(wNext)

	// Generalization: ¬(eliminate(¬W)) for each modified variable that
	// actually occurs, for all of them together, and — since facts about
	// unmodified values (base-pointer alignment, non-nullness) pollute
	// ¬W — for the modified set extended by each remaining free variable
	// in turn. Each resulting generalization is tried (Section 5.2.1:
	// "if there are several resulting generalizations, then each of them
	// in turn is chosen").
	if !opts.DisableGeneralization {
		free := map[expr.Var]bool{}
		wNext.FreeVars(free)
		var present, others []expr.Var
		for _, v := range modified {
			if free[v] {
				present = append(present, v)
				delete(free, v)
			}
		}
		// Without an entry check, the extension set is limited to
		// variables constrained by divisibility atoms (pointer-alignment
		// facts): eliminating arbitrary unmodified inputs (array bounds,
		// loop limits) manufactures junk invariants that nothing would
		// filter. With Inv.0 available, any free variable may be tried.
		divVars := map[expr.Var]bool{}
		collectDivVars(wNext, divVars)
		for v := range free {
			if broad || divVars[v] {
				others = append(others, v)
			}
		}
		sort.Slice(others, func(i, j int) bool { return others[i] < others[j] })
		gen := func(vars []expr.Var) {
			if g, err := p.Generalize(wNext, vars); err == nil {
				add(g)
			}
			// Per-clause variants: "if there are several resulting
			// generalizations, then each of them in turn is chosen"
			// (Section 5.2.1). A clause of ¬W whose projection is
			// trivial must not wash out the others. With an entry check
			// these rank alongside the rest; without one they form a
			// second tier, tried only after the conservative candidates
			// fail (they can be over-strong, and nothing else filters
			// them).
			for _, g := range p.GeneralizeClauses(wNext, vars) {
				if broad {
					add(g)
				} else {
					add2(g)
				}
			}
		}
		for _, v := range present {
			gen([]expr.Var{v})
		}
		// "Present minus one" sets: eliminate every modified variable
		// except one, so a fact about a variable whose value was
		// established before this loop (e.g. a position counter advanced
		// by an earlier phase) survives as a candidate.
		if len(present) > 2 {
			for i := range present {
				rest := make([]expr.Var, 0, len(present)-1)
				rest = append(rest, present[:i]...)
				rest = append(rest, present[i+1:]...)
				gen(rest)
			}
		}
		if len(present) > 1 {
			gen(present)
		}
		for _, v := range others {
			gen(append(append([]expr.Var{}, present...), v))
			// Also eliminate the unmodified variable alone, keeping the
			// loop-modified ones: this projects out a limit or bound
			// variable while preserving the induction variable (needed
			// when the invariant relates the induction variable to a
			// constant, e.g. j >= 0 in a doubling sift-down loop).
			gen([]expr.Var{v})
		}
		if len(others) > 1 {
			// All unmodified variables at once: what remains is a pure
			// fact about the induction variables.
			gen(others)
		}
	}

	// DNF disjuncts of the candidate: certain conditionals in a loop
	// weaken W(i) so much that it cannot become invariant; trying each
	// disjunct in turn strengthens it (Section 5.2.1).
	if !opts.DisableDNF {
		// Only expansions of at most 8 clauses are usable, so cap the
		// conversion there: a wider candidate would be discarded anyway,
		// and this skips materializing (possibly enormous) expansions
		// that exist only to be measured. An over-cap bail-out here is a
		// deliberate search-policy cut, not a prover blowup, so it is
		// not counted in DNFBlowups.
		clauses, err := expr.DNFUpTo(wNext, 8)
		if err == nil && len(clauses) > 1 {
			for _, cl := range clauses {
				add(expr.ClauseFormula(cl))
			}
		}
	}

	// Rank by size: smaller candidates first (the paper's "simple
	// heuristic" with breadth-first testing), and keep only the best
	// few — entry checks and invariance tests are whole-program proofs,
	// so an unbounded candidate list is a time sink.
	const maxCandidates = 16
	rank := func(fs []expr.Formula) []expr.Formula {
		sort.SliceStable(fs, func(i, j int) bool {
			return expr.Size(fs[i]) < expr.Size(fs[j])
		})
		if len(fs) > maxCandidates {
			fs = fs[:maxCandidates]
		}
		return fs
	}
	out = rank(out)
	if len(tier2) > 0 {
		out = append(out, rank(tier2)...)
	}
	return out
}

// collectDivVars gathers variables occurring in divisibility atoms.
func collectDivVars(f expr.Formula, out map[expr.Var]bool) {
	switch g := f.(type) {
	case expr.AtomF:
		if g.A.Kind == expr.DIV {
			for _, t := range g.A.E.Terms() {
				out[t.V] = true
			}
		}
	case expr.Not:
		collectDivVars(g.F, out)
	case expr.And:
		for _, sub := range g.Fs {
			collectDivVars(sub, out)
		}
	case expr.Or:
		for _, sub := range g.Fs {
			collectDivVars(sub, out)
		}
	case expr.Impl:
		collectDivVars(g.A, out)
		collectDivVars(g.B, out)
	case expr.Forall:
		collectDivVars(g.F, out)
	case expr.Exists:
		collectDivVars(g.F, out)
	}
}
