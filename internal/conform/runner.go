package conform

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mcsafe"
	"mcsafe/internal/gen"
)

// Options tunes a conformance run.
type Options struct {
	// Parallelism is the fixture-level worker count (0 = GOMAXPROCS).
	// Each fixture is checked with the sequential Phase 5 path, so the
	// pool is the only source of concurrency and outcomes are identical
	// at every setting.
	Parallelism int
	// Budget is the per-fixture resource envelope (zero = ungoverned).
	// A tripped budget surfaces as a "resource" code in the outcome and
	// therefore as a ground-truth disagreement — conformance runs are
	// expected to give the checker room to finish.
	Budget mcsafe.Budget
}

// Outcome is one checked fixture.
type Outcome struct {
	Fixture *gen.Fixture
	Norm    Normalized
	// Err reports a build or checker failure (nil for a completed
	// check, even an unsafe one).
	Err     error
	Elapsed time.Duration
}

// Run checks every fixture and returns outcomes in fixture order.
// Fixtures are distributed over a worker pool; order and content of the
// result are independent of scheduling.
func Run(ctx context.Context, fixtures []*gen.Fixture, opt Options) []Outcome {
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fixtures) {
		workers = len(fixtures)
	}
	out := make([]Outcome, len(fixtures))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(fixtures) {
					return
				}
				out[i] = runOne(ctx, fixtures[i], opt)
			}
		}()
	}
	wg.Wait()
	return out
}

func runOne(ctx context.Context, f *gen.Fixture, opt Options) Outcome {
	start := time.Now()
	o := Outcome{Fixture: f}
	spec, err := mcsafe.ParseSpec(f.Spec)
	if err != nil {
		o.Err = fmt.Errorf("%s: spec: %w", f.Name, err)
		return o
	}
	prog, err := mcsafe.Assemble(f.Asm, spec, f.Entry)
	if err != nil {
		o.Err = fmt.Errorf("%s: assemble: %w", f.Name, err)
		return o
	}
	c := mcsafe.New(mcsafe.WithParallelism(1), mcsafe.WithBudget(opt.Budget))
	res, err := c.Check(ctx, prog, spec)
	if err != nil {
		o.Err = fmt.Errorf("%s: check: %w", f.Name, err)
		return o
	}
	o.Norm = Normalize(f.Name, res)
	o.Elapsed = time.Since(start)
	return o
}

// GroundTruth verifies the outcome against the fixture's constructed
// ground truth: safe fixtures must check safe; planted fixtures must
// check unsafe with the planted code among the reported codes. A nil
// return means the checker and the generator agree.
func (o Outcome) GroundTruth() error {
	if o.Err != nil {
		return o.Err
	}
	f := o.Fixture
	if f.WantSafe {
		if o.Norm.Verdict != "safe" {
			return fmt.Errorf("%s: constructed safe, checker reports %v", f.Name, o.Norm.Codes)
		}
		return nil
	}
	if o.Norm.Verdict != "unsafe" {
		return fmt.Errorf("%s: planted %s in %s, checker reports safe", f.Name, f.WantCode, f.PlantUnit)
	}
	for _, c := range o.Norm.Codes {
		if c == f.WantCode {
			return nil
		}
	}
	return fmt.Errorf("%s: planted %s in %s, checker reports %v", f.Name, f.WantCode, f.PlantUnit, o.Norm.Codes)
}
