package conform

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Manifest is the committed expectation file: the normalized outcome of
// every fixture in the default corpus, sorted by name.
type Manifest struct {
	// Corpus documents the seed range the manifest covers.
	Corpus   string       `json:"corpus"`
	Fixtures []Normalized `json:"fixtures"`
}

// LoadManifest reads a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}

// WriteManifest writes a manifest file (sorted by fixture name, one
// stable formatting) — the MCSAFE_REGEN path.
func WriteManifest(path, corpus string, outcomes []Outcome) error {
	m := Manifest{Corpus: corpus}
	for _, o := range outcomes {
		if o.Err != nil {
			return fmt.Errorf("refusing to write manifest over failed check: %w", o.Err)
		}
		m.Fixtures = append(m.Fixtures, o.Norm)
	}
	sort.Slice(m.Fixtures, func(i, j int) bool { return m.Fixtures[i].Name < m.Fixtures[j].Name })
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Diff is one disagreement between the manifest and a fresh run.
type Diff struct {
	Name string
	// Want/Got render the two normalized outcomes; either is "(absent)"
	// for a fixture only one side has.
	Want, Got string
}

func render(n Normalized) string {
	s := n.Verdict
	if len(n.Codes) > 0 {
		s += "[" + strings.Join(n.Codes, ",") + "]"
	}
	return fmt.Sprintf("%s arch=%s insns=%d branches=%d loops=%d calls=%d conds=%d",
		s, archOf(n), n.Insns, n.Branches, n.Loops, n.Calls, n.Conds)
}

// Compare diffs a run's outcomes against the manifest. Outcomes may
// cover a subset of the manifest (a shard): only fixtures present in
// the run are compared, but a run fixture missing from the manifest is
// always a diff. The result is sorted by fixture name.
func Compare(m *Manifest, outcomes []Outcome) []Diff {
	want := make(map[string]Normalized, len(m.Fixtures))
	for _, n := range m.Fixtures {
		want[n.Name] = n
	}
	var diffs []Diff
	for _, o := range outcomes {
		name := o.Fixture.Name
		if o.Err != nil {
			diffs = append(diffs, Diff{Name: name, Want: "completed check", Got: o.Err.Error()})
			continue
		}
		w, ok := want[name]
		if !ok {
			diffs = append(diffs, Diff{Name: name, Want: "(absent)", Got: render(o.Norm)})
			continue
		}
		if !w.equal(o.Norm) {
			diffs = append(diffs, Diff{Name: name, Want: render(w), Got: render(o.Norm)})
		}
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Name < diffs[j].Name })
	return diffs
}

// Report renders diffs for humans: one block per disagreeing fixture,
// expectation above observation, with a regeneration hint.
func Report(diffs []Diff) string {
	if len(diffs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d fixture(s) disagree with the conformance manifest:\n", len(diffs))
	for _, d := range diffs {
		fmt.Fprintf(&b, "  %s\n    want: %s\n    got:  %s\n", d.Name, d.Want, d.Got)
	}
	b.WriteString("if the new behavior is intended, regenerate with MCSAFE_REGEN=1 go test ./internal/conform/\n")
	return b.String()
}
