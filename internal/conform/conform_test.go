package conform

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"mcsafe/internal/gen"
)

const manifestPath = "testdata/manifest.json"

// corpusUnderTest trims the sweep under -race (≈10x slower): a striped
// sample of the default corpus, still mixing every kind and the 10^3
// band. The full 200-fixture corpus is what the committed manifest
// covers and what ordinary `go test ./internal/conform/` runs.
func corpusUnderTest(t *testing.T) []*gen.Fixture {
	fs := DefaultCorpus()
	if raceEnabled || testing.Short() {
		sample, err := Shard(fs, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		return sample
	}
	return fs
}

// TestConformCorpus is the conformance gate: every fixture's checked
// outcome must agree with the constructed ground truth, and the
// normalized outcomes must match the committed manifest exactly.
// MCSAFE_REGEN=1 rewrites the manifest from the current outcomes
// (full corpus runs only, so the manifest never loses fixtures).
func TestConformCorpus(t *testing.T) {
	fixtures := corpusUnderTest(t)
	outcomes := Run(context.Background(), fixtures, Options{})

	bad := 0
	for _, o := range outcomes {
		if err := o.GroundTruth(); err != nil {
			t.Errorf("ground truth: %v", err)
			bad++
			if bad >= 10 {
				t.Fatal("too many ground-truth disagreements; stopping")
			}
		}
	}
	if bad > 0 {
		return
	}

	if os.Getenv("MCSAFE_REGEN") != "" {
		if len(fixtures) != len(DefaultCorpus()) {
			t.Fatal("refusing to regenerate the manifest from a trimmed corpus (drop -short / -race)")
		}
		if err := WriteManifest(manifestPath, "seeds 0:200", outcomes); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d fixtures)", manifestPath, len(outcomes))
		return
	}

	m, err := LoadManifest(manifestPath)
	if err != nil {
		t.Fatalf("%v (generate it with MCSAFE_REGEN=1 go test ./internal/conform/)", err)
	}
	if diffs := Compare(m, outcomes); len(diffs) > 0 {
		t.Fatalf("\n%s", Report(diffs))
	}
}

// TestCorpusListingStable pins the properties shard assignment and diff
// reports rely on: the corpus listing is sorted by name, regeneration
// is byte-identical, and shards stripe it into a disjoint, complete,
// order-preserving partition.
func TestCorpusListingStable(t *testing.T) {
	a, b := Corpus(0, 64), Corpus(0, 64)
	if len(a) != 64 {
		t.Fatalf("got %d fixtures", len(a))
	}
	seen := map[string]int{}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Asm != b[i].Asm || a[i].Spec != b[i].Spec {
			t.Fatalf("position %d differs across regenerations", i)
		}
		if i > 0 && a[i-1].Name >= a[i].Name {
			t.Fatalf("listing not sorted at %d: %s >= %s", i, a[i-1].Name, a[i].Name)
		}
		seen[a[i].Name] = -1
	}
	const shards = 4
	total := 0
	for s := 0; s < shards; s++ {
		part, err := Shard(a, s, shards)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(part); i++ {
			if part[i-1].Name >= part[i].Name {
				t.Fatalf("shard %d not order-preserving", s)
			}
		}
		for _, f := range part {
			if seen[f.Name] != -1 {
				t.Fatalf("%s assigned to shards %d and %d", f.Name, seen[f.Name], s)
			}
			seen[f.Name] = s
			total++
		}
	}
	if total != len(a) {
		t.Fatalf("shards cover %d of %d fixtures", total, len(a))
	}
	if _, err := Shard(a, 4, 4); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}

// TestPlanMix pins the corpus composition: half safe, every planted
// kind present, and the size schedule reaching both 10^3 and 10^4.
func TestPlanMix(t *testing.T) {
	kinds := map[gen.Kind]int{}
	max := 0
	for seed := int64(0); seed < 200; seed++ {
		cfg := PlanSeed(seed)
		kinds[cfg.Kind]++
		if cfg.Size > max {
			max = cfg.Size
		}
	}
	if kinds[gen.Safe] != 100 {
		t.Errorf("safe fixtures: %d of 200", kinds[gen.Safe])
	}
	for _, k := range gen.Kinds[1:] {
		if kinds[k] == 0 {
			t.Errorf("kind %s absent from the default corpus", k)
		}
	}
	if max != 10000 {
		t.Errorf("largest planned size = %d, want 10000", max)
	}
}

// TestCompareReportsSubsetAndFailures covers the diff paths the corpus
// gate exercises only on regression: shard-subset comparison, a
// manifest miss, and a failed check.
func TestCompareReportsSubsetAndFailures(t *testing.T) {
	m := &Manifest{Fixtures: []Normalized{
		{Name: "a", Verdict: "safe", Insns: 10},
		{Name: "b", Verdict: "unsafe", Codes: []string{"oob"}, Insns: 20},
	}}
	ok := Outcome{Fixture: &gen.Fixture{Name: "b"},
		Norm: Normalized{Name: "b", Verdict: "unsafe", Codes: []string{"oob"}, Insns: 20}}
	if diffs := Compare(m, []Outcome{ok}); len(diffs) != 0 {
		t.Fatalf("subset compare: unexpected diffs %v", diffs)
	}
	drift := Outcome{Fixture: &gen.Fixture{Name: "b"},
		Norm: Normalized{Name: "b", Verdict: "unsafe", Codes: []string{"align"}, Insns: 20}}
	missing := Outcome{Fixture: &gen.Fixture{Name: "c"},
		Norm: Normalized{Name: "c", Verdict: "safe"}}
	failed := Outcome{Fixture: &gen.Fixture{Name: "a"}, Err: os.ErrDeadlineExceeded}
	diffs := Compare(m, []Outcome{drift, missing, failed})
	if len(diffs) != 3 {
		t.Fatalf("want 3 diffs, got %v", diffs)
	}
	for i := 1; i < len(diffs); i++ {
		if diffs[i-1].Name >= diffs[i].Name {
			t.Fatal("diffs not sorted")
		}
	}
	if Report(diffs) == "" || Report(nil) != "" {
		t.Fatal("report rendering")
	}
}

// TestManifestRoundTrip pins the manifest encoding: write, load, and
// compare clean against the same outcomes.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	outcomes := []Outcome{
		{Fixture: &gen.Fixture{Name: "x"}, Norm: Normalized{Name: "x", Verdict: "safe", Insns: 5}},
		{Fixture: &gen.Fixture{Name: "y"}, Norm: Normalized{Name: "y", Verdict: "unsafe", Codes: []string{"stack"}}},
	}
	if err := WriteManifest(path, "test", outcomes); err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Corpus != "test" || len(m.Fixtures) != 2 {
		t.Fatalf("round trip: %+v", m)
	}
	if diffs := Compare(m, outcomes); len(diffs) != 0 {
		t.Fatalf("round trip diffs: %v", diffs)
	}
	bad := []Outcome{{Fixture: &gen.Fixture{Name: "z"}, Err: os.ErrInvalid}}
	if err := WriteManifest(path, "test", bad); err == nil {
		t.Fatal("manifest written over a failed check")
	}
}
