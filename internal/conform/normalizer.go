package conform

import (
	"sort"

	"mcsafe"
)

// Normalized is the stable surface of one checked fixture: everything
// the conformance manifest pins and nothing that may legitimately drift
// (timings, solver-effort counters, violation ordering). The structural
// counters (instructions, branches, loops, calls, global conditions)
// are facts about the program and its safety conditions, so they only
// change when the generator or the condition generator changes — both
// manifest-worthy events.
type Normalized struct {
	Name string `json:"name"`
	// Arch is the fixture's instruction-set front-end. Manifests written
	// before the architecture seam omit it; comparison treats absence as
	// "sparc" (the only architecture those manifests could cover), so
	// tagging did not invalidate the committed corpus.
	Arch    string `json:"arch,omitempty"`
	Verdict string `json:"verdict"` // "safe" or "unsafe"
	// Codes is the sorted, deduplicated set of Violation.Code values.
	Codes    []string `json:"codes,omitempty"`
	Insns    int      `json:"insns"`
	Branches int      `json:"branches"`
	Loops    int      `json:"loops"`
	Calls    int      `json:"calls"`
	Conds    int      `json:"conds"`
}

// Normalize reduces a checker Result to its stable surface.
func Normalize(name string, res *mcsafe.Result) Normalized {
	n := Normalized{
		Name:     name,
		Arch:     res.Arch(),
		Verdict:  "safe",
		Insns:    res.Stats.Instructions,
		Branches: res.Stats.Branches,
		Loops:    res.Stats.Loops,
		Calls:    res.Stats.Calls,
		Conds:    res.Stats.GlobalConds,
	}
	if !res.Safe {
		n.Verdict = "unsafe"
		seen := map[string]bool{}
		for _, v := range res.Violations {
			if !seen[v.Code] {
				seen[v.Code] = true
				n.Codes = append(n.Codes, v.Code)
			}
		}
		sort.Strings(n.Codes)
	}
	return n
}

// archOf resolves a normalized outcome's architecture, reading the
// pre-seam manifests' absent field as SPARC.
func archOf(n Normalized) string {
	if n.Arch == "" {
		return "sparc"
	}
	return n.Arch
}

// equal reports whether two normalized outcomes agree exactly.
func (n Normalized) equal(o Normalized) bool {
	if archOf(n) != archOf(o) {
		return false
	}
	if n.Name != o.Name || n.Verdict != o.Verdict ||
		n.Insns != o.Insns || n.Branches != o.Branches ||
		n.Loops != o.Loops || n.Calls != o.Calls || n.Conds != o.Conds ||
		len(n.Codes) != len(o.Codes) {
		return false
	}
	for i := range n.Codes {
		if n.Codes[i] != o.Codes[i] {
			return false
		}
	}
	return true
}
