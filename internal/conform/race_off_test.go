//go:build !race

package conform

// raceEnabled mirrors the root package's race gate: the corpus sweep
// runs a striped sample under the race detector.
const raceEnabled = false
