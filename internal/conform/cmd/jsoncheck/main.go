// Command jsoncheck validates JSON on stdin: exactly one well-formed
// document, optionally a top-level object carrying required keys. It
// replaces `python3 -m json.tool` in CI smoke steps so the workflow has
// no dependencies beyond the Go toolchain.
//
//	go run ./cmd/mcsafe -prog Sum -json | go run ./internal/conform/cmd/jsoncheck -require program,safe,stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	require := flag.String("require", "", "comma-separated keys the top-level object must carry")
	flag.Parse()

	dec := json.NewDecoder(os.Stdin)
	var doc any
	if err := dec.Decode(&doc); err != nil {
		fmt.Fprintf(os.Stderr, "jsoncheck: invalid JSON: %v\n", err)
		os.Exit(1)
	}
	if err := dec.Decode(new(any)); err != io.EOF {
		fmt.Fprintln(os.Stderr, "jsoncheck: trailing data after the JSON document")
		os.Exit(1)
	}
	if *require != "" {
		obj, ok := doc.(map[string]any)
		if !ok {
			fmt.Fprintln(os.Stderr, "jsoncheck: top level is not an object")
			os.Exit(1)
		}
		for _, key := range strings.Split(*require, ",") {
			if _, ok := obj[key]; !ok {
				fmt.Fprintf(os.Stderr, "jsoncheck: missing required key %q\n", key)
				os.Exit(1)
			}
		}
	}
}
