//go:build race

package conform

// raceEnabled reports whether the race detector is compiled in; the
// corpus sweep runs a striped sample under -race.
const raceEnabled = true
