// Package conform is the fixture-based conformance harness over the
// generated corpus (internal/gen): it plans deterministic seed ranges,
// runs the public mcsafe.Checker over every fixture, normalizes each
// Result to its stable surface (verdict, violation-code set, structural
// counters), and diffs the outcomes against a stored manifest with
// readable reports. MCSAFE_REGEN=1 regenerates the manifest.
//
// Everything is deterministic end to end: the same seed range always
// yields the same fixture list in the same (sorted) order, the same
// shard assignment, and the same normalized outcomes — which is what
// lets CI split the corpus across shards and still compare against one
// committed manifest.
package conform

import (
	"fmt"
	"sort"

	"mcsafe/internal/gen"
)

// PlanSeed maps one seed to its corpus Config: the size schedule cycles
// through the 10^2 band with periodic excursions to 10^3 and (every
// hundredth seed) 10^4, and kinds alternate safe / planted so the
// corpus stays half safe, half unsafe with every violation kind
// represented. The function is pure: the corpus is fully determined by
// the seed range.
func PlanSeed(seed int64) gen.Config {
	sizes := [...]int{80, 150, 240, 420, 640, 900, 1400, 2200}
	size := sizes[int(seed%int64(len(sizes)))]
	switch {
	case seed%100 == 75:
		size = 10000
	case seed%50 == 25:
		size = 5000
	}
	kind := gen.Safe
	if seed%2 == 1 {
		kind = gen.Kinds[1+int(seed/2)%(len(gen.Kinds)-1)]
	}
	return gen.Config{Seed: seed, Size: size, Kind: kind}
}

// Corpus generates the fixtures for seeds in [lo, hi), sorted by name.
// Names embed the zero-padded seed, so the sort is also the seed order;
// sorting is still explicit because shard assignment and diff reports
// key off listing positions and must never depend on construction
// order.
func Corpus(lo, hi int64) []*gen.Fixture {
	fs := make([]*gen.Fixture, 0, hi-lo)
	for seed := lo; seed < hi; seed++ {
		fs = append(fs, gen.Generate(PlanSeed(seed)))
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].Name < fs[j].Name })
	return fs
}

// DefaultCorpus is the corpus the committed manifest covers and the CI
// scale tier runs: seeds 0..199 (200 fixtures, 10^2–10^4 instructions,
// half safe, half planted).
func DefaultCorpus() []*gen.Fixture { return Corpus(0, 200) }

// Shard returns the index-th of total stride-slices of fs, preserving
// order: fixture i goes to shard i mod total. Striding (rather than
// chunking) spreads the large periodic fixtures evenly across shards.
func Shard(fs []*gen.Fixture, index, total int) ([]*gen.Fixture, error) {
	if total < 1 || index < 0 || index >= total {
		return nil, fmt.Errorf("conform: bad shard %d/%d", index, total)
	}
	var out []*gen.Fixture
	for i := index; i < len(fs); i += total {
		out = append(out, fs[i])
	}
	return out, nil
}
