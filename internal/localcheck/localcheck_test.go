package localcheck

import (
	"testing"

	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

func ts(t *types.Type, s typestate.State, p typestate.Perm) typestate.Typestate {
	return typestate.Typestate{Type: t, State: s, Access: p}
}

func TestOperable(t *testing.T) {
	cases := []struct {
		ts   typestate.Typestate
		want bool
		name string
	}{
		{ts(types.Int32Type, typestate.InitState, typestate.PermO), true, "init with o"},
		{ts(types.Int32Type, typestate.InitState, 0), false, "init without o"},
		{ts(types.Int32Type, typestate.UninitState, typestate.PermO), false, "uninit"},
		{ts(types.Int32Type, typestate.BottomState, typestate.PermO), false, "bottom"},
		{ts(types.Int32Type, typestate.TopState, typestate.PermO), false, "top"},
		{ts(types.NewPtr(types.Int32Type), typestate.PointsTo(false, typestate.Ref{Loc: "x"}),
			typestate.PermO), true, "pointer with o"},
	}
	for _, c := range cases {
		if got := Operable(c.ts); got != c.want {
			t.Errorf("%s: Operable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFollowable(t *testing.T) {
	ptr := types.NewPtr(types.Int32Type)
	pt := typestate.PointsTo(false, typestate.Ref{Loc: "x"})
	if !Followable(ts(ptr, pt, typestate.PermF)) {
		t.Error("pointer with f should be followable")
	}
	if Followable(ts(ptr, pt, typestate.PermO)) {
		t.Error("pointer without f should not be followable")
	}
	if Followable(ts(types.Int32Type, typestate.InitState, typestate.PermF)) {
		t.Error("an integer is never followable, even with f")
	}
	arr := types.NewArrayBase(types.Int32Type, types.SymBound("n"))
	if !Followable(ts(arr, pt, typestate.PermF)) {
		t.Error("array-base pointers are followable")
	}
}

func TestExecutable(t *testing.T) {
	fn := types.NewFunc([]*types.Type{types.Int32Type}, types.Int32Type)
	pt := typestate.PointsTo(false, typestate.Ref{Loc: "f"})
	if !Executable(ts(fn, pt, typestate.PermX)) {
		t.Error("function pointer with x should be executable")
	}
	if Executable(ts(fn, pt, typestate.PermF|typestate.PermO)) {
		t.Error("function pointer without x should not be executable")
	}
	if Executable(ts(types.NewPtr(types.Int32Type), pt, typestate.PermX)) {
		t.Error("data pointer is never executable")
	}
}

func world(t *testing.T) *typestate.World {
	t.Helper()
	w := typestate.NewWorld()
	if err := w.Add(&typestate.AbsLoc{Name: "ro", Size: 4, Align: 4, Readable: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(&typestate.AbsLoc{Name: "rw", Size: 4, Align: 4, Readable: true, Writable: true}); err != nil {
		t.Fatal(err)
	}
	w.AddReg("%o0")
	return w
}

func TestReadableWritable(t *testing.T) {
	w := world(t)
	if !Readable(w, "ro") || !Readable(w, "rw") || !Readable(w, "%o0") {
		t.Error("readable predicates wrong")
	}
	if Writable(w, "ro") {
		t.Error("ro should not be writable")
	}
	if !Writable(w, "rw") || !Writable(w, "%o0") {
		t.Error("rw and registers should be writable")
	}
	if Readable(w, "nosuch") || Writable(w, "nosuch") {
		t.Error("unknown locations should be neither")
	}
}

func TestInitialized(t *testing.T) {
	if Initialized(ts(types.Int32Type, typestate.UninitState, typestate.PermO)) {
		t.Error("uninit should not be Initialized")
	}
	if !Initialized(ts(types.Int32Type, typestate.InitState, typestate.PermO)) {
		t.Error("init should be Initialized")
	}
	if !Initialized(ts(types.NewPtr(types.Int32Type),
		typestate.PointsTo(true), typestate.PermO)) {
		t.Error("a pointer value (even null) is an initialized value")
	}
}

func TestAssignable(t *testing.T) {
	w := world(t)
	intVal := ts(types.Int32Type, typestate.InitState, typestate.PermO)
	if !Assignable(w, intVal, "rw", types.Int32Type) {
		t.Error("int into rw int location should be assignable")
	}
	if Assignable(w, intVal, "ro", types.Int32Type) {
		t.Error("read-only location should not be assignable")
	}
	if Assignable(w, intVal, "rw", types.NewPtr(types.Int32Type)) {
		t.Error("int into pointer location should not be assignable")
	}
	bot := ts(types.BottomType, typestate.BottomState, 0)
	if Assignable(w, bot, "rw", types.Int32Type) {
		t.Error("bottom value should not be assignable")
	}
	if Assignable(w, intVal, "rw", nil) {
		t.Error("nil location type should not be assignable")
	}
	// Subtype narrowing of grounds is allowed (footnote 2).
	byteVal := ts(types.Int8Type, typestate.InitState, typestate.PermO)
	if Assignable(w, byteVal, "rw", types.Int32Type) {
		t.Error("size mismatch (1-byte value into 4-byte location) should fail")
	}
}

func TestAlignOK(t *testing.T) {
	if !AlignOK(8, 4) || !AlignOK(4, 4) || !AlignOK(4, 1) || !AlignOK(0, 1) {
		t.Error("AlignOK false negatives")
	}
	if AlignOK(2, 4) || AlignOK(0, 4) {
		t.Error("AlignOK false positives")
	}
}
