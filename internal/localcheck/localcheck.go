// Package localcheck implements the safety predicates of Section 4.3 that
// can be validated using typestate information alone (Phase 4 of the
// analysis): readable, writable, operable, followable, executable, and
// assignable, plus the static alignment helper.
package localcheck

import (
	"mcsafe/internal/types"
	"mcsafe/internal/typestate"
)

// Operable reports whether a value may be examined, copied, and operated
// upon: o ∈ A(l) and S(l) ∉ {[u], ⊥s} (Section 4.3).
func Operable(ts typestate.Typestate) bool {
	if !ts.Access.Has(typestate.PermO) {
		return false
	}
	switch ts.State.Kind {
	case typestate.StateInit, typestate.StatePointsTo:
		return true
	}
	return false
}

// Followable reports whether a value is a pointer that may be
// dereferenced: f ∈ A(l) and T(l) is a pointer type.
func Followable(ts typestate.Typestate) bool {
	return ts.Access.Has(typestate.PermF) && ts.Type.IsPointer()
}

// Executable reports whether a value is a function pointer that may be
// called.
func Executable(ts typestate.Typestate) bool {
	return ts.Access.Has(typestate.PermX) && ts.Type.Kind == types.Func
}

// Readable reports whether an abstract location may be read.
func Readable(w *typestate.World, loc string) bool {
	l, ok := w.Lookup(loc)
	return ok && (l.Readable || l.IsReg)
}

// Writable reports whether an abstract location may be written.
func Writable(w *typestate.World, loc string) bool {
	l, ok := w.Lookup(loc)
	return ok && (l.Writable || l.IsReg)
}

// Initialized reports whether the value stored at a location may be read
// (it is unsafe to read a location holding an uninitialized value).
func Initialized(ts typestate.Typestate) bool {
	return ts.State.Initialized()
}

// Assignable reports whether a value of typestate m may be stored into
// abstract location l of declared type lt: writable(l), the types agree
// (the stored type is at least as precise as the location's), and the
// value's size matches the location (Section 4.3).
func Assignable(w *typestate.World, m typestate.Typestate, loc string, lt *types.Type) bool {
	if !Writable(w, loc) {
		return false
	}
	if lt == nil {
		return false
	}
	l, ok := w.Lookup(loc)
	if !ok {
		return false
	}
	if m.Type.Kind == types.Bottom || m.Type.Kind == types.Top {
		return false
	}
	if !types.LE(m.Type, lt) && !m.Type.Equal(lt) {
		// Pointer stores must match the declared pointee exactly;
		// scalar stores may narrow (subtyping).
		return false
	}
	if m.Type.Size() != l.Size && l.Size != 0 {
		return false
	}
	return true
}

// AlignOK reports align(A, n): the statically known alignment A is a
// multiple of n.
func AlignOK(a, n int) bool {
	if n <= 1 {
		return true
	}
	return a > 0 && a%n == 0
}
