package gen

// The unit idioms. Every unit is a self-contained extension routine:
// it starts at its dispatch label, touches host data only through the
// guards the checker's invariant synthesis is known to discharge, and
// returns with retl (or ret/restore for windowed units). Units use
// %g1–%g5 and %o5 as scratch; %l registers are never written, reserving
// them as the uninitialized source for the uninit plant.
//
// Planted variants are minimal perturbations of the safe idiom — one
// opcode or immediate — so an unsafe fixture differs from its safe
// sibling exactly at the violation site.

var binops = []string{"add", "sub", "xor", "and", "or"}

func (g *generator) binop() string { return binops[g.rng.Intn(len(binops))] }

// loopRead is the Sum idiom: a counted loop reading arr[i] for
// i in [0, n). The bounds proof needs the synthesized invariant
// %g3 < n ∧ %o1 = n (paper §5.2.2).
//
// kind OOB flips the back-edge test bl→ble so the index reaches n and
// the upper-bound condition 4i ≤ 4n−4 fails. kind Align halves the
// element stride (sll 2→1) so the index 2i stays in bounds for n ≥ 1
// but the word-alignment condition 4 | idx fails.
func (g *generator) loopRead(i int, kind Kind) {
	acc := g.rng.Intn(2) == 0
	stride := 2
	if kind == Align {
		stride = 1
	}
	back := "bl"
	if kind == OOB {
		back = "ble"
	}
	g.label("u%d", i)
	g.ins("clr %%g3")
	g.ins("cmp %%g3,%%o1")
	g.ins("bge d%d", i)
	if acc {
		g.ins("clr %%g4")
	} else {
		g.ins("nop")
	}
	g.label("l%d", i)
	g.ins("sll %%g3,%d,%%g2", stride)
	g.ins("ld [%%o2+%%g2],%%g2")
	if acc {
		g.ins("add %%g4,%%g2,%%g4")
	}
	g.ins("inc %%g3")
	g.ins("cmp %%g3,%%o1")
	g.ins("%s l%d", back, i)
	g.ins("nop")
	g.label("d%d", i)
	g.ins("retl")
	g.ins("nop")
}

// loopWrite is the store half of the BubbleSort idiom: a counted loop
// writing a running value into arr[i] for i in [0, n).
func (g *generator) loopWrite(i int) {
	step := 1 + g.rng.Intn(9)
	g.label("u%d", i)
	g.ins("clr %%g3")
	g.ins("cmp %%g3,%%o1")
	g.ins("bge d%d", i)
	g.ins("mov %%o0,%%g4")
	g.label("l%d", i)
	g.ins("sll %%g3,2,%%g2")
	g.ins("st %%g4,[%%o2+%%g2]")
	g.ins("inc %%g3")
	g.ins("add %%g4,%d,%%g4", step)
	g.ins("cmp %%g3,%%o1")
	g.ins("bl l%d", i)
	g.ins("nop")
	g.label("d%d", i)
	g.ins("retl")
	g.ins("nop")
}

// structWalk is the StartTimer idiom: field reads and writes through
// the non-null record pointer %o3 (srec: a+0, b+4, c+8, d+12).
func (g *generator) structWalk(i int) {
	g.label("u%d", i)
	g.ins("ld [%%o3+0],%%g1")
	g.ins("ld [%%o3+4],%%g2")
	g.ins("%s %%g1,%%g2,%%g3", g.binop())
	g.ins("st %%g3,[%%o3+8]")
	g.ins("ld [%%o3+12],%%g4")
	g.ins("%s %%g4,%%g1,%%g4", g.binop())
	g.ins("st %%g4,[%%o3+12]")
	g.ins("retl")
	g.ins("nop")
}

// ptrChase walks the nullable list %o4, guarding each dereference with
// a null test; the per-iteration null condition discharges against the
// dominating be-not-taken path guard. kind NullPtr moves the
// dereference ahead of the guard (the PagingPolicy bug), so the very
// first load can fault on a null head.
func (g *generator) ptrChase(i int, kind Kind) {
	g.label("u%d", i)
	g.ins("mov %%o4,%%g1")
	g.ins("clr %%g2")
	g.label("c%d", i)
	if kind == NullPtr {
		g.ins("ld [%%g1+0],%%g3") // no null guard: the planted bug
		g.ins("%s %%g2,%%g3,%%g2", g.binop())
		g.ins("ld [%%g1+4],%%g1")
		g.ins("cmp %%g1,%%g0")
		g.ins("bne c%d", i)
		g.ins("nop")
	} else {
		g.ins("cmp %%g1,%%g0")
		g.ins("be d%d", i)
		g.ins("nop")
		g.ins("ld [%%g1+0],%%g3")
		g.ins("%s %%g2,%%g3,%%g2", g.binop())
		g.ins("ld [%%g1+4],%%g1")
		g.ins("ba c%d", i)
		g.ins("nop")
		g.label("d%d", i)
	}
	g.ins("retl")
	g.ins("nop")
}

// callTree is the register-window idiom: the unit opens a frame,
// calls a generated callee (which may itself open a frame and call a
// leaf, for a depth-two window tree), and returns through restore.
// kind Stack shrinks the unit's frame to -92 bytes — still past the
// 64-byte register-save minimum but not doubleword-aligned, which the
// save check rejects.
func (g *generator) callTree(i int, kind Kind) {
	frame := -96
	if kind == Stack {
		frame = -92
	}
	deep := g.rng.Intn(2) == 0
	g.label("u%d", i)
	g.ins("save %%sp,%d,%%sp", frame)
	g.ins("mov %%i1,%%o0")
	g.ins("call f%d", i)
	g.ins("nop")
	g.ins("mov %%o0,%%g1")
	g.ins("ret")
	g.ins("restore")
	if deep {
		g.plabel("f%d", i)
		g.pins("save %%sp,-96,%%sp")
		g.pins("mov %%i0,%%o0")
		g.pins("call w%d", i)
		g.pins("nop")
		g.pins("mov %%o0,%%i0")
		g.pins("ret")
		g.pins("restore")
		g.plabel("w%d", i)
		g.pins("%s %%o0,%%o0,%%o0", g.binop())
		g.pins("retl")
		g.pins("nop")
	} else {
		g.plabel("f%d", i)
		g.pins("%s %%o0,%%o0,%%o1", g.binop())
		g.pins("sll %%o1,2,%%o1")
		g.pins("retl")
		g.pins("mov %%o1,%%o0")
	}
}

// aluFill is straight-line register arithmetic: n scheduled binary ops
// over scratch registers, every operand written before read. It doubles
// as the size governor — the final unit of every program is an aluFill
// sized to hit the Config target. With uninit set, the last op reads a
// local register the entry procedure never writes, tripping the
// uninitialized-operand local check at a known site.
func (g *generator) aluFill(i, n int, uninit bool) {
	if n < 3 {
		n = 3
	}
	regs := []string{"%g1", "%g2", "%g3", "%g4", "%g5", "%o5"}
	g.label("u%d", i)
	g.ins("mov %d,%%g1", g.rng.Intn(1024))
	g.ins("mov %d,%%g2", g.rng.Intn(1024))
	inited := 2 // regs[0] and regs[1] are written; grow the set in order
	for k := 0; k < n; k++ {
		if uninit && k == n-1 {
			g.ins("add %%l%d,1,%%o5", g.rng.Intn(8)) // %l* is never written
			break
		}
		avail := inited // sources come from registers already written
		dst := g.rng.Intn(len(regs))
		if dst > avail {
			dst = avail
		}
		if dst == avail {
			inited++
		}
		src := regs[g.rng.Intn(avail)]
		switch g.rng.Intn(4) {
		case 0:
			g.ins("sll %s,%d,%s", src, 1+g.rng.Intn(7), regs[dst])
		case 1:
			g.ins("srl %s,%d,%s", src, 1+g.rng.Intn(7), regs[dst])
		case 2:
			g.ins("%s %s,%d,%s", g.binop(), src, g.rng.Intn(512), regs[dst])
		default:
			g.ins("%s %s,%s,%s", g.binop(), src, regs[g.rng.Intn(avail)], regs[dst])
		}
	}
	g.ins("retl")
	g.ins("nop")
}
