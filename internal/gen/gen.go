// Package gen is a seed-deterministic generator of synthetic SPARC
// programs with constructed ground truth, in the gcc -O idiom of the
// Figure 9 corpus: bounded loops over arrays, register-window call
// trees, struct walks, and pointer chases, padded with straight-line
// arithmetic. Programs are either safe by construction — every memory
// access guarded the way the checker's invariant synthesis is known to
// discharge — or carry exactly one planted, labeled violation
// (oob/align/uninit/nullptr/stack) at a known site.
//
// The corpus scales two orders of magnitude beyond the hand-ported
// paper programs (10^3–10^4 instructions) while keeping checking cost
// near-linear: the program is a binary dispatch tree over independent
// units, so every safety condition's backward slice is one unit plus a
// logarithmic dispatch prefix, never the whole program.
//
// Generation is a pure function of Config: the same Config yields a
// byte-identical Fixture on every call, on every platform — shard
// assignment, conformance manifests, and fuzz replay all rely on this.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"mcsafe/internal/isa"
	"mcsafe/internal/policy"
	"mcsafe/internal/sparc"
)

// Kind classifies a fixture's constructed ground truth: Safe, or the
// stable Violation.Code of the planted violation.
type Kind string

const (
	Safe    Kind = "safe"
	OOB     Kind = "oob"     // loop bound off by one: index reaches n
	Align   Kind = "align"   // stride-2 indexing into a word array
	Uninit  Kind = "uninit"  // arithmetic on a never-written register
	NullPtr Kind = "nullptr" // list-head dereference without a null guard
	Stack   Kind = "stack"   // save with a misaligned frame size
)

// Kinds lists every generatable kind, Safe first, in the stable order
// planting cycles through.
var Kinds = []Kind{Safe, OOB, Align, Uninit, NullPtr, Stack}

// Config selects one synthetic program.
type Config struct {
	// Seed drives every random choice. Two Configs with equal fields
	// produce byte-identical fixtures.
	Seed int64
	// Size is the target instruction count; the emitted program lands
	// within one unit (~30 instructions) of it. Values below MinSize
	// are raised to MinSize.
	Size int
	// Kind is the constructed ground truth (Safe when zero-valued).
	Kind Kind
}

// MinSize is the smallest generatable program: one dispatch leaf plus
// one unit.
const MinSize = 16

// Fixture is one generated program with its ground truth.
type Fixture struct {
	// Name is unique per Config and stable: g<seed>-<kind>-<size>.
	Name string
	Seed int64
	Size int
	Kind Kind
	// Arch names the instruction-set front-end the fixture is written
	// for. The generator emits SPARC today; the tag keeps the harness
	// ready for a future RV32I generator.
	Arch string

	// Asm is the SPARC assembly source; Spec the policy text; Entry the
	// entry label.
	Asm   string
	Spec  string
	Entry string

	// WantSafe is the ground-truth verdict. When false, WantCode is the
	// stable Violation.Code the checker must charge, and PlantUnit the
	// label of the unit holding the planted violation.
	WantSafe  bool
	WantCode  string
	PlantUnit string

	// Insns is the emitted instruction count (assembly lines, after
	// synthetic-instruction expansion it may grow by a few).
	Insns int
	// Units is the number of dispatch units emitted.
	Units int
}

// Generate emits the fixture selected by cfg. It never fails: every
// Config yields a program that assembles and decodes.
func Generate(cfg Config) *Fixture {
	if cfg.Kind == "" {
		cfg.Kind = Safe
	}
	if cfg.Size < MinSize {
		cfg.Size = MinSize
	}
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed ^ 0x5e3779b97f4a7c15)),
	}
	return g.run()
}

// Build assembles the fixture and parses its specification, exactly as
// a Benchmark does.
func (f *Fixture) Build() (*isa.Program, *policy.Spec, error) {
	spec, err := policy.Parse(f.Spec, sparc.Arch)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: spec: %v", f.Name, err)
	}
	prog, err := sparc.Arch.Assemble(f.Asm, isa.AsmOptions{
		DataSyms: spec.DataSyms(),
		Entry:    f.Entry,
		Externs:  spec.TrustedNames(),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: asm: %v", f.Name, err)
	}
	return prog, spec, nil
}

// BuildNative assembles the fixture into its native SPARC container —
// for the differential-test oracle's concrete executions.
func (f *Fixture) BuildNative() (*sparc.Program, *policy.Spec, error) {
	spec, err := policy.Parse(f.Spec, sparc.Arch)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: spec: %v", f.Name, err)
	}
	prog, err := sparc.Assemble(f.Asm, sparc.AsmOptions{
		DataSyms: spec.DataSyms(),
		Entry:    f.Entry,
		Externs:  spec.TrustedNames(),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: asm: %v", f.Name, err)
	}
	return prog, spec, nil
}

// specText is the host specification every generated program is checked
// against: a host integer array with a symbolic bound, a four-field
// host record, and a nullable linked list — the three data shapes the
// unit idioms exercise. The dispatch selector arrives in %o0.
const specText = `# generated by internal/gen — fixed host world for the synthetic corpus
struct srec { a int ; b int ; c int ; d int }
struct snode { v int ; next ptr<snode> }
region V
region H
loc e int state init region V summary
val arr int[n] state {e} region V
loc ob srec region H fields(a=init, b=init, c=init, d=init)
val op ptr<srec> state {ob} region H
loc nd snode region H summary fields(v=init, next={nd,null})
val hd ptr<snode> state {nd,null} region H
sym sel
constraint n >= 1
invoke %o0 = sel
invoke %o1 = n
invoke %o2 = arr
invoke %o3 = op
invoke %o4 = hd
allow V int rwo
allow V int[n] rfo
allow H srec.a rwo
allow H srec.b rwo
allow H srec.c rwo
allow H srec.d rwo
allow H snode.v ro
allow H snode.next rfo
allow H ptr<srec> rfo
allow H ptr<snode> rfo
`

// Spec returns the (fixed) host specification text of the generated
// corpus.
func Spec() string { return specText }

type generator struct {
	cfg   Config
	rng   *rand.Rand
	text  strings.Builder // dispatch + unit bodies (the entry procedure)
	procs strings.Builder // callee procedures, appended after the entry
	n     int             // instructions emitted across both builders
}

// avgUnit is the planning estimate of instructions per unit including
// its share of the dispatch tree. It matches the largest unit body (a
// depth-two call tree) so no unit mix overshoots the target; the final
// unit is an arithmetic filler sized to absorb the slack.
const avgUnit = 18

func (g *generator) run() *Fixture {
	size := g.cfg.Size
	k := size / avgUnit
	if k < 1 {
		k = 1
	}

	// The last unit is the size-absorbing filler, so a plant goes in one
	// of the earlier units (or unit 0 of a single-unit program). The
	// draw happens unconditionally to keep the rng stream — and with it
	// every later choice — identical across kinds of the same seed/size.
	plant := -1
	draw := 0
	if k > 1 {
		draw = g.rng.Intn(k - 1)
	}
	if g.cfg.Kind != Safe {
		plant = draw
	}

	g.text.WriteString("entry:\n")
	g.dispatch(0, k)
	plantUnit := ""
	for i := 0; i < k; i++ {
		switch {
		case i == plant:
			plantUnit = fmt.Sprintf("u%d", i)
			g.plantUnit(i, g.cfg.Kind)
		case i == k-1 && k > 1:
			g.aluFill(i, size-g.n-4, false)
		default:
			g.safeUnit(i)
		}
	}

	f := &Fixture{
		Name:      fmt.Sprintf("g%06d-%s-%d", g.cfg.Seed, g.cfg.Kind, size),
		Seed:      g.cfg.Seed,
		Size:      size,
		Kind:      g.cfg.Kind,
		Arch:      "sparc",
		Asm:       g.text.String() + g.procs.String(),
		Spec:      specText,
		Entry:     "entry",
		WantSafe:  g.cfg.Kind == Safe,
		PlantUnit: plantUnit,
		Insns:     g.n,
		Units:     k,
	}
	if !f.WantSafe {
		f.WantCode = string(g.cfg.Kind)
	}
	return f
}

// ins emits one instruction line into the entry text.
func (g *generator) ins(format string, args ...any) {
	g.text.WriteString("\t")
	fmt.Fprintf(&g.text, format, args...)
	g.text.WriteString("\n")
	g.n++
}

// pins emits one instruction line into the procedure area.
func (g *generator) pins(format string, args ...any) {
	g.procs.WriteString("\t")
	fmt.Fprintf(&g.procs, format, args...)
	g.procs.WriteString("\n")
	g.n++
}

func (g *generator) label(format string, args ...any) {
	fmt.Fprintf(&g.text, format, args...)
	g.text.WriteString(":\n")
}

func (g *generator) plabel(format string, args ...any) {
	fmt.Fprintf(&g.procs, format, args...)
	g.procs.WriteString(":\n")
}

// dispatch emits a binary decision tree routing selector %o0 in
// [lo, hi) to unit labels. Backward slices through the dispatcher are
// logarithmic in the unit count, which is what keeps whole-program
// checking near-linear. Selector values outside [0, hi) land in the
// nearest boundary unit, so the tree is total.
func (g *generator) dispatch(lo, hi int) {
	if hi-lo == 1 {
		g.ins("ba u%d", lo)
		g.ins("nop")
		return
	}
	mid := (lo + hi) / 2
	g.ins("cmp %%o0,%d", mid)
	g.ins("bl L%d_%d", lo, mid)
	g.ins("nop")
	g.dispatch(mid, hi)
	g.label("L%d_%d", lo, mid)
	g.dispatch(lo, mid)
}

// safeUnit emits one randomly chosen safe unit.
func (g *generator) safeUnit(i int) {
	switch g.rng.Intn(13) {
	case 0, 1, 2:
		g.loopRead(i, Safe)
	case 3, 4:
		g.loopWrite(i)
	case 5, 6:
		g.structWalk(i)
	case 7, 8:
		g.ptrChase(i, Safe)
	case 9, 10:
		g.callTree(i, Safe)
	default:
		g.aluFill(i, 3+g.rng.Intn(12), false)
	}
}

// plantUnit emits the unit carrying the labeled violation for kind.
func (g *generator) plantUnit(i int, kind Kind) {
	switch kind {
	case OOB, Align:
		g.loopRead(i, kind)
	case Uninit:
		g.aluFill(i, 3+g.rng.Intn(12), true)
	case NullPtr:
		g.ptrChase(i, kind)
	case Stack:
		g.callTree(i, kind)
	default:
		g.safeUnit(i)
	}
}
