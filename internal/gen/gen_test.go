package gen_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"mcsafe"
	"mcsafe/internal/gen"
)

// checkFixture runs the checker over a fixture and returns the result.
func checkFixture(t *testing.T, f *gen.Fixture) *mcsafe.Result {
	t.Helper()
	spec, err := mcsafe.ParseSpec(f.Spec)
	if err != nil {
		t.Fatalf("%s: ParseSpec: %v", f.Name, err)
	}
	prog, err := mcsafe.Assemble(f.Asm, spec, f.Entry)
	if err != nil {
		t.Fatalf("%s: Assemble: %v\n%s", f.Name, err, f.Asm)
	}
	res, err := mcsafe.New().Check(context.Background(), prog, spec)
	if err != nil {
		t.Fatalf("%s: Check: %v", f.Name, err)
	}
	return res
}

// agree asserts the checker verdict matches the fixture's constructed
// ground truth: safe fixtures check safe; planted fixtures are unsafe
// with the planted code among the reported violation codes.
func agree(t *testing.T, f *gen.Fixture, res *mcsafe.Result) {
	t.Helper()
	if f.WantSafe {
		if !res.Safe {
			t.Errorf("%s: want safe, got %d violations; first: %+v",
				f.Name, len(res.Violations), res.Violations[0])
		}
		return
	}
	if res.Safe {
		t.Errorf("%s: want unsafe (%s planted in %s), checker says safe",
			f.Name, f.WantCode, f.PlantUnit)
		return
	}
	for _, v := range res.Violations {
		if v.Code == f.WantCode {
			return
		}
	}
	t.Errorf("%s: planted %s not reported; got %+v", f.Name, f.WantCode, res.Violations)
}

// TestKindsSmoke exercises every kind at two sizes and a few seeds —
// the fast end-to-end gate on the generator's constructed ground truth.
func TestKindsSmoke(t *testing.T) {
	for _, kind := range gen.Kinds {
		for _, size := range []int{64, 220} {
			for seed := int64(0); seed < 3; seed++ {
				f := gen.Generate(gen.Config{Seed: seed, Size: size, Kind: kind})
				res := checkFixture(t, f)
				agree(t, f, res)
				if t.Failed() {
					t.Logf("asm for %s:\n%s", f.Name, f.Asm)
					t.FailNow()
				}
			}
		}
	}
}

// TestGroundTruthExhaustiveSmall is the property test behind the
// generated corpus: exhaustively over seeds 0..500 at ≤64-instruction
// programs, safe fixtures check safe and planted fixtures are reported
// unsafe with the planted Violation.Code. Each seed checks its safe
// fixture plus one planted kind (cycling through all five), so every
// plant is exercised at ~100 distinct seeds. Seeds are striped across
// parallel subtests; striping only changes scheduling, never the
// fixtures.
func TestGroundTruthExhaustiveSmall(t *testing.T) {
	maxSeed := int64(500)
	if raceEnabled || testing.Short() {
		maxSeed = 60 // -race is ~10x slower; keep every plant covered
	}
	const stripes = 8
	for s := 0; s < stripes; s++ {
		t.Run(fmt.Sprintf("stripe%d", s), func(t *testing.T) {
			t.Parallel()
			for seed := int64(s); seed <= maxSeed; seed += stripes {
				planted := gen.Kinds[1+int(seed)%(len(gen.Kinds)-1)]
				for _, kind := range []gen.Kind{gen.Safe, planted} {
					f := gen.Generate(gen.Config{Seed: seed, Size: 64, Kind: kind})
					if f.Insns > 72 {
						t.Fatalf("%s: %d instructions, want ≤72 for target 64", f.Name, f.Insns)
					}
					agree(t, f, checkFixture(t, f))
				}
			}
		})
	}
}

// TestDeterminism pins the generator's core contract: the same Config
// yields a byte-identical fixture — assembly, spec, ground truth, and
// counters — on every call. Shard assignment, the conformance manifest,
// and fuzz replay all depend on this.
func TestDeterminism(t *testing.T) {
	for seed := int64(0); seed <= 500; seed++ {
		for _, kind := range gen.Kinds {
			cfg := gen.Config{Seed: seed, Size: 64 + int(seed%5)*97, Kind: kind}
			a, b := gen.Generate(cfg), gen.Generate(cfg)
			if *a != *b {
				t.Fatalf("seed %d kind %s: two generations differ", seed, kind)
			}
			if kind != gen.Safe {
				if a.WantSafe || a.WantCode != string(kind) || a.PlantUnit == "" {
					t.Fatalf("%s: bad ground-truth labeling: %+v", a.Name, a)
				}
				if !strings.Contains(a.Asm, a.PlantUnit+":") {
					t.Fatalf("%s: plant unit %s not in program", a.Name, a.PlantUnit)
				}
			} else if !a.WantSafe || a.WantCode != "" {
				t.Fatalf("%s: safe fixture mislabeled: %+v", a.Name, a)
			}
		}
	}
}

// TestEveryConfigBuilds sweeps a broad Config space — including
// degenerate sizes — and requires every fixture to assemble and parse.
func TestEveryConfigBuilds(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, size := range []int{0, 1, gen.MinSize, 33, 100, 700} {
			for _, kind := range gen.Kinds {
				f := gen.Generate(gen.Config{Seed: seed, Size: size, Kind: kind})
				if _, _, err := f.Build(); err != nil {
					t.Fatalf("Build: %v", err)
				}
			}
		}
	}
}
