//go:build !race

package gen_test

// raceEnabled mirrors the root package's race gate: the exhaustive
// ground-truth sweep trims its seed range under the race detector.
const raceEnabled = false
