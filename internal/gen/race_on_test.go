//go:build race

package gen_test

// raceEnabled reports whether the race detector is compiled in; the
// exhaustive ground-truth sweep trims its seed range under -race.
const raceEnabled = true
