package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGroundSizesAndAlignment(t *testing.T) {
	cases := []struct {
		ty    *Type
		size  int
		align int
	}{
		{Int8Type, 1, 1},
		{UInt8Type, 1, 1},
		{Int16Type, 2, 2},
		{UInt16Type, 2, 2},
		{Int32Type, 4, 4},
		{UInt32Type, 4, 4},
		{NewPtr(Int32Type), 4, 4},
		{NewArrayBase(Int32Type, SymBound("n")), 4, 4},
	}
	for _, c := range cases {
		if c.ty.Size() != c.size {
			t.Errorf("%s: size = %d, want %d", c.ty, c.ty.Size(), c.size)
		}
		if c.ty.Align() != c.align {
			t.Errorf("%s: align = %d, want %d", c.ty, c.ty.Align(), c.align)
		}
	}
}

func TestGroundByName(t *testing.T) {
	for name, want := range map[string]*Type{
		"int": Int32Type, "int32": Int32Type, "char": Int8Type,
		"uint": UInt32Type, "byte": UInt8Type, "short": Int16Type,
	} {
		got, ok := GroundByName(name)
		if !ok || !got.Equal(want) {
			t.Errorf("GroundByName(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	if _, ok := GroundByName("float"); ok {
		t.Error("GroundByName(float) should fail")
	}
}

func TestMeetPaperRules(t *testing.T) {
	n := SymBound("n")
	m := SymBound("m")
	intArrN := NewArrayBase(Int32Type, n)
	intArrInN := NewArrayIn(Int32Type, n)
	intArrM := NewArrayBase(Int32Type, m)
	intPtr := NewPtr(Int32Type)

	cases := []struct {
		a, b, want *Type
		name       string
	}{
		{Int32Type, Int32Type, Int32Type, "identical grounds"},
		{Int32Type, NewAbstract("tid_t", 4, 4), BottomType, "different non-pointers"},
		{intPtr, NewPtr(Int8Type), BottomType, "different pointers"},
		{intPtr, Int32Type, BottomType, "pointer with non-pointer"},
		{intArrN, intArrInN, intArrInN, "t[n] meet t(n] = t(n]"},
		{intArrInN, intArrN, intArrInN, "t(n] meet t[n] = t(n]"},
		{intArrN, intArrM, BottomType, "t[n] meet t[m] = bottom"},
		{intArrInN, NewArrayIn(Int32Type, m), BottomType, "t(n] meet t(m] = bottom"},
		{TopType, intArrN, intArrN, "top is identity"},
		{BottomType, intArrN, BottomType, "bottom absorbs"},
		// Footnote 2 subtyping refinements.
		{Int8Type, Int32Type, Int8Type, "int8 meet int32 = int8"},
		{UInt8Type, UInt32Type, UInt8Type, "uint8 meet uint32 = uint8"},
		{UInt8Type, Int8Type, BottomType, "uint8 meet int8 = bottom"},
		{UInt8Type, Int32Type, BottomType, "cross-signedness meets to bottom"},
		{UInt32Type, Int32Type, BottomType, "uint32 meet int32 = bottom"},
	}
	for _, c := range cases {
		if got := Meet(c.a, c.b); !got.Equal(c.want) {
			t.Errorf("%s: Meet(%s, %s) = %s, want %s", c.name, c.a, c.b, got, c.want)
		}
	}
}

// typeGen draws a random type from a small universe for lattice property
// tests.
func typeGen(r *rand.Rand) *Type {
	n := SymBound("n")
	universe := []*Type{
		TopType, BottomType,
		Int8Type, UInt8Type, Int16Type, UInt16Type, Int32Type, UInt32Type,
		NewPtr(Int32Type), NewPtr(Int8Type),
		NewArrayBase(Int32Type, n), NewArrayIn(Int32Type, n),
		NewArrayBase(Int32Type, ConstBound(16)), NewArrayIn(Int32Type, ConstBound(16)),
		NewAbstract("mutex", 8, 4),
		LayoutStruct("thread", []string{"tid", "lwpid", "next"},
			[]*Type{Int32Type, Int32Type, NewPtr(Int32Type)}),
	}
	return universe[r.Intn(len(universe))]
}

func TestMeetLatticeProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	r := rand.New(rand.NewSource(1))

	commutative := func() bool {
		a, b := typeGen(r), typeGen(r)
		return Meet(a, b).Equal(Meet(b, a))
	}
	if err := quick.Check(func(uint8) bool { return commutative() }, cfg); err != nil {
		t.Error("meet not commutative:", err)
	}

	idempotent := func() bool {
		a := typeGen(r)
		return Meet(a, a).Equal(a)
	}
	if err := quick.Check(func(uint8) bool { return idempotent() }, cfg); err != nil {
		t.Error("meet not idempotent:", err)
	}

	associative := func() bool {
		a, b, c := typeGen(r), typeGen(r), typeGen(r)
		return Meet(Meet(a, b), c).Equal(Meet(a, Meet(b, c)))
	}
	if err := quick.Check(func(uint8) bool { return associative() }, cfg); err != nil {
		t.Error("meet not associative:", err)
	}

	lowerBound := func() bool {
		a, b := typeGen(r), typeGen(r)
		m := Meet(a, b)
		return LE(m, a) && LE(m, b)
	}
	if err := quick.Check(func(uint8) bool { return lowerBound() }, cfg); err != nil {
		t.Error("meet not a lower bound:", err)
	}
}

func TestLayoutStruct(t *testing.T) {
	// struct thread { int tid; int lwpid; struct thread *next; }
	th := LayoutStruct("thread", []string{"tid", "lwpid", "next"},
		[]*Type{Int32Type, Int32Type, NewPtr(Int32Type)})
	if th.Size() != 12 || th.Align() != 4 {
		t.Fatalf("thread size/align = %d/%d, want 12/4", th.Size(), th.Align())
	}
	if th.Members[1].Offset != 4 || th.Members[2].Offset != 8 {
		t.Fatalf("offsets = %v", th.Members)
	}

	// Padding: struct { char c; int x; short s; } has size 12, align 4.
	p := LayoutStruct("p", []string{"c", "x", "s"},
		[]*Type{Int8Type, Int32Type, Int16Type})
	if p.Size() != 12 || p.Align() != 4 {
		t.Fatalf("padded size/align = %d/%d, want 12/4", p.Size(), p.Align())
	}
	if p.Members[1].Offset != 4 || p.Members[2].Offset != 8 {
		t.Fatalf("padded offsets = %v", p.Members)
	}
}

func TestLookUp(t *testing.T) {
	th := LayoutStruct("thread", []string{"tid", "lwpid", "next"},
		[]*Type{Int32Type, Int32Type, NewPtr(Int32Type)})

	fs := LookUp(th, 4, 4)
	if len(fs) != 1 || fs[0].Path != "lwpid" {
		t.Fatalf("LookUp(thread, 4, 4) = %v, want [lwpid]", fs)
	}
	if fs := LookUp(th, 8, 4); len(fs) != 1 || fs[0].Path != "next" || fs[0].Type.Kind != Ptr {
		t.Fatalf("LookUp(thread, 8, 4) = %v, want [next ptr]", fs)
	}
	if fs := LookUp(th, 2, 4); fs != nil {
		t.Fatalf("LookUp(thread, 2, 4) = %v, want nil (misaligned)", fs)
	}
	if fs := LookUp(th, 0, 2); fs != nil {
		t.Fatalf("LookUp(thread, 0, 2) = %v, want nil (wrong size)", fs)
	}

	// Nested aggregate.
	inner := LayoutStruct("pair", []string{"a", "b"}, []*Type{Int32Type, Int32Type})
	outer := LayoutStruct("box", []string{"hdr", "p"}, []*Type{Int32Type, inner})
	fs = LookUp(outer, 8, 4)
	if len(fs) != 1 || fs[0].Path != "p.b" {
		t.Fatalf("LookUp(box, 8, 4) = %v, want [p.b]", fs)
	}

	// Union: both members at offset 0.
	u := NewUnion("u", []Member{
		{Label: "i", Type: Int32Type, Offset: 0},
		{Label: "p", Type: NewPtr(Int32Type), Offset: 0},
	}, 4, 4)
	fs = LookUp(u, 0, 4)
	if len(fs) != 2 {
		t.Fatalf("LookUp(union, 0, 4) = %v, want two fields", fs)
	}

	// Scalar lookup of the whole object.
	fs = LookUp(Int32Type, 0, 4)
	if len(fs) != 1 || fs[0].Path != "" {
		t.Fatalf("LookUp(int, 0, 4) = %v", fs)
	}
}

func TestTypeString(t *testing.T) {
	n := SymBound("n")
	cases := map[string]*Type{
		"int32":      Int32Type,
		"int32[n]":   NewArrayBase(Int32Type, n),
		"int32(n]":   NewArrayIn(Int32Type, n),
		"int32 ptr":  NewPtr(Int32Type),
		"int32[16]":  NewArrayBase(Int32Type, ConstBound(16)),
		"struct s":   NewStruct("s", nil, 0, 1),
		"abstract m": NewAbstract("m", 4, 4),
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestFuncTypes(t *testing.T) {
	f := NewFunc([]*Type{Int32Type, NewPtr(Int32Type)}, Int32Type)
	if !f.IsPointer() {
		t.Error("function values should be pointer-like (addresses)")
	}
	g := NewFunc([]*Type{Int32Type, NewPtr(Int32Type)}, Int32Type)
	if !f.Equal(g) {
		t.Error("structurally equal function types should be Equal")
	}
	h := NewFunc([]*Type{Int32Type}, nil)
	if f.Equal(h) {
		t.Error("different function types should not be Equal")
	}
	if got := f.String(); got != "(int32, int32 ptr) -> int32" {
		t.Errorf("String() = %q", got)
	}
}
