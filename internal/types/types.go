// Package types implements the type system of Figure 4 of "Safety Checking
// of Machine Code" (Xu, Miller, Reps; PLDI 2000): ground types with a notion
// of subtyping, pointers, pointers to array bases t[n], pointers into the
// middle of arrays t(n], structs, unions, function types, named abstract
// types, and the lattice elements top and bottom. Types carry size and
// alignment, and form a meet semi-lattice under Meet.
package types

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates the variants of the type language of Figure 4.
type Kind int

const (
	// Bottom is the bottom type, the meet of incompatible types.
	Bottom Kind = iota
	// Top is the top type; every location starts at Top before
	// typestate propagation reaches it.
	Top
	// Ground is a machine-level scalar type (int8 ... uint32).
	Ground
	// Abstract is a host-declared opaque type: untrusted code may copy
	// values of an abstract type but cannot look inside them.
	Abstract
	// Ptr is "t ptr": a pointer to a single object of the element type.
	Ptr
	// ArrayBase is "t[n]": a pointer to the base of an array of n
	// elements of the element type.
	ArrayBase
	// ArrayIn is "t(n]": a pointer somewhere into the middle (or base)
	// of an array of n elements of the element type.
	ArrayIn
	// Struct is "s {m1, ..., mk}".
	Struct
	// Union is "u {|m1, ..., mk|}".
	Union
	// Func is "(t1, ..., tk) -> t".
	Func
)

// GroundKind enumerates the ground types. The numeric order is chosen so
// that widening conversions correspond to increasing rank within a
// signedness class.
type GroundKind int

const (
	Int8 GroundKind = iota
	UInt8
	Int16
	UInt16
	Int32
	UInt32
)

// Member is a struct or union member: a label, a member type, and a byte
// offset within the aggregate (always 0 for union members).
type Member struct {
	Label  string
	Type   *Type
	Offset int
}

// Bound is an array bound: either a compile-time constant or a symbolic
// name bound by the host's invocation specification (e.g. "n" in int[n]).
type Bound struct {
	Name  string // symbolic name; empty means constant
	Const int64  // value when Name == ""
}

// IsConst reports whether the bound is a compile-time constant.
func (b Bound) IsConst() bool { return b.Name == "" }

// Equal reports whether two bounds are identical.
func (b Bound) Equal(o Bound) bool { return b.Name == o.Name && b.Const == o.Const }

func (b Bound) String() string {
	if b.Name != "" {
		return b.Name
	}
	return fmt.Sprintf("%d", b.Const)
}

// ConstBound returns a constant array bound.
func ConstBound(n int64) Bound { return Bound{Const: n} }

// SymBound returns a symbolic array bound named by the host specification.
func SymBound(name string) Bound { return Bound{Name: name} }

// Type is a node in the type language of Figure 4. Types are immutable
// after construction; share freely.
type Type struct {
	Kind    Kind
	Grd     GroundKind // for Kind == Ground
	Name    string     // for Abstract, Struct, Union: the declared tag
	Elem    *Type      // for Ptr, ArrayBase, ArrayIn
	N       Bound      // for ArrayBase, ArrayIn
	Members []Member   // for Struct, Union
	Params  []*Type    // for Func
	Result  *Type      // for Func

	size  int // cached byte size
	align int // cached alignment
}

// Singleton lattice constants and common scalars.
var (
	TopType    = &Type{Kind: Top}
	BottomType = &Type{Kind: Bottom}

	Int8Type   = ground(Int8, 1)
	UInt8Type  = ground(UInt8, 1)
	Int16Type  = ground(Int16, 2)
	UInt16Type = ground(UInt16, 2)
	Int32Type  = ground(Int32, 4)
	UInt32Type = ground(UInt32, 4)
)

func ground(g GroundKind, size int) *Type {
	return &Type{Kind: Ground, Grd: g, size: size, align: size}
}

// GroundByName resolves a ground-type name used by the policy language.
func GroundByName(name string) (*Type, bool) {
	switch name {
	case "int8", "char":
		return Int8Type, true
	case "uint8", "uchar", "byte":
		return UInt8Type, true
	case "int16", "short":
		return Int16Type, true
	case "uint16", "ushort":
		return UInt16Type, true
	case "int32", "int":
		return Int32Type, true
	case "uint32", "uint", "word":
		return UInt32Type, true
	}
	return nil, false
}

// NewPtr returns the type "elem ptr".
func NewPtr(elem *Type) *Type {
	return &Type{Kind: Ptr, Elem: elem, size: 4, align: 4}
}

// NewArrayBase returns the type "elem[n]".
func NewArrayBase(elem *Type, n Bound) *Type {
	return &Type{Kind: ArrayBase, Elem: elem, N: n, size: 4, align: 4}
}

// NewArrayIn returns the type "elem(n]".
func NewArrayIn(elem *Type, n Bound) *Type {
	return &Type{Kind: ArrayIn, Elem: elem, N: n, size: 4, align: 4}
}

// NewAbstract returns a named abstract (opaque) type of the given size and
// alignment.
func NewAbstract(name string, size, align int) *Type {
	return &Type{Kind: Abstract, Name: name, size: size, align: align}
}

// NewStruct returns a struct type. Member offsets must already be laid out;
// size is the total size (including trailing padding) and align the
// aggregate alignment.
func NewStruct(name string, members []Member, size, align int) *Type {
	return &Type{Kind: Struct, Name: name, Members: members, size: size, align: align}
}

// NewUnion returns a union type; all members are at offset 0.
func NewUnion(name string, members []Member, size, align int) *Type {
	return &Type{Kind: Union, Name: name, Members: members, size: size, align: align}
}

// NewFunc returns the function type "(params) -> result". result may be nil
// for a function returning nothing.
func NewFunc(params []*Type, result *Type) *Type {
	return &Type{Kind: Func, Params: params, Result: result, size: 4, align: 4}
}

// LayoutStruct computes natural (SPARC V8 / System V) member offsets for
// the given labeled member types and returns the finished struct type.
func LayoutStruct(name string, labels []string, memberTypes []*Type) *Type {
	var members []Member
	off, maxAlign := 0, 1
	for i, mt := range memberTypes {
		a := mt.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = alignUp(off, a)
		members = append(members, Member{Label: labels[i], Type: mt, Offset: off})
		off += mt.Size()
	}
	return NewStruct(name, members, alignUp(off, maxAlign), maxAlign)
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Size returns the byte size of a value of this type. Pointers are 4 bytes
// (SPARC V8 is a 32-bit architecture). Top and Bottom have size 0.
func (t *Type) Size() int { return t.size }

// Align returns the required byte alignment of a value of this type.
func (t *Type) Align() int {
	if t.align == 0 {
		return 1
	}
	return t.align
}

// IsPointer reports whether values of this type are addresses that could
// be dereferenced (Ptr, ArrayBase, ArrayIn, or Func pointers).
func (t *Type) IsPointer() bool {
	switch t.Kind {
	case Ptr, ArrayBase, ArrayIn, Func:
		return true
	}
	return false
}

// IsScalar reports whether the type is a non-pointer scalar (ground or
// abstract of register size).
func (t *Type) IsScalar() bool {
	return t.Kind == Ground || t.Kind == Abstract
}

// Signed reports whether a ground type is signed.
func (t *Type) Signed() bool {
	if t.Kind != Ground {
		return false
	}
	switch t.Grd {
	case Int8, Int16, Int32:
		return true
	}
	return false
}

// Equal reports structural equality of types.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case Bottom, Top:
		return true
	case Ground:
		return t.Grd == o.Grd
	case Abstract:
		return t.Name == o.Name
	case Ptr:
		return t.Elem.Equal(o.Elem)
	case ArrayBase, ArrayIn:
		return t.N.Equal(o.N) && t.Elem.Equal(o.Elem)
	case Struct, Union:
		// Nominal equality: aggregates are declared once per policy, and
		// nominal comparison keeps equality well-defined for
		// self-referential structures (e.g. linked lists).
		return t.Name == o.Name
	case Func:
		if len(t.Params) != len(o.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(o.Params[i]) {
				return false
			}
		}
		if (t.Result == nil) != (o.Result == nil) {
			return false
		}
		return t.Result == nil || t.Result.Equal(o.Result)
	}
	return false
}

// groundMeet implements the subtyping refinement of footnote 2: the meet of
// two related ground types is the narrower one; unrelated ground types meet
// to Bottom. A narrower type is a subtype of a wider type of the same
// signedness, and an unsigned type is a subtype of any strictly wider
// signed type (its values embed losslessly).
func groundMeet(a, b GroundKind) (*Type, bool) {
	if a == b {
		return ground(a, groundSize(a)), true
	}
	if groundLE(a, b) {
		return ground(a, groundSize(a)), true
	}
	if groundLE(b, a) {
		return ground(b, groundSize(b)), true
	}
	return nil, false
}

func groundSize(g GroundKind) int {
	switch g {
	case Int8, UInt8:
		return 1
	case Int16, UInt16:
		return 2
	}
	return 4
}

func groundSigned(g GroundKind) bool { return g == Int8 || g == Int16 || g == Int32 }

// groundLE reports a <= b in the ground subtype order: a narrower type is
// a subtype of a wider type of the same signedness. Cross-signedness
// subtyping is deliberately excluded to keep the order a meet semilattice.
func groundLE(a, b GroundKind) bool {
	if a == b {
		return true
	}
	return groundSigned(a) == groundSigned(b) && groundSize(a) <= groundSize(b)
}

// Meet computes the meet of two types in the semi-lattice of Section 4.1:
//
//   - meet of identical types is that type;
//   - meet of two related ground types is the narrower (footnote 2);
//   - meet of two different non-pointer types is Bottom;
//   - meet of two different pointer types, or of a pointer type and a
//     non-pointer type, is Bottom;
//   - meet of t[n] and t(n] is t(n]; t[n] with t[m] (m != n) is Bottom.
func Meet(a, b *Type) *Type {
	switch {
	case a == nil || b == nil:
		return BottomType
	case a.Kind == Top:
		return b
	case b.Kind == Top:
		return a
	case a.Kind == Bottom || b.Kind == Bottom:
		return BottomType
	}
	if a.Kind == Ground && b.Kind == Ground {
		if m, ok := groundMeet(a.Grd, b.Grd); ok {
			return m
		}
		return BottomType
	}
	// Array base/interior interaction.
	if (a.Kind == ArrayBase || a.Kind == ArrayIn) && (b.Kind == ArrayBase || b.Kind == ArrayIn) {
		if a.Elem.Equal(b.Elem) && a.N.Equal(b.N) {
			if a.Kind == ArrayIn || b.Kind == ArrayIn {
				return NewArrayIn(a.Elem, a.N)
			}
			return a
		}
		return BottomType
	}
	if a.Equal(b) {
		return a
	}
	return BottomType
}

// LE reports whether a <= b in the type lattice (a is at least as precise
// as b), i.e. Meet(a, b) == a.
func LE(a, b *Type) bool { return Meet(a, b).Equal(a) }

// Field is the result of a LookUp: a member path (the sequence beta of
// field names of Section 4.2) together with the scalar type found there.
type Field struct {
	Path   string // dot-separated member labels; "" means the whole object
	Type   *Type
	Offset int
}

// LookUp takes a type and two integers n and m and returns the set of
// fields of t that live at byte offset n and have size m, descending into
// nested aggregates; it returns nil if no such field exists (Section 4.2.2).
// For array-element types the offset is interpreted modulo the element.
func LookUp(t *Type, n, m int) []Field {
	var out []Field
	lookUp(t, n, m, "", 0, &out)
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func lookUp(t *Type, n, m int, path string, base int, out *[]Field) {
	if t == nil {
		return
	}
	switch t.Kind {
	case Ground, Abstract, Ptr, ArrayBase, ArrayIn, Func:
		if n == 0 && t.Size() == m {
			*out = append(*out, Field{Path: path, Type: t, Offset: base})
		}
	case Struct:
		for _, mem := range t.Members {
			if n >= mem.Offset && n < mem.Offset+mem.Type.Size() {
				lookUp(mem.Type, n-mem.Offset, m, joinPath(path, mem.Label), base+mem.Offset, out)
			}
		}
	case Union:
		for _, mem := range t.Members {
			if n < mem.Type.Size() {
				lookUp(mem.Type, n, m, joinPath(path, mem.Label), base, out)
			}
		}
	}
}

func joinPath(a, b string) string {
	if a == "" {
		return b
	}
	return a + "." + b
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Bottom:
		return "⊥t"
	case Top:
		return "⊤t"
	case Ground:
		switch t.Grd {
		case Int8:
			return "int8"
		case UInt8:
			return "uint8"
		case Int16:
			return "int16"
		case UInt16:
			return "uint16"
		case Int32:
			return "int32"
		case UInt32:
			return "uint32"
		}
		return "ground?"
	case Abstract:
		return "abstract " + t.Name
	case Ptr:
		return t.Elem.String() + " ptr"
	case ArrayBase:
		return fmt.Sprintf("%s[%s]", t.Elem, t.N)
	case ArrayIn:
		return fmt.Sprintf("%s(%s]", t.Elem, t.N)
	case Struct:
		return "struct " + t.Name
	case Union:
		return "union " + t.Name
	case Func:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		r := "void"
		if t.Result != nil {
			r = t.Result.String()
		}
		return "(" + strings.Join(ps, ", ") + ") -> " + r
	}
	return "?"
}
