package expr

import (
	"fmt"
)

// ErrTooLarge is returned when normalization would blow up past the
// configured size budget (the paper controls formula size by simplifying
// at junction points; we additionally refuse pathological inputs).
var ErrTooLarge = fmt.Errorf("expr: formula too large to normalize")

// MaxDNFClauses bounds the number of conjunctive clauses DNF will produce.
const MaxDNFClauses = 32768

// NNF converts f to negation normal form: negations are pushed inward and
// applied to atoms, which are rewritten into positive atoms:
//
//	¬(e >= 0)  =>  -e - 1 >= 0
//	¬(e = 0)   =>  e - 1 >= 0  ∨  -e - 1 >= 0
//	¬(m | e)   =>  ∨_{r=1..m-1} m | (e - r)
//
// Implications are expanded. Quantifiers flip under negation.
func NNF(f Formula) Formula {
	// The prover re-normalizes formulas that are already in NNF (its
	// quantifier elimination preserves the form); skip the rebuild with
	// one read-only walk, like QuantFree does for qe itself.
	if isNNF(f) {
		return f
	}
	return nnf(f, false)
}

// isNNF reports whether f is already negation-free: nnf eliminates
// every Not (negations fold into atoms) and every Impl, so their
// absence means nnf would be the identity.
func isNNF(f Formula) bool {
	switch g := f.(type) {
	case Not, Impl:
		return false
	case And:
		for _, s := range g.Fs {
			if !isNNF(s) {
				return false
			}
		}
	case Or:
		for _, s := range g.Fs {
			if !isNNF(s) {
				return false
			}
		}
	case Forall:
		return isNNF(g.F)
	case Exists:
		return isNNF(g.F)
	}
	return true
}

func nnf(f Formula, neg bool) Formula {
	switch g := f.(type) {
	case TrueF:
		if neg {
			return FalseF{}
		}
		return g
	case FalseF:
		if neg {
			return TrueF{}
		}
		return g
	case AtomF:
		if !neg {
			return g
		}
		return negateAtom(g.A)
	case Not:
		return nnf(g.F, !neg)
	case And:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = nnf(sub, neg)
		}
		if neg {
			return Disj(fs...)
		}
		return Conj(fs...)
	case Or:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = nnf(sub, neg)
		}
		if neg {
			return Conj(fs...)
		}
		return Disj(fs...)
	case Impl:
		// A -> B  ==  ¬A ∨ B
		if neg {
			return Conj(nnf(g.A, false), nnf(g.B, true))
		}
		return Disj(nnf(g.A, true), nnf(g.B, false))
	case Forall:
		if neg {
			return Exists{V: g.V, F: nnf(g.F, true)}
		}
		return Forall{V: g.V, F: nnf(g.F, false)}
	case Exists:
		if neg {
			return Forall{V: g.V, F: nnf(g.F, true)}
		}
		return Exists{V: g.V, F: nnf(g.F, false)}
	}
	return f
}

func negateAtom(a Atom) Formula {
	switch a.Kind {
	case GE:
		return Ge(a.E.Scale(-1).AddConst(-1))
	case EQ:
		return Disj(Ge(a.E.AddConst(-1)), Ge(a.E.Scale(-1).AddConst(-1)))
	case DIV:
		m := a.M
		if m < 0 {
			m = -m
		}
		if m == 0 {
			return negateAtom(Atom{Kind: EQ, E: a.E})
		}
		var fs []Formula
		for r := int64(1); r < m; r++ {
			fs = append(fs, Divides(m, a.E.AddConst(-r)))
		}
		return Disj(fs...)
	}
	return FalseF{}
}

// Clause is a conjunction of atoms.
type Clause []Atom

// DNF converts a quantifier-free formula to disjunctive normal form: a
// disjunction of conjunctions of positive atoms. It returns ErrTooLarge if
// the result would exceed MaxDNFClauses clauses. The formula "false" is
// the empty disjunction; "true" is one empty clause.
func DNF(f Formula) ([]Clause, error) {
	return dnf(NNF(f), MaxDNFClauses)
}

// DNFUpTo is DNF with a caller-chosen clause cap. Callers that only
// want the expansion when it is small (candidate generation keeps at
// most a handful of disjuncts) pass a small cap so an oversized
// expansion costs one early bail-out instead of a full materialization
// it would then throw away.
func DNFUpTo(f Formula, maxClauses int) ([]Clause, error) {
	return dnf(NNF(f), maxClauses)
}

func dnf(f Formula, maxClauses int) ([]Clause, error) {
	switch g := f.(type) {
	case TrueF:
		return []Clause{{}}, nil
	case FalseF:
		return nil, nil
	case AtomF:
		return []Clause{{g.A}}, nil
	case Or:
		var out []Clause
		for _, sub := range g.Fs {
			cs, err := dnf(sub, maxClauses)
			if err != nil {
				return nil, err
			}
			out = append(out, cs...)
			if len(out) > maxClauses {
				return nil, ErrTooLarge
			}
		}
		return out, nil
	case And:
		out := []Clause{{}}
		for _, sub := range g.Fs {
			cs, err := dnf(sub, maxClauses)
			if err != nil {
				return nil, err
			}
			var next []Clause
			for _, a := range out {
				for _, b := range cs {
					merged := make(Clause, 0, len(a)+len(b))
					merged = append(merged, a...)
					merged = append(merged, b...)
					next = append(next, merged)
					if len(next) > maxClauses {
						return nil, ErrTooLarge
					}
				}
			}
			out = next
		}
		return out, nil
	default:
		return nil, fmt.Errorf("expr: DNF of non-quantifier-free formula %T", f)
	}
}

// ClauseFormula rebuilds a formula from a clause.
func ClauseFormula(c Clause) Formula {
	fs := make([]Formula, len(c))
	for i, a := range c {
		fs[i] = AtomF{a}
	}
	return Conj(fs...)
}

// DNFFormula rebuilds a formula from DNF clauses.
func DNFFormula(cs []Clause) Formula {
	fs := make([]Formula, len(cs))
	for i, c := range cs {
		fs[i] = ClauseFormula(c)
	}
	return Disj(fs...)
}

// Simplify performs cheap syntactic simplification: constant folding of
// atoms, flattening, deduplication, and subsumption between inequalities
// that share a linear part. It never changes the meaning of the formula.
// The verifier applies it at junction points during back-substitution to
// control formula growth (Section 5.2.1, fifth enhancement).
func Simplify(f Formula) Formula {
	switch g := f.(type) {
	case AtomF:
		return simplifyAtom(g.A)
	case Not:
		return Negate(Simplify(g.F))
	case And:
		return simplifyAnd(g.Fs)
	case Or:
		return simplifyOr(g.Fs)
	case Impl:
		a, b := Simplify(g.A), Simplify(g.B)
		if Equal(a, b) {
			return TrueF{}
		}
		return Implies(a, b)
	case Forall:
		inner := Simplify(g.F)
		set := make(map[Var]bool)
		inner.FreeVars(set)
		if !set[g.V] {
			return inner
		}
		return Forall{V: g.V, F: inner}
	case Exists:
		inner := Simplify(g.F)
		set := make(map[Var]bool)
		inner.FreeVars(set)
		if !set[g.V] {
			return inner
		}
		return Exists{V: g.V, F: inner}
	}
	return f
}

func simplifyAtom(a Atom) Formula {
	if c, ok := a.E.IsConst(); ok {
		switch a.Kind {
		case GE:
			if c >= 0 {
				return TrueF{}
			}
			return FalseF{}
		case EQ:
			if c == 0 {
				return TrueF{}
			}
			return FalseF{}
		case DIV:
			m := a.M
			if m < 0 {
				m = -m
			}
			if m == 0 {
				if c == 0 {
					return TrueF{}
				}
				return FalseF{}
			}
			if c%m == 0 {
				return TrueF{}
			}
			return FalseF{}
		}
	}
	// Normalize by gcd of coefficients.
	return AtomF{normalizeAtom(a)}
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// normalizeAtom divides a GE atom's coefficients by their gcd (with floor
// on the constant) and an EQ atom by the gcd of all terms when it divides
// the constant; DIV atoms reduce coefficients modulo m.
func normalizeAtom(a Atom) Atom {
	switch a.Kind {
	case GE:
		g := int64(0)
		for _, t := range a.E.terms {
			g = gcd(g, t.C)
		}
		if g > 1 {
			ts := make([]VarTerm, len(a.E.terms))
			for i, t := range a.E.terms {
				ts[i] = VarTerm{V: t.V, C: t.C / g}
			}
			return Atom{Kind: GE, E: LinExpr{terms: ts, Const: floorDiv(a.E.Const, g)}}
		}
	case EQ:
		g := int64(0)
		for _, t := range a.E.terms {
			g = gcd(g, t.C)
		}
		if g > 1 && a.E.Const%g == 0 {
			ts := make([]VarTerm, len(a.E.terms))
			for i, t := range a.E.terms {
				ts[i] = VarTerm{V: t.V, C: t.C / g}
			}
			return Atom{Kind: EQ, E: LinExpr{terms: ts, Const: a.E.Const / g}}
		}
	case DIV:
		m := a.M
		if m < 0 {
			m = -m
		}
		if m == 0 {
			return Atom{Kind: EQ, E: a.E}
		}
		ts := make([]VarTerm, 0, len(a.E.terms))
		for _, t := range a.E.terms {
			if r := mod(t.C, m); r != 0 {
				ts = append(ts, VarTerm{V: t.V, C: r})
			}
		}
		if len(ts) == 0 {
			ts = nil
		}
		return Atom{Kind: DIV, M: m, E: LinExpr{terms: ts, Const: mod(a.E.Const, m)}}
	}
	return a
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func simplifyAnd(fs []Formula) Formula {
	var flat []Formula
	for _, f := range fs {
		s := Simplify(f)
		switch g := s.(type) {
		case TrueF:
		case FalseF:
			return FalseF{}
		case And:
			flat = append(flat, g.Fs...)
		default:
			flat = append(flat, s)
		}
	}
	// Subsume GE atoms with identical linear parts: keep the strongest
	// (largest constant requirement means smallest Const since e+c>=0).
	// Linear parts are matched by commutative fingerprint; every match
	// is verified against the actual coefficients, so a fingerprint
	// collision degrades to "no subsumption", never to a wrong merge.
	best := make(map[FP]int) // variable-part fingerprint -> index in out
	var out []Formula
	seen := make(map[FP]Formula)
	dedup := func(f Formula) {
		key := Fingerprint(f)
		if prev, ok := seen[key]; ok {
			if Equal(prev, f) {
				return
			}
		} else {
			seen[key] = f
		}
		out = append(out, f)
	}
	for _, f := range flat {
		if a, ok := f.(AtomF); ok && a.A.Kind == GE {
			key := VarPartFP(a.A.E, false)
			if j, ok2 := best[key]; ok2 {
				if prev, okA := out[j].(AtomF); okA && SameVarPart(prev.A.E, a.A.E, false) {
					// Same linear part: e + c1 >= 0 and e + c2 >= 0; the
					// conjunction is e + min(c1,c2) >= 0.
					if a.A.E.Const < prev.A.E.Const {
						out[j] = f
					}
					continue
				}
				out = append(out, f)
				continue
			}
			best[key] = len(out)
			out = append(out, f)
			continue
		}
		dedup(f)
	}
	// Detect e >= 0 ∧ -e >= 0 pairs => e = 0, and direct contradictions
	// e + c >= 0 ∧ -e - c' >= 0 with c' > c.
	for i, f := range out {
		a, ok := f.(AtomF)
		if !ok || a.A.Kind != GE {
			continue
		}
		if j, ok2 := best[VarPartFP(a.A.E, true)]; ok2 && j != i {
			b, okB := out[j].(AtomF)
			if !okB || !SameVarPart(b.A.E, a.A.E, true) {
				continue
			}
			// a: e + c >= 0 ; b: -e + d >= 0 i.e. e <= d
			// contradiction if -c > d
			if -a.A.E.Const > b.A.E.Const {
				return FalseF{}
			}
			if -a.A.E.Const == b.A.E.Const {
				// e = -c exactly
				if i < j {
					out[i] = AtomF{Atom{Kind: EQ, E: a.A.E}}
					out[j] = TrueF{}
				}
			}
		}
	}
	return Conj(out...)
}

func simplifyOr(fs []Formula) Formula {
	var flat []Formula
	seen := make(map[FP]Formula)
	add := func(f Formula) {
		key := Fingerprint(f)
		if prev, ok := seen[key]; ok {
			if Equal(prev, f) {
				return
			}
		} else {
			seen[key] = f
		}
		flat = append(flat, f)
	}
	for _, f := range fs {
		s := Simplify(f)
		switch g := s.(type) {
		case FalseF:
		case TrueF:
			return TrueF{}
		case Or:
			for _, sub := range g.Fs {
				add(sub)
			}
		default:
			add(s)
		}
	}
	return Disj(flat...)
}

// Size returns the number of atoms and connectives in f, used by the
// induction-iteration candidate-ranking heuristic.
func Size(f Formula) int {
	switch g := f.(type) {
	case TrueF, FalseF, AtomF:
		return 1
	case Not:
		return 1 + Size(g.F)
	case And:
		n := 1
		for _, s := range g.Fs {
			n += Size(s)
		}
		return n
	case Or:
		n := 1
		for _, s := range g.Fs {
			n += Size(s)
		}
		return n
	case Impl:
		return 1 + Size(g.A) + Size(g.B)
	case Forall:
		return 1 + Size(g.F)
	case Exists:
		return 1 + Size(g.F)
	}
	return 1
}
