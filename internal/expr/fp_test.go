package expr

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// genLin builds a random linear expression over a small variable pool.
func genLin(r *rand.Rand) LinExpr {
	vars := []Var{"x", "y", "z", "w0.%o0", "val.e"}
	e := Constant(int64(r.Intn(21) - 10))
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		e = e.Add(Term(int64(r.Intn(9)-4), vars[r.Intn(len(vars))]))
	}
	return e
}

func genAtom(r *rand.Rand) Atom {
	e := genLin(r)
	switch r.Intn(3) {
	case 0:
		return Atom{Kind: GE, E: e}
	case 1:
		return Atom{Kind: EQ, E: e}
	default:
		return Atom{Kind: DIV, M: int64(2 + r.Intn(7)), E: e}
	}
}

// genFormula builds a random formula of bounded depth, covering every
// constructor the fingerprint walks.
func genFormula(r *rand.Rand, depth int) Formula {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return TrueF{}
		case 1:
			return FalseF{}
		default:
			return AtomF{A: genAtom(r)}
		}
	}
	switch r.Intn(7) {
	case 0:
		return Not{F: genFormula(r, depth-1)}
	case 1, 2:
		fs := make([]Formula, 2+r.Intn(2))
		for i := range fs {
			fs[i] = genFormula(r, depth-1)
		}
		return And{Fs: fs}
	case 3, 4:
		fs := make([]Formula, 2+r.Intn(2))
		for i := range fs {
			fs[i] = genFormula(r, depth-1)
		}
		return Or{Fs: fs}
	case 5:
		return Impl{A: genFormula(r, depth-1), B: genFormula(r, depth-1)}
	default:
		v := Var([]string{"x", "y", "z"}[r.Intn(3)])
		if r.Intn(2) == 0 {
			return Forall{V: v, F: genFormula(r, depth-1)}
		}
		return Exists{V: v, F: genFormula(r, depth-1)}
	}
}

// TestFingerprintMatchesEqual checks the content-addressing contract on
// a random corpus: fingerprints agree exactly when Equal does. (The
// reverse direction holds only up to 128-bit collisions, which this
// corpus cannot plausibly produce — a disagreement is a bug.)
func TestFingerprintMatchesEqual(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 300
	fs := make([]Formula, n)
	for i := range fs {
		fs[i] = genFormula(r, 3)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			eq := Equal(fs[i], fs[j])
			fpEq := Fingerprint(fs[i]) == Fingerprint(fs[j])
			if eq != fpEq {
				t.Fatalf("formulas %d vs %d: Equal=%v but fingerprint-equal=%v\n%s\n%s",
					i, j, eq, fpEq, fs[i], fs[j])
			}
		}
	}
}

// TestSameVarPartMatchesVarPartFP checks that the verified relation and
// its fingerprint approximation agree on random expression pairs, in
// both the plain and negated forms.
func TestSameVarPartMatchesVarPartFP(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	var pool []LinExpr
	for i := 0; i < 200; i++ {
		pool = append(pool, genLin(r))
	}
	// Include exact copies and negations so the positive cases occur.
	for i := 0; i < 50; i++ {
		e := pool[r.Intn(200)]
		pool = append(pool, e.AddConst(int64(r.Intn(7))), e.Scale(-1))
	}
	for i := range pool {
		for j := range pool {
			for _, neg := range []bool{false, true} {
				rel := SameVarPart(pool[i], pool[j], neg)
				fp := VarPartFP(pool[i], false) == VarPartFP(pool[j], neg)
				if rel != fp {
					t.Fatalf("%q vs %q neg=%v: SameVarPart=%v fp-equal=%v",
						pool[i], pool[j], neg, rel, fp)
				}
			}
		}
	}
}

// TestClauseFPIncrementalIdentity checks that the walker's incremental
// chain (ClauseFPSeed / MixFP(AtomFP) / ClauseFPDone) computes exactly
// ClauseFP for every prefix length.
func TestClauseFPIncrementalIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		var c Clause
		fp := ClauseFPSeed()
		for len(c) < 8 {
			a := genAtom(r)
			c = append(c, a)
			fp = fp.MixFP(AtomFP(a))
			if got, want := fp.ClauseFPDone(len(c)), ClauseFP(c); got != want {
				t.Fatalf("trial %d len %d: incremental %v != ClauseFP %v", trial, len(c), got, want)
			}
		}
	}
}

// TestInternerPreservesString checks the core interning property: the
// interned string of every corpus formula is exactly f.String(), on
// first render and on every repeat, and the term/hit counters track
// unique formulas vs repeats.
func TestInternerPreservesString(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	in := NewInterner()
	var fs []Formula
	for i := 0; i < 400; i++ {
		fs = append(fs, genFormula(r, 3))
	}
	unique := make(map[FP]bool)
	for _, f := range fs {
		unique[Fingerprint(f)] = true
		if got, want := in.StringOf(f), f.String(); got != want {
			t.Fatalf("first render: StringOf=%q want %q", got, want)
		}
	}
	if in.Terms() != int64(len(unique)) {
		t.Fatalf("Terms=%d, want %d unique formulas", in.Terms(), len(unique))
	}
	hitsBefore := in.Hits()
	for _, f := range fs {
		if got, want := in.StringOf(f), f.String(); got != want {
			t.Fatalf("repeat render: StringOf=%q want %q", got, want)
		}
	}
	if in.Terms() != int64(len(unique)) {
		t.Fatalf("repeat pass interned new terms: %d, want %d", in.Terms(), len(unique))
	}
	if got := in.Hits() - hitsBefore; got != int64(len(fs)) {
		t.Fatalf("repeat pass hits=%d, want %d", got, len(fs))
	}
	// A nil interner degrades to plain stringification.
	var nilIn *Interner
	if got, want := nilIn.StringOf(fs[0]), fs[0].String(); got != want {
		t.Fatalf("nil interner: %q want %q", got, want)
	}
	if nilIn.Terms() != 0 || nilIn.Hits() != 0 {
		t.Fatal("nil interner reported nonzero counters")
	}
}

// TestInternerConcurrent hammers one intern table from many goroutines
// over an overlapping corpus — the shape of the Phase 5 worker pool
// under -parallel — and checks every returned string. Run with -race
// this is the interning race test.
func TestInternerConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var fs []Formula
	var want []string
	for i := 0; i < 200; i++ {
		f := genFormula(r, 3)
		fs = append(fs, f)
		want = append(want, f.String())
	}
	in := NewInterner()
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				j := rr.Intn(len(fs))
				if got := in.StringOf(fs[j]); got != want[j] {
					errs <- fmt.Errorf("worker %d: formula %d: got %q want %q", seed, j, got, want[j])
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if in.Hits() == 0 {
		t.Fatal("concurrent interning never hit the table")
	}
}

// TestQuantFree pins the QuantFree fast-path predicate against the
// obvious recursive definition on the random corpus.
func TestQuantFree(t *testing.T) {
	var hasQuant func(f Formula) bool
	hasQuant = func(f Formula) bool {
		switch g := f.(type) {
		case Forall, Exists:
			return true
		case Not:
			return hasQuant(g.F)
		case And:
			for _, s := range g.Fs {
				if hasQuant(s) {
					return true
				}
			}
		case Or:
			for _, s := range g.Fs {
				if hasQuant(s) {
					return true
				}
			}
		case Impl:
			return hasQuant(g.A) || hasQuant(g.B)
		}
		return false
	}
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 500; i++ {
		f := genFormula(r, 3)
		if QuantFree(f) != !hasQuant(f) {
			t.Fatalf("QuantFree(%s)=%v, want %v", f, QuantFree(f), !hasQuant(f))
		}
	}
}
