// Structural fingerprints and the formula intern table.
//
// The prover and the verification-condition engine used to key their
// caches by canonical formula strings, rebuilding the string on every
// probe. A fingerprint is a 128-bit structural hash computed in one
// allocation-free walk: equal formulas always have equal fingerprints,
// and the 128-bit width makes an accidental collision between the
// bounded number of distinct formulas of one checker run vanishingly
// unlikely (under 2^-90 for a billion formulas), which is the standard
// content-addressing argument. Call sites where a collision could
// change a verdict rather than just miss an optimization additionally
// verify structural equality with Equal (see ShardedCache), so the
// prover's soundness never rests on the hash at all.
package expr

import (
	"sync"
	"sync/atomic"
)

// FP is a 128-bit structural fingerprint of a formula, linear
// expression, or composite cache key. It is comparable and usable as a
// map key. The zero FP is never produced by the fingerprint functions.
type FP struct{ Hi, Lo uint64 }

// Two independent 64-bit mixers (Murmur3/SplitMix finalizer style) keep
// the Hi and Lo lanes decorrelated so the pair behaves as one 128-bit
// hash rather than two copies of the same 64-bit one.

func fpMixA(h, x uint64) uint64 {
	h ^= x
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func fpMixB(h, x uint64) uint64 {
	h ^= x + 0x9e3779b97f4a7c15
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 29
	return h
}

// SeedFP returns the fingerprint chain seeded with x. Distinct seeds
// start distinct chains; cache-key builders use it to tag key spaces.
func SeedFP(x uint64) FP {
	return FP{Hi: fpMixA(0x9e3779b97f4a7c15, x), Lo: fpMixB(0x85ebca6b0f6bcaa7, x)}
}

// Mixed folds one word into the fingerprint, order-dependently.
func (fp FP) Mixed(x uint64) FP { return FP{Hi: fpMixA(fp.Hi, x), Lo: fpMixB(fp.Lo, x)} }

// MixFP folds another fingerprint into this one, order-dependently.
// Composite cache keys (node × formula, loop-header × invariant) are
// built this way.
func (fp FP) MixFP(o FP) FP { return fp.Mixed(o.Hi).Mixed(o.Lo) }

// Node tags: one distinct word per formula constructor so structurally
// different trees mix differently even when their children agree.
const (
	fpTagTrue uint64 = 0x51 + iota
	fpTagFalse
	fpTagAtom
	fpTagNot
	fpTagAnd
	fpTagOr
	fpTagImpl
	fpTagForall
	fpTagExists
	fpTagLin
	fpTagVarPart
)

// varHash is FNV-1a over the variable's name.
func varHash(v Var) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(v); i++ {
		h ^= uint64(v[i])
		h *= 1099511628211
	}
	return h
}

// VarPartFP fingerprints the variable part of e (the constant is
// ignored), commutatively over the coefficient map's entries so the
// map's iteration order cannot leak into the hash. With neg set it
// fingerprints the negated variable part, so a >= atom's upper-bound
// twin can be looked up without materializing e.Scale(-1). It is the
// fingerprint form of linKey.
func VarPartFP(e LinExpr, neg bool) FP {
	var hi, lo uint64
	for _, t := range e.Terms() {
		c := t.C
		if neg {
			c = -c
		}
		hv := varHash(t.V)
		// Commutative (additive) combine per entry; each entry is
		// internally mixed so (v1,c1)+(v2,c2) and (v1,c2)+(v2,c1)
		// disagree.
		hi += fpMixA(hv, uint64(c))
		lo += fpMixB(hv, uint64(c))
	}
	return FP{Hi: hi, Lo: lo}.Mixed(fpTagVarPart)
}

// LinFP fingerprints a linear expression, constant included.
func LinFP(e LinExpr) FP {
	return VarPartFP(e, false).Mixed(uint64(e.Const)).Mixed(fpTagLin)
}

func atomFP(a Atom) FP {
	return LinFP(a.E).Mixed(uint64(a.Kind)).Mixed(uint64(a.M)).Mixed(fpTagAtom)
}

// AtomFP fingerprints one atom — the per-atom ingredient of ClauseFP,
// exported so the prover's clause enumerator can precompute it per
// tree node and chain clause fingerprints incrementally.
func AtomFP(a Atom) FP { return atomFP(a) }

// ClauseFPSeed is the empty-clause state of the incremental clause
// fingerprint; extend with MixFP(AtomFP(a)) per atom in order and
// finish with ClauseFPDone.
func ClauseFPSeed() FP { return SeedFP(fpTagAnd) }

// ClauseFPDone finalizes an incremental clause fingerprint over n
// atoms; ClauseFPSeed/MixFP/ClauseFPDone compute exactly ClauseFP.
func (fp FP) ClauseFPDone(n int) FP { return fp.Mixed(uint64(n)) }

// ClauseFP fingerprints a clause (a conjunction of atoms), order-
// dependently — the prover's clause memo wants "same atoms in the same
// order", which is exactly what repeated DNF expansions of shared WLP
// prefixes produce.
func ClauseFP(c Clause) FP {
	fp := ClauseFPSeed()
	for _, a := range c {
		fp = fp.MixFP(atomFP(a))
	}
	return fp.ClauseFPDone(len(c))
}

// Fingerprint computes f's structural fingerprint in one walk with no
// allocation. Equal structures yield equal fingerprints; the converse
// holds up to 128-bit hash collisions.
func Fingerprint(f Formula) FP {
	switch g := f.(type) {
	case TrueF:
		return SeedFP(fpTagTrue)
	case FalseF:
		return SeedFP(fpTagFalse)
	case AtomF:
		return atomFP(g.A)
	case Not:
		return Fingerprint(g.F).Mixed(fpTagNot)
	case And:
		fp := SeedFP(fpTagAnd)
		for _, s := range g.Fs {
			fp = fp.MixFP(Fingerprint(s))
		}
		return fp.Mixed(uint64(len(g.Fs)))
	case Or:
		fp := SeedFP(fpTagOr)
		for _, s := range g.Fs {
			fp = fp.MixFP(Fingerprint(s))
		}
		return fp.Mixed(uint64(len(g.Fs)))
	case Impl:
		return SeedFP(fpTagImpl).MixFP(Fingerprint(g.A)).MixFP(Fingerprint(g.B))
	case Forall:
		return SeedFP(fpTagForall).Mixed(varHash(g.V)).MixFP(Fingerprint(g.F))
	case Exists:
		return SeedFP(fpTagExists).Mixed(varHash(g.V)).MixFP(Fingerprint(g.F))
	}
	return SeedFP(0)
}

// Equal reports structural equality of two formulas — the exact
// relation Fingerprint approximates. Cache layers that must never act
// on a hash collision call it to verify a fingerprint match; the walk
// is allocation-free and no slower than the string comparison it
// replaces.
func Equal(a, b Formula) bool {
	switch x := a.(type) {
	case TrueF:
		_, ok := b.(TrueF)
		return ok
	case FalseF:
		_, ok := b.(FalseF)
		return ok
	case AtomF:
		y, ok := b.(AtomF)
		return ok && x.A.Kind == y.A.Kind && x.A.M == y.A.M && x.A.E.Equal(y.A.E)
	case Not:
		y, ok := b.(Not)
		return ok && Equal(x.F, y.F)
	case And:
		y, ok := b.(And)
		if !ok || len(x.Fs) != len(y.Fs) {
			return false
		}
		for i := range x.Fs {
			if !Equal(x.Fs[i], y.Fs[i]) {
				return false
			}
		}
		return true
	case Or:
		y, ok := b.(Or)
		if !ok || len(x.Fs) != len(y.Fs) {
			return false
		}
		for i := range x.Fs {
			if !Equal(x.Fs[i], y.Fs[i]) {
				return false
			}
		}
		return true
	case Impl:
		y, ok := b.(Impl)
		return ok && Equal(x.A, y.A) && Equal(x.B, y.B)
	case Forall:
		y, ok := b.(Forall)
		return ok && x.V == y.V && Equal(x.F, y.F)
	case Exists:
		y, ok := b.(Exists)
		return ok && x.V == y.V && Equal(x.F, y.F)
	}
	return false
}

// SameVarPart reports whether a's and b's variable parts are equal
// (negated: whether varPart(a) == -varPart(b)), ignoring the constant
// terms. It is the exact relation VarPartFP approximates; subsumption
// and contradiction detection verify fingerprint matches with it so a
// hash collision can only miss an optimization, never merge unrelated
// constraints.
func SameVarPart(a, b LinExpr, negated bool) bool {
	at, bt := a.Terms(), b.Terms()
	if len(at) != len(bt) {
		return false
	}
	for i, t := range at {
		u := bt[i]
		w := u.C
		if negated {
			w = -w
		}
		if t.V != u.V || t.C != w {
			return false
		}
	}
	return true
}

// QuantFree reports whether f contains no quantifiers. The prover's
// quantifier elimination rebuilds the whole tree through the smart
// constructors; on the (common) quantifier-free formulas that rebuild
// is a no-op semantically, so callers use QuantFree to skip it — one
// read-only walk instead of a full reallocation.
func QuantFree(f Formula) bool {
	switch g := f.(type) {
	case Forall, Exists:
		return false
	case Not:
		return QuantFree(g.F)
	case And:
		for _, s := range g.Fs {
			if !QuantFree(s) {
				return false
			}
		}
		return true
	case Or:
		for _, s := range g.Fs {
			if !QuantFree(s) {
				return false
			}
		}
		return true
	case Impl:
		return QuantFree(g.A) && QuantFree(g.B)
	}
	return true
}

// internShards stripes the intern table; a power of two so the shard
// index is a mask of the fingerprint.
const internShards = 16

// Interner is a per-checker intern table mapping formula fingerprints
// to their canonical strings, so String() is computed once per unique
// term no matter how many observer spans or Explain attempts mention
// it. It is concurrency-safe (the Phase 5 worker pool shares one) and a
// nil *Interner degrades to plain f.String().
type Interner struct {
	shards [internShards]internShard
	terms  atomic.Int64
	hits   atomic.Int64
}

type internShard struct {
	mu sync.RWMutex
	m  map[FP]string
}

// NewInterner returns an empty intern table ready for concurrent use.
func NewInterner() *Interner {
	in := &Interner{}
	for i := range in.shards {
		in.shards[i].m = make(map[FP]string)
	}
	return in
}

// StringOf returns f.String(), computed at most once per unique
// fingerprint for the lifetime of the table.
func (in *Interner) StringOf(f Formula) string {
	if in == nil {
		return f.String()
	}
	fp := Fingerprint(f)
	s := &in.shards[fp.Lo&(internShards-1)]
	s.mu.RLock()
	str, ok := s.m[fp]
	s.mu.RUnlock()
	if ok {
		in.hits.Add(1)
		return str
	}
	// Render outside the lock; a racing renderer of the same term just
	// does the same work and the first writer's string wins.
	str = f.String()
	s.mu.Lock()
	if prev, ok := s.m[fp]; ok {
		s.mu.Unlock()
		in.hits.Add(1)
		return prev
	}
	s.m[fp] = str
	s.mu.Unlock()
	in.terms.Add(1)
	return str
}

// Terms reports the number of unique terms interned so far.
func (in *Interner) Terms() int64 {
	if in == nil {
		return 0
	}
	return in.terms.Load()
}

// Hits reports how many StringOf calls were answered from the table.
func (in *Interner) Hits() int64 {
	if in == nil {
		return 0
	}
	return in.hits.Load()
}
