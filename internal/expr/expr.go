// Package expr implements the annotation language of the safety checker:
// linear expressions over integer variables, and formulas built from
// linear equalities/inequalities and divisibility (alignment) constraints
// combined with ∧, ∨, ¬, →, and the quantifiers ∀ and ∃. These are the
// Presburger formulas the paper feeds to its Omega-library-based theorem
// prover (Section 5.2).
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Var names an integer variable: a machine register at a window depth
// (e.g. "w0.%o0"), a symbolic input bound ("n"), the value of an abstract
// location ("val.e"), or a fresh havoc variable.
type Var string

// VarTerm is one c*v term of a linear expression.
type VarTerm struct {
	V Var
	C int64
}

// LinExpr is a linear expression sum(c_i * v_i) + Const. The terms are
// kept sorted by variable with no zero coefficients, so the
// representation is canonical: Equal is an elementwise scan and every
// iteration is deterministic. The zero value is the constant 0.
//
// LinExpr values are immutable; operations return new expressions.
// Because of that, expressions freely share term slices (AddConst and
// Subst reuse their input's terms) — callers must never mutate the
// slice returned by Terms. LinExpr used to be a map[Var]int64; the
// checker allocates millions of short-lived expressions during WLP
// back-substitution and Fourier–Motzkin elimination, and the map's
// allocation, iteration, and GC-scan cost dominated every profile.
type LinExpr struct {
	terms []VarTerm
	Const int64
}

// Const returns the constant expression c.
func Constant(c int64) LinExpr { return LinExpr{Const: c} }

// V returns the expression consisting of the single variable v.
func V(v Var) LinExpr { return LinExpr{terms: []VarTerm{{V: v, C: 1}}} }

// Term returns c*v.
func Term(c int64, v Var) LinExpr {
	if c == 0 {
		return LinExpr{}
	}
	return LinExpr{terms: []VarTerm{{V: v, C: c}}}
}

// Terms returns e's terms, sorted by variable, with no zero
// coefficients. The slice is shared with e and must not be mutated.
func (e LinExpr) Terms() []VarTerm { return e.terms }

// NumTerms returns the number of variables with nonzero coefficient.
func (e LinExpr) NumTerms() int { return len(e.terms) }

// Add returns e + o, merging the two sorted term lists.
func (e LinExpr) Add(o LinExpr) LinExpr {
	if len(o.terms) == 0 {
		return LinExpr{terms: e.terms, Const: e.Const + o.Const}
	}
	if len(e.terms) == 0 {
		return LinExpr{terms: o.terms, Const: e.Const + o.Const}
	}
	out := make([]VarTerm, 0, len(e.terms)+len(o.terms))
	i, j := 0, 0
	for i < len(e.terms) && j < len(o.terms) {
		a, b := e.terms[i], o.terms[j]
		switch {
		case a.V < b.V:
			out = append(out, a)
			i++
		case b.V < a.V:
			out = append(out, b)
			j++
		default:
			if c := a.C + b.C; c != 0 {
				out = append(out, VarTerm{V: a.V, C: c})
			}
			i++
			j++
		}
	}
	out = append(out, e.terms[i:]...)
	out = append(out, o.terms[j:]...)
	return LinExpr{terms: out, Const: e.Const + o.Const}
}

// Sub returns e - o.
func (e LinExpr) Sub(o LinExpr) LinExpr { return e.Add(o.Scale(-1)) }

// Scale returns k*e.
func (e LinExpr) Scale(k int64) LinExpr {
	if k == 0 {
		return LinExpr{}
	}
	if k == 1 {
		return e
	}
	out := make([]VarTerm, len(e.terms))
	for i, t := range e.terms {
		out[i] = VarTerm{V: t.V, C: t.C * k}
	}
	return LinExpr{terms: out, Const: e.Const * k}
}

// AddConst returns e + c.
func (e LinExpr) AddConst(c int64) LinExpr {
	return LinExpr{terms: e.terms, Const: e.Const + c}
}

// CoefOf returns the coefficient of v in e.
func (e LinExpr) CoefOf(v Var) int64 {
	for _, t := range e.terms {
		if t.V >= v {
			if t.V == v {
				return t.C
			}
			return 0
		}
	}
	return 0
}

// IsConst reports whether e has no variables, returning its value.
func (e LinExpr) IsConst() (int64, bool) {
	if len(e.terms) == 0 {
		return e.Const, true
	}
	return 0, false
}

// Vars returns the variables of e in sorted order.
func (e LinExpr) Vars() []Var {
	vs := make([]Var, len(e.terms))
	for i, t := range e.terms {
		vs[i] = t.V
	}
	return vs
}

// Subst returns e with every occurrence of v replaced by r.
func (e LinExpr) Subst(v Var, r LinExpr) LinExpr {
	idx := -1
	for i, t := range e.terms {
		if t.V == v {
			idx = i
			break
		}
		if t.V > v {
			return e
		}
	}
	if idx < 0 {
		return e
	}
	c := e.terms[idx].C
	rest := make([]VarTerm, 0, len(e.terms)-1)
	rest = append(rest, e.terms[:idx]...)
	rest = append(rest, e.terms[idx+1:]...)
	return LinExpr{terms: rest, Const: e.Const}.Add(r.Scale(c))
}

// Equal reports structural equality. The canonical sorted
// representation makes this an elementwise comparison.
func (e LinExpr) Equal(o LinExpr) bool {
	if e.Const != o.Const || len(e.terms) != len(o.terms) {
		return false
	}
	for i, t := range e.terms {
		if o.terms[i] != t {
			return false
		}
	}
	return true
}

// Eval evaluates e under the given assignment (unassigned vars read 0).
func (e LinExpr) Eval(env map[Var]int64) int64 {
	r := e.Const
	for _, t := range e.terms {
		r += t.C * env[t.V]
	}
	return r
}

func (e LinExpr) String() string {
	var b strings.Builder
	first := true
	for _, t := range e.terms {
		v, c := t.V, t.C
		switch {
		case first && c == 1:
			fmt.Fprintf(&b, "%s", v)
		case first && c == -1:
			fmt.Fprintf(&b, "-%s", v)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, v)
		case c == 1:
			fmt.Fprintf(&b, " + %s", v)
		case c == -1:
			fmt.Fprintf(&b, " - %s", v)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, v)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, v)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&b, "%d", e.Const)
	case e.Const > 0:
		fmt.Fprintf(&b, " + %d", e.Const)
	case e.Const < 0:
		fmt.Fprintf(&b, " - %d", -e.Const)
	}
	return b.String()
}

// AtomKind discriminates atomic constraints.
type AtomKind int

const (
	// GE is the constraint E >= 0.
	GE AtomKind = iota
	// EQ is the constraint E == 0.
	EQ
	// DIV is the divisibility constraint M | E (used for alignment).
	DIV
)

// Atom is an atomic linear constraint.
type Atom struct {
	Kind AtomKind
	M    int64 // modulus, for DIV
	E    LinExpr
}

// Formula is a Presburger formula. Implementations: True, False, Atom
// (via AtomF), Not, And, Or, Impl, Forall, Exists.
type Formula interface {
	// Subst replaces every free occurrence of v by r.
	Subst(v Var, r LinExpr) Formula
	// FreeVars accumulates free variables into the set.
	FreeVars(set map[Var]bool)
	// Eval evaluates the formula under a total assignment; quantifiers
	// are evaluated over the given finite domain of candidate values
	// (used only for property testing).
	Eval(env map[Var]int64, domain []int64) bool
	String() string
}

// True and False are the boolean constants.
type (
	TrueF  struct{}
	FalseF struct{}
)

// AtomF wraps an Atom as a Formula.
type AtomF struct{ A Atom }

// Not is negation.
type Not struct{ F Formula }

// And is n-ary conjunction.
type And struct{ Fs []Formula }

// Or is n-ary disjunction.
type Or struct{ Fs []Formula }

// Impl is implication A -> B.
type Impl struct{ A, B Formula }

// Forall is universal quantification.
type Forall struct {
	V Var
	F Formula
}

// Exists is existential quantification.
type Exists struct {
	V Var
	F Formula
}

// Convenience constructors.

// T returns the true formula.
func T() Formula { return TrueF{} }

// F returns the false formula.
func F() Formula { return FalseF{} }

// Ge returns the formula e >= 0.
func Ge(e LinExpr) Formula { return AtomF{Atom{Kind: GE, E: e}} }

// GeExpr returns a >= b.
func GeExpr(a, b LinExpr) Formula { return Ge(a.Sub(b)) }

// GtExpr returns a > b (i.e. a - b - 1 >= 0).
func GtExpr(a, b LinExpr) Formula { return Ge(a.Sub(b).AddConst(-1)) }

// LeExpr returns a <= b.
func LeExpr(a, b LinExpr) Formula { return Ge(b.Sub(a)) }

// LtExpr returns a < b.
func LtExpr(a, b LinExpr) Formula { return Ge(b.Sub(a).AddConst(-1)) }

// Eq returns the formula e == 0.
func Eq(e LinExpr) Formula { return AtomF{Atom{Kind: EQ, E: e}} }

// EqExpr returns a == b.
func EqExpr(a, b LinExpr) Formula { return Eq(a.Sub(b)) }

// NeExpr returns a != b.
func NeExpr(a, b LinExpr) Formula { return Not{EqExpr(a, b)} }

// Divides returns the formula m | e.
func Divides(m int64, e LinExpr) Formula { return AtomF{Atom{Kind: DIV, M: m, E: e}} }

// Conj returns the conjunction of fs, flattening and short-circuiting.
func Conj(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case nil:
		case TrueF:
		case FalseF:
			return FalseF{}
		case And:
			out = append(out, g.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return TrueF{}
	case 1:
		return out[0]
	}
	return And{Fs: out}
}

// Disj returns the disjunction of fs, flattening and short-circuiting.
func Disj(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case nil:
		case FalseF:
		case TrueF:
			return TrueF{}
		case Or:
			out = append(out, g.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return FalseF{}
	case 1:
		return out[0]
	}
	return Or{Fs: out}
}

// Implies returns a -> b with trivial simplifications.
func Implies(a, b Formula) Formula {
	switch a.(type) {
	case TrueF:
		return b
	case FalseF:
		return TrueF{}
	}
	if _, ok := b.(TrueF); ok {
		return TrueF{}
	}
	return Impl{A: a, B: b}
}

// Negate returns ¬f with trivial simplifications.
func Negate(f Formula) Formula {
	switch g := f.(type) {
	case TrueF:
		return FalseF{}
	case FalseF:
		return TrueF{}
	case Not:
		return g.F
	}
	return Not{F: f}
}

// --- Subst ---

func (TrueF) Subst(Var, LinExpr) Formula  { return TrueF{} }
func (FalseF) Subst(Var, LinExpr) Formula { return FalseF{} }

func (a AtomF) Subst(v Var, r LinExpr) Formula {
	return AtomF{Atom{Kind: a.A.Kind, M: a.A.M, E: a.A.E.Subst(v, r)}}
}

func (n Not) Subst(v Var, r LinExpr) Formula { return Not{n.F.Subst(v, r)} }

func (a And) Subst(v Var, r LinExpr) Formula {
	fs := make([]Formula, len(a.Fs))
	for i, f := range a.Fs {
		fs[i] = f.Subst(v, r)
	}
	return And{fs}
}

func (o Or) Subst(v Var, r LinExpr) Formula {
	fs := make([]Formula, len(o.Fs))
	for i, f := range o.Fs {
		fs[i] = f.Subst(v, r)
	}
	return Or{fs}
}

func (i Impl) Subst(v Var, r LinExpr) Formula {
	return Impl{A: i.A.Subst(v, r), B: i.B.Subst(v, r)}
}

func (q Forall) Subst(v Var, r LinExpr) Formula {
	if q.V == v {
		return q
	}
	return Forall{V: q.V, F: q.F.Subst(v, r)}
}

func (q Exists) Subst(v Var, r LinExpr) Formula {
	if q.V == v {
		return q
	}
	return Exists{V: q.V, F: q.F.Subst(v, r)}
}

// substMap applies a parallel substitution to e: every term whose
// variable is mapped is replaced by its image, all images read from the
// original e simultaneously. The second result reports whether any
// term was substituted (false returns e itself, unchanged).
func (e LinExpr) substMap(sub map[Var]LinExpr) (LinExpr, bool) {
	hit := false
	for _, t := range e.terms {
		if _, ok := sub[t.V]; ok {
			hit = true
			break
		}
	}
	if !hit {
		return e, false
	}
	kept := make([]VarTerm, 0, len(e.terms))
	acc := LinExpr{Const: e.Const}
	for _, t := range e.terms {
		if r, ok := sub[t.V]; ok {
			acc = acc.Add(r.Scale(t.C))
		} else {
			kept = append(kept, t)
		}
	}
	return LinExpr{terms: kept}.Add(acc), true
}

// SubstAll applies a set of parallel substitutions to f in one walk:
// each atom's images are read from the unsubstituted atom, so
// substitution targets may freely mention substituted variables. (This
// used to be simulated with a rename-through-temporaries pass, costing
// two full formula rebuilds per substituted variable.)
func SubstAll(f Formula, sub map[Var]LinExpr) Formula {
	if len(sub) == 0 {
		return f
	}
	switch g := f.(type) {
	case TrueF, FalseF:
		return f
	case AtomF:
		e, changed := g.A.E.substMap(sub)
		if !changed {
			return f
		}
		return AtomF{Atom{Kind: g.A.Kind, M: g.A.M, E: e}}
	case Not:
		return Not{SubstAll(g.F, sub)}
	case And:
		fs := make([]Formula, len(g.Fs))
		for i, s := range g.Fs {
			fs[i] = SubstAll(s, sub)
		}
		return And{fs}
	case Or:
		fs := make([]Formula, len(g.Fs))
		for i, s := range g.Fs {
			fs[i] = SubstAll(s, sub)
		}
		return Or{fs}
	case Impl:
		return Impl{A: SubstAll(g.A, sub), B: SubstAll(g.B, sub)}
	case Forall:
		return Forall{V: g.V, F: SubstAll(g.F, substWithout(sub, g.V))}
	case Exists:
		return Exists{V: g.V, F: SubstAll(g.F, substWithout(sub, g.V))}
	}
	return f
}

// substWithout drops the binding for v (the bound variable shadows it),
// copying the map only when v is actually mapped.
func substWithout(sub map[Var]LinExpr, v Var) map[Var]LinExpr {
	if _, ok := sub[v]; !ok {
		return sub
	}
	out := make(map[Var]LinExpr, len(sub)-1)
	for k, r := range sub {
		if k != v {
			out[k] = r
		}
	}
	return out
}

// --- FreeVars ---

func (TrueF) FreeVars(map[Var]bool)  {}
func (FalseF) FreeVars(map[Var]bool) {}

func (a AtomF) FreeVars(set map[Var]bool) {
	for _, t := range a.A.E.terms {
		set[t.V] = true
	}
}
func (n Not) FreeVars(set map[Var]bool) { n.F.FreeVars(set) }
func (a And) FreeVars(set map[Var]bool) {
	for _, f := range a.Fs {
		f.FreeVars(set)
	}
}
func (o Or) FreeVars(set map[Var]bool) {
	for _, f := range o.Fs {
		f.FreeVars(set)
	}
}
func (i Impl) FreeVars(set map[Var]bool) { i.A.FreeVars(set); i.B.FreeVars(set) }
func (q Forall) FreeVars(set map[Var]bool) {
	inner := make(map[Var]bool)
	q.F.FreeVars(inner)
	delete(inner, q.V)
	for v := range inner {
		set[v] = true
	}
}
func (q Exists) FreeVars(set map[Var]bool) {
	inner := make(map[Var]bool)
	q.F.FreeVars(inner)
	delete(inner, q.V)
	for v := range inner {
		set[v] = true
	}
}

// FreeVarsOf returns the sorted free variables of f.
func FreeVarsOf(f Formula) []Var {
	set := make(map[Var]bool)
	f.FreeVars(set)
	vs := make([]Var, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// --- Eval (testing aid) ---

func (TrueF) Eval(map[Var]int64, []int64) bool  { return true }
func (FalseF) Eval(map[Var]int64, []int64) bool { return false }

func (a AtomF) Eval(env map[Var]int64, _ []int64) bool {
	v := a.A.E.Eval(env)
	switch a.A.Kind {
	case GE:
		return v >= 0
	case EQ:
		return v == 0
	case DIV:
		if a.A.M == 0 {
			return v == 0
		}
		return v%a.A.M == 0
	}
	return false
}

func (n Not) Eval(env map[Var]int64, d []int64) bool { return !n.F.Eval(env, d) }

func (a And) Eval(env map[Var]int64, d []int64) bool {
	for _, f := range a.Fs {
		if !f.Eval(env, d) {
			return false
		}
	}
	return true
}

func (o Or) Eval(env map[Var]int64, d []int64) bool {
	for _, f := range o.Fs {
		if f.Eval(env, d) {
			return true
		}
	}
	return false
}

func (i Impl) Eval(env map[Var]int64, d []int64) bool {
	return !i.A.Eval(env, d) || i.B.Eval(env, d)
}

func (q Forall) Eval(env map[Var]int64, d []int64) bool {
	saved, had := env[q.V]
	defer restore(env, q.V, saved, had)
	for _, x := range d {
		env[q.V] = x
		if !q.F.Eval(env, d) {
			return false
		}
	}
	return true
}

func (q Exists) Eval(env map[Var]int64, d []int64) bool {
	saved, had := env[q.V]
	defer restore(env, q.V, saved, had)
	for _, x := range d {
		env[q.V] = x
		if q.F.Eval(env, d) {
			return true
		}
	}
	return false
}

func restore(env map[Var]int64, v Var, saved int64, had bool) {
	if had {
		env[v] = saved
	} else {
		delete(env, v)
	}
}

// --- String ---

func (TrueF) String() string  { return "true" }
func (FalseF) String() string { return "false" }

func (a AtomF) String() string {
	switch a.A.Kind {
	case GE:
		return a.A.E.String() + " >= 0"
	case EQ:
		return a.A.E.String() + " = 0"
	case DIV:
		return fmt.Sprintf("%d | (%s)", a.A.M, a.A.E)
	}
	return "?"
}

func (n Not) String() string { return "¬(" + n.F.String() + ")" }

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func (a And) String() string    { return joinFormulas(a.Fs, " ∧ ") }
func (o Or) String() string     { return joinFormulas(o.Fs, " ∨ ") }
func (i Impl) String() string   { return "(" + i.A.String() + " → " + i.B.String() + ")" }
func (q Forall) String() string { return fmt.Sprintf("∀%s.(%s)", q.V, q.F) }
func (q Exists) String() string { return fmt.Sprintf("∃%s.(%s)", q.V, q.F) }
