package expr

import (
	"math/rand"
	"testing"
)

func TestLinExprArith(t *testing.T) {
	x, y := V("x"), V("y")
	e := x.Add(y.Scale(2)).AddConst(3) // x + 2y + 3
	if got := e.String(); got != "x + 2*y + 3" {
		t.Errorf("String = %q", got)
	}
	if e.CoefOf("x") != 1 || e.CoefOf("y") != 2 || e.Const != 3 {
		t.Fatalf("coeffs wrong: %v", e)
	}
	z := e.Sub(e)
	if c, ok := z.IsConst(); !ok || c != 0 {
		t.Fatalf("e - e = %v", z)
	}
	if got := e.Eval(map[Var]int64{"x": 1, "y": 2}); got != 8 {
		t.Errorf("Eval = %d, want 8", got)
	}
}

func TestLinExprSubst(t *testing.T) {
	x, y := V("x"), V("y")
	e := x.Scale(3).Add(y) // 3x + y
	r := e.Subst("x", y.AddConst(1))
	// 3(y+1) + y = 4y + 3
	if r.CoefOf("y") != 4 || r.Const != 3 || r.CoefOf("x") != 0 {
		t.Fatalf("Subst = %v", r)
	}
	// Substituting an absent var is identity.
	if !e.Subst("z", Constant(9)).Equal(e) {
		t.Error("subst of absent var changed expression")
	}
}

func TestLinExprStringForms(t *testing.T) {
	cases := []struct {
		e    LinExpr
		want string
	}{
		{Constant(0), "0"},
		{Constant(-5), "-5"},
		{V("x"), "x"},
		{Term(-1, "x"), "-x"},
		{Term(4, "x").AddConst(-1), "4*x - 1"},
		{V("x").Sub(V("y")), "x - y"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestConstructorsSemantics(t *testing.T) {
	a, b := V("a"), V("b")
	env := map[Var]int64{"a": 3, "b": 5}
	if !LtExpr(a, b).Eval(env, nil) || LtExpr(b, a).Eval(env, nil) {
		t.Error("LtExpr wrong")
	}
	if !LeExpr(a, a).Eval(env, nil) {
		t.Error("LeExpr not reflexive")
	}
	if GtExpr(a, b).Eval(env, nil) || !GtExpr(b, a).Eval(env, nil) {
		t.Error("GtExpr wrong")
	}
	if !EqExpr(a, a).Eval(env, nil) || EqExpr(a, b).Eval(env, nil) {
		t.Error("EqExpr wrong")
	}
	if !NeExpr(a, b).Eval(env, nil) {
		t.Error("NeExpr wrong")
	}
	if !Divides(4, Term(4, "a")).Eval(env, nil) {
		t.Error("4 | 4a should hold")
	}
	if Divides(4, V("a")).Eval(env, nil) {
		t.Error("4 | 3 should not hold")
	}
}

func TestConjDisjShortCircuit(t *testing.T) {
	if _, ok := Conj(T(), T()).(TrueF); !ok {
		t.Error("Conj of trues should be true")
	}
	if _, ok := Conj(T(), F(), Ge(V("x"))).(FalseF); !ok {
		t.Error("Conj with false should be false")
	}
	if _, ok := Disj(F(), F()).(FalseF); !ok {
		t.Error("Disj of falses should be false")
	}
	if _, ok := Disj(F(), T()).(TrueF); !ok {
		t.Error("Disj with true should be true")
	}
	// Flattening.
	f := Conj(Conj(Ge(V("x")), Ge(V("y"))), Ge(V("z")))
	if and, ok := f.(And); !ok || len(and.Fs) != 3 {
		t.Errorf("Conj did not flatten: %v", f)
	}
}

func TestImpliesNegate(t *testing.T) {
	x := Ge(V("x"))
	if _, ok := Implies(T(), x).(AtomF); !ok {
		t.Error("true -> x should be x")
	}
	if _, ok := Implies(F(), x).(TrueF); !ok {
		t.Error("false -> x should be true")
	}
	if _, ok := Implies(x, T()).(TrueF); !ok {
		t.Error("x -> true should be true")
	}
	if _, ok := Negate(Negate(x)).(AtomF); !ok {
		t.Error("double negation should cancel")
	}
}

func TestSubstAllParallel(t *testing.T) {
	// Parallel substitution {x -> y, y -> x} must swap, not chain.
	f := EqExpr(V("x").Scale(2), V("y"))
	g := SubstAll(f, map[Var]LinExpr{"x": V("y"), "y": V("x")})
	env := map[Var]int64{"x": 4, "y": 2}
	// After swap: 2y = x, holds for x=4,y=2.
	if !g.Eval(env, nil) {
		t.Fatalf("parallel substitution failed: %v", g)
	}
}

func TestFreeVars(t *testing.T) {
	f := Conj(Ge(V("x")), Exists{V: "y", F: EqExpr(V("y"), V("z"))})
	vs := FreeVarsOf(f)
	if len(vs) != 2 || vs[0] != "x" || vs[1] != "z" {
		t.Fatalf("FreeVarsOf = %v", vs)
	}
}

func TestQuantifierEval(t *testing.T) {
	dom := []int64{-2, -1, 0, 1, 2}
	// ∃y. y = x, over the domain, with x = 2.
	f := Exists{V: "y", F: EqExpr(V("y"), V("x"))}
	if !f.Eval(map[Var]int64{"x": 2}, dom) {
		t.Error("exists failed")
	}
	if f.Eval(map[Var]int64{"x": 7}, dom) {
		t.Error("exists out of domain should fail")
	}
	// ∀y. y*0 = 0.
	g := Forall{V: "y", F: Eq(Term(0, "y"))}
	if !g.Eval(map[Var]int64{}, dom) {
		t.Error("forall failed")
	}
}

// randAtom builds a random atom over vars x, y with small coefficients.
func randAtom(r *rand.Rand) Formula {
	e := Term(int64(r.Intn(5)-2), "x").Add(Term(int64(r.Intn(5)-2), "y")).AddConst(int64(r.Intn(9) - 4))
	switch r.Intn(3) {
	case 0:
		return Ge(e)
	case 1:
		return Eq(e)
	default:
		return Divides([]int64{2, 4}[r.Intn(2)], e)
	}
}

func randFormula(r *rand.Rand, depth int) Formula {
	if depth == 0 {
		return randAtom(r)
	}
	switch r.Intn(5) {
	case 0:
		return Conj(randFormula(r, depth-1), randFormula(r, depth-1))
	case 1:
		return Disj(randFormula(r, depth-1), randFormula(r, depth-1))
	case 2:
		return Negate(randFormula(r, depth-1))
	case 3:
		return Implies(randFormula(r, depth-1), randFormula(r, depth-1))
	default:
		return randAtom(r)
	}
}

func randEnv(r *rand.Rand) map[Var]int64 {
	return map[Var]int64{
		"x": int64(r.Intn(21) - 10),
		"y": int64(r.Intn(21) - 10),
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		f := randFormula(r, 3)
		g := NNF(f)
		env := randEnv(r)
		if f.Eval(env, nil) != g.Eval(env, nil) {
			t.Fatalf("NNF changed semantics:\n f=%v\n g=%v\n env=%v", f, g, env)
		}
	}
}

func TestDNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 2000; i++ {
		f := randFormula(r, 3)
		cs, err := DNF(f)
		if err != nil {
			continue
		}
		g := DNFFormula(cs)
		env := randEnv(r)
		if f.Eval(env, nil) != g.Eval(env, nil) {
			t.Fatalf("DNF changed semantics:\n f=%v\n g=%v\n env=%v", f, g, env)
		}
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for i := 0; i < 3000; i++ {
		f := randFormula(r, 3)
		g := Simplify(f)
		env := randEnv(r)
		if f.Eval(env, nil) != g.Eval(env, nil) {
			t.Fatalf("Simplify changed semantics:\n f=%v\n g=%v\n env=%v", f, g, env)
		}
	}
}

func TestSimplifyFoldsConstants(t *testing.T) {
	if _, ok := Simplify(Ge(Constant(0))).(TrueF); !ok {
		t.Error("0 >= 0 should simplify to true")
	}
	if _, ok := Simplify(Ge(Constant(-1))).(FalseF); !ok {
		t.Error("-1 >= 0 should simplify to false")
	}
	if _, ok := Simplify(Divides(4, Constant(8))).(TrueF); !ok {
		t.Error("4 | 8 should simplify to true")
	}
	if _, ok := Simplify(Divides(4, Constant(6))).(FalseF); !ok {
		t.Error("4 | 6 should simplify to false")
	}
	// Subsumption of same linear part.
	f := Conj(Ge(V("x").AddConst(5)), Ge(V("x").AddConst(2)))
	if got := Simplify(f).String(); got != "x + 2 >= 0" {
		t.Errorf("subsumption: %q", got)
	}
	// Contradiction x >= 1 ∧ x <= -1.
	g := Conj(Ge(V("x").AddConst(-1)), Ge(V("x").Scale(-1).AddConst(-1)))
	if _, ok := Simplify(g).(FalseF); !ok {
		t.Errorf("contradiction not detected: %v", Simplify(g))
	}
}

func TestSimplifyDropsUnusedQuantifier(t *testing.T) {
	f := Forall{V: "q", F: Ge(V("x"))}
	if _, ok := Simplify(f).(AtomF); !ok {
		t.Errorf("unused quantifier should drop: %v", Simplify(f))
	}
}

func TestNNFNegatedAtoms(t *testing.T) {
	env := map[Var]int64{"x": 3}
	// ¬(x >= 0) at x=3 is false; NNF form must agree.
	f := NNF(Negate(Ge(V("x"))))
	if f.Eval(env, nil) {
		t.Error("¬(x>=0) at 3 should be false")
	}
	// ¬(x = 0) at x=3 is true.
	g := NNF(Negate(Eq(V("x"))))
	if !g.Eval(env, nil) {
		t.Error("¬(x=0) at 3 should be true")
	}
	// ¬(2 | x) at x=3 is true; at x=4 false.
	h := NNF(Negate(Divides(2, V("x"))))
	if !h.Eval(env, nil) {
		t.Error("¬(2|x) at 3 should be true")
	}
	if h.Eval(map[Var]int64{"x": 4}, nil) {
		t.Error("¬(2|x) at 4 should be false")
	}
}

func TestSizeMonotone(t *testing.T) {
	a := Ge(V("x"))
	if Size(a) != 1 {
		t.Errorf("Size(atom) = %d", Size(a))
	}
	if Size(Conj(a, a, a)) <= Size(a) {
		t.Error("Size of conjunction should exceed atom")
	}
}
