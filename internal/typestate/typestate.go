// Package typestate implements the abstract storage model of Section 4.1
// of "Safety Checking of Machine Code": abstract locations, the state
// lattice of Figure 5, access permissions, typestate triples
// <type, state, access>, and abstract stores mapping abstract locations to
// typestates. All of these form meet semi-lattices.
package typestate

import (
	"fmt"
	"sort"
	"strings"

	"mcsafe/internal/types"
)

// Perm is a set of access permissions. r and w are properties of a
// location; f, x, and o are properties of the value stored in a location
// (Section 2). The typestate access component carries only f, x, o.
type Perm uint8

const (
	// PermR: the location may be read.
	PermR Perm = 1 << iota
	// PermW: the location may be written.
	PermW
	// PermF: the (pointer) value may be followed (dereferenced).
	PermF
	// PermX: the (function-pointer) value may be called.
	PermX
	// PermO: the value may be examined, copied, and operated upon.
	PermO
)

// ValuePerms masks a permission set down to the value permissions f, x, o
// that belong in a typestate.
func (p Perm) ValuePerms() Perm { return p & (PermF | PermX | PermO) }

// Has reports whether every permission in q is present in p.
func (p Perm) Has(q Perm) bool { return p&q == q }

// Meet of two access-permission sets is their intersection (Section 4.1).
func (p Perm) Meet(q Perm) Perm { return p & q }

// ParsePerm parses a permission string such as "rwfo".
func ParsePerm(s string) (Perm, error) {
	var p Perm
	for _, c := range s {
		switch c {
		case 'r':
			p |= PermR
		case 'w':
			p |= PermW
		case 'f':
			p |= PermF
		case 'x':
			p |= PermX
		case 'o':
			p |= PermO
		case '-':
		default:
			return 0, fmt.Errorf("typestate: unknown access permission %q", c)
		}
	}
	return p, nil
}

func (p Perm) String() string {
	var b strings.Builder
	for _, pc := range []struct {
		p Perm
		c byte
	}{{PermR, 'r'}, {PermW, 'w'}, {PermF, 'f'}, {PermX, 'x'}, {PermO, 'o'}} {
		if p.Has(pc.p) {
			b.WriteByte(pc.c)
		}
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// StateKind discriminates the variants of the state lattice of Figure 5.
type StateKind int

const (
	// StateTop: no information yet (above everything).
	StateTop StateKind = iota
	// StateUninit: [u t] — an uninitialized value of the location's type.
	StateUninit
	// StateInit: [i t] — an initialized scalar value.
	StateInit
	// StatePointsTo: a pointer value; Set holds the abstract locations
	// possibly referenced, and MayNull records whether null is a member.
	StatePointsTo
	// StateBottom: ⊥s — an undefined value of any type.
	StateBottom
)

// Ref is one possible referent of a pointer: an abstract location plus a
// byte offset into it (offsets arise from pointer arithmetic into
// aggregates; they are 0 for pointers to scalars and array bases).
type Ref struct {
	Loc string
	Off int
}

func (r Ref) String() string {
	if r.Off == 0 {
		return r.Loc
	}
	return fmt.Sprintf("%s+%d", r.Loc, r.Off)
}

// State is an element of the state lattice of Figure 5.
type State struct {
	Kind    StateKind
	Set     []Ref // for StatePointsTo, sorted, deduped
	MayNull bool  // for StatePointsTo
}

// Canonical states.
var (
	TopState    = State{Kind: StateTop}
	BottomState = State{Kind: StateBottom}
	UninitState = State{Kind: StateUninit}
	InitState   = State{Kind: StateInit}
	// NullState is the state of a pointer known to be null.
	NullState = State{Kind: StatePointsTo, MayNull: true}
)

// PointsTo builds a pointer state referencing the given locations.
func PointsTo(mayNull bool, refs ...Ref) State {
	s := State{Kind: StatePointsTo, MayNull: mayNull, Set: append([]Ref(nil), refs...)}
	s.normalize()
	return s
}

func (s *State) normalize() {
	sort.Slice(s.Set, func(i, j int) bool {
		if s.Set[i].Loc != s.Set[j].Loc {
			return s.Set[i].Loc < s.Set[j].Loc
		}
		return s.Set[i].Off < s.Set[j].Off
	})
	out := s.Set[:0]
	for i, r := range s.Set {
		if i == 0 || r != s.Set[i-1] {
			out = append(out, r)
		}
	}
	s.Set = out
}

// AddOffset returns the pointer state shifted by delta bytes (pointer
// arithmetic into an aggregate).
func (s State) AddOffset(delta int) State {
	if s.Kind != StatePointsTo {
		return s
	}
	refs := make([]Ref, len(s.Set))
	for i, r := range s.Set {
		refs[i] = Ref{Loc: r.Loc, Off: r.Off + delta}
	}
	return PointsTo(s.MayNull, refs...)
}

// Equal reports equality of states.
func (s State) Equal(o State) bool {
	if s.Kind != o.Kind {
		return false
	}
	if s.Kind != StatePointsTo {
		return true
	}
	if s.MayNull != o.MayNull || len(s.Set) != len(o.Set) {
		return false
	}
	for i := range s.Set {
		if s.Set[i] != o.Set[i] {
			return false
		}
	}
	return true
}

// Meet computes the meet in the state lattice of Figure 5. For pointer
// sets P1 and P2 the order is P1 >= P2 iff P2 ⊇ P1, so the meet of two
// pointer states is the union of their referent sets. The meet of an
// uninitialized state with anything other than itself or Top is Bottom,
// and the meet of a pointer state with a scalar state is Bottom.
func (s State) Meet(o State) State {
	switch {
	case s.Kind == StateTop:
		return o
	case o.Kind == StateTop:
		return s
	case s.Kind == StateBottom || o.Kind == StateBottom:
		return BottomState
	case s.Kind == o.Kind:
		switch s.Kind {
		case StateUninit, StateInit:
			return s
		case StatePointsTo:
			return PointsTo(s.MayNull || o.MayNull, append(append([]Ref(nil), s.Set...), o.Set...)...)
		}
	}
	return BottomState
}

// LE reports s <= o in the state lattice (s at least as low as o).
func (s State) LE(o State) bool { return s.Meet(o).Equal(s) }

// Initialized reports whether the state is known to be an initialized
// value (an initialized scalar or any pointer value).
func (s State) Initialized() bool {
	return s.Kind == StateInit || s.Kind == StatePointsTo
}

func (s State) String() string {
	switch s.Kind {
	case StateTop:
		return "⊤s"
	case StateBottom:
		return "⊥s"
	case StateUninit:
		return "uninitialized"
	case StateInit:
		return "initialized"
	case StatePointsTo:
		var parts []string
		for _, r := range s.Set {
			parts = append(parts, r.String())
		}
		if s.MayNull {
			parts = append(parts, "null")
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return "?"
}

// Typestate is the triple <type, state, access> of Section 4.1. The access
// component holds value permissions (f, x, o) only.
//
// Known/ConstVal piggyback a small constant lattice used to recognize
// address formation (sethi %hi / or %lo pairs) against the loader's
// data-symbol table; it refines the analysis but is not part of the
// paper's typestate triple.
type Typestate struct {
	Type   *types.Type
	State  State
	Access Perm

	Known    bool
	ConstVal int64
}

// TopTS is the top typestate, the initial value at unreached program points.
var TopTS = Typestate{Type: types.TopType, State: TopState, Access: PermF | PermX | PermO}

// BottomTS is the typestate of an undefined value with no annotations:
// <⊥t, ⊥s, ∅> (Section 5.1).
var BottomTS = Typestate{Type: types.BottomType, State: BottomState, Access: 0}

// Meet is the componentwise meet of typestates (Section 4.1). The
// constant refinement meets to "known" only when both sides agree.
func (t Typestate) Meet(o Typestate) Typestate {
	m := Typestate{
		Type:   types.Meet(t.Type, o.Type),
		State:  t.State.Meet(o.State),
		Access: t.Access.Meet(o.Access),
	}
	if t.IsTop() {
		m.Known, m.ConstVal = o.Known, o.ConstVal
	} else if o.IsTop() {
		m.Known, m.ConstVal = t.Known, t.ConstVal
	} else if t.Known && o.Known && t.ConstVal == o.ConstVal {
		m.Known, m.ConstVal = true, t.ConstVal
	}
	return m
}

// Equal reports equality of typestates.
func (t Typestate) Equal(o Typestate) bool {
	if t.Known != o.Known || (t.Known && t.ConstVal != o.ConstVal) {
		return false
	}
	return t.Type.Equal(o.Type) && t.State.Equal(o.State) && t.Access == o.Access
}

// IsTop reports whether the typestate is the top element.
func (t Typestate) IsTop() bool {
	return t.Type.Kind == types.Top && t.State.Kind == StateTop
}

func (t Typestate) String() string {
	return fmt.Sprintf("<%s, %s, %s>", t.Type, t.State, t.Access.ValuePerms())
}

// AbsLoc describes an abstract location: a named summary of one or more
// physical locations, with a size, an alignment, optional r/w location
// attributes, and a flag marking summary locations (Section 4.1).
type AbsLoc struct {
	Name     string
	Size     int
	Align    int
	Readable bool
	Writable bool
	// Summary marks an abstract location that summarizes more than one
	// physical location (e.g. all elements of an array); stores to a
	// summary location are weak updates.
	Summary bool
	// Region is the policy region this location belongs to ("" for
	// registers and untrusted scratch locations).
	Region string
	// IsReg marks machine registers, which are always readable and
	// writable and have alignment 0.
	IsReg bool
}

// World is the universe of abstract locations known to an analysis: the
// set absLoc of Section 4.1.
type World struct {
	locs  map[string]*AbsLoc
	order []string
}

// NewWorld returns an empty universe.
func NewWorld() *World {
	return &World{locs: make(map[string]*AbsLoc)}
}

// Add registers an abstract location; it returns an error if the name is
// already taken.
func (w *World) Add(l *AbsLoc) error {
	if _, ok := w.locs[l.Name]; ok {
		return fmt.Errorf("typestate: duplicate abstract location %q", l.Name)
	}
	w.locs[l.Name] = l
	w.order = append(w.order, l.Name)
	return nil
}

// AddReg registers a machine register as an abstract location.
func (w *World) AddReg(name string) *AbsLoc {
	l := &AbsLoc{Name: name, Size: 4, Align: 0, Readable: true, Writable: true, IsReg: true}
	if err := w.Add(l); err != nil {
		return w.locs[name]
	}
	return l
}

// Lookup returns the abstract location with the given name.
func (w *World) Lookup(name string) (*AbsLoc, bool) {
	l, ok := w.locs[name]
	return l, ok
}

// Names returns all abstract-location names in registration order.
func (w *World) Names() []string { return w.order }

// Store is an abstract store: a total map absLoc -> typestate
// (Section 4.2). A nil-map Store with Top == true represents the store
// that maps every location to the top typestate, which is the initial
// dataflow value at every program point except the entry.
type Store struct {
	Top bool
	m   map[string]Typestate
}

// TopStore returns the store that is ⊤ everywhere.
func TopStore() Store { return Store{Top: true} }

// Len reports the number of explicitly-tracked typestate facts — the
// fact-size measure the observability layer aggregates per program
// point. The top store tracks none.
func (s Store) Len() int { return len(s.m) }

// NewStore returns an empty (non-top) store; unmapped locations read as
// the bottom typestate <⊥t, ⊥s, ∅>.
func NewStore() Store { return Store{m: make(map[string]Typestate)} }

// Get returns the typestate of the named location.
func (s Store) Get(name string) Typestate {
	if s.Top {
		return TopTS
	}
	if ts, ok := s.m[name]; ok {
		return ts
	}
	return BottomTS
}

// Set returns a copy of the store with the named location updated.
// Setting a location on the top store materializes a concrete store.
func (s Store) Set(name string, ts Typestate) Store {
	n := s.Clone()
	if n.Top {
		n = NewStore()
	}
	n.m[name] = ts
	return n
}

// SetInPlace mutates the store; the store must not be shared.
func (s *Store) SetInPlace(name string, ts Typestate) {
	if s.Top {
		*s = NewStore()
	}
	s.m[name] = ts
}

// Clone returns a deep copy of the store.
func (s Store) Clone() Store {
	if s.Top {
		return Store{Top: true}
	}
	n := Store{m: make(map[string]Typestate, len(s.m))}
	for k, v := range s.m {
		n.m[k] = v
	}
	return n
}

// Meet computes the pointwise meet of two stores; ⊤ is the identity.
func (s Store) Meet(o Store) Store {
	if s.Top {
		return o.Clone()
	}
	if o.Top {
		return s.Clone()
	}
	n := NewStore()
	for k, v := range s.m {
		n.m[k] = v.Meet(o.Get(k))
	}
	for k, v := range o.m {
		if _, ok := s.m[k]; !ok {
			n.m[k] = v.Meet(BottomTS)
		}
	}
	return n
}

// Equal reports whether two stores are pointwise equal.
func (s Store) Equal(o Store) bool {
	if s.Top || o.Top {
		return s.Top == o.Top
	}
	for k, v := range s.m {
		if !v.Equal(o.Get(k)) {
			return false
		}
	}
	for k, v := range o.m {
		if !v.Equal(s.Get(k)) {
			return false
		}
	}
	return true
}

// Keys returns the mapped location names in sorted order.
func (s Store) Keys() []string {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (s Store) String() string {
	if s.Top {
		return "⊤store"
	}
	var b strings.Builder
	for i, k := range s.Keys() {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s:%s", k, s.m[k])
	}
	return b.String()
}
