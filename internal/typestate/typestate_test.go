package typestate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcsafe/internal/types"
)

func TestParsePerm(t *testing.T) {
	p, err := ParsePerm("rwfo")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Has(PermR|PermW|PermF|PermO) || p.Has(PermX) {
		t.Fatalf("ParsePerm(rwfo) = %v", p)
	}
	if _, err := ParsePerm("rz"); err == nil {
		t.Error("ParsePerm(rz) should fail")
	}
	if got := (PermR | PermO).String(); got != "ro" {
		t.Errorf("String() = %q, want ro", got)
	}
	if got := Perm(0).String(); got != "-" {
		t.Errorf("empty Perm String() = %q, want -", got)
	}
}

func TestPermMeetIsIntersection(t *testing.T) {
	a := PermR | PermF | PermO
	b := PermR | PermW | PermO
	if got := a.Meet(b); got != PermR|PermO {
		t.Errorf("Meet = %v", got)
	}
}

func TestStateMeet(t *testing.T) {
	pm := PointsTo(false, Ref{Loc: "m"})
	pn := PointsTo(true) // {null}
	cases := []struct {
		a, b, want State
		name       string
	}{
		{TopState, InitState, InitState, "top identity"},
		{BottomState, InitState, BottomState, "bottom absorbs"},
		{InitState, InitState, InitState, "init idempotent"},
		{UninitState, InitState, BottomState, "uninit meet init"},
		{pm, pn, PointsTo(true, Ref{Loc: "m"}), "pointer set union"},
		{pm, UninitState, BottomState, "pointer meet uninit pointer"},
		{pm, InitState, BottomState, "pointer meet scalar init"},
	}
	for _, c := range cases {
		if got := c.a.Meet(c.b); !got.Equal(c.want) {
			t.Errorf("%s: Meet(%v,%v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestPointsToNormalization(t *testing.T) {
	s := PointsTo(false, Ref{Loc: "b"}, Ref{Loc: "a"}, Ref{Loc: "b"})
	if len(s.Set) != 2 || s.Set[0].Loc != "a" || s.Set[1].Loc != "b" {
		t.Fatalf("normalize: %v", s.Set)
	}
	if got := s.String(); got != "{a, b}" {
		t.Errorf("String = %q", got)
	}
	if got := PointsTo(true, Ref{Loc: "m"}).String(); got != "{m, null}" {
		t.Errorf("String = %q", got)
	}
}

func TestAddOffset(t *testing.T) {
	s := PointsTo(false, Ref{Loc: "t", Off: 4})
	s2 := s.AddOffset(4)
	if s2.Set[0].Off != 8 {
		t.Fatalf("AddOffset: %v", s2)
	}
	if got := s2.String(); got != "{t+8}" {
		t.Errorf("String = %q", got)
	}
	// Non-pointer states pass through unchanged.
	if got := InitState.AddOffset(4); !got.Equal(InitState) {
		t.Errorf("scalar AddOffset = %v", got)
	}
}

func stateGen(r *rand.Rand) State {
	switch r.Intn(6) {
	case 0:
		return TopState
	case 1:
		return BottomState
	case 2:
		return UninitState
	case 3:
		return InitState
	default:
		locs := []Ref{{Loc: "a"}, {Loc: "b"}, {Loc: "c", Off: 4}}
		var refs []Ref
		for _, l := range locs {
			if r.Intn(2) == 0 {
				refs = append(refs, l)
			}
		}
		return PointsTo(r.Intn(2) == 0, refs...)
	}
}

func TestStateLatticeProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	r := rand.New(rand.NewSource(7))
	check := func(name string, prop func() bool) {
		if err := quick.Check(func(uint8) bool { return prop() }, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	check("commutative", func() bool {
		a, b := stateGen(r), stateGen(r)
		return a.Meet(b).Equal(b.Meet(a))
	})
	check("idempotent", func() bool {
		a := stateGen(r)
		return a.Meet(a).Equal(a)
	})
	check("associative", func() bool {
		a, b, c := stateGen(r), stateGen(r), stateGen(r)
		return a.Meet(b).Meet(c).Equal(a.Meet(b.Meet(c)))
	})
	check("lower bound", func() bool {
		a, b := stateGen(r), stateGen(r)
		m := a.Meet(b)
		return m.LE(a) && m.LE(b)
	})
}

func TestTypestateMeetComponentwise(t *testing.T) {
	a := Typestate{Type: types.Int32Type, State: InitState, Access: PermO | PermF}
	b := Typestate{Type: types.Int32Type, State: UninitState, Access: PermO}
	m := a.Meet(b)
	if !m.Type.Equal(types.Int32Type) || m.State.Kind != StateBottom || m.Access != PermO {
		t.Fatalf("Meet = %v", m)
	}
	if !TopTS.Meet(a).Equal(a) {
		t.Error("TopTS should be meet identity")
	}
}

func TestWorld(t *testing.T) {
	w := NewWorld()
	if err := w.Add(&AbsLoc{Name: "e", Size: 4, Align: 4, Readable: true, Summary: true}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(&AbsLoc{Name: "e"}); err == nil {
		t.Error("duplicate Add should fail")
	}
	w.AddReg("%o0")
	l, ok := w.Lookup("%o0")
	if !ok || !l.IsReg || !l.Readable || !l.Writable {
		t.Fatalf("register absloc: %+v", l)
	}
	if got := w.Names(); len(got) != 2 || got[0] != "e" || got[1] != "%o0" {
		t.Fatalf("Names = %v", got)
	}
}

func TestStoreBasics(t *testing.T) {
	s := TopStore()
	if !s.Get("x").IsTop() {
		t.Error("top store should map everything to top")
	}
	s2 := s.Set("x", Typestate{Type: types.Int32Type, State: InitState, Access: PermO})
	if s2.Top {
		t.Error("Set on top store should materialize")
	}
	if s2.Get("y").Equal(TopTS) {
		t.Error("materialized store should read bottom for unmapped")
	}
	if !s2.Get("y").Equal(BottomTS) {
		t.Errorf("unmapped = %v", s2.Get("y"))
	}
	// Clone independence.
	s3 := s2.Clone()
	s3.SetInPlace("x", BottomTS)
	if s2.Get("x").Equal(BottomTS) {
		t.Error("Clone is not independent")
	}
}

func TestStoreMeet(t *testing.T) {
	init := Typestate{Type: types.Int32Type, State: InitState, Access: PermO}
	uninit := Typestate{Type: types.Int32Type, State: UninitState, Access: PermO}

	a := NewStore()
	a.SetInPlace("x", init)
	b := NewStore()
	b.SetInPlace("x", uninit)

	m := a.Meet(b)
	if m.Get("x").State.Kind != StateBottom {
		t.Errorf("meet of init/uninit = %v", m.Get("x"))
	}

	// Top is identity.
	if !a.Meet(TopStore()).Equal(a) || !TopStore().Meet(a).Equal(a) {
		t.Error("top store should be meet identity")
	}

	// Locations present in only one store meet with bottom.
	c := NewStore()
	c.SetInPlace("y", init)
	m2 := a.Meet(c)
	if m2.Get("y").State.Kind != StateBottom {
		t.Errorf("one-sided location should meet to bottom state, got %v", m2.Get("y"))
	}
}

func TestStoreEqual(t *testing.T) {
	init := Typestate{Type: types.Int32Type, State: InitState, Access: PermO}
	a := NewStore()
	a.SetInPlace("x", init)
	b := NewStore()
	b.SetInPlace("x", init)
	if !a.Equal(b) {
		t.Error("equal stores not Equal")
	}
	b.SetInPlace("z", BottomTS)
	if !a.Equal(b) {
		t.Error("explicit bottom should equal missing entry")
	}
	b.SetInPlace("z", init)
	if a.Equal(b) {
		t.Error("different stores Equal")
	}
	if a.Equal(TopStore()) || !TopStore().Equal(TopStore()) {
		t.Error("top store equality wrong")
	}
}
