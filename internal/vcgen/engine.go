// Package vcgen implements Phase 5 of the safety-checking analysis:
// verification of the global safety preconditions (Section 5.2). It
// generates verification conditions by back-substituting each condition
// through the program — demand-driven, one condition at a time — using
// weakest liberal preconditions, and discharges them with the
// linear-constraint prover. Loops are crossed by synthesizing invariants
// with the induction-iteration method; procedure calls are walked through
// as if inlined; trusted host calls apply their specified
// postconditions. Back-substitution over acyclic regions proceeds in
// backwards topological order with simplification at junction points to
// control formula growth (Section 5.2.1).
package vcgen

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"mcsafe/internal/annotate"
	"mcsafe/internal/cfg"
	"mcsafe/internal/expr"
	"mcsafe/internal/induction"
	"mcsafe/internal/isa"
	"mcsafe/internal/obs"
	"mcsafe/internal/propagate"
	"mcsafe/internal/solver"
)

// Options configures the engine.
type Options struct {
	Induction induction.Options
	// Parallelism is the number of workers Prove uses to discharge
	// condition groups: 0 means GOMAXPROCS, 1 the exact sequential
	// legacy path. Work items are independent, results are written by
	// index, and per-item engines start from identical scratch state,
	// so verdicts and ordering do not depend on the worker count.
	Parallelism int
	// CondTimeout bounds each condition's proof wall clock (0 = none).
	// A condition whose proof exceeds it is abandoned with a
	// resource-coded verdict; the rest of the check continues with a
	// fresh timeout per condition.
	CondTimeout time.Duration
}

// Stats reports verification effort.
type Stats struct {
	Conditions    int
	Proved        int
	InductionRuns int
	CacheHits     int
	// InductionIters and InductionCands total the candidate chains
	// examined and candidate formulas generated across all invariant
	// syntheses (induction.Stats, summed).
	InductionIters int
	InductionCands int
}

// Attempt records one proof attempt on a condition, for explainable
// verdicts: the strategy tried, the formula it posed, the WLP the
// back-substitution produced for it, and whether the prover succeeded.
type Attempt struct {
	// Kind is "group" (the bounds-group conjunction), "bare" (the
	// predicate alone), or "with-facts" (assuming the typestate
	// assertions).
	Kind    string `json:"kind"`
	Formula string `json:"formula,omitempty"`
	// WLP is the weakest-precondition formula the attempt reduced to —
	// at the enclosing loop's entry for loop conditions, at the
	// procedure entry otherwise ("" when the verdict came from a cache).
	WLP    string `json:"wlp,omitempty"`
	Proved bool   `json:"proved"`
}

// CondResult is the verdict for one global safety condition.
type CondResult struct {
	Cond   *annotate.GlobalCond
	Proved bool
	Detail string
	// Resource marks a condition left unproven because the resource
	// envelope (deadline, step budget, per-condition timeout) was
	// exhausted rather than because the proof failed on the merits. The
	// core charges such violations the "resource" code.
	Resource bool
	// Span is the condition's span in the observer's trace (0 when not
	// observing).
	Span obs.SpanID
	// Attempts is the verdict path: every proof strategy tried, in
	// order, ending with the one that succeeded (or all failures).
	Attempts []Attempt
}

// Engine proves global safety conditions.
type Engine struct {
	Res   *propagate.Result
	P     *solver.Prover
	Opts  Options
	Stats Stats
	// Obs, when non-nil, records condition/induction spans. Like the
	// prover's observer it is single-owner: the goroutine running this
	// engine. The pool gives each worker engine a forked Worker.
	Obs *obs.Worker

	// wlpCapture, when non-nil, receives the first back-substituted
	// entry formula computed under the current proof attempt (the "WLP"
	// of explainable verdicts).
	wlpCapture *string

	g *cfg.Graph
	// rm and conv are the checked program's register model and calling
	// convention (from its architecture); wlp rendering and clobber
	// modeling go through them.
	rm    *isa.RegModel
	conv  *isa.Convention
	fresh int
	// cache and entryCache are fingerprint-keyed verdict caches (the
	// same verified-hit ShardedCache the pool shares, used privately
	// here); crossCache maps a crossing's composite fingerprint to its
	// synthesized invariant.
	cache      *solver.ShardedCache
	entryCache *solver.ShardedCache
	crossCache map[expr.FP]expr.Formula
	// entryActive breaks recursion cycles between loop crossings and
	// their entry checks (a cycle answers false: conservative).
	entryActive map[expr.FP]bool
	// shared, when non-nil, replaces the bool-valued caches with the
	// pool's, shared across a worker pool's engines. Only the bool
	// caches are shareable: their keys embed the complete formula (by
	// fingerprint, verified structurally on hit) and its proof point,
	// and a verdict about those is a fact whichever engine computes it.
	// The formula-valued crossCache stays per-engine — a cached
	// invariant carries the minting engine's fresh-variable names,
	// which another engine could independently re-mint with a
	// different meaning (capture).
	shared *sharedCaches
}

// sharedCaches backs a pool of engines with concurrency-safe variants of
// the bool-valued proof caches.
type sharedCaches struct {
	query *solver.ShardedCache // provedCached results
	entry *solver.ShardedCache // loop-entry proof results
}

// New builds an engine over propagation results.
func New(res *propagate.Result, p *solver.Prover, opts Options) *Engine {
	arch := res.G.Prog.Arch
	return &Engine{Res: res, P: p, Opts: opts, g: res.G,
		rm:          arch.Regs(),
		conv:        arch.Conv(),
		cache:       solver.NewShardedCache(),
		entryCache:  solver.NewShardedCache(),
		crossCache:  make(map[expr.FP]expr.Formula),
		entryActive: make(map[expr.FP]bool)}
}

// newShared builds a worker engine whose bool-valued caches are the
// pool's shared ones.
func newShared(res *propagate.Result, p *solver.Prover, opts Options, sc *sharedCaches) *Engine {
	e := New(res, p, opts)
	e.shared = sc
	return e
}

// Prove verifies every global condition, returning per-condition
// verdicts in the order the conditions were given. Conditions are
// partitioned into groups of comparable constituents — the bounds checks
// of one memory access — and each group is first attempted as a single
// conjunction (the formula-grouping enhancement of Section 5.2.1: the
// lower bound's invariant protects the upper bound's impossible paths
// and vice versa), falling back to individual proofs so that a single
// violation does not mask the rest.
//
// With Opts.Parallelism != 1, independent condition groups are
// discharged by a worker pool (see pool.go); with Parallelism 1 the
// original sequential path runs unchanged.
func (e *Engine) Prove(conds []*annotate.GlobalCond) []CondResult {
	out, _ := e.ProveContext(context.Background(), conds)
	return out
}

// ProveContext is Prove with cancellation: the context is consulted
// between conditions (sequential path) and between condition chunks
// (pool path). On cancellation it returns the verdicts computed so far
// together with ctx.Err(); unreached entries are zero-valued.
func (e *Engine) ProveContext(ctx context.Context, conds []*annotate.GlobalCond) ([]CondResult, error) {
	par := e.Opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par == 1 || len(conds) <= 1 {
		return e.proveSequential(ctx, conds)
	}
	return e.proveParallel(ctx, conds, par)
}

// condGroup is one bounds group: the indexes (into the conds slice) of
// the comparable conditions at a (node, position) pair, in input order.
type condGroup struct {
	node    int
	after   bool
	members []int
}

// boundsGroups partitions the bounds conditions per (node, position) and
// returns the groups with at least two members, ordered by node and
// before/after position. The result is a deterministic function of the
// input; both the sequential and the parallel path consume it.
func boundsGroups(conds []*annotate.GlobalCond) []condGroup {
	type groupKey struct {
		node  int
		after bool
	}
	byKey := map[groupKey][]int{}
	for i, c := range conds {
		if strings.Contains(c.Desc, "bound") {
			k := groupKey{c.Node, c.AfterNode}
			byKey[k] = append(byKey[k], i)
		}
	}
	var out []condGroup
	for k, members := range byKey {
		if len(members) < 2 {
			continue
		}
		out = append(out, condGroup{node: k.node, after: k.after, members: members})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].node != out[j].node {
			return out[i].node < out[j].node
		}
		return !out[i].after && out[j].after
	})
	return out
}

// proveGroup attempts a bounds group as a single conjunction.
func (e *Engine) proveGroup(conds []*annotate.GlobalCond, g condGroup) bool {
	fs := make([]expr.Formula, len(g.members))
	for i, idx := range g.members {
		fs[i] = conds[idx].F
	}
	conj := expr.Simplify(expr.Conj(fs...))
	return e.provedCached(g.node, g.after, conj)
}

// proveCond discharges one condition. groupProved short-circuits the
// proof when the condition's bounds group already succeeded as a
// conjunction. Every strategy tried is recorded as an Attempt, and the
// whole proof runs under a "cond" span when observing.
func (e *Engine) proveCond(c *annotate.GlobalCond, groupProved bool) CondResult {
	r := CondResult{Cond: c}
	r.Span = e.Obs.Begin("cond", c.Desc)
	if e.Opts.CondTimeout > 0 {
		// A fresh per-condition deadline; a previous condition's timeout
		// trip is cleared so one pathological condition does not poison
		// the rest.
		e.P.BeginCond(time.Now().Add(e.Opts.CondTimeout))
	}
	attempt := func(kind string, f expr.Formula) bool {
		f = expr.Simplify(f)
		var wlp string
		e.wlpCapture = &wlp
		ok := e.provedCached(c.Node, c.AfterNode, f)
		e.wlpCapture = nil
		r.Attempts = append(r.Attempts, Attempt{
			Kind: kind, Formula: e.P.Intern.StringOf(f), WLP: wlp, Proved: ok,
		})
		return ok
	}
	r.Proved = groupProved
	if groupProved {
		r.Attempts = append(r.Attempts, Attempt{Kind: "group", Proved: true})
	} else if reason := e.P.ResourceStop(); reason != "" {
		// The check-wide envelope (deadline or step budget) is already
		// exhausted: record a conservative resource verdict without
		// spending further work, so the whole check drains promptly.
		r.Resource = true
		r.Detail = "not attempted: " + reason
	} else {
		// Bare predicate first: fact-free formulas keep the
		// invariant chains clean; fall back to assuming the
		// typestate assertions.
		r.Proved = attempt("bare", c.F)
		if !r.Proved {
			if _, noFacts := c.Facts.(expr.TrueF); !noFacts {
				r.Proved = attempt("with-facts", expr.Implies(c.Facts, c.F))
			}
		}
		if !r.Proved {
			if reason := e.P.ResourceStop(); reason != "" {
				// The proof was interrupted mid-attempt: the verdict is
				// "unproven for lack of budget", not a refutation.
				r.Resource = true
				r.Detail = "unproven: " + reason
			}
		}
	}
	e.Stats.Conditions++
	if r.Proved {
		e.Stats.Proved++
	} else if r.Detail == "" {
		r.Detail = "cannot establish " + e.P.Intern.StringOf(c.F)
	}
	e.Obs.End("code", c.Code, "proved", fmt.Sprint(r.Proved))
	return r
}

// proveSequential is the legacy single-threaded path: one engine, one
// prover, caches shared across all conditions. The context is checked
// before every group and every condition.
func (e *Engine) proveSequential(ctx context.Context, conds []*annotate.GlobalCond) ([]CondResult, error) {
	groupProved := make([]bool, len(conds))
	for _, g := range boundsGroups(conds) {
		if err := ctx.Err(); err != nil {
			return make([]CondResult, len(conds)), err
		}
		if e.proveGroup(conds, g) {
			for _, idx := range g.members {
				groupProved[idx] = true
			}
		}
	}
	out := make([]CondResult, len(conds))
	for i, c := range conds {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out[i] = e.proveCond(c, groupProved[i])
	}
	return out, nil
}

// stopped reports whether the prover has tripped (resource exhaustion
// or cancellation): further proof work is pointless and would only
// delay draining the check.
func (e *Engine) stopped() bool { return e.P.Stopped() }

// provedCached runs proveAt through the per-query cache. Verdicts
// reached after the prover tripped are conservative but
// budget-dependent — not facts about the formula — so they are never
// cached (the cache must hold only merits verdicts).
func (e *Engine) provedCached(node int, after bool, f expr.Formula) bool {
	if e.stopped() {
		return false
	}
	// The proof point (node, after) is the key's salt: mixed into the
	// fingerprint for distribution, and stored alongside the formula so
	// a hit is verified against both.
	salt := uint64(node)<<1 | boolBit(after)
	key := expr.Fingerprint(f).Mixed(salt)
	cache := e.cache
	if e.shared != nil {
		cache = e.shared.query
	}
	if v, ok := cache.Get(key, salt, f); ok {
		e.Stats.CacheHits++
		return v
	}
	v := e.proveAt(node, after, f)
	if !e.stopped() {
		cache.Put(key, salt, f, v)
	}
	return v
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// point context: a formula required before a node, in all executions.

// simplify applies syntactic simplification plus quantifier pruning (a
// sound strengthening; see solver.PruneQuant). Quantifier-free
// formulas skip the pruning pass and the re-simplification of its
// output — Simplify is idempotent, so both would be identities.
func (e *Engine) simplify(f expr.Formula) expr.Formula {
	s := expr.Simplify(f)
	if expr.QuantFree(s) {
		return s
	}
	return expr.Simplify(e.P.PruneQuant(s))
}

// captureWLP hands the first back-substituted entry formula of the
// current proof attempt to the explain machinery (first write wins: the
// top-level query's formula, not a recursive call-site check's).
func (e *Engine) captureWLP(g expr.Formula) {
	if e.wlpCapture != nil && *e.wlpCapture == "" {
		*e.wlpCapture = e.P.Intern.StringOf(g)
	}
}

// synthesize runs one invariant synthesis under an "induction" span,
// folding the search-effort stats into the engine's totals.
func (e *Engine) synthesize(hooks induction.Hooks, what string) (*induction.Result, bool) {
	if e.stopped() {
		// The envelope is gone: skip the search entirely (the caller
		// degrades to "not proved", which is conservative).
		return &induction.Result{}, false
	}
	e.Stats.InductionRuns++
	e.Obs.Begin("induction", what)
	res, ok := induction.Synthesize(e.P, hooks, e.Opts.Induction)
	e.Stats.InductionIters += res.Stats.Iterations
	e.Stats.InductionCands += res.Stats.Candidates
	e.Obs.End("iters", fmt.Sprint(res.Stats.Iterations), "ok", fmt.Sprint(ok))
	return res, ok
}

// proveAt proves that f holds before (or after) node in every execution.
func (e *Engine) proveAt(node int, after bool, f expr.Formula) bool {
	if after {
		f = e.wlpInsn(node, f)
	}
	f = e.simplify(f)
	if _, isTrue := f.(expr.TrueF); isTrue {
		return true
	}
	if l := e.g.InnermostLoop(node); l != nil {
		return e.proveInLoop(l, node, f)
	}
	proc := e.g.ProcOf(node)
	g := e.passRegion(region{proc: proc}, map[int]expr.Formula{node: f}, nil, nil, expr.T())
	e.captureWLP(g)
	return e.proveAtProcEntry(proc, g)
}

// proveInLoop runs induction iteration for a condition at a node inside a
// natural loop (Section 5.2.2's worked example).
func (e *Engine) proveInLoop(l *cfg.Loop, node int, f expr.Formula) bool {
	proc := e.g.ProcOf(node)
	reg := region{proc: proc, loop: l}
	hooks := induction.Hooks{
		First: func(back expr.Formula) expr.Formula {
			g := e.passRegion(reg, map[int]expr.Formula{node: f}, nil, nil, back)
			e.captureWLP(g)
			return g
		},
		Next: func(back expr.Formula) expr.Formula {
			return e.passRegion(reg, nil, nil, nil, back)
		},
		OnEntry: func(w expr.Formula) bool {
			return e.proveAtLoopEntry(l, w)
		},
		ModifiedVars: e.modifiedVars(l),
	}
	_, ok := e.synthesize(hooks, "in-loop")
	return ok
}

// proveAtLoopEntry proves that w holds at the loop's header whenever the
// loop is entered from outside.
func (e *Engine) proveAtLoopEntry(l *cfg.Loop, w expr.Formula) bool {
	w = expr.Simplify(w)
	if _, isTrue := w.(expr.TrueF); isTrue {
		return true
	}
	if e.stopped() {
		return false
	}
	salt := uint64(l.Header)
	key := expr.Fingerprint(w).Mixed(salt)
	cache := e.entryCache
	if e.shared != nil {
		cache = e.shared.entry
	}
	if v, ok := cache.Get(key, salt, w); ok {
		return v
	}
	if e.entryActive[key] {
		return false
	}
	e.entryActive[key] = true
	v := e.proveAtLoopEntryUncached(l, w)
	delete(e.entryActive, key)
	if e.stopped() {
		// A verdict reached under a trip is budget-dependent: never
		// cache it.
		return v
	}
	cache.Put(key, salt, w, v)
	return v
}

func (e *Engine) proveAtLoopEntryUncached(l *cfg.Loop, w expr.Formula) bool {
	proc := e.g.ProcOf(l.Header)
	entryTargets := map[*cfg.Loop]expr.Formula{l: w}
	if l.Parent == nil {
		g := e.passRegion(region{proc: proc}, nil, entryTargets, nil, expr.T())
		return e.proveAtProcEntry(proc, g)
	}
	// The loop entry lies inside the parent loop: synthesize at the
	// parent level (the nested-loop enhancement of Section 5.2.1).
	parent := l.Parent
	reg := region{proc: proc, loop: parent}
	hooks := induction.Hooks{
		First: func(back expr.Formula) expr.Formula {
			return e.passRegion(reg, nil, entryTargets, nil, back)
		},
		Next: func(back expr.Formula) expr.Formula {
			return e.passRegion(reg, nil, nil, nil, back)
		},
		OnEntry: func(wi expr.Formula) bool {
			return e.proveAtLoopEntry(parent, wi)
		},
		ModifiedVars: e.modifiedVars(parent),
	}
	_, ok := e.synthesize(hooks, "loop-entry")
	return ok
}

// proveAtProcEntry discharges a formula required at a procedure's entry:
// against the initial annotations for the program's entry procedure, and
// at every call site otherwise (Section 5.2.1: "when we reach the entry
// of a procedure, we check that the conditions are true at each
// call site").
func (e *Engine) proveAtProcEntry(proc *cfg.Proc, g expr.Formula) bool {
	g = expr.Simplify(g)
	if _, isTrue := g.(expr.TrueF); isTrue {
		return true
	}
	if proc.Index == e.g.EntryProc {
		return e.P.Valid(expr.Implies(e.Res.Ini.Constraints, g))
	}
	sites := e.sitesCalling(proc.Index)
	if len(sites) == 0 {
		// Never called: vacuously true.
		return true
	}
	for _, site := range sites {
		if !e.proveAt(site.DelayNode, true, g) {
			return false
		}
	}
	return true
}

func (e *Engine) sitesCalling(procIdx int) []*cfg.CallSite {
	var out []*cfg.CallSite
	for _, s := range e.g.Sites {
		if s.Callee == procIdx {
			out = append(out, s)
		}
	}
	return out
}

// maxFormulaSize bounds per-point formulas during back-substitution.
const maxFormulaSize = 20000

// liveSet computes, for a whole-procedure pass, the nodes from which a
// requirement source is reachable in the intraprocedural view: the
// target nodes themselves and the headers of child loops carrying
// loop-entry targets. A node outside this set can only ever contribute
// the trivial requirement true — every continuation it sees is true and
// wlp preserves it — so the pass may skip it without changing the entry
// formula. This is what keeps back-substitution demand-driven at scale:
// the cost of a condition is the size of its backward slice, not of the
// whole procedure (large generated programs are near-linear instead of
// quadratic, and unrelated loops are no longer crossed — and their
// invariants no longer synthesized — just to carry true around).
func (e *Engine) liveSet(proc *cfg.Proc, targets map[int]expr.Formula, loopEntryTargets map[*cfg.Loop]expr.Formula) map[int]bool {
	live := make(map[int]bool, len(targets)+8)
	var queue []int
	add := func(id int) {
		if e.g.Nodes[id].Proc == proc.Index && !live[id] {
			live[id] = true
			queue = append(queue, id)
		}
	}
	for id := range targets {
		add(id)
	}
	for l := range loopEntryTargets {
		add(l.Header)
	}
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, edge := range e.g.IntraPreds(id) {
			add(edge.To)
		}
	}
	return live
}

// region identifies a back-substitution region: a whole procedure body
// (loop == nil) or one natural loop.
type region struct {
	proc *cfg.Proc
	loop *cfg.Loop
}

func (r region) contains(g *cfg.Graph, id int) bool {
	if g.Nodes[id].Proc != r.proc.Index {
		return false
	}
	if r.loop != nil {
		return r.loop.Contains(id)
	}
	return true
}

// passRegion back-substitutes over one region in backwards topological
// order, returning the formula required at the region's entry (the
// procedure entry, or the loop header when entered from outside).
//
//   - targets: formulas required before given nodes;
//   - loopEntryTargets: formulas required on entry to given child loops;
//   - exitCont: continuation formulas for edges leaving the region (nil
//     means no requirement, i.e. true) — used when the region is an
//     inner loop crossed during an enclosing pass;
//   - back: the contribution of the region's back edges (loops only).
func (e *Engine) passRegion(
	r region,
	targets map[int]expr.Formula,
	loopEntryTargets map[*cfg.Loop]expr.Formula,
	exitCont func(to int) expr.Formula,
	back expr.Formula,
) expr.Formula {
	A := map[int]expr.Formula{}
	entryOf := map[*cfg.Loop]expr.Formula{}

	// Whole-procedure passes are pruned to the backward slice of the
	// requirement sources; loop regions are left alone (a natural loop's
	// body is strongly connected through its header, so nothing could be
	// skipped), as are passes with exit continuations (any exit may carry
	// a requirement).
	var live map[int]bool
	if r.loop == nil && exitCont == nil && (len(targets) > 0 || len(loopEntryTargets) > 0) {
		live = e.liveSet(r.proc, targets, loopEntryTargets)
	}

	// contFor yields the formula required at the point just before y,
	// as seen from an edge x->y inside the region.
	var contFor func(y int) expr.Formula
	contFor = func(y int) expr.Formula {
		if r.loop != nil && y == r.loop.Header {
			return back
		}
		if !r.contains(e.g, y) {
			if exitCont != nil {
				return exitCont(y)
			}
			return expr.T()
		}
		// Child loop?
		inner := e.g.InnermostLoop(y)
		if inner != nil && inner != r.loop {
			c := e.childLoopOf(r, inner)
			if c != nil {
				if f, ok := entryOf[c]; ok {
					return f
				}
				f := e.crossLoopEntry(r, c, targets, loopEntryTargets, exitCont, back, contFor)
				entryOf[c] = f
				return f
			}
		}
		if f, ok := A[y]; ok {
			return f
		}
		return expr.T()
	}

	// Process the procedure's RPO in reverse; skip nodes outside the
	// region or inside child loops (they are crossed as a unit).
	rpo := r.proc.RPO
	var entryFormula expr.Formula = expr.T()
	for i := len(rpo) - 1; i >= 0; i-- {
		x := rpo[i]
		if !r.contains(e.g, x) {
			continue
		}
		if inner := e.g.InnermostLoop(x); inner != nil && inner != r.loop {
			continue // member of a child loop
		}
		if live != nil && !live[x] {
			continue // cannot reach a requirement source: contributes true
		}
		after := e.succFormula(x, contFor)
		f := e.wlpInsn(x, after)
		if t, ok := targets[x]; ok {
			f = expr.Conj(t, f)
		}
		f = e.simplify(f)
		if expr.Size(f) > maxFormulaSize {
			// Conservative safety valve against formula blow-up: a
			// stronger (false) requirement can only make the proof
			// fail, never accept an unsafe program.
			f = expr.F()
		}
		A[x] = f
	}

	if r.loop != nil {
		// The header is always a direct member of its own loop.
		if f, ok := A[r.loop.Header]; ok {
			return f
		}
		return expr.T()
	}
	// The procedure entry may itself sit inside a loop (a loop starting
	// at the first instruction); contFor handles both cases.
	entryFormula = contFor(r.proc.Entry)
	return entryFormula
}

// succFormula combines the successor contributions of node x into the
// formula required just after x executes. When both legs of a
// conditional branch require the same formula, the guard is dropped —
// the junction-point simplification that keeps formulas from doubling
// at every branch (Section 5.2.1, fifth enhancement).
func (e *Engine) succFormula(x int, contFor func(int) expr.Formula) expr.Formula {
	node := e.g.Nodes[x]
	type leg struct {
		guard, cont expr.Formula
	}
	var legs []leg
	for _, edge := range e.g.IntraSuccs(x) {
		var cont expr.Formula
		if edge.Kind == cfg.EdgeSummary {
			site := e.g.Sites[edge.Site]
			retCont := contFor(edge.To)
			if site.TrustedName != "" {
				cont = e.crossTrusted(site, retCont)
			} else {
				cont = e.crossCallee(site, retCont)
			}
		} else {
			cont = contFor(edge.To)
		}
		legs = append(legs, leg{guard: e.edgeGuard(node, edge), cont: cont})
	}
	if len(legs) == 2 {
		if _, g0True := legs[0].guard.(expr.TrueF); !g0True {
			if expr.Equal(legs[0].cont, legs[1].cont) {
				return legs[0].cont
			}
		}
	}
	terms := make([]expr.Formula, len(legs))
	for i, l := range legs {
		terms[i] = expr.Implies(l.guard, l.cont)
	}
	return expr.Conj(terms...)
}

// childLoopOf walks up from an innermost loop to the direct child of the
// region.
func (e *Engine) childLoopOf(r region, inner *cfg.Loop) *cfg.Loop {
	c := inner
	for c != nil && c.Parent != r.loop {
		c = c.Parent
	}
	return c
}

// crossLoopEntry computes the formula required on entry to child loop c:
// either an explicit loop-entry target, or the invariant synthesized to
// carry the continuation formulas across the loop (the inner-loop
// treatment of Section 5.2.1).
func (e *Engine) crossLoopEntry(
	r region,
	c *cfg.Loop,
	targets map[int]expr.Formula,
	loopEntryTargets map[*cfg.Loop]expr.Formula,
	exitCont func(int) expr.Formula,
	back expr.Formula,
	outerCont func(int) expr.Formula,
) expr.Formula {
	if f, ok := loopEntryTargets[c]; ok {
		// Entering c is itself the target; requirements beyond do not
		// constrain this query.
		return f
	}
	// Are there any targets inside c? (They would have been the
	// proveInLoop case; during crossing we only carry continuations.)
	inner := region{proc: r.proc, loop: c}
	// Materialize the exit continuations so the crossing can be cached:
	// identical continuations (common across chain iterations of the
	// enclosing synthesis) reuse the synthesized invariant.
	exitVals := map[int]expr.Formula{}
	for _, x := range c.Exits {
		if _, ok := exitVals[x.To]; !ok {
			exitVals[x.To] = outerCont(x.To)
		}
	}
	// The key fingerprints the crossing's full context: the header plus
	// each (sorted) id→formula section, with a tag and length word per
	// section so the three lists cannot run into each other.
	key := expr.SeedFP(0xc5055).Mixed(uint64(c.Header))
	{
		ids := make([]int, 0, len(exitVals))
		for id := range exitVals {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		key = key.Mixed(1).Mixed(uint64(len(ids)))
		for _, id := range ids {
			key = key.Mixed(uint64(id)).MixFP(expr.Fingerprint(exitVals[id]))
		}
		tids := make([]int, 0, len(targets))
		for n := range targets {
			tids = append(tids, n)
		}
		sort.Ints(tids)
		key = key.Mixed(2).Mixed(uint64(len(tids)))
		for _, n := range tids {
			key = key.Mixed(uint64(n)).MixFP(expr.Fingerprint(targets[n]))
		}
		lids := make([]int, 0, len(loopEntryTargets))
		byHeader := map[int]expr.Formula{}
		for l2, f := range loopEntryTargets {
			lids = append(lids, l2.Header)
			byHeader[l2.Header] = f
		}
		sort.Ints(lids)
		key = key.Mixed(3).Mixed(uint64(len(lids)))
		for _, h := range lids {
			key = key.Mixed(uint64(h)).MixFP(expr.Fingerprint(byHeader[h]))
		}
	}
	if inv, ok := e.crossCache[key]; ok {
		return inv
	}
	exitFn := func(to int) expr.Formula {
		if f, ok := exitVals[to]; ok {
			return f
		}
		// An exit of c lands back in the outer region (or beyond).
		return outerCont(to)
	}
	hooks := induction.Hooks{
		First: func(b expr.Formula) expr.Formula {
			return e.passRegion(inner, targets, loopEntryTargets, exitFn, b)
		},
		Next: func(b expr.Formula) expr.Formula {
			return e.passRegion(inner, targets, loopEntryTargets, exitFn, b)
		},
		ModifiedVars: e.modifiedVars(c),
	}
	res, ok := e.synthesize(hooks, "cross")
	inv := expr.F()
	if ok {
		inv = res.Invariant
	}
	e.crossCache[key] = inv
	return inv
}
