package vcgen

import (
	"sort"
	"strconv"

	"mcsafe/internal/cfg"
	"mcsafe/internal/expr"
	"mcsafe/internal/policy"
	"mcsafe/internal/rtl"
)

// freshVar mints a havoc variable: a value the analysis knows nothing
// about.
func (e *Engine) freshVar(hint string) expr.Var {
	e.fresh++
	return expr.Var("$h" + strconv.Itoa(e.fresh) + "." + hint)
}

// havoc replaces a variable by a universally quantified fresh one:
// wlp(x := unknown, Q) = ∀v. Q[x ← v]. The universal closure matters when
// the resulting formula is used as a hypothesis (e.g. W(i) chains in
// induction iteration over values loaded from summary locations).
func (e *Engine) havoc(f expr.Formula, v expr.Var, hint string) expr.Formula {
	free := map[expr.Var]bool{}
	f.FreeVars(free)
	if !free[v] {
		return f
	}
	nv := e.freshVar(hint)
	return expr.Forall{V: nv, F: f.Subst(v, expr.V(nv))}
}

// havocAll applies havoc over a set of variables.
func (e *Engine) havocAll(f expr.Formula, vars []expr.Var, hint string) expr.Formula {
	for _, v := range vars {
		f = e.havoc(f, v, hint)
	}
	return f
}

// closeFresh universally closes f over the given fresh variables (those
// actually occurring free). Used after a parallel SubstAll that mapped
// clobbered variables to fresh ones.
func closeFresh(f expr.Formula, vars []expr.Var) expr.Formula {
	free := map[expr.Var]bool{}
	f.FreeVars(free)
	for _, v := range vars {
		if free[v] {
			f = expr.Forall{V: v, F: f}
		}
	}
	return f
}

// regVarAt supplies the linear expression for an RTL register read at a
// window depth (the zero register reads as the constant 0); it is the
// bridge rtl.Linearize uses to name registers in the policy's variable
// space.
func (e *Engine) regVarAt(depth int) func(rtl.Reg) expr.LinExpr {
	return func(r rtl.Reg) expr.LinExpr {
		if r == rtl.ZeroReg {
			return expr.Constant(0)
		}
		return expr.V(e.rm.Var(r, depth))
	}
}

// linAt linearizes an RTL operand expression at a window depth.
func (e *Engine) linAt(x rtl.Expr, depth int) (expr.LinExpr, bool) {
	return rtl.Linearize(x, e.regVarAt(depth))
}

// mustLin linearizes an expression known to be linear (register reads
// and immediates).
func (e *Engine) mustLin(x rtl.Expr, depth int) expr.LinExpr {
	le, _ := rtl.Linearize(x, e.regVarAt(depth))
	return le
}

// wlpInsn computes wlp(insn, f): the weakest liberal precondition of one
// instruction occurrence with respect to a postcondition (Section 5.2.1;
// loads and stores follow Morris's general axiom of assignment, resolved
// through the abstract locations computed by typestate propagation). The
// instruction's semantics come entirely from its lifted RTL effects.
func (e *Engine) wlpInsn(id int, f expr.Formula) expr.Formula {
	node := e.g.Nodes[id]
	d := node.Depth

	// Shape of the effect sequence.
	var assign *rtl.Assign
	var cc *rtl.SetCC
	var ctl rtl.Effect
	var win rtl.Effect
	var load *rtl.Load
	var store *rtl.Store
	var unsup *rtl.Unsupported
	for _, eff := range node.RTL {
		switch x := eff.(type) {
		case rtl.Assign:
			a := x
			assign = &a
		case rtl.SetCC:
			c := x
			cc = &c
		case rtl.Branch, rtl.Call, rtl.Jump:
			ctl = eff
		case rtl.SaveWindow, rtl.RestoreWindow:
			win = eff
		case rtl.Load:
			l := x
			load = &l
		case rtl.Store:
			st := x
			store = &st
		case rtl.Unsupported:
			u := x
			unsup = &u
		}
	}

	switch ctl.(type) {
	case rtl.Branch:
		// Guards are applied on edges. A fused compare-and-branch (the
		// non-delay-slot ISAs) carries the SetCC that resolves the icc
		// ghosts on the branch occurrence itself, so it falls through to
		// the cc-substitution path below; delay-slot ISAs set cc on a
		// separate instruction and the branch is the identity.
		if cc == nil {
			return f
		}

	case rtl.Call:
		// The call writes the return address into the link register.
		return e.havoc(f, e.rm.Var(assign.Dst, d), "o7")

	case rtl.Jump:
		// The returning jump idiom links through the zero register; the
		// link write carries no constraint.
		return f
	}

	switch win.(type) {
	case rtl.SaveWindow:
		// New-window variables become functions of the old window:
		// %i[k]@d+1 = %o[k]@d, the new %sp is computed, and the new
		// locals/outs are unconstrained.
		wl := e.conv.Window
		rd := assign.Dst
		sub := map[expr.Var]expr.LinExpr{}
		var fresh []expr.Var
		mkFresh := func(hint string) expr.LinExpr {
			v := e.freshVar(hint)
			fresh = append(fresh, v)
			return expr.V(v)
		}
		for k := 0; k < wl.Size; k++ {
			kk := rtl.Reg(k)
			sub[e.rm.Var(wl.In+kk, d+1)] = e.regVarAt(d)(wl.Out + kk)
			sub[e.rm.Var(wl.Local+kk, d+1)] = mkFresh("l")
			if wl.Out+kk != rd {
				sub[e.rm.Var(wl.Out+kk, d+1)] = mkFresh("o")
			}
		}
		if res, ok := e.linAt(assign.Src, d); ok {
			sub[e.rm.Var(rd, d+1)] = res
		} else {
			sub[e.rm.Var(rd, d+1)] = mkFresh("sp")
		}
		return closeFresh(expr.SubstAll(f, sub), fresh)

	case rtl.RestoreWindow:
		rd := assign.Dst
		if rd == rtl.ZeroReg {
			return f
		}
		if res, ok := e.linAt(assign.Src, d); ok {
			return f.Subst(e.rm.Var(rd, d-1), res)
		}
		return e.havoc(f, e.rm.Var(rd, d-1), "r")
	}

	if unsup != nil {
		// An access the checker rejected (e.g. doubleword memory ops):
		// the destination, if any, is unconstrained.
		if unsup.Dst == rtl.ZeroReg {
			return f
		}
		return e.havoc(f, e.rm.Var(unsup.Dst, d), "ld")
	}
	if load != nil {
		return e.wlpLoad(id, load.Dst, f)
	}
	if store != nil {
		return e.wlpStore(id, store.Src, f)
	}

	// Arithmetic (including cc-setting and sethi), plus fused
	// compare-and-branch occurrences (assign == nil, cc != nil).
	if assign == nil && cc == nil {
		return f
	}
	sub := map[expr.Var]expr.LinExpr{}
	var fresh []expr.Var
	mkFresh := func(hint string) expr.LinExpr {
		v := e.freshVar(hint)
		fresh = append(fresh, v)
		return expr.V(v)
	}
	if assign != nil && assign.Dst != rtl.ZeroReg {
		if res, ok := e.linAt(assign.Src, d); ok {
			sub[e.rm.Var(assign.Dst, d)] = res
		} else {
			sub[e.rm.Var(assign.Dst, d)] = mkFresh("v")
		}
	}
	if cc != nil {
		switch cc.Op {
		case rtl.Sub:
			// cmp a,b: branches compare a against b.
			sub[policy.ICCA] = e.mustLin(cc.A, d)
			sub[policy.ICCB] = e.mustLin(cc.B, d)
		case rtl.Add:
			sub[policy.ICCA] = e.mustLin(cc.A, d).Add(e.mustLin(cc.B, d))
			sub[policy.ICCB] = expr.Constant(0)
		case rtl.Or:
			// tst: orcc %g0,rs,%g0 compares rs against 0.
			if assign != nil {
				if res, ok := e.linAt(assign.Src, d); ok {
					sub[policy.ICCA] = res
					sub[policy.ICCB] = expr.Constant(0)
					break
				}
			}
			sub[policy.ICCA] = mkFresh("icc")
			sub[policy.ICCB] = mkFresh("icc")
		case rtl.And:
			// andcc rs,mask,%g0 with mask = 2^k - 1 tests divisibility
			// of rs by 2^k; rewrite equality tests on the ghosts into
			// divisibility atoms before substituting.
			if c, isImm := cc.B.(rtl.Const); isImm && c.V > 0 && (c.V&(c.V+1)) == 0 {
				f = e.rewriteICCMask(f, c.V+1, e.mustLin(cc.A, d))
				// Any remaining icc occurrences were havocked by the
				// rewrite; nothing further to substitute.
			} else {
				sub[policy.ICCA] = mkFresh("icc")
				sub[policy.ICCB] = mkFresh("icc")
			}
		default:
			sub[policy.ICCA] = mkFresh("icc")
			sub[policy.ICCB] = mkFresh("icc")
		}
	}
	if len(sub) == 0 {
		return f
	}
	return closeFresh(expr.SubstAll(f, sub), fresh)
}

// rewriteICCMask rewrites atoms over the icc ghosts produced by branch
// guards after an andcc rs,2^k-1 test: (iccA - iccB = 0) becomes
// (2^k | rs); any other icc-mentioning atom is havocked.
func (e *Engine) rewriteICCMask(f expr.Formula, m int64, rs expr.LinExpr) expr.Formula {
	var walk func(g expr.Formula) expr.Formula
	hA := e.freshVar("icc")
	hB := e.freshVar("icc")
	havocA := expr.V(hA)
	havocB := expr.V(hB)
	walk = func(g expr.Formula) expr.Formula {
		switch h := g.(type) {
		case expr.AtomF:
			ca := h.A.E.CoefOf(policy.ICCA)
			cb := h.A.E.CoefOf(policy.ICCB)
			if ca == 0 && cb == 0 {
				return g
			}
			rest := h.A.E.Sub(expr.Term(ca, policy.ICCA)).Sub(expr.Term(cb, policy.ICCB))
			if restC, isConst := rest.IsConst(); isConst && restC == 0 &&
				h.A.Kind == expr.EQ && ca == -cb && (ca == 1 || ca == -1) {
				return expr.Divides(m, rs)
			}
			return expr.AtomF{A: expr.Atom{Kind: h.A.Kind, M: h.A.M,
				E: h.A.E.Subst(policy.ICCA, havocA).Subst(policy.ICCB, havocB)}}
		case expr.Not:
			return expr.Negate(walk(h.F))
		case expr.And:
			fs := make([]expr.Formula, len(h.Fs))
			for i, sf := range h.Fs {
				fs[i] = walk(sf)
			}
			return expr.Conj(fs...)
		case expr.Or:
			fs := make([]expr.Formula, len(h.Fs))
			for i, sf := range h.Fs {
				fs[i] = walk(sf)
			}
			return expr.Disj(fs...)
		case expr.Impl:
			return expr.Implies(walk(h.A), walk(h.B))
		case expr.Forall:
			return expr.Forall{V: h.V, F: walk(h.F)}
		case expr.Exists:
			return expr.Exists{V: h.V, F: walk(h.F)}
		}
		return g
	}
	return closeFresh(walk(f), []expr.Var{hA, hB})
}

// wlpLoad: rd receives the value of one of the target locations; the
// postcondition must hold for every possibility. Summary locations have
// no single value and havoc the destination.
func (e *Engine) wlpLoad(id int, dst rtl.Reg, f expr.Formula) expr.Formula {
	node := e.g.Nodes[id]
	acc := e.Res.Mem[id]
	if dst == rtl.ZeroReg {
		return f
	}
	rd := e.rm.Var(dst, node.Depth)
	if acc == nil || len(acc.Targets) == 0 {
		return e.havoc(f, rd, "ld")
	}
	var terms []expr.Formula
	for _, t := range acc.Targets {
		if t.Summary {
			terms = append(terms, e.havoc(f, rd, "elt"))
		} else {
			terms = append(terms, f.Subst(rd, expr.V(policy.ValVar(t.Loc))))
		}
	}
	return expr.Conj(terms...)
}

// wlpStore: Morris's general axiom of assignment over the abstract
// target set: the postcondition must hold whichever target the store
// actually updates; stores to summary locations havoc the location.
func (e *Engine) wlpStore(id int, srcExpr rtl.Expr, f expr.Formula) expr.Formula {
	node := e.g.Nodes[id]
	acc := e.Res.Mem[id]
	if acc == nil || len(acc.Targets) == 0 {
		return f
	}
	src := e.mustLin(srcExpr, node.Depth)
	var terms []expr.Formula
	for _, t := range acc.Targets {
		v := policy.ValVar(t.Loc)
		if t.Summary {
			terms = append(terms, e.havoc(f, v, "sum"))
		} else {
			terms = append(terms, f.Subst(v, src))
		}
	}
	return expr.Conj(terms...)
}

// edgeGuard is the branch condition contributed by a CFG edge, expressed
// over the icc ghost pair. Unsigned conditions contribute no information
// (the sound direction); the evaluation programs use signed comparisons,
// as gcc emits for int arithmetic.
func (e *Engine) edgeGuard(node *cfg.Node, edge cfg.Edge) expr.Formula {
	var br *rtl.Branch
	for _, eff := range node.RTL {
		if b, ok := eff.(rtl.Branch); ok {
			b := b
			br = &b
		}
	}
	if br == nil {
		return expr.T()
	}
	cond := condFormula(br.Cond)
	if cond == nil {
		return expr.T()
	}
	switch edge.Kind {
	case cfg.EdgeTaken:
		return cond
	case cfg.EdgeFall:
		return expr.Negate(cond)
	}
	return expr.T()
}

// condFormula maps a branch condition to a constraint over (iccA, iccB),
// the comparands recorded by the last cc-setting instruction. It returns
// nil for conditions that carry no linear information.
func condFormula(c rtl.Cond) expr.Formula {
	a := expr.V(policy.ICCA)
	b := expr.V(policy.ICCB)
	switch c {
	case rtl.CondEq:
		return expr.EqExpr(a, b)
	case rtl.CondNe:
		return expr.NeExpr(a, b)
	case rtl.CondLt, rtl.CondNeg:
		return expr.LtExpr(a, b)
	case rtl.CondLe:
		return expr.LeExpr(a, b)
	case rtl.CondGt:
		return expr.GtExpr(a, b)
	case rtl.CondGe, rtl.CondPos:
		return expr.GeExpr(a, b)
	}
	return nil
}

// crossTrusted models a trusted host call during back-substitution: the
// caller-saved registers are clobbered, and the function's declared
// postcondition may be assumed about the clobbered state.
func (e *Engine) crossTrusted(site *cfg.CallSite, retCont expr.Formula) expr.Formula {
	depth := e.g.Nodes[site.DelayNode].Depth
	sub := map[expr.Var]expr.LinExpr{}
	var fresh []expr.Var
	mkFresh := func(hint string) expr.LinExpr {
		v := e.freshVar(hint)
		fresh = append(fresh, v)
		return expr.V(v)
	}
	// The convention's clobber list is canonically ordered; the fresh
	// variables are minted in that order, which is part of the verdict
	// fingerprint.
	for _, r := range e.conv.CallClobbered {
		sub[e.rm.Var(r, depth)] = mkFresh("call")
	}
	sub[policy.ICCA] = mkFresh("icc")
	sub[policy.ICCB] = mkFresh("icc")

	cont := expr.SubstAll(retCont, sub)
	tf := e.Res.Ini.Spec.Trusted[site.TrustedName]
	if tf == nil {
		return closeFresh(cont, fresh)
	}
	if _, isTrue := tf.Post.(expr.TrueF); !isTrue {
		// The postcondition speaks about the post-call registers:
		// rename to the same fresh variables.
		post := expr.SubstAll(e.renameRegsToDepth(tf.Post, depth), sub)
		cont = expr.Implies(post, cont)
	}
	return closeFresh(cont, fresh)
}

// renameRegsToDepth rewrites entry-window register variables in a policy
// formula to a window depth.
func (e *Engine) renameRegsToDepth(f expr.Formula, depth int) expr.Formula {
	if depth == 0 {
		return f
	}
	sub := map[expr.Var]expr.LinExpr{}
	for _, v := range expr.FreeVarsOf(f) {
		if len(v) >= 2 && v[0] == '%' {
			if r, ok := e.rm.Parse(string(v)); ok && e.rm.Windowed(r) {
				sub[v] = expr.V(e.rm.Var(r, depth))
			}
		}
	}
	return expr.SubstAll(f, sub)
}

// crossCallee walks through the body of an internal callee as though it
// were inlined at the call site (Section 5.2.1), returning the formula
// required just before the callee's entry for retCont to hold at the
// call site's return point.
func (e *Engine) crossCallee(site *cfg.CallSite, retCont expr.Formula) expr.Formula {
	callee := e.g.Procs[site.Callee]
	// The callee's return nodes are the delay slots of its returning
	// jmpl instructions. retCont must hold after each of them, on the
	// exit that returns to this site.
	retCont = expr.Simplify(retCont)
	targets := map[int]expr.Formula{}
	for _, ret := range callee.Returns {
		targets[ret] = e.wlpInsn(ret, retCont)
	}
	// Requirements at the return-delay nodes are "before node" targets
	// after taking the node's own wlp; passRegion conjoins targets
	// before applying wlp again, so instead pass a wrapper: mark the
	// requirement after the node by pre-applying its wlp and attaching
	// it before the node would double-apply. To keep the pass uniform
	// we attach the post-wlp formula as a target at the node and make
	// the node's own contribution vacuous by relying on the fact that a
	// return delay slot has no intraprocedural successors (its only
	// edges are return edges, which IntraSuccs drops).
	return e.passRegion(region{proc: callee}, targets, nil, nil, expr.T())
}

// modifiedVars collects the variables assigned anywhere in a loop body —
// the targets the generalization heuristic may eliminate. The write set
// of each occurrence is read off its RTL effects; the order of discovery
// (condition-code ghosts first, then the effect-specific destinations)
// is part of the generalization heuristic's search order.
func (e *Engine) modifiedVars(l *cfg.Loop) []expr.Var {
	seen := map[expr.Var]bool{}
	var out []expr.Var
	add := func(v expr.Var) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	ids := make([]int, 0, len(l.Body))
	for id := range l.Body {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		node := e.g.Nodes[id]
		d := node.Depth

		var assign *rtl.Assign
		var ctl rtl.Effect
		var win rtl.Effect
		var load *rtl.Load
		var unsup *rtl.Unsupported
		hasCC := false
		hasStore := false
		for _, eff := range node.RTL {
			switch x := eff.(type) {
			case rtl.Assign:
				a := x
				assign = &a
			case rtl.SetCC:
				hasCC = true
			case rtl.Branch, rtl.Call, rtl.Jump:
				ctl = eff
			case rtl.SaveWindow, rtl.RestoreWindow:
				win = eff
			case rtl.Load:
				ld := x
				load = &ld
			case rtl.Store:
				hasStore = true
			case rtl.Unsupported:
				u := x
				unsup = &u
			}
		}

		if hasCC {
			add(policy.ICCA)
			add(policy.ICCB)
		}
		_, isCall := ctl.(rtl.Call)
		isSave := false
		isRestore := false
		switch win.(type) {
		case rtl.SaveWindow:
			isSave = true
		case rtl.RestoreWindow:
			isRestore = true
		}

		switch {
		case isCall:
			if assign != nil && assign.Dst != rtl.ZeroReg {
				add(e.rm.Var(assign.Dst, d))
			}
			if site := e.siteByCall(id); site != nil && site.TrustedName != "" {
				for _, r := range e.conv.CallClobbered {
					add(e.rm.Var(r, d))
				}
				add(policy.ICCA)
				add(policy.ICCB)
			}
		case isSave:
			wl := e.conv.Window
			for _, bank := range []rtl.Reg{wl.Out, wl.Local, wl.In} {
				for k := 0; k < wl.Size; k++ {
					add(e.rm.Var(bank+rtl.Reg(k), d+1))
				}
			}
		case isRestore:
			if assign.Dst != rtl.ZeroReg {
				add(e.rm.Var(assign.Dst, d-1))
			}
		case hasStore:
			if acc := e.Res.Mem[id]; acc != nil {
				for _, t := range acc.Targets {
					add(policy.ValVar(t.Loc))
				}
			}
		case load != nil:
			if load.Dst != rtl.ZeroReg {
				add(e.rm.Var(load.Dst, d))
			}
		case unsup != nil:
			if unsup.Dst != rtl.ZeroReg {
				add(e.rm.Var(unsup.Dst, d))
			}
		case ctl != nil:
			// Branches and returning jumps write no tracked variable.
		default:
			if assign != nil && assign.Dst != rtl.ZeroReg {
				add(e.rm.Var(assign.Dst, d))
			}
		}
	}
	return out
}

func (e *Engine) siteByCall(id int) *cfg.CallSite {
	for _, s := range e.g.Sites {
		if s.CallNode == id {
			return s
		}
	}
	return nil
}
