package vcgen

import (
	"reflect"
	"testing"

	"mcsafe/internal/expr"
	"mcsafe/internal/solver"
)

// TestBuildChunksPartition checks the pool's work partition: every
// condition index is covered exactly once, items appear in condition
// order, and the partition is a pure function of the condition list
// (the determinism precondition — it must not vary run to run).
func TestBuildChunksPartition(t *testing.T) {
	pl := build(t, fig1Asm, fig1Spec, "")
	conds := pl.ann.Conds
	chunks := buildChunks(conds)

	seen := make([]int, len(conds))
	last := -1
	for _, chunk := range chunks {
		if len(chunk) == 0 {
			t.Fatal("empty chunk")
		}
		for _, it := range chunk {
			if it.group != nil {
				for _, idx := range it.group.members {
					seen[idx]++
				}
				if first := it.group.members[0]; first <= last {
					t.Fatalf("group at %d out of order (after %d)", first, last)
				} else {
					last = first
				}
			} else {
				seen[it.single]++
				if it.single <= last {
					t.Fatalf("item %d out of order (after %d)", it.single, last)
				}
				last = it.single
			}
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("condition %d covered %d times", i, n)
		}
	}

	for rep := 0; rep < 5; rep++ {
		if again := buildChunks(conds); !reflect.DeepEqual(again, chunks) {
			t.Fatal("partition changed between calls")
		}
	}
}

// TestScheduleChunksCheapestFirst checks the chunk schedule: a
// permutation of all chunk indices, ordered by nondecreasing summed
// formula size with ties broken by chunk index, and identical across
// repeated calls.
func TestScheduleChunksCheapestFirst(t *testing.T) {
	pl := build(t, fig1Asm, fig1Spec, "")
	conds := pl.ann.Conds
	chunks := buildChunks(conds)
	order := scheduleChunks(conds, chunks)

	if len(order) != len(chunks) {
		t.Fatalf("schedule has %d entries for %d chunks", len(order), len(chunks))
	}
	seen := make([]bool, len(chunks))
	for _, i := range order {
		if i < 0 || i >= len(chunks) || seen[i] {
			t.Fatalf("schedule %v is not a permutation of chunk indices", order)
		}
		seen[i] = true
	}

	cost := func(chunk []workItem) int {
		total := 0
		for _, it := range chunk {
			if it.group != nil {
				for _, idx := range it.group.members {
					total += expr.Size(conds[idx].F)
				}
			} else {
				total += expr.Size(conds[it.single].F)
			}
		}
		return total
	}
	for k := 1; k < len(order); k++ {
		a, b := order[k-1], order[k]
		ca, cb := cost(chunks[a]), cost(chunks[b])
		if ca > cb {
			t.Fatalf("schedule position %d: chunk %d (cost %d) before chunk %d (cost %d)",
				k, a, ca, b, cb)
		}
		if ca == cb && a > b {
			t.Fatalf("schedule position %d: tie between chunks %d and %d broken against index order",
				k, a, b)
		}
	}

	for rep := 0; rep < 5; rep++ {
		if again := scheduleChunks(conds, chunks); !reflect.DeepEqual(again, order) {
			t.Fatal("schedule changed between calls")
		}
	}
}

// TestProveParallelMatchesSequential proves Figure 1's conditions on
// the legacy sequential path and through the pool, and requires the
// same verdicts in the same order plus the same condition counters.
func TestProveParallelMatchesSequential(t *testing.T) {
	seq := build(t, fig1Asm, fig1Spec, "")
	seqOut := seq.e.Prove(seq.ann.Conds)

	for _, par := range []int{2, 4, 8} {
		pl := build(t, fig1Asm, fig1Spec, "")
		pl.e.P = solver.NewShared(solver.NewShardedCache())
		pl.e.Opts.Parallelism = par
		out := pl.e.Prove(pl.ann.Conds)

		if len(out) != len(seqOut) {
			t.Fatalf("par %d: %d results, want %d", par, len(out), len(seqOut))
		}
		for i := range out {
			if out[i].Proved != seqOut[i].Proved || out[i].Detail != seqOut[i].Detail {
				t.Fatalf("par %d cond %d: (%v, %q), want (%v, %q)", par, i,
					out[i].Proved, out[i].Detail, seqOut[i].Proved, seqOut[i].Detail)
			}
		}
		if pl.e.Stats.Conditions != seq.e.Stats.Conditions ||
			pl.e.Stats.Proved != seq.e.Stats.Proved {
			t.Fatalf("par %d: stats (%d, %d), want (%d, %d)", par,
				pl.e.Stats.Conditions, pl.e.Stats.Proved,
				seq.e.Stats.Conditions, seq.e.Stats.Proved)
		}
	}
}
