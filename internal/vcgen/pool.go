// Worker-pool path of Phase 5 (global verification). Condition groups —
// the formula-grouping units of Section 5.2.1 — are independent work
// items: nothing a group proves is an input to another group's proof,
// only a shortcut for it. The pool therefore runs one engine per work
// item, all backed by provers that share one concurrency-safe canonical-
// formula cache, and writes verdicts by index so the output ordering,
// verdicts, and violation lists are identical to the sequential run.
//
// Determinism argument: each work item is proved by a fresh Engine whose
// scratch state (fresh-variable counter, per-query/entry/cross caches)
// starts from the same initial values regardless of which worker picks
// the item up or when, so an item's verdict is a pure function of the
// item. The shared prover cache is keyed by structural formula
// fingerprints (hits verified against the formula itself) and every
// prover would store the same verdict for a key, so hits can change
// only *when* a verdict is computed, never *what* it is. The same
// argument makes the chunk schedule (cheap chunks first, so the shared
// cache is warm before the expensive queries run) a pure latency
// optimization: it permutes when verdicts are computed, never what
// they are.
package vcgen

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"mcsafe/internal/annotate"
	"mcsafe/internal/expr"
	"mcsafe/internal/faults"
	"mcsafe/internal/solver"
)

// PanicError is a panic recovered at a pool boundary (a worker
// goroutine or one of its chunks), carried back to the coordinator so a
// poisoned proof cannot kill the process or leak the pool's goroutines.
// The core wraps it into its structured internal-error type.
type PanicError struct {
	// Cond is the ID of the condition being proved when the panic
	// fired, or -1 when it fired outside any condition.
	Cond int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("proof worker panicked: %v", e.Value)
}

// workItem is one atomic unit of global verification: a bounds group
// together with its members' individual fallbacks (group != nil), or a
// single ungrouped condition (group == nil, index single).
type workItem struct {
	group  *condGroup
	single int
}

// chunkTarget is the number of conditions a work chunk aims to cover.
// Neighboring conditions usually sit in the same loops, so letting one
// engine (and its formula-valued crossing cache, which cannot be shared
// across engines) process a few of them amortizes invariant synthesis,
// while chunks stay small enough to load-balance across workers.
const chunkTarget = 4

// buildChunks partitions the conditions into chunks of work items, in
// condition order. The partition depends only on the conditions — never
// on the worker count — so every parallelism setting proves exactly the
// same chunks and reaches the same verdicts.
func buildChunks(conds []*annotate.GlobalCond) [][]workItem {
	groupOf := map[int]*condGroup{} // first-member index -> group
	inGroup := make([]bool, len(conds))
	groups := boundsGroups(conds)
	for i := range groups {
		g := &groups[i]
		groupOf[g.members[0]] = g
		for _, idx := range g.members {
			inGroup[idx] = true
		}
	}
	var chunks [][]workItem
	var cur []workItem
	covered := 0
	flush := func() {
		if len(cur) > 0 {
			chunks = append(chunks, cur)
			cur, covered = nil, 0
		}
	}
	for i := range conds {
		if g, ok := groupOf[i]; ok {
			cur = append(cur, workItem{group: g, single: -1})
			covered += len(g.members)
		} else if !inGroup[i] {
			cur = append(cur, workItem{single: i})
			covered++
		}
		if covered >= chunkTarget {
			flush()
		}
	}
	flush()
	return chunks
}

// scheduleChunks returns the order in which workers should pull chunks:
// cheapest first, estimating a chunk's cost as the summed formula size
// of its conditions. Small conditions are the ones most likely to share
// WLP prefixes with many others, so proving them first warms the shared
// formula cache and clause memos before the expensive queries run. The
// order is deterministic (ties break on chunk index) and, per the
// determinism argument above, affects only scheduling — result slots
// are indexed by condition, so output order and verdicts are untouched.
func scheduleChunks(conds []*annotate.GlobalCond, chunks [][]workItem) []int {
	cost := make([]int, len(chunks))
	for i, chunk := range chunks {
		for _, it := range chunk {
			if it.group != nil {
				for _, idx := range it.group.members {
					cost[i] += expr.Size(conds[idx].F)
				}
			} else {
				cost[i] += expr.Size(conds[it.single].F)
			}
		}
	}
	order := make([]int, len(chunks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if cost[order[a]] != cost[order[b]] {
			return cost[order[a]] < cost[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// proveParallel discharges the conditions with par workers pulling
// chunks off a shared index. Results land in a slice indexed like conds;
// engine stats are summed over the per-chunk engines and prover stats
// merged with atomic counters into the coordinating engine's prover, so
// callers observe the same Stats shape as on the sequential path.
//
// When observing, each worker goroutine records through its own forked
// obs.Worker (chunks run under "chunk" spans) and flushes it before
// joining — the same single-owner discipline as the prover stats. The
// context is consulted once per chunk; on cancellation the remaining
// chunks are abandoned and their result slots stay zero-valued.
func (e *Engine) proveParallel(ctx context.Context, conds []*annotate.GlobalCond, par int) ([]CondResult, error) {
	shared := e.P.SharedCache()
	if shared == nil {
		shared = solver.NewShardedCache()
	}
	sc := &sharedCaches{query: solver.NewShardedCache(), entry: solver.NewShardedCache()}
	chunks := buildChunks(conds)
	order := scheduleChunks(conds, chunks)
	if par > len(chunks) {
		par = len(chunks)
	}
	out := make([]CondResult, len(conds))

	var next atomic.Int64
	var proverStats solver.AtomicStats
	var mu sync.Mutex // guards e.Stats merging
	var wg sync.WaitGroup
	// failure holds the first contained panic (first writer wins); once
	// set, workers stop pulling chunks and the pool drains.
	var failure atomic.Pointer[PanicError]
	for w := 0; w < par; w++ {
		wg.Add(1)
		wkObs := e.Obs.Fork()
		go func() {
			defer wg.Done()
			prover := solver.NewShared(shared)
			prover.Lim = e.P.Lim
			prover.Obs = wkObs
			prover.Intern = e.P.Intern
			prover.Ctl = e.P.Ctl
			// Last line of defense: a panic escaping the per-chunk
			// containment (or fired before any chunk starts) must not
			// kill the process or strand wg.Wait. Stats and the
			// observer flush in the same defer so the worker's
			// bookkeeping survives every exit path.
			defer func() {
				if r := recover(); r != nil {
					failure.CompareAndSwap(nil, &PanicError{
						Cond: -1, Value: r, Stack: debug.Stack(),
					})
					wkObs.EndAll()
				}
				proverStats.Add(prover.Stats)
				wkObs.Flush()
			}()
			faults.Fire(faults.WorkerStart)

			// runChunk proves one chunk under its own panic boundary:
			// a poisoned condition fails closed (its chunk-mates get
			// conservative verdicts), the panic is latched in failure,
			// and the worker goroutine itself survives to drain.
			runChunk := func(i int) {
				we := newShared(e.Res, prover, e.Opts, sc)
				we.Obs = wkObs
				cond := -1
				defer func() {
					if r := recover(); r != nil {
						failure.CompareAndSwap(nil, &PanicError{
							Cond: cond, Value: r, Stack: debug.Stack(),
						})
						// Fail closed: every condition of the chunk
						// without a verdict is left unproved.
						for _, it := range chunks[i] {
							idxs := []int{it.single}
							if it.group != nil {
								idxs = it.group.members
							}
							for _, idx := range idxs {
								if out[idx].Cond == nil {
									out[idx] = CondResult{
										Cond:   conds[idx],
										Detail: "internal error: proof attempt panicked",
									}
								}
							}
						}
						wkObs.EndAll()
					}
					mu.Lock()
					e.Stats.Conditions += we.Stats.Conditions
					e.Stats.Proved += we.Stats.Proved
					e.Stats.InductionRuns += we.Stats.InductionRuns
					e.Stats.CacheHits += we.Stats.CacheHits
					e.Stats.InductionIters += we.Stats.InductionIters
					e.Stats.InductionCands += we.Stats.InductionCands
					mu.Unlock()
				}()
				wkObs.Begin("chunk", fmt.Sprintf("chunk-%d", i))
				for _, it := range chunks[i] {
					if it.group != nil {
						cond = conds[it.group.members[0]].ID
						gp := we.proveGroup(conds, *it.group)
						for _, idx := range it.group.members {
							cond = conds[idx].ID
							out[idx] = we.proveCond(conds[idx], gp)
						}
					} else {
						cond = conds[it.single].ID
						out[it.single] = we.proveCond(conds[it.single], false)
					}
				}
				wkObs.End("conds", fmt.Sprint(len(chunks[i])))
			}

			for ctx.Err() == nil && failure.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(order) {
					break
				}
				// One engine per chunk: the chunk's verdicts are a pure
				// function of the chunk, independent of which worker
				// runs it or when. Chunks are pulled in scheduled
				// (cheapest-first) order.
				runChunk(order[i])
			}
		}()
	}
	wg.Wait()

	merged := proverStats.Snapshot()
	e.P.Stats.ValidQueries += merged.ValidQueries
	e.P.Stats.CacheHits += merged.CacheHits
	e.P.Stats.Eliminations += merged.Eliminations
	e.P.Stats.DNFBlowups += merged.DNFBlowups
	e.P.Stats.FMPrefixReuses += merged.FMPrefixReuses
	e.P.Stats.EarlyUnsatPrunes += merged.EarlyUnsatPrunes
	if pe := failure.Load(); pe != nil {
		return out, pe
	}
	return out, ctx.Err()
}
