package vcgen

import (
	"strings"
	"testing"

	"mcsafe/internal/annotate"
	"mcsafe/internal/cfg"
	"mcsafe/internal/expr"
	"mcsafe/internal/induction"
	"mcsafe/internal/isa"
	"mcsafe/internal/policy"
	"mcsafe/internal/propagate"
	"mcsafe/internal/rtl"
	"mcsafe/internal/solver"
	"mcsafe/internal/sparc"
)

const fig1Asm = `
1:  mov %o0,%o2
2:  clr %o0
3:  cmp %o0,%o1
4:  bge 12
5:  clr %g3
6:  sll %g3,2,%g2
7:  ld [%o2+%g2],%g2
8:  inc %g3
9:  cmp %g3,%o1
10: bl 6
11: add %o0,%g2,%o0
12: retl
13: nop
`

const fig1Spec = `
region V
loc e  int    state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o0 = arr
invoke %o1 = n
allow V int ro
allow V int[n] rfo
`

type pipeline struct {
	g   *cfg.Graph
	res *propagate.Result
	ann *annotate.Annotations
	p   *solver.Prover
	e   *Engine
}

func build(t *testing.T, asm, spec, entry string) *pipeline {
	t.Helper()
	s, err := policy.Parse(spec, sparc.Arch)
	if err != nil {
		t.Fatal(err)
	}
	ini, err := policy.Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sparc.Arch.Assemble(asm, isa.AsmOptions{
		DataSyms: s.DataSyms(), Entry: entry, Externs: s.TrustedNames()})
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(prog, cfg.Options{TrustedFuncs: s.TrustedNames()})
	if err != nil {
		t.Fatal(err)
	}
	res := propagate.Run(g, ini)
	ann := annotate.Run(res)
	p := solver.New()
	return &pipeline{g: g, res: res, ann: ann, p: p, e: New(res, p, Options{})}
}

func nodeByIndex(pl *pipeline, idx int) *cfg.Node {
	for _, n := range pl.g.Nodes {
		if n.Index == idx && !n.Replica {
			return n
		}
	}
	return nil
}

// TestSec522InductionIterationTrace replays Section 5.2.2 on the real
// decoded program: to verify %g2 < 4n at line 7, back-substitution across
// line 6 yields W(0) = %g3 < n at the loop entry; wlp around the loop is
// the implication (%g3+1 < %o1 -> %g3+1 < n); generalization produces
// %o1 <= n; and the resulting invariant implies the bound.
func TestSec522InductionIterationTrace(t *testing.T) {
	pl := build(t, fig1Asm, fig1Spec, "")
	ld := nodeByIndex(pl, 6)

	// The array upper bound condition at line 7.
	var upper *annotate.GlobalCond
	for _, c := range pl.ann.Conds {
		if c.Node == ld.ID && c.Desc == "array upper bound" {
			upper = c
		}
	}
	if upper == nil {
		t.Fatal("missing upper-bound condition at line 7")
	}

	l := pl.g.InnermostLoop(ld.ID)
	if l == nil {
		t.Fatal("line 7 should be inside the loop")
	}
	reg := region{proc: pl.g.ProcOf(ld.ID), loop: l}

	// W(0): back-substituting %g2 < 4n across the sll gives %g3 < n.
	w0 := expr.Simplify(pl.e.passRegion(reg, map[int]expr.Formula{ld.ID: upper.F}, nil, nil, expr.T()))
	if got := w0.String(); !strings.Contains(got, "%g3") || !strings.Contains(got, "n") {
		t.Fatalf("W(0) = %v", w0)
	}
	// W(0) is equivalent to 4*%g3 < 4n (the sll substitution); check it
	// implies %g3 <= n-1.
	want := expr.LeExpr(expr.V("%g3"), expr.V("n").AddConst(-1))
	if !pl.p.Implied(w0, want) {
		t.Errorf("W(0) = %v does not imply %v", w0, want)
	}

	// wlp(loop-body, W(0)): the paper's W(1), an implication guarded by
	// the loop branch %g3+1 < %o1.
	w1 := expr.Simplify(pl.e.passRegion(reg, nil, nil, nil, w0))
	if got := w1.String(); !strings.Contains(got, "%o1") {
		t.Fatalf("W(1) = %v should mention the loop bound %%o1", w1)
	}
	// W(0) does not imply W(1) (the paper's observation that the raw
	// chain does not converge)...
	if pl.p.Implied(w0, w1) {
		t.Error("W(0) => W(1) should NOT hold before generalization")
	}
	// ... but the generalization of W(1) over the loop-modified %g3 is
	// equivalent to %o1 <= n.
	gen, err := pl.p.Generalize(w1, []expr.Var{"%g3"})
	if err != nil {
		t.Fatal(err)
	}
	wantGen := expr.LeExpr(expr.V("%o1"), expr.V("n"))
	if !pl.p.Valid(expr.Conj(expr.Implies(gen, wantGen), expr.Implies(wantGen, gen))) {
		t.Errorf("generalization = %v, want equivalent of %%o1 <= n", gen)
	}

	// The combined invariant is inductive and implies the bound.
	inv := expr.Conj(w0, gen)
	wNext := expr.Simplify(pl.e.passRegion(reg, nil, nil, nil, inv))
	if !pl.p.Implied(inv, wNext) {
		t.Error("W(0) ∧ generalized-W(1) should be inductive")
	}
}

// TestProveAllFig1 runs the whole Phase 5 on Figure 1.
func TestProveAllFig1(t *testing.T) {
	pl := build(t, fig1Asm, fig1Spec, "")
	out := pl.e.Prove(pl.ann.Conds)
	for _, cr := range out {
		if !cr.Proved {
			t.Errorf("condition %q not proved: %v", cr.Cond.Desc, cr.Cond.F)
		}
	}
	if pl.e.Stats.Conditions != 4 {
		t.Errorf("conditions = %d", pl.e.Stats.Conditions)
	}
}

// TestWlpLinearSubstitutions exercises wlpInsn on representative
// instructions.
func TestWlpLinearSubstitutions(t *testing.T) {
	pl := build(t, fig1Asm, fig1Spec, "")
	// Node 5 is "sll %g3,2,%g2": wlp of (%g2 < 4n) is (4*%g3 < 4n).
	sll := nodeByIndex(pl, 5)
	f := expr.LtExpr(expr.V("%g2"), expr.Term(4, "n"))
	got := expr.Simplify(pl.e.wlpInsn(sll.ID, f))
	want := expr.LtExpr(expr.V("%g3").Scale(4), expr.Term(4, "n"))
	if !pl.p.Valid(expr.Conj(expr.Implies(got, want), expr.Implies(want, got))) {
		t.Errorf("wlp(sll, %v) = %v, want equivalent of %v", f, got, want)
	}

	// Node 7 is "inc %g3" = add %g3,1,%g3: wlp of (%g3 < n) is (%g3+1 < n).
	inc := nodeByIndex(pl, 7)
	f2 := expr.LtExpr(expr.V("%g3"), expr.V("n"))
	got2 := expr.Simplify(pl.e.wlpInsn(inc.ID, f2))
	want2 := expr.LtExpr(expr.V("%g3").AddConst(1), expr.V("n"))
	if !pl.p.Valid(expr.Conj(expr.Implies(got2, want2), expr.Implies(want2, got2))) {
		t.Errorf("wlp(inc, %v) = %v", f2, got2)
	}

	// Node 8 is "cmp %g3,%o1": substitutes the icc ghosts.
	cmp := nodeByIndex(pl, 8)
	f3 := expr.LtExpr(expr.V(policy.ICCA), expr.V(policy.ICCB))
	got3 := expr.Simplify(pl.e.wlpInsn(cmp.ID, f3))
	want3 := expr.LtExpr(expr.V("%g3"), expr.V("%o1"))
	if got3.String() != want3.String() {
		t.Errorf("wlp(cmp, icc) = %v, want %v", got3, want3)
	}
}

// TestWlpLoadSummaryHavocsUniversally: loading from the summary location
// e must quantify the destination universally.
func TestWlpLoadSummaryHavocs(t *testing.T) {
	pl := build(t, fig1Asm, fig1Spec, "")
	ld := nodeByIndex(pl, 6)
	f := expr.GeExpr(expr.V("%g2"), expr.Constant(0))
	got := pl.e.wlpInsn(ld.ID, f)
	if _, ok := got.(expr.Forall); !ok {
		t.Errorf("wlp(ld-summary) = %T %v, want a universal", got, got)
	}
	// And it must not be valid (an arbitrary element can be negative).
	if pl.p.Valid(got) {
		t.Error("havocked load result should not be provably nonnegative")
	}
}

// TestEdgeGuards: the branch guards map conditions to icc constraints,
// and unsigned conditions contribute nothing.
func TestEdgeGuards(t *testing.T) {
	if condFormula(rtl.CondLt) == nil || condFormula(rtl.CondEq) == nil {
		t.Error("signed conditions must produce formulas")
	}
	if condFormula(rtl.CondGtU) != nil || condFormula(rtl.CondGeU) != nil {
		t.Error("unsigned conditions must be conservative (nil)")
	}
	if condFormula(rtl.CondAlways) != nil {
		t.Error("always-taken has no guard")
	}
	env := map[expr.Var]int64{policy.ICCA: 3, policy.ICCB: 5}
	if !condFormula(rtl.CondLt).Eval(env, nil) {
		t.Error("bl guard should hold for 3 < 5")
	}
	if condFormula(rtl.CondGe).Eval(env, nil) {
		t.Error("bge guard should fail for 3 < 5")
	}
}

// TestTrustedCallPostFlows: the postcondition of a trusted call is
// assumed when proving conditions after the call.
func TestTrustedCallPostFlows(t *testing.T) {
	asm := `
main:
	call gettime
	nop
	ld [%o2+%o0],%g1   ! index by the returned value: needs 0 <= ret < 4n...
	retl
	nop
gettime:
`
	spec := `
region V
loc e int state init region V summary
val arr int[n] state {e} region V
constraint n >= 1
invoke %o2 = arr
invoke %o1 = n
trusted gettime args 0
  ret int init perm o
  post %o0 >= 0 and %o0 <= 0
end
`
	pl := build(t, asm, spec, "main")
	out := pl.e.Prove(pl.ann.Conds)
	for _, cr := range out {
		if !cr.Proved {
			t.Errorf("condition %q not proved (post %%o0 = 0 should bound the index): %v",
				cr.Cond.Desc, cr.Cond.F)
		}
	}
}

// TestModifiedVars sanity-checks the modified-variable collection for
// the Figure 1 loop.
func TestModifiedVars(t *testing.T) {
	pl := build(t, fig1Asm, fig1Spec, "")
	ld := nodeByIndex(pl, 6)
	l := pl.g.InnermostLoop(ld.ID)
	vars := pl.e.modifiedVars(l)
	set := map[expr.Var]bool{}
	for _, v := range vars {
		set[v] = true
	}
	for _, want := range []expr.Var{"%g2", "%g3", policy.ICCA, policy.ICCB} {
		if !set[want] {
			t.Errorf("modified vars missing %s: %v", want, vars)
		}
	}
	if set["%o1"] || set["%o2"] {
		t.Errorf("loop does not modify %%o1/%%o2: %v", vars)
	}
}

// TestInductionStatsExported ensures proofs through loops record
// induction activity.
func TestInductionStatsExported(t *testing.T) {
	pl := build(t, fig1Asm, fig1Spec, "")
	pl.e.Prove(pl.ann.Conds)
	if pl.e.Stats.InductionRuns == 0 {
		t.Error("no induction runs recorded")
	}
	if pl.e.Stats.Proved != pl.e.Stats.Conditions {
		t.Errorf("proved %d of %d", pl.e.Stats.Proved, pl.e.Stats.Conditions)
	}
}

// TestConditionCache: identical conditions are proven once.
func TestConditionCache(t *testing.T) {
	pl := build(t, fig1Asm, fig1Spec, "")
	conds := append(append([]*annotate.GlobalCond{}, pl.ann.Conds...), pl.ann.Conds...)
	pl.e.Prove(conds)
	if pl.e.Stats.CacheHits == 0 {
		t.Error("duplicated conditions should hit the cache")
	}
}

// TestAblationOptionsRespected: with generalization and DNF disabled and
// MaxIter 1, the Figure 1 bound cannot be established.
func TestAblationOptionsRespected(t *testing.T) {
	s, _ := policy.Parse(fig1Spec, sparc.Arch)
	ini, _ := policy.Prepare(s)
	prog, _ := sparc.Arch.Assemble(fig1Asm, isa.AsmOptions{})
	g, _ := cfg.Build(prog, cfg.Options{})
	res := propagate.Run(g, ini)
	ann := annotate.Run(res)
	e := New(res, solver.New(), Options{Induction: induction.Options{
		DisableGeneralization: true, DisableDNF: true, MaxIter: 1}})
	out := e.Prove(ann.Conds)
	failed := 0
	for _, cr := range out {
		if !cr.Proved {
			failed++
		}
	}
	if failed == 0 {
		t.Error("crippled induction should fail on the Figure 1 bound")
	}
}
