// Package vfs is the verdict store's filesystem seam: the narrow set
// of operations vstore performs, behind an interface, so tests can
// inject the failures production disks actually produce — EIO, ENOSPC,
// torn writes, a crash between write and rename — at exact,
// deterministic points (internal/faults), while production runs on the
// real filesystem with zero indirection beyond an interface call.
//
// Disk is the real implementation; Faulty wraps any FS and fires the
// faults harness's store points (store-read, store-write, store-sync,
// store-rename) before each corresponding operation, so one armed Plan
// turns a normal store into a failing one.
package vfs

import (
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"mcsafe/internal/faults"
)

// File is the writable temp-file handle a commit goes through: write,
// fsync, close — each a separate failure point.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is every filesystem operation the verdict store performs. The
// durability-critical ones are CreateTemp→Write→Sync→Close→Rename→
// SyncDir (the commit sequence) and ReadFile (the serve path); the rest
// are maintenance.
type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making a just-renamed entry durable.
	SyncDir(dir string) error
	Stat(name string) (os.FileInfo, error)
	Chtimes(name string, atime, mtime time.Time) error
	WalkDir(root string, fn fs.WalkDirFunc) error
}

// Disk is the real filesystem.
type Disk struct{}

func (Disk) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (Disk) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (Disk) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (Disk) Remove(name string) error                     { return os.Remove(name) }
func (Disk) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (Disk) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (Disk) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}
func (Disk) WalkDir(root string, fn fs.WalkDirFunc) error { return filepath.WalkDir(root, fn) }

// SyncDir opens the directory and fsyncs it: after it returns, the
// directory's entries (a renamed-in record) are on stable storage.
func (Disk) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Faulty threads every operation through the faults harness's store
// points. With no plan armed each hook is one atomic load, so tests
// can run a store on Faulty{Disk{}} unconditionally.
type Faulty struct {
	FS FS
}

// WithFaults wraps fs so the faults harness can fail its operations.
func WithFaults(fs FS) Faulty { return Faulty{FS: fs} }

type faultyFile struct {
	f File
}

// Write asks the harness how much of the buffer may persist: an armed
// torn-write fault writes that prefix for real (so the torn record is
// actually on disk) and then surfaces the injected error.
func (f faultyFile) Write(p []byte) (int, error) {
	allow, ferr := faults.FireWrite(faults.StoreWrite, len(p))
	if ferr != nil {
		n := 0
		if allow > 0 {
			n, _ = f.f.Write(p[:allow])
		}
		return n, ferr
	}
	return f.f.Write(p)
}

func (f faultyFile) Sync() error {
	if err := faults.FireErr(faults.StoreSync); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f faultyFile) Close() error { return f.f.Close() }
func (f faultyFile) Name() string { return f.f.Name() }

func (v Faulty) CreateTemp(dir, pattern string) (File, error) {
	f, err := v.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return faultyFile{f: f}, nil
}

func (v Faulty) ReadFile(name string) ([]byte, error) {
	if err := faults.FireErr(faults.StoreRead); err != nil {
		return nil, err
	}
	return v.FS.ReadFile(name)
}

func (v Faulty) Rename(oldpath, newpath string) error {
	if err := faults.FireErr(faults.StoreRename); err != nil {
		return err
	}
	return v.FS.Rename(oldpath, newpath)
}

func (v Faulty) SyncDir(dir string) error {
	if err := faults.FireErr(faults.StoreSync); err != nil {
		return err
	}
	return v.FS.SyncDir(dir)
}

func (v Faulty) Remove(name string) error                     { return v.FS.Remove(name) }
func (v Faulty) MkdirAll(path string, perm os.FileMode) error { return v.FS.MkdirAll(path, perm) }
func (v Faulty) Stat(name string) (os.FileInfo, error)        { return v.FS.Stat(name) }
func (v Faulty) Chtimes(name string, atime, mtime time.Time) error {
	return v.FS.Chtimes(name, atime, mtime)
}
func (v Faulty) WalkDir(root string, fn fs.WalkDirFunc) error { return v.FS.WalkDir(root, fn) }
