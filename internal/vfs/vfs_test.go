package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"mcsafe/internal/faults"
)

// TestDiskCommitSequence drives the real implementation through the
// full commit sequence a Put performs and verifies the renamed file
// carries exactly the written bytes.
func TestDiskCommitSequence(t *testing.T) {
	dir := t.TempDir()
	fs := Disk{}
	f, err := fs.CreateTemp(dir, "put-*")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("record bytes")
	if n, err := f.Write(want); n != len(want) || err != nil {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "rec.json")
	if err := fs.Rename(f.Name(), dst); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile(dst)
	if err != nil || string(got) != string(want) {
		t.Fatalf("ReadFile = (%q, %v), want %q", got, err, want)
	}
}

// TestFaultyInjectsAtEveryPoint arms an Err fault at each store point
// in turn and asserts exactly the corresponding operation fails, with
// the injected error surfaced verbatim.
func TestFaultyInjectsAtEveryPoint(t *testing.T) {
	dir := t.TempDir()
	fs := WithFaults(Disk{})
	seed := filepath.Join(dir, "seed.json")
	if err := os.WriteFile(seed, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		point faults.Point
		op    func() error
	}{
		{faults.StoreRead, func() error { _, err := fs.ReadFile(seed); return err }},
		{faults.StoreWrite, func() error {
			f, err := fs.CreateTemp(dir, "t-*")
			if err != nil {
				return err
			}
			defer f.Close()
			_, err = f.Write([]byte("abc"))
			return err
		}},
		{faults.StoreSync, func() error { return fs.SyncDir(dir) }},
		{faults.StoreRename, func() error { return fs.Rename(seed, seed+".renamed") }},
	}
	for _, tc := range cases {
		restore := faults.Activate(faults.NewPlan(faults.Fault{Point: tc.point, Kind: faults.Err}))
		err := tc.op()
		restore()
		if !errors.Is(err, faults.ErrIO) {
			t.Errorf("%s: err = %v, want injected ErrIO", tc.point, err)
		}
		if err := tc.op(); err != nil {
			t.Errorf("%s: failed after disarm: %v", tc.point, err)
		}
	}
}

// TestTornWrite sweeps the torn boundary across a buffer: the file must
// hold exactly the allowed prefix when the injected error surfaces.
func TestTornWrite(t *testing.T) {
	fs := WithFaults(Disk{})
	payload := []byte("0123456789")
	for torn := 0; torn <= len(payload); torn++ {
		dir := t.TempDir()
		f, err := fs.CreateTemp(dir, "t-*")
		if err != nil {
			t.Fatal(err)
		}
		restore := faults.Activate(faults.NewPlan(faults.Fault{
			Point: faults.StoreWrite, Kind: faults.Err, Err: faults.ErrNoSpace, Torn: torn,
		}))
		n, werr := f.Write(payload)
		restore()
		f.Close()
		if !errors.Is(werr, syscall.ENOSPC) {
			t.Fatalf("torn %d: err = %v, want ENOSPC", torn, werr)
		}
		if n != torn {
			t.Fatalf("torn %d: wrote %d bytes", torn, n)
		}
		got, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(payload[:torn]) {
			t.Fatalf("torn %d: file holds %q", torn, got)
		}
	}
}
