// Package server is mcsafed's HTTP/JSON checking service: a thin,
// long-running wrapper around mcsafe.Checker that serves the v1 API
// (api.go), keyed by content address. Every submission is fingerprinted
// — (program fingerprint, policy hash, checker version) — and looked up
// in a persistent two-layer verdict store (internal/vstore) before any
// analysis runs, so the common case under heavy traffic, a repeat
// submission, is answered from memory or disk in microseconds with a
// Result byte-identical to the cold check that populated the store.
//
// Admission control reuses the checker's resource governor: each
// request's Budget is clamped to server-wide maxima, and a bounded
// in-flight semaphore keeps concurrent solver work at a configured
// level (store hits bypass admission — they do no solver work). Under
// sustained overload the semaphore sheds instead of queueing without
// bound: a request that cannot be admitted within AdmissionWait is
// refused with 503 and a Retry-After hint the client's backoff honors.
// Observability flows through the existing obs layer: one span per
// request plus server_/store counters on /v1/metrics.
//
// The store is best-effort by construction: a circuit breaker watches
// for store I/O failures and, after StoreFailThreshold consecutive
// errors, trips the server into a degraded cache-bypass mode — checking
// continues at full fidelity, caching stops. After StoreRecovery the
// breaker lets one request through as a probe; its success restores
// caching. /v1/healthz deepens this with a real write-probe of the
// store directory, so an unwritable disk is visible before the first
// failed Put.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcsafe"
	"mcsafe/internal/obs"
	"mcsafe/internal/vstore"
)

// Config assembles a Server.
type Config struct {
	// Store is the verdict store; nil disables caching (every
	// submission is checked).
	Store *vstore.Store
	// Parallelism is each check's Phase 5 worker count (0 =
	// GOMAXPROCS). With many concurrent requests, 1 (sequential per
	// check) usually maximizes throughput.
	Parallelism int
	// DefaultBudget applies to requests that carry no Budget; MaxBudget
	// caps every request's envelope field-by-field (a zero max field is
	// uncapped). Both zero: checks run ungoverned.
	DefaultBudget mcsafe.Budget
	MaxBudget     mcsafe.Budget
	// MaxInFlight bounds concurrently *checking* requests (store hits
	// are not counted). 0 means GOMAXPROCS.
	MaxInFlight int
	// MaxBatchItems bounds one batch call (default 64).
	MaxBatchItems int
	// MaxBodyBytes bounds a request body (default 16 MiB).
	MaxBodyBytes int64
	// AdmissionWait bounds how long a request may queue for an
	// admission slot before being shed with 503 + Retry-After.
	// 0 (the default) queues for as long as the client waits.
	AdmissionWait time.Duration
	// StoreFailThreshold is how many consecutive store I/O failures
	// trip the breaker into degraded cache-bypass mode (default 3).
	StoreFailThreshold int
	// StoreRecovery is how long the breaker stays open before letting
	// a half-open probe through (default 15s).
	StoreRecovery time.Duration
	// Trace receives request spans, check spans, and counters; nil
	// runs unobserved (metrics then expose only store gauges).
	Trace *obs.Trace
}

// Server implements the v1 API over one Checker configuration.
type Server struct {
	cfg      Config
	sem      chan struct{}
	inFlight atomic.Int64
	draining atomic.Bool
	brk      *breaker

	mu     sync.Mutex
	closed bool
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 64
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	return &Server{
		cfg: cfg,
		sem: make(chan struct{}, cfg.MaxInFlight),
		brk: newBreaker(cfg.StoreFailThreshold, cfg.StoreRecovery),
	}
}

// Degraded reports whether the store breaker is tripped (the server is
// serving in cache-bypass mode).
func (s *Server) Degraded() bool { return s.brk.degraded() }

// Handler returns the v1 API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return mux
}

// Drain marks the server draining: new submissions are refused with 503
// while in-flight checks finish. The caller (cmd/mcsafed) pairs it with
// http.Server.Shutdown, which waits for in-flight requests.
func (s *Server) Drain() { s.draining.Store(true) }

// Close closes the verdict store. Call after the HTTP server has shut
// down.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.cfg.Store != nil {
		return s.cfg.Store.Close()
	}
	return nil
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	worker := s.cfg.Trace.Worker(0)
	worker.Begin("request", "/v1/check")
	worker.Add("server_requests", 1)
	var req CheckRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		worker.Add("server_bad_requests", 1)
		worker.End("status", "400")
		worker.Flush()
		return
	}
	resp, status := s.process(r.Context(), worker, &req)
	worker.End("status", fmt.Sprint(status), "cached", fmt.Sprint(resp.Cached))
	worker.Flush()
	if status == http.StatusServiceUnavailable {
		// The refusal is load, not failure: tell the client when to
		// come back (its retry loop honors this).
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfDraining(w) {
		return
	}
	worker := s.cfg.Trace.Worker(0)
	worker.Begin("request", "/v1/batch")
	worker.Add("server_requests", 1)
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		worker.Add("server_bad_requests", 1)
		worker.End("status", "400")
		worker.Flush()
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		worker.End("status", "400")
		worker.Flush()
		httpError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Items), s.cfg.MaxBatchItems))
		return
	}
	worker.Add("server_batch_items", int64(len(req.Items)))
	// Items are independent; the in-flight semaphore inside process
	// bounds actual solver concurrency, so the fan-out here is free.
	resp := BatchResponse{Items: make([]CheckResponse, len(req.Items))}
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each item records through its own fork: obs Workers are
			// single-goroutine by contract.
			iw := worker.Fork()
			resp.Items[i], _ = s.process(r.Context(), iw, &req.Items[i])
			iw.Flush()
		}(i)
	}
	wg.Wait()
	worker.End("status", "200", "items", fmt.Sprint(len(req.Items)))
	worker.Flush()
	writeJSON(w, http.StatusOK, resp)
}

// process answers one submission: fingerprint, store lookup, and — on a
// miss — an admitted, budget-governed check whose wire encoding is
// stored for the next submission of the same content. Returns the
// response and its HTTP status.
func (s *Server) process(ctx context.Context, worker *obs.Worker, req *CheckRequest) (CheckResponse, int) {
	resp := CheckResponse{Checker: mcsafe.CheckerVersion}
	arch := req.Arch
	if arch == "" {
		arch = mcsafe.DefaultArch
	}
	spec, err := mcsafe.ParseSpecArch(req.Spec, arch)
	if err != nil {
		resp.Error = fmt.Sprintf("spec: %v", err)
		worker.Add("server_errors", 1)
		return resp, http.StatusBadRequest
	}
	var prog *mcsafe.Program
	switch {
	case req.Asm != "" && len(req.Words) > 0:
		resp.Error = "program: supply asm or words, not both"
	case req.Asm != "":
		prog, err = mcsafe.AssembleArch(arch, req.Asm, spec, req.Entry)
	case len(req.Words) > 0:
		prog, err = mcsafe.FromWordsArch(arch, req.Words, req.Base, req.Symbols, req.DataSyms)
	default:
		resp.Error = "program: empty submission (need asm or words)"
	}
	if err != nil {
		resp.Error = fmt.Sprintf("program: %v", err)
	}
	if resp.Error != "" {
		worker.Add("server_errors", 1)
		return resp, http.StatusBadRequest
	}

	key := vstore.Key{
		Program: prog.Fingerprint().String(),
		Policy:  spec.Hash().String(),
		Checker: mcsafe.CheckerVersion,
	}
	resp.Program = key.Program
	resp.Policy = key.Policy

	// The breaker decides whether this request touches the store at
	// all: tripped means degraded cache-bypass mode — checking is
	// unaffected, caching pauses until a recovery probe succeeds.
	useStore := s.cfg.Store != nil && !req.NoCache
	probe := false
	if useStore {
		var allowed bool
		allowed, probe = s.brk.allow()
		if !allowed {
			worker.Add("server_degraded_requests", 1)
			useStore = false
		} else if probe {
			worker.Add("server_breaker_probes", 1)
		}
	}
	if useStore {
		verdict, ok, err := s.cfg.Store.Get(key)
		switch {
		case err != nil:
			// The store's disk is failing. Record it, and leave the
			// store alone for the rest of this request.
			s.brk.failure()
			worker.Add("server_store_errors", 1)
			useStore = false
		case ok:
			s.brk.success()
			worker.Add("server_store_hits", 1)
			resp.Cached = true
			resp.Result = json.RawMessage(verdict)
			return resp, http.StatusOK
		default:
			// A miss is neutral for the breaker: no record I/O happened,
			// so it neither resets a failure streak (a write-only disk
			// fault must still trip) nor resolves a half-open probe. A
			// probe that misses resolves against a real write-probe
			// instead, so recovery never depends on drawing a warm hit.
			worker.Add("server_store_misses", 1)
			if probe {
				if perr := s.cfg.Store.Probe(); perr != nil {
					s.brk.failure()
					worker.Add("server_store_errors", 1)
					useStore = false
				} else {
					s.brk.success()
				}
			}
		}
	}

	// Admission: a bounded number of checks run concurrently; the rest
	// queue here until a slot frees, the client gives up, or (with
	// AdmissionWait set) the shedding deadline passes — overload then
	// answers 503 + Retry-After instead of queueing without bound.
	var shed <-chan time.Time
	if s.cfg.AdmissionWait > 0 {
		timer := time.NewTimer(s.cfg.AdmissionWait)
		defer timer.Stop()
		shed = timer.C
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		resp.Error = "admission: " + ctx.Err().Error()
		worker.Add("server_admission_timeouts", 1)
		return resp, http.StatusServiceUnavailable
	case <-shed:
		resp.Error = "admission: server overloaded, retry later"
		worker.Add("server_admission_shed", 1)
		return resp, http.StatusServiceUnavailable
	}
	s.inFlight.Add(1)
	defer func() {
		s.inFlight.Add(-1)
		<-s.sem
	}()

	checker := mcsafe.New(
		mcsafe.WithParallelism(s.cfg.Parallelism),
		mcsafe.WithObserver(s.cfg.Trace),
		mcsafe.WithBudget(s.effectiveBudget(req.Budget)),
	)
	worker.Add("server_checks", 1)
	res, err := checker.Check(ctx, prog, spec)
	if err != nil {
		worker.Add("server_errors", 1)
		resp.Error = err.Error()
		if ctx.Err() != nil {
			return resp, http.StatusServiceUnavailable
		}
		return resp, http.StatusInternalServerError
	}
	wire, err := res.MarshalWire()
	if err != nil {
		worker.Add("server_errors", 1)
		resp.Error = err.Error()
		return resp, http.StatusInternalServerError
	}
	resp.Result = json.RawMessage(wire)
	if useStore && cacheable(res) {
		if err := s.cfg.Store.Put(key, wire); err == nil {
			s.brk.success()
			worker.Add("server_store_puts", 1)
		} else {
			// Caching is best-effort: the verdict still goes out, the
			// breaker counts the failure.
			s.brk.failure()
			worker.Add("server_store_errors", 1)
		}
	}
	return resp, http.StatusOK
}

// cacheable rejects budget-dependent verdicts: a condition left
// unproven for lack of resources (CodeResource) reflects this request's
// envelope, not the program, and must never be served to a submitter
// with a different budget.
func cacheable(res *mcsafe.Result) bool {
	for _, v := range res.Violations {
		if v.Code == mcsafe.CodeResource {
			return false
		}
	}
	return true
}

// effectiveBudget merges the request budget over the server default and
// clamps each field to the server maximum (a zero request field
// inherits the default; a zero max leaves the field uncapped).
func (s *Server) effectiveBudget(req *BudgetRequest) mcsafe.Budget {
	b := s.cfg.DefaultBudget
	if req != nil {
		if req.DeadlineMS > 0 {
			b.Deadline = time.Duration(req.DeadlineMS) * time.Millisecond
		}
		if req.SolverSteps > 0 {
			b.SolverSteps = req.SolverSteps
		}
		if req.CondTimeoutMS > 0 {
			b.CondTimeout = time.Duration(req.CondTimeoutMS) * time.Millisecond
		}
	}
	max := s.cfg.MaxBudget
	if max.Deadline > 0 && (b.Deadline == 0 || b.Deadline > max.Deadline) {
		b.Deadline = max.Deadline
	}
	if max.SolverSteps > 0 && (b.SolverSteps == 0 || b.SolverSteps > max.SolverSteps) {
		b.SolverSteps = max.SolverSteps
	}
	if max.CondTimeout > 0 && (b.CondTimeout == 0 || b.CondTimeout > max.CondTimeout) {
		b.CondTimeout = max.CondTimeout
	}
	return b
}

// handleHealthz is a deep health check: besides liveness it runs a real
// write-probe against the verdict store (CreateTemp+write+fsync), so an
// unwritable store directory reports "store": "degraded" before the
// first Put ever fails. "ok" stays true as long as the service can
// check — a degraded store only means caching is best-effort. The probe
// outcome feeds the breaker, so a healed disk observed here restores
// caching without waiting for a request-path probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"ok":        true,
		"draining":  s.draining.Load(),
		"in_flight": s.inFlight.Load(),
		"store":     "none",
	}
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Probe(); err != nil {
			s.brk.failure()
			resp["store"] = "degraded"
			resp["store_error"] = err.Error()
		} else {
			s.brk.success()
			resp["store"] = "ok"
		}
		st := s.cfg.Store.Stats()
		resp["shards"] = st.Shards
		resp["records"] = st.DiskEntries
		resp["quarantined"] = st.Quarantined
	}
	resp["degraded"] = s.brk.degraded()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, VersionResponse{
		Checker: mcsafe.CheckerVersion,
		Schema:  mcsafe.SchemaVersion,
	})
}

// handleMetrics renders the Prometheus-style text snapshot: the trace's
// counters and span aggregates (checker effort + server_ counters),
// the breaker's degraded-mode gauges, then the store's counters and
// gauges as mcsafe_store_* lines.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Trace != nil {
		if err := s.cfg.Trace.WriteText(w); err != nil {
			return
		}
	}
	if s.cfg.Store == nil {
		return
	}
	degraded := int64(0)
	if s.brk.degraded() {
		degraded = 1
	}
	_, trips := s.brk.snapshot()
	st := s.cfg.Store.Stats()
	lines := map[string]int64{
		"server_degraded":      degraded,
		"server_breaker_trips": trips,
		"store_mem_hits":       st.MemHits,
		"store_disk_hits":      st.DiskHits,
		"store_hits":           st.MemHits + st.DiskHits,
		"store_misses":         st.Misses,
		"store_puts":           st.Puts,
		"store_mem_evictions":  st.MemEvictions,
		"store_disk_evictions": st.DiskEvictions,
		"store_rejects":        st.Rejects,
		"store_corrupt":        st.Corrupt,
		"store_quarantined":    st.Quarantined,
		"store_read_errors":    st.ReadErrors,
		"store_put_errors":     st.PutErrors,
		"store_shards":         int64(st.Shards),
		"store_mem_bytes":      st.MemBytes,
		"store_disk_bytes":     st.DiskBytes,
		"store_mem_entries":    int64(st.MemEntries),
		"store_disk_entries":   int64(st.DiskEntries),
	}
	names := make([]string, 0, len(lines))
	for name := range lines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "mcsafe_%s %d\n", name, lines[name])
	}
}

func (s *Server) refuseIfDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "draining")
		return true
	}
	return false
}

// decodeBody decodes a size-limited JSON body; unknown request fields
// are tolerated (the additive-evolution rule, in both directions).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return err
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": strings.TrimSpace(msg)})
}
