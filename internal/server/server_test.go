package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcsafe"
	"mcsafe/internal/obs"
	"mcsafe/internal/progs"
	"mcsafe/internal/vstore"
)

func newTestServer(t *testing.T, dir string) (*Server, *httptest.Server, *obs.Trace) {
	t.Helper()
	var store *vstore.Store
	if dir != "" {
		var err error
		store, err = vstore.Open(dir, vstore.Options{MemBytes: 1 << 20, DiskBytes: 16 << 20})
		if err != nil {
			t.Fatalf("vstore.Open: %v", err)
		}
	}
	trace := obs.New()
	srv := New(Config{Store: store, Parallelism: 1, Trace: trace})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, trace
}

func postCheck(t *testing.T, url string, req CheckRequest) (CheckResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	httpResp, err := http.Post(url+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/check: %v", err)
	}
	defer httpResp.Body.Close()
	var resp CheckResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, httpResp.StatusCode
}

func builtinRequest(t *testing.T, name string) CheckRequest {
	t.Helper()
	b := progs.Get(name)
	if b == nil {
		t.Fatalf("unknown builtin %q", name)
	}
	return CheckRequest{Asm: b.Source, Spec: b.Spec, Entry: b.Entry}
}

// TestWarmColdBitIdentity is the tentpole acceptance test: a warm
// resubmission of each paper program is served from the store without
// invoking the solver, survives a server restart, and returns a Result
// bit-identical to the cold check.
func TestWarmColdBitIdentity(t *testing.T) {
	dir := t.TempDir()
	_, ts, trace := newTestServer(t, dir)

	cold := map[string][]byte{}
	for _, b := range progs.Sorted() {
		resp, status := postCheck(t, ts.URL, builtinRequest(t, b.Name))
		if status != http.StatusOK || resp.Error != "" {
			t.Fatalf("%s: cold check failed: status=%d error=%q", b.Name, status, resp.Error)
		}
		if resp.Cached {
			t.Fatalf("%s: cold check reported cached", b.Name)
		}
		if resp.Program == "" || resp.Policy == "" {
			t.Fatalf("%s: response missing content addresses", b.Name)
		}
		cold[b.Name] = []byte(resp.Result)
	}

	// Warm pass against the same server: every verdict must come from
	// the store — solver counters frozen — and be byte-identical.
	checksBefore := trace.Counter("server_checks")
	solverBefore := trace.Counter("solver_valid_queries")
	for _, b := range progs.Sorted() {
		resp, status := postCheck(t, ts.URL, builtinRequest(t, b.Name))
		if status != http.StatusOK || !resp.Cached {
			t.Fatalf("%s: warm check not cached: status=%d cached=%v error=%q", b.Name, status, resp.Cached, resp.Error)
		}
		if !bytes.Equal([]byte(resp.Result), cold[b.Name]) {
			t.Fatalf("%s: warm result differs from cold:\ncold: %s\nwarm: %s", b.Name, cold[b.Name], resp.Result)
		}
	}
	if got := trace.Counter("server_checks"); got != checksBefore {
		t.Fatalf("warm pass ran %d checks, want 0", got-checksBefore)
	}
	if got := trace.Counter("solver_valid_queries"); got != solverBefore {
		t.Fatalf("warm pass issued %d solver queries, want 0", got-solverBefore)
	}
	if hits := trace.Counter("server_store_hits"); hits < int64(len(cold)) {
		t.Fatalf("server_store_hits = %d, want >= %d", hits, len(cold))
	}

	// Restart: a fresh server over the same store directory must serve
	// every verdict from disk, still byte-identical.
	_, ts2, trace2 := newTestServer(t, dir)
	for _, b := range progs.Sorted() {
		resp, status := postCheck(t, ts2.URL, builtinRequest(t, b.Name))
		if status != http.StatusOK || !resp.Cached {
			t.Fatalf("%s: post-restart check not cached: status=%d cached=%v", b.Name, status, resp.Cached)
		}
		if !bytes.Equal([]byte(resp.Result), cold[b.Name]) {
			t.Fatalf("%s: post-restart result differs from cold check", b.Name)
		}
	}
	if got := trace2.Counter("server_checks"); got != 0 {
		t.Fatalf("post-restart pass ran %d checks, want 0", got)
	}
}

func TestNoCacheBypassesStore(t *testing.T) {
	_, ts, trace := newTestServer(t, t.TempDir())
	req := builtinRequest(t, "Sum")
	req.NoCache = true
	for i := 0; i < 2; i++ {
		resp, status := postCheck(t, ts.URL, req)
		if status != http.StatusOK || resp.Cached {
			t.Fatalf("no_cache submission %d: status=%d cached=%v", i, status, resp.Cached)
		}
	}
	if got := trace.Counter("server_checks"); got != 2 {
		t.Fatalf("server_checks = %d, want 2", got)
	}
	if got := trace.Counter("server_store_hits") + trace.Counter("server_store_misses") + trace.Counter("server_store_puts"); got != 0 {
		t.Fatalf("no_cache touched the store (%d ops)", got)
	}
}

func TestStorelessServer(t *testing.T) {
	_, ts, trace := newTestServer(t, "")
	for i := 0; i < 2; i++ {
		resp, status := postCheck(t, ts.URL, builtinRequest(t, "Sum"))
		if status != http.StatusOK || resp.Cached || resp.Error != "" {
			t.Fatalf("storeless submission %d: status=%d cached=%v error=%q", i, status, resp.Cached, resp.Error)
		}
	}
	if got := trace.Counter("server_checks"); got != 2 {
		t.Fatalf("server_checks = %d, want 2", got)
	}
}

func TestUnsafeVerdictCachedFaithfully(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	cold, status := postCheck(t, ts.URL, builtinRequest(t, "PagingPolicy"))
	if status != http.StatusOK || cold.Error != "" {
		t.Fatalf("cold: status=%d error=%q", status, cold.Error)
	}
	wire, err := mcsafe.UnmarshalWire(cold.Result)
	if err != nil {
		t.Fatalf("unmarshal cold result: %v", err)
	}
	if wire.Safe || len(wire.Violations) == 0 {
		t.Fatalf("PagingPolicy reported safe=%v violations=%d", wire.Safe, len(wire.Violations))
	}
	warm, _ := postCheck(t, ts.URL, builtinRequest(t, "PagingPolicy"))
	if !warm.Cached || !bytes.Equal([]byte(warm.Result), []byte(cold.Result)) {
		t.Fatalf("unsafe verdict not served bit-identically from store (cached=%v)", warm.Cached)
	}
}

func TestBatchOrderAndCaching(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	// Names are distinct: two in-flight submissions of the same program
	// race benignly (each cold-checks; phase times differ), so byte
	// equality across batches is only guaranteed per unique key.
	names := []string{"Sum", "PagingPolicy", "Hash", "StartTimer"}
	req := BatchRequest{}
	for _, n := range names {
		req.Items = append(req.Items, builtinRequest(t, n))
	}
	body, _ := json.Marshal(req)
	httpResp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer httpResp.Body.Close()
	var resp BatchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	if len(resp.Items) != len(names) {
		t.Fatalf("batch returned %d items, want %d", len(resp.Items), len(names))
	}
	for i, n := range names {
		item := resp.Items[i]
		if item.Error != "" {
			t.Fatalf("item %d (%s): error %q", i, n, item.Error)
		}
		wire, err := mcsafe.UnmarshalWire(item.Result)
		if err != nil {
			t.Fatalf("item %d (%s): %v", i, n, err)
		}
		wantSafe := n != "PagingPolicy"
		if wire.Safe != wantSafe {
			t.Fatalf("item %d (%s): safe=%v, want %v — batch order violated?", i, n, wire.Safe, wantSafe)
		}
	}
	// A second batch is fully warm.
	httpResp2, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("second POST /v1/batch: %v", err)
	}
	defer httpResp2.Body.Close()
	var resp2 BatchResponse
	if err := json.NewDecoder(httpResp2.Body).Decode(&resp2); err != nil {
		t.Fatalf("decode second batch: %v", err)
	}
	for i := range resp2.Items {
		if !resp2.Items[i].Cached {
			t.Fatalf("second batch item %d not cached", i)
		}
		if !bytes.Equal([]byte(resp2.Items[i].Result), []byte(resp.Items[i].Result)) {
			t.Fatalf("second batch item %d differs from first", i)
		}
	}
}

// TestBatchDuplicateItems submits the same program twice in one batch:
// both items must succeed with the same content address, whether they
// raced to a cold check or one caught the other's Put.
func TestBatchDuplicateItems(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	req := BatchRequest{Items: []CheckRequest{builtinRequest(t, "Sum"), builtinRequest(t, "Sum")}}
	body, _ := json.Marshal(req)
	httpResp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp BatchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) != 2 {
		t.Fatalf("got %d items", len(resp.Items))
	}
	for i, item := range resp.Items {
		if item.Error != "" {
			t.Fatalf("item %d: %q", i, item.Error)
		}
		wire, err := mcsafe.UnmarshalWire(item.Result)
		if err != nil || !wire.Safe {
			t.Fatalf("item %d: err=%v safe=%v", i, err, wire.Safe)
		}
	}
	if resp.Items[0].Program != resp.Items[1].Program {
		t.Fatal("duplicate submissions got different content addresses")
	}
}

func TestBatchLimit(t *testing.T) {
	store, err := vstore.Open(t.TempDir(), vstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Store: store, MaxBatchItems: 2, Trace: obs.New()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	req := BatchRequest{Items: make([]CheckRequest, 3)}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	good := builtinRequest(t, "Sum")
	cases := []struct {
		name string
		req  CheckRequest
	}{
		{"empty", CheckRequest{Spec: good.Spec}},
		{"bad spec", CheckRequest{Asm: good.Asm, Spec: "region bogus ???"}},
		{"bad asm", CheckRequest{Asm: "not sparc at all\n\tbogus %x, %y", Spec: good.Spec}},
		{"both forms", CheckRequest{Asm: good.Asm, Words: []uint32{0x01000000}, Spec: good.Spec}},
	}
	for _, tc := range cases {
		resp, status := postCheck(t, ts.URL, tc.req)
		if status != http.StatusBadRequest || resp.Error == "" {
			t.Errorf("%s: status=%d error=%q, want 400 with error", tc.name, status, resp.Error)
		}
	}
	// Malformed JSON body.
	httpResp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", httpResp.StatusCode)
	}
}

func TestDrainRefusesNewWork(t *testing.T) {
	srv, ts, _ := newTestServer(t, t.TempDir())
	if resp, status := postCheck(t, ts.URL, builtinRequest(t, "Sum")); status != http.StatusOK || resp.Error != "" {
		t.Fatalf("pre-drain check failed: status=%d error=%q", status, resp.Error)
	}
	srv.Drain()
	if _, status := postCheck(t, ts.URL, builtinRequest(t, "Sum")); status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain check: status %d, want 503", status)
	}
	body, _ := json.Marshal(BatchRequest{Items: []CheckRequest{builtinRequest(t, "Sum")}})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain batch: status %d, want 503", resp.StatusCode)
	}
}

func TestEffectiveBudget(t *testing.T) {
	srv := New(Config{
		DefaultBudget: mcsafe.Budget{Deadline: 10 * time.Second, SolverSteps: 1000},
		MaxBudget:     mcsafe.Budget{Deadline: time.Minute, SolverSteps: 5000, CondTimeout: time.Second},
	})
	// No request budget: defaults, but unlimited fields clamp to max.
	b := srv.effectiveBudget(nil)
	if b.Deadline != 10*time.Second || b.SolverSteps != 1000 || b.CondTimeout != time.Second {
		t.Fatalf("default budget = %+v", b)
	}
	// Request within limits wins over defaults.
	b = srv.effectiveBudget(&BudgetRequest{DeadlineMS: 500, SolverSteps: 2000, CondTimeoutMS: 100})
	if b.Deadline != 500*time.Millisecond || b.SolverSteps != 2000 || b.CondTimeout != 100*time.Millisecond {
		t.Fatalf("merged budget = %+v", b)
	}
	// Requests beyond the maxima are clamped.
	b = srv.effectiveBudget(&BudgetRequest{DeadlineMS: 3_600_000, SolverSteps: 1 << 40, CondTimeoutMS: 60_000})
	if b.Deadline != time.Minute || b.SolverSteps != 5000 || b.CondTimeout != time.Second {
		t.Fatalf("clamped budget = %+v", b)
	}
	// No maxima: requests pass through untouched.
	open := New(Config{})
	b = open.effectiveBudget(&BudgetRequest{SolverSteps: 1 << 40})
	if b.SolverSteps != 1<<40 || b.Deadline != 0 {
		t.Fatalf("uncapped budget = %+v", b)
	}
}

func TestBudgetLimitedVerdictNotCached(t *testing.T) {
	_, ts, trace := newTestServer(t, t.TempDir())
	req := builtinRequest(t, "HeapSort")
	req.Budget = &BudgetRequest{SolverSteps: 1}
	resp, status := postCheck(t, ts.URL, req)
	if status != http.StatusOK || resp.Error != "" {
		t.Fatalf("starved check: status=%d error=%q", status, resp.Error)
	}
	wire, err := mcsafe.UnmarshalWire(resp.Result)
	if err != nil {
		t.Fatal(err)
	}
	starved := false
	for _, v := range wire.Violations {
		if v.Code == mcsafe.CodeResource {
			starved = true
		}
	}
	if !starved {
		t.Skip("1-step budget did not starve this program; nothing to assert")
	}
	if got := trace.Counter("server_store_puts"); got != 0 {
		t.Fatalf("budget-limited verdict was cached (%d puts)", got)
	}
	// A full-budget resubmission must re-check, not serve the starved verdict.
	full, _ := postCheck(t, ts.URL, builtinRequest(t, "HeapSort"))
	if full.Cached {
		t.Fatal("full-budget resubmission served from cache after starved check")
	}
	w2, err := mcsafe.UnmarshalWire(full.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Safe {
		t.Fatalf("full-budget recheck unsafe: %v", w2.Violations)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	_, ts, trace := newTestServer(t, t.TempDir())
	names := []string{"Sum", "PagingPolicy", "Hash", "BubbleSort"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := builtinRequest(t, names[i%len(names)])
			resp, status := postCheck(t, ts.URL, req)
			if status != http.StatusOK || resp.Error != "" {
				errs <- fmt.Errorf("worker %d: status=%d error=%q", i, status, resp.Error)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every distinct program checked at least once, and the store saw
	// the rest (either as hits or as racing misses that all checked).
	if got := trace.Counter("server_requests"); got != 16 {
		t.Fatalf("server_requests = %d, want 16", got)
	}
}

func TestMetricsVersionHealthz(t *testing.T) {
	srv, ts, _ := newTestServer(t, t.TempDir())
	postCheck(t, ts.URL, builtinRequest(t, "Sum"))
	postCheck(t, ts.URL, builtinRequest(t, "Sum"))

	get := func(path string) (string, int) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.StatusCode
	}

	body, status := get("/v1/metrics")
	if status != http.StatusOK {
		t.Fatalf("/v1/metrics: status %d", status)
	}
	for _, want := range []string{"mcsafe_server_requests", "mcsafe_store_hits", "mcsafe_store_disk_entries"} {
		if !strings.Contains(body, want) {
			t.Errorf("/v1/metrics missing %s:\n%s", want, body)
		}
	}

	body, status = get("/v1/version")
	if status != http.StatusOK || !strings.Contains(body, mcsafe.CheckerVersion) {
		t.Fatalf("/v1/version: status=%d body=%s", status, body)
	}

	body, status = get("/v1/healthz")
	if status != http.StatusOK || !strings.Contains(body, `"ok":true`) {
		t.Fatalf("/v1/healthz: status=%d body=%s", status, body)
	}
	srv.Drain()
	body, _ = get("/v1/healthz")
	if !strings.Contains(body, `"draining":true`) {
		t.Fatalf("/v1/healthz after drain: %s", body)
	}
}

func TestWordsSubmission(t *testing.T) {
	_, ts, _ := newTestServer(t, t.TempDir())
	// Submit Sum the way a loader would: raw machine words plus symbol
	// tables, no assembly source. The words path cold-checks, caches,
	// and then serves the resubmission bit-identically.
	b := progs.Get("Sum")
	sp, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	req := CheckRequest{
		Words: sp.Words, Base: sp.Base, Symbols: sp.Symbols, DataSyms: sp.DataSyms, Spec: b.Spec,
	}
	cold, status := postCheck(t, ts.URL, req)
	if status != http.StatusOK || cold.Error != "" || cold.Cached {
		t.Fatalf("cold words check: status=%d cached=%v error=%q", status, cold.Cached, cold.Error)
	}
	wire, err := mcsafe.UnmarshalWire(cold.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !wire.Safe {
		t.Fatalf("Sum via words unsafe: %v", wire.Violations)
	}
	warm, status := postCheck(t, ts.URL, req)
	if status != http.StatusOK || !warm.Cached || !bytes.Equal([]byte(warm.Result), []byte(cold.Result)) {
		t.Fatalf("words resubmission not served bit-identically (cached=%v)", warm.Cached)
	}
	// The words fingerprint is a distinct content address from the asm
	// submission (no source lines), so the two must not alias.
	asm, _ := postCheck(t, ts.URL, builtinRequest(t, "Sum"))
	if asm.Cached {
		t.Fatal("asm submission aliased the words submission's verdict")
	}
	if asm.Program == cold.Program {
		t.Fatal("asm and words fingerprints collide despite differing SrcLines")
	}
}
