package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcsafe/internal/faults"
	"mcsafe/internal/obs"
	"mcsafe/internal/vstore"
)

// newDegradableServer builds a server over a real store (whose default
// FS routes through the fault seam) with a fast-tripping, fast-healing
// breaker, so degraded-mode tests run in milliseconds.
func newDegradableServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	store, err := vstore.Open(t.TempDir(), vstore.Options{NoSync: true})
	if err != nil {
		t.Fatalf("vstore.Open: %v", err)
	}
	srv := New(Config{
		Store:              store,
		Parallelism:        1,
		Trace:              obs.New(),
		StoreFailThreshold: 2,
		StoreRecovery:      50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return m
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(b)
}

// TestDegradedModeAndRecovery is the degraded-mode acceptance test: a
// store whose writes fail persistently trips the breaker after the
// threshold, the server keeps answering checks at full fidelity with
// the store bypassed, /v1/healthz and /v1/metrics surface the state,
// and once the disk heals a recovery probe silently restores caching.
func TestDegradedModeAndRecovery(t *testing.T) {
	srv, ts := newDegradableServer(t)

	// Every temp-file write fails from here on: each request's Put
	// after a successful check counts one breaker failure.
	restore := faults.Activate(faults.NewPlan(faults.Fault{
		Point: faults.StoreWrite, Kind: faults.Err, Repeat: true,
	}))
	armed := true
	defer func() {
		if armed {
			restore()
		}
	}()

	// Distinct programs so every request is a genuine miss + Put.
	for _, name := range []string{"Sum", "Hash", "BubbleSort"} {
		resp, status := postCheck(t, ts.URL, builtinRequest(t, name))
		if status != http.StatusOK || resp.Error != "" {
			t.Fatalf("%s under store faults: status %d, err %q — checking must not depend on the store", name, status, resp.Error)
		}
		if resp.Cached || len(resp.Result) == 0 {
			t.Fatalf("%s: cached=%v result=%d bytes, want a fresh full verdict", name, resp.Cached, len(resp.Result))
		}
	}
	if !srv.Degraded() {
		t.Fatal("breaker not tripped after repeated Put failures past the threshold")
	}

	// The degraded state is visible: healthz deep-probes the store
	// (the probe write also fails) and metrics gauge it.
	hz := getJSON(t, ts.URL+"/v1/healthz")
	if hz["ok"] != true {
		t.Fatalf("healthz ok = %v: degraded caching must not fail liveness", hz["ok"])
	}
	if hz["store"] != "degraded" {
		t.Fatalf("healthz store = %v, want degraded", hz["store"])
	}
	if hz["degraded"] != true {
		t.Fatalf("healthz degraded = %v, want true", hz["degraded"])
	}
	if _, ok := hz["store_error"]; !ok {
		t.Fatal("healthz missing store_error while the probe fails")
	}
	if hz["shards"] == nil || hz["records"] == nil {
		t.Fatalf("healthz missing shard/record counts: %v", hz)
	}
	metrics := getText(t, ts.URL+"/v1/metrics")
	if !strings.Contains(metrics, "mcsafe_server_degraded 1") {
		t.Fatalf("metrics missing mcsafe_server_degraded 1:\n%s", metrics)
	}
	if !strings.Contains(metrics, "mcsafe_server_breaker_trips 1") {
		t.Fatalf("metrics missing mcsafe_server_breaker_trips 1:\n%s", metrics)
	}

	// While open, requests bypass the store entirely but still serve.
	if resp, status := postCheck(t, ts.URL, builtinRequest(t, "Sum")); status != http.StatusOK || resp.Cached {
		t.Fatalf("degraded request: status %d cached=%v, want uncached 200", status, resp.Cached)
	}

	// The disk heals. After the recovery interval, the next request is
	// the half-open probe: its miss resolves against a real write-probe,
	// which now succeeds and closes the circuit, and its Put lands.
	restore()
	armed = false
	time.Sleep(120 * time.Millisecond)
	if resp, status := postCheck(t, ts.URL, builtinRequest(t, "StartTimer")); status != http.StatusOK || resp.Error != "" {
		t.Fatalf("probe request: status %d err %q", status, resp.Error)
	}
	if srv.Degraded() {
		t.Fatal("breaker still open after a successful recovery probe")
	}
	// Caching restored: the probe's Put serves the resubmission warm.
	resp, status := postCheck(t, ts.URL, builtinRequest(t, "StartTimer"))
	if status != http.StatusOK || !resp.Cached {
		t.Fatalf("post-recovery resubmission: status %d cached=%v, want cached hit", status, resp.Cached)
	}
	if !strings.Contains(getText(t, ts.URL+"/v1/metrics"), "mcsafe_server_degraded 0") {
		t.Fatal("metrics still gauge degraded after recovery")
	}
}

// TestHealthzProbeTripsBreaker pins that the deep health probe is a
// first-class breaker signal: an unwritable store is discovered (and
// the server degraded) by health checks alone, before any Put fails.
func TestHealthzProbeTripsBreaker(t *testing.T) {
	srv, ts := newDegradableServer(t)
	if hz := getJSON(t, ts.URL+"/v1/healthz"); hz["store"] != "ok" || hz["degraded"] != false {
		t.Fatalf("healthy store healthz = %v, want store ok, degraded false", hz)
	}
	restore := faults.Activate(faults.NewPlan(faults.Fault{
		Point: faults.StoreWrite, Kind: faults.Err, Err: faults.ErrNoSpace, Repeat: true,
	}))
	defer restore()
	for i := 0; i < 2; i++ { // threshold is 2
		if hz := getJSON(t, ts.URL+"/v1/healthz"); hz["store"] != "degraded" {
			t.Fatalf("probe %d: store = %v, want degraded", i, hz["store"])
		}
	}
	if !srv.Degraded() {
		t.Fatal("health probes alone did not trip the breaker")
	}
}

// TestAdmissionShedRetryAfter pins overload shedding: with every
// admission slot held and AdmissionWait set, a cache-missing request is
// refused 503 with a Retry-After hint instead of queueing forever.
func TestAdmissionShedRetryAfter(t *testing.T) {
	store, err := vstore.Open(t.TempDir(), vstore.Options{NoSync: true})
	if err != nil {
		t.Fatalf("vstore.Open: %v", err)
	}
	srv := New(Config{
		Store:         store,
		Parallelism:   1,
		Trace:         obs.New(),
		MaxInFlight:   1,
		AdmissionWait: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()

	body := strings.NewReader(marshalCheck(t, builtinRequest(t, "Sum")))
	httpResp, err := http.Post(ts.URL+"/v1/check", "application/json", body)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", httpResp.StatusCode)
	}
	if got := httpResp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var resp CheckResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !strings.Contains(resp.Error, "overloaded") {
		t.Fatalf("error = %q, want an overload message", resp.Error)
	}
}

func marshalCheck(t *testing.T, req CheckRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}
