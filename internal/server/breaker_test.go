package server

import (
	"testing"
	"time"
)

// TestBreakerLifecycle walks the full closed → open → half-open →
// closed circle on an injected clock: trip at the threshold, refuse
// while open, exactly one probe after recovery, and probe outcome
// deciding between re-open and close.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	// Below the threshold the circuit stays closed.
	b.failure()
	b.failure()
	if b.degraded() {
		t.Fatal("degraded after 2 failures with threshold 3")
	}
	if allowed, probe := b.allow(); !allowed || probe {
		t.Fatalf("closed allow() = (%v, %v), want (true, false)", allowed, probe)
	}

	// The third consecutive failure trips it.
	b.failure()
	if !b.degraded() {
		t.Fatal("not degraded after threshold failures")
	}
	if state, trips := b.snapshot(); state != "open" || trips != 1 {
		t.Fatalf("snapshot = (%s, %d), want (open, 1)", state, trips)
	}
	if allowed, _ := b.allow(); allowed {
		t.Fatal("open circuit allowed a request before recovery elapsed")
	}

	// Recovery elapses: exactly one probe goes through, the rest wait.
	now = now.Add(1100 * time.Millisecond)
	allowed, probe := b.allow()
	if !allowed || !probe {
		t.Fatalf("post-recovery allow() = (%v, %v), want (true, true)", allowed, probe)
	}
	if allowed, _ := b.allow(); allowed {
		t.Fatal("second request allowed while the probe is in flight")
	}

	// The probe fails: straight back to open, trip counted.
	b.failure()
	if state, trips := b.snapshot(); state != "open" || trips != 2 {
		t.Fatalf("snapshot after failed probe = (%s, %d), want (open, 2)", state, trips)
	}

	// Next recovery window, the probe succeeds: circuit closes.
	now = now.Add(1100 * time.Millisecond)
	if allowed, probe := b.allow(); !allowed || !probe {
		t.Fatalf("second probe allow() = (%v, %v), want (true, true)", allowed, probe)
	}
	b.success()
	if b.degraded() {
		t.Fatal("degraded after successful probe")
	}
	if allowed, probe := b.allow(); !allowed || probe {
		t.Fatalf("closed-again allow() = (%v, %v), want (true, false)", allowed, probe)
	}
}

// TestBreakerSuccessResetsStreak pins that failures must be
// consecutive: any success restarts the count.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(3, time.Second)
	for i := 0; i < 10; i++ {
		b.failure()
		b.failure()
		b.success()
	}
	if b.degraded() {
		t.Fatal("tripped despite never reaching 3 consecutive failures")
	}
}

// TestBreakerDefaults pins the zero-config defaults New relies on.
func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0)
	if b.threshold != 3 || b.recovery != 15*time.Second {
		t.Fatalf("defaults = (%d, %v), want (3, 15s)", b.threshold, b.recovery)
	}
}
