// The v1 wire API of mcsafed. The request/response schemas follow the
// same evolution rule as the Result wire schema (mcsafe.SchemaVersion):
// fields are only ever added, decoders ignore fields they do not know,
// and every response names the checker version and schema that produced
// it.
//
// Endpoints:
//
//	POST /v1/check    one submission  → CheckResponse
//	POST /v1/batch    BatchRequest    → BatchResponse (items in order)
//	GET  /v1/healthz  liveness        → {"ok":true}
//	GET  /v1/version  identification  → VersionResponse
//	GET  /v1/metrics  Prometheus-style text: checker counters + store gauges
package server

import "encoding/json"

// BudgetRequest is the client's resource envelope for one check. Each
// field is clamped to the server's -max-* limits; zero fields inherit
// the server defaults. See mcsafe.Budget for the fail-closed semantics.
type BudgetRequest struct {
	DeadlineMS    int64 `json:"deadline_ms,omitempty"`
	SolverSteps   int64 `json:"solver_steps,omitempty"`
	CondTimeoutMS int64 `json:"cond_timeout_ms,omitempty"`
}

// CheckRequest is one program+policy submission. The program arrives
// either as assembly (Asm) or as raw machine words plus loader tables
// (Words/Base/Symbols/DataSyms); Spec is the policy source. Arch names
// the instruction-set front-end the submission is decoded with (see
// mcsafe.Arches); empty means mcsafe.DefaultArch, so pre-arch clients
// keep checking SPARC unchanged.
type CheckRequest struct {
	Arch     string            `json:"arch,omitempty"`
	Asm      string            `json:"asm,omitempty"`
	Words    []uint32          `json:"words,omitempty"`
	Base     uint32            `json:"base,omitempty"`
	Symbols  map[string]int    `json:"symbols,omitempty"`
	DataSyms map[string]uint32 `json:"data_syms,omitempty"`
	Entry    string            `json:"entry,omitempty"`
	Spec     string            `json:"spec"`
	Budget   *BudgetRequest    `json:"budget,omitempty"`
	// NoCache forces a fresh check: the verdict store is neither
	// consulted nor written for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// CheckResponse is the outcome of one submission. Exactly one of Result
// and Error is set. Result carries the canonical Result wire encoding
// (mcsafe.WireResult): on a store hit it is byte-identical to the cold
// check that populated the store.
type CheckResponse struct {
	// Program and Policy are the submission's content addresses
	// (mcsafe.Hash hex); Checker the serving checker version.
	Program string `json:"program,omitempty"`
	Policy  string `json:"policy,omitempty"`
	Checker string `json:"checker"`
	// Cached reports whether the verdict was served from the store.
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// BatchRequest submits many independent programs in one call.
type BatchRequest struct {
	Items []CheckRequest `json:"items"`
}

// BatchResponse carries one CheckResponse per submitted item, in
// submission order.
type BatchResponse struct {
	Items []CheckResponse `json:"items"`
}

// VersionResponse identifies the serving checker.
type VersionResponse struct {
	Checker string `json:"checker"`
	Schema  int    `json:"schema"`
}
