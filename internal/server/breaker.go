package server

import (
	"sync"
	"time"
)

// breakerState is the store-failure circuit's position.
type breakerState int

const (
	// breakerClosed: the store is healthy; every request uses it.
	breakerClosed breakerState = iota
	// breakerOpen: repeated store failures tripped the circuit; the
	// server runs degraded — checks proceed, the store is bypassed —
	// until the recovery interval elapses.
	breakerOpen
	// breakerHalfOpen: the recovery interval elapsed; exactly one
	// request is let through as a probe. Its success closes the
	// circuit, its failure re-opens it.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is the server's store-failure circuit breaker: the mechanism
// that turns "the disk is dying" into a degraded-but-serving mode
// instead of a failing service. Checking never depends on it — only
// caching does, which is best-effort by design.
type breaker struct {
	threshold int           // consecutive failures that trip the circuit
	recovery  time.Duration // open duration before a half-open probe
	now       func() time.Time

	mu            sync.Mutex
	state         breakerState
	failures      int       // consecutive, reset by any success
	until         time.Time // open until (then half-open)
	probeInFlight bool
	trips         int64
}

func newBreaker(threshold int, recovery time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if recovery <= 0 {
		recovery = 15 * time.Second
	}
	return &breaker{threshold: threshold, recovery: recovery, now: time.Now}
}

// allow reports whether the store may be used for this request, and
// whether the request is the half-open recovery probe (whose outcome
// must be reported via success/failure).
func (b *breaker) allow() (allowed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Before(b.until) {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probeInFlight = true
		return true, true
	default: // half-open
		if b.probeInFlight {
			return false, false
		}
		b.probeInFlight = true
		return true, true
	}
}

// success records a store operation that completed: consecutive
// failures reset, and a half-open probe closes the circuit.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probeInFlight = false
	b.state = breakerClosed
}

// failure records a store I/O failure: in the closed state it trips the
// circuit at the threshold; in half-open it re-opens immediately.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.probeInFlight = false
	switch b.state {
	case breakerClosed:
		if b.failures >= b.threshold {
			b.trip()
		}
	case breakerHalfOpen:
		b.trip()
	case breakerOpen:
		// Already open (a concurrent request raced the trip): extend.
		b.until = b.now().Add(b.recovery)
	}
}

// trip opens the circuit. Caller holds b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.until = b.now().Add(b.recovery)
	b.trips++
}

// degraded reports whether the circuit is anything but closed — the
// /v1/healthz and /v1/metrics "degraded" signal.
func (b *breaker) degraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerClosed
}

// snapshot returns the state name and trip count for metrics.
func (b *breaker) snapshot() (state string, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.trips
}
