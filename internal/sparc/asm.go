package sparc

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultBase is the virtual address assigned to the first instruction of
// an assembled program.
const DefaultBase uint32 = 0x10000

// Program is an assembled (or externally supplied) machine-code program:
// the raw words, their decoded view, and the side tables a loader would
// provide (symbols and, for authored programs, a source map).
type Program struct {
	// Words are the SPARC machine words, the checker's real input.
	Words []uint32
	// Insns is the decoded view of Words.
	Insns []Insn
	// Base is the virtual address of Words[0].
	Base uint32
	// Symbols maps every label to its instruction index.
	Symbols map[string]int
	// Procs lists labels that are procedure entry points (call targets
	// plus the program entry), sorted by instruction index.
	Procs []string
	// Entry is the instruction index where execution begins.
	Entry int
	// DataSyms maps data-symbol names to their virtual addresses, as a
	// loader's relocation/symbol table would.
	DataSyms map[string]uint32
	// SrcLines maps instruction index to source line (0 when unknown).
	SrcLines []int
}

// AsmOptions configures assembly.
type AsmOptions struct {
	// Base virtual address for the first instruction (DefaultBase if 0).
	Base uint32
	// DataSyms assigns virtual addresses to data symbols referenced by
	// "set sym,%rd".
	DataSyms map[string]uint32
	// Entry names the entry label; defaults to the first instruction.
	Entry string
	// Externs names call targets defined outside the program (trusted
	// host functions); each is assigned a slot past the last
	// instruction, as a linker would resolve an external symbol.
	Externs map[string]bool
}

// Assemble runs the two-pass assembler over SPARC assembly source.
// Synthetic instructions are expanded; labels (including the numeric line
// labels used in the paper's figures) are resolved to displacements; the
// result is encoded to machine words and re-decoded so that Program.Insns
// is exactly what a checker sees when handed the binary.
func Assemble(src string, opts AsmOptions) (*Program, error) {
	base := opts.Base
	if base == 0 {
		base = DefaultBase
	}
	p := &parser{dataSyms: opts.DataSyms}

	var insns []Insn
	labels := make(map[string]int)
	var pendingLabels []string

	for lineNo, text := range strings.Split(src, "\n") {
		lbls, parsed, err := p.parseLine(text, lineNo+1)
		if err != nil {
			return nil, err
		}
		pendingLabels = append(pendingLabels, lbls...)
		if len(parsed) == 0 {
			continue
		}
		for _, l := range pendingLabels {
			if _, dup := labels[l]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, l)
			}
			labels[l] = len(insns)
		}
		pendingLabels = pendingLabels[:0]
		insns = append(insns, parsed...)
	}
	if len(pendingLabels) > 0 {
		// Trailing labels refer past the last instruction.
		for _, l := range pendingLabels {
			labels[l] = len(insns)
		}
	}
	if len(insns) == 0 {
		return nil, fmt.Errorf("sparc: empty program")
	}
	// External symbols resolve to slots past the last instruction, in
	// name order so that identical source always assembles to identical
	// symbol tables and words (the verdict store's content addresses
	// depend on this).
	externs := make([]string, 0, len(opts.Externs))
	for name := range opts.Externs {
		externs = append(externs, name)
	}
	sort.Strings(externs)
	for _, name := range externs {
		if _, defined := labels[name]; !defined {
			labels[name] = len(insns) + len(labels)
		}
	}

	// Pass 2: resolve targets, encode.
	words := make([]uint32, len(insns))
	srcLines := make([]int, len(insns))
	callTargets := make(map[string]bool)
	for idx := range insns {
		insn := insns[idx]
		srcLines[idx] = insn.Line
		if insn.Target != "" {
			tgt, ok := labels[insn.Target]
			if !ok {
				return nil, fmt.Errorf("line %d: undefined label %q", insn.Line, insn.Target)
			}
			insn.Disp = int32(tgt - idx)
			if insn.Op == OpCall {
				callTargets[insn.Target] = true
			}
			insn.Target = ""
		}
		w, err := Encode(insn)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", insn.Line, err)
		}
		words[idx] = w
	}

	decoded, err := DecodeAll(words)
	if err != nil {
		return nil, fmt.Errorf("sparc: internal round-trip failure: %v", err)
	}
	for idx := range decoded {
		decoded[idx].Line = srcLines[idx]
	}

	entry := 0
	if opts.Entry != "" {
		e, ok := labels[opts.Entry]
		if !ok {
			return nil, fmt.Errorf("sparc: entry label %q not defined", opts.Entry)
		}
		entry = e
	}

	var procs []string
	for l := range callTargets {
		// Labels past the last instruction are external symbols
		// (trusted host functions), not procedures of this program.
		if labels[l] < len(insns) {
			procs = append(procs, l)
		}
	}
	// The entry is a procedure too; name it if it has a label.
	for l, idx := range labels {
		if idx == entry && !callTargets[l] {
			procs = append(procs, l)
		}
	}
	sort.Slice(procs, func(i, j int) bool { return labels[procs[i]] < labels[procs[j]] })

	return &Program{
		Words:    words,
		Insns:    decoded,
		Base:     base,
		Symbols:  labels,
		Procs:    procs,
		Entry:    entry,
		DataSyms: opts.DataSyms,
		SrcLines: srcLines,
	}, nil
}

// FromWords builds a Program directly from machine words, the checker's
// binary-first entry point. symbols and dataSyms may be nil.
func FromWords(words []uint32, base uint32, symbols map[string]int, dataSyms map[string]uint32) (*Program, error) {
	insns, err := DecodeAll(words)
	if err != nil {
		return nil, err
	}
	if base == 0 {
		base = DefaultBase
	}
	prog := &Program{
		Words:    append([]uint32(nil), words...),
		Insns:    insns,
		Base:     base,
		Symbols:  symbols,
		DataSyms: dataSyms,
		SrcLines: make([]int, len(insns)),
	}
	if prog.Symbols == nil {
		prog.Symbols = map[string]int{}
	}
	// Call targets identify procedure entries.
	seen := map[int]bool{}
	for idx, insn := range insns {
		if insn.Op == OpCall {
			tgt := idx + int(insn.Disp)
			if tgt >= 0 && tgt < len(insns) && !seen[tgt] {
				seen[tgt] = true
			}
		}
	}
	nameOf := make(map[int]string)
	for name, idx := range prog.Symbols {
		nameOf[idx] = name
	}
	var procIdx []int
	for idx := range seen {
		procIdx = append(procIdx, idx)
	}
	if !seen[prog.Entry] {
		procIdx = append(procIdx, prog.Entry)
	}
	sort.Ints(procIdx)
	for _, idx := range procIdx {
		name := nameOf[idx]
		if name == "" {
			name = fmt.Sprintf("proc_%d", idx)
			prog.Symbols[name] = idx
		}
		prog.Procs = append(prog.Procs, name)
	}
	return prog, nil
}

// AddrOf returns the virtual address of instruction idx.
func (p *Program) AddrOf(idx int) uint32 { return p.Base + uint32(idx)*4 }

// IndexOf returns the instruction index of a virtual address.
func (p *Program) IndexOf(addr uint32) (int, bool) {
	if addr < p.Base || (addr-p.Base)%4 != 0 {
		return 0, false
	}
	idx := int((addr - p.Base) / 4)
	if idx >= len(p.Insns) {
		return 0, false
	}
	return idx, true
}

// ProcEntry returns the instruction index of a procedure label.
func (p *Program) ProcEntry(name string) (int, bool) {
	idx, ok := p.Symbols[name]
	return idx, ok
}

// LabelAt returns a label naming instruction idx, preferring procedure
// labels; it returns "" if the instruction is unlabeled.
func (p *Program) LabelAt(idx int) string {
	best := ""
	for name, at := range p.Symbols {
		if at != idx {
			continue
		}
		if best == "" || name < best {
			best = name
		}
	}
	return best
}

// Disassemble renders the program, one instruction per line, with
// resolved branch targets shown as absolute indices.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for idx, insn := range p.Insns {
		if lbl := p.LabelAt(idx); lbl != "" {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		text := insn.String()
		if insn.Op == OpBranch || insn.Op == OpCall {
			text = strings.Replace(text, fmt.Sprintf(".%+d", insn.Disp),
				fmt.Sprintf("@%d", idx+int(insn.Disp)), 1)
		}
		fmt.Fprintf(&b, "%4d: %08x  %s\n", idx, p.Words[idx], text)
	}
	return b.String()
}
