// The isa.Arch adapter: everything outside this package (and the
// differential-test oracle) reaches SPARC only through the registered
// architecture — decode, lift, register naming, and the calling
// convention are exposed here and nowhere else.

package sparc

import (
	"mcsafe/internal/isa"
	"mcsafe/internal/rtl"
)

type archImpl struct{}

// Arch is the SPARC front-end as an isa.Arch.
var Arch isa.Arch = archImpl{}

func init() { isa.Register(Arch) }

var regModel = func() *isa.RegModel {
	names := make([]string, 32)
	for r := 0; r < 32; r++ {
		names[r] = Reg(r).String()
	}
	// %o6 and %i6 are the numbered spellings of %sp and %fp.
	aliases := map[string]string{"%o6": "%sp", "%i6": "%fp"}
	return isa.NewRegModel(names, aliases, true, rtl.Reg(O0), 8)
}()

var convention = &isa.Convention{
	SP:      rtl.Reg(SP),
	FP:      rtl.Reg(FP),
	Link:    rtl.Reg(O7),
	RetReg:  rtl.Reg(O0),
	ArgRegs: []rtl.Reg{8, 9, 10, 11, 12, 13}, // %o0..%o5
	// A trusted call may clobber the out and volatile global registers.
	// The order — outs then globals — is the canonical havoc order of
	// the verifier and is frozen (fresh-variable naming is part of the
	// verdict rendering).
	CallClobbered: []rtl.Reg{8, 9, 10, 11, 12, 13, 1, 2, 3, 4, 5},
	InitRegs:      []rtl.Reg{rtl.Reg(SP), rtl.Reg(FP), rtl.Reg(O7), rtl.Reg(I7)},
	MinFrame:      64,
	StackAlign:    8,
	Window: isa.WindowLayout{
		Out: rtl.Reg(O0), Local: rtl.Reg(L0), In: rtl.Reg(I0),
		Size: 8, MaxDepth: 8,
	},
}

func (archImpl) Name() string          { return "sparc" }
func (archImpl) Regs() *isa.RegModel   { return regModel }
func (archImpl) Conv() *isa.Convention { return convention }
func (archImpl) Traits() isa.Traits {
	return isa.Traits{DelaySlots: true, RegisterWindows: true}
}

func (archImpl) Assemble(src string, opts isa.AsmOptions) (*isa.Program, error) {
	p, err := Assemble(src, AsmOptions{
		Base: opts.Base, DataSyms: opts.DataSyms, Entry: opts.Entry, Externs: opts.Externs,
	})
	if err != nil {
		return nil, err
	}
	return toISA(p), nil
}

func (archImpl) FromWords(words []uint32, base uint32, symbols map[string]int, dataSyms map[string]uint32) (*isa.Program, error) {
	p, err := FromWords(words, base, symbols, dataSyms)
	if err != nil {
		return nil, err
	}
	return toISA(p), nil
}

// ToISA lifts a native SPARC program into the ISA-neutral container —
// exported for the differential-test oracle, which mutates and executes
// native programs but checks them through the neutral pipeline.
func ToISA(p *Program) *isa.Program { return toISA(p) }

// toISA lifts an assembled SPARC program into the ISA-neutral container:
// per instruction, its decoded text, its RTL effect sequence, and the
// return-idiom flag.
func toISA(p *Program) *isa.Program {
	insns := make([]isa.Insn, len(p.Insns))
	for i, insn := range p.Insns {
		insns[i] = isa.Insn{
			RTL:  Lift(insn),
			Text: insn.String(),
			Ret:  insn.IsReturn(),
		}
	}
	return &isa.Program{
		Arch:     Arch,
		Words:    p.Words,
		Insns:    insns,
		Base:     p.Base,
		Symbols:  p.Symbols,
		Procs:    p.Procs,
		Entry:    p.Entry,
		DataSyms: p.DataSyms,
		SrcLines: p.SrcLines,
	}
}
