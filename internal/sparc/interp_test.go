package sparc

import (
	"math/rand"
	"testing"
)

// runFig1 executes the Figure 1 array-summation code concretely.
func runFig1(t *testing.T, arr []int32) int32 {
	t.Helper()
	p, err := Assemble(fig1Source, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	const base = 0x40000
	for i, v := range arr {
		m.Store32(base+uint32(4*i), uint32(v))
	}
	m.SetReg(O0, base)
	m.SetReg(O0+1, uint32(len(arr)))
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	return int32(m.Reg(O0))
}

// TestInterpFig1Sum: the decoded binary really sums the array — the
// instruction semantics (delay slots included) agree with the source
// comments of Figure 1.
func TestInterpFig1Sum(t *testing.T) {
	cases := [][]int32{
		{5},
		{1, 2, 3},
		{-4, 4, 10, -10, 7},
		{0, 0, 0, 0},
	}
	for _, arr := range cases {
		var want int32
		for _, v := range arr {
			want += v
		}
		if got := runFig1(t, arr); got != want {
			t.Errorf("sum(%v) = %d, want %d", arr, got, want)
		}
	}
}

func TestInterpFig1RandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(20)
		arr := make([]int32, n)
		var want int32
		for j := range arr {
			arr[j] = int32(r.Intn(2001) - 1000)
			want += arr[j]
		}
		if got := runFig1(t, arr); got != want {
			t.Fatalf("sum(%v) = %d, want %d", arr, got, want)
		}
	}
}

// TestInterpMemorySafetyOfVerifiedSum: the static verdict is validated
// dynamically — every memory access of the checker-approved Figure 1
// code stays within the declared array.
func TestInterpMemorySafetyOfVerifiedSum(t *testing.T) {
	p, err := Assemble(fig1Source, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		n := 1 + r.Intn(16)
		m := NewMachine(p)
		const base = 0x40000
		lo, hi := uint32(base), uint32(base+4*n)
		m.OnMem = func(addr uint32, size int, write bool) {
			if addr < lo || addr+uint32(size) > hi {
				t.Fatalf("n=%d: access at 0x%x outside [0x%x, 0x%x)", n, addr, lo, hi)
			}
			if write {
				t.Fatalf("sum must not write memory")
			}
			if addr%4 != 0 {
				t.Fatalf("misaligned access at 0x%x", addr)
			}
		}
		for j := 0; j < n; j++ {
			m.Store32(base+uint32(4*j), uint32(r.Intn(100)))
		}
		m.SetReg(O0, base)
		m.SetReg(O0+1, uint32(n))
		if err := m.Run(100000); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInterpBranches covers each signed condition.
func TestInterpBranches(t *testing.T) {
	src := `
	cmp %o0,%o1
	ble le
	nop
	mov 1,%o2       ! greater
	retl
	nop
le:
	mov 2,%o2
	retl
	nop
`
	p, err := Assemble(src, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(a, b int32) uint32 {
		m := NewMachine(p)
		m.SetReg(O0, uint32(a))
		m.SetReg(O0+1, uint32(b))
		if err := m.Run(1000); err != nil {
			t.Fatal(err)
		}
		return m.Reg(O0 + 2)
	}
	if run(5, 3) != 1 {
		t.Error("5 > 3 should take the greater path")
	}
	if run(3, 5) != 2 || run(4, 4) != 2 {
		t.Error("<= should take the le path")
	}
	if run(-7, -2) != 2 {
		t.Error("signed comparison: -7 <= -2")
	}
}

// TestInterpCallWindows: a save/restore callee sees its arguments in %i
// registers and the caller's locals survive the call.
func TestInterpCallWindows(t *testing.T) {
	src := `
main:
	save %sp,-96,%sp
	mov 41,%l3
	mov 20,%o0
	call dbl
	mov 11,%o1
	add %o0,%l3,%i0   ! result + preserved local
	ret
	restore
dbl:
	save %sp,-96,%sp
	add %i0,%i0,%l0   ! 2*a
	add %l0,%i1,%i0   ! + b
	ret
	restore
`
	p, err := Assemble(src, AsmOptions{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	// dbl(20, 11) = 51; + 41 = 92, returned in the caller's %i0... which
	// after main's restore is the entry window's %o0.
	if got := m.Reg(O0); got != 92 {
		t.Errorf("result = %d, want 92", got)
	}
}

// TestInterpAnnulledBranch: ba,a skips the delay slot; be,a executes it
// only when taken.
func TestInterpAnnulledBranch(t *testing.T) {
	src := `
	clr %o2
	ba,a over
	mov 99,%o2        ! must NOT execute
over:
	retl
	nop
`
	p, _ := Assemble(src, AsmOptions{})
	m := NewMachine(p)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.Reg(O0+2) != 0 {
		t.Error("ba,a executed its delay slot")
	}

	src2 := `
	cmp %o0,%g0
	be,a over
	mov 7,%o2         ! executes only if taken
	mov 3,%o2
over:
	retl
	nop
`
	p2, _ := Assemble(src2, AsmOptions{})
	run := func(o0 uint32) uint32 {
		m := NewMachine(p2)
		m.SetReg(O0, o0)
		if err := m.Run(100); err != nil {
			t.Fatal(err)
		}
		return m.Reg(O0 + 2)
	}
	if run(0) != 7 {
		t.Error("taken be,a should execute the delay slot")
	}
	if run(1) != 3 {
		t.Error("untaken be,a must skip the delay slot")
	}
}

// TestInterpMemOps: byte/half loads and stores, sign extension.
func TestInterpMemOps(t *testing.T) {
	src := `
	st %o1,[%o0]
	ldsb [%o0],%o2     ! sign-extended top byte
	ldub [%o0],%o3
	ldsh [%o0],%o4
	lduh [%o0],%o5
	retl
	nop
`
	p, _ := Assemble(src, AsmOptions{})
	m := NewMachine(p)
	m.SetReg(O0, 0x50000)
	m.SetReg(O0+1, 0xFFEE1234)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if int32(m.Reg(O0+2)) != -1 {
		t.Errorf("ldsb = %#x, want -1", m.Reg(O0+2))
	}
	if m.Reg(O0+3) != 0xFF {
		t.Errorf("ldub = %#x", m.Reg(O0+3))
	}
	if int32(m.Reg(O0+4)) != -18 { // 0xFFEE sign-extended
		t.Errorf("ldsh = %#x", m.Reg(O0+4))
	}
	if m.Reg(O0+5) != 0xFFEE {
		t.Errorf("lduh = %#x", m.Reg(O0+5))
	}
}

// TestInterpFaults: runaway loops and bad jumps are reported.
func TestInterpFaults(t *testing.T) {
	p, _ := Assemble("loop: ba loop\nnop", AsmOptions{})
	m := NewMachine(p)
	if err := m.Run(100); err == nil {
		t.Error("runaway loop should not terminate")
	}

	p2, err := Assemble("jmpl %o0,%g0,%g0\nnop\nretl\nnop", AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewMachine(p2)
	m2.SetReg(O0, 0xDEAD)
	if err := m2.Run(100); err == nil {
		t.Error("jump to unmapped address should fault")
	}
}
