package sparc

import (
	"fmt"

	"mcsafe/internal/rtl"
)

// Machine is a concrete SPARC V8 interpreter over the decoded
// instruction stream. It exists for differential testing: the abstract
// operational semantics of the checker (typestate propagation, wlp) are
// validated against real executions on random inputs.
//
// The instruction semantics are not written here: Step executes the
// lifted RTL effect sequence of each instruction (see lift.go), so the
// interpreter, typestate propagation, and WLP generation all consume
// the same per-opcode definition. Only the machine-state plumbing —
// register windows, sparse memory, delayed control transfer, external
// calls — lives in this file.
//
// The model is deliberately small: 32-bit integer registers with eight
// register windows, a word-addressed sparse memory, and the integer
// condition codes. Traps, floating point, and alternate address spaces
// are out of scope, exactly as they are for the checker.
type Machine struct {
	prog *Program

	// windows[w][r] for windowed registers; globals shared.
	globals [8]uint32
	windows [][16]uint32 // %o0-%o7 then %l0-%l7 per window
	cwp     int

	// lifted caches the RTL effect sequence per instruction index.
	lifted [][]rtl.Effect

	// Mem is sparse byte memory.
	Mem map[uint32]byte

	// Condition codes.
	N, Z, V, C bool

	// PC is the current instruction index; npc the next (for delayed
	// control transfers).
	pc, npc int

	// Steps executed (guard against runaway loops in tests).
	Steps int

	// pendingHost carries an external call across its delay slot.
	pendingHost string

	// OnMem, when set, observes every data-memory access (differential
	// tests use it to assert memory safety of checker-approved code).
	OnMem func(addr uint32, size int, write bool)

	// HostCall, when set, simulates calls to external (trusted host)
	// symbols: it runs after the delay slot, and control resumes at the
	// call's return point. When nil, external calls return 0 in %o0.
	HostCall func(name string, m *Machine)
}

// NewMachine creates an interpreter for a program with 32 register
// windows' worth of space (enough for the checker's non-recursive
// programs).
func NewMachine(p *Program) *Machine {
	m := &Machine{
		prog:    p,
		windows: make([][16]uint32, 32),
		cwp:     16, // middle of the window stack
		Mem:     make(map[uint32]byte),
		pc:      p.Entry,
		npc:     p.Entry + 1,
	}
	return m
}

// regIndex resolves a register to its storage.
func (m *Machine) get(r Reg) uint32 {
	switch {
	case r == G0:
		return 0
	case r < 8:
		return m.globals[r]
	case r < 24: // %o, %l of current window
		return m.windows[m.cwp][r-8]
	default: // %i = %o of previous window
		return m.windows[m.cwp+1][r-24]
	}
}

func (m *Machine) set(r Reg, v uint32) {
	switch {
	case r == G0:
	case r < 8:
		m.globals[r] = v
	case r < 24:
		m.windows[m.cwp][r-8] = v
	default:
		m.windows[m.cwp+1][r-24] = v
	}
}

// SetReg sets a register (for test setup).
func (m *Machine) SetReg(r Reg, v uint32) { m.set(r, v) }

// Reg reads a register (for test assertions).
func (m *Machine) Reg(r Reg) uint32 { return m.get(r) }

// Store32/Load32 access the sparse memory.
func (m *Machine) Store32(addr uint32, v uint32) {
	m.Mem[addr] = byte(v >> 24)
	m.Mem[addr+1] = byte(v >> 16)
	m.Mem[addr+2] = byte(v >> 8)
	m.Mem[addr+3] = byte(v)
}

func (m *Machine) Load32(addr uint32) uint32 {
	return uint32(m.Mem[addr])<<24 | uint32(m.Mem[addr+1])<<16 |
		uint32(m.Mem[addr+2])<<8 | uint32(m.Mem[addr+3])
}

// loadRaw reads size bytes big-endian (unextended).
func (m *Machine) loadRaw(addr uint32, size int) uint32 {
	switch size {
	case 1:
		return uint32(m.Mem[addr])
	case 2:
		return uint32(m.Mem[addr])<<8 | uint32(m.Mem[addr+1])
	}
	return m.Load32(addr)
}

// storeRaw writes the low size bytes of v big-endian.
func (m *Machine) storeRaw(addr uint32, size int, v uint32) {
	switch size {
	case 1:
		m.Mem[addr] = byte(v)
	case 2:
		m.Mem[addr] = byte(v >> 8)
		m.Mem[addr+1] = byte(v)
	default:
		m.Store32(addr, v)
	}
}

// ErrExit is returned by Run when the program returns from its entry
// procedure (a return with no caller).
var ErrExit = fmt.Errorf("sparc: program exited")

// exitPC is the sentinel "return address" of the entry frame.
const exitPC = -1

// liftedAt returns the cached RTL for the instruction at index idx.
func (m *Machine) liftedAt(idx int) []rtl.Effect {
	if m.lifted == nil {
		m.lifted = make([][]rtl.Effect, len(m.prog.Insns))
	}
	if m.lifted[idx] == nil {
		m.lifted[idx] = Lift(m.prog.Insns[idx])
	}
	return m.lifted[idx]
}

// Step executes one instruction by interpreting its RTL effects. It
// returns ErrExit on a return past the entry frame, or an error for
// faults (out-of-range PC, window underflow, division by zero).
func (m *Machine) Step() error {
	if m.pc == exitPC {
		return ErrExit
	}
	if m.pc < 0 || m.pc >= len(m.prog.Insns) {
		return fmt.Errorf("sparc: PC %d out of range", m.pc)
	}
	m.Steps++
	i := m.prog.Insns[m.pc]
	effs := m.liftedAt(m.pc)
	if effs == nil {
		return fmt.Errorf("sparc: unsupported op %v", i.Op)
	}
	pc, npc := m.npc, m.npc+1
	pcAddr := m.prog.AddrOf(m.pc)
	eval := func(e rtl.Expr) (uint32, error) {
		v, err := rtl.EvalExpr(e, func(r rtl.Reg) uint32 { return m.get(Reg(r)) }, pcAddr)
		if err != nil {
			return 0, fmt.Errorf("sparc: %v", err)
		}
		return v, nil
	}

	// Phase 1: evaluate all sources in the pre-state, record the
	// pending writes, and resolve control. No machine state changes
	// until every effect has evaluated without fault.
	type regWrite struct {
		dst Reg
		val uint32
	}
	var writes []regWrite
	var stores []struct {
		addr uint32
		size int
		val  uint32
	}
	var ccSet bool
	var ccN, ccZ, ccV, ccC bool
	winShift := 0
	isCall := false
	pendingHost := ""

	for _, eff := range effs {
		switch x := eff.(type) {
		case rtl.Assign:
			v, err := eval(x.Src)
			if err != nil {
				return err
			}
			writes = append(writes, regWrite{Reg(x.Dst), v})

		case rtl.Load:
			addr, err := eval(x.Addr)
			if err != nil {
				return err
			}
			if m.OnMem != nil {
				m.OnMem(addr, x.Size, false)
			}
			raw := m.loadRaw(addr, x.Size)
			writes = append(writes, regWrite{Reg(x.Dst), rtl.Extend(raw, x.Size, x.Signed)})

		case rtl.Store:
			addr, err := eval(x.Addr)
			if err != nil {
				return err
			}
			v, err := eval(x.Src)
			if err != nil {
				return err
			}
			if m.OnMem != nil {
				m.OnMem(addr, x.Size, true)
			}
			stores = append(stores, struct {
				addr uint32
				size int
				val  uint32
			}{addr, x.Size, v})

		case rtl.SetCC:
			a, err := eval(x.A)
			if err != nil {
				return err
			}
			b, err := eval(x.B)
			if err != nil {
				return err
			}
			n, z, v, c, err := rtl.EvalCC(x.Op, a, b)
			if err != nil {
				return fmt.Errorf("sparc: %v", err)
			}
			ccSet, ccN, ccZ, ccV, ccC = true, n, z, v, c

		case rtl.SaveWindow:
			if m.cwp == 0 {
				return fmt.Errorf("sparc: window overflow")
			}
			winShift = -1

		case rtl.RestoreWindow:
			if m.cwp+2 >= len(m.windows) {
				return fmt.Errorf("sparc: window underflow")
			}
			winShift = +1

		case rtl.Branch:
			taken := rtl.EvalCond(x.Cond, m.N, m.Z, m.V, m.C)
			target := m.pc + int(x.Disp)
			if taken {
				npc = target
				if x.Cond == rtl.CondAlways && x.Annul {
					pc, npc = target, target+1
				}
			} else if x.Annul {
				pc, npc = m.npc+1, m.npc+2
			}

		case rtl.Call:
			isCall = true
			tgt := m.pc + int(x.Disp)
			if tgt >= len(m.prog.Insns) || tgt < 0 {
				// External (trusted host) call: the delay slot executes,
				// the host function runs, and control resumes after it.
				pendingHost = m.prog.LabelAt(tgt)
				npc = m.pc + 2
			} else {
				npc = tgt
			}

		case rtl.Jump:
			ret, err := eval(x.Target)
			if err != nil {
				return err
			}
			idx, ok := m.prog.IndexOf(ret)
			switch {
			case ok:
				npc = idx
			case ret == 8 || ret == 0:
				// Return past the entry frame: the delay slot still
				// executes, then the program exits.
				npc = exitPC
			default:
				return fmt.Errorf("sparc: jmpl to unmapped address 0x%x", ret)
			}

		case rtl.Unsupported:
			return fmt.Errorf("sparc: %s", x.Msg)

		default:
			return fmt.Errorf("sparc: unknown rtl effect %T", eff)
		}
	}

	// Phase 2: commit. The window shifts first, so an Assign with
	// Win = ±1 lands in the window the instruction entered.
	m.cwp += winShift
	for _, w := range writes {
		m.set(w.dst, w.val)
	}
	for _, s := range stores {
		m.storeRaw(s.addr, s.size, s.val)
	}
	if ccSet {
		m.N, m.Z, m.V, m.C = ccN, ccZ, ccV, ccC
	}
	if pendingHost != "" {
		m.pendingHost = pendingHost
	}

	m.pc, m.npc = pc, npc
	if m.pendingHost != "" && m.pc != exitPC && !isCall {
		// We just executed the delay slot of an external call.
		name := m.pendingHost
		m.pendingHost = ""
		if m.HostCall != nil {
			m.HostCall(name, m)
		} else {
			m.set(O0, 0)
		}
	}
	return nil
}

// Run executes until exit, error, or the step bound.
func (m *Machine) Run(maxSteps int) error {
	for n := 0; n < maxSteps; n++ {
		if err := m.Step(); err != nil {
			if err == ErrExit {
				return nil
			}
			return err
		}
	}
	return fmt.Errorf("sparc: did not terminate within %d steps", maxSteps)
}

// PC exposes the current instruction index (tests).
func (m *Machine) PC() int { return m.pc }
