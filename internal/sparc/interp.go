package sparc

import "fmt"

// Machine is a concrete SPARC V8 interpreter over the decoded
// instruction stream. It exists for differential testing: the abstract
// operational semantics of the checker (typestate propagation, wlp) are
// validated against real executions on random inputs.
//
// The model is deliberately small: 32-bit integer registers with eight
// register windows, a word-addressed sparse memory, and the integer
// condition codes. Traps, floating point, and alternate address spaces
// are out of scope, exactly as they are for the checker.
type Machine struct {
	prog *Program

	// windows[w][r] for windowed registers; globals shared.
	globals [8]uint32
	windows [][16]uint32 // %o0-%o7 then %l0-%l7 per window
	cwp     int

	// Mem is sparse byte memory.
	Mem map[uint32]byte

	// Condition codes.
	N, Z, V, C bool

	// PC is the current instruction index; npc the next (for delayed
	// control transfers).
	pc, npc int

	// Steps executed (guard against runaway loops in tests).
	Steps int

	// pendingHost carries an external call across its delay slot.
	pendingHost string

	// OnMem, when set, observes every data-memory access (differential
	// tests use it to assert memory safety of checker-approved code).
	OnMem func(addr uint32, size int, write bool)

	// HostCall, when set, simulates calls to external (trusted host)
	// symbols: it runs after the delay slot, and control resumes at the
	// call's return point. When nil, external calls return 0 in %o0.
	HostCall func(name string, m *Machine)
}

// NewMachine creates an interpreter for a program with 32 register
// windows' worth of space (enough for the checker's non-recursive
// programs).
func NewMachine(p *Program) *Machine {
	m := &Machine{
		prog:    p,
		windows: make([][16]uint32, 32),
		cwp:     16, // middle of the window stack
		Mem:     make(map[uint32]byte),
		pc:      p.Entry,
		npc:     p.Entry + 1,
	}
	return m
}

// regIndex resolves a register to its storage.
func (m *Machine) get(r Reg) uint32 {
	switch {
	case r == G0:
		return 0
	case r < 8:
		return m.globals[r]
	case r < 24: // %o, %l of current window
		return m.windows[m.cwp][r-8]
	default: // %i = %o of previous window
		return m.windows[m.cwp+1][r-24]
	}
}

func (m *Machine) set(r Reg, v uint32) {
	switch {
	case r == G0:
	case r < 8:
		m.globals[r] = v
	case r < 24:
		m.windows[m.cwp][r-8] = v
	default:
		m.windows[m.cwp+1][r-24] = v
	}
}

// SetReg sets a register (for test setup).
func (m *Machine) SetReg(r Reg, v uint32) { m.set(r, v) }

// Reg reads a register (for test assertions).
func (m *Machine) Reg(r Reg) uint32 { return m.get(r) }

// Store32/Load32 access the sparse memory.
func (m *Machine) Store32(addr uint32, v uint32) {
	m.Mem[addr] = byte(v >> 24)
	m.Mem[addr+1] = byte(v >> 16)
	m.Mem[addr+2] = byte(v >> 8)
	m.Mem[addr+3] = byte(v)
}

func (m *Machine) Load32(addr uint32) uint32 {
	return uint32(m.Mem[addr])<<24 | uint32(m.Mem[addr+1])<<16 |
		uint32(m.Mem[addr+2])<<8 | uint32(m.Mem[addr+3])
}

// ErrExit is returned by Run when the program returns from its entry
// procedure (a return with no caller).
var ErrExit = fmt.Errorf("sparc: program exited")

// operand2 evaluates the second operand.
func (m *Machine) operand2(i Insn) uint32 {
	if i.Imm {
		return uint32(i.SImm)
	}
	return m.get(i.Rs2)
}

func (m *Machine) setCC(res uint32, v, c bool) {
	m.N = res&0x80000000 != 0
	m.Z = res == 0
	m.V = v
	m.C = c
}

// cond evaluates a branch condition against the current codes.
func (m *Machine) cond(c Cond) bool {
	switch c {
	case CondA:
		return true
	case CondN:
		return false
	case CondE:
		return m.Z
	case CondNE:
		return !m.Z
	case CondL:
		return m.N != m.V
	case CondGE:
		return m.N == m.V
	case CondLE:
		return m.Z || m.N != m.V
	case CondG:
		return !m.Z && m.N == m.V
	case CondCS:
		return m.C
	case CondCC:
		return !m.C
	case CondLEU:
		return m.C || m.Z
	case CondGU:
		return !m.C && !m.Z
	case CondNEG:
		return m.N
	case CondPOS:
		return !m.N
	case CondVS:
		return m.V
	case CondVC:
		return !m.V
	}
	return false
}

// exitPC is the sentinel "return address" of the entry frame.
const exitPC = -1

// Step executes one instruction. It returns ErrExit on a return past the
// entry frame, or an error for faults (out-of-range PC, window
// underflow).
func (m *Machine) Step() error {
	if m.pc == exitPC {
		return ErrExit
	}
	if m.pc < 0 || m.pc >= len(m.prog.Insns) {
		return fmt.Errorf("sparc: PC %d out of range", m.pc)
	}
	m.Steps++
	i := m.prog.Insns[m.pc]
	pc, npc := m.npc, m.npc+1

	switch {
	case i.Op == OpSethi:
		m.set(i.Rd, uint32(i.SImm))

	case i.Op == OpBranch:
		taken := m.cond(i.Cond)
		target := m.pc + int(i.Disp)
		if taken {
			npc = target
			if i.Cond == CondA && i.Annul {
				pc, npc = target, target+1
			}
		} else if i.Annul {
			pc, npc = m.npc+1, m.npc+2
		}

	case i.Op == OpCall:
		m.set(O7, m.prog.AddrOf(m.pc))
		tgt := m.pc + int(i.Disp)
		if tgt >= len(m.prog.Insns) || tgt < 0 {
			// External (trusted host) call: the delay slot executes,
			// the host function runs, and control resumes after it.
			name := m.prog.LabelAt(tgt)
			m.pendingHost = name
			npc = m.pc + 2
		} else {
			npc = tgt
		}

	case i.Op == OpJmpl:
		ret := m.get(i.Rs1) + m.operand2(i)
		m.set(i.Rd, m.prog.AddrOf(m.pc))
		idx, ok := m.prog.IndexOf(ret)
		switch {
		case ok:
			npc = idx
		case ret == 8 || ret == 0:
			// Return past the entry frame: the delay slot still
			// executes, then the program exits.
			npc = exitPC
		default:
			return fmt.Errorf("sparc: jmpl to unmapped address 0x%x", ret)
		}

	case i.Op == OpSave:
		// save decrements CWP: the new window's %i registers overlap
		// the caller's %o registers (windows[cwp+1] after decrement).
		v := m.get(i.Rs1) + m.operand2(i)
		if m.cwp == 0 {
			return fmt.Errorf("sparc: window overflow")
		}
		m.cwp--
		m.set(i.Rd, v)

	case i.Op == OpRestore:
		v := m.get(i.Rs1) + m.operand2(i)
		if m.cwp+2 >= len(m.windows) {
			return fmt.Errorf("sparc: window underflow")
		}
		m.cwp++
		m.set(i.Rd, v)

	case i.IsLoad():
		addr := m.get(i.Rs1) + m.operand2(i)
		if m.OnMem != nil {
			m.OnMem(addr, i.MemSize(), false)
		}
		switch i.Op {
		case OpLd:
			m.set(i.Rd, m.Load32(addr))
		case OpLdub:
			m.set(i.Rd, uint32(m.Mem[addr]))
		case OpLdsb:
			m.set(i.Rd, uint32(int32(int8(m.Mem[addr]))))
		case OpLduh:
			m.set(i.Rd, uint32(m.Mem[addr])<<8|uint32(m.Mem[addr+1]))
		case OpLdsh:
			m.set(i.Rd, uint32(int32(int16(uint16(m.Mem[addr])<<8|uint16(m.Mem[addr+1])))))
		default:
			return fmt.Errorf("sparc: unsupported load %v", i.Op)
		}

	case i.IsStore():
		addr := m.get(i.Rs1) + m.operand2(i)
		if m.OnMem != nil {
			m.OnMem(addr, i.MemSize(), true)
		}
		v := m.get(i.Rd)
		switch i.Op {
		case OpSt:
			m.Store32(addr, v)
		case OpStb:
			m.Mem[addr] = byte(v)
		case OpSth:
			m.Mem[addr] = byte(v >> 8)
			m.Mem[addr+1] = byte(v)
		default:
			return fmt.Errorf("sparc: unsupported store %v", i.Op)
		}

	default:
		a := m.get(i.Rs1)
		b := m.operand2(i)
		var res uint32
		switch i.Op {
		case OpAdd, OpAddcc:
			res = a + b
			if i.Op == OpAddcc {
				v := (a&0x80000000 == b&0x80000000) && (res&0x80000000 != a&0x80000000)
				c := uint64(a)+uint64(b) > 0xffffffff
				m.setCC(res, v, c)
			}
		case OpSub, OpSubcc:
			res = a - b
			if i.Op == OpSubcc {
				v := (a&0x80000000 != b&0x80000000) && (res&0x80000000 == b&0x80000000)
				c := uint64(a) < uint64(b)
				m.setCC(res, v, c)
			}
		case OpAnd, OpAndcc:
			res = a & b
			if i.Op == OpAndcc {
				m.setCC(res, false, false)
			}
		case OpAndn:
			res = a &^ b
		case OpOr, OpOrcc:
			res = a | b
			if i.Op == OpOrcc {
				m.setCC(res, false, false)
			}
		case OpOrn:
			res = a | ^b
		case OpXor, OpXorcc:
			res = a ^ b
			if i.Op == OpXorcc {
				m.setCC(res, false, false)
			}
		case OpXnor:
			res = ^(a ^ b)
		case OpSll:
			res = a << (b & 31)
		case OpSrl:
			res = a >> (b & 31)
		case OpSra:
			res = uint32(int32(a) >> (b & 31))
		case OpUMul, OpSMul:
			res = a * b
		case OpUDiv:
			if b == 0 {
				return fmt.Errorf("sparc: division by zero")
			}
			res = a / b
		case OpSDiv:
			if b == 0 {
				return fmt.Errorf("sparc: division by zero")
			}
			res = uint32(int32(a) / int32(b))
		default:
			return fmt.Errorf("sparc: unsupported op %v", i.Op)
		}
		m.set(i.Rd, res)
	}

	m.pc, m.npc = pc, npc
	if m.pendingHost != "" && m.pc != exitPC {
		// We just executed the delay slot of an external call.
		name := m.pendingHost
		m.pendingHost = ""
		if i.Op != OpCall { // fires on the instruction AFTER the call
			if m.HostCall != nil {
				m.HostCall(name, m)
			} else {
				m.set(O0, 0)
			}
		} else {
			m.pendingHost = name // delay slot not yet executed
		}
	}
	return nil
}

// Run executes until exit, error, or the step bound.
func (m *Machine) Run(maxSteps int) error {
	for n := 0; n < maxSteps; n++ {
		if err := m.Step(); err != nil {
			if err == ErrExit {
				return nil
			}
			return err
		}
	}
	return fmt.Errorf("sparc: did not terminate within %d steps", maxSteps)
}

// PC exposes the current instruction index (tests).
func (m *Machine) PC() int { return m.pc }
