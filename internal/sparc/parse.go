package sparc

import (
	"fmt"
	"strconv"
	"strings"
)

// item is a parsed source element: zero or more labels followed by an
// expanded instruction.
type parsedInsn struct {
	insn   Insn
	labels []string
}

// parseError decorates errors with the source line.
func parseError(line int, format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
}

var branchConds = map[string]Cond{
	"ba": CondA, "b": CondA, "bn": CondN,
	"be": CondE, "bz": CondE, "bne": CondNE, "bnz": CondNE,
	"bl": CondL, "ble": CondLE, "bg": CondG, "bge": CondGE,
	"blu": CondCS, "bcs": CondCS, "bleu": CondLEU,
	"bgu": CondGU, "bgeu": CondCC, "bcc": CondCC,
	"bpos": CondPOS, "bneg": CondNEG, "bvs": CondVS, "bvc": CondVC,
}

var arithMnemonics = map[string]Op{
	"add": OpAdd, "addcc": OpAddcc, "sub": OpSub, "subcc": OpSubcc,
	"and": OpAnd, "andcc": OpAndcc, "andn": OpAndn,
	"or": OpOr, "orcc": OpOrcc, "orn": OpOrn,
	"xor": OpXor, "xorcc": OpXorcc, "xnor": OpXnor,
	"sll": OpSll, "srl": OpSrl, "sra": OpSra,
	"umul": OpUMul, "smul": OpSMul, "udiv": OpUDiv, "sdiv": OpSDiv,
	"jmpl": OpJmpl, "save": OpSave, "restore": OpRestore,
}

var loadMnemonics = map[string]Op{
	"ld": OpLd, "ldub": OpLdub, "lduh": OpLduh, "ldsb": OpLdsb,
	"ldsh": OpLdsh, "ldd": OpLdd,
}

var storeMnemonics = map[string]Op{
	"st": OpSt, "stb": OpStb, "sth": OpSth, "std": OpStd,
}

// operand is a register or an immediate (possibly a %lo()/%hi() of a
// symbol resolved by the assembler's symbol table).
type operand struct {
	isImm bool
	reg   Reg
	imm   int32
}

func (p *parser) parseOperand(s string, line int) (operand, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "%") && !strings.HasPrefix(s, "%hi(") && !strings.HasPrefix(s, "%lo(") {
		r, err := ParseReg(s)
		if err != nil {
			return operand{}, parseError(line, "%v", err)
		}
		return operand{reg: r}, nil
	}
	v, err := p.parseImm(s, line)
	if err != nil {
		return operand{}, err
	}
	return operand{isImm: true, imm: v}, nil
}

func (p *parser) parseImm(s string, line int) (int32, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		v, err := p.symOrNum(s[4:len(s)-1], line)
		if err != nil {
			return 0, err
		}
		return int32(uint32(v) &^ 0x3ff), nil
	}
	if strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")") {
		v, err := p.symOrNum(s[4:len(s)-1], line)
		if err != nil {
			return 0, err
		}
		return int32(uint32(v) & 0x3ff), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, parseError(line, "bad immediate %q", s)
	}
	if v < -(1<<31) || v > 1<<32-1 {
		return 0, parseError(line, "immediate %d out of 32-bit range", v)
	}
	return int32(v), nil
}

func (p *parser) symOrNum(s string, line int) (int32, error) {
	s = strings.TrimSpace(s)
	if addr, ok := p.dataSyms[s]; ok {
		return int32(addr), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, parseError(line, "unknown symbol or bad number %q", s)
	}
	return int32(v), nil
}

// parseAddr parses a memory operand "[%reg]", "[%reg+imm]", "[%reg-imm]",
// or "[%reg+%reg]".
func (p *parser) parseAddr(s string, line int) (rs1 Reg, o operand, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, operand{}, parseError(line, "bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	// Find a top-level + or - separator (not the leading % of a register).
	sep := -1
	for idx := 1; idx < len(inner); idx++ {
		if inner[idx] == '+' || inner[idx] == '-' {
			sep = idx
			break
		}
	}
	if sep < 0 {
		r, err := ParseReg(inner)
		if err != nil {
			return 0, operand{}, parseError(line, "%v", err)
		}
		return r, operand{isImm: true, imm: 0}, nil
	}
	r, err := ParseReg(strings.TrimSpace(inner[:sep]))
	if err != nil {
		return 0, operand{}, parseError(line, "%v", err)
	}
	rest := strings.TrimSpace(inner[sep+1:])
	op2, err := p.parseOperand(rest, line)
	if err != nil {
		return 0, operand{}, err
	}
	if inner[sep] == '-' {
		if !op2.isImm {
			return 0, operand{}, parseError(line, "cannot subtract a register in address %q", s)
		}
		op2.imm = -op2.imm
	}
	return r, op2, nil
}

type parser struct {
	dataSyms map[string]uint32
}

// splitOperands splits on commas that are not inside parentheses or
// brackets.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func fmt3(op Op, rs1 Reg, o operand, rd Reg, line int) Insn {
	i := Insn{Op: op, Rs1: rs1, Rd: rd, Line: line}
	if o.isImm {
		i.Imm = true
		i.SImm = o.imm
	} else {
		i.Rs2 = o.reg
	}
	return i
}

// parseLine parses one source line into zero or more instructions,
// expanding synthetic instructions.
func (p *parser) parseLine(text string, line int) ([]string, []Insn, error) {
	// Strip comments.
	if idx := strings.IndexAny(text, "!#"); idx >= 0 {
		text = text[:idx]
	}
	text = strings.TrimSpace(text)

	var labels []string
	for {
		idx := strings.Index(text, ":")
		if idx < 0 {
			break
		}
		lbl := strings.TrimSpace(text[:idx])
		if lbl == "" || strings.ContainsAny(lbl, " \t[](),") {
			break
		}
		labels = append(labels, lbl)
		text = strings.TrimSpace(text[idx+1:])
	}
	if text == "" {
		return labels, nil, nil
	}

	fields := strings.SplitN(text, " ", 2)
	mnem := strings.ToLower(strings.TrimSpace(fields[0]))
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	args := []string{}
	if rest != "" {
		args = splitOperands(rest)
	}

	need := func(n int) error {
		if len(args) != n {
			return parseError(line, "%s expects %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}

	// Branches (with optional ,a annul suffix).
	base := mnem
	annul := false
	if strings.HasSuffix(base, ",a") {
		base = strings.TrimSuffix(base, ",a")
		annul = true
	}
	if cond, ok := branchConds[base]; ok {
		if err := need(1); err != nil {
			return nil, nil, err
		}
		return labels, []Insn{{Op: OpBranch, Cond: cond, Annul: annul, Target: args[0], Line: line}}, nil
	}

	switch mnem {
	case "nop":
		return labels, []Insn{{Op: OpSethi, Rd: G0, Imm: true, SImm: 0, Line: line}}, nil

	case "call":
		if len(args) < 1 {
			return nil, nil, parseError(line, "call expects a target")
		}
		return labels, []Insn{{Op: OpCall, Target: args[0], Line: line}}, nil

	case "retl":
		return labels, []Insn{{Op: OpJmpl, Rs1: O7, Imm: true, SImm: 8, Rd: G0, Line: line}}, nil
	case "ret":
		return labels, []Insn{{Op: OpJmpl, Rs1: I7, Imm: true, SImm: 8, Rd: G0, Line: line}}, nil

	case "mov":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		src, err := p.parseOperand(args[0], line)
		if err != nil {
			return nil, nil, err
		}
		rd, err := ParseReg(args[1])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		return labels, []Insn{fmt3(OpOr, G0, src, rd, line)}, nil

	case "clr":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		if strings.HasPrefix(args[0], "[") {
			rs1, o, err := p.parseAddr(args[0], line)
			if err != nil {
				return nil, nil, err
			}
			i := fmt3(OpSt, rs1, o, G0, line)
			return labels, []Insn{i}, nil
		}
		rd, err := ParseReg(args[0])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		return labels, []Insn{fmt3(OpOr, G0, operand{isImm: true}, rd, line)}, nil

	case "cmp":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		rs1, err := ParseReg(args[0])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		o, err := p.parseOperand(args[1], line)
		if err != nil {
			return nil, nil, err
		}
		return labels, []Insn{fmt3(OpSubcc, rs1, o, G0, line)}, nil

	case "tst":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		rs, err := ParseReg(args[0])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		return labels, []Insn{fmt3(OpOrcc, G0, operand{reg: rs}, G0, line)}, nil

	case "inc", "dec":
		op := OpAdd
		if mnem == "dec" {
			op = OpSub
		}
		var amt int32 = 1
		var rdArg string
		switch len(args) {
		case 1:
			rdArg = args[0]
		case 2:
			v, err := p.parseImm(args[0], line)
			if err != nil {
				return nil, nil, err
			}
			amt, rdArg = v, args[1]
		default:
			return nil, nil, parseError(line, "%s expects 1 or 2 operands", mnem)
		}
		rd, err := ParseReg(rdArg)
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		return labels, []Insn{fmt3(op, rd, operand{isImm: true, imm: amt}, rd, line)}, nil

	case "neg":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		rd, err := ParseReg(args[0])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		return labels, []Insn{fmt3(OpSub, G0, operand{reg: rd}, rd, line)}, nil

	case "not":
		if err := need(1); err != nil {
			return nil, nil, err
		}
		rd, err := ParseReg(args[0])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		return labels, []Insn{fmt3(OpXnor, rd, operand{reg: G0}, rd, line)}, nil

	case "set":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		v, err := p.symOrNum(args[0], line)
		if err != nil {
			return nil, nil, err
		}
		rd, err := ParseReg(args[1])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		if v >= -4096 && v <= 4095 {
			return labels, []Insn{fmt3(OpOr, G0, operand{isImm: true, imm: v}, rd, line)}, nil
		}
		hi := Insn{Op: OpSethi, Rd: rd, Imm: true, SImm: int32(uint32(v) &^ 0x3ff), Line: line}
		lo := int32(uint32(v) & 0x3ff)
		if lo == 0 {
			return labels, []Insn{hi}, nil
		}
		return labels, []Insn{hi, fmt3(OpOr, rd, operand{isImm: true, imm: lo}, rd, line)}, nil

	case "sethi":
		if err := need(2); err != nil {
			return nil, nil, err
		}
		v, err := p.parseImm(args[0], line)
		if err != nil {
			return nil, nil, err
		}
		rd, err := ParseReg(args[1])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		return labels, []Insn{{Op: OpSethi, Rd: rd, Imm: true, SImm: v, Line: line}}, nil

	case "restore":
		switch len(args) {
		case 0:
			return labels, []Insn{fmt3(OpRestore, G0, operand{reg: G0}, G0, line)}, nil
		case 3:
			// fall through to generic arith below
		default:
			return nil, nil, parseError(line, "restore expects 0 or 3 operands")
		}
	}

	if op, ok := loadMnemonics[mnem]; ok {
		if err := need(2); err != nil {
			return nil, nil, err
		}
		rs1, o, err := p.parseAddr(args[0], line)
		if err != nil {
			return nil, nil, err
		}
		rd, err := ParseReg(args[1])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		return labels, []Insn{fmt3(op, rs1, o, rd, line)}, nil
	}
	if op, ok := storeMnemonics[mnem]; ok {
		if err := need(2); err != nil {
			return nil, nil, err
		}
		rd, err := ParseReg(args[0])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		rs1, o, err := p.parseAddr(args[1], line)
		if err != nil {
			return nil, nil, err
		}
		return labels, []Insn{fmt3(op, rs1, o, rd, line)}, nil
	}
	if op, ok := arithMnemonics[mnem]; ok {
		if err := need(3); err != nil {
			return nil, nil, err
		}
		rs1, err := ParseReg(args[0])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		o, err := p.parseOperand(args[1], line)
		if err != nil {
			return nil, nil, err
		}
		rd, err := ParseReg(args[2])
		if err != nil {
			return nil, nil, parseError(line, "%v", err)
		}
		return labels, []Insn{fmt3(op, rs1, o, rd, line)}, nil
	}

	return nil, nil, parseError(line, "unknown mnemonic %q", mnem)
}
