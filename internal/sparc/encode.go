package sparc

import "fmt"

// SPARC V8 instruction formats:
//
//	Format 1 (op=1): call        | op(2) | disp30(30) |
//	Format 2 (op=0): sethi       | op | rd(5) | op2=100 | imm22 |
//	                 Bicc        | op | a(1) | cond(4) | op2=010 | disp22 |
//	Format 3 (op=2 arith, op=3 mem):
//	                 | op | rd(5) | op3(6) | rs1(5) | i(1) | asi(8)/simm13 |

var arithOp3 = map[Op]uint32{
	OpAdd: 0x00, OpAnd: 0x01, OpOr: 0x02, OpXor: 0x03,
	OpSub: 0x04, OpAndn: 0x05, OpOrn: 0x06, OpXnor: 0x07,
	OpUMul: 0x0a, OpSMul: 0x0b, OpUDiv: 0x0e, OpSDiv: 0x0f,
	OpAddcc: 0x10, OpAndcc: 0x11, OpOrcc: 0x12, OpXorcc: 0x13, OpSubcc: 0x14,
	OpSll: 0x25, OpSrl: 0x26, OpSra: 0x27,
	OpJmpl: 0x38, OpSave: 0x3c, OpRestore: 0x3d,
}

var memOp3 = map[Op]uint32{
	OpLd: 0x00, OpLdub: 0x01, OpLduh: 0x02, OpLdd: 0x03,
	OpSt: 0x04, OpStb: 0x05, OpSth: 0x06, OpStd: 0x07,
	OpLdsb: 0x09, OpLdsh: 0x0a,
}

var arithOp3Rev = reverse(arithOp3)
var memOp3Rev = reverse(memOp3)

func reverse(m map[Op]uint32) map[uint32]Op {
	r := make(map[uint32]Op, len(m))
	for op, code := range m {
		r[code] = op
	}
	return r
}

// Encode converts an instruction to its 32-bit machine word. Branch and
// call targets must already be resolved to word displacements.
func Encode(i Insn) (uint32, error) {
	switch {
	case i.Op == OpCall:
		return 1<<30 | (uint32(i.Disp) & 0x3fffffff), nil

	case i.Op == OpBranch:
		if i.Disp < -(1<<21) || i.Disp >= 1<<21 {
			return 0, fmt.Errorf("sparc: branch displacement %d out of range", i.Disp)
		}
		w := uint32(0)
		if i.Annul {
			w |= 1 << 29
		}
		w |= uint32(i.Cond&0xf) << 25
		w |= 0x2 << 22
		w |= uint32(i.Disp) & 0x3fffff
		return w, nil

	case i.Op == OpSethi:
		if i.SImm&0x3ff != 0 {
			return 0, fmt.Errorf("sparc: sethi immediate 0x%x has nonzero low bits", uint32(i.SImm))
		}
		return uint32(i.Rd)<<25 | 0x4<<22 | (uint32(i.SImm)>>10)&0x3fffff, nil
	}

	var op, op3 uint32
	if code, ok := arithOp3[i.Op]; ok {
		op, op3 = 2, code
	} else if code, ok := memOp3[i.Op]; ok {
		op, op3 = 3, code
	} else {
		return 0, fmt.Errorf("sparc: cannot encode op %v", i.Op)
	}
	w := op<<30 | uint32(i.Rd)<<25 | op3<<19 | uint32(i.Rs1)<<14
	if i.Imm {
		if i.SImm < -4096 || i.SImm > 4095 {
			return 0, fmt.Errorf("sparc: immediate %d out of simm13 range", i.SImm)
		}
		w |= 1 << 13
		w |= uint32(i.SImm) & 0x1fff
	} else {
		w |= uint32(i.Rs2)
	}
	return w, nil
}

// Decode converts a 32-bit machine word back into an instruction.
func Decode(w uint32) (Insn, error) {
	switch w >> 30 {
	case 1: // call
		disp := int32(w<<2) >> 2 // sign-extend 30 bits
		return Insn{Op: OpCall, Disp: disp}, nil

	case 0: // format 2
		op2 := (w >> 22) & 0x7
		switch op2 {
		case 0x4: // sethi
			return Insn{
				Op:   OpSethi,
				Rd:   Reg((w >> 25) & 0x1f),
				Imm:  true,
				SImm: int32((w & 0x3fffff) << 10),
			}, nil
		case 0x2: // Bicc
			disp := int32(w<<10) >> 10 // sign-extend 22 bits
			return Insn{
				Op:    OpBranch,
				Annul: w&(1<<29) != 0,
				Cond:  Cond((w >> 25) & 0xf),
				Disp:  disp,
			}, nil
		}
		return Insn{}, fmt.Errorf("sparc: cannot decode format-2 word 0x%08x (op2=%d)", w, op2)

	case 2, 3: // format 3
		op3 := (w >> 19) & 0x3f
		var op Op
		var ok bool
		if w>>30 == 2 {
			op, ok = arithOp3Rev[op3]
		} else {
			op, ok = memOp3Rev[op3]
		}
		if !ok {
			return Insn{}, fmt.Errorf("sparc: cannot decode word 0x%08x (op=%d op3=0x%02x)", w, w>>30, op3)
		}
		i := Insn{
			Op:  op,
			Rd:  Reg((w >> 25) & 0x1f),
			Rs1: Reg((w >> 14) & 0x1f),
		}
		if w&(1<<13) != 0 {
			i.Imm = true
			i.SImm = int32(w<<19) >> 19 // sign-extend 13 bits
		} else {
			i.Rs2 = Reg(w & 0x1f)
		}
		return i, nil
	}
	return Insn{}, fmt.Errorf("sparc: cannot decode word 0x%08x", w)
}

// DecodeAll decodes a sequence of machine words; the error identifies the
// offending word index.
func DecodeAll(words []uint32) ([]Insn, error) {
	insns := make([]Insn, len(words))
	for idx, w := range words {
		insn, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("word %d: %w", idx, err)
		}
		insns[idx] = insn
	}
	return insns, nil
}
