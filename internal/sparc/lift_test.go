package sparc

import (
	"math/rand"
	"testing"

	"mcsafe/internal/rtl"
)

// repInsn builds a representative instruction for an opcode, with fields
// populated the way the decoder would populate them.
func repInsn(op Op) Insn {
	switch op {
	case OpBranch:
		return Insn{Op: op, Cond: CondE, Disp: 2}
	case OpCall:
		return Insn{Op: op, Disp: 4}
	case OpSethi:
		return Insn{Op: op, Rd: 1, Imm: true, SImm: 0x2000}
	}
	return Insn{Op: op, Rd: 1, Rs1: 2, Rs2: 3}
}

// TestLiftExhaustive: every opcode the decoder can produce has exactly
// one lifter rule — Lift returns a non-empty effect sequence for all of
// them, and nil only for OpInvalid. This is the guard that keeps the
// decoder and the shared semantics in sync: adding an opcode without a
// lifting rule fails here, not at analysis time.
func TestLiftExhaustive(t *testing.T) {
	for op := OpInvalid + 1; op <= OpCall; op++ {
		i := repInsn(op)
		effs := Lift(i)
		if len(effs) == 0 {
			t.Errorf("op %v: no lifter rule (Lift returned %v)", op, effs)
		}
		// Both addressing modes must lift for format-3 instructions.
		if op != OpBranch && op != OpCall && op != OpSethi {
			imm := i
			imm.Imm, imm.SImm = true, 8
			if len(Lift(imm)) == 0 {
				t.Errorf("op %v (immediate form): no lifter rule", op)
			}
		}
	}
	if Lift(Insn{Op: OpInvalid}) != nil {
		t.Error("OpInvalid must not lift")
	}
}

// TestLiftDecodedWords: any word the decoder accepts must lift. Random
// words double as a probe that no decodable encoding falls through the
// lifter.
func TestLiftDecodedWords(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	decoded := 0
	for n := 0; n < 200000; n++ {
		w := rng.Uint32()
		i, err := Decode(w)
		if err != nil {
			continue
		}
		decoded++
		if len(Lift(i)) == 0 {
			t.Fatalf("word 0x%08x decodes to %+v but does not lift", w, i)
		}
	}
	if decoded == 0 {
		t.Fatal("no random words decoded; generator broken")
	}
}

// TestLiftShapes spot-checks the canonical effect sequences the
// consumers rely on.
func TestLiftShapes(t *testing.T) {
	// cc-setting arithmetic: assign first, then the cc update (the WLP
	// generator builds its substitution in that order).
	effs := Lift(Insn{Op: OpSubcc, Rd: 1, Rs1: 2, Rs2: 3})
	if len(effs) != 2 {
		t.Fatalf("subcc lifts to %d effects, want 2", len(effs))
	}
	if _, ok := effs[0].(rtl.Assign); !ok {
		t.Errorf("subcc effect 0 is %T, want Assign", effs[0])
	}
	if _, ok := effs[1].(rtl.SetCC); !ok {
		t.Errorf("subcc effect 1 is %T, want SetCC", effs[1])
	}

	// save: window shift first, then the Win=+1 assignment.
	effs = Lift(Insn{Op: OpSave, Rd: 14, Rs1: 14, Imm: true, SImm: -96})
	if len(effs) != 2 {
		t.Fatalf("save lifts to %d effects, want 2", len(effs))
	}
	if _, ok := effs[0].(rtl.SaveWindow); !ok {
		t.Errorf("save effect 0 is %T, want SaveWindow", effs[0])
	}
	a, ok := effs[1].(rtl.Assign)
	if !ok || a.Win != 1 {
		t.Errorf("save effect 1 is %T (win %d), want Assign with Win=+1", effs[1], a.Win)
	}

	// call: link write before the transfer, so the interpreter commits
	// %o7 from the pre-state PC.
	effs = Lift(Insn{Op: OpCall, Disp: 4})
	if len(effs) != 2 {
		t.Fatalf("call lifts to %d effects, want 2", len(effs))
	}
	link, ok := effs[0].(rtl.Assign)
	if !ok || link.Dst != rtl.Reg(O7) {
		t.Errorf("call effect 0 = %v, want link write to %%o7", effs[0])
	}

	// Immediate vs register operands stay distinguishable.
	or := Lift(Insn{Op: OpOr, Rd: 1, Rs1: 0, Imm: true, SImm: 5})
	bin := or[0].(rtl.Assign).Src.(rtl.Bin)
	if _, isConst := bin.B.(rtl.Const); !isConst {
		t.Errorf("or immediate operand lifted to %T, want Const", bin.B)
	}
	or = Lift(Insn{Op: OpOr, Rd: 1, Rs1: 0, Rs2: 0})
	bin = or[0].(rtl.Assign).Src.(rtl.Bin)
	if _, isReg := bin.B.(rtl.RegX); !isReg {
		t.Errorf("or register operand lifted to %T, want RegX (even for %%g0)", bin.B)
	}
}
