package sparc

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseReg(t *testing.T) {
	cases := map[string]Reg{
		"%g0": 0, "%g7": 7, "%o0": 8, "%o7": 15,
		"%l0": 16, "%l7": 23, "%i0": 24, "%i7": 31,
		"%sp": 14, "%fp": 30,
	}
	for s, want := range cases {
		got, err := ParseReg(s)
		if err != nil || got != want {
			t.Errorf("ParseReg(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, bad := range []string{"%x0", "%o8", "o0", "%o", "%sp1"} {
		if _, err := ParseReg(bad); err == nil {
			t.Errorf("ParseReg(%q) should fail", bad)
		}
	}
}

func TestRegString(t *testing.T) {
	if SP.String() != "%sp" || FP.String() != "%fp" {
		t.Error("sp/fp aliases wrong")
	}
	if Reg(9).String() != "%o1" || Reg(17).String() != "%l1" || Reg(25).String() != "%i1" {
		t.Error("bank naming wrong")
	}
}

func TestRegBanks(t *testing.T) {
	if !G0.IsGlobal() || !O0.IsOut() || !L0.IsLocal() || !I0.IsIn() {
		t.Error("bank predicates wrong")
	}
	if SP.IsGlobal() || !SP.IsOut() {
		t.Error("sp should be an out register")
	}
}

// Figure 1 of the paper: summing the elements of an integer array.
const fig1Source = `
1:  mov %o0,%o2      ! move %o0 into %o2
2:  clr %o0          ! set %o0 to zero
3:  cmp %o0,%o1      ! compare %o0 and %o1
4:  bge 12           ! branch to 12 if %o0 >= %o1
5:  clr %g3          ! set %g3 to zero
6:  sll %g3,2,%g2    ! %g2 = 4 x %g3
7:  ld [%o2+%g2],%g2 ! load from address %o2+%g2
8:  inc %g3          ! %g3 = %g3 + 1
9:  cmp %g3,%o1      ! compare %g3 and %o1
10: bl 6             ! branch to 6 if %g3 < %o1
11: add %o0,%g2,%o0  ! %o0 = %o0 + %g2
12: retl
13: nop
`

func assembleFig1(t *testing.T) *Program {
	t.Helper()
	p, err := Assemble(fig1Source, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAssembleFig1(t *testing.T) {
	p := assembleFig1(t)
	if len(p.Insns) != 13 {
		t.Fatalf("expected 13 instructions, got %d", len(p.Insns))
	}
	// Instruction 0 is mov expanded to or %g0,%o0,%o2.
	i0 := p.Insns[0]
	if i0.Op != OpOr || i0.Rs1 != G0 || i0.Imm || i0.Rs2 != O0 || i0.Rd != 10 {
		t.Errorf("insn 0 = %v", i0)
	}
	// Instruction 3 is bge with displacement to label "12" (index 11).
	i3 := p.Insns[3]
	if i3.Op != OpBranch || i3.Cond != CondGE || i3.Disp != 8 {
		t.Errorf("insn 3 = %+v", i3)
	}
	// Instruction 9 is bl back to index 5.
	i9 := p.Insns[9]
	if i9.Op != OpBranch || i9.Cond != CondL || i9.Disp != -4 {
		t.Errorf("insn 9 = %+v", i9)
	}
	// Instruction 6 is the array load ld [%o2+%g2],%g2.
	i6 := p.Insns[6]
	if i6.Op != OpLd || i6.Imm || i6.Rs1 != 10 || i6.Rs2 != 2 || i6.Rd != 2 {
		t.Errorf("insn 6 = %+v", i6)
	}
	// Instruction 11 is retl = jmpl %o7+8,%g0, recognized as a return.
	if !p.Insns[11].IsReturn() {
		t.Errorf("insn 11 = %+v not a return", p.Insns[11])
	}
	// Instruction 12 is nop.
	if !p.Insns[12].IsNop() {
		t.Errorf("insn 12 = %+v not a nop", p.Insns[12])
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"frobnicate %o0",           // unknown mnemonic
		"add %o0,%o1",              // wrong arity
		"bl nowhere",               // undefined label
		"ld %o0,%o1",               // load without brackets
		"add %q0,%o1,%o2",          // bad register
		"L: add %o0,1,%o1\nL: nop", // duplicate label
		"",                         // empty program
		"mov 99999999,%o0",         // immediate out of simm13 for or
	}
	for _, src := range cases {
		if _, err := Assemble(src, AsmOptions{}); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestSyntheticExpansion(t *testing.T) {
	src := `
start:
	set 0x20000,%o0
	set 42,%o1
	inc 4,%o2
	dec %o3
	tst %o4
	neg %o5
	not %l0
	clr [%o0+4]
	retl
	nop
`
	p, err := Assemble(src, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// set 0x20000 -> single sethi (low bits zero); set 42 -> or %g0,42.
	if p.Insns[0].Op != OpSethi || uint32(p.Insns[0].SImm) != 0x20000 {
		t.Errorf("set high: %+v", p.Insns[0])
	}
	if p.Insns[1].Op != OpOr || !p.Insns[1].Imm || p.Insns[1].SImm != 42 {
		t.Errorf("set low: %+v", p.Insns[1])
	}
	if p.Insns[2].Op != OpAdd || p.Insns[2].SImm != 4 {
		t.Errorf("inc: %+v", p.Insns[2])
	}
	if p.Insns[3].Op != OpSub || p.Insns[3].SImm != 1 {
		t.Errorf("dec: %+v", p.Insns[3])
	}
	if p.Insns[4].Op != OpOrcc || p.Insns[4].Rd != G0 {
		t.Errorf("tst: %+v", p.Insns[4])
	}
	if p.Insns[5].Op != OpSub || p.Insns[5].Rs1 != G0 {
		t.Errorf("neg: %+v", p.Insns[5])
	}
	if p.Insns[6].Op != OpXnor {
		t.Errorf("not: %+v", p.Insns[6])
	}
	if p.Insns[7].Op != OpSt || p.Insns[7].Rd != G0 || p.Insns[7].SImm != 4 {
		t.Errorf("clr mem: %+v", p.Insns[7])
	}
}

func TestSetWithDataSymbol(t *testing.T) {
	src := "set counter,%o0\nld [%o0],%o1\nretl\nnop"
	p, err := Assemble(src, AsmOptions{DataSyms: map[string]uint32{"counter": 0x20400}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Insns[0].Op != OpSethi || uint32(p.Insns[0].SImm) != 0x20400 {
		t.Fatalf("set sym: %+v", p.Insns[0])
	}
	// Unknown symbol fails.
	if _, err := Assemble("set nosuch,%o0\nretl\nnop", AsmOptions{}); err == nil {
		t.Error("unknown data symbol should fail")
	}
}

func TestHiLoOperands(t *testing.T) {
	src := "sethi %hi(0x12345400),%o0\nor %o0,%lo(0x12345403),%o0\nretl\nnop"
	p, err := Assemble(src, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if uint32(p.Insns[0].SImm) != 0x12345400 {
		t.Errorf("hi: %x", uint32(p.Insns[0].SImm))
	}
	if p.Insns[1].SImm != 0x3 {
		t.Errorf("lo: %x", p.Insns[1].SImm)
	}
}

func TestAddressingForms(t *testing.T) {
	src := `
	ld [%fp-8],%o0
	ld [%o0],%o1
	ld [%o0+12],%o2
	ld [%o0+%o3],%o4
	st %o0,[%sp+64]
	retl
	nop
`
	p, err := Assemble(src, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Insns[0].SImm != -8 || p.Insns[0].Rs1 != FP {
		t.Errorf("fp-8: %+v", p.Insns[0])
	}
	if p.Insns[1].SImm != 0 || !p.Insns[1].Imm {
		t.Errorf("[reg]: %+v", p.Insns[1])
	}
	if p.Insns[3].Imm || p.Insns[3].Rs2 != 11 {
		t.Errorf("[reg+reg]: %+v", p.Insns[3])
	}
	if p.Insns[4].Op != OpSt || p.Insns[4].Rd != O0 || p.Insns[4].SImm != 64 {
		t.Errorf("st: %+v", p.Insns[4])
	}
}

func TestCallAndProcs(t *testing.T) {
	src := `
main:
	call helper
	nop
	retl
	nop
helper:
	retl
	nop
`
	p, err := Assemble(src, AsmOptions{Entry: "main"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Insns[0].Op != OpCall || p.Insns[0].Disp != 4 {
		t.Fatalf("call: %+v", p.Insns[0])
	}
	if len(p.Procs) != 2 || p.Procs[0] != "main" || p.Procs[1] != "helper" {
		t.Fatalf("procs = %v", p.Procs)
	}
	if idx, ok := p.ProcEntry("helper"); !ok || idx != 4 {
		t.Fatalf("helper entry = %d, %v", idx, ok)
	}
}

func TestAnnulledBranch(t *testing.T) {
	src := "cmp %o0,%o1\nbe,a done\nadd %o0,1,%o0\ndone: retl\nnop"
	p, err := Assemble(src, AsmOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Insns[1].Annul || p.Insns[1].Cond != CondE {
		t.Fatalf("annulled branch: %+v", p.Insns[1])
	}
}

func TestEncodeDecodeRoundTripFig1(t *testing.T) {
	p := assembleFig1(t)
	for idx, w := range p.Words {
		insn, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %d: %v", idx, err)
		}
		w2, err := Encode(insn)
		if err != nil {
			t.Fatalf("encode %d: %v", idx, err)
		}
		if w2 != w {
			t.Errorf("round trip %d: %08x -> %08x", idx, w, w2)
		}
	}
}

// randInsn generates a random encodable instruction.
func randInsn(r *rand.Rand) Insn {
	arithOps := []Op{OpAdd, OpAddcc, OpSub, OpSubcc, OpAnd, OpAndcc, OpAndn,
		OpOr, OpOrcc, OpOrn, OpXor, OpXorcc, OpXnor, OpSll, OpSrl, OpSra,
		OpUMul, OpSMul, OpUDiv, OpSDiv, OpJmpl, OpSave, OpRestore}
	memOps := []Op{OpLd, OpLdub, OpLduh, OpLdsb, OpLdsh, OpLdd, OpSt, OpStb, OpSth, OpStd}
	switch r.Intn(4) {
	case 0:
		i := Insn{
			Op:   OpBranch,
			Cond: Cond(r.Intn(16)),
			Disp: int32(r.Intn(1<<20) - 1<<19),
		}
		if r.Intn(2) == 0 {
			i.Annul = true
		}
		return i
	case 1:
		return Insn{Op: OpCall, Disp: int32(r.Intn(1 << 24))}
	case 2:
		return Insn{Op: OpSethi, Rd: Reg(r.Intn(32)), Imm: true,
			SImm: int32(uint32(r.Intn(1<<22)) << 10)}
	default:
		ops := arithOps
		if r.Intn(2) == 0 {
			ops = memOps
		}
		i := Insn{
			Op:  ops[r.Intn(len(ops))],
			Rd:  Reg(r.Intn(32)),
			Rs1: Reg(r.Intn(32)),
		}
		if r.Intn(2) == 0 {
			i.Imm = true
			i.SImm = int32(r.Intn(8192) - 4096)
		} else {
			i.Rs2 = Reg(r.Intn(32))
		}
		return i
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		insn := randInsn(r)
		w, err := Encode(insn)
		if err != nil {
			t.Fatalf("encode %+v: %v", insn, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("decode %08x (%+v): %v", w, insn, err)
		}
		got.Line = insn.Line
		if got != insn {
			t.Fatalf("round trip:\n in  %+v\n out %+v", insn, got)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	// op=0, op2=0 (UNIMP) is not something we accept.
	if _, err := Decode(0x00000000); err == nil {
		t.Error("UNIMP should not decode")
	}
	// op=2 with an undefined op3.
	if _, err := Decode(2<<30 | 0x3f<<19); err == nil {
		t.Error("undefined op3 should not decode")
	}
}

func TestEncodeRangeChecks(t *testing.T) {
	if _, err := Encode(Insn{Op: OpAdd, Imm: true, SImm: 5000}); err == nil {
		t.Error("simm13 overflow should fail")
	}
	if _, err := Encode(Insn{Op: OpBranch, Cond: CondA, Disp: 1 << 22}); err == nil {
		t.Error("disp22 overflow should fail")
	}
	if _, err := Encode(Insn{Op: OpSethi, Imm: true, SImm: 0x123}); err == nil {
		t.Error("sethi with low bits should fail")
	}
}

func TestFromWords(t *testing.T) {
	p := assembleFig1(t)
	q, err := FromWords(p.Words, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Insns) != len(p.Insns) {
		t.Fatalf("FromWords lost instructions")
	}
	for i := range q.Insns {
		a, b := q.Insns[i], p.Insns[i]
		b.Line = 0
		if a != b {
			t.Errorf("insn %d differs: %+v vs %+v", i, a, b)
		}
	}
	if len(q.Procs) != 1 || q.Procs[0] != "proc_0" {
		t.Errorf("procs = %v", q.Procs)
	}
}

func TestAddrMapping(t *testing.T) {
	p := assembleFig1(t)
	if p.AddrOf(0) != DefaultBase || p.AddrOf(3) != DefaultBase+12 {
		t.Error("AddrOf wrong")
	}
	if idx, ok := p.IndexOf(DefaultBase + 12); !ok || idx != 3 {
		t.Error("IndexOf wrong")
	}
	if _, ok := p.IndexOf(DefaultBase + 2); ok {
		t.Error("unaligned address should not resolve")
	}
	if _, ok := p.IndexOf(DefaultBase + 4*1000); ok {
		t.Error("out-of-range address should not resolve")
	}
}

func TestDisassembleContainsBranchTargets(t *testing.T) {
	p := assembleFig1(t)
	d := p.Disassemble()
	if !strings.Contains(d, "bge @11") || !strings.Contains(d, "bl @5") {
		t.Errorf("disassembly missing targets:\n%s", d)
	}
	if !strings.Contains(d, "ld [%o2+%g2],%g2") {
		t.Errorf("disassembly missing load:\n%s", d)
	}
}

func TestInsnPredicates(t *testing.T) {
	ld := Insn{Op: OpLd}
	st := Insn{Op: OpSt}
	if !ld.IsLoad() || ld.IsStore() || !st.IsStore() || st.IsLoad() {
		t.Error("load/store predicates wrong")
	}
	if ld.MemSize() != 4 || (Insn{Op: OpLdub}).MemSize() != 1 || (Insn{Op: OpSth}).MemSize() != 2 {
		t.Error("MemSize wrong")
	}
	if !(Insn{Op: OpSubcc}).SetsCC() || (Insn{Op: OpSub}).SetsCC() {
		t.Error("SetsCC wrong")
	}
	if !(Insn{Op: OpBranch, Cond: CondA}).IsUncondBranch() {
		t.Error("IsUncondBranch wrong")
	}
}
