package sparc

import (
	"mcsafe/internal/rtl"
)

// Lift translates one decoded instruction into its canonical RTL
// effect sequence — the single source of instruction semantics shared
// by typestate propagation, WLP generation, and the concrete
// interpreter. It returns nil for instructions the checker does not
// understand (OpInvalid); every opcode the decoder can produce has
// exactly one rule here, enforced by TestLiftExhaustive.
//
// Conventions: %g0 reads and writes are emitted faithfully (rtl.ZeroReg
// carries the hardwired-zero convention); immediates become rtl.Const
// and register operands rtl.RegX, so consumers can distinguish the two
// addressing modes. Source expressions always evaluate in the entry
// window; save/restore destinations carry Win = ±1.
func Lift(i Insn) []rtl.Effect {
	rd := rtl.Reg(i.Rd)
	rs1 := rtl.RegX{R: rtl.Reg(i.Rs1)}
	switch i.Op {
	case OpSethi:
		return []rtl.Effect{rtl.Assign{Dst: rd, Src: rtl.Const{V: int64(i.SImm)}}}

	case OpBranch:
		return []rtl.Effect{rtl.Branch{Cond: liftCond(i.Cond), Disp: i.Disp, Annul: i.Annul}}

	case OpCall:
		return []rtl.Effect{
			rtl.Assign{Dst: rtl.Reg(O7), Src: rtl.PC{}},
			rtl.Call{Disp: i.Disp},
		}

	case OpJmpl:
		return []rtl.Effect{
			rtl.Assign{Dst: rd, Src: rtl.PC{}},
			rtl.Jump{Target: rtl.Bin{Op: rtl.Add, A: rs1, B: liftOperand2(i)}},
		}

	case OpSave:
		return []rtl.Effect{
			rtl.SaveWindow{},
			rtl.Assign{Dst: rd, Win: +1, Src: rtl.Bin{Op: rtl.Add, A: rs1, B: liftOperand2(i)}},
		}

	case OpRestore:
		return []rtl.Effect{
			rtl.RestoreWindow{},
			rtl.Assign{Dst: rd, Win: -1, Src: rtl.Bin{Op: rtl.Add, A: rs1, B: liftOperand2(i)}},
		}

	case OpLd, OpLdub, OpLduh, OpLdsb, OpLdsh:
		signed := i.Op == OpLdsb || i.Op == OpLdsh
		return []rtl.Effect{rtl.Load{Dst: rd, Addr: liftAddr(i), Size: i.MemSize(), Signed: signed}}

	case OpSt, OpStb, OpSth:
		return []rtl.Effect{rtl.Store{Src: rtl.RegX{R: rd}, Addr: liftAddr(i), Size: i.MemSize()}}

	case OpLdd:
		return []rtl.Effect{rtl.Unsupported{Code: "policy",
			Msg: "doubleword memory access not supported", Dst: rd}}

	case OpStd:
		return []rtl.Effect{rtl.Unsupported{Code: "policy",
			Msg: "doubleword memory access not supported", Dst: rtl.ZeroReg, Store: true}}
	}

	op, ok := liftALUOp(i.Op)
	if !ok {
		return nil
	}
	effs := []rtl.Effect{
		rtl.Assign{Dst: rd, Src: rtl.Bin{Op: op, A: rs1, B: liftOperand2(i)}},
	}
	if i.SetsCC() {
		effs = append(effs, rtl.SetCC{Op: op, A: rs1, B: liftOperand2(i)})
	}
	return effs
}

// liftOperand2 maps a format-3 second operand.
func liftOperand2(i Insn) rtl.Expr {
	if i.Imm {
		return rtl.Const{V: int64(i.SImm)}
	}
	return rtl.RegX{R: rtl.Reg(i.Rs2)}
}

// liftAddr is the effective address of a load or store.
func liftAddr(i Insn) rtl.Expr {
	return rtl.Bin{Op: rtl.Add, A: rtl.RegX{R: rtl.Reg(i.Rs1)}, B: liftOperand2(i)}
}

// liftALUOp maps the arithmetic/logical/shift opcodes onto rtl.BinOp.
func liftALUOp(op Op) (rtl.BinOp, bool) {
	switch op {
	case OpAdd, OpAddcc:
		return rtl.Add, true
	case OpSub, OpSubcc:
		return rtl.Sub, true
	case OpAnd, OpAndcc:
		return rtl.And, true
	case OpAndn:
		return rtl.AndNot, true
	case OpOr, OpOrcc:
		return rtl.Or, true
	case OpOrn:
		return rtl.OrNot, true
	case OpXor, OpXorcc:
		return rtl.Xor, true
	case OpXnor:
		return rtl.XorNot, true
	case OpSll:
		return rtl.ShL, true
	case OpSrl:
		return rtl.ShRL, true
	case OpSra:
		return rtl.ShRA, true
	case OpUMul:
		return rtl.MulU, true
	case OpSMul:
		return rtl.MulS, true
	case OpUDiv:
		return rtl.DivU, true
	case OpSDiv:
		return rtl.DivS, true
	}
	return 0, false
}

// liftCond maps a SPARC branch condition onto the neutral rtl.Cond.
func liftCond(c Cond) rtl.Cond {
	switch c {
	case CondN:
		return rtl.CondNever
	case CondA:
		return rtl.CondAlways
	case CondE:
		return rtl.CondEq
	case CondNE:
		return rtl.CondNe
	case CondL:
		return rtl.CondLt
	case CondLE:
		return rtl.CondLe
	case CondG:
		return rtl.CondGt
	case CondGE:
		return rtl.CondGe
	case CondCS:
		return rtl.CondLtU
	case CondLEU:
		return rtl.CondLeU
	case CondGU:
		return rtl.CondGtU
	case CondCC:
		return rtl.CondGeU
	case CondNEG:
		return rtl.CondNeg
	case CondPOS:
		return rtl.CondPos
	case CondVS:
		return rtl.CondOverflow
	case CondVC:
		return rtl.CondNoOverflow
	}
	return rtl.CondNever
}
