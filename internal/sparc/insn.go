package sparc

import "fmt"

// Op enumerates the canonical (non-synthetic) SPARC V8 instructions the
// checker understands. Synthetic instructions (mov, clr, cmp, inc, ...)
// are expanded by the assembler into these.
type Op int

const (
	OpInvalid Op = iota

	// Format 3, op = 2: arithmetic and logical.
	OpAdd
	OpAddcc
	OpSub
	OpSubcc
	OpAnd
	OpAndcc
	OpAndn
	OpOr
	OpOrcc
	OpOrn
	OpXor
	OpXorcc
	OpXnor
	OpSll
	OpSrl
	OpSra
	OpUMul
	OpSMul
	OpUDiv
	OpSDiv
	OpJmpl
	OpSave
	OpRestore

	// Format 3, op = 3: loads and stores.
	OpLd
	OpLdub
	OpLduh
	OpLdsb
	OpLdsh
	OpLdd
	OpSt
	OpStb
	OpSth
	OpStd

	// Format 2.
	OpSethi
	OpBranch

	// Format 1.
	OpCall
)

// Cond is a branch condition, encoded in bits 25..28 of a format-2 branch.
type Cond int

const (
	CondN   Cond = 0  // bn: never
	CondE   Cond = 1  // be: equal (Z)
	CondLE  Cond = 2  // ble
	CondL   Cond = 3  // bl
	CondLEU Cond = 4  // bleu
	CondCS  Cond = 5  // bcs / blu: carry set (unsigned less)
	CondNEG Cond = 6  // bneg
	CondVS  Cond = 7  // bvs
	CondA   Cond = 8  // ba: always
	CondNE  Cond = 9  // bne
	CondG   Cond = 10 // bg
	CondGE  Cond = 11 // bge
	CondGU  Cond = 12 // bgu
	CondCC  Cond = 13 // bcc / bgeu: carry clear (unsigned greater-equal)
	CondPOS Cond = 14 // bpos
	CondVC  Cond = 15 // bvc
)

func (c Cond) String() string {
	names := [...]string{"bn", "be", "ble", "bl", "bleu", "blu", "bneg", "bvs",
		"ba", "bne", "bg", "bge", "bgu", "bgeu", "bpos", "bvc"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("b?%d", int(c))
}

// Insn is one decoded SPARC instruction. For format-3 instructions the
// operands are Rd, Rs1, and either Rs2 (Imm == false) or SImm (a
// sign-extended 13-bit immediate, Imm == true). For sethi, SImm holds the
// 22-bit immediate (already shifted left by 10). For branches and calls,
// Disp is the word displacement from this instruction.
type Insn struct {
	Op    Op
	Cond  Cond // for OpBranch
	Annul bool // for OpBranch: the ",a" bit
	Rd    Reg
	Rs1   Reg
	Rs2   Reg
	Imm   bool
	SImm  int32
	Disp  int32 // word displacement for OpBranch / OpCall

	// Target carries an unresolved label between parsing and assembly;
	// it is empty in decoded instructions.
	Target string
	// Line is the source line number the instruction came from (0 when
	// decoded from bare words with no source map).
	Line int
}

// IsLoad reports whether the instruction reads memory.
func (i Insn) IsLoad() bool {
	switch i.Op {
	case OpLd, OpLdub, OpLduh, OpLdsb, OpLdsh, OpLdd:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes memory.
func (i Insn) IsStore() bool {
	switch i.Op {
	case OpSt, OpStb, OpSth, OpStd:
		return true
	}
	return false
}

// MemSize returns the byte width of a load or store (0 otherwise).
func (i Insn) MemSize() int {
	switch i.Op {
	case OpLdub, OpLdsb, OpStb:
		return 1
	case OpLduh, OpLdsh, OpSth:
		return 2
	case OpLd, OpSt:
		return 4
	case OpLdd, OpStd:
		return 8
	}
	return 0
}

// SetsCC reports whether the instruction writes the integer condition
// codes.
func (i Insn) SetsCC() bool {
	switch i.Op {
	case OpAddcc, OpSubcc, OpAndcc, OpOrcc, OpXorcc:
		return true
	}
	return false
}

// IsBranch reports whether the instruction is a conditional or
// unconditional branch.
func (i Insn) IsBranch() bool { return i.Op == OpBranch }

// IsUncondBranch reports an always-taken branch.
func (i Insn) IsUncondBranch() bool { return i.Op == OpBranch && i.Cond == CondA }

// IsReturn reports whether the instruction is a procedure return:
// jmpl %o7+8,%g0 (retl, for leaf routines) or jmpl %i7+8,%g0 (ret).
func (i Insn) IsReturn() bool {
	return i.Op == OpJmpl && i.Rd == G0 && i.Imm && i.SImm == 8 &&
		(i.Rs1 == O7 || i.Rs1 == I7)
}

// IsNop reports the canonical nop (sethi 0, %g0).
func (i Insn) IsNop() bool { return i.Op == OpSethi && i.Rd == G0 && i.SImm == 0 }

func opName(op Op) string {
	switch op {
	case OpAdd:
		return "add"
	case OpAddcc:
		return "addcc"
	case OpSub:
		return "sub"
	case OpSubcc:
		return "subcc"
	case OpAnd:
		return "and"
	case OpAndcc:
		return "andcc"
	case OpAndn:
		return "andn"
	case OpOr:
		return "or"
	case OpOrcc:
		return "orcc"
	case OpOrn:
		return "orn"
	case OpXor:
		return "xor"
	case OpXorcc:
		return "xorcc"
	case OpXnor:
		return "xnor"
	case OpSll:
		return "sll"
	case OpSrl:
		return "srl"
	case OpSra:
		return "sra"
	case OpUMul:
		return "umul"
	case OpSMul:
		return "smul"
	case OpUDiv:
		return "udiv"
	case OpSDiv:
		return "sdiv"
	case OpJmpl:
		return "jmpl"
	case OpSave:
		return "save"
	case OpRestore:
		return "restore"
	case OpLd:
		return "ld"
	case OpLdub:
		return "ldub"
	case OpLduh:
		return "lduh"
	case OpLdsb:
		return "ldsb"
	case OpLdsh:
		return "ldsh"
	case OpLdd:
		return "ldd"
	case OpSt:
		return "st"
	case OpStb:
		return "stb"
	case OpSth:
		return "sth"
	case OpStd:
		return "std"
	case OpSethi:
		return "sethi"
	case OpCall:
		return "call"
	case OpBranch:
		return "b"
	}
	return "invalid"
}

// String renders a disassembly of the instruction.
func (i Insn) String() string {
	operand2 := func() string {
		if i.Imm {
			return fmt.Sprintf("%d", i.SImm)
		}
		return i.Rs2.String()
	}
	addr := func() string {
		if i.Imm {
			switch {
			case i.SImm == 0:
				return fmt.Sprintf("[%s]", i.Rs1)
			case i.SImm < 0:
				return fmt.Sprintf("[%s-%d]", i.Rs1, -i.SImm)
			default:
				return fmt.Sprintf("[%s+%d]", i.Rs1, i.SImm)
			}
		}
		if i.Rs2 == G0 {
			return fmt.Sprintf("[%s]", i.Rs1)
		}
		return fmt.Sprintf("[%s+%s]", i.Rs1, i.Rs2)
	}
	switch {
	case i.Op == OpBranch:
		suffix := ""
		if i.Annul {
			suffix = ",a"
		}
		tgt := i.Target
		if tgt == "" {
			tgt = fmt.Sprintf(".%+d", i.Disp)
		}
		return fmt.Sprintf("%s%s %s", i.Cond, suffix, tgt)
	case i.Op == OpCall:
		tgt := i.Target
		if tgt == "" {
			tgt = fmt.Sprintf(".%+d", i.Disp)
		}
		return fmt.Sprintf("call %s", tgt)
	case i.Op == OpSethi:
		return fmt.Sprintf("sethi %%hi(0x%x),%s", uint32(i.SImm), i.Rd)
	case i.IsLoad():
		return fmt.Sprintf("%s %s,%s", opName(i.Op), addr(), i.Rd)
	case i.IsStore():
		return fmt.Sprintf("%s %s,%s", opName(i.Op), i.Rd, addr())
	default:
		return fmt.Sprintf("%s %s,%s,%s", opName(i.Op), i.Rs1, operand2(), i.Rd)
	}
}
